// Browse: the paper's full §3.1 workflow on a simulated deployment —
// user-C texts a URL to the SONIC number, the server renders and queues
// it, an FM transmitter polls the page over the TCP control link and
// broadcasts it as sound, every listener in range receives it, and
// user-C then navigates a hyperlink through the click map (cache hit or
// a fresh SMS request).
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"sonic"
	"sonic/internal/corpus"
	"sonic/internal/server"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

func main() {
	pipe, err := sonic.NewPipeline(sonic.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// --- infrastructure ---------------------------------------------------
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	srv := sonic.NewServer(sonic.DefaultServerConfig(), pipe)
	srv.Instrument(reg)
	srv.AddTransmitter(sonic.Transmitter{
		ID: "tx-karachi", FreqMHz: 93.7, Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})
	smsc := sonic.NewSMSC(2*time.Second, 6*time.Second, 42)
	smsc.Register("+92300SONIC", srv.HandleSMS(smsc))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // demo process exits with main
	tx, err := server.DialTransmitter(l.Addr().String(), "tx-karachi")
	if err != nil {
		log.Fatal(err)
	}
	defer tx.Close()

	// --- users --------------------------------------------------------------
	// User-C: SMS uplink, radio via audio jack.
	userC := sonic.NewClient(sonic.ClientConfig{
		Number: "+923001112223", SonicNumber: "+92300SONIC",
		ScreenWidth: 720, Lat: 24.87, Lon: 67.02,
		Capability: sonic.UplinkSMS,
	})
	userC.AttachSMSC(smsc)
	userC.Instrument(reg)
	// User-A: downlink only, radio across the room (0.5 m of air).
	userA := sonic.NewClient(sonic.ClientConfig{ScreenWidth: 540})

	now := time.Unix(0, 0)
	wantURL := corpus.Pages()[0].URL

	// (1) user-C requests a page by SMS.
	fmt.Printf("[user-C] SMS -> %s\n", sms.FormatRequest(sms.Request{URL: wantURL, Lat: 24.87, Lon: 67.02}))
	if err := userC.Request(wantURL, now); err != nil {
		log.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	smsc.Advance(now) // deliver request; server renders, queues, acks
	now = now.Add(10 * time.Second)
	smsc.Advance(now) // deliver ack
	if eta, ok := userC.PendingETA(wantURL); ok {
		fmt.Printf("[user-C] ack received, page expected by t+%ds\n", int(eta.Sub(time.Unix(0, 0)).Seconds()))
	}

	// (2) the transmitter polls the control link and broadcasts.
	url, pageID, bundle, ok, err := tx.Poll()
	if err != nil || !ok {
		log.Fatalf("transmitter poll: ok=%v err=%v", ok, err)
	}
	fmt.Printf("[tx-karachi] broadcasting %s (page id %d, %d KB) on 93.7 MHz\n",
		url, pageID, len(bundle.Image)/1024)
	airAudio, err := pipe.EncodePageAudio(pageID, bundle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[tx-karachi] airtime %.0f s at %.1f kbps net\n",
		float64(len(airAudio))/48000, pipe.NetGoodputBps()/1000)

	// (3) every listener receives the same burst (broadcast!).
	deliver := func(name string, c *sonic.Client, link sonic.Link) {
		rx := link.Transmit(airAudio, 48000)
		res, err := pipe.DecodePageAudio(rx)
		if err != nil {
			fmt.Printf("[%s] no reception: %v\n", name, err)
			return
		}
		if !res.Complete {
			fmt.Printf("[%s] lost %d/%d frames; page unusable in bitstream mode\n",
				name, res.FramesLost, res.FramesTotal)
			return
		}
		c.HandleBroadcast(url, res.Bundle, now, srv.PageTTL(), 1)
		fmt.Printf("[%s] page cached (%d/%d frames)\n", name, res.FramesTotal-res.FramesLost, res.FramesTotal)
	}
	deliver("user-C", userC, sonic.Chain{sonic.NewFMLink(-70), sonic.NewCableLink()})
	deliver("user-A", userA, sonic.Chain{sonic.NewFMLink(-72), sonic.NewAcousticLink(0.5)})

	// (4) user-C opens the page and taps the first hyperlink.
	p, err := userC.Open(url, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[user-C] opened %s: %dx%d on screen, %d links, catalog=%v\n",
		p.URL, p.Image.W, p.Image.H, len(p.Clicks.Regions), userC.Catalog(now))
	if len(p.Clicks.Regions) > 0 {
		r := p.Clicks.Regions[len(p.Clicks.Regions)-1]
		_, err := userC.Click(p, r.X+1, r.Y+1, now)
		switch err {
		case nil:
			fmt.Printf("[user-C] tap -> %s loaded instantly from cache\n", r.URL)
		default:
			fmt.Printf("[user-C] tap -> %s not cached; SMS request sent (%v)\n", r.URL, err)
		}
	}

	snap := reg.Snapshot()
	fmt.Printf("[server] requests=%d cacheHits=%d\n",
		snap.Counters["server_sms_requests_total"],
		snap.Counters["server_render_cache_hits_total"])
	if h, ok := snap.Histograms["request_to_on_air_seconds"]; ok && h.Count > 0 {
		fmt.Printf("[server] request->on-air p50 %.1fs over %d requests\n", h.P50, h.Count)
	}
}
