// Lossdemo reproduces Figure 1: the same webpage delivered with no frame
// loss, with 10% losses (missing pixels dark), and with the losses
// repaired by left-priority nearest-neighbor interpolation. Writes the
// three panels as PNGs and prints the damage metrics.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sonic/internal/experiments"
	"sonic/internal/imagecodec"
)

func main() {
	outDir := "lossdemo-out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	r := experiments.RunFig1(2500, 1)
	experiments.PrintFig1(os.Stdout, r)

	panels := []struct {
		name string
		img  *imagecodec.Raster
	}{
		{"fig1-left-no-loss.png", r.Original},
		{"fig1-center-10pct-loss.png", r.Lossy},
		{"fig1-right-interpolated.png", r.Interpolated},
	}
	for _, p := range panels {
		path := filepath.Join(outDir, p.name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.img.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%dx%d)\n", path, p.img.W, p.img.H)
	}
	fmt.Println("compare the three panels side by side — the paper's Figure 1")
}
