// Quickstart: render a webpage, broadcast it as sound over a simulated
// FM link, receive it, and open it on a phone-sized screen — the minimal
// end-to-end SONIC flow through the public API.
package main

import (
	"fmt"
	"log"

	"sonic"
)

func main() {
	// The paper's transmission stack: Sonic92 OFDM profile, rs8 outer +
	// v29 inner FEC, SIC quality 10.
	pipe, err := sonic.NewPipeline(sonic.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile: raw %.1f kbps, transport %.1f kbps, net %.1f kbps\n",
		pipe.Modem().Profile().RawBitRate()/1000,
		pipe.TransportRateBps()/1000,
		pipe.NetGoodputBps()/1000)

	// Server side: render the page, bundle image + click map.
	page := sonic.GeneratePage("khabar.pk/", 9) // the 9am render
	rendered := sonic.RenderPage(page)
	// Keep the demo burst short: crop to the first screenful or two.
	rendered.Image = rendered.Image.Crop(1200)
	bundle, err := sonic.BundlePage(rendered, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered %q: %dx%d px -> %d KB image + %d B click map\n",
		page.Title, rendered.Image.W, rendered.Image.H,
		len(bundle.Image)/1024, len(bundle.ClickMap))

	// Broadcast as audio.
	audio, err := pipe.EncodePageAudio(1, bundle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-air: %.1f s of audio (%d samples at 48 kHz)\n",
		float64(len(audio))/48000, len(audio))

	// Downlink: FM radio at healthy RSSI, receiver wired via audio jack
	// (the paper's user-C).
	link := sonic.Chain{sonic.NewFMLink(-70), sonic.NewCableLink()}
	rx := link.Transmit(audio, 48000)

	// Client side: demodulate, reassemble, decode, scale to the device.
	res, err := pipe.DecodePageAudio(rx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received: %d/%d frames (%.1f%% loss), modem SNR %.1f dB, complete=%v\n",
		res.FramesTotal-res.FramesLost, res.FramesTotal,
		res.FrameLossRate*100, res.ModemSNRdB, res.Complete)
	if !res.Complete {
		log.Fatal("page incomplete")
	}
	img, err := sonic.DecodePageImage(res.Bundle)
	if err != nil {
		log.Fatal(err)
	}
	phone := img.ResizeNearest(720.0 / 1080.0)
	fmt.Printf("decoded image %dx%d, scaled to %dx%d for a 720 px screen\n",
		img.W, img.H, phone.W, phone.H)
}
