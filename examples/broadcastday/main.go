// Broadcastday simulates two days of SONIC operation over the Pakistani
// corpus — Figure 4(c): the broadcast backlog under different channel
// rates, with the hourly content churn of real news sites. It prints an
// ASCII rendering of the backlog series.
package main

import (
	"fmt"
	"log"
	"strings"

	"sonic"
	"sonic/internal/broadcast"
	"sonic/internal/corpus"
)

func main() {
	sizeFn := func(ref corpus.PageRef, hour int) int {
		// Q10/PH10k regime (~90-155 KB), deterministic per page.
		h := 0
		for _, c := range ref.URL {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return 90*1024 + h%(65*1024)
	}

	for _, rate := range []float64{10000, 20000, 40000} {
		res, err := sonic.SimulateBacklog(sonic.BacklogConfig{
			Pages:       corpus.Pages(),
			RateBps:     rate,
			Hours:       48,
			StepMinutes: 30,
			Size:        sizeFn,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := summarize(res)
		fmt.Printf("\nRate %2.0f kbps, N=100 pages: peak %.1f MB, mean %.1f MB, idle %.0f%%\n",
			rate/1000, s.peakMB, s.meanMB, s.idlePct)
		plot(res)
	}
	fmt.Println("\npaper: at 10 kbps the queue rarely drains (broadcast-only);")
	fmt.Println("20/40 kbps reach zero nightly — SONIC is scalable but capacity-bound.")
}

type summary struct{ peakMB, meanMB, idlePct float64 }

func summarize(r *broadcast.Result) summary {
	s := r.Summarize()
	return summary{
		peakMB:  float64(s.PeakBytes) / (1 << 20),
		meanMB:  s.MeanBytes / (1 << 20),
		idlePct: s.ZeroFraction * 100,
	}
}

// plot renders the series as a small ASCII chart (8 rows, 96 cols).
func plot(r *broadcast.Result) {
	const rows, cols = 8, 96
	peak := 1
	for _, p := range r.Series {
		if p.Backlog > peak {
			peak = p.Backlog
		}
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for i, p := range r.Series {
		c := i * cols / len(r.Series)
		h := p.Backlog * (rows - 1) / peak
		for y := 0; y <= h; y++ {
			grid[rows-1-y][c] = '#'
		}
	}
	fmt.Printf("%5.1fMB |%s|\n", float64(peak)/(1<<20), grid[0])
	for _, row := range grid[1 : rows-1] {
		fmt.Printf("        |%s|\n", row)
	}
	fmt.Printf("    0MB |%s|\n", grid[rows-1])
	fmt.Printf("         0h%sh48\n", strings.Repeat(" ", cols-6))
}
