package sonic

// One benchmark per table/figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each bench runs a reduced-scale
// version of the corresponding experiment (cmd/sonic-bench runs the full
// geometry) and reports the headline number via b.ReportMetric so
// `go test -bench` output doubles as a mini reproduction report.

import (
	"testing"

	"sonic/internal/broadcast"
	"sonic/internal/corpus"
	"sonic/internal/experiments"
	"sonic/internal/stats"
	"sonic/internal/userstudy"
)

// BenchmarkFig1LossVisual regenerates Figure 1's panels and reports the
// damage interpolation removes.
func BenchmarkFig1LossVisual(b *testing.B) {
	var raw, healed float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(1200, int64(i)+1)
		raw = r.RawDamage.OverallDamage
		healed = r.HealedDamage.OverallDamage
	}
	b.ReportMetric(raw*100, "rawDamage%")
	b.ReportMetric(healed*100, "healedDamage%")
}

// BenchmarkFig4aFrameLossVsDistance runs the distance sweep through the
// real modem+FM+acoustic chain and reports the 1m median loss.
func BenchmarkFig4aFrameLossVsDistance(b *testing.B) {
	var median1m float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig4a(experiments.Fig4aConfig{
			Trials: 4, FramesPerTrial: 12, Seed: int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Label == "1m" {
				median1m = stats.Median(p.Losses)
			}
		}
	}
	b.ReportMetric(median1m, "1mMedianLoss%")
}

// BenchmarkFig4bSizeCDF encodes a corpus sample under the four
// quality/crop configurations and reports the Q10/PH10k median.
func BenchmarkFig4bSizeCDF(b *testing.B) {
	var medianKB float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4b(8)
		if err != nil {
			b.Fatal(err)
		}
		medianKB = stats.Median(res.Sizes["Q:10,PH:10k"]) / 1024
	}
	b.ReportMetric(medianKB, "q10MedianKB")
}

// BenchmarkFig4cBacklog simulates the backlog curves and reports the
// 10 kbps idle fraction (the paper's "rarely reaches zero").
func BenchmarkFig4cBacklog(b *testing.B) {
	var idle10 float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.RunFig4c(48, nil)
		if err != nil {
			b.Fatal(err)
		}
		idle10 = curves[0].Result.Summarize().ZeroFraction * 100
	}
	b.ReportMetric(idle10, "10kbpsIdle%")
}

// BenchmarkRSSISweep probes the RSSI bands and reports loss at the
// paper's -85..-90 dB fluctuation band.
func BenchmarkRSSISweep(b *testing.B) {
	var at90 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunRSSISweep(3, 10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.RSSI == -90 {
				at90 = stats.Median(p.Losses)
			}
		}
	}
	b.ReportMetric(at90, "lossAt-90dB%")
}

// BenchmarkFig5UserStudy runs the simulated rating panel and reports the
// content-understanding median at 20% loss with interpolation (the
// paper's "median content readability score of 7").
func BenchmarkFig5UserStudy(b *testing.B) {
	var c20 float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(experiments.Fig5Config{
			Pages: 6, ViewportH: 1200, Participants: 151, Seed: int64(i) + 1,
		})
		c20 = stats.Median(res.MediansContent[userstudy.Condition{LossRate: 0.20, Interp: true}])
	}
	b.ReportMetric(c20, "content@20%+interp")
}

// BenchmarkSonic92Goodput reports the profile's rates (§3.3: 10 kbps).
func BenchmarkSonic92Goodput(b *testing.B) {
	var transport, net float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunRate(32 * 1024)
		if err != nil {
			b.Fatal(err)
		}
		transport, net = r.TransportBps, r.MeasuredBps
	}
	b.ReportMetric(transport/1000, "transport_kbps")
	b.ReportMetric(net/1000, "net_kbps")
}

// BenchmarkFSKBaselineGoodput reports the GGwave-class baseline gap.
func BenchmarkFSKBaselineGoodput(b *testing.B) {
	var fsk, ofdm float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBaseline(1024)
		if err != nil {
			b.Fatal(err)
		}
		fsk = r.Rows[0].GoodputBps
		ofdm = r.Rows[len(r.Rows)-1].GoodputBps
	}
	b.ReportMetric(fsk, "fsk_bps")
	b.ReportMetric(ofdm/fsk, "ofdm_speedup_x")
}

// BenchmarkCompressionRatio reports the §3.2 ~10x page compression claim.
func BenchmarkCompressionRatio(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCompression(6)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(r.Ratios)
	}
	b.ReportMetric(median, "weight/encoded_x")
}

// BenchmarkAblationInnerFEC compares v29/v27/none at an SNR where the
// inner code is what saves frames.
func BenchmarkAblationInnerFEC(b *testing.B) {
	var v29, none float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationFEC(16, 10, 3, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		v29 = rows[0].Loss
		none = rows[4].Loss
	}
	b.ReportMetric(v29*100, "rs8+v29_loss%")
	b.ReportMetric(none*100, "noFEC_loss%")
}

// BenchmarkAblationOuterRS isolates the outer code's contribution.
func BenchmarkAblationOuterRS(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationFEC(16, 10, 3, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		with = rows[0].Loss    // rs8+v29
		without = rows[3].Loss // v29 only
	}
	b.ReportMetric(with*100, "rs8+v29_loss%")
	b.ReportMetric(without*100, "v29only_loss%")
}

// BenchmarkAblationInterleaver shows burst-error spreading.
func BenchmarkAblationInterleaver(b *testing.B) {
	var without, with float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationInterleaver(64, 4, 20, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		without, with = rows[0].Loss, rows[1].Loss
	}
	b.ReportMetric(without*100, "noInterleave_fail%")
	b.ReportMetric(with*100, "interleave_fail%")
}

// BenchmarkAblationConstellation sweeps modulation order at fixed SNR.
func BenchmarkAblationConstellation(b *testing.B) {
	var qpsk, qam256 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationConstellation(22, 10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		qpsk = rows[0].Loss
		qam256 = rows[len(rows)-1].Loss
	}
	b.ReportMetric(qpsk*100, "QPSK_loss%")
	b.ReportMetric(qam256*100, "256QAM_loss%")
}

// BenchmarkAblationPartitioning compares the paper's vertical-strip,
// left-first design against row chunking and top-first priority.
func BenchmarkAblationPartitioning(b *testing.B) {
	var paper, rowTop float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationPartitioning(0.10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		paper = rows[0].Loss
		rowTop = rows[3].Loss
	}
	b.ReportMetric(paper*1000, "paperDamage_permille")
	b.ReportMetric(rowTop*1000, "rowTopDamage_permille")
}

// BenchmarkAblationInterpPriority isolates left-first vs top-first on
// the paper's vertical-strip losses.
func BenchmarkAblationInterpPriority(b *testing.B) {
	var left, top float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationPartitioning(0.10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		left, top = rows[0].Loss, rows[1].Loss
	}
	b.ReportMetric(left*1000, "leftFirst_permille")
	b.ReportMetric(top*1000, "topFirst_permille")
}

// BenchmarkAblationCarousel reports the scheduling-policy gain for the
// preemptive-push rotation.
func BenchmarkAblationCarousel(b *testing.B) {
	var flat, sqrtW float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationCarousel()
		if err != nil {
			b.Fatal(err)
		}
		flat, sqrtW = rows[0].Loss, rows[1].Loss
	}
	b.ReportMetric(flat, "flatWait_s")
	b.ReportMetric(sqrtW, "sqrtWait_s")
}

// BenchmarkEndToEndPageBroadcast times the full pipeline for one page
// over a clean FM link (the system's fundamental operation).
func BenchmarkEndToEndPageBroadcast(b *testing.B) {
	pipe, err := NewPipeline(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rendered := RenderPage(GeneratePage("khabar.pk/", 0))
	rendered.Image = rendered.Image.Crop(600)
	bundle, err := BundlePage(rendered, 10)
	if err != nil {
		b.Fatal(err)
	}
	link := Chain{NewFMLink(-70), NewCableLink()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		audio, err := pipe.EncodePageAudio(1, bundle)
		if err != nil {
			b.Fatal(err)
		}
		rx := link.Transmit(audio, 48000)
		res, err := pipe.DecodePageAudio(rx)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("page incomplete over clean link")
		}
	}
}

// BenchmarkBacklogSimulator measures the Fig. 4(c) simulator itself.
func BenchmarkBacklogSimulator(b *testing.B) {
	pages := corpus.Pages()
	size := func(ref corpus.PageRef, hour int) int { return 128 * 1024 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broadcast.Simulate(broadcast.Config{
			Pages: pages, RateBps: 10000, Hours: 48, StepMinutes: 10, Size: size,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
