// Command sonic-top is a live terminal ops view for a running SONIC
// process serving the telemetry endpoint (sonic-sim/-server/-bench with
// -telemetry). It polls /metrics.json and renders the request lifecycle
// at a glance: request→on-air and request→delivered quantiles, per-stage
// waits, SLO compliance, per-transmitter queue depth and age, render
// cache hit rate, and carousel rotation health.
//
//	sonic-top -addr 127.0.0.1:7380            # refresh every 2s
//	sonic-top -addr 127.0.0.1:7380 -once      # one snapshot and exit
//	sonic-top -addr 127.0.0.1:7380 -interval 5s
//
// Exits non-zero when the endpoint is unreachable, which makes -once
// usable as a health probe in scripts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"sonic/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7380", "telemetry endpoint address (host:port)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one snapshot and exit")
	)
	flag.Parse()

	url := "http://" + *addr + "/metrics.json"
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		snap, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonic-top: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\033[H\033[2J") // clear the terminal between frames
		}
		render(os.Stdout, *addr, snap)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// seconds formats a latency with a scale-appropriate unit.
func seconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(10 * time.Microsecond).String()
	}
}

// labelOf returns the value of the named label in a metric key, if any.
func labelOf(key, label string) (string, bool) {
	_, labels := telemetry.ParseMetricKey(key)
	for _, kv := range labels {
		if kv[0] == label {
			return kv[1], true
		}
	}
	return "", false
}

func render(w *os.File, addr string, s telemetry.Snapshot) {
	fmt.Fprintf(w, "sonic-top — %s @ %s\n", addr, s.TakenAt.Format(time.RFC3339))

	// --- request lifecycle -------------------------------------------------
	fmt.Fprintln(w, "\nrequest lifecycle")
	for _, m := range []struct{ title, key string }{
		{"  request->on-air   ", "request_to_on_air_seconds"},
		{"  request->delivered", "request_to_delivered_seconds"},
	} {
		if h, ok := s.Histograms[m.key]; ok && h.Count > 0 {
			fmt.Fprintf(w, "%s  n=%-6d p50 %-10s p99 %s\n", m.title, h.Count, seconds(h.P50), seconds(h.P99))
		} else {
			fmt.Fprintf(w, "%s  (no completed requests yet)\n", m.title)
		}
	}
	fmt.Fprintf(w, "  open traces %-8.0f requests %-6d on-air %-6d delivered %-6d aborted %d\n",
		s.Gauges["lifecycle_open_traces"],
		s.Counters["lifecycle_requests_total"], s.Counters["lifecycle_on_air_total"],
		s.Counters["lifecycle_delivered_total"], s.Counters["lifecycle_aborted_total"])

	// --- per-stage waits ----------------------------------------------------
	type stageRow struct {
		stage string
		h     telemetry.HistogramSnapshot
	}
	var stages []stageRow
	for k, h := range s.Histograms {
		if name, _ := telemetry.ParseMetricKey(k); name == "lifecycle_stage_wait_seconds" && h.Count > 0 {
			if stage, ok := labelOf(k, "stage"); ok {
				stages = append(stages, stageRow{stage, h})
			}
		}
	}
	if len(stages) > 0 {
		order := map[string]int{"admitted": 0, "render_start": 1, "render_done": 2,
			"enqueued": 3, "on_air_start": 4, "on_air_done": 5, "delivered": 6}
		sort.Slice(stages, func(i, j int) bool { return order[stages[i].stage] < order[stages[j].stage] })
		fmt.Fprintln(w, "\nstage waits (time spent entering each stage)")
		for _, r := range stages {
			fmt.Fprintf(w, "  %-13s n=%-6d p50 %-10s p99 %s\n", r.stage, r.h.Count, seconds(r.h.P50), seconds(r.h.P99))
		}
	}

	// --- SLO compliance -----------------------------------------------------
	type sloRow struct {
		name       string
		ok, breach int64
	}
	slos := map[string]*sloRow{}
	for k, v := range s.Counters {
		name, _ := telemetry.ParseMetricKey(k)
		if name != "lifecycle_slo_ok_total" && name != "lifecycle_slo_breach_total" {
			continue
		}
		slo, _ := labelOf(k, "slo")
		row := slos[slo]
		if row == nil {
			row = &sloRow{name: slo}
			slos[slo] = row
		}
		if name == "lifecycle_slo_ok_total" {
			row.ok += v
		} else {
			row.breach += v
		}
	}
	if len(slos) > 0 {
		fmt.Fprintln(w, "\nSLOs")
		names := make([]string, 0, len(slos))
		for n := range slos {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r := slos[n]
			total := r.ok + r.breach
			pct := 100.0
			if total > 0 {
				pct = 100 * float64(r.ok) / float64(total)
			}
			status := "OK"
			if r.breach > 0 {
				status = fmt.Sprintf("%d BREACHED", r.breach)
			}
			fmt.Fprintf(w, "  %-22s %6.1f%% within budget (%d/%d)  %s\n", r.name, pct, r.ok, total, status)
		}
	}

	// --- queues ---------------------------------------------------------------
	var txs []string
	for k := range s.Gauges {
		if name, _ := telemetry.ParseMetricKey(k); name == "server_queue_depth_pages" {
			if tx, ok := labelOf(k, "tx"); ok {
				txs = append(txs, tx)
			}
		}
	}
	if len(txs) > 0 {
		sort.Strings(txs)
		fmt.Fprintln(w, "\ntransmitter queues")
		for _, tx := range txs {
			depth := s.Gauges[fmt.Sprintf("server_queue_depth_pages{tx=%s}", tx)]
			bytes := s.Gauges[fmt.Sprintf("server_queue_depth_bytes{tx=%s}", tx)]
			age := s.Gauges[fmt.Sprintf("server_queue_age_seconds{tx=%s}", tx)]
			fmt.Fprintf(w, "  %-12s %4.0f pages  %8.0f KB  head age %s\n", tx, depth, bytes/1024, seconds(age))
		}
	}

	// --- server + carousel -------------------------------------------------
	hits, misses := s.Counters["server_render_cache_hits_total"], s.Counters["server_render_cache_misses_total"]
	if hits+misses > 0 {
		fmt.Fprintf(w, "\nrender cache: %.1f%% hit rate (%d hits / %d misses), %g entries\n",
			100*float64(hits)/float64(hits+misses), hits, misses, s.Gauges["server_render_cache_size"])
	}
	if depth := s.Gauges["carousel_depth_pages"]; depth > 0 {
		fmt.Fprintf(w, "carousel: %.0f pages in rotation, max re-air period %s, schedule horizon %s\n",
			depth, seconds(s.Gauges["carousel_max_period_seconds"]),
			seconds(s.Gauges["carousel_schedule_horizon_seconds"]))
	}
	if strings.TrimSpace(os.Getenv("SONIC_TOP_RAW")) != "" {
		fmt.Fprintf(w, "\n%d counters, %d gauges, %d histograms, %d spans registered\n",
			len(s.Counters), len(s.Gauges), len(s.Histograms), len(s.Spans))
	}
}
