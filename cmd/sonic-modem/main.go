// Command sonic-modem encodes arbitrary payload files into SONIC audio
// (WAV) and back — the data-over-sound layer by itself, equivalent to
// driving the Quiet library with the paper's 92-subcarrier profile.
//
//	sonic-modem -mode encode -in page.bin -out burst.wav
//	sonic-modem -mode decode -in burst.wav -out page.bin
//	sonic-modem -mode encode -profile audible7k -fec=false ...
package main

import (
	"flag"
	"fmt"
	"os"

	"sonic/internal/audio"
	"sonic/internal/dsp"
	"sonic/internal/fec"
	"sonic/internal/frame"
	"sonic/internal/modem"
)

func main() {
	var (
		mode    = flag.String("mode", "encode", "encode, decode, or spectrogram")
		in      = flag.String("in", "", "input file (payload for encode, WAV for decode/spectrogram)")
		out     = flag.String("out", "", "output file")
		profile = flag.String("profile", "sonic92", "modem profile: sonic92 or audible7k")
		useFEC  = flag.Bool("fec", true, "apply the rs8+v29 frame FEC stack")
	)
	flag.Parse()
	if *in == "" || (*out == "" && *mode != "spectrogram") {
		flag.Usage()
		os.Exit(2)
	}

	var prof modem.Profile
	switch *profile {
	case "sonic92":
		prof = modem.Sonic92()
	case "audible7k":
		prof = modem.Audible7k()
	default:
		fatalf("unknown profile %q", *profile)
	}
	m, err := modem.NewOFDM(prof)
	if err != nil {
		fatalf("modem: %v", err)
	}
	var codec *frame.Codec
	if *useFEC {
		codec = frame.NewCodec()
	} else {
		codec = frame.NewCodecWith(nil, nil)
	}

	switch *mode {
	case "encode":
		payload, err := os.ReadFile(*in)
		if err != nil {
			fatalf("read: %v", err)
		}
		frames := frame.Chunk(1, payload)
		stream, err := codec.EncodeStream(frames)
		if err != nil {
			fatalf("fec: %v", err)
		}
		samples := m.Modulate(stream)
		buf := &audio.Buffer{Rate: prof.SampleRate, Samples: samples}
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer f.Close()
		if err := audio.WriteWAV(f, buf); err != nil {
			fatalf("wav: %v", err)
		}
		fmt.Printf("encoded %d bytes -> %d frames -> %.2fs of audio (%s)\n",
			len(payload), len(frames), buf.Duration(), prof.Name)

	case "decode":
		f, err := os.Open(*in)
		if err != nil {
			fatalf("open: %v", err)
		}
		defer f.Close()
		buf, err := audio.ReadWAV(f)
		if err != nil {
			fatalf("wav: %v", err)
		}
		res, err := m.Demodulate(buf.Samples)
		if err != nil {
			fatalf("demodulate: %v", err)
		}
		frames, lost := codec.DecodeStream(res.Payload)
		if len(frames) == 0 {
			fatalf("no frames recovered (%d lost)", lost)
		}
		r := frame.NewReassembler(frames[0].PageID)
		for _, fr := range frames {
			r.Add(fr)
		}
		blob, ok := r.Bytes()
		if !ok {
			fatalf("incomplete: %d/%d frames (%.0f%% loss)",
				r.Received(), r.Total(), r.LossRate()*100)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatalf("write: %v", err)
		}
		fmt.Printf("decoded %d bytes from %d frames (SNR %.1f dB, %d lost, crc32 %08x)\n",
			len(blob), r.Received(), res.SNRdB, lost, fec.Checksum32(blob))

	case "spectrogram":
		f, err := os.Open(*in)
		if err != nil {
			fatalf("open: %v", err)
		}
		defer f.Close()
		buf, err := audio.ReadWAV(f)
		if err != nil {
			fatalf("wav: %v", err)
		}
		spec, err := dsp.Spectrogram(buf.Samples, 1024, 512)
		if err != nil {
			fatalf("spectrogram: %v", err)
		}
		for _, line := range dsp.SpectrogramASCII(spec, 20, 100) {
			fmt.Println(line)
		}
		binHz := float64(buf.Rate) / 1024
		inBand := dsp.BandEnergy(spec, 1024, float64(buf.Rate),
			prof.CenterHz-3000, prof.CenterHz+3000)
		total := dsp.BandEnergy(spec, 1024, float64(buf.Rate), 0, float64(buf.Rate)/2)
		fmt.Printf("%.1fs of audio at %d Hz; %.0f%% of energy within +-3 kHz of %.0f Hz (bin %.1f Hz)\n",
			buf.Duration(), buf.Rate, inBand/total*100, prof.CenterHz, binHz)

	default:
		fatalf("unknown mode %q", *mode)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
