// Command sonic-client decodes a SONIC page broadcast from a WAV file
// (as produced by sonic-server -emit, possibly degraded by a channel)
// into a PNG screenshot plus its click map, and can resolve a tap.
//
//	sonic-client -in page.wav -png page.png -clicks clicks.json
//	sonic-client -in page.wav -click 200,340 -screen 720
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sonic/internal/audio"
	"sonic/internal/clickmap"
	"sonic/internal/core"
	"sonic/internal/imagecodec"
)

func main() {
	var (
		in     = flag.String("in", "", "input WAV broadcast")
		png    = flag.String("png", "", "write the decoded page image here")
		clicks = flag.String("clicks", "", "write the click map JSON here")
		click  = flag.String("click", "", "resolve a tap at x,y (device coordinates)")
		screen = flag.Int("screen", 1080, "device screen width (scaling factor = screen/1080)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fatalf("pipeline: %v", err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("open: %v", err)
	}
	defer f.Close()
	buf, err := audio.ReadWAV(f)
	if err != nil {
		fatalf("wav: %v", err)
	}
	res, err := pipe.DecodePageAudio(buf.Samples)
	if err != nil {
		fatalf("decode: %v", err)
	}
	fmt.Printf("burst: %d/%d frames (%.1f%% loss), modem SNR %.1f dB\n",
		res.FramesTotal-res.FramesLost, res.FramesTotal,
		res.FrameLossRate*100, res.ModemSNRdB)
	if !res.Complete {
		fatalf("page incomplete; cannot decode image")
	}

	img, err := imagecodec.DecodeSIC(res.Bundle.Image)
	if err != nil {
		fatalf("image: %v", err)
	}
	var cm clickmap.Map
	if len(res.Bundle.ClickMap) > 0 {
		if err := cm.UnmarshalJSON(res.Bundle.ClickMap); err != nil {
			fatalf("clickmap: %v", err)
		}
	}
	factor := float64(*screen) / float64(imagecodec.PageWidth)
	scaled := img.ResizeNearest(factor)
	scaledCM := cm.Scale(factor)
	fmt.Printf("page %s: %dx%d (scaled %dx%d for a %dpx screen), %d link regions\n",
		cm.PageURL, img.W, img.H, scaled.W, scaled.H, *screen, len(cm.Regions))

	if *png != "" {
		out, err := os.Create(*png)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer out.Close()
		if err := scaled.WritePNG(out); err != nil {
			fatalf("png: %v", err)
		}
		fmt.Printf("wrote %s\n", *png)
	}
	if *clicks != "" {
		data, err := scaledCM.MarshalJSON()
		if err != nil {
			fatalf("clickmap: %v", err)
		}
		if err := os.WriteFile(*clicks, data, 0o644); err != nil {
			fatalf("write: %v", err)
		}
		fmt.Printf("wrote %s\n", *clicks)
	}
	if *click != "" {
		parts := strings.SplitN(*click, ",", 2)
		if len(parts) != 2 {
			fatalf("bad -click %q, want x,y", *click)
		}
		x, err1 := strconv.Atoi(parts[0])
		y, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fatalf("bad -click %q", *click)
		}
		if url, ok := scaledCM.Hit(x, y); ok {
			fmt.Printf("tap (%d,%d) -> %s (cached? request via SMS: GET %s LOC <lat,lon>)\n",
				x, y, url, url)
		} else {
			fmt.Printf("tap (%d,%d) -> nothing clickable\n", x, y)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
