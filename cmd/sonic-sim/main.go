// Command sonic-sim runs a day-scale discrete-event simulation of a
// SONIC deployment: a transmitter broadcasting the corpus carousel, a
// population of listeners with the paper's three capability classes
// (Figure 3), hourly content churn, and SMS requests from uplink users.
// It reports what such a deployment actually delivers: catalog
// freshness, per-user pages received, request latency.
//
//	sonic-sim -hours 24 -listeners 200 -rate 10000
//
// With -telemetry :7380 it also serves the live ops endpoint
// (/metrics, /metrics.json, /debug/pprof), runs an instrumented
// end-to-end probe so every pipeline stage reports, and stays alive
// for scraping after the report.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sonic/internal/broadcast"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/obsprobe"
	"sonic/internal/stats"
	"sonic/internal/telemetry"
)

func main() {
	var (
		hours     = flag.Int("hours", 24, "simulated hours")
		listeners = flag.Int("listeners", 200, "listener population")
		rate      = flag.Float64("rate", 10000, "channel rate (bps)")
		uplinkPct = flag.Int("uplink", 20, "percent of listeners with SMS uplink (user-C)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		telAddr   = flag.String("telemetry", "", "serve the ops endpoint (/metrics, /metrics.json, /debug/pprof) on this address, e.g. :7380; keeps the process alive after the report")
	)
	flag.Parse()

	var reg *telemetry.Registry // nil unless -telemetry: all records below are no-ops
	if *telAddr != "" {
		reg = telemetry.New()
		bound, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: http://%s/metrics (JSON at /metrics.json, profiles at /debug/pprof)\n", bound)
	}

	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pipe.Instrument(reg)
	rng := rand.New(rand.NewSource(*seed))
	pages := corpus.Pages()
	size := func(ref corpus.PageRef, hour int) int {
		h := 0
		for _, c := range ref.URL {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return 90*1024 + h%(65*1024)
	}

	car, err := broadcast.CorpusCarousel(pages, size, broadcast.PolicySqrt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	car.Instrument(reg, *rate)

	// Listener state: which page each listener last received and when.
	type listener struct {
		uplink   bool
		lossRate float64 // per-frame loss of their reception setup
		received int
		misses   int // transmissions they failed to capture
	}
	pop := make([]listener, *listeners)
	for i := range pop {
		pop[i].uplink = rng.Intn(100) < *uplinkPct
		// Receiver mix per Fig. 3: most on tuner/cable (lossless), some
		// over the air at varying distances.
		switch {
		case rng.Float64() < 0.6: // user-B/C: tuner or jack
			pop[i].lossRate = 0
		case rng.Float64() < 0.8: // near radio
			pop[i].lossRate = 0.03
		default: // across the room
			pop[i].lossRate = 0.15
		}
	}

	// Broadcast loop: schedule pages with the carousel; each transmission
	// takes airtime = bytes*8/rate seconds; listeners capture it if no
	// frame of the bitstream is lost (bitstream transport: all or
	// nothing per page).
	sched := car.Schedule(100000)
	entries := car.Entries()
	var (
		simT         float64 // seconds
		horizonS     = float64(*hours) * 3600
		transmission int
		freshAt      = map[string]int{} // url -> hour of content last aired
		requests     []float64          // request-to-delivery latencies
		pending      = map[string][]float64{}
	)
	for _, idx := range sched {
		if simT >= horizonS {
			break
		}
		e := entries[idx]
		hour := int(simT / 3600)
		bytes := size(e.Ref, hour)
		air := float64(bytes) * 8 / *rate
		simT += air
		transmission++
		freshAt[e.Ref.URL] = hour

		// Deliveries.
		frames := bytes / 85
		for i := range pop {
			if pop[i].lossRate == 0 || rng.Float64() < probAllFrames(pop[i].lossRate, frames) {
				pop[i].received++
			} else {
				pop[i].misses++
			}
		}
		// Outstanding requests for this page are satisfied now.
		for _, t0 := range pending[e.Ref.URL] {
			requests = append(requests, simT-t0)
		}
		delete(pending, e.Ref.URL)

		// Uplink users occasionally request a random page (Zipf-ish).
		if rng.Float64() < 0.3 {
			who := rng.Intn(len(pop))
			if pop[who].uplink {
				ref := pages[rng.Intn(10)] // popular head
				pending[ref.URL] = append(pending[ref.URL], simT)
			}
		}
	}

	// --- report -----------------------------------------------------------
	fmt.Printf("sonic-sim: %d h at %.0f kbps (net %.1f kbps page goodput), %d listeners (%d%% uplink)\n",
		*hours, *rate/1000, pipe.NetGoodputBps()/1000, *listeners, *uplinkPct)
	fmt.Printf("transmissions: %d pages aired (%.1f/hour)\n",
		transmission, float64(transmission)/float64(*hours))
	distinct := len(freshAt)
	fmt.Printf("catalog coverage: %d/%d corpus pages aired at least once\n", distinct, len(pages))

	var cableRecv, airRecv []float64
	for _, l := range pop {
		if l.lossRate == 0 {
			cableRecv = append(cableRecv, float64(l.received))
		} else {
			airRecv = append(airRecv, float64(l.received))
		}
	}
	fmt.Printf("cable/tuner listeners (%d): pages received %s\n",
		len(cableRecv), stats.BoxplotOf(cableRecv))
	fmt.Printf("over-the-air listeners (%d): pages received %s\n",
		len(airRecv), stats.BoxplotOf(airRecv))
	fmt.Println("  (bitstream transport: one lost frame voids the page, so over-the-air")
	fmt.Println("   listeners need the cell transport — see DESIGN.md section 5a)")

	if len(requests) > 0 {
		rb := stats.BoxplotOf(requests)
		fmt.Printf("request-to-delivery latency (s): %s (n=%d)\n", rb, len(requests))
		fmt.Printf("  (median %.1f min; the SMS ack promises an ETA in this range)\n",
			rb.Median/60)
	} else {
		fmt.Println("no uplink requests were satisfied in the horizon")
	}
	wait := car.ExpectedWaitSeconds(*rate)
	fmt.Printf("carousel expected wait for a random popular page: %s\n",
		time.Duration(wait*float64(time.Second)).Round(time.Second))

	if reg != nil {
		// The discrete-event loop above models the channel analytically,
		// so run one real end-to-end page through every instrumented
		// stage to populate the per-stage spans and codec counters, then
		// keep serving so the endpoint stays scrapeable.
		fmt.Println("telemetry: running instrumented end-to-end probe...")
		if err := obsprobe.Run(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("telemetry: probe complete; serving until interrupted (ctrl-C to exit)")
		select {}
	}
}

// probAllFrames is the probability all n frames survive at per-frame
// loss p.
func probAllFrames(p float64, n int) float64 {
	q := 1.0
	for i := 0; i < n; i++ {
		q *= 1 - p
		if q < 1e-12 {
			return 0
		}
	}
	return q
}
