// Command sonic-sim runs a day-scale discrete-event simulation of a
// SONIC deployment: a transmitter broadcasting the corpus carousel, a
// population of listeners with the paper's three capability classes
// (Figure 3), hourly content churn, and SMS requests from uplink users.
// It reports what such a deployment actually delivers: catalog
// freshness, per-user pages received, request latency.
//
//	sonic-sim -hours 24 -listeners 200 -rate 10000
//
// With -telemetry :7380 it also serves the live ops endpoint
// (/metrics, /metrics.json, /debug/pprof), runs an instrumented
// end-to-end probe so every pipeline stage reports, and stays alive
// for scraping after the report.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sonic/internal/broadcast"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/obsprobe"
	"sonic/internal/stats"
	"sonic/internal/telemetry"
)

func main() {
	var (
		hours     = flag.Int("hours", 24, "simulated hours")
		listeners = flag.Int("listeners", 200, "listener population")
		rate      = flag.Float64("rate", 10000, "channel rate (bps)")
		uplinkPct = flag.Int("uplink", 20, "percent of listeners with SMS uplink (user-C)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		telAddr   = flag.String("telemetry", "", "serve the ops endpoint (/metrics, /metrics.json, /debug/pprof) on this address, e.g. :7380; keeps the process alive after the report")
		sloAir    = flag.Duration("slo-on-air", 45*time.Minute, "request->on-air SLO budget (0 disables the evaluator)")
		sloDeliv  = flag.Duration("slo-delivered", time.Hour, "request->delivered SLO budget (0 disables the evaluator)")
	)
	flag.Parse()

	var reg *telemetry.Registry // nil unless -telemetry: all records below are no-ops
	var lc *telemetry.Lifecycle
	if *telAddr != "" {
		reg = telemetry.New()
		lc = telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{
			SLOTargets: telemetry.SLOTargets{
				RequestToOnAir:     *sloAir,
				RequestToDelivered: *sloDeliv,
			},
		})
		bound, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: http://%s/metrics (prom at /metrics?format=prom, JSON at /metrics.json, traces at /trace/<id>, profiles at /debug/pprof)\n", bound)
	}

	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pipe.Instrument(reg)
	rng := rand.New(rand.NewSource(*seed))
	pages := corpus.Pages()
	size := func(ref corpus.PageRef, hour int) int {
		h := 0
		for _, c := range ref.URL {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return 90*1024 + h%(65*1024)
	}

	car, err := broadcast.CorpusCarousel(pages, size, broadcast.PolicySqrt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	car.Instrument(reg, *rate)

	// Listener state: which page each listener last received and when.
	type listener struct {
		uplink   bool
		lossRate float64 // per-frame loss of their reception setup
		received int
		misses   int // transmissions they failed to capture
	}
	pop := make([]listener, *listeners)
	for i := range pop {
		pop[i].uplink = rng.Intn(100) < *uplinkPct
		// Receiver mix per Fig. 3: most on tuner/cable (lossless), some
		// over the air at varying distances.
		switch {
		case rng.Float64() < 0.6: // user-B/C: tuner or jack
			pop[i].lossRate = 0
		case rng.Float64() < 0.8: // near radio
			pop[i].lossRate = 0.03
		default: // across the room
			pop[i].lossRate = 0.15
		}
	}

	// Broadcast loop: schedule pages with the carousel; each transmission
	// takes airtime = bytes*8/rate seconds; listeners capture it if no
	// frame of the bitstream is lost (bitstream transport: all or
	// nothing per page).
	sched := car.Schedule(100000)
	entries := car.Entries()
	// Lifecycle traces are stamped in simulation time: second 0 of the
	// sim is the Unix epoch, so request→on-air latencies land on the
	// histograms at their simulated (minutes-scale) values.
	base := time.Unix(0, 0)
	simTime := func(s float64) time.Time {
		return base.Add(time.Duration(s * float64(time.Second)))
	}
	type pendingReq struct {
		t0 float64
		tr *telemetry.Trace
	}
	var (
		simT         float64 // seconds
		horizonS     = float64(*hours) * 3600
		transmission int
		freshAt      = map[string]int{} // url -> hour of content last aired
		requests     []float64          // request-to-delivery latencies
		pending      = map[string][]pendingReq{}
		pendingN     int
		gPending     = reg.Gauge("sim_pending_requests")
		gSimHours    = reg.Gauge("sim_clock_hours")
	)
	for _, idx := range sched {
		if simT >= horizonS {
			break
		}
		e := entries[idx]
		hour := int(simT / 3600)
		bytes := size(e.Ref, hour)
		air := float64(bytes) * 8 / *rate
		airStart := simT
		simT += air
		transmission++
		freshAt[e.Ref.URL] = hour

		// Deliveries.
		frames := bytes / 85
		for i := range pop {
			if pop[i].lossRate == 0 || rng.Float64() < probAllFrames(pop[i].lossRate, frames) {
				pop[i].received++
			} else {
				pop[i].misses++
			}
		}
		// Outstanding requests for this page are satisfied now.
		for _, p := range pending[e.Ref.URL] {
			requests = append(requests, simT-p.t0)
			p.tr.StampAt(telemetry.StageOnAirStart, simTime(airStart))
			p.tr.StampAt(telemetry.StageOnAirDone, simTime(simT))
			p.tr.StampAt(telemetry.StageDelivered, simTime(simT))
			pendingN--
		}
		delete(pending, e.Ref.URL)

		// Uplink users occasionally request a random page (Zipf-ish).
		if rng.Float64() < 0.3 {
			who := rng.Intn(len(pop))
			if pop[who].uplink {
				ref := pages[rng.Intn(10)] // popular head
				at := simTime(simT)
				tr := lc.BeginAt(ref.URL, fmt.Sprintf("sim-user-%d", who), at)
				tr.StampAt(telemetry.StageAdmitted, at)
				// The carousel broadcasts pre-rendered content, so the
				// request is queue-bound from admission on.
				tr.StampAt(telemetry.StageEnqueued, at)
				pending[ref.URL] = append(pending[ref.URL], pendingReq{t0: simT, tr: tr})
				pendingN++
			}
		}
		gPending.Set(float64(pendingN))
		gSimHours.Set(simT / 3600)
	}
	// Requests never aired within the horizon are aborted, not leaked.
	for url, reqs := range pending {
		for _, p := range reqs {
			p.tr.Abort(simTime(horizonS), "sim horizon reached")
		}
		delete(pending, url)
	}

	// --- report -----------------------------------------------------------
	fmt.Printf("sonic-sim: %d h at %.0f kbps (net %.1f kbps page goodput), %d listeners (%d%% uplink)\n",
		*hours, *rate/1000, pipe.NetGoodputBps()/1000, *listeners, *uplinkPct)
	fmt.Printf("transmissions: %d pages aired (%.1f/hour)\n",
		transmission, float64(transmission)/float64(*hours))
	distinct := len(freshAt)
	fmt.Printf("catalog coverage: %d/%d corpus pages aired at least once\n", distinct, len(pages))

	var cableRecv, airRecv []float64
	for _, l := range pop {
		if l.lossRate == 0 {
			cableRecv = append(cableRecv, float64(l.received))
		} else {
			airRecv = append(airRecv, float64(l.received))
		}
	}
	fmt.Printf("cable/tuner listeners (%d): pages received %s\n",
		len(cableRecv), stats.BoxplotOf(cableRecv))
	fmt.Printf("over-the-air listeners (%d): pages received %s\n",
		len(airRecv), stats.BoxplotOf(airRecv))
	fmt.Println("  (bitstream transport: one lost frame voids the page, so over-the-air")
	fmt.Println("   listeners need the cell transport — see DESIGN.md section 5a)")

	if len(requests) > 0 {
		rb := stats.BoxplotOf(requests)
		fmt.Printf("request-to-delivery latency (s): %s (n=%d)\n", rb, len(requests))
		fmt.Printf("  (median %.1f min; the SMS ack promises an ETA in this range)\n",
			rb.Median/60)
	} else {
		fmt.Println("no uplink requests were satisfied in the horizon")
	}
	wait := car.ExpectedWaitSeconds(*rate)
	fmt.Printf("carousel expected wait for a random popular page: %s\n",
		time.Duration(wait*float64(time.Second)).Round(time.Second))

	if reg != nil {
		snap := reg.Snapshot()
		if h, ok := snap.Histograms["request_to_on_air_seconds"]; ok && h.Count > 0 {
			fmt.Printf("lifecycle: request->on-air p50 %s p99 %s over %d traced requests\n",
				time.Duration(h.P50*float64(time.Second)).Round(time.Second),
				time.Duration(h.P99*float64(time.Second)).Round(time.Second), h.Count)
		}
		breaches := int64(0)
		for k, v := range snap.Counters {
			if name, _ := telemetry.ParseMetricKey(k); name == "lifecycle_slo_breach_total" {
				breaches += v
			}
		}
		fmt.Printf("lifecycle: %d SLO breaches (budgets: on-air %s, delivered %s)\n",
			breaches, *sloAir, *sloDeliv)
	}

	if reg != nil {
		// The discrete-event loop above models the channel analytically,
		// so run one real end-to-end page through every instrumented
		// stage to populate the per-stage spans and codec counters, then
		// keep serving so the endpoint stays scrapeable.
		fmt.Println("telemetry: running instrumented end-to-end probe...")
		if err := obsprobe.Run(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("telemetry: probe complete; serving until interrupted (ctrl-C to exit)")
		select {}
	}
}

// probAllFrames is the probability all n frames survive at per-frame
// loss p.
func probAllFrames(p float64, n int) float64 {
	q := 1.0
	for i := 0; i < n; i++ {
		q *= 1 - p
		if q < 1e-12 {
			return 0
		}
	}
	return q
}
