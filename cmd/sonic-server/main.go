// Command sonic-server runs the SONIC server side.
//
// Two modes:
//
//	# one-shot: render a page and emit its broadcast audio as WAV
//	sonic-server -emit khabar.pk/ -hour 9 -out page.wav
//
//	# service: accept transmitter control links over TCP and queue the
//	# most popular pages for broadcast
//	sonic-server -serve -listen 127.0.0.1:7333 -push 10
//
// Either mode accepts -telemetry :addr to serve the live ops endpoint
// (/metrics, /metrics.json, /debug/pprof) while the server runs.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"sonic/internal/audio"
	"sonic/internal/core"
	"sonic/internal/server"
	"sonic/internal/telemetry"
)

func main() {
	var (
		emit   = flag.String("emit", "", "URL to render and emit as a WAV broadcast")
		hour   = flag.Int("hour", 0, "corpus hour for -emit")
		out    = flag.String("out", "page.wav", "output WAV for -emit")
		serve  = flag.Bool("serve", false, "run the transmitter control service")
		listen = flag.String("listen", "127.0.0.1:7333", "control-link listen address")
		push   = flag.Int("push", 10, "popular pages to pre-queue in -serve mode")
		tel    = flag.String("telemetry", "", "serve the ops endpoint (/metrics, /metrics.json, /debug/pprof) on this address, e.g. :7380")
		sloAir = flag.Duration("slo-on-air", 0, "request->on-air SLO budget (0 disables the evaluator)")
	)
	flag.Parse()

	var reg *telemetry.Registry // nil unless -telemetry: all records are no-ops
	if *tel != "" {
		reg = telemetry.New()
		telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{
			SLOTargets: telemetry.SLOTargets{RequestToOnAir: *sloAir},
		})
		bound, err := telemetry.Serve(*tel, reg)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		fmt.Printf("telemetry: http://%s/metrics (prom at /metrics?format=prom, JSON at /metrics.json, traces at /trace/<id>, profiles at /debug/pprof)\n", bound)
	}

	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fatalf("pipeline: %v", err)
	}
	pipe.Instrument(reg)
	srv := server.New(server.DefaultConfig(), pipe)
	srv.Instrument(reg)
	// A Karachi-class metro transmitter; -serve deployments would add
	// one per covered city.
	srv.AddTransmitter(server.Transmitter{
		ID: "tx-karachi", FreqMHz: 93.7, Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})

	switch {
	case *emit != "":
		now := time.Unix(0, 0).Add(time.Duration(*hour) * time.Hour)
		bundle, err := srv.RenderPage(*emit, now)
		if err != nil {
			fatalf("render: %v", err)
		}
		samples, err := pipe.EncodePageAudio(1, bundle)
		if err != nil {
			fatalf("encode: %v", err)
		}
		buf := &audio.Buffer{Rate: 48000, Samples: samples}
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer f.Close()
		if err := audio.WriteWAV(f, buf); err != nil {
			fatalf("wav: %v", err)
		}
		fmt.Printf("emitted %s (image %d KB, clickmap %d B) as %.1fs of audio -> %s\n",
			*emit, len(bundle.Image)/1024, len(bundle.ClickMap), buf.Duration(), *out)

	case *serve:
		if err := srv.PushPopular(*push, time.Now()); err != nil {
			fatalf("push: %v", err)
		}
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fatalf("listen: %v", err)
		}
		pages, bytes := srv.QueueDepth("tx-karachi")
		fmt.Printf("sonic-server on %s: %d pages (%d KB) queued for tx-karachi; airtime %.0fs at %.1f kbps\n",
			l.Addr(), pages, bytes/1024, pipe.AirtimeSeconds(bytes), pipe.NetGoodputBps()/1000)
		if err := srv.Serve(l); err != nil {
			fatalf("serve: %v", err)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
