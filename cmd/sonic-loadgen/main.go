// Command sonic-loadgen drives the SONIC server's fleet-scale request
// path: it simulates 10⁵–10⁶ SMS requesters with Zipf page popularity
// spread over the coverage areas of a multi-region transmitter fleet,
// runs the whole day on a simulated clock (requests go through the real
// SMSC grammar, the batched admission stage, the render cache, and the
// per-tower broadcast queues), and reports the latency and coalescing
// numbers that matter at national scale:
//
//   - p50/p99 request → on-air latency (simulated seconds, from the
//     lifecycle histogram request_to_on_air_seconds)
//   - dedup ratio: accepted requests per broadcast actually queued —
//     the whole-request coalescing win
//   - shard balance: max/mean submitted requests across admission lock
//     stripes (1.0 = perfectly even)
//   - peak queue depth and busy-reject counts (backpressure SLOs)
//
// The -out JSON snapshot carries a benchguard-compatible "micro" map so
// scripts/benchguard.sh --history can track the trend, and -check turns
// the SLO thresholds (-max-p99, -min-dedup) into an exit code for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sonic/internal/admission"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/server"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

// micro mirrors the sonic-bench perf kernel entry so benchguard's
// history view can fold loadgen snapshots in with BENCH_*.json.
type micro struct {
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// procsPoint is one cell of the -procs sweep: the identical seeded
// workload rerun at a pinned GOMAXPROCS.
type procsPoint struct {
	Procs       int     `json:"procs"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is wall(first point) / wall(this point); Efficiency
	// normalizes it by the procs ratio (1.0 = perfect scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// report is the -out JSON schema.
type report struct {
	TakenAt    time.Time `json:"taken_at"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Users    int     `json:"users"`
	Towers   int     `json:"towers"`
	SimHours float64 `json:"sim_hours"`
	ZipfS    float64 `json:"zipf_s"`
	Shards   int     `json:"shards"`

	Requests     int64   `json:"requests"`      // SMS requests delivered to the server
	Accepted     int64   `json:"accepted"`      // QUEUED acks
	Rejected     int64   `json:"rejected"`      // BUSY replies (backpressure)
	NoCoverage   int64   `json:"no_coverage"`   // ERR replies
	Enqueued     int64   `json:"enqueued"`      // broadcasts queued
	Renders      int64   `json:"renders"`       // render-cache misses
	Batches      int64   `json:"batches"`       // admission batches flushed
	DedupRatio   float64 `json:"dedup_ratio"`   // accepted / enqueued
	ShardBalance float64 `json:"shard_balance"` // max/mean per-stripe submits

	P50OnAirSec    float64 `json:"p50_on_air_seconds"` // simulated clock
	P99OnAirSec    float64 `json:"p99_on_air_seconds"`
	OnAirCount     int64   `json:"on_air_count"`
	PeakQueuePages int     `json:"peak_queue_pages"`
	PeakPending    int     `json:"peak_admission_pending"`

	WallSeconds   float64 `json:"wall_seconds"`
	WallReqPerSec float64 `json:"wall_requests_per_second"`

	// ProcsMatrix is the -procs sweep: the same seed rerun at each
	// pinned GOMAXPROCS, with scaling efficiency relative to the first
	// point. HostCPUs records what the box can physically deliver.
	HostCPUs    int          `json:"host_cpus,omitempty"`
	ProcsMatrix []procsPoint `json:"procs_matrix,omitempty"`

	Micro map[string]micro `json:"micro"`
}

func main() {
	users := flag.Int("users", 100000, "simulated requesters (one SMS each over the horizon)")
	towers := flag.Int("towers", 16, "transmitter fleet size")
	hours := flag.Float64("hours", 1.0, "simulated horizon in hours")
	tick := flag.Duration("tick", time.Second, "simulation step")
	zipfS := flag.Float64("zipf", 1.1, "Zipf skew over corpus page popularity (must be > 1)")
	seed := flag.Int64("seed", 1, "deterministic workload seed")
	quality := flag.Int("quality", 10, "SIC render quality")
	shards := flag.Int("shards", 0, "queue/admission lock stripes (0 = package default)")
	maxBatch := flag.Int("max-batch", 512, "admission flush threshold (distinct keys per stripe)")
	maxPending := flag.Int("max-pending", 1<<20, "admission backpressure bound per stripe")
	procsFlag := flag.String("procs", "", "comma-separated GOMAXPROCS sweep (e.g. 1,2,4,8): rerun the same seed at each pinned value and report scaling efficiency")
	out := flag.String("out", "", "write the JSON report to this path")
	check := flag.Bool("check", false, "exit 1 when an SLO threshold below fails")
	maxP99 := flag.Float64("max-p99", 0, "with -check: max p99 request→on-air (simulated seconds)")
	minDedup := flag.Float64("min-dedup", 0, "with -check: min accepted-requests-per-broadcast ratio")
	flag.Parse()

	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "sonic-loadgen: -zipf must be > 1")
		os.Exit(2)
	}
	rep, err := run(*users, *towers, *hours, *tick, *zipfS, *seed, *quality, *shards, *maxBatch, *maxPending)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sonic-loadgen:", err)
		os.Exit(1)
	}
	if *procsFlag != "" {
		list, err := parseProcs(*procsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sonic-loadgen:", err)
			os.Exit(2)
		}
		if err := sweepProcs(rep, list, *users, *towers, *hours, *tick, *zipfS, *seed, *quality, *shards, *maxBatch, *maxPending); err != nil {
			fmt.Fprintln(os.Stderr, "sonic-loadgen:", err)
			os.Exit(1)
		}
	}
	printReport(rep)
	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sonic-loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sonic-loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote report to %s\n", *out)
	}
	if *check {
		failed := false
		if *maxP99 > 0 && rep.P99OnAirSec > *maxP99 {
			fmt.Fprintf(os.Stderr, "CHECK FAIL: p99 on-air %.1fs > budget %.1fs\n", rep.P99OnAirSec, *maxP99)
			failed = true
		}
		if *minDedup > 0 && rep.DedupRatio < *minDedup {
			fmt.Fprintf(os.Stderr, "CHECK FAIL: dedup ratio %.2f < required %.2f\n", rep.DedupRatio, *minDedup)
			failed = true
		}
		if rep.OnAirCount < rep.Accepted {
			fmt.Fprintf(os.Stderr, "CHECK FAIL: only %d of %d accepted requests made it on air\n", rep.OnAirCount, rep.Accepted)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("CHECK OK")
	}
}

// parseProcs parses "1,2,4,8" into a positive-int list (order kept,
// duplicates dropped).
func parseProcs(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -procs list %q", s)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bad -procs list %q", s)
	}
	return out, nil
}

// sweepProcs reruns the identical seeded workload at each pinned
// GOMAXPROCS and folds the scaling matrix into rep: one procsPoint per
// value plus a loadgen_procs_pN micro per point so benchguard --history
// tracks each cell like any other kernel. Efficiency is relative to
// the sweep's first point (1.0 = linear scaling); on a host with fewer
// cores than a point asks for, the pin is a no-op upward and the matrix
// simply records the flat wall time — host_cpus says why.
func sweepProcs(rep *report, list []int, users, towers int, hours float64, tick time.Duration, zipfS float64, seed int64, quality, shards, maxBatch, maxPending int) error {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	rep.HostCPUs = runtime.NumCPU()
	var wall0 float64
	for i, p := range list {
		runtime.GOMAXPROCS(p)
		r, err := run(users, towers, hours, tick, zipfS, seed, quality, shards, maxBatch, maxPending)
		if err != nil {
			return fmt.Errorf("procs sweep at %d: %w", p, err)
		}
		pt := procsPoint{Procs: p, WallSeconds: r.WallSeconds}
		if i == 0 {
			wall0 = r.WallSeconds
		}
		if wall0 > 0 && r.WallSeconds > 0 {
			pt.Speedup = wall0 / r.WallSeconds
			pt.Efficiency = pt.Speedup * float64(list[0]) / float64(p)
		}
		rep.ProcsMatrix = append(rep.ProcsMatrix, pt)
		rep.Micro[fmt.Sprintf("loadgen_procs_p%d", p)] = micro{Iters: 1, NsPerOp: r.WallSeconds * 1e9}
	}
	return nil
}

// fleetGrid lays n towers on a lat/lon grid over a Pakistan-sized
// region, spaced so neighboring coverage discs overlap slightly (no
// dead zones inside the grid) while most points resolve to one tower.
func fleetGrid(n int) []server.Transmitter {
	cols := 1
	for cols*cols < n {
		cols++
	}
	const (
		lat0    = 24.0
		lon0    = 66.0
		spacing = 0.55 // degrees; ~61 km latitude steps, 45 km radius discs
		radius  = 45.0
	)
	fleet := make([]server.Transmitter, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		tx := server.Transmitter{
			ID:       fmt.Sprintf("tx-%03d", i),
			FreqMHz:  88.0 + 0.2*float64(i%100),
			Lat:      lat0 + spacing*float64(r),
			Lon:      lon0 + spacing*float64(c),
			RadiusKm: radius,
		}
		// Every fourth station runs a second frequency (the paper's
		// multi-frequency mode), doubling its drain rate.
		if i%4 == 0 {
			tx.ExtraFreqsMHz = []float64{tx.FreqMHz + 0.4}
		}
		fleet = append(fleet, tx)
	}
	return fleet
}

// event is one user's SMS request.
type event struct {
	atSec    float64
	url      string
	lat, lon float64
	from     string
}

func run(users, towers int, hours float64, tick time.Duration, zipfS float64, seed int64, quality, shards, maxBatch, maxPending int) (*report, error) {
	rng := rand.New(rand.NewSource(seed))
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cfg := server.DefaultConfig()
	cfg.Quality = quality
	cfg.Shards = shards
	cfg.Admission = admission.Config{
		Enabled:    true,
		Shards:     shards,
		MaxBatch:   maxBatch,
		MaxPending: maxPending,
		RetryAfter: 30 * time.Second,
		// FlushEvery stays 0: the tick loop flushes on the simulated
		// clock, so batch latency is bounded by -tick, not wall time.
	}
	srv := server.New(cfg, pipe)
	defer srv.Close()
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{MaxOpenTraces: 1 << 20})
	srv.Instrument(reg)

	fleet := fleetGrid(towers)
	for _, tx := range fleet {
		srv.AddTransmitter(tx)
	}

	// The SMSC delivers requests and replies with 1–5 s latency. Users
	// share a pool of reply numbers so the handler table stays small at
	// 10⁶ requesters; replies are tallied by kind, which is all the
	// report needs.
	smsc := sms.NewSMSC(time.Second, 5*time.Second, seed)
	smsc.Register(cfg.Number, srv.HandleSMS(smsc))
	var accepted, rejected, noCoverage int64
	const replyPool = 1024
	for i := 0; i < replyPool; i++ {
		smsc.Register(fmt.Sprintf("+9230%07d", i), func(m sms.Message) {
			switch {
			case len(m.Body) > 6 && m.Body[:6] == "QUEUED":
				accepted++
			case len(m.Body) > 4 && m.Body[:4] == "BUSY":
				rejected++
			default:
				noCoverage++
			}
		})
	}

	// Workload: every user sends one request at a uniform time in the
	// horizon, for a Zipf-popular corpus page, from a point inside a
	// random tower's coverage.
	pages := corpus.Pages()
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(pages)-1))
	horizonSec := hours * 3600
	events := make([]event, users)
	for i := range events {
		home := fleet[rng.Intn(len(fleet))]
		events[i] = event{
			atSec: rng.Float64() * horizonSec,
			url:   pages[zipf.Uint64()].URL,
			// ±0.2° keeps the point inside the 45 km disc.
			lat:  home.Lat + (rng.Float64()-0.5)*0.4,
			lon:  home.Lon + (rng.Float64()-0.5)*0.4,
			from: fmt.Sprintf("+9230%07d", i%replyPool),
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].atSec < events[j].atSec })

	// Tick loop on the simulated clock: submit due requests, advance the
	// SMSC, flush admission, then drain each transmitter as fast as its
	// channel allows (busyUntil models the station airing one page at a
	// time per frequency group).
	epoch := cfg.Epoch
	end := epoch.Add(time.Duration(horizonSec * float64(time.Second)))
	busyUntil := make([]time.Time, len(fleet))
	for i := range busyUntil {
		busyUntil[i] = epoch
	}
	var requests int64
	peakQueue, peakPending := 0, 0
	next := 0
	wall0 := time.Now()

	drainTower := func(i int, now time.Time) {
		for !busyUntil[i].After(now) {
			_, _, bundle, ok := srv.DequeuePageAt(fleet[i].ID, busyUntil[i])
			if !ok {
				busyUntil[i] = now
				break
			}
			airSec := pipe.AirtimeSeconds(len(core.MarshalBundle(bundle))) / float64(fleet[i].FrequencyCount())
			busyUntil[i] = busyUntil[i].Add(time.Duration(airSec * float64(time.Second)))
		}
	}

	// Towers drain independently (private busyUntil slot, own broadcast
	// queue), so the per-tick drain spreads over a bounded pool when the
	// runtime has cores to give it; at GOMAXPROCS=1 it stays serial.
	drainAll := func(now time.Time) {
		nw := runtime.GOMAXPROCS(0)
		if nw > len(fleet) {
			nw = len(fleet)
		}
		if nw <= 1 {
			for i := range fleet {
				drainTower(i, now)
			}
		} else {
			sem := make(chan struct{}, nw)
			var wg sync.WaitGroup
			for i := range fleet {
				sem <- struct{}{}
				wg.Add(1)
				go func(i int) {
					defer func() { <-sem; wg.Done() }()
					drainTower(i, now)
				}(i)
			}
			wg.Wait()
		}
		for i := range fleet {
			if pages, _ := srv.QueueDepth(fleet[i].ID); pages > peakQueue {
				peakQueue = pages
			}
		}
	}

	step := func(now time.Time) {
		for next < len(events) && epoch.Add(time.Duration(events[next].atSec*float64(time.Second))).Before(now) {
			e := events[next]
			next++
			requests++
			body := sms.FormatRequest(sms.Request{URL: e.url, Lat: e.lat, Lon: e.lon})
			if err := smsc.Submit(now.Add(-tick), e.from, cfg.Number, body); err != nil {
				return
			}
		}
		smsc.Advance(now)
		if p := srv.AdmissionPending(); p > peakPending {
			peakPending = p
		}
		// Batch renders spread over the admission shards; the concurrent
		// flush lets them use every core the runtime is pinned to.
		srv.FlushAdmissionConcurrent(runtime.GOMAXPROCS(0))
		drainAll(now)
	}

	for now := epoch.Add(tick); !now.After(end); now = now.Add(tick) {
		step(now)
	}
	// Drain grace: keep ticking past the horizon until every queue and
	// the SMSC are empty (capped so a bug cannot spin forever).
	graceEnd := end.Add(48 * time.Hour)
	for now := end.Add(tick); !now.After(graceEnd); now = now.Add(tick) {
		step(now)
		if next == len(events) && smsc.Pending() == 0 && srv.AdmissionPending() == 0 {
			busy := false
			for i := range fleet {
				if p, _ := srv.QueueDepth(fleet[i].ID); p > 0 || busyUntil[i].After(now) {
					busy = true
					break
				}
			}
			if !busy {
				break
			}
		}
	}
	wall := time.Since(wall0)

	snap := reg.Snapshot()
	onAir := snap.Histograms["request_to_on_air_seconds"]
	var stripes []int64
	prefix := "admission_shard_submitted_total"
	for name, v := range snap.Counters {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			stripes = append(stripes, v)
		}
	}
	balance := 0.0
	if len(stripes) > 0 {
		var sum, max int64
		for _, v := range stripes {
			sum += v
			if v > max {
				max = v
			}
		}
		if sum > 0 {
			balance = float64(max) * float64(len(stripes)) / float64(sum)
		}
	}
	enqueued := snap.Counters["server_pages_enqueued_total"]
	dedup := 0.0
	if enqueued > 0 {
		dedup = float64(accepted) / float64(enqueued)
	}
	effShards := shards
	if effShards <= 0 {
		effShards = admission.DefaultShards
	}
	rep := &report{
		TakenAt:        time.Now(),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Users:          users,
		Towers:         towers,
		SimHours:       hours,
		ZipfS:          zipfS,
		Shards:         effShards,
		Requests:       requests,
		Accepted:       accepted,
		Rejected:       rejected,
		NoCoverage:     noCoverage,
		Enqueued:       enqueued,
		Renders:        snap.Counters["server_render_cache_misses_total"],
		Batches:        snap.Counters["admission_batches_total"],
		DedupRatio:     dedup,
		ShardBalance:   balance,
		P50OnAirSec:    onAir.P50,
		P99OnAirSec:    onAir.P99,
		OnAirCount:     onAir.Count,
		PeakQueuePages: peakQueue,
		PeakPending:    peakPending,
		WallSeconds:    wall.Seconds(),
		Micro:          map[string]micro{},
	}
	if wall > 0 {
		rep.WallReqPerSec = float64(requests) / wall.Seconds()
	}
	if requests > 0 {
		rep.Micro["loadgen_wall_per_request"] = micro{Iters: int(requests), NsPerOp: float64(wall.Nanoseconds()) / float64(requests)}
	}
	if onAir.Count > 0 {
		rep.Micro["loadgen_p99_on_air"] = micro{Iters: int(onAir.Count), NsPerOp: rep.P99OnAirSec * 1e9}
	}
	return rep, nil
}

func printReport(r *report) {
	fmt.Printf("sonic-loadgen: %d users, %d towers, %.2f sim hours (zipf %.2f, %d stripes)\n",
		r.Users, r.Towers, r.SimHours, r.ZipfS, r.Shards)
	fmt.Printf("  requests      %d (accepted %d, busy %d, no-coverage %d)\n",
		r.Requests, r.Accepted, r.Rejected, r.NoCoverage)
	fmt.Printf("  broadcasts    %d queued, %d renders, %d batches, dedup ratio %.1f\n",
		r.Enqueued, r.Renders, r.Batches, r.DedupRatio)
	fmt.Printf("  on-air        p50 %.1fs  p99 %.1fs  (sim clock, %d observations)\n",
		r.P50OnAirSec, r.P99OnAirSec, r.OnAirCount)
	fmt.Printf("  shard balance %.2f (max/mean), peak queue %d pages, peak pending %d\n",
		r.ShardBalance, r.PeakQueuePages, r.PeakPending)
	fmt.Printf("  wall          %.1fs (%.0f requests/s)\n", r.WallSeconds, r.WallReqPerSec)
	for _, pt := range r.ProcsMatrix {
		fmt.Printf("  procs=%d: %.1fs wall, %.2fx speedup, %.0f%% efficiency (host: %d CPUs)\n",
			pt.Procs, pt.WallSeconds, pt.Speedup, pt.Efficiency*100, r.HostCPUs)
	}
}
