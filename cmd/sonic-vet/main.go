// Command sonic-vet runs the project-invariant analyzers over the
// repository: span/pool lifecycle discipline, the off-mutex kernel
// rule, equivalence-test pinning, telemetry nil-safety, and the
// no-global-rand rule. It exits 1 when any unsuppressed finding is
// reported and 2 on load or usage errors, so check.sh and CI can gate
// on it exactly like go vet.
//
// Usage:
//
//	sonic-vet [-json] [-run name,name] [packages]
//
// Packages default to ./... relative to the enclosing module. Findings
// print as "file:line: [analyzer] message"; a finding is suppressed by
// a "//sonic:ignore analyzer reason" comment on the same or preceding
// line, and every suppression is listed in the summary with its reason.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sonic/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and per-analyzer counts as JSON")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sonic-vet [-json] [-run name,name] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*run, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonic-vet: %v\n", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonic-vet: %v\n", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonic-vet: %v\n", err)
		os.Exit(2)
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonic-vet: %v\n", err)
		os.Exit(2)
	}
	res, err := analysis.Run(loader, analyzers, dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonic-vet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sonic-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		res.WriteText(os.Stdout)
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}
