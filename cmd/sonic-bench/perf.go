package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"sonic/internal/admission"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/fec"
	"sonic/internal/fm"
	"sonic/internal/imagecodec"
	"sonic/internal/modem"
	"sonic/internal/obsprobe"
	"sonic/internal/routing"
	"sonic/internal/server"
	"sonic/internal/telemetry"
	"sonic/internal/webrender"
)

// perfReport is the schema of the -perf JSON artifact (BENCH_PR3.json in
// the repo): the instrumented end-to-end probe's span table plus direct
// wall-clock timings of the hot kernels, so performance regressions show
// up in review as a diff of checked-in numbers.
type perfReport struct {
	TakenAt    time.Time                         `json:"taken_at"`
	GoVersion  string                            `json:"go_version"`
	GOMAXPROCS int                               `json:"gomaxprocs"`
	Spans      map[string]telemetry.SpanSnapshot `json:"spans"`
	Micro      map[string]perfMicro              `json:"micro"`
	// Day is the broadcast-day replay summary. The wall clock also lands
	// in Micro["broadcast_day"] so benchguard tracks it like any kernel;
	// this field keeps the air-time and speedup context alongside it.
	Day *dayReport `json:"broadcast_day,omitempty"`
	// Fleet is the multi-tower fleet-day replay through the shared
	// artifact chain (wall clock also in Micro["fleet_day"]).
	Fleet *fleetDayReport `json:"fleet_day,omitempty"`
}

// perfMicro is one kernel timing: iterations run and ns per operation.
type perfMicro struct {
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// kernelWorkerCounts returns the worker counts the scaling variants run
// at: always 1 (serial parity) and, when it differs, the effective
// GOMAXPROCS n.
func kernelWorkerCounts(n int) []int {
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// timeIt runs fn until both minIters iterations and ~300ms of wall clock
// have accumulated, then reports the mean.
func timeIt(minIters int, fn func()) perfMicro {
	fn() // warm caches, pools, and lazy tables
	const minWall = 300 * time.Millisecond
	var iters int
	var total time.Duration
	for iters < minIters || total < minWall {
		t0 := time.Now()
		fn()
		total += time.Since(t0)
		iters++
	}
	return perfMicro{Iters: iters, NsPerOp: float64(total.Nanoseconds()) / float64(iters)}
}

// runPerf produces the perf report at path. workers > 0 pins GOMAXPROCS
// (and so the wN kernel variants) to that count; 0 keeps the runtime
// default. The recorded gomaxprocs field always reflects the effective
// value the kernels ran under.
func runPerf(path string, seed int64, workers int) error {
	if workers > 0 {
		runtime.GOMAXPROCS(workers)
	}
	nw := runtime.GOMAXPROCS(0)
	rep := perfReport{
		TakenAt:    time.Now(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: nw,
		Micro:      map[string]perfMicro{},
	}

	// Span table from the instrumented end-to-end probe (same workload
	// as the telemetry snapshot the CSV export writes).
	reg := telemetry.New()
	if err := obsprobe.Run(reg); err != nil {
		return err
	}
	rep.Spans = reg.Snapshot().Spans

	rng := rand.New(rand.NewSource(seed))

	// Viterbi: one frame-codec-sized message per op.
	msg := make([]byte, 264)
	rng.Read(msg)
	v29 := fec.NewV29()
	coded, codedBits := v29.Encode(msg)
	rep.Micro["viterbi_hard_v29"] = timeIt(3, func() {
		if _, err := v29.Decode(coded, codedBits); err != nil {
			panic(err)
		}
	})
	soft := make([]float64, codedBits)
	codedB := fec.BytesToBits(coded)[:codedBits]
	for i, b := range codedB {
		soft[i] = float64(2*int(b)-1) + 0.3*rng.NormFloat64()
	}
	rep.Micro["viterbi_soft_v29"] = timeIt(3, func() {
		if _, err := v29.DecodeSoftBytes(soft); err != nil {
			panic(err)
		}
	})

	// SIC: a real rendered corpus page, the server's workload. The legacy
	// sic_encode / sic_decode keys use the package-default worker count
	// (what the server runs); the _w1 / _wN variants pin the count so the
	// snapshot shows serial parity and scaling side by side.
	page := corpus.Generate(corpus.Pages()[0], 0)
	img := webrender.Render(page).Image.Crop(imagecodec.MaxPageHeight)
	rep.Micro["sic_encode"] = timeIt(3, func() {
		if _, err := imagecodec.EncodeSIC(img, 10); err != nil {
			panic(err)
		}
	})
	enc, err := imagecodec.EncodeSIC(img, 10)
	if err != nil {
		return err
	}
	rep.Micro["sic_decode"] = timeIt(3, func() {
		if _, err := imagecodec.DecodeSIC(enc); err != nil {
			panic(err)
		}
	})
	for _, w := range kernelWorkerCounts(nw) {
		rep.Micro[fmt.Sprintf("sic_encode_w%d", w)] = timeIt(3, func() {
			if _, err := imagecodec.EncodeSICWorkers(img, 10, w); err != nil {
				panic(err)
			}
		})
		rep.Micro[fmt.Sprintf("sic_decode_w%d", w)] = timeIt(3, func() {
			if _, err := imagecodec.DecodeSICWorkers(enc, w); err != nil {
				panic(err)
			}
		})
	}

	// FM: one second of program audio through the full broadcast chain
	// (composite build, modulate, RF noise, demodulate, split) at the
	// probe's healthy RSSI, at 1 and N workers.
	fmAudio := make([]float64, 48000)
	for i := range fmAudio {
		fmAudio[i] = 0.5 * rng.NormFloat64()
	}
	for _, w := range kernelWorkerCounts(nw) {
		link := &fm.FMLink{
			Model: fm.DefaultRSSIModel(), RSSIOverride: -70,
			Rng: rng, Workers: w,
		}
		rep.Micro[fmt.Sprintf("fm_broadcast_w%d", w)] = timeIt(3, func() {
			link.Transmit(fmAudio, 48000)
		})
	}

	// OFDM: a 4 KiB payload burst.
	m, err := modem.NewOFDM(modem.Sonic92())
	if err != nil {
		return err
	}
	payload := make([]byte, 4096)
	rng.Read(payload)
	rep.Micro["ofdm_modulate"] = timeIt(3, func() { m.Modulate(payload) })
	burst := m.Modulate(payload)
	rep.Micro["ofdm_demodulate"] = timeIt(3, func() {
		if _, err := m.Demodulate(burst); err != nil {
			panic(err)
		}
	})

	// Render: the server's page path. render_w1/_wN run the full cold miss
	// pipeline (generate → raster → SIC encode → clickmap) with the SIC
	// worker count pinned; render_cold is the same at the server default,
	// and render_warm is the LRU hit path the steady state serves from.
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return err
	}
	renderURL := corpus.Pages()[0].URL
	epoch := time.Unix(0, 0)
	for _, w := range kernelWorkerCounts(nw) {
		scfg := server.DefaultConfig()
		scfg.Workers = w
		srv := server.New(scfg, pipe)
		rep.Micro[fmt.Sprintf("render_w%d", w)] = timeIt(3, func() {
			srv.FlushRenderCache()
			if _, err := srv.RenderPage(renderURL, epoch); err != nil {
				panic(err)
			}
		})
	}
	srv := server.New(server.DefaultConfig(), pipe)
	rep.Micro["render_cold"] = timeIt(3, func() {
		srv.FlushRenderCache()
		if _, err := srv.RenderPage(renderURL, epoch); err != nil {
			panic(err)
		}
	})
	rep.Micro["render_warm"] = timeIt(3, func() {
		if _, err := srv.RenderPage(renderURL, epoch); err != nil {
			panic(err)
		}
	})

	// Fleet request path: routing_lookup_1k is the spatial-index
	// transmitter lookup against a 1000-tower fleet, routing_linear_1k the
	// O(n) reference scan it replaced (the snapshot shows the headroom),
	// admission_submit the O(1) coalescing enqueue in front of the render.
	fleet := make([]routing.Tower, 1000)
	for i := range fleet {
		fleet[i] = routing.Tower{
			ID:       fmt.Sprintf("tx-%04d", i),
			Lat:      23 + rng.Float64()*14,
			Lon:      61 + rng.Float64()*16,
			RadiusKm: 10 + rng.Float64()*90,
		}
	}
	idx := routing.Build(fleet)
	queries := make([][2]float64, 1024)
	for i := range queries {
		t := fleet[rng.Intn(len(fleet))]
		queries[i] = [2]float64{t.Lat + (rng.Float64()-0.5)*0.3, t.Lon + (rng.Float64()-0.5)*0.3}
	}
	var qi int
	rep.Micro["routing_lookup_1k"] = timeIt(3, func() {
		q := queries[qi&1023]
		qi++
		idx.Lookup(q[0], q[1])
	})
	qi = 0
	rep.Micro["routing_linear_1k"] = timeIt(3, func() {
		q := queries[qi&1023]
		qi++
		routing.LinearLookup(fleet, q[0], q[1])
	})
	urls := make([]string, 1024)
	for i := range urls {
		urls[i] = fmt.Sprintf("page-%04d.pk/", i)
	}
	adm := admission.New(admission.Config{MaxBatch: 1 << 30, MaxPending: 1 << 30}, func(admission.Batch) {})
	var ai int
	rep.Micro["admission_submit"] = timeIt(3, func() {
		if _, err := adm.Submit(admission.Request{
			URL:   urls[ai&1023],
			Tower: fleet[ai&63].ID,
		}); err != nil {
			panic(err)
		}
		ai++
	})
	adm.Close()

	// Broadcast day: one simulated day of carousel airtime through the
	// real page path. Runs once (it is a 24h replay, not a microkernel);
	// the bar is finishing faster than real time even at GOMAXPROCS=1.
	day, err := runBroadcastDay(24, 0)
	if err != nil {
		return err
	}
	rep.Day = &day
	rep.Micro["broadcast_day"] = perfMicro{Iters: 1, NsPerOp: day.WallSeconds * 1e9}

	// Fleet day: 16 towers airing an 8-page rotation for one simulated
	// hour through the shared artifact chain, with the dedup-off baseline
	// at 2 towers for the sharing ratio. Runs once like broadcast_day.
	fleetRep, err := runFleetDay(16, 1, 8, 2, nil, -1)
	if err != nil {
		return err
	}
	rep.Fleet = &fleetRep
	rep.Micro["fleet_day"] = perfMicro{Iters: 1, NsPerOp: fleetRep.WallSeconds * 1e9}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote perf report to %s\n", path)
	return nil
}
