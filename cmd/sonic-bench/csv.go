package main

// CSV export for the figures: -csv <dir> writes plotting-ready files for
// each experiment that ran, so the paper's plots can be regenerated with
// any charting tool.

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"sonic/internal/experiments"
	"sonic/internal/stats"
	"sonic/internal/userstudy"
)

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func csvFig4a(dir string, pts []experiments.Fig4aPoint) error {
	rows := [][]string{{"distance", "trial", "loss_pct"}}
	for _, p := range pts {
		for i, l := range p.Losses {
			rows = append(rows, []string{p.Label, strconv.Itoa(i), fmt.Sprintf("%.2f", l)})
		}
	}
	return writeCSV(dir, "fig4a_frame_loss.csv", rows)
}

func csvFig4b(dir string, res *experiments.Fig4bResult) error {
	rows := [][]string{{"config", "size_kb", "cdf"}}
	for _, sc := range experiments.SizeConfigs {
		vals, cum := stats.CDF(res.Sizes[sc.Label])
		for i := range vals {
			rows = append(rows, []string{
				sc.Label,
				fmt.Sprintf("%.1f", vals[i]/1024),
				fmt.Sprintf("%.3f", cum[i]),
			})
		}
	}
	return writeCSV(dir, "fig4b_size_cdf.csv", rows)
}

func csvFig4c(dir string, curves []experiments.Fig4cCurve) error {
	rows := [][]string{{"curve", "t_hours", "backlog_mb"}}
	for _, c := range curves {
		for _, p := range c.Result.Series {
			rows = append(rows, []string{
				c.Label,
				fmt.Sprintf("%.2f", p.THours),
				fmt.Sprintf("%.3f", float64(p.Backlog)/(1<<20)),
			})
		}
	}
	return writeCSV(dir, "fig4c_backlog.csv", rows)
}

func csvRSSI(dir string, pts []experiments.RSSIPoint) error {
	rows := [][]string{{"rssi_db", "trial", "loss_pct"}}
	for _, p := range pts {
		for i, l := range p.Losses {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", p.RSSI), strconv.Itoa(i), fmt.Sprintf("%.2f", l),
			})
		}
	}
	return writeCSV(dir, "rssi_sweep.csv", rows)
}

func csvFig5(dir string, res *userstudy.StudyResult) error {
	rows := [][]string{{"loss_pct", "interp", "question", "page_median"}}
	for _, lr := range userstudy.LossRates {
		for _, ip := range []bool{false, true} {
			cond := userstudy.Condition{LossRate: lr, Interp: ip}
			for _, m := range res.MediansContent[cond] {
				rows = append(rows, []string{
					fmt.Sprintf("%.0f", lr*100), strconv.FormatBool(ip),
					"content", fmt.Sprintf("%.2f", m),
				})
			}
			for _, m := range res.MediansText[cond] {
				rows = append(rows, []string{
					fmt.Sprintf("%.0f", lr*100), strconv.FormatBool(ip),
					"text", fmt.Sprintf("%.2f", m),
				})
			}
		}
	}
	return writeCSV(dir, "fig5_user_study.csv", rows)
}
