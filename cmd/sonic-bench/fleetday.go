package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sonic/internal/artifact"
	"sonic/internal/broadcast"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/server"
)

// fleetProcsPoint is one cell of the -fleet procs matrix: the same
// fleet replay rerun from a cold cache at a pinned GOMAXPROCS.
type fleetProcsPoint struct {
	Procs       int     `json:"procs"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is wall(procs=1) / wall(this), Efficiency is Speedup/Procs.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// fleetDayReport is the -fleet replay result: a fleet of towers
// broadcasting the same corpus slice for Hours simulated hours through
// the shared content-addressed artifact chain, plus (optionally) the
// dedup-off baseline and the GOMAXPROCS scaling matrix.
type fleetDayReport struct {
	Towers   int   `json:"towers"`
	Hours    int   `json:"sim_hours"`
	Pages    int   `json:"pages"`
	HostCPUs int   `json:"host_cpus"`
	CacheCap int64 `json:"cache_cap_bytes"` // <0 = unbounded
	// Headline fleet run (at the host's GOMAXPROCS).
	Transmissions  int     `json:"transmissions"`
	AirSeconds     float64 `json:"air_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Speedup        float64 `json:"speedup"` // air seconds produced per wall second
	DedupFactor    float64 `json:"dedup_factor"`
	AudioMisses    int64   `json:"audio_misses"`
	AudioHits      int64   `json:"audio_hits"`
	AudioCoalesced int64   `json:"audio_coalesced"`
	CacheBytes     int64   `json:"cache_bytes"`
	CacheEvictions int64   `json:"cache_evictions"`
	// Dedup-off baseline: the same replay with a private chain per tower
	// (every tower computes every artifact itself), possibly at a smaller
	// tower count to keep the bench finite; DedupSpeedup normalizes both
	// sides to per-tower wall time before taking the ratio.
	BaselineTowers      int     `json:"baseline_towers,omitempty"`
	BaselineWallSeconds float64 `json:"baseline_wall_seconds,omitempty"`
	DedupSpeedup        float64 `json:"dedup_speedup,omitempty"`
	// ProcsMatrix reruns the fleet at pinned GOMAXPROCS values.
	ProcsMatrix []fleetProcsPoint `json:"procs_matrix,omitempty"`
}

// fleetRenderer wires the fleet engine's raster stage to the production
// server render path (render LRU + per-URL singleflight included).
func fleetRenderer(srv *server.Server, epoch time.Time) broadcast.RenderFunc {
	return func(ref corpus.PageRef, hour int) (core.Bundle, error) {
		return srv.RenderPage(ref.URL, epoch.Add(time.Duration(hour)*time.Hour))
	}
}

// runFleetOnce replays one fleet day on a fresh chain and returns the
// result. workers bounds the tower pool (0 = GOMAXPROCS).
func runFleetOnce(towers, hours, pages, workers int, cacheCap int64) (*broadcast.FleetResult, error) {
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	scfg := server.DefaultConfig()
	srv := server.New(scfg, pipe)
	return broadcast.RunFleet(broadcast.FleetConfig{
		Towers:  towers,
		Workers: workers,
		Hours:   hours,
		Pages:   corpus.Pages()[:pages],
		Policy:  broadcast.PolicySqrt,
		Chain:   artifact.NewChain(pipe, cacheCap),
		Render:  fleetRenderer(srv, scfg.Epoch),
	})
}

// runFleetBaseline is the dedup-off reference: each tower gets a
// private chain (and private render cache), so the fleet recomputes
// every artifact per tower — the pre-PR10 per-tower serial path.
func runFleetBaseline(towers, hours, pages int, cacheCap int64) (float64, error) {
	var wall float64
	for tower := 0; tower < towers; tower++ {
		res, err := runFleetOnce(1, hours, pages, 1, cacheCap)
		if err != nil {
			return 0, err
		}
		wall += res.WallSeconds
	}
	return wall, nil
}

// parseProcsList parses "1,2,4,8" into a sorted-unique int list.
func parseProcsList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad procs list %q", s)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out, nil
}

// runFleetDay is the -fleet entry point: headline run, optional
// dedup-off baseline, optional procs matrix.
func runFleetDay(towers, hours, pages, baselineTowers int, procs []int, cacheCap int64) (fleetDayReport, error) {
	if pages > corpus.NumPages {
		pages = corpus.NumPages
	}
	rep := fleetDayReport{
		Towers: towers, Hours: hours, Pages: pages,
		HostCPUs: runtime.NumCPU(), CacheCap: cacheCap,
	}

	res, err := runFleetOnce(towers, hours, pages, 0, cacheCap)
	if err != nil {
		return rep, err
	}
	rep.Transmissions = res.Transmissions
	rep.AirSeconds = res.AirSeconds
	rep.WallSeconds = res.WallSeconds
	rep.Speedup = res.Speedup()
	rep.DedupFactor = res.DedupFactor
	rep.AudioMisses = res.Cache.Audio.Misses
	rep.AudioHits = res.Cache.Audio.Hits
	rep.AudioCoalesced = res.Cache.Audio.Coalesced
	rep.CacheBytes = res.Cache.Bytes
	rep.CacheEvictions = res.Cache.Evictions

	if baselineTowers > 0 {
		wall, err := runFleetBaseline(baselineTowers, hours, pages, cacheCap)
		if err != nil {
			return rep, err
		}
		rep.BaselineTowers = baselineTowers
		rep.BaselineWallSeconds = wall
		perTowerBase := wall / float64(baselineTowers)
		perTowerFleet := rep.WallSeconds / float64(towers)
		if perTowerFleet > 0 {
			rep.DedupSpeedup = perTowerBase / perTowerFleet
		}
	}

	if len(procs) > 0 {
		prev := runtime.GOMAXPROCS(0)
		defer runtime.GOMAXPROCS(prev)
		var wall1 float64
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			r, err := runFleetOnce(towers, hours, pages, p, cacheCap)
			if err != nil {
				return rep, err
			}
			pt := fleetProcsPoint{Procs: p, WallSeconds: r.WallSeconds}
			if p == procs[0] {
				wall1 = r.WallSeconds
			}
			if wall1 > 0 && r.WallSeconds > 0 {
				pt.Speedup = wall1 / r.WallSeconds
				pt.Efficiency = pt.Speedup / float64(p) * float64(procs[0])
			}
			rep.ProcsMatrix = append(rep.ProcsMatrix, pt)
		}
	}
	return rep, nil
}

// printFleetReport writes the human-readable fleet summary.
func printFleetReport(w io.Writer, rep fleetDayReport) {
	fmt.Fprintf(w, "fleet day: %d towers x %d h over %d pages (host: %d CPUs)\n",
		rep.Towers, rep.Hours, rep.Pages, rep.HostCPUs)
	fmt.Fprintf(w, "  %d transmissions, %.0f air-seconds in %.1f s wall -> %.0fx real time\n",
		rep.Transmissions, rep.AirSeconds, rep.WallSeconds, rep.Speedup)
	fmt.Fprintf(w, "  artifact chain: %.1fx dedup (audio: %d computed, %d hits, %d coalesced), %.1f MB cached, %d evictions\n",
		rep.DedupFactor, rep.AudioMisses, rep.AudioHits, rep.AudioCoalesced,
		float64(rep.CacheBytes)/1e6, rep.CacheEvictions)
	if rep.BaselineTowers > 0 {
		fmt.Fprintf(w, "  dedup-off baseline (%d towers, private chains): %.1f s wall -> %.1fx per-tower speedup from sharing\n",
			rep.BaselineTowers, rep.BaselineWallSeconds, rep.DedupSpeedup)
	}
	for _, pt := range rep.ProcsMatrix {
		fmt.Fprintf(w, "  procs=%d: %.1f s wall, %.2fx speedup, %.0f%% efficiency\n",
			pt.Procs, pt.WallSeconds, pt.Speedup, pt.Efficiency*100)
	}
}

// fleetCheck enforces the CI scaling gate: the procs matrix must show
// wall(minProcs) / wall(maxProcs) >= minRatio. The gate only arms when
// the host actually has maxProcs cores — a single-core box cannot
// physically scale and reports the skip instead of a false failure.
func fleetCheck(w io.Writer, rep fleetDayReport, minRatio float64) error {
	if len(rep.ProcsMatrix) < 2 {
		return fmt.Errorf("fleet-check: procs matrix needs at least 2 points")
	}
	last := rep.ProcsMatrix[len(rep.ProcsMatrix)-1]
	if rep.HostCPUs < last.Procs {
		fmt.Fprintf(w, "fleet-check: SKIP (host has %d CPUs, matrix tops at procs=%d; scaling cannot manifest)\n",
			rep.HostCPUs, last.Procs)
		return nil
	}
	if last.Speedup < minRatio {
		return fmt.Errorf("fleet-check: procs=%d speedup %.2fx < required %.2fx",
			last.Procs, last.Speedup, minRatio)
	}
	fmt.Fprintf(w, "fleet-check: OK (procs=%d speedup %.2fx >= %.2fx)\n", last.Procs, last.Speedup, minRatio)
	return nil
}

// writeFleetJSON writes the report snapshot (BENCH_PR10 style).
func writeFleetJSON(path string, rep fleetDayReport) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
