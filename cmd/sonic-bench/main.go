// Command sonic-bench regenerates every table and figure of the paper's
// evaluation (§4). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured for each.
//
// Usage:
//
//	sonic-bench -exp all            # everything (minutes)
//	sonic-bench -exp fig4a          # one experiment
//	sonic-bench -exp fig4b -quick   # reduced workload
//	sonic-bench -exp fig1 -out dir  # also write Figure 1 PNG panels
//	sonic-bench -perf out.json      # hot-path perf report (spans + kernels)
//	sonic-bench -cpuprofile out.pprof -exp fig4a  # CPU profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sonic/internal/corpus"
	"sonic/internal/experiments"
	"sonic/internal/imagecodec"
	"sonic/internal/obsprobe"
	"sonic/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all|fig1|fig4a|fig4b|fig4c|rssi|fig5|rate|baseline|compression|ablation")
		quick   = flag.Bool("quick", false, "reduced workload for a fast pass")
		out     = flag.String("out", "", "directory for image artifacts (fig1)")
		csvDir  = flag.String("csv", "", "directory for plotting-ready CSV exports")
		seed    = flag.Int64("seed", 1, "experiment seed")
		perf    = flag.String("perf", "", "write a hot-path perf report (spans + kernel timings) to this JSON file and exit")
		day     = flag.Int("day", 0, "replay N simulated hours of carousel broadcast through the real page path, report wall vs air time, and exit")
		workers = flag.Int("workers", 0, "worker count for -perf/-day: sets GOMAXPROCS and the wN kernel variants (0 = current GOMAXPROCS)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")

		fleet         = flag.Int("fleet", 0, "replay a fleet broadcast day on N towers through the shared artifact chain and exit")
		fleetHours    = flag.Int("fleet-hours", 1, "simulated hours per tower for -fleet")
		fleetPages    = flag.Int("fleet-pages", 8, "corpus pages in the fleet rotation for -fleet")
		fleetProcs    = flag.String("fleet-procs", "", "comma-separated GOMAXPROCS matrix for -fleet (e.g. 1,2,4,8); each point reruns the replay cold")
		fleetBaseline = flag.Int("fleet-baseline", 0, "also run the dedup-off baseline (private chain per tower) at N towers")
		fleetCheckMin = flag.Float64("fleet-check", 0, "fail unless the procs matrix shows at least this speedup at its top entry (skipped when the host lacks the cores)")
		fleetJSON     = flag.String("fleet-json", "", "write the -fleet report to this JSON file")
		fleetCache    = flag.Int64("fleet-cache", -1, "artifact cache byte cap for -fleet (-1 = unbounded, 0 = package default)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *perf != "" {
		if err := runPerf(*perf, *seed, *workers); err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleet > 0 {
		procs, err := parseProcsList(*fleetProcs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(2)
		}
		rep, err := runFleetDay(*fleet, *fleetHours, *fleetPages, *fleetBaseline, procs, *fleetCache)
		if err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		printFleetReport(os.Stdout, rep)
		if *fleetJSON != "" {
			if err := writeFleetJSON(*fleetJSON, rep); err != nil {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote fleet report to %s\n", *fleetJSON)
		}
		if *fleetCheckMin > 0 {
			if err := fleetCheck(os.Stdout, rep, *fleetCheckMin); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *day > 0 {
		if *workers > 0 {
			runtime.GOMAXPROCS(*workers)
		}
		rep, err := runBroadcastDay(*day, *workers)
		if err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "day: %v\n", err)
			os.Exit(1)
		}
		printDayReport(os.Stdout, rep)
		if rep.Speedup <= 1 {
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==> %s\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}

	pages := 100
	trials := 10
	frames := 20
	fig5 := experiments.DefaultFig5()
	hours := 48
	if *quick {
		pages, trials, frames = 12, 3, 10
		fig5.Pages, fig5.ViewportH = 8, 1500
		hours = 24
	}

	// Fig. 4(b) sizes feed Fig. 4(c); compute lazily once.
	var sizeCache map[string]int

	run("fig1", func() error {
		r := experiments.RunFig1(2500, *seed)
		experiments.PrintFig1(os.Stdout, r)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			if err := writePNG(filepath.Join(*out, "fig1-original.png"), r.Original); err != nil {
				return err
			}
			if err := writePNG(filepath.Join(*out, "fig1-10pct-loss.png"), r.Lossy); err != nil {
				return err
			}
			if err := writePNG(filepath.Join(*out, "fig1-interpolated.png"), r.Interpolated); err != nil {
				return err
			}
			fmt.Printf("wrote Figure 1 panels to %s\n", *out)
		}
		return nil
	})

	run("fig4a", func() error {
		cfg := experiments.DefaultFig4a()
		cfg.Trials, cfg.FramesPerTrial, cfg.Seed = trials, frames, *seed
		pts, err := experiments.RunFig4a(cfg)
		if err != nil {
			return err
		}
		experiments.PrintFig4a(os.Stdout, pts)
		return csvFig4a(*csvDir, pts)
	})

	run("fig4b", func() error {
		res, err := experiments.RunFig4b(pages)
		if err != nil {
			return err
		}
		experiments.PrintFig4b(os.Stdout, res)
		if err := csvFig4b(*csvDir, res); err != nil {
			return err
		}
		sizeCache = make(map[string]int)
		refs := corpus.Pages()
		for i, sz := range res.Sizes["Q:10,PH:10k"] {
			sizeCache[refs[i].URL] = int(sz)
		}
		return nil
	})

	run("fig4c", func() error {
		curves, err := experiments.RunFig4c(hours, sizeCache)
		if err != nil {
			return err
		}
		experiments.PrintFig4c(os.Stdout, curves)
		if err := csvFig4c(*csvDir, curves); err != nil {
			return err
		}
		if sizeCache == nil {
			fmt.Println("(page sizes from the calibrated model; run with -exp all for measured sizes)")
		}
		return nil
	})

	run("rssi", func() error {
		pts, err := experiments.RunRSSISweep(trials, frames, *seed)
		if err != nil {
			return err
		}
		experiments.PrintRSSISweep(os.Stdout, pts)
		return csvRSSI(*csvDir, pts)
	})

	run("fig5", func() error {
		fig5.Seed = *seed
		res := experiments.RunFig5(fig5)
		experiments.PrintFig5(os.Stdout, res)
		return csvFig5(*csvDir, res)
	})

	run("rate", func() error {
		r, err := experiments.RunRate(64 * 1024)
		if err != nil {
			return err
		}
		experiments.PrintRate(os.Stdout, r)
		return nil
	})

	run("baseline", func() error {
		r, err := experiments.RunBaseline(1024)
		if err != nil {
			return err
		}
		experiments.PrintBaseline(os.Stdout, r)
		return nil
	})

	run("compression", func() error {
		r, err := experiments.RunCompression(min(pages, 25))
		if err != nil {
			return err
		}
		experiments.PrintCompression(os.Stdout, r)
		return nil
	})

	run("ablation", func() error {
		fecRows, err := experiments.RunAblationFEC(16, frames, trials, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Ablation: FEC stack @16dB audio SNR (frame loss)", fecRows)

		ilRows, err := experiments.RunAblationInterleaver(64, 4, 40, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Ablation: interleaver under bursty corruption (codeword failure)", ilRows)

		conRows, err := experiments.RunAblationConstellation(12, frames, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Ablation: constellation @12dB audio SNR (frame loss)", conRows)

		partRows, err := experiments.RunAblationPartitioning(0.10, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Ablation: partition geometry + interp priority @10% loss (residual damage)", partRows)

		softRows, err := experiments.RunAblationSoftDecision(frames, trials, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Ablation: hard vs soft-decision Viterbi near the cliff (frame loss)", softRows)

		carRows, err := experiments.RunAblationCarousel()
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Ablation: carousel scheduling policy (expected wait, seconds)", carRows)
		return nil
	})

	if !flag.Parsed() {
		flag.Usage()
	}
	if !strings.Contains("all fig1 fig4a fig4b fig4c rssi fig5 rate baseline compression ablation", *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	// Alongside the CSV exports, drop a per-stage telemetry snapshot of
	// one instrumented end-to-end run so stage latency breakdowns ride
	// with the experiment data.
	if *csvDir != "" {
		if err := writeTelemetrySnapshot(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTelemetrySnapshot runs the instrumented probe and writes the
// resulting registry snapshot as dir/telemetry.json.
func writeTelemetrySnapshot(dir string) error {
	reg := telemetry.New()
	if err := obsprobe.Run(reg); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "telemetry.json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote per-stage telemetry snapshot to %s\n", path)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writePNG saves a raster panel to disk.
func writePNG(path string, img *imagecodec.Raster) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return img.WritePNG(f)
}
