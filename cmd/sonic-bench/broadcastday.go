package main

import (
	"fmt"
	"io"
	"time"

	"sonic/internal/broadcast"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/server"
)

// dayReport is the broadcast-day replay result. The headline is Speedup:
// simulated on-air seconds per wall-clock second — how much faster than
// real time one box can produce a full day of carousel content through
// the production page path. Anything above 1.0 means the server keeps a
// transmitter fed with margin to spare.
type dayReport struct {
	SimHours      int     `json:"sim_hours"`
	RateBps       float64 `json:"rate_bps"`
	Transmissions int     `json:"transmissions"`
	DistinctPages int     `json:"distinct_pages"`
	ColdRenders   int     `json:"cold_renders"`
	PayloadBytes  int64   `json:"payload_bytes"`
	AirSeconds    float64 `json:"air_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	Speedup       float64 `json:"speedup"`
}

// runBroadcastDay replays `hours` of carousel broadcasting through the
// real production path, not an analytic model: every transmission
// resolves via server.RenderPage at its simulated air time — a cold
// render + SIC encode on first touch and again after hourly content
// churn, an LRU hit otherwise — is marshaled to its transport bundle,
// and advances the simulated clock by the pipeline's real on-air time
// for those bytes (FEC, framing, and preamble included). The day starts
// with the midnight cold build: the whole corpus rendered once to seed
// the carousel with real bundle sizes. workers pins the server's SIC
// worker count (0 = package default).
func runBroadcastDay(hours, workers int) (dayReport, error) {
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return dayReport{}, err
	}
	scfg := server.DefaultConfig()
	scfg.Workers = workers
	srv := server.New(scfg, pipe)
	pages := corpus.Pages()
	base := scfg.Epoch

	rep := dayReport{SimHours: hours, RateBps: pipe.TransportRateBps()}
	// seen mirrors the render cache's (url, effective hour) key so churn
	// re-renders are counted without instrumenting the server.
	seen := make(map[string]int, len(pages))
	t0 := time.Now()

	sizes := make(map[string]int, len(pages))
	for _, ref := range pages {
		b, err := srv.RenderPage(ref.URL, base)
		if err != nil {
			return dayReport{}, err
		}
		sizes[ref.URL] = len(core.MarshalBundle(b))
		seen[ref.URL] = 0
		rep.ColdRenders++
	}
	car, err := broadcast.CorpusCarousel(pages, func(ref corpus.PageRef, _ int) int {
		return sizes[ref.URL]
	}, broadcast.PolicySqrt)
	if err != nil {
		return dayReport{}, err
	}

	entries := car.Entries()
	sched := car.Schedule(4 * (hours + 1) * len(pages))
	horizon := float64(hours) * 3600
	simT := 0.0
	aired := make(map[string]bool, len(pages))
replay:
	for {
		// The schedule is a long repeating rotation; wrap if a slow rate
		// outruns it before the horizon.
		for _, idx := range sched {
			if simT >= horizon {
				break replay
			}
			e := entries[idx]
			now := base.Add(time.Duration(simT * float64(time.Second)))
			b, err := srv.RenderPage(e.Ref.URL, now)
			if err != nil {
				return dayReport{}, err
			}
			if eff := corpus.EffectiveHour(e.Ref, int(simT/3600)); seen[e.Ref.URL] != eff {
				seen[e.Ref.URL] = eff
				rep.ColdRenders++
			}
			n := len(core.MarshalBundle(b))
			simT += pipe.AirtimeSeconds(n)
			rep.Transmissions++
			rep.PayloadBytes += int64(n)
			aired[e.Ref.URL] = true
		}
	}
	rep.AirSeconds = simT
	rep.WallSeconds = time.Since(t0).Seconds()
	rep.DistinctPages = len(aired)
	if rep.WallSeconds > 0 {
		rep.Speedup = rep.AirSeconds / rep.WallSeconds
	}
	return rep, nil
}

// printDayReport writes the human-readable replay summary.
func printDayReport(w io.Writer, rep dayReport) {
	fmt.Fprintf(w, "broadcast day: %d h simulated at %.1f kbps transport\n",
		rep.SimHours, rep.RateBps/1000)
	fmt.Fprintf(w, "  %d transmissions, %d/%d distinct pages, %d cold renders (corpus build + churn)\n",
		rep.Transmissions, rep.DistinctPages, corpus.NumPages, rep.ColdRenders)
	fmt.Fprintf(w, "  %.1f MB payload over %.0f air-seconds\n",
		float64(rep.PayloadBytes)/1e6, rep.AirSeconds)
	fmt.Fprintf(w, "  wall clock %.1f s -> %.0fx real time\n", rep.WallSeconds, rep.Speedup)
	if rep.Speedup <= 1 {
		fmt.Fprintf(w, "  WARNING: slower than real time; the server cannot keep a transmitter fed\n")
	}
}
