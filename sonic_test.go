package sonic

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow end
// to end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	pipe, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	page := GeneratePage("khabar.pk/", 0)
	rendered := RenderPage(page)
	// Small crop keeps the burst short for the test.
	rendered.Image = rendered.Image.Crop(600)
	bundle, err := BundlePage(rendered, 10)
	if err != nil {
		t.Fatal(err)
	}
	audio, err := pipe.EncodePageAudio(1, bundle)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewCableLink().Transmit(audio, 48000)
	res, err := pipe.DecodePageAudio(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("lost %d frames over cable", res.FramesLost)
	}
	img, err := DecodePageImage(res.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != rendered.Image.W || img.H != 600 {
		t.Errorf("decoded %dx%d", img.W, img.H)
	}
}

func TestPublicAPISystemPieces(t *testing.T) {
	if len(CorpusPages()) != 100 {
		t.Error("corpus should have 100 pages")
	}
	pipe, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(DefaultServerConfig(), pipe)
	srv.AddTransmitter(Transmitter{ID: "t1", FreqMHz: 93.7, Lat: 24.86, Lon: 67.0, RadiusKm: 50})
	if len(srv.Transmitters()) != 1 {
		t.Error("transmitter not registered")
	}
	cli := NewClient(ClientConfig{ScreenWidth: 720, Capability: UplinkSMS})
	if cli.ScalingFactor() <= 0 {
		t.Error("bad scaling factor")
	}
	smsc := NewSMSC(time.Second, 2*time.Second, 1)
	cli.AttachSMSC(smsc)
	if Sonic92Profile().DataCarriers != 92 {
		t.Error("wrong profile")
	}
	if Audible7kProfile().Name == "" {
		t.Error("missing profile name")
	}
	if NewV29().ConstraintLength() != 9 || NewV27().ConstraintLength() != 7 {
		t.Error("wrong inner codes")
	}
	if NewFSK128Modem().RawBitRate() != 128 {
		t.Error("FSK baseline rate wrong")
	}
	if NewGMSKModem().RawBitRate() != 2400 {
		t.Error("GMSK rate wrong")
	}
}

func TestPublicAPISoftDecision(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SoftDecision = true
	pipe, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audio, err := pipe.EncodePageAudio(1, Bundle{Image: []byte("soft facade")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.DecodePageAudio(audio)
	if err != nil || !res.Complete {
		t.Fatalf("soft pipeline through the facade failed: %v", err)
	}
}
