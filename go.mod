module sonic

go 1.22
