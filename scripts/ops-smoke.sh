#!/usr/bin/env bash
# ops-smoke.sh — end-to-end observability check against a live process.
# Boots sonic-sim -telemetry (which runs the instrumented obsprobe after
# its report), waits for the lifecycle histograms to populate, then
# verifies every export surface an operator relies on:
#
#   * /metrics.json reports a non-zero request_to_on_air_seconds p50/p99
#   * /metrics?format=prom parses as Prometheus text exposition
#   * /trace/<id> reconstructs a request timeline from the event ring
#   * sonic-top -once renders against the live endpoint
#
# The final snapshot is left at telemetry-final.json (CI uploads it as an
# artifact). Fails loudly on any missing signal.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SONIC_OPS_ADDR:-127.0.0.1:17379}"
OUT="${SONIC_OPS_SNAPSHOT:-telemetry-final.json}"

echo "ops-smoke: building sonic-sim and sonic-top"
go build -o /tmp/sonic-sim ./cmd/sonic-sim
go build -o /tmp/sonic-top ./cmd/sonic-top

/tmp/sonic-sim -hours 2 -listeners 30 -telemetry "$ADDR" >/tmp/sonic-sim.log 2>&1 &
SIM_PID=$!
trap 'kill "$SIM_PID" 2>/dev/null || true' EXIT

# Wait (up to ~60s) for the sim report + probe to finish populating the
# lifecycle histograms.
echo "ops-smoke: waiting for request_to_on_air_seconds to populate on $ADDR"
for i in $(seq 1 60); do
    if curl -fsS "http://$ADDR/metrics.json" 2>/dev/null \
        | python3 -c '
import json, sys
try:
    snap = json.load(sys.stdin)
except Exception:
    sys.exit(1)
h = snap.get("histograms", {}).get("request_to_on_air_seconds", {})
sys.exit(0 if h.get("count", 0) > 0 and h.get("p50", 0) > 0 else 1)
'; then
        break
    fi
    if ! kill -0 "$SIM_PID" 2>/dev/null; then
        echo "ops-smoke: sonic-sim exited early" >&2
        cat /tmp/sonic-sim.log >&2
        exit 1
    fi
    sleep 1
    if ((i == 60)); then
        echo "ops-smoke: lifecycle histograms never populated" >&2
        cat /tmp/sonic-sim.log >&2
        exit 1
    fi
done

echo "ops-smoke: snapshotting /metrics.json -> $OUT"
curl -fsS "http://$ADDR/metrics.json" -o "$OUT"
python3 - "$OUT" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
h = snap["histograms"]["request_to_on_air_seconds"]
assert h["count"] > 0 and h["p50"] > 0 and h["p99"] > 0, h
print(f"ops-smoke: request->on-air n={h['count']} p50={h['p50']:.1f}s p99={h['p99']:.1f}s")
EOF

echo "ops-smoke: validating /metrics?format=prom exposition"
curl -fsS "http://$ADDR/metrics?format=prom" | python3 -c '
import re, sys
name = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
esc = r"(?:[^\"\\\n]|\\\\|\\\"|\\n)*"
sample = re.compile(rf"^{name}(\{{{name}=\"{esc}\"(,{name}=\"{esc}\")*\}})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$")
typ = re.compile(rf"^# TYPE {name} (counter|gauge|histogram|summary)$")
families, samples, text = 0, 0, sys.stdin.read()
for line in text.splitlines():
    if not line:
        continue
    if line.startswith("# TYPE "):
        assert typ.match(line), f"bad TYPE line: {line!r}"
        families += 1
    elif not line.startswith("#"):
        assert sample.match(line), f"bad sample line: {line!r}"
        samples += 1
assert families and samples, "empty exposition"
assert "request_to_on_air_seconds_bucket" in text, "lifecycle histogram missing from exposition"
print(f"ops-smoke: prom exposition OK ({families} families, {samples} samples)")
' || { echo "ops-smoke: prom exposition invalid" >&2; exit 1; }

echo "ops-smoke: reconstructing a trace via /trace/<id>"
TRACE=$(curl -fsS "http://$ADDR/events.json" | python3 -c '
import json, sys
events = json.load(sys.stdin)
assert events, "event ring empty"
print(events[0]["trace"])
')
curl -fsS "http://$ADDR/trace/$TRACE" | python3 -c '
import json, sys
view = json.load(sys.stdin)
assert view["trace"] and view["events"], view
tid, n, last = view["trace"], len(view["events"]), view["last_stage"]
print(f"ops-smoke: trace {tid} -> {n} events, last stage {last}")
'

echo "ops-smoke: sonic-top -once against the live endpoint"
/tmp/sonic-top -addr "$ADDR" -once | sed 's/^/    /'

kill "$SIM_PID" 2>/dev/null || true
trap - EXIT
echo "ops-smoke: OK (snapshot at $OUT)"
