#!/usr/bin/env bash
# check.sh — the repo's full verification gate: build, vet, the
# sonic-vet invariant analyzers, tests, the race detector, a short fuzz
# smoke, and a one-iteration bench smoke over every package.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt check"
unformatted=$(gofmt -l . 2>/dev/null | grep -v '^vendor/' || true)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> sonic-vet (project invariant analyzers)"
go build -o /tmp/sonic-vet ./cmd/sonic-vet
/tmp/sonic-vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (5s per harness)"
go test ./internal/frame -run='^$' -fuzz=FuzzFrameDecode -fuzztime=5s
go test ./internal/fec -run='^$' -fuzz=FuzzRSDecode -fuzztime=5s
go test ./internal/imagecodec -run='^$' -fuzz=FuzzSICDecode -fuzztime=5s

# Serial leg: the parallel kernels promise byte-identical output at any
# worker count, and the broadcast-day replay must beat real time even on
# one core. GOMAXPROCS=1 is where both promises are cheapest to break
# (no real concurrency to hide behind, no parallel speedup to lean on).
echo "==> GOMAXPROCS=1 leg: equivalence/parity suites + broadcast-day smoke"
GOMAXPROCS=1 go test -run 'Equiv|Reference|Parity|Identity|Golden' -count=1 \
    ./internal/dsp ./internal/fec ./internal/fm ./internal/imagecodec \
    ./internal/modem ./internal/webrender
GOMAXPROCS=1 go run ./cmd/sonic-bench -day 1 -workers 1

# Fleet request path: 10^4 simulated requesters through the real SMS →
# admission → render → broadcast-queue path on the simulated clock. The
# -check SLOs pin whole-request coalescing (every broadcast must serve
# at least two requests on this Zipf workload) and the p99 request →
# on-air latency (simulated seconds; deterministic for a fixed seed),
# and the binary itself fails if any accepted request never airs.
echo "==> loadgen smoke (10k requesters, 16 towers, coalescing + p99 SLOs)"
go run ./cmd/sonic-loadgen -users 10000 -towers 16 -hours 0.25 \
    -check -max-p99 14400 -min-dedup 2 -out loadgen-smoke.json

# Fleet broadcast engine: a small tower fleet airing the same rotation
# through the shared artifact chain, with a one-tower dedup-off
# baseline. The run itself asserts nothing numeric here (the dedup and
# parity contracts live in go test); this smoke proves the replay,
# cache, and baseline paths run end to end on any host.
echo "==> fleet-day smoke (8 towers through the shared artifact chain)"
go run ./cmd/sonic-bench -fleet 8 -fleet-hours 1 -fleet-pages 4 -fleet-baseline 1

echo "==> bench smoke (one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "==> benchguard (checked-in snapshot comparison)"
./scripts/benchguard.sh

echo "==> perf trajectory (all checked-in snapshots)"
./scripts/benchguard.sh --history

echo "==> ops smoke: sonic-sim -telemetry + obsprobe + sonic-top -once"
./scripts/ops-smoke.sh

echo "all checks passed"
