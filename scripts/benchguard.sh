#!/usr/bin/env bash
# benchguard.sh — guards the checked-in perf history. Compares the micro
# kernels shared between the two newest BENCH_*.json snapshots and fails
# when any kernel slowed down by more than 2x, so a perf regression shows
# up as a red check instead of a silently worse snapshot. A kernel present
# in the older snapshot but missing from the newer one also fails: a
# coverage hole (a kernel dropped from the suite, or a snapshot taken with
# a stale binary) must be an explicit decision, not a silent disappearance.
# With fewer than two snapshots there is nothing to compare and the guard
# passes.
#
#   benchguard.sh            # guard: newest two snapshots
#   benchguard.sh --history  # trajectory: per-kernel table across ALL
#                            # checked-in snapshots (never fails)
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t snaps < <(ls BENCH_*.json 2>/dev/null | sort -V)

if [[ "${1:-}" == "--history" ]]; then
    # The trajectory view also folds in the sonic-loadgen snapshots
    # (LOADGEN_*.json): their micro map uses the same {iters, ns_per_op}
    # shape, so the fleet-scale numbers (wall per request, p99 on-air)
    # ride the same table. The guard branch below stays BENCH-only —
    # loadgen kernels have no overlap with the bench suite and would
    # trip the missing-kernel rule.
    mapfile -t lgsnaps < <(ls LOADGEN_*.json 2>/dev/null | sort -V)
    if ((${#lgsnaps[@]} > 0)); then
        snaps+=("${lgsnaps[@]}")
    fi
    if ((${#snaps[@]} == 0)); then
        echo "benchguard: no snapshots; no history to report"
        exit 0
    fi
    python3 - "${snaps[@]}" <<'EOF'
import json, sys

paths = sys.argv[1:]
snaps = []  # (label, {kernel: ns_per_op})
for p in paths:
    doc = json.load(open(p))
    label = p.removesuffix(".json").removeprefix("BENCH_")
    if label.startswith("LOADGEN_"):
        label = "lg-" + label.removeprefix("LOADGEN_")
    snaps.append((label, {k: v["ns_per_op"] for k, v in doc.get("micro", {}).items()}))

kernels = sorted({k for _, micro in snaps for k in micro})
labels = [label for label, _ in snaps]

print(f"benchguard: perf trajectory across {len(snaps)} snapshots "
      f"({', '.join(labels)}); ms/op, 'vs first' = newest over oldest recording")
header = f"  {'kernel':24s}" + "".join(f"{l:>12s}" for l in labels) + f"{'vs first':>10s}"
print(header)
print("  " + "-" * (len(header) - 2))
for k in kernels:
    cells, series = [], []
    for _, micro in snaps:
        if k in micro:
            series.append(micro[k])
            cells.append(f"{micro[k] / 1e6:12.3f}")
        else:
            cells.append(f"{'-':>12s}")
    if len(series) >= 2 and series[-1]:
        trend = series[0] / series[-1]
        mark = f"{trend:8.2f}x"
    else:
        mark = f"{'new':>9s}"
    print(f"  {k:24s}" + "".join(cells) + mark)
EOF
    exit 0
fi

if ((${#snaps[@]} < 2)); then
    echo "benchguard: ${#snaps[@]} snapshot(s); nothing to compare"
    exit 0
fi
prev=${snaps[-2]}
curr=${snaps[-1]}

python3 - "$prev" "$curr" <<'EOF'
import json, sys

prev_path, curr_path = sys.argv[1], sys.argv[2]
prev = json.load(open(prev_path))["micro"]
curr = json.load(open(curr_path))["micro"]
shared = sorted(set(prev) & set(curr))
if not shared:
    print(f"benchguard: no shared kernels between {prev_path} and {curr_path}")
    sys.exit(0)

print(f"benchguard: {prev_path} -> {curr_path}")
failed = False
rows = []
for k in shared:
    old = prev[k]["ns_per_op"]
    new = curr[k]["ns_per_op"]
    ratio = new / old if old else float("inf")
    flag = ""
    if ratio > 2.0:
        failed = True
        flag = "  << REGRESSION (>2x)"
    rows.append((k, old, new, ratio, flag))
    print(f"  {k:24s} {old / 1e6:10.3f} ms -> {new / 1e6:10.3f} ms  ({ratio:5.2f}x){flag}")

# Kernels that first appear in the newer snapshot (e.g. the render_*
# family) have no baseline to guard against yet; list them so the
# snapshot diff is self-describing, and so a kernel silently vanishing
# from the suite is visible too.
added = sorted(set(curr) - set(prev))
if added:
    print("benchguard: new kernels (baseline established by this snapshot):")
    for k in added:
        print(f"  {k:24s} {'':>10s}       {curr[k]['ns_per_op'] / 1e6:10.3f} ms  (new)")
# A kernel that existed in the baseline but is gone from the newer
# snapshot is a hard failure: either the suite lost coverage or the
# snapshot was produced by a binary that predates the kernel. Removing
# one on purpose means rewriting the baseline snapshot in the same PR.
removed = sorted(set(prev) - set(curr))
if removed:
    failed = True
    print("benchguard: FAIL — kernels missing from the newer snapshot: " + ", ".join(removed))

if failed:
    sys.exit(1)

# Success: print the delta table summary — biggest improvements first —
# so a green run still shows what the PR bought.
rows.sort(key=lambda r: r[3])
improved = sum(1 for r in rows if r[3] < 0.98)
print(f"benchguard: OK — {len(rows)} shared kernels, {improved} improved, {len(added)} new")
for k, old, new, ratio, _ in rows:
    if ratio < 0.98:
        print(f"  {k:24s} {1 / ratio:5.2f}x faster")
EOF
