#!/usr/bin/env bash
# benchguard.sh — guards the checked-in perf history. Compares the micro
# kernels shared between the two newest BENCH_*.json snapshots and fails
# when any kernel slowed down by more than 2x, so a perf regression shows
# up as a red check instead of a silently worse snapshot. With fewer than
# two snapshots there is nothing to compare and the guard passes.
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t snaps < <(ls BENCH_*.json 2>/dev/null | sort -V)
if ((${#snaps[@]} < 2)); then
    echo "benchguard: ${#snaps[@]} snapshot(s); nothing to compare"
    exit 0
fi
prev=${snaps[-2]}
curr=${snaps[-1]}

python3 - "$prev" "$curr" <<'EOF'
import json, sys

prev_path, curr_path = sys.argv[1], sys.argv[2]
prev = json.load(open(prev_path))["micro"]
curr = json.load(open(curr_path))["micro"]
shared = sorted(set(prev) & set(curr))
if not shared:
    print(f"benchguard: no shared kernels between {prev_path} and {curr_path}")
    sys.exit(0)

print(f"benchguard: {prev_path} -> {curr_path}")
failed = False
rows = []
for k in shared:
    old = prev[k]["ns_per_op"]
    new = curr[k]["ns_per_op"]
    ratio = new / old if old else float("inf")
    flag = ""
    if ratio > 2.0:
        failed = True
        flag = "  << REGRESSION (>2x)"
    rows.append((k, old, new, ratio, flag))
    print(f"  {k:24s} {old / 1e6:10.3f} ms -> {new / 1e6:10.3f} ms  ({ratio:5.2f}x){flag}")

# Kernels that first appear in the newer snapshot (e.g. the render_*
# family) have no baseline to guard against yet; list them so the
# snapshot diff is self-describing, and so a kernel silently vanishing
# from the suite is visible too.
added = sorted(set(curr) - set(prev))
if added:
    print("benchguard: new kernels (baseline established by this snapshot):")
    for k in added:
        print(f"  {k:24s} {'':>10s}       {curr[k]['ns_per_op'] / 1e6:10.3f} ms  (new)")
removed = sorted(set(prev) - set(curr))
if removed:
    print("benchguard: kernels dropped from the newer snapshot: " + ", ".join(removed))

if failed:
    sys.exit(1)

# Success: print the delta table summary — biggest improvements first —
# so a green run still shows what the PR bought.
rows.sort(key=lambda r: r[3])
improved = sum(1 for r in rows if r[3] < 0.98)
print(f"benchguard: OK — {len(rows)} shared kernels, {improved} improved, {len(added)} new")
for k, old, new, ratio, _ in rows:
    if ratio < 0.98:
        print(f"  {k:24s} {1 / ratio:5.2f}x faster")
EOF
