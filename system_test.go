package sonic

// Whole-system integration test: the paper's Figure 3 scenario end to
// end — a server with a transmitter control link over real TCP, an SMS
// network, three receiver classes (user-A over the air, user-B internal
// tuner, user-C audio jack + SMS), a full broadcast cycle including the
// preemptive popularity push, hyperlink navigation, and cache expiry.

import (
	"net"
	"testing"
	"time"

	"sonic/internal/corpus"
	"sonic/internal/server"
)

func TestSystemDayInTheLife(t *testing.T) {
	if testing.Short() {
		t.Skip("DSP-heavy system test")
	}
	pipe, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// --- deployment ---------------------------------------------------
	srv := NewServer(DefaultServerConfig(), pipe)
	srv.AddTransmitter(Transmitter{
		ID: "tx-khi", FreqMHz: 93.7, ExtraFreqsMHz: []float64{95.1},
		Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})
	smsc := NewSMSC(time.Second, 4*time.Second, 99)
	smsc.Register("+92300SONIC", srv.HandleSMS(smsc))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(l)
	}()
	tx, err := server.DialTransmitter(l.Addr().String(), "tx-khi")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	// --- users ----------------------------------------------------------
	userC := NewClient(ClientConfig{
		Number: "+92300111", SonicNumber: "+92300SONIC",
		ScreenWidth: 720, Lat: 24.87, Lon: 67.01, Capability: UplinkSMS,
	})
	userC.AttachSMSC(smsc)
	userB := NewClient(ClientConfig{ScreenWidth: 540}) // internal tuner, no SMS

	now := time.Unix(0, 0)

	// --- morning push (§3.1: popular pages pushed early) ----------------
	if err := srv.PushPopular(2, now); err != nil {
		t.Fatal(err)
	}

	// --- user-C requests a specific page via SMS -------------------------
	target := corpus.Pages()[8].URL // a landing page outside the 2-page push set
	if err := userC.Request(target, now); err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	smsc.Advance(now) // request delivered; server queues + acks
	now = now.Add(10 * time.Second)
	smsc.Advance(now) // ack delivered
	if _, ok := userC.PendingETA(target); !ok {
		t.Fatal("user-C never received the SMS ack")
	}

	// --- the transmitter drains its queue and broadcasts -----------------
	broadcasts := 0
	for {
		url, pageID, bundle, ok, err := tx.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		broadcasts++
		audio, err := pipe.EncodePageAudio(pageID, bundle)
		if err != nil {
			t.Fatal(err)
		}
		// Everyone in range hears the same burst (the broadcast win).
		for _, rx := range []struct {
			name string
			c    *Client
			link Link
		}{
			// Cable links here: the FM+acoustic physics is exercised by
			// the core and experiments tests; full pages through the
			// 192 kHz FM chain would cost minutes per broadcast.
			{"user-C", userC, NewCableLink()},
			{"user-B", userB, NewCableLink()},
		} {
			got := rx.link.Transmit(audio, 48000)
			res, err := pipe.DecodePageAudio(got)
			if err != nil {
				t.Fatalf("%s: %v", rx.name, err)
			}
			if !res.Complete {
				t.Fatalf("%s lost %d frames at high RSSI", rx.name, res.FramesLost)
			}
			rx.c.HandleBroadcast(url, res.Bundle, now, srv.PageTTL(), 1)
		}
	}
	if broadcasts != 3 { // 2 pushed + 1 requested
		t.Fatalf("broadcast %d pages, want 3", broadcasts)
	}

	// --- both devices now have a catalog ---------------------------------
	if got := len(userB.Catalog(now)); got != 3 {
		t.Errorf("user-B catalog has %d pages", got)
	}
	if _, ok := userC.PendingETA(target); ok {
		t.Error("delivery should clear user-C's pending request")
	}

	// --- user-C browses and follows a link --------------------------------
	page, err := userC.Open(target, now)
	if err != nil {
		t.Fatal(err)
	}
	if page.Image.W != 720 {
		t.Errorf("scaled width %d", page.Image.W)
	}
	// Downlink-only user-B cannot request uncached content.
	if err := userB.Request("x.pk/", now); err == nil {
		t.Error("user-B has no uplink; request should fail")
	}

	// --- cache expiry ------------------------------------------------------
	later := now.Add(srv.PageTTL() + time.Hour)
	if _, err := userC.Open(target, later); err == nil {
		t.Error("page should have expired")
	}
	if got := len(userC.Catalog(later)); got != 0 {
		t.Errorf("catalog after expiry has %d pages", got)
	}

	received, requested := userC.Stats()
	if received != 3 || requested != 1 {
		t.Errorf("user-C stats: received=%d requested=%d", received, requested)
	}
	reqs, _ := srv.Stats()
	if reqs != 1 {
		t.Errorf("server requests = %d", reqs)
	}
}
