package sonic

// Whole-system integration test: the paper's Figure 3 scenario end to
// end — a server with a transmitter control link over real TCP, an SMS
// network, three receiver classes (user-A over the air, user-B internal
// tuner, user-C audio jack + SMS), a full broadcast cycle including the
// preemptive popularity push, hyperlink navigation, and cache expiry.

import (
	"net"
	"testing"
	"time"

	"sonic/internal/corpus"
	"sonic/internal/server"
	"sonic/internal/telemetry"
)

func TestSystemDayInTheLife(t *testing.T) {
	if testing.Short() {
		t.Skip("DSP-heavy system test")
	}
	pipe, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// --- deployment ---------------------------------------------------
	reg := telemetry.New()
	lc := telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	srv := NewServer(DefaultServerConfig(), pipe)
	srv.Instrument(reg)
	srv.AddTransmitter(Transmitter{
		ID: "tx-khi", FreqMHz: 93.7, ExtraFreqsMHz: []float64{95.1},
		Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})
	smsc := NewSMSC(time.Second, 4*time.Second, 99)
	smsc.Register("+92300SONIC", srv.HandleSMS(smsc))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(l)
	}()
	tx, err := server.DialTransmitter(l.Addr().String(), "tx-khi")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	// --- users ----------------------------------------------------------
	userC := NewClient(ClientConfig{
		Number: "+92300111", SonicNumber: "+92300SONIC",
		ScreenWidth: 720, Lat: 24.87, Lon: 67.01, Capability: UplinkSMS,
	})
	userC.AttachSMSC(smsc)
	userC.Instrument(reg)
	userB := NewClient(ClientConfig{ScreenWidth: 540}) // internal tuner, no SMS

	now := time.Unix(0, 0)

	// --- morning push (§3.1: popular pages pushed early) ----------------
	if err := srv.PushPopular(2, now); err != nil {
		t.Fatal(err)
	}

	// --- user-C requests a specific page via SMS -------------------------
	target := corpus.Pages()[8].URL // a landing page outside the 2-page push set
	if err := userC.Request(target, now); err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	smsc.Advance(now) // request delivered; server queues + acks
	now = now.Add(10 * time.Second)
	smsc.Advance(now) // ack delivered
	if _, ok := userC.PendingETA(target); !ok {
		t.Fatal("user-C never received the SMS ack")
	}

	// --- the transmitter drains its queue and broadcasts -----------------
	broadcasts := 0
	for {
		url, pageID, bundle, ok, err := tx.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		broadcasts++
		audio, err := pipe.EncodePageAudio(pageID, bundle)
		if err != nil {
			t.Fatal(err)
		}
		// Everyone in range hears the same burst (the broadcast win).
		for _, rx := range []struct {
			name string
			c    *Client
			link Link
		}{
			// Cable links here: the FM+acoustic physics is exercised by
			// the core and experiments tests; full pages through the
			// 192 kHz FM chain would cost minutes per broadcast.
			{"user-C", userC, NewCableLink()},
			{"user-B", userB, NewCableLink()},
		} {
			got := rx.link.Transmit(audio, 48000)
			res, err := pipe.DecodePageAudio(got)
			if err != nil {
				t.Fatalf("%s: %v", rx.name, err)
			}
			if !res.Complete {
				t.Fatalf("%s lost %d frames at high RSSI", rx.name, res.FramesLost)
			}
			rx.c.HandleBroadcast(url, res.Bundle, now, srv.PageTTL(), 1)
		}
	}
	if broadcasts != 3 { // 2 pushed + 1 requested
		t.Fatalf("broadcast %d pages, want 3", broadcasts)
	}

	// --- both devices now have a catalog ---------------------------------
	if got := len(userB.Catalog(now)); got != 3 {
		t.Errorf("user-B catalog has %d pages", got)
	}
	if _, ok := userC.PendingETA(target); ok {
		t.Error("delivery should clear user-C's pending request")
	}

	// --- user-C browses and follows a link --------------------------------
	page, err := userC.Open(target, now)
	if err != nil {
		t.Fatal(err)
	}
	if page.Image.W != 720 {
		t.Errorf("scaled width %d", page.Image.W)
	}
	// Downlink-only user-B cannot request uncached content.
	if err := userB.Request("x.pk/", now); err == nil {
		t.Error("user-B has no uplink; request should fail")
	}

	// --- cache expiry ------------------------------------------------------
	later := now.Add(srv.PageTTL() + time.Hour)
	if _, err := userC.Open(target, later); err == nil {
		t.Error("page should have expired")
	}
	if got := len(userC.Catalog(later)); got != 0 {
		t.Errorf("catalog after expiry has %d pages", got)
	}

	// --- telemetry closed the loop ---------------------------------------
	snap := reg.Snapshot()
	if received := snap.Counters["client_pages_received_total"]; received != 3 {
		t.Errorf("user-C pages received = %d, want 3", received)
	}
	if requested := snap.Counters["client_requests_sent_total"]; requested != 1 {
		t.Errorf("user-C requests sent = %d, want 1", requested)
	}
	if reqs := snap.Counters["server_sms_requests_total"]; reqs != 1 {
		t.Errorf("server requests = %d", reqs)
	}

	// The one SMS request was traced end to end: it went on air with a
	// positive request→on-air latency (the page's airtime at minimum) and
	// user-C's broadcast ingest confirmed delivery.
	onAir, ok := snap.Histograms["request_to_on_air_seconds"]
	if !ok || onAir.Count != 1 {
		t.Fatalf("request_to_on_air_seconds count = %+v, want 1 observation", onAir)
	}
	if onAir.Sum <= 0 {
		t.Errorf("request->on-air latency = %v s, want > 0", onAir.Sum)
	}
	if delivered := snap.Counters["lifecycle_delivered_total"]; delivered != 1 {
		t.Errorf("lifecycle delivered = %d, want 1", delivered)
	}

	// The event ring reconstructs the request's timeline in stage order.
	var traceID string
	for _, e := range lc.Ring().Events("") {
		if e.URL == target && e.Stage == "received" {
			traceID = e.Trace
		}
	}
	if traceID == "" {
		t.Fatal("no received event for the SMS-requested page in the event ring")
	}
	wantStages := []string{"received", "admitted", "render_start", "render_done",
		"enqueued", "on_air_start", "on_air_done", "delivered"}
	events := lc.Ring().Events(traceID)
	if len(events) != len(wantStages) {
		t.Fatalf("trace %s has %d events, want %d: %+v", traceID, len(events), len(wantStages), events)
	}
	for i, e := range events {
		if e.Stage != wantStages[i] {
			t.Errorf("trace event %d stage = %q, want %q", i, e.Stage, wantStages[i])
		}
		if e.WaitSeconds < 0 {
			t.Errorf("trace event %d wait = %v, want >= 0", i, e.WaitSeconds)
		}
	}
}
