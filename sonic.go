// Package sonic is a pure-Go implementation of SONIC ("Connect the
// Unconnected via FM Radio & SMS", CoNEXT 2024): a connectivity system
// that broadcasts pre-rendered webpages as sound over FM radio and takes
// page requests back over SMS.
//
// The package re-exports the stable surface of the internal subsystems:
//
//   - Pipeline: the end-to-end encoder/decoder (image -> SIC codec ->
//     100-byte frames -> rs8+v29 FEC -> 92-subcarrier OFDM audio).
//   - FM channel simulation: RSSI/path-loss radio links, acoustic
//     speaker-to-microphone links, composite baseband with RDS.
//   - Server and Client: the §3.1 workflow — SMS request intake,
//     render+cache, transmitter selection, broadcast queues, click-map
//     navigation, page cache with server-set expiry.
//   - The evaluation workloads: the 100-page Pakistani corpus, the
//     backlog simulator (Fig. 4c) and the simulated user study (Fig. 5).
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	pipe, _ := sonic.NewPipeline(sonic.DefaultConfig())
//	page := sonic.GeneratePage("khabar.pk/", 0)
//	rendered := sonic.RenderPage(page)
//	bundle, _ := sonic.BundlePage(rendered, 10)
//	audio, _ := pipe.EncodePageAudio(1, bundle)
//	// ... play audio through an FM transmitter, or simulate:
//	rx := sonic.NewCableLink().Transmit(audio, 48000)
//	result, _ := pipe.DecodePageAudio(rx)
package sonic

import (
	"time"

	"sonic/internal/broadcast"
	"sonic/internal/client"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/fec"
	"sonic/internal/fm"
	"sonic/internal/imagecodec"
	"sonic/internal/interp"
	"sonic/internal/modem"
	"sonic/internal/server"
	"sonic/internal/sms"
	"sonic/internal/userstudy"
	"sonic/internal/webrender"
)

// Core pipeline types.
type (
	// Pipeline is the end-to-end SONIC transmission stack.
	Pipeline = core.Pipeline
	// Config selects modem profile, FEC stack and image settings.
	Config = core.Config
	// Bundle is the broadcast unit: encoded page image + click map.
	Bundle = core.Bundle
	// ReceiveResult summarizes one received transmission.
	ReceiveResult = core.ReceiveResult
)

// Channel simulation types.
type (
	// Link is one hop of the downlink (FM, acoustic, cable...).
	Link = fm.Link
	// Chain composes links.
	Chain = fm.Chain
	// RSSIModel maps distance to received signal strength.
	RSSIModel = fm.RSSIModel
	// AcousticModel is the over-the-air speaker-to-mic channel.
	AcousticModel = fm.AcousticModel
)

// System types.
type (
	// Server is the central SONIC server.
	Server = server.Server
	// ServerConfig tunes the server.
	ServerConfig = server.Config
	// Transmitter is one FM station.
	Transmitter = server.Transmitter
	// Client is a SONIC end-user device.
	Client = client.Client
	// ClientConfig describes the device.
	ClientConfig = client.Config
	// SMSC is the simulated SMS network.
	SMSC = sms.SMSC
	// Raster is the RGB image type pages render into.
	Raster = imagecodec.Raster
	// Rendered is a rasterized page with click map and row classes.
	Rendered = webrender.Rendered
	// Page is a synthetic webpage model.
	Page = webrender.Page
	// PageRef identifies a corpus page.
	PageRef = corpus.PageRef
)

// Client capability levels (the paper's user classes A/B vs C).
const (
	DownlinkOnly = client.DownlinkOnly
	UplinkSMS    = client.UplinkSMS
)

// DefaultConfig returns the paper's configuration: the Sonic92 OFDM
// profile with rs8 outer and v29 inner FEC, SIC quality 10.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewPipeline builds a transmission pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) { return core.NewPipeline(cfg) }

// NewServer builds a SONIC server on the given pipeline.
func NewServer(cfg ServerConfig, p *Pipeline) *Server { return server.New(cfg, p) }

// DefaultServerConfig returns the paper's server settings.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// NewClient builds a client device.
func NewClient(cfg ClientConfig) *Client { return client.New(cfg) }

// NewSMSC builds a simulated SMS network with the given delivery
// latency range.
func NewSMSC(minDelay, maxDelay time.Duration, seed int64) *SMSC {
	return sms.NewSMSC(minDelay, maxDelay, seed)
}

// NewCableLink returns the lossless downlink hop (audio jack / internal
// tuner).
func NewCableLink() Link { return fm.CableLink{} }

// NewFMLink returns the radio hop at the given RSSI (dB).
func NewFMLink(rssi float64) Link {
	return &fm.FMLink{Model: fm.DefaultRSSIModel(), RSSIOverride: rssi}
}

// NewAcousticLink returns the over-the-air hop at d meters (d <= 0 means
// a cable).
func NewAcousticLink(d float64) Link {
	return &fm.AcousticLink{Model: fm.DefaultAcousticModel(), DistanceM: d}
}

// GeneratePage builds the deterministic synthetic page for a URL at an
// hour index (the corpus substitute for live Chrome rendering).
func GeneratePage(url string, hour int) *Page {
	return webrender.Generate(url, hour, webrender.DefaultGenOptions())
}

// RenderPage rasterizes a page at the 1080 px reference width.
func RenderPage(p *Page) *Rendered { return webrender.Render(p) }

// BundlePage crops to the 10k pixel-height budget, encodes the image at
// the given quality, and packs the click map — producing what the server
// broadcasts for one page.
func BundlePage(r *Rendered, quality int) (Bundle, error) {
	img := r.Image.Crop(imagecodec.MaxPageHeight)
	enc, err := imagecodec.EncodeSIC(img, quality)
	if err != nil {
		return Bundle{}, err
	}
	cm, err := r.Clicks.MarshalJSON()
	if err != nil {
		return Bundle{}, err
	}
	return Bundle{Image: enc, ClickMap: cm}, nil
}

// DecodePageImage decodes a bundle's image back into a raster.
func DecodePageImage(b Bundle) (*Raster, error) {
	return imagecodec.DecodeSIC(b.Image)
}

// CorpusPages returns the 100-page evaluation corpus (25 Tranco-style
// .pk sites x 4 pages).
func CorpusPages() []PageRef { return corpus.Pages() }

// Interpolate repairs missing pixels in place using the paper's
// left-priority nearest-neighbor scheme.
func Interpolate(r *Raster, missing []bool) { interp.Interpolate(r, missing) }

// Evaluation re-exports (for building custom experiment harnesses).
type (
	// BacklogConfig parameterizes the Fig. 4(c) backlog simulation.
	BacklogConfig = broadcast.Config
	// BacklogResult is a finished backlog run.
	BacklogResult = broadcast.Result
	// StudyCondition is one user-study cell (loss rate x interpolation).
	StudyCondition = userstudy.Condition
	// StudyResult aggregates the simulated rating panel.
	StudyResult = userstudy.StudyResult
)

// SimulateBacklog runs the Fig. 4(c) model.
func SimulateBacklog(cfg BacklogConfig) (*BacklogResult, error) {
	return broadcast.Simulate(cfg)
}

// NewV29 and NewV27 expose the inner convolutional codes for custom
// pipeline configs and ablations.
func NewV29() *fec.ConvCode { return fec.NewV29() }

// NewV27 returns the weaker K=7 inner code (ablation baseline).
func NewV27() *fec.ConvCode { return fec.NewV27() }

// Sonic92Profile returns the paper's OFDM profile (92 subcarriers,
// 9.2 kHz center, 64-QAM).
func Sonic92Profile() modem.Profile { return modem.Sonic92() }

// NewFSK128Modem returns the GGwave-class FSK baseline modem (§2).
func NewFSK128Modem() *modem.FSK { return modem.NewFSK128() }

// NewGMSKModem returns the constant-envelope GMSK modem, the other
// modulation the Quiet library offers (§2).
func NewGMSKModem() *modem.GMSK { return modem.NewGMSK() }

// Audible7kProfile returns the Quiet-style QPSK profile SONIC's was
// derived from.
func Audible7kProfile() modem.Profile { return modem.Audible7k() }
