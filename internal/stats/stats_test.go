package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%g = %g, want %g", p, got, want)
		}
	}
	// Interpolation.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Error("Percentile mutated input")
	}
}

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %g", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("std = %g", StdDev(xs))
	}
	if Median([]float64{1, 3, 2}) != 2 {
		t.Error("median wrong")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty stats should be NaN")
	}
}

func TestBoxplot(t *testing.T) {
	b := BoxplotOf([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 {
		t.Errorf("box = %+v", b)
	}
	if !strings.Contains(b.String(), "med=3.00") {
		t.Errorf("String = %q", b.String())
	}
}

func TestCDF(t *testing.T) {
	v, c := CDF([]float64{3, 1, 2})
	if v[0] != 1 || v[2] != 3 {
		t.Errorf("values = %v", v)
	}
	if c[0] != 1.0/3 || c[2] != 1 {
		t.Errorf("cum = %v", c)
	}
	if got := CDFAt([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Errorf("CDFAt = %g", got)
	}
	if vs, cs := CDF(nil); vs != nil || cs != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestTableRender(t *testing.T) {
	var tb Table
	tb.AddRow("distance", "loss%")
	tb.AddRowf("cable", 0.0)
	tb.AddRowf("1m", 15.5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "distance") || !strings.Contains(out, "15.50") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
	// Empty table renders nothing.
	var empty Table
	var sb2 strings.Builder
	empty.Render(&sb2)
	if sb2.Len() != 0 {
		t.Error("empty table should render nothing")
	}
}
