// Package stats provides the small statistics toolkit the benchmark
// harness uses to print the paper's tables and figures: percentiles,
// boxplot summaries, CDFs, and fixed-width table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var acc float64
	for _, v := range xs {
		acc += v
	}
	return acc / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var acc float64
	for _, v := range xs {
		acc += (v - m) * (v - m)
	}
	return math.Sqrt(acc / float64(len(xs)))
}

// Box is a five-number boxplot summary, the shape of the paper's
// Figure 4(a) and Figure 5 plots.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// BoxplotOf summarizes xs.
func BoxplotOf(xs []float64) Box {
	return Box{
		Min:    Percentile(xs, 0),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Percentile(xs, 100),
	}
}

// String renders the box compactly.
func (b Box) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f",
		b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// CDF returns the empirical CDF of xs evaluated at each sorted sample:
// (sorted values, cumulative fraction 0..1].
func CDF(xs []float64) (values, cum []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	values = append([]float64(nil), xs...)
	sort.Float64s(values)
	cum = make([]float64, len(values))
	for i := range values {
		cum[i] = float64(i+1) / float64(len(values))
	}
	return values, cum
}

// CDFAt returns the empirical CDF of xs evaluated at x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Table renders rows with aligned columns to w. The first row is the
// header and is underlined.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where each cell is fmt.Sprint'ed.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	if len(t.rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(row []string) {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.rows[0])
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.rows[1:] {
		writeRow(row)
	}
}
