package webrender

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The rasterizer's only data-parallel stage is the pseudo-photo row
// loop: every output row is a pure function of the photo seed and the
// row index (per-row noise derivation, see photoNoise), so rows can be
// painted by any number of workers and the pixels are byte-identical to
// the serial pass. Everything else in the renderer is a serial chain of
// overlapping draws and stays single-threaded.

// defaultWorkers is the pool size used when no explicit count is set.
// 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetWorkers sets the package-wide worker count used by the
// data-parallel photo rows. n <= 0 restores the default (GOMAXPROCS).
// The server threads its Workers config knob through here, mirroring
// imagecodec.SetWorkers.
func SetWorkers(n int) { //sonic:ignore equivpin concurrency knob, not a kernel
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers reports the resolved package-wide worker count.
func Workers() int { return resolveWorkers(0) } //sonic:ignore equivpin concurrency knob, not a kernel

// resolveWorkers maps a per-call worker request to a concrete pool
// size: explicit n > 0 wins, then the package default, then GOMAXPROCS.
func resolveWorkers(n int) int {
	if n <= 0 {
		n = int(defaultWorkers.Load())
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// parallelFor runs fn over contiguous chunks covering [0, n), using at
// most workers goroutines. workers <= 1 (or tiny n) runs inline with no
// goroutine overhead, keeping the single-core path as fast as the
// serial rasterizer.
func parallelFor(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
