package webrender

import (
	"strings"
	"testing"

	"sonic/internal/imagecodec"
)

func TestDrawTextAndMetrics(t *testing.T) {
	r := imagecodec.NewRaster(200, 40)
	end := DrawText(r, 4, 4, "SONIC", 2, imagecodec.RGB{})
	if end <= 4 {
		t.Error("DrawText did not advance")
	}
	// Some dark pixels must have appeared.
	dark := 0
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if r.At(x, y) == (imagecodec.RGB{}) {
				dark++
			}
		}
	}
	if dark < 20 {
		t.Errorf("only %d text pixels drawn", dark)
	}
	if TextWidth("AB", 2) != 2*(5+1)*2-2 {
		t.Errorf("TextWidth = %d", TextWidth("AB", 2))
	}
	if TextWidth("", 3) != 0 {
		t.Error("empty TextWidth should be 0")
	}
	if TextHeight(3) != 21 {
		t.Errorf("TextHeight(3) = %d", TextHeight(3))
	}
	// Lowercase maps to uppercase; unknown runes use the box glyph.
	if glyphFor('a') != glyphFor('A') {
		t.Error("lowercase should reuse uppercase glyphs")
	}
	if glyphFor('€') != unknownGlyph {
		t.Error("unknown rune should map to box")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate("khabar.pk/", 5, DefaultGenOptions())
	b := Generate("khabar.pk/", 5, DefaultGenOptions())
	if len(a.Blocks) != len(b.Blocks) || a.Title != b.Title {
		t.Fatal("same (url,hour) must generate identical pages")
	}
	for i := range a.Blocks {
		if a.Blocks[i].Kind != b.Blocks[i].Kind || a.Blocks[i].Text != b.Blocks[i].Text {
			t.Fatalf("block %d differs", i)
		}
	}
	c := Generate("khabar.pk/", 6, DefaultGenOptions())
	same := len(a.Blocks) == len(c.Blocks)
	if same {
		identical := true
		for i := range a.Blocks {
			if a.Blocks[i].Text != c.Blocks[i].Text {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different hours should change content")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	p := Generate("dunya-news.pk/", 0, DefaultGenOptions())
	if p.Blocks[0].Kind != BlockHeader || p.Blocks[1].Kind != BlockNavBar {
		t.Error("page must start with header + nav")
	}
	if p.Blocks[len(p.Blocks)-1].Kind != BlockFooter {
		t.Error("page must end with footer")
	}
	if p.Weight < 1_000_000 || p.Weight > 3_200_000 {
		t.Errorf("page weight %d outside the ~2MB average regime", p.Weight)
	}
	if p.SiteName != "dunya-news.pk" {
		t.Errorf("site = %q", p.SiteName)
	}
	// Theme stable across hours.
	p2 := Generate("dunya-news.pk/story/1", 9, DefaultGenOptions())
	if p.Theme != p2.Theme {
		t.Error("theme must be stable per site")
	}
}

func TestRenderProducesPageAndClicks(t *testing.T) {
	p := Generate("cricfeed.pk/", 3, DefaultGenOptions())
	r := Render(p)
	if r.Image.W != imagecodec.PageWidth {
		t.Errorf("width = %d", r.Image.W)
	}
	if r.Image.H < 2000 {
		t.Errorf("height = %d, implausibly short for a landing page", r.Image.H)
	}
	if len(r.Clicks.Regions) < 5 {
		t.Errorf("only %d click regions", len(r.Clicks.Regions))
	}
	// Click regions must be in-bounds horizontally and have sane URLs.
	for _, reg := range r.Clicks.Regions {
		if reg.X < 0 || reg.X+reg.W > r.Image.W || reg.W <= 0 || reg.H <= 0 {
			t.Errorf("bad region %+v", reg)
		}
		if !strings.Contains(reg.URL, "cricfeed.pk") {
			t.Errorf("region URL %q not same-site", reg.URL)
		}
	}
	// The header band must be drawn in the theme color.
	if r.Image.At(2, 2) != p.Theme.Header {
		t.Error("header not painted")
	}
}

func TestRenderHeightsVaryAcrossCorpus(t *testing.T) {
	// The Fig 4(b) CDF depends on a spread of page heights, with a good
	// share exceeding the 10k crop.
	over10k := 0
	const n = 12
	for i := 0; i < n; i++ {
		p := Generate("site"+string(rune('a'+i))+".pk/", 0, DefaultGenOptions())
		r := Render(p)
		if r.Image.H > imagecodec.MaxPageHeight {
			over10k++
		}
	}
	if over10k == 0 {
		t.Error("no landing page exceeded 10k px; crop experiments would be vacuous")
	}
	if over10k == n {
		t.Error("every page exceeded 10k px; height distribution too narrow")
	}
}

func TestWrap(t *testing.T) {
	lines := wrap("aa bb cc dd", 5)
	if len(lines) != 3 { // "aa bb", "cc dd" -> wait: "aa bb" is 5 chars
		// Accept 2 or 3 depending on boundary handling, but verify no line
		// exceeds the width and all words survive.
		t.Logf("lines: %q", lines)
	}
	joined := strings.Join(lines, " ")
	if joined != "aa bb cc dd" {
		t.Errorf("words lost: %q", joined)
	}
	for _, l := range lines {
		if len(l) > 5 {
			t.Errorf("line %q exceeds width", l)
		}
	}
	if len(wrap("", 10)) != 0 {
		t.Error("empty wrap should be empty")
	}
}

func TestTitleCase(t *testing.T) {
	if got := titleCase("the lahore news"); got != "The Lahore News" {
		t.Errorf("titleCase = %q", got)
	}
}

func BenchmarkRenderLandingPage(b *testing.B) {
	p := Generate("khabar.pk/", 1, DefaultGenOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(p)
	}
}
