// Package webrender renders synthetic webpages into pixel rasters. It
// stands in for the paper's Chrome-based capture pipeline (§3.2, §4): the
// SONIC server rendered 100 real Pakistani webpages hourly and shipped
// screenshots; offline, this package generates structurally similar pages
// (headers, nav bars, text columns, images, link lists) deterministically
// from a URL and a timestamp, rasterizes them at the paper's 1080 px
// reference width, and emits the click map for each hyperlink.
package webrender

import (
	"sync"
	"sync/atomic"

	"sonic/internal/imagecodec"
)

// Glyph geometry: a classic 5x7 bitmap font, scaled at draw time.
const (
	glyphW = 5
	glyphH = 7
)

// font5x7 maps supported characters to 7 rows of 5-bit patterns (MSB is
// the leftmost column). Unsupported characters render as a filled box,
// which is fine for synthetic text.
var font5x7 = map[rune][glyphH]uint8{
	'A':  {0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11},
	'B':  {0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E},
	'C':  {0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E},
	'D':  {0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E},
	'E':  {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F},
	'F':  {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10},
	'G':  {0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F},
	'H':  {0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11},
	'I':  {0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E},
	'J':  {0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C},
	'K':  {0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11},
	'L':  {0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F},
	'M':  {0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11},
	'N':  {0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11},
	'O':  {0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E},
	'P':  {0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10},
	'Q':  {0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D},
	'R':  {0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11},
	'S':  {0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E},
	'T':  {0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04},
	'U':  {0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E},
	'V':  {0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04},
	'W':  {0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11},
	'X':  {0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11},
	'Y':  {0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04},
	'Z':  {0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F},
	'0':  {0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E},
	'1':  {0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E},
	'2':  {0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F},
	'3':  {0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E},
	'4':  {0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02},
	'5':  {0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E},
	'6':  {0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E},
	'7':  {0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08},
	'8':  {0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E},
	'9':  {0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C},
	' ':  {0, 0, 0, 0, 0, 0, 0},
	'.':  {0, 0, 0, 0, 0, 0x0C, 0x0C},
	',':  {0, 0, 0, 0, 0x0C, 0x04, 0x08},
	':':  {0, 0x0C, 0x0C, 0, 0x0C, 0x0C, 0},
	'-':  {0, 0, 0, 0x1F, 0, 0, 0},
	'/':  {0x01, 0x01, 0x02, 0x04, 0x08, 0x10, 0x10},
	'?':  {0x0E, 0x11, 0x01, 0x02, 0x04, 0, 0x04},
	'!':  {0x04, 0x04, 0x04, 0x04, 0x04, 0, 0x04},
	'&':  {0x0C, 0x12, 0x14, 0x08, 0x15, 0x12, 0x0D},
	'(':  {0x02, 0x04, 0x08, 0x08, 0x08, 0x04, 0x02},
	')':  {0x08, 0x04, 0x02, 0x02, 0x02, 0x04, 0x08},
	'\'': {0x04, 0x04, 0x08, 0, 0, 0, 0},
}

var unknownGlyph = [glyphH]uint8{0x1F, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1F}

// glyphFor maps lowercase to uppercase and unknown runes to a box.
func glyphFor(r rune) [glyphH]uint8 {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	if g, ok := font5x7[r]; ok {
		return g
	}
	return unknownGlyph
}

// TextWidth returns the pixel width of s drawn at the given scale
// (glyphs are 5 px wide plus a 1 px gap, all scaled).
func TextWidth(s string, scale int) int {
	n := 0
	for range s {
		n++
	}
	if n == 0 {
		return 0
	}
	return n*(glyphW+1)*scale - scale
}

// TextHeight returns the pixel height of text at the given scale.
func TextHeight(scale int) int { return glyphH * scale }

// glyphKey identifies one cached glyph sprite. Keying on the resolved
// bitmap (not the rune) dedupes case folding and the unknown-rune box.
type glyphKey struct {
	g     [glyphH]uint8
	scale int
	c     imagecodec.RGB
}

// glyphSprite is the blit-ready form of one (glyph, scale, color): the
// scaled [start, end) pixel runs of each glyph row, plus one solid color
// row long enough to copy any run from. Because every run is the same
// solid color, clipped blits never need a source offset.
type glyphSprite struct {
	spans    [glyphH][]int // flattened pairs of scaled x offsets
	colorRow []byte        // 3*glyphW*scale bytes of c
}

// glyphAtlas caches sprites across renders. The working set is tiny
// (≈50 glyphs × 4 scales × a handful of theme colors), but the count is
// capped so adversarial inputs (arbitrary colors) cannot grow it without
// bound — over the cap, sprites are built per call and not stored.
var (
	glyphAtlas      sync.Map // glyphKey -> *glyphSprite
	glyphAtlasSize  atomic.Int64
	maxAtlasSprites = int64(4096)
)

// buildSprite rasterizes the spans and color row for a key.
func buildSprite(k glyphKey) *glyphSprite {
	sp := &glyphSprite{colorRow: make([]byte, 3*glyphW*k.scale)}
	for i := 0; i < glyphW*k.scale; i++ {
		sp.colorRow[3*i], sp.colorRow[3*i+1], sp.colorRow[3*i+2] = k.c.R, k.c.G, k.c.B
	}
	for row := 0; row < glyphH; row++ {
		bits := k.g[row]
		for col := 0; col < glyphW; {
			if bits&(1<<uint(glyphW-1-col)) == 0 {
				col++
				continue
			}
			run := col
			for run < glyphW && bits&(1<<uint(glyphW-1-run)) != 0 {
				run++
			}
			sp.spans[row] = append(sp.spans[row], col*k.scale, run*k.scale)
			col = run
		}
	}
	return sp
}

// spriteFor returns the cached sprite for a key, building (and, under the
// atlas cap, storing) it on first use.
func spriteFor(g [glyphH]uint8, scale int, c imagecodec.RGB) *glyphSprite {
	k := glyphKey{g: g, scale: scale, c: c}
	if v, ok := glyphAtlas.Load(k); ok {
		return v.(*glyphSprite)
	}
	sp := buildSprite(k)
	if glyphAtlasSize.Load() < maxAtlasSprites {
		if _, loaded := glyphAtlas.LoadOrStore(k, sp); !loaded {
			glyphAtlasSize.Add(1)
		}
	}
	return sp
}

// blitSprite stamps a sprite with its top-left corner at (x, y), clipped
// to the raster. Each covered raster row receives one copy per pixel run.
func blitSprite(r *imagecodec.Raster, x, y, scale int, sp *glyphSprite) {
	for row := 0; row < glyphH; row++ {
		spans := sp.spans[row]
		if len(spans) == 0 {
			continue
		}
		base := y + row*scale
		for dy := 0; dy < scale; dy++ {
			yy := base + dy
			if yy < 0 || yy >= r.H {
				continue
			}
			dst := r.Pix[3*yy*r.W : 3*(yy+1)*r.W]
			for i := 0; i < len(spans); i += 2 {
				x0, x1 := x+spans[i], x+spans[i+1]
				if x0 < 0 {
					x0 = 0
				}
				if x1 > r.W {
					x1 = r.W
				}
				if x0 < x1 {
					copy(dst[3*x0:3*x1], sp.colorRow)
				}
			}
		}
	}
}

// DrawText renders s onto r with its top-left corner at (x, y), each font
// pixel drawn as a scale×scale block. It returns the x coordinate just
// past the rendered text. Glyphs blit from the sprite atlas row-wise
// instead of plotting scale×scale rectangles per font pixel.
func DrawText(r *imagecodec.Raster, x, y int, s string, scale int, c imagecodec.RGB) int {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, ch := range s {
		blitSprite(r, cx, y, scale, spriteFor(glyphFor(ch), scale, c))
		cx += (glyphW + 1) * scale
	}
	return cx
}
