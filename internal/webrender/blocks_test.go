package webrender

import (
	"testing"

	"sonic/internal/imagecodec"
)

func TestTableBlockRenders(t *testing.T) {
	p := &Page{
		URL: "t.pk/", SiteName: "t.pk", Theme: themeFor("t.pk"),
		Blocks: []Block{{
			Kind: BlockTable,
			TableRows: [][]string{
				{"city", "rate", "change"},
				{"karachi", "281.50", "0.25"},
				{"lahore", "281.90", "0.40"},
			},
		}},
	}
	r := Render(p)
	// Grid lines: a horizontal run of the line color must exist.
	line := imagecodec.RGB{R: 180, G: 180, B: 180}
	found := false
	for y := 0; y < r.Image.H && !found; y++ {
		run := 0
		for x := 0; x < r.Image.W; x++ {
			if r.Image.At(x, y) == line {
				run++
				if run > 200 {
					found = true
					break
				}
			} else {
				run = 0
			}
		}
	}
	if !found {
		t.Error("no horizontal table rule drawn")
	}
	// Header row tint present.
	tint := imagecodec.RGB{R: 0xEF, G: 0xEF, B: 0xEF}
	if r.Image.At(100, 4) != tint {
		t.Errorf("header row not tinted: %+v", r.Image.At(100, 4))
	}
	// Empty table must not panic.
	empty := &Page{URL: "e.pk/", Theme: themeFor("e.pk"),
		Blocks: []Block{{Kind: BlockTable}}}
	Render(empty)
}

func TestSearchBlockAddsClickRegion(t *testing.T) {
	p := &Page{
		URL: "s.pk/", SiteName: "s.pk", Theme: themeFor("s.pk"),
		Blocks: []Block{{
			Kind:  BlockSearch,
			Text:  "SEARCH S.PK",
			Links: []Link{{Text: "search", URL: "s.pk/search"}},
		}},
	}
	r := Render(p)
	found := false
	for _, reg := range r.Clicks.Regions {
		if reg.URL == "s.pk/search" {
			found = true
			if reg.W < 50 || reg.H < 20 {
				t.Errorf("search button region too small: %+v", reg)
			}
		}
	}
	if !found {
		t.Error("search button has no click region")
	}
}

func TestCorpusIncludesNewBlocks(t *testing.T) {
	// Across a few corpus pages, tables and search boxes should appear.
	kinds := map[BlockKind]int{}
	for i := 0; i < 10; i++ {
		p := Generate("site"+string(rune('a'+i))+".pk/", 0, DefaultGenOptions())
		for _, b := range p.Blocks {
			kinds[b.Kind]++
		}
	}
	if kinds[BlockTable] == 0 {
		t.Error("no tables generated across 10 pages")
	}
	if kinds[BlockSearch] == 0 {
		t.Error("no search boxes generated across 10 pages")
	}
}

func TestBlockKindStrings(t *testing.T) {
	for k := BlockHeader; k <= BlockSearch; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if BlockKind(99).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}
