package webrender

import (
	"math"
	"math/rand"
	"sync"

	"sonic/internal/clickmap"
	"sonic/internal/imagecodec"
)

// Layout constants for the 1080-wide reference rendering (§3.2).
const (
	margin      = 24
	headerH     = 140
	navH        = 64
	headingTxt  = 4 // text scale factors
	bodyTxt     = 2
	linkTxt     = 2
	lineSpacing = 6
	blockGap    = 18
)

// Rendered is the output of rendering one page: the raster (1080 px wide,
// uncropped), the click map in image coordinates, and the per-row block
// classification the user-study metrics use to separate text readability
// from overall content understanding (Fig. 5's two questions).
type Rendered struct {
	Page   *Page
	Image  *imagecodec.Raster
	Clicks *clickmap.Map
	// Rows[y] is the kind of block that painted row y.
	Rows []BlockKind

	// buf is the pooled backing store, returned by Release.
	buf *renderBuf
}

// renderBuf is the reusable backing store of one render: the raster
// pixels (~1080×10k×3 bytes for a tall page) and the per-row block
// classification. Pooling them turns repeated renders from ~50 MB of
// fresh allocations each into near-zero steady-state allocation.
type renderBuf struct {
	pix  []byte
	rows []BlockKind
}

var renderPool = sync.Pool{New: func() any { return new(renderBuf) }}

// Release returns the rendering's pooled buffers for reuse. After the
// call, Image and Rows must no longer be used; callers that keep the
// raster (experiments, examples) simply never call Release and the
// buffers stay theirs.
func (r *Rendered) Release() {
	if r == nil || r.buf == nil {
		return
	}
	buf := r.buf
	r.buf = nil
	r.Image = nil
	r.Rows = nil
	renderPool.Put(buf)
}

// TextRow reports whether row y is dominated by text (headings,
// paragraphs, link lists).
func (r *Rendered) TextRow(y int) bool {
	if y < 0 || y >= len(r.Rows) {
		return false
	}
	switch r.Rows[y] {
	case BlockHeading, BlockParagraph, BlockLinkList:
		return true
	}
	return false
}

// Render rasterizes the page at the reference width. Height is whatever
// the content needs; callers apply Raster.Crop(MaxPageHeight) to enforce
// the paper's PH:10k policy.
func Render(p *Page) *Rendered {
	return RenderCropped(p, 0)
}

// RenderCropped rasterizes the page directly into a raster of at most
// maxH rows (0 = uncropped). The pixels are byte-identical to
// Render(p).Image.Crop(maxH) and the click map matches the full render's
// (regions below the crop are kept — §3.2 crops the image, not the
// links) — but blocks below the crop line never paint, so the server
// skips both the wasted rasterization of rows the PH:10k policy would
// discard and the 30 MB copy Crop makes.
func RenderCropped(p *Page, maxH int) *Rendered {
	fullH := measure(p)
	h := fullH
	if maxH > 0 && h > maxH {
		h = maxH
	}
	buf := renderPool.Get().(*renderBuf)
	n := 3 * imagecodec.PageWidth * h
	if cap(buf.pix) < n {
		buf.pix = make([]byte, n)
	}
	if cap(buf.rows) < h {
		buf.rows = make([]BlockKind, h)
	}
	img := &imagecodec.Raster{W: imagecodec.PageWidth, H: h, Pix: buf.pix[:n]}
	img.Fill(p.Theme.PageBG)
	clicks := &clickmap.Map{PageURL: p.URL}
	rows := buf.rows[:h]
	for i := range rows {
		rows[i] = 0
	}

	y := 0
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		next := renderBlock(img, clicks, p, b, y)
		for ry := y; ry < next && ry < h; ry++ {
			rows[ry] = b.Kind
		}
		y = next
	}
	return &Rendered{Page: p, Image: img, Clicks: clicks, Rows: rows, buf: buf}
}

// measure computes the total rendered height and stores each block's
// HeightPx.
func measure(p *Page) int {
	total := 0
	for i := range p.Blocks {
		b := &p.Blocks[i]
		switch b.Kind {
		case BlockHeader:
			b.HeightPx = headerH
		case BlockNavBar:
			b.HeightPx = navH
		case BlockHeading:
			b.HeightPx = TextHeight(headingTxt) + 2*blockGap
		case BlockParagraph:
			b.HeightPx = len(b.Lines)*(TextHeight(bodyTxt)+lineSpacing) + blockGap
		case BlockImage:
			b.HeightPx = 420 + TextHeight(bodyTxt) + blockGap
		case BlockLinkList:
			b.HeightPx = len(b.Links)*(TextHeight(linkTxt)+lineSpacing+8) + blockGap
		case BlockAd:
			b.HeightPx = 180 + blockGap
		case BlockFooter:
			b.HeightPx = 120
		case BlockTable:
			b.HeightPx = len(b.TableRows)*(TextHeight(bodyTxt)+14) + 2 + blockGap
		case BlockSearch:
			b.HeightPx = 72 + blockGap
		default:
			b.HeightPx = blockGap
		}
		total += b.HeightPx
	}
	return total
}

func renderBlock(img *imagecodec.Raster, clicks *clickmap.Map, p *Page, b *Block, y int) int {
	w := img.W
	switch b.Kind {
	case BlockHeader:
		img.FillRect(0, y, w, headerH, p.Theme.Header)
		DrawText(img, margin, y+headerH/2-TextHeight(5)/2, b.Text, 5,
			imagecodec.RGB{R: 255, G: 255, B: 255})
	case BlockNavBar:
		img.FillRect(0, y, w, navH, p.Theme.Accent)
		x := margin
		for _, l := range b.Links {
			tw := TextWidth(l.Text, linkTxt)
			DrawText(img, x, y+navH/2-TextHeight(linkTxt)/2, l.Text, linkTxt,
				imagecodec.RGB{R: 240, G: 240, B: 240})
			clicks.Add(x, y, tw, navH, l.URL)
			x += tw + 36
			if x > w-margin {
				break
			}
		}
	case BlockHeading:
		DrawText(img, margin, y+blockGap, b.Text, headingTxt, p.Theme.Text)
	case BlockParagraph:
		ty := y
		for _, line := range b.Lines {
			DrawText(img, margin, ty, line, bodyTxt, p.Theme.Text)
			ty += TextHeight(bodyTxt) + lineSpacing
		}
	case BlockImage:
		drawPseudoPhoto(img, margin, y, w-2*margin, 400, b.ImageSeed)
		DrawText(img, margin, y+408, b.Text, bodyTxt,
			imagecodec.RGB{R: 100, G: 100, B: 100})
	case BlockLinkList:
		ty := y
		for _, l := range b.Links {
			// Bullet.
			img.FillRect(margin, ty+4, 6, 6, p.Theme.Link)
			DrawText(img, margin+16, ty, l.Text, linkTxt, p.Theme.Link)
			tw := TextWidth(l.Text, linkTxt)
			// Underline, the visual cue for a hyperlink.
			img.FillRect(margin+16, ty+TextHeight(linkTxt)+1, tw, 1, p.Theme.Link)
			clicks.Add(margin, ty, tw+16, TextHeight(linkTxt)+8, l.URL)
			ty += TextHeight(linkTxt) + lineSpacing + 8
		}
	case BlockAd:
		img.FillRect(margin, y, w-2*margin, 160, b.Tint)
		img.FillRect(margin, y, w-2*margin, 4, imagecodec.RGB{R: 120, G: 100, B: 30})
		DrawText(img, w/2-TextWidth(b.Text, 3)/2, y+70, b.Text, 3,
			imagecodec.RGB{R: 80, G: 60, B: 10})
	case BlockFooter:
		img.FillRect(0, y, w, 120, imagecodec.RGB{R: 40, G: 40, B: 40})
		DrawText(img, margin, y+50, b.Text, 2, imagecodec.RGB{R: 200, G: 200, B: 200})
	case BlockTable:
		renderTable(img, p, b, y)
	case BlockSearch:
		// A bordered input box plus a button; the button region triggers
		// an uplink query when tapped.
		boxW := w * 2 / 3
		grey := imagecodec.RGB{R: 150, G: 150, B: 150}
		img.FillRect(margin, y+8, boxW, 48, imagecodec.RGB{R: 250, G: 250, B: 250})
		img.FillRect(margin, y+8, boxW, 2, grey)
		img.FillRect(margin, y+54, boxW, 2, grey)
		img.FillRect(margin, y+8, 2, 48, grey)
		img.FillRect(margin+boxW-2, y+8, 2, 48, grey)
		DrawText(img, margin+12, y+24, b.Text, 2, grey)
		bx := margin + boxW + 16
		img.FillRect(bx, y+8, 140, 48, p.Theme.Accent)
		DrawText(img, bx+20, y+24, "GO", 3, imagecodec.RGB{R: 255, G: 255, B: 255})
		if len(b.Links) > 0 {
			clicks.Add(bx, y+8, 140, 48, b.Links[0].URL)
		}
	}
	return y + b.HeightPx
}

// renderTable draws a bordered grid with text cells.
func renderTable(img *imagecodec.Raster, p *Page, b *Block, y int) {
	if len(b.TableRows) == 0 {
		return
	}
	w := img.W - 2*margin
	rowH := TextHeight(bodyTxt) + 14
	cols := len(b.TableRows[0])
	line := imagecodec.RGB{R: 180, G: 180, B: 180}
	for r, row := range b.TableRows {
		ry := y + 2 + r*rowH
		// Header row tinted.
		if r == 0 {
			img.FillRect(margin, ry, w, rowH, imagecodec.RGB{R: 0xEF, G: 0xEF, B: 0xEF})
		}
		img.FillRect(margin, ry, w, 1, line)
		for c := 0; c < cols && c < len(row); c++ {
			cx := margin + c*w/cols
			img.FillRect(cx, ry, 1, rowH, line)
			DrawText(img, cx+8, ry+7, row[c], bodyTxt, p.Theme.Text)
		}
	}
	bottom := y + 2 + len(b.TableRows)*rowH
	img.FillRect(margin, bottom, w, 1, line)
	img.FillRect(margin+w-1, y+2, 1, bottom-y-2, line)
}

// photoGrid is the control-point grid of the pseudo-photo generator.
const photoGrid = 4

// photoScratch holds the per-photo scanline state: the horizontal lerp
// of every control row at every x (lerp[gy][3*x+c]), rounded to 8 bits.
// Storing bytes instead of Q16 keeps all five rows L1-resident (~16 KB
// for a full-width photo) and shrinks the vertical blend to pure int32
// math; the extra rounding step moves output by at most one count,
// invisible under the photo's own grain. Pooled across photos.
type photoScratch struct {
	lerp [photoGrid + 1][]uint8
}

var photoPool = sync.Pool{New: func() any { return new(photoScratch) }}

func getPhotoScratch(w int) *photoScratch {
	sc := photoPool.Get().(*photoScratch)
	for gy := range sc.lerp {
		if cap(sc.lerp[gy]) < 3*w {
			sc.lerp[gy] = make([]uint8, 3*w)
		}
		sc.lerp[gy] = sc.lerp[gy][:3*w]
	}
	return sc
}

// photoNoise derives the grain for one pixel from a combined
// seed/row/column key via the splitmix64 finalizer, returning a value
// in [-3, 3]. Grain is a pure function of (seed, y, x) rather than a
// sequentially-consumed rng stream, which is what lets photo rows
// rasterize on any number of workers with byte-identical output.
func photoNoise(s uint64) int32 {
	s += 0x9E3779B97F4A7C15
	s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
	s = (s ^ (s >> 27)) * 0x94D049BB133111EB
	s ^= s >> 31
	return int32(s%7) - 3
}

// photoNoiseKey combines the photo seed with a pixel coordinate.
func photoNoiseKey(seed uint64, x, y int) uint64 {
	return seed + uint64(y)*0x9E3779B97F4A7C15 + uint64(x)
}

// drawPseudoPhoto paints a photo-like region: low-frequency color patches
// with mild per-pixel noise, matching how real news imagery stresses the
// codec more than flat UI chrome. The thumbnail is intentionally not
// clickable (§3.4: videos are replaced by non-clickable thumbnails).
//
// The bilinear interpolation is Q16 fixed point run scanline-wise: the
// horizontal lerp of each control row is computed once per x (it is
// identical for every scanline) and each output row folds just the
// vertical lerp plus grain, writing its visible span directly into the
// raster. Control colors live in [40, 220] and grain in [-3, 3], so
// blended pixels can never leave [0, 255] and the rows need no clamp.
// Rows are pure functions of (seed, y): grain comes from photoNoise
// rather than a shared rng stream, so the row loop is data-parallel
// behind the Workers knob with byte-identical output at any count.
func drawPseudoPhoto(img *imagecodec.Raster, x0, y0, w, h int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// 4x4 control grid, bilinear interpolation between random colors.
	// The grid stays rng-driven (16.16 fixed point) so pages keep their
	// per-seed palette.
	const grid = photoGrid
	var ctrl [grid + 1][grid + 1][3]int32
	for gy := 0; gy <= grid; gy++ {
		for gx := 0; gx <= grid; gx++ {
			for c := 0; c < 3; c++ {
				ctrl[gy][gx][c] = int32(math.Round((40 + 180*rng.Float64()) * 65536))
			}
		}
	}
	if w <= 0 || h <= 0 {
		return
	}
	// Fully clipped photos skip rasterization entirely: nothing else
	// observes a photo's noise keys, so the visible output is unchanged.
	if y0 >= img.H || y0+h <= 0 || x0 >= img.W || x0+w <= 0 {
		return
	}
	sc := getPhotoScratch(w)
	defer photoPool.Put(sc)
	for x := 0; x < w; x++ {
		fx := x * grid << 16 / w
		ix := fx >> 16
		if ix >= grid {
			ix = grid - 1
		}
		rx := int64(fx - ix<<16)
		for gy := 0; gy <= grid; gy++ {
			for c := 0; c < 3; c++ {
				av := ctrl[gy][ix][c]
				v := av + int32(int64(ctrl[gy][ix+1][c]-av)*rx>>16)
				sc.lerp[gy][3*x+c] = uint8((v + 0x8000) >> 16)
			}
		}
	}
	// Visible span of each row against the raster.
	dx0, sx0 := x0, 0
	if dx0 < 0 {
		sx0, dx0 = -dx0, 0
	}
	dx1 := x0 + w
	if dx1 > img.W {
		dx1 = img.W
	}
	sx1 := sx0 + (dx1 - dx0)
	if sx0 >= sx1 {
		return
	}
	yLo := 0
	if y0 < 0 {
		yLo = -y0
	}
	yHi := h
	if y0+yHi > img.H {
		yHi = img.H - y0
	}
	if yLo >= yHi {
		return
	}
	base := uint64(seed)
	parallelFor(resolveWorkers(0), yHi-yLo, func(lo, hi int) {
		for yi := lo; yi < hi; yi++ {
			y := yLo + yi
			fy := y * grid << 16 / h
			iy := fy >> 16
			if iy >= grid {
				iy = grid - 1
			}
			ry := int32(fy - iy<<16)
			out := img.Pix[3*((y0+y)*img.W+dx0) : 3*((y0+y)*img.W+dx1)]
			top := sc.lerp[iy][3*sx0:]
			bot := sc.lerp[iy+1][3*sx0:]
			top = top[:len(out)]
			bot = bot[:len(out)]
			for j := range out {
				t := int32(top[j])
				out[j] = uint8(t + (int32(bot[j])-t)*ry>>16)
			}
			if y%3 == 0 {
				// Grain pass over every 4th pixel; separate from the blend
				// loop so the common row stays branch-free.
				for x := (sx0 + 3) &^ 3; x < sx1; x += 4 {
					n := photoNoise(photoNoiseKey(base, x, y))
					j := 3 * (x - sx0)
					out[j] = uint8(int32(out[j]) + n)
					out[j+1] = uint8(int32(out[j+1]) + n)
					out[j+2] = uint8(int32(out[j+2]) + n)
				}
			}
		}
	})
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
