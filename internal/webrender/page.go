package webrender

import "sonic/internal/imagecodec"

// BlockKind enumerates the layout elements synthetic pages are built from.
type BlockKind int

// Block kinds, roughly the elements of a news/portal landing page.
const (
	BlockHeader BlockKind = iota
	BlockNavBar
	BlockHeading
	BlockParagraph
	BlockImage
	BlockLinkList
	BlockAd
	BlockFooter
	// BlockTable is a bordered data table (scores, market rates) — a
	// staple of the .pk corpus sites.
	BlockTable
	// BlockSearch is a search box; §3.1 lets uplink users "send queries
	// to search engines", and the click map marks the box as the trigger.
	BlockSearch
)

// String names the kind for diagnostics.
func (k BlockKind) String() string {
	switch k {
	case BlockHeader:
		return "header"
	case BlockNavBar:
		return "nav"
	case BlockHeading:
		return "heading"
	case BlockParagraph:
		return "paragraph"
	case BlockImage:
		return "image"
	case BlockLinkList:
		return "links"
	case BlockAd:
		return "ad"
	case BlockFooter:
		return "footer"
	case BlockTable:
		return "table"
	case BlockSearch:
		return "search"
	}
	return "unknown"
}

// Link is a hyperlink carried by a block.
type Link struct {
	Text string
	URL  string
}

// Block is one vertical layout element.
type Block struct {
	Kind  BlockKind
	Text  string   // heading/paragraph text, or ad caption
	Lines []string // paragraph lines (pre-wrapped by the generator)
	Links []Link   // nav items, link lists, or the block-level link
	// ImageSeed drives the pseudo-photo pattern for BlockImage.
	ImageSeed int64
	// Rows/Cols hold BlockTable cell text (Rows[i][j]).
	TableRows [][]string
	// HeightPx is the block's rendered height (set by the generator).
	HeightPx int
	// Tint is the block background.
	Tint imagecodec.RGB
}

// Page is a synthetic webpage: the unit SONIC renders, encodes, and
// broadcasts.
type Page struct {
	URL      string
	Title    string
	SiteName string
	// Weight is the synthetic "real webpage" transfer size in bytes
	// (HTML+JS+CSS+media), used for the §3.2 ~10x compression comparison;
	// the Web Almanac average the paper cites is ~2 MB.
	Weight int
	Blocks []Block
	// Palette.
	Theme Theme
}

// Theme is the per-site color scheme.
type Theme struct {
	Header imagecodec.RGB
	Accent imagecodec.RGB
	Link   imagecodec.RGB
	Text   imagecodec.RGB
	PageBG imagecodec.RGB
}
