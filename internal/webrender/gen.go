package webrender

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"sonic/internal/imagecodec"
)

// The generator produces a Page deterministically from (url, hour). The
// same URL at the same hour always renders identically — the property the
// SONIC server's cache and the three-day hourly corpus (§4) rely on —
// while different hours vary the content the way live news sites do.

// wordBank feeds the pseudo-text generator. Mixing common English with
// Pakistani place and topic names gives the text the visual texture of
// the paper's .pk corpus.
var wordBank = []string{
	"the", "latest", "news", "update", "report", "market", "cricket",
	"karachi", "lahore", "islamabad", "punjab", "sindh", "pakistan",
	"rupee", "budget", "election", "weather", "monsoon", "traffic",
	"education", "university", "exam", "result", "board", "technology",
	"mobile", "internet", "service", "government", "minister", "court",
	"order", "price", "gold", "petrol", "power", "supply", "water",
	"health", "hospital", "match", "series", "team", "score", "final",
	"review", "analysis", "opinion", "live", "video", "photo", "special",
}

// seedFor derives a stable 64-bit seed from a URL and an hour index.
func seedFor(url string, hour int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", url, hour)
	return int64(h.Sum64())
}

// words produces n pseudo-words.
func words(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(wordBank[rng.Intn(len(wordBank))])
	}
	return b.String()
}

// wrap splits text into lines of at most width characters.
func wrap(text string, width int) []string {
	var lines []string
	var cur strings.Builder
	for _, w := range strings.Fields(text) {
		if cur.Len() > 0 && cur.Len()+1+len(w) > width {
			lines = append(lines, cur.String())
			cur.Reset()
		}
		if cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		cur.WriteString(w)
	}
	if cur.Len() > 0 {
		lines = append(lines, cur.String())
	}
	return lines
}

// themeFor derives the site palette from the site name only (stable
// across hours, like a real site's CSS).
func themeFor(site string) Theme {
	rng := rand.New(rand.NewSource(seedFor(site, -1)))
	hues := []imagecodec.RGB{
		{R: 0x1A, G: 0x3C, B: 0x8C}, {R: 0x8C, G: 0x1A, B: 0x2B},
		{R: 0x0E, G: 0x6B, B: 0x38}, {R: 0x4A, G: 0x14, B: 0x8C},
		{R: 0x0B, G: 0x57, B: 0x66}, {R: 0xB3, G: 0x54, B: 0x0E},
	}
	h := hues[rng.Intn(len(hues))]
	return Theme{
		Header: h,
		Accent: imagecodec.RGB{R: h.R / 2, G: h.G / 2, B: h.B / 2},
		Link:   imagecodec.RGB{R: 0x0B, G: 0x3D, B: 0xC1},
		Text:   imagecodec.RGB{R: 0x20, G: 0x20, B: 0x20},
		PageBG: imagecodec.RGB{R: 0xFF, G: 0xFF, B: 0xFF},
	}
}

// GenOptions tunes the page generator.
type GenOptions struct {
	// MinBlocks/MaxBlocks bound the content length (and thus page height).
	MinBlocks, MaxBlocks int
	// InternalLinks is how many same-site hyperlinks to scatter.
	InternalLinks int
}

// DefaultGenOptions match the paper's corpus: landing pages tall enough
// that the 10k-pixel crop binds for most of them (Fig. 4(b) shows the
// PH:10k curve saving ~100 KB for 75% of pages).
func DefaultGenOptions() GenOptions {
	return GenOptions{MinBlocks: 25, MaxBlocks: 72, InternalLinks: 12}
}

// Generate builds the synthetic page for url as rendered at the given
// hour (hour indexes the paper's hourly re-render over three days; any
// integer works).
func Generate(url string, hour int, opts GenOptions) *Page {
	site := siteOf(url)
	rng := rand.New(rand.NewSource(seedFor(url, hour)))
	// A stable per-URL rng fixes the page's structural skeleton so hourly
	// changes alter content, not layout class.
	struc := rand.New(rand.NewSource(seedFor(url, -2)))

	p := &Page{
		URL:      url,
		SiteName: site,
		Title:    strings.ToUpper(site) + " - " + words(rng, 3),
		Theme:    themeFor(site),
		Weight:   1_200_000 + struc.Intn(1_800_000), // ~1.2-3.0 MB "real" page
	}

	// Fixed chrome.
	nav := Block{Kind: BlockNavBar}
	for i := 0; i < 5+struc.Intn(4); i++ {
		nav.Links = append(nav.Links, Link{
			Text: strings.ToUpper(wordBank[struc.Intn(len(wordBank))]),
			URL:  fmt.Sprintf("%s/section/%d", site, i),
		})
	}
	p.Blocks = append(p.Blocks,
		Block{Kind: BlockHeader, Text: strings.ToUpper(site)},
		nav,
	)

	nBlocks := opts.MinBlocks + struc.Intn(opts.MaxBlocks-opts.MinBlocks+1)
	linksLeft := opts.InternalLinks
	for i := 0; i < nBlocks; i++ {
		roll := rng.Float64()
		switch {
		case roll < 0.12:
			p.Blocks = append(p.Blocks, Block{
				Kind: BlockHeading,
				Text: titleCase(words(rng, 4+rng.Intn(4))),
			})
		case roll < 0.55:
			text := words(rng, 40+rng.Intn(90))
			p.Blocks = append(p.Blocks, Block{
				Kind:  BlockParagraph,
				Lines: wrap(text, 58),
			})
		case roll < 0.72:
			p.Blocks = append(p.Blocks, Block{
				Kind:      BlockImage,
				ImageSeed: rng.Int63(),
				Text:      words(rng, 5),
			})
		case roll < 0.78:
			rows := make([][]string, 3+rng.Intn(5))
			cols := 3 + rng.Intn(3)
			for r := range rows {
				row := make([]string, cols)
				for c := range row {
					if rng.Intn(2) == 0 {
						row[c] = wordBank[rng.Intn(len(wordBank))]
					} else {
						row[c] = fmt.Sprintf("%d.%02d", rng.Intn(900), rng.Intn(100))
					}
				}
				rows[r] = row
			}
			p.Blocks = append(p.Blocks, Block{Kind: BlockTable, TableRows: rows})
		case roll < 0.80:
			p.Blocks = append(p.Blocks, Block{
				Kind:  BlockSearch,
				Text:  "SEARCH " + strings.ToUpper(site),
				Links: []Link{{Text: "search", URL: site + "/search"}},
			})
		case roll < 0.88:
			b := Block{Kind: BlockLinkList}
			for j := 0; j < 3+rng.Intn(4); j++ {
				ltxt := titleCase(words(rng, 3+rng.Intn(4)))
				lurl := fmt.Sprintf("%s/story/%d-%d", site, hour, rng.Intn(10000))
				if linksLeft > 0 {
					linksLeft--
				}
				b.Links = append(b.Links, Link{Text: ltxt, URL: lurl})
			}
			p.Blocks = append(p.Blocks, b)
		default:
			p.Blocks = append(p.Blocks, Block{
				Kind: BlockAd,
				Text: strings.ToUpper(words(rng, 3)),
				Tint: imagecodec.RGB{R: 0xE8, G: 0xD9, B: 0x7A},
			})
		}
	}
	p.Blocks = append(p.Blocks, Block{
		Kind: BlockFooter,
		Text: site + " - contact - privacy - " + words(rng, 2),
	})
	return p
}

// titleCase uppercases the first letter of each word (ASCII only — the
// word bank is ASCII).
func titleCase(s string) string {
	b := []byte(s)
	up := true
	for i, c := range b {
		if up && c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
		up = c == ' '
	}
	return string(b)
}

// siteOf extracts the site name (host) from a URL-ish string.
func siteOf(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		s = "unknown.pk"
	}
	return s
}
