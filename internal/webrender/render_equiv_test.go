package webrender

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sonic/internal/clickmap"
	"sonic/internal/imagecodec"
)

// Equivalence tests pinning the scanline rasterizer (row-span FillRect,
// glyph-atlas DrawText, per-scanline pseudo-photo interpolation, pooled
// render buffers, and the crop-at-render RenderCropped path) byte-exact
// against verbatim copies of the pre-optimization per-pixel renderer.

// --- verbatim pre-optimization reference implementations ---

func refFillRect(r *imagecodec.Raster, x0, y0, w, h int, c imagecodec.RGB) {
	for y := y0; y < y0+h; y++ {
		if y < 0 || y >= r.H {
			continue
		}
		for x := x0; x < x0+w; x++ {
			r.Set(x, y, c)
		}
	}
}

func refDrawText(r *imagecodec.Raster, x, y int, s string, scale int, c imagecodec.RGB) int {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, ch := range s {
		g := glyphFor(ch)
		for row := 0; row < glyphH; row++ {
			bits := g[row]
			for col := 0; col < glyphW; col++ {
				if bits&(1<<uint(glyphW-1-col)) == 0 {
					continue
				}
				refFillRect(r, cx+col*scale, y+row*scale, scale, scale, c)
			}
		}
		cx += (glyphW + 1) * scale
	}
	return cx
}

// refDrawPseudoPhoto is the naive per-pixel form of the Q16 photo
// rasterizer (PR 8): horizontal lerp in 16.16 fixed point rounded to 8
// bits, vertical lerp between the 8-bit rows, grain derived per
// (seed, y, x) via photoNoise. Re-anchored from the float/serial-rng
// reference when the noise moved to per-row seed derivation for the
// data-parallel row loop and the staged lerp rows dropped to bytes.
func refDrawPseudoPhoto(img *imagecodec.Raster, x0, y0, w, h int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const grid = 4
	var ctrl [grid + 1][grid + 1][3]int32
	for gy := 0; gy <= grid; gy++ {
		for gx := 0; gx <= grid; gx++ {
			for c := 0; c < 3; c++ {
				ctrl[gy][gx][c] = int32(math.Round((40 + 180*rng.Float64()) * 65536))
			}
		}
	}
	if w <= 0 || h <= 0 {
		return
	}
	for y := 0; y < h; y++ {
		fy := y * grid << 16 / h
		iy := fy >> 16
		if iy >= grid {
			iy = grid - 1
		}
		ry := int64(fy - iy<<16)
		for x := 0; x < w; x++ {
			fx := x * grid << 16 / w
			ix := fx >> 16
			if ix >= grid {
				ix = grid - 1
			}
			rx := int64(fx - ix<<16)
			var px [3]uint8
			for c := 0; c < 3; c++ {
				ta := ctrl[iy][ix][c]
				top := int32(uint8((ta + int32(int64(ctrl[iy][ix+1][c]-ta)*rx>>16) + 0x8000) >> 16))
				ba := ctrl[iy+1][ix][c]
				bot := int32(uint8((ba + int32(int64(ctrl[iy+1][ix+1][c]-ba)*rx>>16) + 0x8000) >> 16))
				var n int32
				if y%3 == 0 && x%4 == 0 {
					n = photoNoise(photoNoiseKey(uint64(seed), x, y))
				}
				px[c] = uint8(top + (bot-top)*int32(ry)>>16 + n)
			}
			img.Set(x0+x, y0+y, imagecodec.RGB{R: px[0], G: px[1], B: px[2]})
		}
	}
}

func refRenderTable(img *imagecodec.Raster, p *Page, b *Block, y int) {
	if len(b.TableRows) == 0 {
		return
	}
	w := img.W - 2*margin
	rowH := TextHeight(bodyTxt) + 14
	cols := len(b.TableRows[0])
	line := imagecodec.RGB{R: 180, G: 180, B: 180}
	for r, row := range b.TableRows {
		ry := y + 2 + r*rowH
		if r == 0 {
			refFillRect(img, margin, ry, w, rowH, imagecodec.RGB{R: 0xEF, G: 0xEF, B: 0xEF})
		}
		refFillRect(img, margin, ry, w, 1, line)
		for c := 0; c < cols && c < len(row); c++ {
			cx := margin + c*w/cols
			refFillRect(img, cx, ry, 1, rowH, line)
			refDrawText(img, cx+8, ry+7, row[c], bodyTxt, p.Theme.Text)
		}
	}
	bottom := y + 2 + len(b.TableRows)*rowH
	refFillRect(img, margin, bottom, w, 1, line)
	refFillRect(img, margin+w-1, y+2, 1, bottom-y-2, line)
}

func refRenderBlock(img *imagecodec.Raster, clicks *clickmap.Map, p *Page, b *Block, y int) int {
	w := img.W
	switch b.Kind {
	case BlockHeader:
		refFillRect(img, 0, y, w, headerH, p.Theme.Header)
		refDrawText(img, margin, y+headerH/2-TextHeight(5)/2, b.Text, 5,
			imagecodec.RGB{R: 255, G: 255, B: 255})
	case BlockNavBar:
		refFillRect(img, 0, y, w, navH, p.Theme.Accent)
		x := margin
		for _, l := range b.Links {
			tw := TextWidth(l.Text, linkTxt)
			refDrawText(img, x, y+navH/2-TextHeight(linkTxt)/2, l.Text, linkTxt,
				imagecodec.RGB{R: 240, G: 240, B: 240})
			clicks.Add(x, y, tw, navH, l.URL)
			x += tw + 36
			if x > w-margin {
				break
			}
		}
	case BlockHeading:
		refDrawText(img, margin, y+blockGap, b.Text, headingTxt, p.Theme.Text)
	case BlockParagraph:
		ty := y
		for _, line := range b.Lines {
			refDrawText(img, margin, ty, line, bodyTxt, p.Theme.Text)
			ty += TextHeight(bodyTxt) + lineSpacing
		}
	case BlockImage:
		refDrawPseudoPhoto(img, margin, y, w-2*margin, 400, b.ImageSeed)
		refDrawText(img, margin, y+408, b.Text, bodyTxt,
			imagecodec.RGB{R: 100, G: 100, B: 100})
	case BlockLinkList:
		ty := y
		for _, l := range b.Links {
			refFillRect(img, margin, ty+4, 6, 6, p.Theme.Link)
			refDrawText(img, margin+16, ty, l.Text, linkTxt, p.Theme.Link)
			tw := TextWidth(l.Text, linkTxt)
			refFillRect(img, margin+16, ty+TextHeight(linkTxt)+1, tw, 1, p.Theme.Link)
			clicks.Add(margin, ty, tw+16, TextHeight(linkTxt)+8, l.URL)
			ty += TextHeight(linkTxt) + lineSpacing + 8
		}
	case BlockAd:
		refFillRect(img, margin, y, w-2*margin, 160, b.Tint)
		refFillRect(img, margin, y, w-2*margin, 4, imagecodec.RGB{R: 120, G: 100, B: 30})
		refDrawText(img, w/2-TextWidth(b.Text, 3)/2, y+70, b.Text, 3,
			imagecodec.RGB{R: 80, G: 60, B: 10})
	case BlockFooter:
		refFillRect(img, 0, y, w, 120, imagecodec.RGB{R: 40, G: 40, B: 40})
		refDrawText(img, margin, y+50, b.Text, 2, imagecodec.RGB{R: 200, G: 200, B: 200})
	case BlockTable:
		refRenderTable(img, p, b, y)
	case BlockSearch:
		boxW := w * 2 / 3
		grey := imagecodec.RGB{R: 150, G: 150, B: 150}
		refFillRect(img, margin, y+8, boxW, 48, imagecodec.RGB{R: 250, G: 250, B: 250})
		refFillRect(img, margin, y+8, boxW, 2, grey)
		refFillRect(img, margin, y+54, boxW, 2, grey)
		refFillRect(img, margin, y+8, 2, 48, grey)
		refFillRect(img, margin+boxW-2, y+8, 2, 48, grey)
		refDrawText(img, margin+12, y+24, b.Text, 2, grey)
		bx := margin + boxW + 16
		refFillRect(img, bx, y+8, 140, 48, p.Theme.Accent)
		refDrawText(img, bx+20, y+24, "GO", 3, imagecodec.RGB{R: 255, G: 255, B: 255})
		if len(b.Links) > 0 {
			clicks.Add(bx, y+8, 140, 48, b.Links[0].URL)
		}
	}
	return y + b.HeightPx
}

func refRender(p *Page) *Rendered {
	h := measure(p)
	img := imagecodec.NewRaster(imagecodec.PageWidth, h)
	img.Fill(p.Theme.PageBG)
	clicks := &clickmap.Map{PageURL: p.URL}
	rows := make([]BlockKind, h)

	y := 0
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		next := refRenderBlock(img, clicks, p, b, y)
		for ry := y; ry < next && ry < h; ry++ {
			rows[ry] = b.Kind
		}
		y = next
	}
	return &Rendered{Page: p, Image: img, Clicks: clicks, Rows: rows}
}

// --- helpers ---

func firstPixelDiff(a, b *imagecodec.Raster) string {
	if a.W != b.W || a.H != b.H {
		return fmt.Sprintf("geometry %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			x, y := (i/3)%a.W, i/3/a.W
			return fmt.Sprintf("pixel (%d,%d) channel %d: %d vs %d", x, y, i%3, a.Pix[i], b.Pix[i])
		}
	}
	return ""
}

func assertRenderedEqual(t *testing.T, label string, got, want *Rendered) {
	t.Helper()
	if d := firstPixelDiff(got.Image, want.Image); d != "" {
		t.Fatalf("%s: image differs: %s", label, d)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("%s: row classification differs", label)
	}
	if !reflect.DeepEqual(got.Clicks, want.Clicks) {
		t.Errorf("%s: click map differs: %d vs %d regions", label,
			len(got.Clicks.Regions), len(want.Clicks.Regions))
	}
}

// blockKindPage builds one page holding every block kind, with a seeded
// photo per entry in seeds.
func blockKindPage(seeds []int64) *Page {
	p := &Page{
		URL:      "equiv.pk/",
		SiteName: "equiv.pk",
		Theme:    themeFor("equiv.pk"),
	}
	p.Blocks = append(p.Blocks,
		Block{Kind: BlockHeader, Text: "EQUIV.PK"},
		Block{Kind: BlockNavBar, Links: []Link{
			{Text: "NEWS", URL: "equiv.pk/s/0"},
			{Text: "A VERY LONG NAV ITEM THAT OVERFLOWS THE RIGHT MARGIN AND CLIPS BADLY INDEED TRULY", URL: "equiv.pk/s/1"},
			{Text: "SPORT", URL: "equiv.pk/s/2"},
		}},
		Block{Kind: BlockHeading, Text: "Heading With Mixed case & punct.!?"},
		Block{Kind: BlockParagraph, Lines: []string{"first line of body text", "second line, with comma"}},
	)
	for _, s := range seeds {
		p.Blocks = append(p.Blocks, Block{Kind: BlockImage, ImageSeed: s, Text: "caption words"})
	}
	p.Blocks = append(p.Blocks,
		Block{Kind: BlockLinkList, Links: []Link{
			{Text: "Story One", URL: "equiv.pk/story/1"},
			{Text: "Story Two Longer Title", URL: "equiv.pk/story/2"},
		}},
		Block{Kind: BlockAd, Text: "BUY NOW", Tint: imagecodec.RGB{R: 0xE8, G: 0xD9, B: 0x7A}},
		Block{Kind: BlockTable, TableRows: [][]string{
			{"rate", "open", "close"},
			{"gold", "1.10", "2.20"},
			{"usd", "277.9", "278.1"},
		}},
		Block{Kind: BlockSearch, Text: "SEARCH EQUIV", Links: []Link{{Text: "search", URL: "equiv.pk/search"}}},
		Block{Kind: BlockFooter, Text: "equiv.pk - contact - privacy"},
	)
	measure(p)
	return p
}

// --- primitive equivalence ---

func TestFillRectMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rects := [][4]int{
		{0, 0, 40, 30}, {-5, -5, 20, 20}, {30, 25, 100, 100}, // clipped corners
		{10, 10, 0, 5}, {10, 10, 5, 0}, // degenerate
		{-10, 5, 60, 1}, {5, -10, 1, 60}, // thin, partially out
	}
	for i := 0; i < 20; i++ {
		rects = append(rects, [4]int{rng.Intn(60) - 10, rng.Intn(50) - 10, rng.Intn(70), rng.Intn(60)})
	}
	got := imagecodec.NewRaster(40, 30)
	want := imagecodec.NewRaster(40, 30)
	for i, r := range rects {
		c := imagecodec.RGB{R: uint8(i * 13), G: uint8(i * 29), B: uint8(i * 51)}
		got.FillRect(r[0], r[1], r[2], r[3], c)
		refFillRect(want, r[0], r[1], r[2], r[3], c)
	}
	if d := firstPixelDiff(got, want); d != "" {
		t.Fatalf("FillRect differs after rect sequence: %s", d)
	}
}

func TestDrawTextMatchesReference(t *testing.T) {
	texts := []string{
		"HELLO, WORLD!", "lowercase folds", "unknown € runes",
		"0123456789 -/:?!&()'", "",
	}
	for scale := 1; scale <= 5; scale++ {
		for ti, s := range texts {
			got := imagecodec.NewRaster(120, 50)
			want := imagecodec.NewRaster(120, 50)
			c := imagecodec.RGB{R: uint8(40 * ti), G: 20, B: uint8(255 - 40*ti)}
			// Offsets chosen so text clips the right and bottom edges too.
			gEnd := DrawText(got, 4, 40-4*scale, s, scale, c)
			wEnd := refDrawText(want, 4, 40-4*scale, s, scale, c)
			if gEnd != wEnd {
				t.Fatalf("scale=%d %q: advance %d vs %d", scale, s, gEnd, wEnd)
			}
			if d := firstPixelDiff(got, want); d != "" {
				t.Fatalf("scale=%d %q: %s", scale, s, d)
			}
		}
	}
}

func TestPseudoPhotoMatchesReference(t *testing.T) {
	cases := []struct {
		x0, y0, w, h int
		seed         int64
	}{
		{0, 0, 64, 48, 1},
		{24, 10, 200, 150, 42},
		{24, 80, 128, 100, 42},     // bottom-clipped (raster is 120 tall)
		{24, 200, 128, 100, 7},     // fully below the raster
		{-10, -10, 100, 100, 99},   // top/left clipped
		{200, 10, 128, 64, 5},      // right-clipped (raster is 256 wide)
		{0, 0, 1032, 400, 1234567}, // full-size corpus photo
	}
	for _, tc := range cases {
		got := imagecodec.NewRaster(256, 120)
		want := imagecodec.NewRaster(256, 120)
		drawPseudoPhoto(got, tc.x0, tc.y0, tc.w, tc.h, tc.seed)
		refDrawPseudoPhoto(want, tc.x0, tc.y0, tc.w, tc.h, tc.seed)
		if d := firstPixelDiff(got, want); d != "" {
			t.Fatalf("photo %+v: %s", tc, d)
		}
	}
}

// TestPseudoPhotoWorkerIdentity pins the data-parallel photo row loop:
// every worker count must produce the raster the serial pass produces,
// byte for byte, including clipped photos whose visible span is partial.
func TestPseudoPhotoWorkerIdentity(t *testing.T) {
	defer SetWorkers(0)
	cases := []struct {
		x0, y0, w, h int
		seed         int64
	}{
		{0, 0, 1032, 400, 1234567},
		{24, 10, 200, 150, 42},
		{-10, -10, 100, 100, 99},
		{200, 10, 128, 64, 5},
	}
	for _, tc := range cases {
		SetWorkers(1)
		want := imagecodec.NewRaster(256, 120)
		drawPseudoPhoto(want, tc.x0, tc.y0, tc.w, tc.h, tc.seed)
		for _, workers := range []int{2, 3, 5, 8, 16} {
			SetWorkers(workers)
			got := imagecodec.NewRaster(256, 120)
			drawPseudoPhoto(got, tc.x0, tc.y0, tc.w, tc.h, tc.seed)
			if d := firstPixelDiff(got, want); d != "" {
				t.Fatalf("photo %+v workers=%d: %s", tc, workers, d)
			}
		}
	}
}

// --- whole-page equivalence ---

func TestRenderMatchesReferenceAllBlockKinds(t *testing.T) {
	for _, seeds := range [][]int64{
		{3}, {17, 9000017, -55}, // single and multiple photo seeds
	} {
		p := blockKindPage(seeds)
		got := Render(p)
		want := refRender(p)
		assertRenderedEqual(t, fmt.Sprintf("seeds=%v", seeds), got, want)
		got.Release()
	}
}

func TestRenderMatchesReferenceAcrossCorpus(t *testing.T) {
	// A spread of sites, internal pages, and hours; every block kind
	// appears many times across the sample. Run twice per page so the
	// second render exercises pooled (warm) buffers.
	urls := []string{
		"khabar.pk/", "dunya-news.pk/", "mausam.pk/story/0042",
		"awaaz.pk/", "sasta.pk/story/7",
	}
	for _, url := range urls {
		for _, hour := range []int{0, 13} {
			p := Generate(url, hour, DefaultGenOptions())
			want := refRender(p)
			for pass := 0; pass < 2; pass++ {
				got := Render(p)
				assertRenderedEqual(t, fmt.Sprintf("%s@%d pass %d", url, hour, pass), got, want)
				got.Release()
			}
		}
	}
}

func TestRenderCroppedMatchesCrop(t *testing.T) {
	for _, url := range []string{"khabar.pk/", "cricfeed.pk/", "taleem.pk/story/11"} {
		p := Generate(url, 3, DefaultGenOptions())
		full := refRender(p)
		for _, maxH := range []int{0, 700, imagecodec.MaxPageHeight, full.Image.H + 50} {
			got := RenderCropped(p, maxH)
			wantImg := full.Image
			if maxH > 0 {
				wantImg = full.Image.Crop(maxH)
			}
			if d := firstPixelDiff(got.Image, wantImg); d != "" {
				t.Fatalf("%s maxH=%d: %s", url, maxH, d)
			}
			// The click map must match the FULL render's: the crop trims
			// pixels, not links.
			if !reflect.DeepEqual(got.Clicks, full.Clicks) {
				t.Errorf("%s maxH=%d: click map differs from full render", url, maxH)
			}
			if len(got.Rows) != wantImg.H {
				t.Fatalf("%s maxH=%d: rows len %d, want %d", url, maxH, len(got.Rows), wantImg.H)
			}
			for y := range got.Rows {
				if got.Rows[y] != full.Rows[y] {
					t.Fatalf("%s maxH=%d: row %d kind %v vs %v", url, maxH, y, got.Rows[y], full.Rows[y])
				}
			}
			got.Release()
		}
	}
}

// --- allocation guards ---

func TestRenderWarmAllocs(t *testing.T) {
	p := Generate("khabar.pk/", 1, DefaultGenOptions())
	Render(p).Release() // warm pools and the glyph atlas
	// Steady state: the Rendered/Raster headers and the click map's
	// regions — not the ~50 MB of raster, row, and photo-scratch slices
	// the old renderer allocated per page. Under -race with the whole
	// suite running, GC can shed sync.Pool items mid-measurement and
	// charge the refill here; that is transient, so take the best of a
	// few attempts rather than widening the budget.
	best := math.Inf(1)
	for attempt := 0; attempt < 3; attempt++ {
		allocs := testing.AllocsPerRun(5, func() {
			Render(p).Release()
		})
		if allocs < best {
			best = allocs
		}
		if best <= 40 {
			return
		}
	}
	t.Errorf("warm Render allocates %v objects per call, want <= 40", best)
}

func BenchmarkRenderLandingPageWarm(b *testing.B) {
	p := Generate("khabar.pk/", 1, DefaultGenOptions())
	Render(p).Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(p).Release()
	}
}

func BenchmarkRenderCropped10k(b *testing.B) {
	p := Generate("khabar.pk/", 1, DefaultGenOptions())
	RenderCropped(p, imagecodec.MaxPageHeight).Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RenderCropped(p, imagecodec.MaxPageHeight).Release()
	}
}
