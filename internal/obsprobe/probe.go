// Package obsprobe exercises every instrumented layer of the SONIC
// stack — core pipeline, frame/FEC codec, FM link, server, client, and
// broadcast carousel — with one small end-to-end workload so that a
// telemetry snapshot taken afterwards is populated across all metric
// families. The commands use it to light up the ops endpoint
// (sonic-sim -telemetry) and to emit a per-stage snapshot next to
// benchmark CSVs (sonic-bench).
package obsprobe

import (
	"fmt"
	"math/rand"
	"time"

	"sonic/internal/broadcast"
	"sonic/internal/client"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/fm"
	"sonic/internal/server"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

// sampleRate matches core.DefaultConfig's modem rate.
const sampleRate = 48000

// Run drives the probe workload against reg. Every layer is touched at
// least once: a page render (cache miss then hit), queue churn on a
// transmitter, a full encode → FM channel → decode round trip of a
// synthetic bundle, a client broadcast ingest, a carousel schedule, and
// a complete SMS request → enqueue → on-air → decode-side delivery loop
// so the request lifecycle histograms (request_to_on_air_seconds,
// request_to_delivered_seconds, per-stage waits) are all populated.
func Run(reg *telemetry.Registry) error {
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return fmt.Errorf("obsprobe: pipeline: %w", err)
	}
	pipe.Instrument(reg)

	// Lifecycle tracing: reuse the process's tracker when one is already
	// installed, otherwise install one so the probe populates the
	// lifecycle families too.
	if reg != nil && reg.Lifecycle() == nil {
		telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	}

	// Server: render the same page twice (miss, then hit), queue churn.
	srv := server.New(server.DefaultConfig(), pipe)
	srv.Instrument(reg)
	srv.AddTransmitter(server.Transmitter{
		ID: "tx-probe", FreqMHz: 93.7, Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})
	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL
	bundle, err := srv.RenderPage(url, now)
	if err != nil {
		return fmt.Errorf("obsprobe: render: %w", err)
	}
	if _, err := srv.RenderPage(url, now); err != nil {
		return fmt.Errorf("obsprobe: render (cached): %w", err)
	}
	if _, err := srv.EnqueuePage(url, 24.87, 67.01, now); err != nil {
		return fmt.Errorf("obsprobe: enqueue: %w", err)
	}
	if _, _, _, ok := srv.DequeuePage("tx-probe"); !ok {
		return fmt.Errorf("obsprobe: dequeue returned empty queue")
	}

	// Core + frame/FEC + FM: a small synthetic bundle over the radio hop
	// at healthy RSSI (the §4 clean band), decoded back.
	rng := rand.New(rand.NewSource(7))
	img := make([]byte, 2000)
	rng.Read(img)
	audio, err := pipe.EncodePageAudio(1, core.Bundle{Image: img})
	if err != nil {
		return fmt.Errorf("obsprobe: encode: %w", err)
	}
	link := &fm.FMLink{
		Model: fm.DefaultRSSIModel(), RSSIOverride: -70,
		Rng: rng, Telemetry: reg,
	}
	rx := link.Transmit(audio, sampleRate)
	res, err := pipe.DecodePageAudio(rx)
	if err != nil {
		return fmt.Errorf("obsprobe: decode: %w", err)
	}
	if !res.Complete {
		return fmt.Errorf("obsprobe: probe page incomplete (%d frames lost)", res.FramesLost)
	}

	// Client: ingest the rendered bundle as a broadcast and open it. The
	// ingest confirms delivery of the enqueue/dequeue churn above, closing
	// that trace end to end.
	cl := client.New(client.Config{
		Number: "+920000000001", SonicNumber: "+92111",
		ScreenWidth: 720, Lat: 24.87, Lon: 67.01,
		Capability: client.UplinkSMS,
	})
	cl.Instrument(reg)
	cl.HandleBroadcast(url, bundle, now, srv.PageTTL(), 1.0)
	if _, err := cl.Open(url, now); err != nil {
		return fmt.Errorf("obsprobe: client open: %w", err)
	}

	// Lifecycle loop: a real SMS request travels the whole stack —
	// uplink delivery, admission, render, enqueue, transmitter dequeue
	// (on air), and a broadcast ingest that confirms delivery.
	smsc := sms.NewSMSC(time.Second, 2*time.Second, 11)
	smsc.Register("+92111", srv.HandleSMS(smsc))
	cl.AttachSMSC(smsc)
	reqURL := corpus.Pages()[1].URL
	if err := cl.Request(reqURL, now); err != nil {
		return fmt.Errorf("obsprobe: sms request: %w", err)
	}
	smsc.Advance(now.Add(3 * time.Second)) // deliver request; server queues + acks
	gotURL, _, reqBundle, ok := srv.DequeuePage("tx-probe")
	if !ok || gotURL != reqURL {
		return fmt.Errorf("obsprobe: sms-requested page not queued (got %q ok=%v)", gotURL, ok)
	}
	cl.HandleBroadcast(gotURL, reqBundle, now.Add(10*time.Second), srv.PageTTL(), 1.0)

	// Broadcast: a carousel over the corpus, instrumented at the
	// pipeline's net goodput, emitting one schedule round.
	car, err := broadcast.CorpusCarousel(corpus.Pages(), probeSize, broadcast.PolicySqrt)
	if err != nil {
		return fmt.Errorf("obsprobe: carousel: %w", err)
	}
	car.Instrument(reg, pipe.NetGoodputBps())
	car.Schedule(64)
	return nil
}

// probeSize is a deterministic page-size model (same shape sonic-sim
// uses): 90–155 KB keyed off the URL.
func probeSize(ref corpus.PageRef, hour int) int {
	h := 0
	for _, c := range ref.URL {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return 90*1024 + h%(65*1024)
}
