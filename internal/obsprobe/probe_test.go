package obsprobe

import (
	"testing"

	"sonic/internal/telemetry"
)

// TestRunPopulatesAllFamilies is the acceptance check behind the ops
// endpoint: after one probe run the snapshot must hold non-zero metrics
// spanning core, fec, fm, server, client, and broadcast.
func TestRunPopulatesAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline round trip")
	}
	reg := telemetry.New()
	if err := Run(reg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	wantCounters := []string{
		"core_pages_encoded_total",
		"core_pages_decoded_total",
		"core_frames_tx_total",
		"core_frames_rx_total",
		"fec_frames_encoded_total",
		"fec_frames_decoded_total",
		"fm_transmits_total",
		"server_render_cache_hits_total",
		"server_render_cache_misses_total",
		"server_pages_enqueued_total",
		"server_pages_dequeued_total",
		"client_pages_received_total",
		"client_pages_opened_total",
		"broadcast_scheduled_total",
	}
	for _, name := range wantCounters {
		if v, ok := snap.Counters[name]; !ok || v == 0 {
			t.Errorf("counter %s: got %d, want > 0", name, v)
		}
	}

	wantGauges := []string{"fm_cnr_db", "fm_rssi_dbm", "core_modem_snr_db"}
	for _, name := range wantGauges {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing", name)
		}
	}

	wantHists := []string{
		"fec_viterbi_path_metric",
		"broadcast_expected_wait_seconds",
	}
	for _, name := range wantHists {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("histogram %s empty", name)
		}
	}

	wantSpans := []string{
		"core.encode_page",
		"core.encode_page/modulate",
		"core.decode_page",
		"core.decode_page/demodulate",
		"core.decode_page/fec_decode",
		"fm.transmit",
		"server.render_page",
	}
	for _, name := range wantSpans {
		if s, ok := snap.Spans[name]; !ok || s.Count == 0 {
			t.Errorf("span %s empty", name)
		}
	}
}

// TestRunPopulatesLifecycle pins the acceptance contract the ops smoke
// relies on: one probe run yields non-zero request→on-air latency
// quantiles, a delivery confirmation, and reconstructable traces in the
// event ring.
func TestRunPopulatesLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("DSP-heavy probe")
	}
	reg := telemetry.New()
	if err := Run(reg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	h, ok := snap.Histograms["request_to_on_air_seconds"]
	if !ok || h.Count == 0 {
		t.Fatalf("request_to_on_air_seconds not populated: %+v", h)
	}
	if h.P50 <= 0 || h.P99 <= 0 {
		t.Errorf("request->on-air p50=%g p99=%g, want > 0", h.P50, h.P99)
	}
	if snap.Counters["lifecycle_delivered_total"] == 0 {
		t.Error("no decode-side delivery confirmations recorded")
	}
	if snap.Counters["lifecycle_requests_total"] < 2 {
		t.Errorf("lifecycle requests = %d, want >= 2 (queue churn + SMS loop)",
			snap.Counters["lifecycle_requests_total"])
	}

	ring := reg.Lifecycle().Ring()
	events := ring.Events("")
	if len(events) == 0 {
		t.Fatal("event ring empty after probe")
	}
	// Every event belongs to a trace that /trace/<id> can reconstruct.
	byTrace := map[string]int{}
	for _, e := range events {
		if e.Trace == "" {
			t.Fatalf("event without trace ID: %+v", e)
		}
		byTrace[e.Trace]++
	}
	for id, n := range byTrace {
		if got := ring.Events(id); len(got) != n {
			t.Errorf("trace %s: filter returned %d events, want %d", id, len(got), n)
		}
	}
}
