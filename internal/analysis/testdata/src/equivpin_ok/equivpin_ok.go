// Package equivpin_ok shows the compliant shapes: direct pins,
// transitive pins through a pinned caller, pins from a Matches-named
// test outside the equiv file, and a reasoned ignore.
package equivpin_ok

// Encode is pinned directly by the equivalence test.
func Encode() int { return Transform() + 1 }

// Transform is pinned transitively: the equivalence run exercises it
// through Encode.
func Transform() int { return 1 }

// Decode is pinned by a Matches-named parity test in the plain test
// file.
func Decode() int { return 2 }

// Knob is deliberately unpinned, with an audited reason.
func Knob() int { return 3 } //sonic:ignore equivpin tuning knob, not a kernel
