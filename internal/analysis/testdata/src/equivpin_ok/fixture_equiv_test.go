package equivpin_ok

import "testing"

func TestEncodeEquivalence(t *testing.T) {
	if Encode() != 2 {
		t.Fatal("drift")
	}
}
