package equivpin_ok

import "testing"

func TestDecodeMatchesReference(t *testing.T) {
	if Decode() != 2 {
		t.Fatal("drift")
	}
}

func TestUnrelated(t *testing.T) {
	// References from non-pin tests do not pin: this mention of Knob
	// does not satisfy equivpin.
	_ = Knob()
}
