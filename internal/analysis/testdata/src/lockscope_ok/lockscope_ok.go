// Package lockscope_ok holds compliant critical sections: metadata-only
// work under the lock, kernel work outside it, early-unlock branches.
// lockscope must stay silent here.
package lockscope_ok

import (
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	count int
}

func metadataOnly(s *server) {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func workAfterUnlock(s *server) {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func earlyUnlockBranch(s *server, skip bool) {
	s.mu.Lock()
	if skip {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	s.count++
	s.mu.Unlock()
}

// goroutineUnderLock launches work from the critical section; the body
// runs off the lock and is checked as its own function.
func goroutineUnderLock(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	s.count++
}

// marshalOutsideLock does the heavy serialization before entering the
// critical section — compliant.
func marshalOutsideLock(s *server) {
	b := coreMarshal()
	s.mu.Lock()
	s.count += len(b)
	s.mu.Unlock()
}

func coreMarshal() []byte { return nil }
