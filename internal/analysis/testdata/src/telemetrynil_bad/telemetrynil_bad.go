// Package telemetry (fixture telemetrynil_bad): Counter is a handle
// type (Add guards nil), but Inc dereferences the receiver without a
// guard and Snapshot dereferences before its guard.
package telemetry

type Counter struct{ n int64 }

func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

func (c *Counter) Inc() { // want: not nil-receiver-safe
	c.n++
}

func (c *Counter) Snapshot() int64 { // want: deref before the guard
	v := c.n
	if c == nil {
		return 0
	}
	return v
}
