package equivpin_bad

import "testing"

func TestPinnedMatchesReference(t *testing.T) {
	if Pinned() != 1 {
		t.Fatal("drift")
	}
}
