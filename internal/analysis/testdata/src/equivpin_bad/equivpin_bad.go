// Package equivpin_bad has an equivalence test that pins one entry
// point but leaves another exported function unreachable from any pin.
package equivpin_bad

// Pinned is referenced by the equivalence test.
func Pinned() int { return pinnedHelper() }

func pinnedHelper() int { return 1 }

// Orphan is exported but no equivalence or parity test reaches it.
func Orphan() int { return 2 } // want: not reachable from any equivalence/parity test
