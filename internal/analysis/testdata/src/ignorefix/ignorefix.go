// Package ignorefix exercises the sonic:ignore directive machinery: a
// reasoned trailing directive, a reasoned lead-in directive on the line
// above, and a reasonless directive that both fails the audit and does
// not suppress.
package ignorefix

import "math/rand"

func trailing() float64 {
	return rand.Float64() //sonic:ignore globalrand fixture demonstrates audited suppression
}

func leadIn() float64 {
	//sonic:ignore globalrand fixture demonstrates the line-above form
	return rand.Float64()
}

func reasonless() float64 {
	return rand.Float64() //sonic:ignore globalrand
}
