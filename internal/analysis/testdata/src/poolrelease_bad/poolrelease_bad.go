// Package poolrelease_bad seeds poolrelease violations: leaks on error
// paths, use after release, and double release.
package poolrelease_bad

import (
	"errors"
	"sync"
)

var errOops = errors.New("oops")

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(p *[]byte) { bufPool.Put(p) }

func leakOnError(fail bool) error {
	p := getBuf()
	if fail {
		return errOops // want: not released on this return path
	}
	putBuf(p)
	return nil
}

func leakDirectGet(fail bool) error {
	p := bufPool.Get().(*[]byte)
	if fail {
		return errOops // want: not released on this return path
	}
	bufPool.Put(p)
	return nil
}

func useAfterRelease() int {
	p := getBuf()
	putBuf(p)
	return len(*p) // want: used after release
}

func doubleRelease() {
	p := getBuf()
	putBuf(p)
	putBuf(p) // want: released twice on this path
}
