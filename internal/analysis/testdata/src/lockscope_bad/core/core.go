// Package core stands in for the real bundle codec in lockscope
// fixtures (heavy functions are matched by package basename + name).
package core

// MarshalBundle is a stand-in heavy serialization entry point.
func MarshalBundle() []byte { return nil }

// Airtime is cheap and allowed under a lock.
func Airtime() float64 { return 0 }
