// Package modem stands in for the real OFDM modem in lockscope
// fixtures (heavy functions are matched by package basename + name,
// methods included).
package modem

// OFDM is a stand-in modulator.
type OFDM struct{}

// Modulate is the stand-in heavy modulation entry point.
func (m *OFDM) Modulate(payload []byte) []float64 { return nil }

// Airtime is cheap and allowed under a lock.
func (m *OFDM) Airtime(n int) float64 { return 0 }
