// Package fm stands in for the real FM broadcast chain in lockscope
// fixtures.
package fm

// Broadcast is the stand-in heavy broadcast entry point.
func Broadcast(audio []float64) []float64 { return nil }

// RSSI is cheap and allowed under a lock.
func RSSI() float64 { return 0 }
