// Package lockscope_bad seeds lockscope violations: kernel calls and
// blocking I/O inside mutex critical sections, directly and through a
// package-local helper.
package lockscope_bad

import (
	"os"
	"sync"
	"time"

	"sonic/internal/analysis/testdata/src/lockscope_bad/core"
	"sonic/internal/analysis/testdata/src/lockscope_bad/webrender"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func (s *server) renderUnderLock() {
	s.mu.Lock()
	webrender.Render() // want: kernel call while s.mu held
	s.mu.Unlock()
}

func (s *server) sleepUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want: time.Sleep while s.mu held
}

func (s *server) fileIOUnderRLock() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, err := os.ReadFile("x") // want: os.ReadFile while s.rw held
	return err
}

func (s *server) kernelViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper() // want: kernel call via helper while s.mu held
}

func helper() { webrender.Render() }

// marshalUnderShardLock serializes a bundle inside the queue shard's
// critical section — the heavy-call rule, not just kernel packages.
func (s *server) marshalUnderShardLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = core.MarshalBundle() // want: heavy call while s.mu held
}
