// Package lockscope_bad seeds lockscope violations: kernel calls and
// blocking I/O inside mutex critical sections, directly and through a
// package-local helper.
package lockscope_bad

import (
	"os"
	"sync"
	"time"

	"sonic/internal/analysis/testdata/src/lockscope_bad/core"
	"sonic/internal/analysis/testdata/src/lockscope_bad/fm"
	"sonic/internal/analysis/testdata/src/lockscope_bad/modem"
	"sonic/internal/analysis/testdata/src/lockscope_bad/webrender"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func (s *server) renderUnderLock() {
	s.mu.Lock()
	webrender.Render() // want: kernel call while s.mu held
	s.mu.Unlock()
}

func (s *server) sleepUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want: time.Sleep while s.mu held
}

func (s *server) fileIOUnderRLock() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, err := os.ReadFile("x") // want: os.ReadFile while s.rw held
	return err
}

func (s *server) kernelViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper() // want: kernel call via helper while s.mu held
}

func helper() { webrender.Render() }

// marshalUnderShardLock serializes a bundle inside the queue shard's
// critical section — the heavy-call rule, not just kernel packages.
func (s *server) marshalUnderShardLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = core.MarshalBundle() // want: heavy call while s.mu held
}

// modulateUnderTowerLock runs OFDM modulation — the fleet drain's
// dominant cost — inside a tower mutex: the heavy-call rule must name
// modem.Modulate specifically, not just the kernel package.
func (s *server) modulateUnderTowerLock(m *modem.OFDM, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = m.Modulate(payload) // want: heavy call while s.mu held
}

// broadcastUnderTowerLock holds a mutex across the full FM broadcast
// chain.
func (s *server) broadcastUnderTowerLock(audio []float64) {
	s.mu.Lock()
	_ = fm.Broadcast(audio) // want: heavy call while s.mu held
	s.mu.Unlock()
}

// airtimeUnderLock shows rule precedence: these cheap calls still
// trip the blanket kernel-package rule (fm/modem basenames), but they
// report "(kernel package)" where Modulate/Broadcast above name the
// specific heavy call.
func (s *server) airtimeUnderLock(m *modem.OFDM) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.Airtime(1) + fm.RSSI() // want: kernel calls while s.mu held
}
