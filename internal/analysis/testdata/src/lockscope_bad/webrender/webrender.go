// Package webrender stands in for the real render kernel in lockscope
// fixtures (kernel packages are matched by basename).
package webrender

// Render is a stand-in kernel entry point.
func Render() {}
