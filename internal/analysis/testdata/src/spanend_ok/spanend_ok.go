// Package spanend_ok exercises every span pattern the repo relies on;
// spanend must stay silent here.
package spanend_ok

type tel struct{}

type span struct{}

func (t *tel) StartSpan(string) *span { return nil }

func (s *span) StartChild(string) *span { return nil }

func (s *span) End() {}

type holder struct{ sp *span }

func deferred(t *tel, fail bool) int {
	sp := t.StartSpan("op")
	defer sp.End()
	if fail {
		return 0
	}
	return 1
}

func endOnEveryPath(t *tel, fail bool) int {
	sp := t.StartSpan("op")
	if fail {
		sp.End()
		return 0
	}
	sp.End()
	return 1
}

// reuse mirrors the broadcast chain: one handle variable per stage,
// each stage ends the previous span before starting the next.
func reuse(t *tel, extra bool) {
	sp := t.StartSpan("stage1")
	sp.End()
	sp = t.StartSpan("stage2")
	sp.End()
	if extra {
		sp = t.StartSpan("stage3")
		sp.End()
	}
}

// transfer returns the live span: ownership moves to the caller.
func transfer(t *tel) *span {
	sp := t.StartSpan("op")
	return sp
}

// escape stores the span; lifetime is no longer local.
func escape(t *tel, h *holder) {
	sp := t.StartSpan("op")
	h.sp = sp
}

// deferredClosure ends the span inside a deferred literal.
func deferredClosure(t *tel) {
	sp := t.StartSpan("op")
	defer func() {
		sp.End()
	}()
	sp.StartChild("child").End()
}
