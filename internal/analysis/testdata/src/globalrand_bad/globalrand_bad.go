// Package globalrand_bad draws from the math/rand global source, which
// makes parity and corpus runs irreproducible.
package globalrand_bad

import "math/rand"

func jitter() float64 {
	return rand.Float64() // want: global source
}

func order(n int) []int {
	return rand.Perm(n) // want: global source
}
