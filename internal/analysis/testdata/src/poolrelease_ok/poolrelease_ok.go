// Package poolrelease_ok exercises the repo's pooled-buffer idioms;
// poolrelease must stay silent here.
package poolrelease_ok

import (
	"errors"
	"sync"
)

var errOops = errors.New("oops")

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(p *[]byte) { bufPool.Put(p) }

func deferred(fail bool) error {
	p := getBuf()
	defer putBuf(p)
	if fail {
		return errOops
	}
	return nil
}

func releaseOnEveryPath(fail bool) error {
	p := getBuf()
	if fail {
		putBuf(p)
		return errOops
	}
	putBuf(p)
	return nil
}

// getOrAlloc is the comma-ok fallback pattern: a failed pool fetch is
// overwritten with a fresh allocation, which must not be flagged as a
// lost value.
func getOrAlloc() int {
	bufp := getBuf()
	if len(*bufp) == 0 {
		b := make([]byte, 64)
		bufp = &b
	}
	n := len(*bufp)
	putBuf(bufp)
	return n
}

// transfer hands the pooled value to the caller.
func transfer() *[]byte {
	p := getBuf()
	return p
}

// escapeClosure captures the value in a closure whose execution time is
// unknown; tracking stops without a finding.
func escapeClosure() func() {
	p := getBuf()
	return func() { putBuf(p) }
}

// reuseAfterNewAcquire releases, then reuses the variable for a second
// buffer — the server render-path shape.
func reuseAfterNewAcquire() {
	p := getBuf()
	putBuf(p)
	p = getBuf()
	putBuf(p)
}
