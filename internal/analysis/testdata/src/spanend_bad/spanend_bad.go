// Package spanend_bad seeds spanend violations: spans leaked on early
// returns, at scope end, by live reassignment, and ended twice.
package spanend_bad

type tel struct{}

type span struct{}

func (t *tel) StartSpan(string) *span { return nil }

func (s *span) StartChild(string) *span { return nil }

func (s *span) End() {}

func leakOnEarlyReturn(t *tel, fail bool) int {
	sp := t.StartSpan("op")
	if fail {
		return 0 // want: not End()-ed on this return path
	}
	sp.End()
	return 1
}

func leakAtScopeEnd(t *tel) {
	sp := t.StartSpan("op")
	sp.StartChild("child").End()
	// want: not End()-ed before scope ends
}

func reassignWhileLive(t *tel) {
	sp := t.StartSpan("a")
	sp = t.StartSpan("b") // want: reassigned before End
	sp.End()
}

func endTwice(t *tel) {
	sp := t.StartSpan("op")
	sp.End()
	sp.End() // want: released twice on this path
}
