// Package globalrand_ok draws only from explicit seeded generators;
// globalrand must stay silent here.
package globalrand_ok

import "math/rand"

func jitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func order(r *rand.Rand, n int) []int {
	return r.Perm(n)
}
