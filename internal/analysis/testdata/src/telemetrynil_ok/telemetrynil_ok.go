// Package telemetry (fixture telemetrynil_ok): every exported handle
// method is nil-safe — by direct guard, by delegating to a guarded
// method, via a nil-guarded helper parameter, or by guarding after
// statements that never touch the receiver.
package telemetry

type Counter struct {
	n     int64
	stamp int64
}

func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc delegates every receiver use to the guarded Add.
func (c *Counter) Inc() { c.Add(1) }

// Stamp passes the receiver to a helper that guards its parameter.
func (c *Counter) Stamp() int64 { return clock(c) }

func clock(c *Counter) int64 {
	if c == nil {
		return 0
	}
	return c.stamp
}

// Snapshot guards at its second statement; the first never touches the
// receiver (the Registry.Snapshot shape).
func (c *Counter) Snapshot() int64 {
	total := int64(0)
	if c == nil {
		return total
	}
	return total + c.n
}

// Compare only reads the receiver in nil comparisons.
func (c *Counter) Compare(other *Counter) bool {
	return c == nil || other == nil
}
