package analysis

import (
	"go/types"
)

// GlobalRand keeps randomness explicit: non-test code must draw from a
// seeded *rand.Rand (rand.New(rand.NewSource(seed))), never from
// math/rand's package-level source. The equivalence and parity suites
// replay pipelines byte-for-byte; a hidden global source makes corpus
// generation and pseudo-photo rendering irreproducible across runs.
// Constructors (New, NewSource, ...) are allowed — they are how the
// explicit source is built — and methods on *rand.Rand are the goal
// state, so only package-level function and variable uses are flagged.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no math/rand global source in non-test code; use a seeded *rand.Rand",
	Run:  runGlobalRand,
}

// randConstructors build explicit sources and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(pass *Pass) {
	for id, obj := range pass.Pkg.Info.Uses {
		pkg := obj.Pkg()
		if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			// Methods (r.Intn on an explicit *rand.Rand) are fine; the
			// global source is reached through package-level functions.
			if o.Type().(*types.Signature).Recv() != nil || randConstructors[o.Name()] {
				continue
			}
			pass.Report(id.Pos(), "rand.%s draws from the math/rand global source; use a seeded *rand.Rand so parity and corpus runs stay deterministic", o.Name())
		case *types.Var:
			if o.IsField() {
				continue
			}
			pass.Report(id.Pos(), "use of math/rand package variable %s; thread an explicit seeded *rand.Rand instead", o.Name())
		}
	}
}
