package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expect.txt golden files from current analyzer output")

const fixturePrefix = "internal/analysis/testdata/src/"

// renderResult flattens a Result into the golden format: one String()
// line per active finding, one SUPPRESSED line per suppressed finding,
// with the fixture-root prefix trimmed so goldens stay readable.
func renderResult(res *Result) string {
	var b strings.Builder
	for _, f := range res.Findings {
		b.WriteString(strings.TrimPrefix(f.String(), fixturePrefix))
		b.WriteByte('\n')
	}
	for _, f := range res.Suppressed {
		fmt.Fprintf(&b, "SUPPRESSED: %s:%d: [%s] %s (%s)\n",
			strings.TrimPrefix(f.File, fixturePrefix), f.Line, f.Analyzer, f.Message, f.IgnoreReason)
	}
	return b.String()
}

// TestAnalyzerGolden runs each analyzer over its positive (bad) and
// negative (ok) fixture package and compares against the fixture's
// expect.txt. Run with -update to regenerate the goldens.
func TestAnalyzerGolden(t *testing.T) {
	cases := []struct {
		analyzer string
		fixture  string
	}{
		{"spanend", "spanend_bad"},
		{"spanend", "spanend_ok"},
		{"poolrelease", "poolrelease_bad"},
		{"poolrelease", "poolrelease_ok"},
		{"lockscope", "lockscope_bad"},
		{"lockscope", "lockscope_ok"},
		{"equivpin", "equivpin_bad"},
		{"equivpin", "equivpin_ok"},
		{"telemetrynil", "telemetrynil_bad"},
		{"telemetrynil", "telemetrynil_ok"},
		{"globalrand", "globalrand_bad"},
		{"globalrand", "globalrand_ok"},
		{"globalrand", "ignorefix"},
	}

	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			as, err := ByName([]string{tc.analyzer})
			if err != nil {
				t.Fatalf("ByName(%q): %v", tc.analyzer, err)
			}
			res, err := Run(l, as, []string{fixturePrefix + tc.fixture})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := renderResult(res)

			golden := filepath.Join("testdata", "src", tc.fixture, "expect.txt")
			if *update {
				if got == "" {
					os.Remove(golden)
					return
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want := ""
			if data, err := os.ReadFile(golden); err == nil {
				want = string(data)
			} else if !os.IsNotExist(err) {
				t.Fatalf("read golden: %v", err)
			}
			if got != want {
				t.Errorf("%s over %s: output mismatch\n--- got ---\n%s--- want (%s) ---\n%s",
					tc.analyzer, tc.fixture, got, golden, want)
			}

			// Structural sanity independent of the golden text: _bad
			// fixtures must produce findings, _ok fixtures must not.
			switch {
			case strings.HasSuffix(tc.fixture, "_bad") && len(res.Findings) == 0:
				t.Errorf("%s produced no findings on %s; the analyzer lost its catch", tc.analyzer, tc.fixture)
			case strings.HasSuffix(tc.fixture, "_ok") && len(res.Findings) > 0:
				t.Errorf("%s produced %d findings on compliant fixture %s", tc.analyzer, len(res.Findings), tc.fixture)
			}
		})
	}
}

// TestIgnoreRequiresReason pins the directive contract: a reasoned
// directive suppresses (trailing and line-above forms both), while a
// reasonless directive is itself a finding and suppresses nothing.
func TestIgnoreRequiresReason(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	as, _ := ByName([]string{"globalrand"})
	res, err := Run(l, as, []string{fixturePrefix + "ignorefix"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if got := len(res.Suppressed); got != 2 {
		t.Errorf("suppressed = %d, want 2 (trailing + line-above directives)", got)
	}
	for _, f := range res.Suppressed {
		if f.IgnoreReason == "" {
			t.Errorf("suppressed finding %s has no recorded reason", f)
		}
	}

	var gotIgnore, gotActive bool
	for _, f := range res.Findings {
		switch f.Analyzer {
		case "ignore":
			gotIgnore = true
		case "globalrand":
			gotActive = true
		}
	}
	if !gotIgnore {
		t.Errorf("reasonless sonic:ignore directive was not reported as a finding; got %v", res.Findings)
	}
	if !gotActive {
		t.Errorf("reasonless sonic:ignore directive suppressed the underlying finding; got %v", res.Findings)
	}
}

// TestByNameRejectsUnknown keeps -run typos loud: an unknown analyzer
// name must error instead of silently running nothing.
func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName([]string{"spanend", "nosuchcheck"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
	as, err := ByName([]string{"spanend", "globalrand"})
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName on valid names: got %d analyzers, err %v", len(as), err)
	}
}

// TestRepoIsVetClean is the self-check: the full analyzer suite over the
// whole repository must come back with zero active findings, exactly as
// check.sh and CI enforce. Every suppression must carry a reason.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := l.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	res, err := Run(l, All(), dirs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range res.Findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
	for _, f := range res.Suppressed {
		if f.IgnoreReason == "" {
			t.Errorf("suppression without reason: %s", f)
		}
	}
}
