package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PoolRelease checks the buffer-pooling discipline: a value obtained
// from sync.Pool.Get — directly or through a package-local acquire
// helper (getF64, getScratch, getBytes, ...) — must be released exactly
// once on every path (Pool.Put, a put* helper, or the value's Release
// method) and never touched after release. Values that escape into
// closures, structs, channels, or other variables leave local tracking
// silently: every finding is a path that provably misses or doubles its
// release.
var PoolRelease = &Analyzer{
	Name: "poolrelease",
	Doc:  "pooled values must be released exactly once per path and never used after",
	Run:  runPoolRelease,
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == "Pool"
}

// poolMethodCall reports whether call is <sync.Pool value>.Get() or
// .Put(...) with the given method name.
func poolMethodCall(call *ast.CallExpr, name string, info *types.Info) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return isSyncPool(info.TypeOf(sel.X))
}

// callee resolves the called function or method object, if any.
func callee(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// classifyPoolHelpers splits the package's functions into acquire
// helpers (return a value and contain a Pool.Get but no Pool.Put — the
// get-or-alloc pattern) and release helpers (take a value and contain a
// Pool.Put but no Pool.Get). Functions with both (Correlate-style
// inline get/put kernels) are neither.
func classifyPoolHelpers(pkg *Package) (acquire, release map[*types.Func]bool) {
	acquire = make(map[*types.Func]bool)
	release = make(map[*types.Func]bool)
	info := pkg.Info
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			// A release helper must Put one of its own parameters (or
			// its receiver) — a function that Puts a local it acquired
			// itself (drawPseudoPhoto) releases nothing for its caller.
			own := make(map[types.Object]bool)
			for _, field := range fd.Type.Params.List {
				for _, nm := range field.Names {
					if o := info.Defs[nm]; o != nil {
						own[o] = true
					}
				}
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				for _, nm := range fd.Recv.List[0].Names {
					if o := info.Defs[nm]; o != nil {
						own[o] = true
					}
				}
			}
			hasGet, hasPut, putsOwn := false, false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if poolMethodCall(call, "Get", info) {
					hasGet = true
				}
				if poolMethodCall(call, "Put", info) {
					hasPut = true
					for _, a := range call.Args {
						e := unparen(a)
						if inner, ok := isAddrOf(e); ok {
							e = unparen(inner)
						}
						if id, ok := e.(*ast.Ident); ok && own[info.Uses[id]] {
							putsOwn = true
						}
					}
				}
				return true
			})
			results := fd.Type.Results != nil && len(fd.Type.Results.List) > 0
			switch {
			case hasGet && !hasPut && results:
				acquire[obj] = true
			case putsOwn && !hasGet:
				release[obj] = true
			}
		}
	}
	return acquire, release
}

func runPoolRelease(pass *Pass) {
	info := pass.Pkg.Info
	acqHelpers, relHelpers := classifyPoolHelpers(pass.Pkg)

	isAcquire := func(call *ast.CallExpr) bool {
		if poolMethodCall(call, "Get", info) {
			return true
		}
		if f := callee(call, info); f != nil && acqHelpers[f] {
			return true
		}
		return false
	}
	isRelease := func(call *ast.CallExpr) bool {
		if poolMethodCall(call, "Put", info) {
			return true
		}
		if f := callee(call, info); f != nil && relHelpers[f] {
			return true
		}
		// Cross-package pooled handles (webrender.Rendered) release via
		// a Release() method.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Release" && len(call.Args) == 0
		}
		return false
	}

	funcsOf(pass.Pkg.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		// An acquire helper's own body exists to hand its value to the
		// caller (often reshaped, e.g. getBlocks returns (*p)[:n]);
		// tracking inside it would flag the ownership transfer it
		// encapsulates.
		if obj, ok := info.Defs[decl.Name].(*types.Func); ok && (acqHelpers[obj] || relHelpers[obj]) {
			return
		}
		tracked := make(map[types.Object]bool)
		forEachAcquire(body.List, isAcquire, func(obj types.Object, varName string, list []ast.Stmt, idx int, declared bool, pos token.Pos) {
			tracked[obj] = true
			c := &flowChecker{
				pass:          pass,
				info:          info,
				obj:           obj,
				what:          fmt.Sprintf("pooled value %q", varName),
				isAcquire:     isAcquire,
				isRelease:     isRelease,
				declared:      declared,
				checkUseAfter: true,
				releaseVerb:   "released",
			}
			c.track(list, idx, list[len(list)-1].End())
		}, info)

		// Use-after-release for values the flow tracker does not own
		// (e.g. handles acquired from another package): a linear scan
		// that arms on an unconditional Release/Put statement.
		scanUseAfterRelease(pass, info, body.List, isRelease, tracked, make(map[types.Object]token.Pos))
	})
}

// scanUseAfterRelease walks a statement list in order. After a
// statement-level release of variable v, a later use of v on the same
// list is a use-after-release; a later release is a double release.
// Branch bodies get a copy of the released set, so releases inside an
// early-return branch do not poison the fall-through path.
func scanUseAfterRelease(pass *Pass, info *types.Info, list []ast.Stmt, isRelease func(*ast.CallExpr) bool, tracked map[types.Object]bool, released map[types.Object]token.Pos) {
	for _, stmt := range list {
		// Check uses of already-released values in this statement,
		// before registering any release it performs itself.
		checkReleasedUses(pass, info, stmt, isRelease, released)

		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok && isRelease(call) {
				if obj := releaseTargetObj(call, info); obj != nil && !tracked[obj] {
					if _, done := released[obj]; done {
						pass.Report(call.Pos(), "%q released twice on this path", obj.Name())
					}
					released[obj] = call.Pos()
				}
			}
		case *ast.AssignStmt:
			// Reassignment makes the variable hold a fresh value.
			for _, lhs := range s.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						delete(released, obj)
					}
				}
			}
		case *ast.BlockStmt:
			scanUseAfterRelease(pass, info, s.List, isRelease, tracked, released)
		case *ast.IfStmt:
			scanUseAfterRelease(pass, info, s.Body.List, isRelease, tracked, copyReleased(released))
			if s.Else != nil {
				scanUseAfterRelease(pass, info, []ast.Stmt{s.Else}, isRelease, tracked, copyReleased(released))
			}
		case *ast.ForStmt:
			scanUseAfterRelease(pass, info, s.Body.List, isRelease, tracked, copyReleased(released))
		case *ast.RangeStmt:
			scanUseAfterRelease(pass, info, s.Body.List, isRelease, tracked, copyReleased(released))
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanUseAfterRelease(pass, info, cc.Body, isRelease, tracked, copyReleased(released))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanUseAfterRelease(pass, info, cc.Body, isRelease, tracked, copyReleased(released))
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					scanUseAfterRelease(pass, info, cc.Body, isRelease, tracked, copyReleased(released))
				}
			}
		case *ast.LabeledStmt:
			scanUseAfterRelease(pass, info, []ast.Stmt{s.Stmt}, isRelease, tracked, released)
		}
	}
}

func copyReleased(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// releaseTargetObj extracts the simple-variable target of a release
// call: the receiver of v.Release(), or the v / &v argument of Put(v)
// and putHelper(v).
func releaseTargetObj(call *ast.CallExpr, info *types.Info) types.Object {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
		return nil
	}
	for _, a := range call.Args {
		e := unparen(a)
		if inner, ok := isAddrOf(e); ok {
			e = unparen(inner)
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					return obj
				}
			}
		}
	}
	return nil
}

// checkReleasedUses reports reads of released values inside stmt,
// skipping nested function literals (their execution time is unknown)
// and the release registrations handled by the caller.
func checkReleasedUses(pass *Pass, info *types.Info, stmt ast.Stmt, isRelease func(*ast.CallExpr) bool, released map[types.Object]token.Pos) {
	if len(released) == 0 {
		return
	}
	// Skip the statement forms the caller recurses into; their bodies
	// are checked with their own released-set copies. Conditions and
	// initializers of those forms still run on this path, so scan them.
	var scanRoots []ast.Node
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			scanRoots = append(scanRoots, s.Init)
		}
		scanRoots = append(scanRoots, s.Cond)
	case *ast.ForStmt:
		if s.Init != nil {
			scanRoots = append(scanRoots, s.Init)
		}
		if s.Cond != nil {
			scanRoots = append(scanRoots, s.Cond)
		}
	case *ast.RangeStmt:
		scanRoots = append(scanRoots, s.X)
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanRoots = append(scanRoots, s.Init)
		}
		if s.Tag != nil {
			scanRoots = append(scanRoots, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		scanRoots = append(scanRoots, s.Assign)
	case *ast.BlockStmt, *ast.SelectStmt, *ast.LabeledStmt:
		return
	case *ast.AssignStmt:
		// Only the RHS reads; LHS occurrences are overwrites.
		for _, e := range s.Rhs {
			scanRoots = append(scanRoots, e)
		}
	default:
		scanRoots = append(scanRoots, stmt)
	}
	for _, root := range scanRoots {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isRelease(x) {
					// Double releases are registered by the caller; do
					// not also report the receiver read.
					return false
				}
				return true
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					if pos, ok := released[obj]; ok {
						rel := pass.Fset.Position(pos)
						pass.Report(x.Pos(), "%q used after release (released at line %d)", obj.Name(), rel.Line)
						delete(released, obj)
					}
				}
			}
			return true
		})
	}
}
