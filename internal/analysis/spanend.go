package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd checks that every telemetry span handle obtained from
// StartSpan or StartChild is End()-ed on all control-flow paths —
// by defer or explicitly before each return — and that a live handle is
// not overwritten by a fresh StartChild (the broadcast chain reuses one
// handle variable per stage, which only balances if each stage ends the
// previous span first).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "telemetry spans must be End()-ed on every control-flow path",
	Run:  runSpanEnd,
}

func isSpanStart(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "StartSpan" || sel.Sel.Name == "StartChild"
}

func isSpanEnd(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "End" && len(call.Args) == 0
}

func runSpanEnd(pass *Pass) {
	info := pass.Pkg.Info
	funcsOf(pass.Pkg.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		forEachAcquire(body.List, isSpanStart, func(obj types.Object, varName string, list []ast.Stmt, idx int, declared bool, pos token.Pos) {
			c := &flowChecker{
				pass:        pass,
				info:        info,
				obj:         obj,
				what:        fmt.Sprintf("span %q", varName),
				isAcquire:   isSpanStart,
				isRelease:   isSpanEnd,
				declared:    declared,
				releaseVerb: "End()-ed",
			}
			c.track(list, idx, list[len(list)-1].End())
		}, info)
	})
}
