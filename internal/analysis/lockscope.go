package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// LockScope enforces the off-mutex discipline: while a sync.Mutex or
// sync.RWMutex is held, code must not call into the heavy kernel
// packages (webrender, imagecodec, fm, modem) or perform blocking I/O
// (time.Sleep, net dials/reads, os file ops, os/exec, net/http). The
// mutexes protect queue and cache metadata; render and encode work
// belongs on the pool outside the critical section. Package-local
// helpers are followed transitively, so hiding a kernel call one hop
// away still trips the check.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no kernel calls or blocking I/O while a mutex is held",
	Run:  runLockScope,
}

// kernelPkgBases are the package basenames whose calls are forbidden
// under a lock (CPU-heavy DSP/render/codec work).
var kernelPkgBases = map[string]bool{
	"webrender":  true,
	"imagecodec": true,
	"fm":         true,
	"modem":      true,
}

// heavyFuncs lists CPU-heavy functions that must never run inside a
// critical section: page generation and bundle serialization sit on
// the enqueue path, and holding a queue shard's mutex across them
// would serialize the whole stripe; OFDM modulation and the FM
// broadcast chain are the fleet drain's dominant cost, so a mutex held
// across either serializes every tower sharing the lock. Keyed by
// package basename, like kernelPkgBases; entries here take precedence
// over the blanket kernel-package rule so the diagnostic names the
// specific heavy call.
var heavyFuncs = map[string]map[string]bool{
	"corpus": {"Generate": true},
	"core":   {"MarshalBundle": true},
	"modem":  {"Modulate": true},
	"fm":     {"Broadcast": true},
}

// osBlocking lists os package functions and file-method names that hit
// the filesystem.
var osBlocking = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Truncate": true,
	"Read": true, "Write": true, "WriteString": true, "ReadAt": true,
	"WriteAt": true, "Close": true, "Sync": true, "Seek": true,
}

// netBlocking lists net package functions and connection-method names
// that wait on the network.
var netBlocking = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"DialIP": true, "DialUnix": true, "Listen": true, "ListenTCP": true,
	"ListenUDP": true, "ListenPacket": true, "ListenUnix": true,
	"Accept": true, "AcceptTCP": true, "Read": true, "ReadFrom": true,
	"ReadFromUDP": true, "Write": true, "WriteTo": true, "WriteToUDP": true,
	"Close": true, "LookupHost": true, "LookupIP": true, "LookupAddr": true,
	"LookupPort": true, "LookupCNAME": true, "LookupMX": true,
	"LookupTXT": true, "ResolveTCPAddr": true, "ResolveUDPAddr": true,
}

// httpBlocking lists net/http request entry points.
var httpBlocking = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true,
}

// forbiddenCallee describes why a call is disallowed under a lock.
func forbiddenCallee(f *types.Func, current *types.Package) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil || pkg == current {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if f.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "os/exec":
		return "os/exec." + f.Name(), true
	case "os":
		if osBlocking[f.Name()] {
			return "os." + f.Name(), true
		}
	case "net":
		if netBlocking[f.Name()] {
			return "net." + f.Name(), true
		}
	case "net/http":
		if httpBlocking[f.Name()] {
			return "net/http." + f.Name(), true
		}
	}
	// Heavy-call entries first: modem.Modulate and fm.Broadcast live in
	// kernel packages too, but the specific rule owns the diagnostic.
	if m := heavyFuncs[path.Base(pkg.Path())]; m[f.Name()] {
		return pkg.Path() + "." + f.Name() + " (heavy call)", true
	}
	if kernelPkgBases[path.Base(pkg.Path())] {
		return pkg.Path() + "." + f.Name() + " (kernel package)", true
	}
	return "", false
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a
// pointer to one.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "sync" {
		return false
	}
	return o.Name() == "Mutex" || o.Name() == "RWMutex"
}

// mutexCall matches <mutex expr>.Lock/RLock/Unlock/RUnlock() and
// returns the rendered mutex expression as its identity.
func mutexCall(call *ast.CallExpr, info *types.Info) (key, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexType(info.TypeOf(sel.X)) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// lockScope runs the held-region walk for one package.
type lockScope struct {
	pass *Pass
	info *types.Info

	// localBad memoizes, per package-local function, the first forbidden
	// call reachable from it (directly or through other locals).
	localBad  map[*types.Func]string
	localSeen map[*types.Func]bool
	decls     map[*types.Func]*ast.FuncDecl
}

func runLockScope(pass *Pass) {
	ls := &lockScope{
		pass:      pass,
		info:      pass.Pkg.Info,
		localBad:  make(map[*types.Func]string),
		localSeen: make(map[*types.Func]bool),
		decls:     make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := ls.info.Defs[fd.Name].(*types.Func); ok {
					ls.decls[obj] = fd
				}
			}
		}
	}
	funcsOf(pass.Pkg.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		ls.walkHeld(body.List, make(map[string]token.Pos))
	})
}

// reach returns how fn (a package-local function) reaches a forbidden
// call, if it does, following local calls transitively.
func (ls *lockScope) reach(fn *types.Func) (string, bool) {
	if desc, ok := ls.localBad[fn]; ok {
		return desc, desc != ""
	}
	if ls.localSeen[fn] {
		return "", false // cycle: assume clean on the back edge
	}
	ls.localSeen[fn] = true
	defer delete(ls.localSeen, fn)

	fd, ok := ls.decls[fn]
	if !ok {
		ls.localBad[fn] = ""
		return "", false
	}
	result := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if result != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := callee(call, ls.info)
		if f == nil {
			return true
		}
		if desc, bad := forbiddenCallee(f, ls.pass.Pkg.Types); bad {
			result = desc
			return false
		}
		if f.Pkg() == ls.pass.Pkg.Types && f != fn {
			if desc, bad := ls.reach(f); bad {
				result = fmt.Sprintf("%s (via %s)", desc, f.Name())
				return false
			}
		}
		return true
	})
	ls.localBad[fn] = result
	return result, result != ""
}

// walkHeld scans a statement list tracking which mutexes are held.
// Branch bodies see a copy of the held set; a branch that unlocks and
// returns does not release the fall-through path.
func (ls *lockScope) walkHeld(list []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				if key, method, ok := mutexCall(call, ls.info); ok {
					switch method {
					case "Lock", "RLock":
						held[key] = call.Pos()
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
			ls.checkStmt(s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region held to function end —
			// exactly what the scan models by not deleting. A deferred
			// closure runs after return; skip its body.
			if _, method, ok := mutexCall(s.Call, ls.info); ok && (method == "Unlock" || method == "RUnlock") {
				continue
			}
			ls.checkStmt(s, held)
		case *ast.GoStmt:
			// The goroutine body runs off this lock; its own locks are
			// checked when funcsOf visits the literal.
		case *ast.BlockStmt:
			ls.walkHeld(s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				ls.checkStmt(s.Init, held)
			}
			ls.checkExpr(s.Cond, held)
			ls.walkHeld(s.Body.List, copyHeld(held))
			if s.Else != nil {
				ls.walkHeld([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				ls.checkStmt(s.Init, held)
			}
			if s.Cond != nil {
				ls.checkExpr(s.Cond, held)
			}
			ls.walkHeld(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			ls.checkExpr(s.X, held)
			ls.walkHeld(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				ls.checkStmt(s.Init, held)
			}
			if s.Tag != nil {
				ls.checkExpr(s.Tag, held)
			}
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					ls.walkHeld(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					ls.walkHeld(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					ls.walkHeld(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			ls.walkHeld([]ast.Stmt{s.Stmt}, held)
		default:
			ls.checkStmt(stmt, held)
		}
	}
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (ls *lockScope) checkStmt(stmt ast.Stmt, held map[string]token.Pos) {
	ls.checkExpr(stmt, held)
}

// checkExpr reports forbidden calls in a subtree while any mutex is
// held, skipping function literals (they execute elsewhere).
func (ls *lockScope) checkExpr(root ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := callee(call, ls.info)
		if f == nil {
			return true
		}
		desc, bad := forbiddenCallee(f, ls.pass.Pkg.Types)
		if !bad && f.Pkg() == ls.pass.Pkg.Types {
			if via, reached := ls.reach(f); reached {
				desc, bad = fmt.Sprintf("%s (via %s)", via, f.Name()), true
			}
		}
		if bad {
			key := ""
			for k := range held {
				if key == "" || k < key {
					key = k
				}
			}
			lock := ls.pass.Fset.Position(held[key])
			ls.pass.Report(call.Pos(), "call to %s while %s is held (locked at line %d); move it off the critical section", desc, key, lock.Line)
		}
		return true
	})
}
