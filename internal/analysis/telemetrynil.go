package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TelemetryNil protects the disabled-telemetry fast path: a nil
// *Registry (and the nil handles it hands out) must flow through every
// telemetry call at <2 ns, so every exported pointer-receiver method on
// a telemetry handle type must be nil-receiver-safe — either it guards
// the receiver against nil before the first dereference, or every
// receiver use delegates to a method or helper that does. Handle types
// are recognized by already having at least one nil-guarded method.
var TelemetryNil = &Analyzer{
	Name: "telemetrynil",
	Doc:  "telemetry handle methods must be nil-receiver-safe (guard before first dereference)",
	Run:  runTelemetryNil,
}

func runTelemetryNil(pass *Pass) {
	if pass.Pkg.Name != "telemetry" {
		return
	}
	tn := &telemetryNil{
		pass:    pass,
		info:    pass.Pkg.Info,
		safe:    make(map[*types.Func]bool),
		methods: make(map[*types.Func]*ast.FuncDecl),
		funcs:   make(map[*types.Func]*ast.FuncDecl),
	}
	tn.collect()
	tn.fixpoint()
	tn.report()
}

type telemetryNil struct {
	pass *Pass
	info *types.Info

	methods map[*types.Func]*ast.FuncDecl // pointer-receiver methods
	funcs   map[*types.Func]*ast.FuncDecl // top-level functions
	// safe starts optimistic (every method assumed nil-safe) and is
	// narrowed to a fixpoint, so mutually delegating safe methods stay
	// safe.
	safe map[*types.Func]bool
	// guardedTypes are receiver types owning at least one method that
	// opens with a nil guard — the "handle type" heuristic.
	guardedTypes map[string]bool
}

func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

func recvTypeName(fd *ast.FuncDecl) (string, bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	ptr, ok := t.(*ast.StarExpr)
	if !ok {
		return "", false // value receiver: cannot be nil
	}
	id, ok := unparen(ptr.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

func (tn *telemetryNil) collect() {
	tn.guardedTypes = make(map[string]bool)
	for _, f := range tn.pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := tn.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				tn.funcs[obj] = fd
				continue
			}
			tname, ptr := recvTypeName(fd)
			if !ptr {
				continue
			}
			tn.methods[obj] = fd
			tn.safe[obj] = true
			if rid := recvIdent(fd); rid != nil && len(fd.Body.List) > 0 {
				if tn.isNilGuard(fd.Body.List[0], tn.objOf(rid)) {
					tn.guardedTypes[tname] = true
				}
			}
		}
	}
}

func (tn *telemetryNil) objOf(id *ast.Ident) types.Object {
	if o := tn.info.Defs[id]; o != nil {
		return o
	}
	return tn.info.Uses[id]
}

// isNilGuard reports whether stmt is "if x == nil { ... return ... }"
// (possibly with extra || terms), i.e. a guard that exits before x is
// dereferenced.
func (tn *telemetryNil) isNilGuard(stmt ast.Stmt, x types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || x == nil {
		return false
	}
	if !tn.condChecksNil(ifs.Cond, x) {
		return false
	}
	// The guard body must leave the function.
	n := len(ifs.Body.List)
	if n == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[n-1].(*ast.ReturnStmt)
	return isReturn
}

// condChecksNil looks for an "x == nil" disjunct in cond.
func (tn *telemetryNil) condChecksNil(cond ast.Expr, x types.Object) bool {
	cond = unparen(cond)
	if bin, ok := cond.(*ast.BinaryExpr); ok {
		if bin.Op == token.LOR {
			return tn.condChecksNil(bin.X, x) || tn.condChecksNil(bin.Y, x)
		}
		if bin.Op == token.EQL {
			return (tn.identIs(bin.X, x) && isNil(bin.Y)) || (tn.identIs(bin.Y, x) && isNil(bin.X))
		}
	}
	return false
}

func (tn *telemetryNil) identIs(e ast.Expr, x types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && (tn.info.Uses[id] == x || tn.info.Defs[id] == x)
}

// guardedParam reports whether the i-th parameter of local function fd
// is nil-guarded by its first statement (the now(lc) helper pattern).
func (tn *telemetryNil) guardedParam(fd *ast.FuncDecl, i int) bool {
	if fd.Body == nil || len(fd.Body.List) == 0 {
		return false
	}
	var params []*ast.Ident
	for _, field := range fd.Type.Params.List {
		params = append(params, field.Names...)
	}
	if i >= len(params) {
		return false
	}
	obj := tn.objOf(params[i])
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	// For helper functions a guard need not return — returning a default
	// ("if lc == nil { return time.Time{} }") and assigning a fallback
	// both count as long as the nil case is handled first.
	return tn.condChecksNil(ifs.Cond, obj)
}

// fixpoint narrows the safe set: a method stays safe only if, scanning
// its top-level statements in order, a nil guard appears before any
// statement that uses the receiver unsafely. Receiver uses that are
// themselves safe: nil comparisons, receiving a (currently) safe
// same-package method, or being passed to a local function at a
// nil-guarded parameter.
func (tn *telemetryNil) fixpoint() {
	for changed := true; changed; {
		changed = false
		for obj, fd := range tn.methods {
			if !tn.safe[obj] {
				continue
			}
			if !tn.methodSafe(fd) {
				tn.safe[obj] = false
				changed = true
			}
		}
	}
}

func (tn *telemetryNil) methodSafe(fd *ast.FuncDecl) bool {
	rid := recvIdent(fd)
	if rid == nil {
		return true // receiver unnamed: never dereferenced
	}
	recv := tn.objOf(rid)
	for _, stmt := range fd.Body.List {
		if tn.isNilGuard(stmt, recv) {
			return true
		}
		if tn.hasUnsafeUse(stmt, recv) {
			return false
		}
	}
	return true
}

// hasUnsafeUse reports whether the subtree dereferences recv without a
// guard in scope.
func (tn *telemetryNil) hasUnsafeUse(n ast.Node, recv types.Object) bool {
	unsafe := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if unsafe {
			return false
		}
		switch x := nd.(type) {
		case *ast.BinaryExpr:
			// Nil comparisons are safe reads.
			if (x.Op == token.EQL || x.Op == token.NEQ) &&
				((tn.identIs(x.X, recv) && isNil(x.Y)) || (tn.identIs(x.Y, recv) && isNil(x.X))) {
				return false
			}
			return true
		case *ast.CallExpr:
			// recv.M(...) where M is (still) nil-safe.
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && tn.identIs(sel.X, recv) {
				if f, ok := tn.info.Uses[sel.Sel].(*types.Func); ok && tn.safe[f] {
					for _, a := range x.Args {
						if tn.hasUnsafeUse(a, recv) {
							unsafe = true
						}
					}
					return false
				}
				unsafe = true
				return false
			}
			// localFn(..., recv, ...) with a nil-guarded parameter.
			if f := callee(x, tn.info); f != nil {
				if lfd, ok := tn.funcs[f]; ok {
					argIdx := -1
					for i, a := range x.Args {
						if tn.identIs(a, recv) {
							argIdx = i
						} else if tn.hasUnsafeUse(a, recv) {
							unsafe = true
							return false
						}
					}
					if argIdx >= 0 && !tn.guardedParam(lfd, argIdx) {
						unsafe = true
					}
					return false
				}
			}
			return true
		case *ast.SelectorExpr:
			if tn.identIs(x.X, recv) {
				unsafe = true // field access or method value: dereference
				return false
			}
			return true
		case *ast.StarExpr:
			if tn.identIs(x.X, recv) {
				unsafe = true
				return false
			}
			return true
		case *ast.Ident:
			// A bare receiver escaping anywhere else (struct literal,
			// unknown call, assignment) may be dereferenced later where
			// the nil contract is unknown — treat as unsafe.
			if tn.identIs(x, recv) {
				unsafe = true
			}
			return true
		}
		return true
	})
	return unsafe
}

func (tn *telemetryNil) report() {
	for obj, fd := range tn.methods {
		if tn.safe[obj] || !fd.Name.IsExported() {
			continue
		}
		tname, _ := recvTypeName(fd)
		if !tn.guardedTypes[tname] {
			continue // not a handle type
		}
		tn.pass.Report(fd.Name.Pos(), "method (*%s).%s is not nil-receiver-safe: guard the receiver against nil before its first use so the disabled-telemetry path stays cheap", tname, fd.Name.Name)
	}
}
