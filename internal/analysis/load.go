package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path string // import path ("sonic/internal/fm")
	Dir  string // absolute directory
	Name string // package name

	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // _test.go files, parsed only (not type-checked)

	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library. Module-internal imports resolve from source under
// the module root; everything else (the standard library) comes from
// go/importer's "source" compiler, so no compiled export data, build
// cache, or x/tools machinery is needed.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir (the
// nearest ancestor with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  root,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", file)
}

// importPathFor maps an absolute directory under the module root to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads (parsing and type-checking, memoized) the package in an
// absolute or module-relative directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleDir, dir)
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// Import implements types.Importer: module-internal paths load from
// source, everything else defers to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	pkg := &Package{Path: path, Dir: dir}
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, file)
			continue
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	pkg.Name = pkg.Files[0].Name.Name

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// ExpandPatterns resolves command-line package patterns ("./...",
// "./internal/fm", "internal/fm") into module-relative directories
// containing Go files. Directories named testdata or vendor and hidden
// directories are skipped, mirroring the go tool.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
