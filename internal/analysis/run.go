package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
)

// ignoreDirective is one parsed "//sonic:ignore name reason" comment.
type ignoreDirective struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Reason   string `json:"reason"`
	used     bool
}

// ignorePrefix introduces a suppression comment. The directive applies
// to findings on its own line and on the line directly below it, so it
// works both as a trailing comment and as a lead-in line above the
// flagged statement or declaration.
const ignorePrefix = "//sonic:ignore"

// parseIgnores extracts the sonic:ignore directives of a file. A
// directive without a reason is itself reported as a finding (analyzer
// "ignore") so suppressions stay auditable.
func parseIgnores(fset *token.FileSet, file *ast.File, report func(Finding)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			rest, ok := strings.CutPrefix(text, ignorePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(Finding{
					Analyzer: "ignore", Pos: pos, File: pos.Filename, Line: pos.Line,
					Message: "sonic:ignore needs an analyzer name and a reason",
				})
				continue
			}
			name, reason := fields[0], strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			if reason == "" {
				report(Finding{
					Analyzer: "ignore", Pos: pos, File: pos.Filename, Line: pos.Line,
					Message: fmt.Sprintf("sonic:ignore %s needs a reason (why is this exempt?)", name),
				})
				continue
			}
			out = append(out, ignoreDirective{Analyzer: name, File: pos.Filename, Line: pos.Line, Reason: reason})
		}
	}
	return out
}

// Result is the outcome of one sonic-vet run.
type Result struct {
	// Findings are the active (unsuppressed) diagnostics; a non-empty
	// list fails the run.
	Findings []Finding `json:"findings"`
	// Suppressed are findings silenced by a sonic:ignore directive,
	// reported so suppressions stay visible.
	Suppressed []Finding `json:"suppressed"`
	// Counts maps analyzer name to active/suppressed finding counts for
	// every analyzer that ran (zeros included, so JSON diffs across PRs
	// line up).
	Counts map[string]FindingCount `json:"counts"`
}

// FindingCount is the per-analyzer tally of one run.
type FindingCount struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// Run executes the analyzers over the packages in dirs and applies the
// sonic:ignore directives. Paths in the result are relative to the
// module root.
func Run(l *Loader, analyzers []*Analyzer, dirs []string) (*Result, error) {
	res := &Result{Counts: make(map[string]FindingCount)}
	for _, a := range analyzers {
		res.Counts[a.Name] = FindingCount{}
	}

	var all []Finding
	var ignores []ignoreDirective
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		// Directives may sit in test files too (equivpin findings anchor
		// to declarations referenced from tests).
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			ignores = append(ignores, parseIgnores(l.Fset, f, func(fd Finding) { all = append(all, fd) })...)
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: l.Fset, Pkg: pkg}
			a.Run(pass)
			all = append(all, pass.findings...)
		}
	}

	for _, f := range all {
		f.File = relPath(l.ModuleDir, f.File)
		if dir := matchIgnore(ignores, f); dir != nil {
			dir.used = true
			f.IgnoreReason = dir.Reason
			res.Suppressed = append(res.Suppressed, f)
			c := res.Counts[f.Analyzer]
			c.Suppressed++
			res.Counts[f.Analyzer] = c
			continue
		}
		res.Findings = append(res.Findings, f)
		c := res.Counts[f.Analyzer]
		c.Findings++
		res.Counts[f.Analyzer] = c
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, nil
}

// matchIgnore finds a directive suppressing f: same file, same analyzer,
// on the finding's line or the line above it. The raw (absolute) file of
// the directive is compared against the finding's pre-relativized path
// via suffix match so both spellings work.
func matchIgnore(ignores []ignoreDirective, f Finding) *ignoreDirective {
	for i := range ignores {
		d := &ignores[i]
		if d.Analyzer != f.Analyzer {
			continue
		}
		if d.Line != f.Line && d.Line != f.Line-1 {
			continue
		}
		if filepath.Base(d.File) != filepath.Base(f.File) || !strings.HasSuffix(d.File, f.File) && d.File != f.File {
			continue
		}
		return d
	}
	return nil
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// WriteText prints findings, suppressions, and the per-analyzer count
// table in the human-readable format check.sh shows.
func (r *Result) WriteText(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintln(w, f.String())
	}
	if len(r.Suppressed) > 0 {
		fmt.Fprintf(w, "suppressed (%d):\n", len(r.Suppressed))
		for _, f := range r.Suppressed {
			fmt.Fprintf(w, "  %s:%d: [%s] %s (reason: %s)\n", f.File, f.Line, f.Analyzer, f.Message, f.IgnoreReason)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "analyzer\tfindings\tsuppressed\n")
	names := make([]string, 0, len(r.Counts))
	for n := range r.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	totalF, totalS := 0, 0
	for _, n := range names {
		c := r.Counts[n]
		fmt.Fprintf(tw, "%s\t%d\t%d\n", n, c.Findings, c.Suppressed)
		totalF += c.Findings
		totalS += c.Suppressed
	}
	fmt.Fprintf(tw, "total\t%d\t%d\n", totalF, totalS)
	tw.Flush()
}

// WriteJSON emits the machine-readable form (-json) future tooling can
// diff across PRs, benchguard-style.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	out := *r
	if out.Findings == nil {
		out.Findings = []Finding{}
	}
	if out.Suppressed == nil {
		out.Suppressed = []Finding{}
	}
	return enc.Encode(out)
}
