// Package analysis is the driver behind cmd/sonic-vet: a small,
// stdlib-only static-analysis framework (go/parser + go/ast + go/types +
// go/importer — deliberately no x/tools, matching the repo's zero-dep
// policy) plus the project-specific analyzers that mechanically enforce
// the conventions six optimization PRs layered on top of plain Go:
//
//   - spanend: every telemetry StartSpan/StartChild result is End()-ed
//     on all control-flow paths (PR 1's span discipline);
//   - poolrelease: pooled values (sync.Pool.Get and the project's
//     get*/put* acquire helpers) are released exactly once per path and
//     never used after release (PR 3-5's buffer pooling);
//   - lockscope: no kernel calls (webrender/imagecodec/fm/modem) or
//     blocking I/O while a struct mutex is held (PR 5's off-mutex render
//     discipline);
//   - equivpin: every exported function of a package with a
//     *_equiv_test.go is referenced from an equivalence/parity test, so
//     new kernels cannot dodge the byte-identical pin;
//   - telemetrynil: methods on telemetry handle types stay
//     nil-receiver-safe, preserving the <2 ns disabled path;
//   - globalrand: non-test code never draws from math/rand's global
//     source, keeping parity and equivalence runs deterministic.
//
// Findings print as "file:line: [name] message". A finding is suppressed
// by a "//sonic:ignore name reason" comment on the same or the preceding
// line; suppressions require a reason and are reported in the run
// summary so they stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Message  string         `json:"message"`
	// IgnoreReason is the reason string of the sonic:ignore directive
	// that suppressed this finding (set only on suppressed findings).
	IgnoreReason string `json:"ignore_reason,omitempty"`
}

// String renders the canonical "file:line: [name] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers read the
// syntax and type information and call Report.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	findings []Finding
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every registered analyzer, in report order.
func All() []*Analyzer {
	return []*Analyzer{
		SpanEnd,
		PoolRelease,
		LockScope,
		EquivPin,
		TelemetryNil,
		GlobalRand,
	}
}

// ByName resolves a comma-separated analyzer selection; an unknown name
// is an error so typos in -run flags cannot silently disable a check.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// sortFindings orders findings by file, line, analyzer, message for
// stable output and golden-file comparison.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// funcsOf yields every function body of the package's non-test files:
// declared functions and methods plus every function literal, paired
// with the declaration's name for messages. Nested literals are yielded
// on their own so flow analyses stay per-body.
func funcsOf(files []*ast.File, fn func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Name.Name, fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(fd.Name.Name+" (func literal)", fd, lit.Body)
				}
				return true
			})
		}
	}
}
