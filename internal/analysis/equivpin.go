package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// EquivPin keeps optimized kernels pinned to their reference copies: in
// any package that carries a *_equiv_test.go (the byte-identical
// equivalence pin convention), every exported top-level function must
// be exercised by a pin test — directly, or through a pinned caller. A
// new exported kernel entry point that no equivalence test reaches is
// exactly how an optimization drifts from the reference implementation
// unnoticed.
//
// Pin tests are recognized two ways, matching the repo's conventions:
// everything in a *_equiv_test.go or *parity* test file counts, and so
// does any test function whose name declares a comparison against a
// reference (TestFFTPlanBitIdenticalToDirect,
// TestFFTCorrelatorMatchesCrossCorrelate, ...). A function referenced
// from a pin test pins every same-package function it calls,
// transitively: the equivalence run exercises those callees
// byte-for-byte through it.
var EquivPin = &Analyzer{
	Name: "equivpin",
	Doc:  "exported functions in equiv-pinned packages must be reachable from an equivalence/parity test",
	Run:  runEquivPin,
}

// pinTestName marks test functions that compare against a reference
// implementation even when they live outside *_equiv_test.go files.
var pinTestName = regexp.MustCompile(`Equiv|Parity|Matches|Identical|Reference`)

func runEquivPin(pass *Pass) {
	referenced := make(map[string]bool)
	hasEquiv := false
	for _, f := range pass.Pkg.TestFiles {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(base, "equiv_test.go") || strings.Contains(base, "parity") {
			hasEquiv = true
			collectIdents(f, referenced)
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Test") && pinTestName.MatchString(fd.Name.Name) {
				collectIdents(fd.Body, referenced)
			}
		}
	}
	if !hasEquiv {
		return
	}

	// Transitive closure: a declaration whose name a pin test references
	// pins every same-package function or method it reaches.
	info := pass.Pkg.Info
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
				if referenced[fd.Name.Name] {
					roots = append(roots, obj)
				}
			}
		}
	}
	pinned := make(map[*types.Func]bool)
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if pinned[fn] {
			return
		}
		pinned[fn] = true
		fd, ok := decls[fn]
		if !ok {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := callee(call, info); f != nil && f.Pkg() == pass.Pkg.Types {
				if _, local := decls[f]; local {
					mark(f)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		mark(r)
	}

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj != nil && pinned[obj] {
				continue
			}
			pass.Report(fd.Name.Pos(), "exported function %s is not reachable from any equivalence/parity test; pin it against the reference implementation or add a reasoned sonic:ignore", fd.Name.Name)
		}
	}
}

func collectIdents(n ast.Node, set map[string]bool) {
	ast.Inspect(n, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			set[id.Name] = true
		}
		return true
	})
}
