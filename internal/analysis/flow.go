package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Path-sensitive tracking of "acquire → release exactly once" values:
// spanend follows StartSpan/StartChild results to their End(), and
// poolrelease follows sync.Pool.Get values to their Put/Release. The
// walk is a recursive descent over the statement tree that merges the
// tracked value's state across branches — a deliberately small
// approximation of a CFG that handles the repo's idioms (early error
// returns, defer, branch-local release+return, span handle reuse via
// reassignment) without an x/tools dependency.
//
// The approximation is conservative toward silence: any flow the walker
// cannot prove (value escapes into a closure, struct, channel, or
// another variable; branches disagree about the release state) stops
// tracking rather than reporting, so every finding is a path that
// provably misses its release.

// trackState is the status of one tracked value along the current path.
type trackState int

const (
	stLive     trackState = iota // acquired, release still owed
	stReleased                   // released; a second release is a bug
	stDone                       // escaped or ambiguous: stop checking
)

// pathState carries the tracked value's state plus whether a deferred
// release is pending (a pending defer satisfies every later exit, and
// it does not arm the use-after-release check: the release runs at
// function return, after all uses).
type pathState struct {
	track    trackState
	deferred bool
}

// flowChecker follows one tracked object through one statement list.
type flowChecker struct {
	pass *Pass
	info *types.Info
	obj  types.Object
	what string // "span sp" / "pooled value tp", used in messages

	// isAcquire reports whether a call expression produces a fresh
	// tracked value (used for reassignment handling).
	isAcquire func(call *ast.CallExpr) bool
	// isRelease reports whether a call expression releases obj.
	isRelease func(call *ast.CallExpr) bool

	// declared is true when the value was bound with := (its scope ends
	// with the statement list, so reaching the end of the list while
	// live is a leak even without a return).
	declared bool
	// checkUseAfter arms the use-after-release diagnostic (poolrelease).
	checkUseAfter bool

	// releaseVerb names the missing action in leak messages ("End()",
	// "released").
	releaseVerb string
}

// scan is the classification of one statement's contact with obj.
type scan struct {
	releases []token.Pos // release calls targeting obj
	acquires []token.Pos // acquire calls assigned back to obj
	read     bool        // dereference-style use (obj.f, *obj, obj[i])
	escape   bool        // obj's value leaves local tracking
	returned bool        // obj itself is returned (ownership transfer)
}

func (c *flowChecker) isObjIdent(e ast.Expr) bool {
	e = unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return c.info.Uses[id] == c.obj || c.info.Defs[id] == c.obj
}

func isAddrOf(e ast.Expr) (ast.Expr, bool) {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X, true
	}
	return nil, false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// releaseTargets reports whether call is a release whose target is obj
// (as receiver, argument, or &argument).
func (c *flowChecker) releaseTargets(call *ast.CallExpr) bool {
	if c.isRelease == nil || !c.isRelease(call) {
		return false
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && c.isObjIdent(sel.X) {
		return true
	}
	for _, a := range call.Args {
		if c.isObjIdent(a) {
			return true
		}
		if inner, ok := isAddrOf(a); ok && c.isObjIdent(inner) {
			return true
		}
	}
	return false
}

// scanNode classifies every contact with obj in the subtree, excluding
// nested function literals (reported as escapes when they mention obj —
// the closure may run at any time, so tracking stops).
func (c *flowChecker) scanNode(n ast.Node, s *scan) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if c.mentions(x) {
				s.escape = true
			}
			return false
		case *ast.CallExpr:
			if c.releaseTargets(x) {
				s.releases = append(s.releases, x.Pos())
				// Classify everything in the call except obj itself.
				if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
					if !c.isObjIdent(sel.X) {
						c.scanNode(sel.X, s)
					}
				}
				for _, a := range x.Args {
					if c.isObjIdent(a) {
						continue
					}
					if inner, ok := isAddrOf(a); ok && c.isObjIdent(inner) {
						continue
					}
					c.scanNode(a, s)
				}
				return false
			}
			// Non-release method call on obj (sp.StartChild, ws.reset):
			// a read, not an escape.
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && c.isObjIdent(sel.X) {
				s.read = true
				for _, a := range x.Args {
					c.scanNode(a, s)
				}
				return false
			}
			return true
		case *ast.SelectorExpr:
			if c.isObjIdent(x.X) {
				s.read = true
				return false
			}
			return true
		case *ast.StarExpr:
			if c.isObjIdent(x.X) {
				s.read = true
				return false
			}
			return true
		case *ast.IndexExpr:
			if c.isObjIdent(x.X) {
				s.read = true
				c.scanNode(x.Index, s)
				return false
			}
			return true
		case *ast.SliceExpr:
			if c.isObjIdent(x.X) {
				s.read = true
				for _, e := range []ast.Expr{x.Low, x.High, x.Max} {
					if e != nil {
						c.scanNode(e, s)
					}
				}
				return false
			}
			return true
		case *ast.BinaryExpr:
			// Nil comparisons are reads, not escapes.
			if x.Op == token.EQL || x.Op == token.NEQ {
				if (c.isObjIdent(x.X) && isNil(x.Y)) || (c.isObjIdent(x.Y) && isNil(x.X)) {
					s.read = true
					return false
				}
			}
			return true
		case *ast.Ident:
			if c.isObjIdent(x) {
				s.escape = true
			}
			return true
		}
		return true
	})
}

func isNil(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// mentions reports whether the subtree references obj at all.
func (c *flowChecker) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && c.isObjIdent(id) {
			found = true
		}
		return !found
	})
	return found
}

// containsRelease reports whether any call in the subtree (including
// inside function literals — used for defer func(){...}()) releases obj.
func (c *flowChecker) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok && c.releaseTargets(call) {
			found = true
		}
		return !found
	})
	return found
}

// applyScan folds one statement's classification into the path state,
// reporting releases-after-release and uses-after-release.
func (c *flowChecker) applyScan(s *scan, st pathState, pos func() token.Pos) pathState {
	if st.track == stDone {
		return st
	}
	if st.track == stReleased && !st.deferred && c.checkUseAfter && (s.read || s.escape) {
		c.pass.Report(pos(), "%s used after release", c.what)
		st.track = stDone
		return st
	}
	for _, rp := range s.releases {
		switch {
		case st.track == stReleased:
			c.pass.Report(rp, "%s released twice on this path", c.what)
			st.track = stDone
			return st
		case st.deferred:
			c.pass.Report(rp, "%s released here but a deferred release is already pending", c.what)
			st.track = stDone
			return st
		default:
			st.track = stReleased
		}
	}
	if s.escape && st.track == stLive {
		st.track = stDone
	}
	return st
}

// mergeStates folds branch outcomes. Terminated branches drop out; a
// disagreement between surviving branches stops tracking (conservative
// silence) rather than guessing.
func mergeStates(states []pathState, terms []bool, entry pathState) (pathState, bool) {
	var live []pathState
	allTerm := true
	for i, st := range states {
		if !terms[i] {
			allTerm = false
			live = append(live, st)
		}
	}
	if allTerm {
		return entry, true
	}
	out := live[0]
	for _, st := range live[1:] {
		if st != out {
			return pathState{track: stDone}, false
		}
	}
	return out, false
}

// walkStmts follows obj through a statement list. It returns the state
// at the end of the list and whether every path through it terminated
// (returned or branched away).
func (c *flowChecker) walkStmts(list []ast.Stmt, st pathState) (pathState, bool) {
	for _, stmt := range list {
		var term bool
		st, term = c.walkStmt(stmt, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *flowChecker) walkStmt(stmt ast.Stmt, st pathState) (pathState, bool) {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		var sc scan
		c.scanNode(s, &sc)
		// Returning obj itself transfers ownership to the caller (the
		// acquire-helper pattern: getF64 returns the pooled buffer).
		for _, e := range s.Results {
			if c.isObjIdent(e) {
				sc.returned = true
			}
		}
		if sc.returned {
			return pathState{track: stDone}, true
		}
		st = c.applyScan(&sc, st, s.Pos)
		if st.track == stLive && !st.deferred {
			c.pass.Report(s.Pos(), "%s is not %s on this return path", c.what, c.releaseVerb)
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto leave this list; treat as terminated so
		// states past the branch are not merged in.
		return st, true

	case *ast.DeferStmt:
		if c.containsRelease(s.Call) {
			if st.track == stReleased || st.deferred {
				c.pass.Report(s.Pos(), "%s released twice on this path", c.what)
				return pathState{track: stDone}, false
			}
			return pathState{track: stReleased, deferred: true}, false
		}
		if c.mentions(s.Call) {
			return pathState{track: stDone}, false
		}
		return st, false

	case *ast.GoStmt:
		if c.mentions(s.Call) {
			return pathState{track: stDone}, false
		}
		return st, false

	case *ast.AssignStmt:
		return c.walkAssign(s, st), false

	case *ast.ExprStmt:
		var sc scan
		c.scanNode(s.X, &sc)
		return c.applyScan(&sc, st, s.Pos), false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.walkStmt(s.Init, st)
		}
		var sc scan
		c.scanNode(s.Cond, &sc)
		st = c.applyScan(&sc, st, s.Cond.Pos)
		thenSt, thenTerm := c.walkStmts(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = c.walkStmt(s.Else, st)
		}
		return mergeStates([]pathState{thenSt, elseSt}, []bool{thenTerm, elseTerm}, st)

	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)

	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.walkStmt(s.Init, st)
		}
		var sc scan
		if s.Cond != nil {
			c.scanNode(s.Cond, &sc)
		}
		if s.Post != nil {
			c.scanNode(s.Post, &sc)
		}
		st = c.applyScan(&sc, st, s.Pos)
		bodySt, _ := c.walkStmts(s.Body.List, st)
		return c.afterLoop(st, bodySt), false

	case *ast.RangeStmt:
		var sc scan
		c.scanNode(s.X, &sc)
		st = c.applyScan(&sc, st, s.Pos)
		bodySt, _ := c.walkStmts(s.Body.List, st)
		return c.afterLoop(st, bodySt), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkSwitch(stmt, st)

	default:
		var sc scan
		c.scanNode(stmt, &sc)
		return c.applyScan(&sc, st, stmt.Pos), false
	}
}

// afterLoop reconciles the state around a loop body that may run zero
// or many times: if the body changed the state at all, the result is
// ambiguous and tracking stops; an untouched body keeps the entry state.
func (c *flowChecker) afterLoop(entry, body pathState) pathState {
	if body == entry {
		return entry
	}
	return pathState{track: stDone}
}

// walkSwitch merges the clause bodies of a switch/type-switch/select.
// A switch without a default may fall past every clause, so the entry
// state joins the merge.
func (c *flowChecker) walkSwitch(stmt ast.Stmt, st pathState) (pathState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	var sc scan
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scanNode(s.Tag, &sc)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.walkStmt(s.Init, st)
		}
		c.scanNode(s.Assign, &sc)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	st = c.applyScan(&sc, st, stmt.Pos)
	var states []pathState
	var terms []bool
	for _, clause := range body.List {
		var list []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanNode(e, &sc)
			}
			if cl.List == nil {
				hasDefault = true
			}
			list = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.scanNode(cl.Comm, &sc)
			}
			list = cl.Body
		}
		cs, ct := c.walkStmts(list, st)
		states = append(states, cs)
		terms = append(terms, ct)
	}
	if !hasDefault || len(states) == 0 {
		states = append(states, st)
		terms = append(terms, false)
	}
	return mergeStates(states, terms, st)
}

// walkAssign handles assignments: reassigning the tracked variable with
// a fresh acquire while the old value is live loses the old value
// (stream.go's span-handle reuse must End() first); any other overwrite
// stops tracking.
func (c *flowChecker) walkAssign(s *ast.AssignStmt, st pathState) pathState {
	var sc scan
	// LHS: is obj assigned to?
	objLHS := -1
	for i, lhs := range s.Lhs {
		if c.isObjIdent(lhs) {
			objLHS = i
		} else {
			c.scanNode(lhs, &sc)
		}
	}
	for i, rhs := range s.Rhs {
		if i == objLHS && len(s.Lhs) == len(s.Rhs) {
			// The expression assigned INTO obj: classified below.
			continue
		}
		c.scanNode(rhs, &sc)
	}
	st = c.applyScan(&sc, st, s.Pos)
	if objLHS < 0 || st.track == stDone && objLHS < 0 {
		return st
	}
	if objLHS >= 0 {
		var rhs ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			rhs = unparen(s.Rhs[objLHS])
		}
		if call, ok := stripAssert(rhs); ok && c.isAcquire != nil && c.isAcquire(call) {
			if st.track == stLive && !st.deferred {
				c.pass.Report(s.Pos(), "%s reassigned before it is %s; the previous value leaks", c.what, c.releaseVerb)
			}
			if st.deferred {
				// The deferred release will cover the NEW value (defer
				// evaluates at run time for method-style releases); too
				// subtle to model — stop.
				return pathState{track: stDone}
			}
			return pathState{track: stLive}
		}
		// Overwritten with something else: stop tracking silently (the
		// get-or-alloc fallback pattern writes a fresh allocation over a
		// failed pool fetch).
		return pathState{track: stDone}
	}
	return st
}

// stripAssert unwraps parens and a single type assertion around a call:
// pool.Get().(*T) acquires like pool.Get().
func stripAssert(e ast.Expr) (*ast.CallExpr, bool) {
	if e == nil {
		return nil, false
	}
	e = unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return call, ok
}

// track runs the checker over the statements following the acquire at
// list[start+1:]. endIsScope reports whether falling off the end of the
// list leaks the value (:= binding whose scope is this list).
func (c *flowChecker) track(list []ast.Stmt, start int, endPos token.Pos) {
	st, term := c.walkStmts(list[start+1:], pathState{track: stLive})
	if term {
		return
	}
	if st.track == stLive && !st.deferred && c.declared {
		c.pass.Report(endPos, "%s is not %s before its scope ends", c.what, c.releaseVerb)
	}
}

// forEachAcquire finds tracked-value acquisitions in a statement list
// (recursing into nested blocks, but not into function literals — those
// are walked as functions of their own) and invokes fn with the list
// context needed to track the remainder of the value's scope.
func forEachAcquire(list []ast.Stmt, isAcquire func(call *ast.CallExpr) bool,
	fn func(obj types.Object, name string, list []ast.Stmt, idx int, declared bool, pos token.Pos),
	info *types.Info) {
	for i, stmt := range list {
		if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for j, rhs := range as.Rhs {
				call, ok := stripAssert(rhs)
				if !ok || !isAcquire(call) {
					continue
				}
				id, ok := unparen(as.Lhs[j]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var obj types.Object
				declared := false
				if d := info.Defs[id]; d != nil {
					obj, declared = d, true
				} else if u := info.Uses[id]; u != nil {
					obj = u
				}
				if obj == nil {
					continue
				}
				fn(obj, id.Name, list, i, declared, call.Pos())
			}
		}
		// Recurse into nested statement bodies.
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				if b != nil {
					forEachAcquireShallow(b.List, isAcquire, fn, info)
				}
				return true
			}
			return true
		})
	}
}

// forEachAcquireShallow is forEachAcquire without recursion (the
// recursion in forEachAcquire already visits every nested block once).
func forEachAcquireShallow(list []ast.Stmt, isAcquire func(call *ast.CallExpr) bool,
	fn func(obj types.Object, name string, list []ast.Stmt, idx int, declared bool, pos token.Pos),
	info *types.Info) {
	for i, stmt := range list {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			continue
		}
		for j, rhs := range as.Rhs {
			call, ok := stripAssert(rhs)
			if !ok || !isAcquire(call) {
				continue
			}
			id, ok := unparen(as.Lhs[j]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var obj types.Object
			declared := false
			if d := info.Defs[id]; d != nil {
				obj, declared = d, true
			} else if u := info.Uses[id]; u != nil {
				obj = u
			}
			if obj == nil {
				continue
			}
			fn(obj, id.Name, list, i, declared, call.Pos())
		}
	}
}
