package client

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sonic/internal/telemetry"
)

// TestConcurrentClientUse drives broadcast ingest, page opens, catalog
// reads, and registry snapshots from many goroutines. Under -race it
// proves the instrumented counters and the lifecycle delivery
// confirmation path stay data-race free.
func TestConcurrentClientUse(t *testing.T) {
	c := New(Config{Number: "+9201", SonicNumber: "+92111", ScreenWidth: 720})
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	c.Instrument(reg)
	now := time.Unix(0, 0)

	const workers = 8
	b := makeBundle(t, "seed.pk/", "seed.pk/next")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			url := fmt.Sprintf("page-%d.pk/", w)
			for i := 0; i < 10; i++ {
				c.HandleBroadcast(url, b, now, time.Hour, 1.0)
				if _, err := c.Open(url, now); err != nil {
					t.Error(err)
					return
				}
				c.Catalog(now)
				reg.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["client_pages_received_total"]; got != workers*10 {
		t.Errorf("received counter = %d, want %d", got, workers*10)
	}
	if got := snap.Counters["client_pages_opened_total"]; got != workers*10 {
		t.Errorf("opened counter = %d, want %d", got, workers*10)
	}
	if requested := snap.Counters["client_requests_sent_total"]; requested != 0 {
		t.Errorf("requests sent = %d, want 0", requested)
	}
}
