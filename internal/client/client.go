// Package client implements the SONIC client application (§3.1): it
// receives page bundles from the radio downlink, caches them with the
// server-set expiry, shows a catalog of browsable pages, resolves
// hyperlink clicks through the click map (cache first, SMS uplink as the
// fallback), and applies the §3.2 scaling factor for the device screen.
package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sonic/internal/cache"
	"sonic/internal/clickmap"
	"sonic/internal/core"
	"sonic/internal/imagecodec"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

// Capability describes what a user's hardware supports (the three user
// classes of the paper's Figure 3).
type Capability int

// Capability levels.
const (
	// DownlinkOnly is user-A/B: FM reception, no SMS.
	DownlinkOnly Capability = iota
	// UplinkSMS is user-C: FM reception plus SMS uplink.
	UplinkSMS
)

// Config describes one client device.
type Config struct {
	Number      string  // the device's phone number (uplink identity)
	SonicNumber string  // the SONIC service number
	ScreenWidth int     // pixels; drives the §3.2 scaling factor
	Lat, Lon    float64 // reported with each request
	Capability  Capability
	CacheBytes  int // page cache bound (0 = unbounded)
}

// Client is a SONIC end-user device.
type Client struct {
	cfg Config

	mu      sync.Mutex
	pages   *cache.Cache
	pending map[string]time.Time // URL -> ack ETA deadline
	smsc    *sms.SMSC

	// Telemetry (nil handles = off; see internal/telemetry).
	mReceived  *telemetry.Counter // client_pages_received_total
	mRequested *telemetry.Counter // client_requests_sent_total
	mOpened    *telemetry.Counter // client_pages_opened_total
	lc         *telemetry.Lifecycle
}

// Instrument registers the client's metric families on reg. If a
// request lifecycle tracker is installed on reg, every ingested
// broadcast also confirms delivery on the matching open traces —
// the decode-side receipt that closes the request loop end to end.
// Call once at setup, before the client starts handling broadcasts.
func (c *Client) Instrument(reg *telemetry.Registry) {
	c.mReceived = reg.Counter("client_pages_received_total")
	c.mRequested = reg.Counter("client_requests_sent_total")
	c.mOpened = reg.Counter("client_pages_opened_total")
	c.lc = reg.Lifecycle()
}

// New builds a client.
func New(cfg Config) *Client {
	if cfg.ScreenWidth <= 0 {
		cfg.ScreenWidth = 720
	}
	return &Client{
		cfg:     cfg,
		pages:   cache.New(cfg.CacheBytes),
		pending: make(map[string]time.Time),
	}
}

// AttachSMSC wires the uplink (no-op for downlink-only devices) and
// registers the ack handler.
func (c *Client) AttachSMSC(smsc *sms.SMSC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.smsc = smsc
	smsc.Register(c.cfg.Number, func(m sms.Message) {
		url, eta, err := sms.ParseAck(m.Body)
		if err != nil {
			return
		}
		c.mu.Lock()
		c.pending[url] = m.DeliverAt.Add(eta)
		c.mu.Unlock()
	})
}

// ScalingFactor returns screen width / 1080 (§3.2).
func (c *Client) ScalingFactor() float64 {
	return float64(c.cfg.ScreenWidth) / float64(imagecodec.PageWidth)
}

// HandleBroadcast ingests a received page bundle (already demodulated and
// reassembled by the core pipeline), caching it under url with the
// server-provided expiry.
func (c *Client) HandleBroadcast(url string, b core.Bundle, now time.Time, ttl time.Duration, popularity float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages.Put(&cache.Entry{
		URL:        url,
		Data:       b.Image,
		ClickMap:   b.ClickMap,
		StoredAt:   now,
		ExpiresAt:  now.Add(ttl),
		Popularity: popularity,
	})
	delete(c.pending, url)
	c.mReceived.Inc()
	c.lc.DeliveredAt(url, now)
}

// Page is a browsable cached page, decoded and scaled for this device.
type Page struct {
	URL    string
	Image  *imagecodec.Raster
	Clicks *clickmap.Map
}

// Errors from navigation.
var (
	ErrNotCached = errors.New("client: page not cached")
	ErrNoUplink  = errors.New("client: no SMS uplink available")
	ErrNotLink   = errors.New("client: nothing clickable at that point")
)

// Open decodes a cached page and scales image plus click map to the
// device screen.
func (c *Client) Open(url string, now time.Time) (*Page, error) {
	c.mu.Lock()
	e, ok := c.pages.Get(url, now)
	c.mu.Unlock()
	if !ok {
		return nil, ErrNotCached
	}
	img, err := imagecodec.DecodeSIC(e.Data)
	if err != nil {
		return nil, fmt.Errorf("client: decode %s: %w", url, err)
	}
	var cm clickmap.Map
	if len(e.ClickMap) > 0 {
		if err := cm.UnmarshalJSON(e.ClickMap); err != nil {
			return nil, err
		}
	}
	f := c.ScalingFactor()
	c.mOpened.Inc()
	return &Page{
		URL:    url,
		Image:  img.ResizeNearest(f),
		Clicks: cm.Scale(f),
	}, nil
}

// Catalog lists cached, fresh pages (most popular first).
func (c *Client) Catalog(now time.Time) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var urls []string
	for _, e := range c.pages.Catalog(now) {
		urls = append(urls, e.URL)
	}
	return urls
}

// Click resolves a tap at device coordinates on an open page: if the
// target is cached it returns it immediately; otherwise, with an uplink,
// it sends an SMS request and returns ErrNotCached with a queued request
// (§3.1: "If the requested internal page is locally available ... the
// page would instantly load. If not, an active uplink is required").
func (c *Client) Click(p *Page, x, y int, now time.Time) (*Page, error) {
	target, ok := p.Clicks.Hit(x, y)
	if !ok {
		return nil, ErrNotLink
	}
	if next, err := c.Open(target, now); err == nil {
		return next, nil
	}
	if err := c.Request(target, now); err != nil {
		return nil, err
	}
	return nil, ErrNotCached
}

// Request sends an SMS page request for url.
func (c *Client) Request(url string, now time.Time) error {
	c.mu.Lock()
	smsc := c.smsc
	capab := c.cfg.Capability
	c.mu.Unlock()
	if capab != UplinkSMS || smsc == nil {
		return ErrNoUplink
	}
	body := sms.FormatRequest(sms.Request{URL: url, Lat: c.cfg.Lat, Lon: c.cfg.Lon})
	if err := smsc.Submit(now, c.cfg.Number, c.cfg.SonicNumber, body); err != nil {
		return err
	}
	c.mRequested.Inc()
	return nil
}

// PendingETA reports the acknowledged delivery deadline for url, if any.
func (c *Client) PendingETA(url string) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.pending[url]
	return t, ok
}
