package client

import (
	"testing"
	"time"

	"sonic/internal/clickmap"
	"sonic/internal/core"
	"sonic/internal/imagecodec"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

// makeBundle builds a small page bundle with one link region.
func makeBundle(t *testing.T, url, linkTo string) core.Bundle {
	t.Helper()
	img := imagecodec.NewRaster(imagecodec.PageWidth, 60)
	img.FillRect(0, 0, imagecodec.PageWidth, 20, imagecodec.RGB{R: 10, G: 30, B: 120})
	enc, err := imagecodec.EncodeSIC(img, 50)
	if err != nil {
		t.Fatal(err)
	}
	cm := &clickmap.Map{PageURL: url}
	cm.Add(100, 30, 300, 20, linkTo)
	cmJSON, err := cm.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return core.Bundle{Image: enc, ClickMap: cmJSON}
}

func TestScalingFactor(t *testing.T) {
	c := New(Config{ScreenWidth: 720})
	if f := c.ScalingFactor(); f != 720.0/1080 {
		t.Errorf("factor = %g", f)
	}
	d := New(Config{}) // default width
	if d.ScalingFactor() <= 0 {
		t.Error("default factor must be positive")
	}
}

func TestBroadcastOpenAndScale(t *testing.T) {
	c := New(Config{ScreenWidth: 540})
	now := time.Unix(0, 0)
	b := makeBundle(t, "a.pk/", "a.pk/story")
	c.HandleBroadcast("a.pk/", b, now, time.Hour, 1)

	p, err := c.Open("a.pk/", now)
	if err != nil {
		t.Fatal(err)
	}
	if p.Image.W != 540 {
		t.Errorf("scaled width = %d, want 540", p.Image.W)
	}
	// Click map scaled by the same factor.
	if len(p.Clicks.Regions) != 1 || p.Clicks.Regions[0].X != 50 {
		t.Errorf("scaled region = %+v", p.Clicks.Regions)
	}
	// Expiry honored.
	if _, err := c.Open("a.pk/", now.Add(2*time.Hour)); err != ErrNotCached {
		t.Errorf("expired open err = %v", err)
	}
}

func TestCatalog(t *testing.T) {
	c := New(Config{})
	now := time.Unix(0, 0)
	c.HandleBroadcast("low.pk/", makeBundle(t, "low.pk/", "x"), now, time.Hour, 1)
	c.HandleBroadcast("hot.pk/", makeBundle(t, "hot.pk/", "x"), now, time.Hour, 9)
	cat := c.Catalog(now)
	if len(cat) != 2 || cat[0] != "hot.pk/" {
		t.Errorf("catalog = %v", cat)
	}
}

func TestClickCachedNavigatesInstantly(t *testing.T) {
	c := New(Config{ScreenWidth: 1080})
	now := time.Unix(0, 0)
	c.HandleBroadcast("a.pk/", makeBundle(t, "a.pk/", "a.pk/story"), now, time.Hour, 1)
	c.HandleBroadcast("a.pk/story", makeBundle(t, "a.pk/story", "a.pk/"), now, time.Hour, 1)
	p, err := c.Open("a.pk/", now)
	if err != nil {
		t.Fatal(err)
	}
	next, err := c.Click(p, 150, 35, now)
	if err != nil {
		t.Fatal(err)
	}
	if next.URL != "a.pk/story" {
		t.Errorf("navigated to %q", next.URL)
	}
	// Clicking dead space.
	if _, err := c.Click(p, 5, 5, now); err != ErrNotLink {
		t.Errorf("dead click err = %v", err)
	}
}

func TestClickUncachedRequestsViaSMS(t *testing.T) {
	smsc := sms.NewSMSC(time.Second, time.Second, 1)
	var serverGot []string
	smsc.Register("+SONIC", func(m sms.Message) { serverGot = append(serverGot, m.Body) })

	c := New(Config{
		Number: "+user1", SonicNumber: "+SONIC",
		ScreenWidth: 1080, Capability: UplinkSMS,
		Lat: 24.86, Lon: 67.0,
	})
	reg := telemetry.New()
	c.Instrument(reg)
	c.AttachSMSC(smsc)
	now := time.Unix(0, 0)
	c.HandleBroadcast("a.pk/", makeBundle(t, "a.pk/", "a.pk/story"), now, time.Hour, 1)
	p, _ := c.Open("a.pk/", now)
	if _, err := c.Click(p, 150, 35, now); err != ErrNotCached {
		t.Fatalf("uncached click err = %v", err)
	}
	smsc.Advance(now.Add(2 * time.Second))
	if len(serverGot) != 1 {
		t.Fatalf("server got %v", serverGot)
	}
	req, err := sms.ParseRequest(serverGot[0])
	if err != nil || req.URL != "a.pk/story" {
		t.Errorf("request = %+v %v", req, err)
	}
	if requested := reg.Snapshot().Counters["client_requests_sent_total"]; requested != 1 {
		t.Error("request counter wrong")
	}
}

func TestDownlinkOnlyCannotRequest(t *testing.T) {
	c := New(Config{Capability: DownlinkOnly})
	if err := c.Request("a.pk/", time.Unix(0, 0)); err != ErrNoUplink {
		t.Errorf("err = %v", err)
	}
}

func TestAckUpdatesPending(t *testing.T) {
	smsc := sms.NewSMSC(time.Second, time.Second, 2)
	c := New(Config{Number: "+user1", SonicNumber: "+SONIC", Capability: UplinkSMS})
	c.AttachSMSC(smsc)
	smsc.Register("+SONIC", func(m sms.Message) {
		_ = smsc.Submit(m.DeliverAt, "+SONIC", "+user1", sms.FormatAck("b.pk/", 90*time.Second))
	})
	now := time.Unix(0, 0)
	if err := c.Request("b.pk/", now); err != nil {
		t.Fatal(err)
	}
	smsc.Advance(now.Add(time.Second))
	smsc.Advance(now.Add(2 * time.Second))
	deadline, ok := c.PendingETA("b.pk/")
	if !ok {
		t.Fatal("no pending ETA recorded")
	}
	if deadline.Before(now.Add(90 * time.Second)) {
		t.Errorf("deadline = %v", deadline)
	}
	// Broadcast arrival clears the pending state.
	c.HandleBroadcast("b.pk/", makeBundle(t, "b.pk/", "x"), now.Add(time.Minute), time.Hour, 1)
	if _, ok := c.PendingETA("b.pk/"); ok {
		t.Error("pending not cleared by delivery")
	}
}
