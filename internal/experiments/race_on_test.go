//go:build race

package experiments

// raceEnabled scales down or skips the heavy single-threaded DSP and
// image-pipeline tests when the race detector is on: they hold no
// concurrency for it to check, and its ~10-20x slowdown would push the
// package past the test timeout.
const raceEnabled = true
