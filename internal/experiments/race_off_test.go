//go:build !race

package experiments

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
