package experiments

import (
	"strings"
	"testing"

	"sonic/internal/stats"
	"sonic/internal/userstudy"
)

func TestFig4aShapeReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("DSP-heavy")
	}
	if raceEnabled {
		t.Skip("single-threaded DSP, too slow under -race")
	}
	pts, err := RunFig4a(Fig4aConfig{Trials: 4, FramesPerTrial: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig4aDistances) {
		t.Fatalf("%d points", len(pts))
	}
	byLabel := map[string]float64{}
	for _, p := range pts {
		byLabel[p.Label] = stats.Median(p.Losses)
	}
	// Paper shape: cable lossless, 1.1m total loss, 1m in between.
	if byLabel["Cable"] != 0 {
		t.Errorf("cable median = %g", byLabel["Cable"])
	}
	if byLabel["1.1m"] < 80 {
		t.Errorf("1.1m median = %g, want ~100", byLabel["1.1m"])
	}
	if byLabel["1m"] >= byLabel["1.1m"] {
		t.Errorf("1m (%g) should lose less than 1.1m (%g)", byLabel["1m"], byLabel["1.1m"])
	}
	var sb strings.Builder
	PrintFig4a(&sb, pts)
	if !strings.Contains(sb.String(), "Cable") {
		t.Error("print missing rows")
	}
}

func TestFig4bShapeReduced(t *testing.T) {
	pages := 8
	if raceEnabled {
		pages = 3 // image pipeline is ~15x slower under -race
	}
	res, err := RunFig4b(pages)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range SizeConfigs {
		if len(res.Sizes[sc.Label]) != pages {
			t.Fatalf("config %s has %d sizes", sc.Label, len(res.Sizes[sc.Label]))
		}
	}
	q10 := stats.Median(res.Sizes["Q:10,PH:10k"])
	q50 := stats.Median(res.Sizes["Q:50,PH:10k"])
	q90 := stats.Median(res.Sizes["Q:90,PH:10k"])
	q10n := stats.Median(res.Sizes["Q:10,PH:None"])
	// Paper shape: monotone with quality; crop saves bytes; Q10 mostly
	// under 200 KB.
	if !(q10 < q50 && q50 < q90) {
		t.Errorf("quality ordering broken: %g %g %g", q10, q50, q90)
	}
	if q10n < q10 {
		t.Errorf("uncropped (%g) should not be smaller than cropped (%g)", q10n, q10)
	}
	if q10 > 200*1024 {
		t.Errorf("Q10 median %g KB, paper says mostly <200 KB", q10/1024)
	}
	var sb strings.Builder
	PrintFig4b(&sb, res)
	if !strings.Contains(sb.String(), "Q:90,PH:10k") {
		t.Error("print missing configs")
	}
}

func TestFig4cShape(t *testing.T) {
	curves, err := RunFig4c(48, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("%d curves", len(curves))
	}
	s10 := curves[0].Result.Summarize()
	s40 := curves[2].Result.Summarize()
	if s10.ZeroFraction > 0.15 {
		t.Errorf("10kbps idle %.2f, want rarely zero", s10.ZeroFraction)
	}
	if s40.ZeroFraction < 0.3 {
		t.Errorf("40kbps idle %.2f, want mostly drained", s40.ZeroFraction)
	}
	// N:200 at 20kbps backs up more than N:100 at 20kbps.
	if curves[3].Result.Summarize().MeanBytes <= curves[1].Result.Summarize().MeanBytes {
		t.Error("N:200 should carry more backlog than N:100")
	}
	var sb strings.Builder
	PrintFig4c(&sb, curves)
	if !strings.Contains(sb.String(), "Rate:10kbps") {
		t.Error("print missing curves")
	}
}

func TestRSSISweepBands(t *testing.T) {
	if testing.Short() {
		t.Skip("DSP-heavy")
	}
	if raceEnabled {
		t.Skip("single-threaded DSP, too slow under -race")
	}
	pts, err := RunRSSISweep(3, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := map[float64]float64{}
	for _, p := range pts {
		got[p.RSSI] = stats.Median(p.Losses)
	}
	// Paper: no losses -65..-85; total loss below -90.
	for _, rssi := range []float64{-65, -70, -75, -80, -85} {
		if got[rssi] != 0 {
			t.Errorf("loss at %g dB = %g, want 0", rssi, got[rssi])
		}
	}
	if got[-95] < 70 {
		t.Errorf("loss at -95 dB = %g, want near-total", got[-95])
	}
	var sb strings.Builder
	PrintRSSISweep(&sb, pts)
	if !strings.Contains(sb.String(), "-90") {
		t.Error("print missing rows")
	}
}

func TestRateClaims(t *testing.T) {
	r, err := RunRate(32 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 10 kbps is the FEC-coded transport rate.
	if r.TransportBps < 9500 || r.TransportBps > 10600 {
		t.Errorf("transport rate = %.0f bps, want ~10kbps", r.TransportBps)
	}
	if r.MeasuredBps > r.NetBps*1.02 || r.MeasuredBps < r.NetBps*0.9 {
		t.Errorf("measured %.0f vs theoretical net %.0f", r.MeasuredBps, r.NetBps)
	}
	if r.MultiFreq2xBps != 2*r.MeasuredBps {
		t.Error("multi-frequency scaling wrong")
	}
	var sb strings.Builder
	PrintRate(&sb, r)
	if !strings.Contains(sb.String(), "10kbps") {
		t.Error("print missing claim")
	}
}

func TestBaselineOrdering(t *testing.T) {
	r, err := RunBaseline(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	fsk := r.Rows[0].GoodputBps
	sonic92 := r.Rows[2].GoodputBps
	cable := r.Rows[3].GoodputBps
	if cable <= sonic92 {
		t.Errorf("cable-64k (%.0f) should beat the air profile (%.0f)", cable, sonic92)
	}
	if fsk > 130 {
		t.Errorf("FSK goodput %.0f bps, should be GGwave-class (~128)", fsk)
	}
	if sonic92 < 20*fsk {
		t.Errorf("OFDM (%.0f) should be >20x FSK (%.0f)", sonic92, fsk)
	}
	var sb strings.Builder
	PrintBaseline(&sb, r)
	if !strings.Contains(sb.String(), "GGwave") {
		t.Error("print missing baseline")
	}
}

func TestCompressionClaim(t *testing.T) {
	pages := 6
	if raceEnabled {
		pages = 2 // image pipeline is ~15x slower under -race
	}
	r, err := RunCompression(pages)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(r.Ratios)
	// Paper: "about 10x compression" (2 MB page -> a few hundred KB).
	if med < 5 || med > 40 {
		t.Errorf("median compression ratio = %.1f, want order-10x", med)
	}
	var sb strings.Builder
	PrintCompression(&sb, r)
	if sb.Len() == 0 {
		t.Error("empty print")
	}
}

func TestAblationFECOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("DSP-heavy")
	}
	if raceEnabled {
		t.Skip("single-threaded DSP, too slow under -race")
	}
	rows, err := RunAblationFEC(16, 10, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d variants", len(rows))
	}
	paper := rows[0].Loss
	noFEC := rows[4].Loss
	if paper > noFEC {
		t.Errorf("paper stack loss %.2f worse than no FEC %.2f", paper, noFEC)
	}
	if noFEC < 0.5 {
		t.Errorf("no-FEC loss %.2f at 16dB: channel too easy to discriminate", noFEC)
	}
}

func TestAblationInterleaver(t *testing.T) {
	rows, err := RunAblationInterleaver(64, 4, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Loss > rows[0].Loss {
		t.Errorf("interleaver made bursts worse: %.2f vs %.2f", rows[1].Loss, rows[0].Loss)
	}
	if rows[0].Loss == 0 {
		t.Error("burst channel should break un-interleaved RS sometimes")
	}
}

func TestAblationPartitioning(t *testing.T) {
	rows, err := RunAblationPartitioning(0.10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's combination (vertical strips + left-first) should beat
	// the worst combination.
	worst := 0.0
	for _, r := range rows {
		if r.Loss > worst {
			worst = r.Loss
		}
	}
	if rows[0].Loss >= worst && worst > rows[0].Loss {
		t.Errorf("paper combination not competitive: %v", rows)
	}
	var sb strings.Builder
	PrintAblation(&sb, "t", rows)
	if !strings.Contains(sb.String(), "paper") {
		t.Error("print missing variants")
	}
}

func TestFig1Metrics(t *testing.T) {
	r := RunFig1(1000, 8)
	if r.RawDamage.PixelLossRate < 0.08 || r.RawDamage.PixelLossRate > 0.12 {
		t.Errorf("pixel loss = %g, want ~0.10", r.RawDamage.PixelLossRate)
	}
	if r.HealedDamage.OverallDamage >= r.RawDamage.OverallDamage {
		t.Error("interpolation did not reduce damage")
	}
	if r.Original.Equal(r.Lossy) {
		t.Error("lossy panel identical to original")
	}
	var sb strings.Builder
	PrintFig1(&sb, r)
	if !strings.Contains(sb.String(), "interp") {
		t.Error("print missing panel")
	}
}

func TestFig5Reduced(t *testing.T) {
	res := RunFig5(Fig5Config{Pages: 4, ViewportH: 1000, Participants: 151, Seed: 9})
	cond := userstudy.Condition{LossRate: 0.20, Interp: true}
	med := stats.Median(res.MediansContent[cond])
	if med < 5.5 || med > 9 {
		t.Errorf("content@20%%+interp = %.2f, want ~7", med)
	}
	var sb strings.Builder
	PrintFig5(&sb, res)
	if !strings.Contains(sb.String(), "with-interp") {
		t.Error("print missing conditions")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2})
	if len(got) != 2 || got[0] != "a" {
		t.Errorf("SortedKeys = %v", got)
	}
}
