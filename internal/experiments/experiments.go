// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation (§4). Each experiment returns a
// structured result and can print itself in the shape the paper reports
// (boxplot rows, CDF points, time series). cmd/sonic-bench is the CLI
// front end; the root bench_test.go wraps the same functions as Go
// benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"sonic/internal/broadcast"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/fec"
	"sonic/internal/fm"
	"sonic/internal/frame"
	"sonic/internal/imagecodec"
	"sonic/internal/interp"
	"sonic/internal/modem"
	"sonic/internal/stats"
	"sonic/internal/userstudy"
	"sonic/internal/webrender"
)

// --- Figure 4(a): frame loss vs radio-to-receiver distance -----------------

// Fig4aPoint is one distance's loss distribution.
type Fig4aPoint struct {
	Label     string
	DistanceM float64 // 0 = cable
	Losses    []float64
}

// Fig4aConfig scales the experiment.
type Fig4aConfig struct {
	Trials         int // paper: 10 repeats
	FramesPerTrial int
	Seed           int64
}

// DefaultFig4a matches the paper's repeats.
func DefaultFig4a() Fig4aConfig {
	return Fig4aConfig{Trials: 10, FramesPerTrial: 20, Seed: 1}
}

// Fig4aDistances are the paper's x axis values.
var Fig4aDistances = []struct {
	Label string
	D     float64
}{
	{"Cable", 0}, {"10cm", 0.1}, {"20cm", 0.2},
	{"50cm", 0.5}, {"1m", 1.0}, {"1.1m", 1.1},
}

// RunFig4a measures frame loss through the real modem + FM + acoustic
// chain at each over-the-air distance, with high RSSI (-70 dB) on the
// radio hop as in the paper.
func RunFig4a(cfg Fig4aConfig) ([]Fig4aPoint, error) {
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Fig4aPoint
	for _, d := range Fig4aDistances {
		pt := Fig4aPoint{Label: d.Label, DistanceM: d.D}
		for trial := 0; trial < cfg.Trials; trial++ {
			link := fm.Chain{
				&fm.FMLink{Model: fm.DefaultRSSIModel(), RSSIOverride: -70,
					Rng: rand.New(rand.NewSource(rng.Int63()))},
				&fm.AcousticLink{Model: fm.DefaultAcousticModel(), DistanceM: d.D,
					Rng: rand.New(rand.NewSource(rng.Int63()))},
			}
			loss, err := pipe.FrameLossProbe(link, cfg.FramesPerTrial)
			if err != nil {
				return nil, err
			}
			pt.Losses = append(pt.Losses, loss*100)
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintFig4a renders the boxplot rows.
func PrintFig4a(w io.Writer, pts []Fig4aPoint) {
	fmt.Fprintln(w, "Figure 4(a): frame loss rate (%) vs radio-to-receiver distance")
	var t stats.Table
	t.AddRow("distance", "min", "q1", "median", "q3", "max")
	for _, p := range pts {
		b := stats.BoxplotOf(p.Losses)
		t.AddRowf(p.Label, b.Min, b.Q1, b.Median, b.Q3, b.Max)
	}
	t.Render(w)
}

// --- Figure 4(b): size CDF of rendered webpages -----------------------------

// SizeConfigs are the paper's four curves.
var SizeConfigs = []struct {
	Label   string
	Quality int
	CropPH  bool
}{
	{"Q:10,PH:10k", 10, true},
	{"Q:10,PH:None", 10, false},
	{"Q:50,PH:10k", 50, true},
	{"Q:90,PH:10k", 90, true},
}

// Fig4bResult maps config label to per-page encoded sizes (bytes).
type Fig4bResult struct {
	Sizes map[string][]float64
	// Weights are the synthetic original page weights (for the §3.2
	// compression claim).
	Weights []float64
}

// RunFig4b renders nPages corpus pages at hour 0 and encodes each under
// every configuration. nPages <= 100; the paper uses all 100.
func RunFig4b(nPages int) (*Fig4bResult, error) {
	refs := corpus.Pages()
	if nPages > len(refs) {
		nPages = len(refs)
	}
	res := &Fig4bResult{Sizes: make(map[string][]float64)}
	for i := 0; i < nPages; i++ {
		page := corpus.Generate(refs[i], 0)
		rendered := webrender.Render(page)
		res.Weights = append(res.Weights, float64(page.Weight))
		for _, sc := range SizeConfigs {
			img := rendered.Image
			if sc.CropPH {
				img = img.Crop(imagecodec.MaxPageHeight)
			}
			enc, err := imagecodec.EncodeSIC(img, sc.Quality)
			if err != nil {
				return nil, err
			}
			res.Sizes[sc.Label] = append(res.Sizes[sc.Label], float64(len(enc)))
		}
	}
	return res, nil
}

// PrintFig4b renders CDF summary rows per configuration.
func PrintFig4b(w io.Writer, res *Fig4bResult) {
	fmt.Fprintln(w, "Figure 4(b): CDF of rendered webpage sizes (KB)")
	var t stats.Table
	t.AddRow("config", "p10", "p25", "median", "p75", "p90", "max")
	for _, sc := range SizeConfigs {
		xs := res.Sizes[sc.Label]
		t.AddRowf(sc.Label,
			stats.Percentile(xs, 10)/1024, stats.Percentile(xs, 25)/1024,
			stats.Percentile(xs, 50)/1024, stats.Percentile(xs, 75)/1024,
			stats.Percentile(xs, 90)/1024, stats.Percentile(xs, 100)/1024)
	}
	t.Render(w)
	// Paper checkpoints.
	q10 := res.Sizes["Q:10,PH:10k"]
	q10n := res.Sizes["Q:10,PH:None"]
	q90 := res.Sizes["Q:90,PH:10k"]
	fmt.Fprintf(w, "share of pages under 200KB at Q10/PH10k: %.0f%% (paper: most)\n",
		stats.CDFAt(q10, 200*1024)*100)
	fmt.Fprintf(w, "Q90 median / Q10 median: %.1fx (paper: ~3.5x, 700KB vs 200KB)\n",
		stats.Median(q90)/stats.Median(q10))
	var saved []float64
	for i := range q10 {
		saved = append(saved, q10n[i]-q10[i])
	}
	fmt.Fprintf(w, "crop-to-10k saving at p75: %.0f KB (paper: ~100 KB for 75%% of pages)\n",
		stats.Percentile(saved, 75)/1024)
}

// --- Figure 4(c): broadcast backlog over time -------------------------------

// Fig4cCurve labels one (rate, N) series.
type Fig4cCurve struct {
	Label   string
	RateBps float64
	NPages  int
	Result  *broadcast.Result
}

// RunFig4c simulates the paper's four curves over the given horizon,
// using measured page sizes when sizes is non-nil (ref URL -> bytes) or
// a deterministic size model otherwise.
func RunFig4c(hours int, sizes map[string]int) ([]Fig4cCurve, error) {
	sizeFn := func(ref corpus.PageRef, hour int) int {
		base, ok := 0, false
		if sizes != nil {
			base, ok = lookupSize(sizes, ref.URL)
		}
		if !ok {
			base = modelSize(ref.URL)
		}
		// Hourly content variation jitters the encoded size a little.
		j := int64(hour)*1000003 ^ int64(len(ref.URL))
		return base + int(j%int64(base/8)) - base/16
	}
	curves := []Fig4cCurve{
		{Label: "Rate:10kbps N:100", RateBps: 10000, NPages: 100},
		{Label: "Rate:20kbps N:100", RateBps: 20000, NPages: 100},
		{Label: "Rate:40kbps N:100", RateBps: 40000, NPages: 100},
		{Label: "Rate:20kbps N:200", RateBps: 20000, NPages: 200},
	}
	for i := range curves {
		r, err := broadcast.Simulate(broadcast.Config{
			Pages:       broadcast.ExtendCorpus(curves[i].NPages),
			RateBps:     curves[i].RateBps,
			Hours:       hours,
			StepMinutes: 10,
			Size:        sizeFn,
		})
		if err != nil {
			return nil, err
		}
		curves[i].Result = r
	}
	return curves, nil
}

func lookupSize(sizes map[string]int, url string) (int, bool) {
	if v, ok := sizes[url]; ok {
		return v, true
	}
	// Variant URLs from ExtendCorpus ("...?v=1") share the base page size.
	for i := 0; i < len(url); i++ {
		if url[i] == '?' {
			v, ok := sizes[url[:i]]
			return v, ok
		}
	}
	return 0, false
}

// modelSize is the fallback per-page size (bytes) in the measured
// Q10/PH10k regime (~90-155 KB).
func modelSize(url string) int {
	h := 0
	for _, c := range url {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return 90*1024 + h%(65*1024)
}

// PrintFig4c renders the series summaries plus hourly samples.
func PrintFig4c(w io.Writer, curves []Fig4cCurve) {
	fmt.Fprintln(w, "Figure 4(c): data to broadcast (MB) over time")
	var t stats.Table
	t.AddRow("curve", "peakMB", "meanMB", "finalMB", "idle%")
	for _, c := range curves {
		s := c.Result.Summarize()
		t.AddRowf(c.Label, float64(s.PeakBytes)/(1<<20), s.MeanBytes/(1<<20),
			float64(s.FinalBytes)/(1<<20), s.ZeroFraction*100)
	}
	t.Render(w)
	fmt.Fprintln(w, "series (backlog MB sampled every 6h):")
	for _, c := range curves {
		fmt.Fprintf(w, "%-18s", c.Label)
		for _, p := range c.Result.Series {
			if math.Mod(p.THours, 6) == 0 {
				fmt.Fprintf(w, " %5.1f", float64(p.Backlog)/(1<<20))
			}
		}
		fmt.Fprintln(w)
	}
}

// --- §4 Variable RSSI sweep --------------------------------------------------

// RSSIPoint is one RSSI level's loss distribution.
type RSSIPoint struct {
	RSSI   float64
	Losses []float64 // percent
}

// RunRSSISweep probes frame loss in cable mode across RSSI levels at
// 5 dB intervals, 10 repeats each (the paper's §4 methodology).
func RunRSSISweep(trials, framesPerTrial int, seed int64) ([]RSSIPoint, error) {
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var out []RSSIPoint
	for rssi := -65.0; rssi >= -95; rssi -= 5 {
		pt := RSSIPoint{RSSI: rssi}
		for trial := 0; trial < trials; trial++ {
			link := fm.Chain{
				&fm.FMLink{Model: fm.DefaultRSSIModel(), RSSIOverride: rssi,
					Rng: rand.New(rand.NewSource(rng.Int63()))},
				fm.CableLink{},
			}
			loss, err := pipe.FrameLossProbe(link, framesPerTrial)
			if err != nil {
				return nil, err
			}
			pt.Losses = append(pt.Losses, loss*100)
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintRSSISweep renders the sweep with the paper's three bands marked.
func PrintRSSISweep(w io.Writer, pts []RSSIPoint) {
	fmt.Fprintln(w, "Variable RSSI (cable mode): frame loss (%) per RSSI")
	var t stats.Table
	t.AddRow("RSSI(dB)", "min", "median", "max", "paper band")
	for _, p := range pts {
		b := stats.BoxplotOf(p.Losses)
		band := "0% expected"
		switch {
		case p.RSSI < -90:
			band = "no frames expected"
		case p.RSSI < -85:
			band = "2-15% expected"
		}
		t.AddRowf(fmt.Sprintf("%.0f", p.RSSI), b.Min, b.Median, b.Max, band)
	}
	t.Render(w)
}

// --- Figure 5: simulated user study -----------------------------------------

// Fig5Config scales the study.
type Fig5Config struct {
	Pages        int
	ViewportH    int
	Participants int
	Seed         int64
}

// DefaultFig5 uses the paper's geometry with a study viewport.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Pages:        userstudy.DefaultPages,
		ViewportH:    3000,
		Participants: userstudy.DefaultParticipants,
		Seed:         5,
	}
}

// RunFig5 builds the screenshots and runs the panel.
func RunFig5(cfg Fig5Config) *userstudy.StudyResult {
	shots := userstudy.BuildScreenshots(cfg.Pages, cfg.ViewportH, cfg.Seed)
	return userstudy.Run(shots, cfg.Participants, cfg.Seed+1)
}

// PrintFig5 renders the per-condition boxplots of per-page medians.
func PrintFig5(w io.Writer, res *userstudy.StudyResult) {
	fmt.Fprintln(w, "Figure 5: median user ratings (0-10) per condition")
	var t stats.Table
	t.AddRow("loss", "mode", "question", "min", "q1", "median", "q3", "max")
	for _, lr := range userstudy.LossRates {
		for _, ip := range []bool{false, true} {
			cond := userstudy.Condition{LossRate: lr, Interp: ip}
			mode := "without-interp"
			if ip {
				mode = "with-interp"
			}
			for _, q := range []struct {
				name string
				xs   []float64
			}{
				{"content(a)", res.MediansContent[cond]},
				{"text(b)", res.MediansText[cond]},
			} {
				b := stats.BoxplotOf(q.xs)
				t.AddRowf(fmt.Sprintf("%.0f%%", lr*100), mode, q.name,
					b.Min, b.Q1, b.Median, b.Q3, b.Max)
			}
		}
	}
	t.Render(w)
}

// --- §3.3 / §4 rate claim ------------------------------------------------------

// RateResult reports the profile's theoretical and measured goodput.
type RateResult struct {
	ProfileName    string
	RawBps         float64
	TransportBps   float64
	NetBps         float64
	MeasuredBps    float64
	MultiFreq2xBps float64
	MultiFreq4xBps float64
}

// RunRate computes net goodput and measures it by timing a real
// payload through the clean channel.
func RunRate(payloadBytes int) (*RateResult, error) {
	pipe, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res := &RateResult{
		ProfileName:  pipe.Modem().Profile().Name,
		RawBps:       pipe.Modem().Profile().RawBitRate(),
		TransportBps: pipe.TransportRateBps(),
		NetBps:       pipe.NetGoodputBps(),
	}
	// Measured: airtime for payloadBytes through the actual frame+modem
	// path (burst preamble amortized).
	frames := frame.Chunk(1, make([]byte, payloadBytes))
	stream, err := pipe.Codec().EncodeStream(frames)
	if err != nil {
		return nil, err
	}
	seconds := pipe.Modem().BurstDuration(len(stream))
	res.MeasuredBps = float64(payloadBytes*8) / seconds
	res.MultiFreq2xBps = 2 * res.MeasuredBps
	res.MultiFreq4xBps = 4 * res.MeasuredBps
	return res, nil
}

// PrintRate renders the rate table.
func PrintRate(w io.Writer, r *RateResult) {
	fmt.Fprintf(w, "Transmission rate (profile %s)\n", r.ProfileName)
	var t stats.Table
	t.AddRow("metric", "kbps")
	t.AddRowf("raw modem rate", r.RawBps/1000)
	t.AddRowf("FEC-coded transport rate (paper's 10kbps)", r.TransportBps/1000)
	t.AddRowf("net goodput (rs8+v29+framing)", r.NetBps/1000)
	t.AddRowf("measured delivery rate", r.MeasuredBps/1000)
	t.AddRowf("multi-frequency x2", r.MultiFreq2xBps/1000)
	t.AddRowf("multi-frequency x4", r.MultiFreq4xBps/1000)
	t.Render(w)
	fmt.Fprintln(w, "paper: \"a rate of 10kbps is sustainable\"; 20/40 kbps via multi-frequency")
}

// --- §2 related-work baseline -------------------------------------------------

// BaselineResult compares the FSK (GGwave-class) baseline with the OFDM
// profiles.
type BaselineResult struct {
	Rows []BaselineRow
}

// BaselineRow is one modem's delivery time for the probe payload.
type BaselineRow struct {
	Name       string
	PayloadB   int
	Seconds    float64
	GoodputBps float64
}

// RunBaseline times a payload through each modem over a clean channel.
func RunBaseline(payloadBytes int) (*BaselineResult, error) {
	res := &BaselineResult{}

	fsk := modem.NewFSK128()
	secs := fsk.BurstDuration(payloadBytes)
	res.Rows = append(res.Rows, BaselineRow{
		Name: "FSK-128 (GGwave class)", PayloadB: payloadBytes,
		Seconds: secs, GoodputBps: float64(payloadBytes*8) / secs,
	})
	for _, prof := range []modem.Profile{modem.Audible7k(), modem.Sonic92(), modem.Cable64k()} {
		m, err := modem.NewOFDM(prof)
		if err != nil {
			return nil, err
		}
		secs := m.BurstDuration(payloadBytes)
		res.Rows = append(res.Rows, BaselineRow{
			Name: "OFDM " + prof.Name, PayloadB: payloadBytes,
			Seconds: secs, GoodputBps: float64(payloadBytes*8) / secs,
		})
	}
	return res, nil
}

// PrintBaseline renders the comparison plus the paper's cited numbers.
func PrintBaseline(w io.Writer, res *BaselineResult) {
	fmt.Fprintln(w, "Data-over-sound baselines (§2), delivery of a fixed payload")
	var t stats.Table
	t.AddRow("modem", "payload(B)", "seconds", "goodput(bps)")
	for _, r := range res.Rows {
		t.AddRowf(r.Name, r.PayloadB, r.Seconds, r.GoodputBps)
	}
	t.Render(w)
	fmt.Fprintln(w, "paper-cited rates: chirp 15bps, NUC 16bps, BackDoor 4kbps, BatComm 47kbps, GGwave 128bps, Quiet ~7kbps OTA / 64kbps over cable")
}

// --- §3.2 compression claim -----------------------------------------------------

// CompressionResult quantifies page-weight vs broadcast-size.
type CompressionResult struct {
	Ratios []float64 // weight / encoded size per page
}

// RunCompression measures the ~10x claim over nPages corpus pages.
func RunCompression(nPages int) (*CompressionResult, error) {
	fig4b, err := RunFig4b(nPages)
	if err != nil {
		return nil, err
	}
	q10 := fig4b.Sizes["Q:10,PH:10k"]
	res := &CompressionResult{}
	for i := range q10 {
		res.Ratios = append(res.Ratios, fig4b.Weights[i]/q10[i])
	}
	return res, nil
}

// PrintCompression renders the ratio distribution.
func PrintCompression(w io.Writer, res *CompressionResult) {
	fmt.Fprintln(w, "Compression vs original page weight (§3.2, ~10x claimed)")
	b := stats.BoxplotOf(res.Ratios)
	fmt.Fprintf(w, "weight/encoded ratio: %s\n", b)
}

// --- ablations -------------------------------------------------------------------

// AblationRow is one variant's loss under the probe channel.
type AblationRow struct {
	Variant string
	Loss    float64 // fraction
}

// RunAblationFEC compares inner/outer FEC variants at a fixed audio SNR
// where the full stack survives and weaker stacks lose frames.
func RunAblationFEC(snrDB float64, framesPerTrial, trials int, seed int64) ([]AblationRow, error) {
	variants := []struct {
		name  string
		useRS bool
		inner *fec.ConvCode
	}{
		{"rs8+v29 (paper)", true, fec.NewV29()},
		{"rs8+v27", true, fec.NewV27()},
		{"rs8 only", true, nil},
		{"v29 only", false, fec.NewV29()},
		{"no FEC", false, nil},
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []AblationRow
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.UseRS = v.useRS
		cfg.InnerCode = v.inner
		pipe, err := core.NewPipeline(cfg)
		if err != nil {
			return nil, err
		}
		var total float64
		for trial := 0; trial < trials; trial++ {
			link := &fm.AWGNLink{SNRdB: snrDB, Rng: rand.New(rand.NewSource(rng.Int63()))}
			loss, err := pipe.FrameLossProbe(link, framesPerTrial)
			if err != nil {
				return nil, err
			}
			total += loss
		}
		rows = append(rows, AblationRow{Variant: v.name, Loss: total / float64(trials)})
	}
	return rows, nil
}

// RunAblationInterleaver compares RS block decoding under bursty byte
// corruption with and without a byte interleaver.
func RunAblationInterleaver(burstLen, bursts, trials int, seed int64) ([]AblationRow, error) {
	rs := fec.NewRS8()
	il, err := fec.NewInterleaver(16, 255)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	run := func(useIL bool) float64 {
		fails := 0
		for trial := 0; trial < trials; trial++ {
			msg := make([]byte, 223*16)
			rng.Read(msg)
			enc := rs.Encode(msg)
			padded, orig := il.Pad(enc)
			work := padded
			if useIL {
				work, _ = il.Interleave(padded)
			}
			// Bursty corruption.
			for b := 0; b < bursts; b++ {
				start := rng.Intn(len(work) - burstLen)
				for i := start; i < start+burstLen; i++ {
					work[i] ^= byte(1 + rng.Intn(255))
				}
			}
			if useIL {
				work, _ = il.Deinterleave(work)
			}
			if _, _, err := rs.Decode(work[:orig]); err != nil {
				fails++
			}
		}
		return float64(fails) / float64(trials)
	}
	return []AblationRow{
		{Variant: "bursty channel, no interleaver", Loss: run(false)},
		{Variant: "bursty channel, 16x255 interleaver", Loss: run(true)},
	}, nil
}

// RunAblationConstellation reports net goodput and loss per
// constellation at a fixed SNR.
func RunAblationConstellation(snrDB float64, framesPerTrial int, seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	rng := rand.New(rand.NewSource(seed))
	for _, bits := range []int{2, 4, 6, 8} {
		c, err := modem.ConstellationByBits(bits)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Modem.Constellation = c
		pipe, err := core.NewPipeline(cfg)
		if err != nil {
			return nil, err
		}
		link := &fm.AWGNLink{SNRdB: snrDB, Rng: rand.New(rand.NewSource(rng.Int63()))}
		loss, err := pipe.FrameLossProbe(link, framesPerTrial)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("%s (net %.1f kbps)", c.Name(), pipe.NetGoodputBps()/1000),
			Loss:    loss,
		})
	}
	return rows, nil
}

// RunAblationPartitioning compares post-interpolation damage for the
// paper's vertical 1-px strips vs row-major chunking, and left-first vs
// top-first interpolation priority.
func RunAblationPartitioning(lossRate float64, seed int64) ([]AblationRow, error) {
	rendered := webrender.Render(corpus.Generate(corpus.Pages()[0], 0))
	img := rendered.Image.Crop(2500)
	rng := rand.New(rand.NewSource(seed))

	measure := func(damaged *imagecodec.Raster, missing []bool, top bool) float64 {
		work := damaged.Clone()
		if top {
			interp.InterpolateTopPriority(work, missing)
		} else {
			interp.Interpolate(work, missing)
		}
		return interp.Damage(img, work, missing, rendered.TextRow).OverallDamage
	}

	vd, vm := interp.SyntheticLoss(img, lossRate, 40, rng)
	hd, hm := interp.SyntheticLossRows(img, lossRate, 40, rng)
	rows := []AblationRow{
		{Variant: "vertical strips + left-first (paper)", Loss: measure(vd, vm, false)},
		{Variant: "vertical strips + top-first", Loss: measure(vd, vm, true)},
		{Variant: "row chunks + left-first", Loss: measure(hd, hm, false)},
		{Variant: "row chunks + top-first", Loss: measure(hd, hm, true)},
	}
	return rows, nil
}

// RunAblationSoftDecision compares hard- and soft-decision inner
// decoding at SNRs bracketing the frame-loss cliff.
func RunAblationSoftDecision(framesPerTrial, trials int, seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, snrDB := range []float64{10, 9, 8} {
		for _, soft := range []bool{false, true} {
			cfg := core.DefaultConfig()
			cfg.SoftDecision = soft
			pipe, err := core.NewPipeline(cfg)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			var total float64
			for trial := 0; trial < trials; trial++ {
				link := &fm.AWGNLink{SNRdB: snrDB, Rng: rand.New(rand.NewSource(rng.Int63()))}
				loss, err := pipe.FrameLossProbe(link, framesPerTrial)
				if err != nil {
					return nil, err
				}
				total += loss
			}
			mode := "hard"
			if soft {
				mode = "soft"
			}
			rows = append(rows, AblationRow{
				Variant: fmt.Sprintf("%s-decision @%0.f dB", mode, snrDB),
				Loss:    total / float64(trials),
			})
		}
	}
	return rows, nil
}

// RunAblationCarousel compares the flat and sqrt(demand*size) carousel
// policies for the preemptive-push rotation (§3.1), reporting the
// demand-weighted expected wait at each channel rate.
func RunAblationCarousel() ([]AblationRow, error) {
	size := func(ref corpus.PageRef, hour int) int { return modelSize(ref.URL) }
	var rows []AblationRow
	for _, rate := range []float64{10000, 20000, 40000} {
		flat, opt, err := broadcast.CompareCarouselPolicies(corpus.Pages(), size, rate)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			AblationRow{Variant: fmt.Sprintf("flat carousel @%.0fkbps (wait s)", rate/1000), Loss: flat},
			AblationRow{Variant: fmt.Sprintf("sqrt carousel @%.0fkbps (wait s)", rate/1000), Loss: opt},
		)
	}
	return rows, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	var t stats.Table
	t.AddRow("variant", "loss/damage")
	for _, r := range rows {
		t.AddRow(r.Variant, fmt.Sprintf("%.4f", r.Loss))
	}
	t.Render(w)
}

// --- Figure 1: visual loss demo ----------------------------------------------

// Fig1Result carries the three panels and their damage metrics.
type Fig1Result struct {
	Original     *imagecodec.Raster
	Lossy        *imagecodec.Raster
	Interpolated *imagecodec.Raster
	RawDamage    interp.DamageReport
	HealedDamage interp.DamageReport
}

// RunFig1 reproduces Figure 1: a page delivered intact, with 10% frame
// losses, and with the losses pixel-interpolated.
func RunFig1(viewH int, seed int64) *Fig1Result {
	rendered := webrender.Render(corpus.Generate(corpus.Pages()[0], 0))
	img := rendered.Image.Crop(viewH)
	rng := rand.New(rand.NewSource(seed))
	lossy, missing := interp.SyntheticLoss(img, 0.10, 40, rng)
	healed := lossy.Clone()
	interp.Interpolate(healed, missing)
	return &Fig1Result{
		Original:     img,
		Lossy:        lossy,
		Interpolated: healed,
		RawDamage:    interp.Damage(img, lossy, missing, rendered.TextRow),
		HealedDamage: interp.Damage(img, healed, missing, rendered.TextRow),
	}
}

// PrintFig1 renders the damage metrics.
func PrintFig1(w io.Writer, r *Fig1Result) {
	fmt.Fprintln(w, "Figure 1: page at 10% frame loss, with and without interpolation")
	var t stats.Table
	t.AddRow("panel", "pixel loss", "overall damage", "text damage")
	t.AddRowf("no loss", 0.0, 0.0, 0.0)
	t.AddRowf("10% loss", r.RawDamage.PixelLossRate, r.RawDamage.OverallDamage, r.RawDamage.TextDamage)
	t.AddRowf("10% + interp", r.HealedDamage.PixelLossRate, r.HealedDamage.OverallDamage, r.HealedDamage.TextDamage)
	t.Render(w)
}

// SortedKeys is a small helper for deterministic map printing.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
