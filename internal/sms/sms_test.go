package sms

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestGSM7RoundTrip(t *testing.T) {
	for _, s := range []string{
		"GET khabar.pk/ LOC 24.8607,67.0011",
		"hello WORLD 123 !?()",
		"a",
	} {
		got := FromSeptets(ToSeptets(s))
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestGSM7Substitution(t *testing.T) {
	got := FromSeptets(ToSeptets("emoji \U0001F600 end"))
	if got != "emoji ? end" {
		t.Errorf("got %q", got)
	}
}

func TestPackUnpack(t *testing.T) {
	sept := ToSeptets("hello gsm packing")
	packed := Pack(sept)
	// 7 bits per septet: packed length must be ceil(n*7/8).
	want := (len(sept)*7 + 7) / 8
	if len(packed) != want {
		t.Errorf("packed %d bytes, want %d", len(packed), want)
	}
	got := Unpack(packed, len(sept))
	if FromSeptets(got) != "hello gsm packing" {
		t.Errorf("unpack mismatch: %q", FromSeptets(got))
	}
}

func TestPackUnpackQuick(t *testing.T) {
	f := func(raw []byte) bool {
		sept := make([]byte, len(raw))
		for i, b := range raw {
			sept[i] = b & 0x7F
		}
		got := Unpack(Pack(sept), len(sept))
		if len(got) != len(sept) {
			return false
		}
		for i := range sept {
			if got[i] != sept[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSegment(t *testing.T) {
	short := strings.Repeat("a", 160)
	parts, err := Segment(short)
	if err != nil || len(parts) != 1 {
		t.Errorf("160 septets should be a single SMS, got %d parts (%v)", len(parts), err)
	}
	long := strings.Repeat("b", 161)
	parts, err = Segment(long)
	if err != nil || len(parts) != 2 {
		t.Fatalf("161 septets should be 2 parts, got %d (%v)", len(parts), err)
	}
	if len(parts[0]) != ConcatLimit {
		t.Errorf("part 0 has %d septets, want %d", len(parts[0]), ConcatLimit)
	}
	if Join(parts) != long {
		t.Error("join mismatch")
	}
	if _, err := Segment(""); err != ErrUnencodable {
		t.Errorf("empty message err = %v", err)
	}
}

func TestSeptetLen(t *testing.T) {
	if SeptetLen("abc") != 3 {
		t.Errorf("SeptetLen = %d", SeptetLen("abc"))
	}
}

func TestSMSCDeliveryOrderAndLatency(t *testing.T) {
	smsc := NewSMSC(2*time.Second, 8*time.Second, 1)
	var got []Message
	smsc.Register("+92300SONIC", func(m Message) { got = append(got, m) })
	t0 := time.Unix(0, 0)
	if err := smsc.Submit(t0, "+92301", "+92300SONIC", "GET a.pk/ LOC 1,2"); err != nil {
		t.Fatal(err)
	}
	if err := smsc.Submit(t0, "+92302", "+92300SONIC", "GET b.pk/ LOC 1,2"); err != nil {
		t.Fatal(err)
	}
	if smsc.Pending() != 2 {
		t.Fatalf("pending = %d", smsc.Pending())
	}
	// Nothing delivered before the minimum latency.
	if n := smsc.Advance(t0.Add(1 * time.Second)); n != 0 {
		t.Errorf("early delivery of %d messages", n)
	}
	// Everything delivered by the max latency.
	n := smsc.Advance(t0.Add(9 * time.Second))
	if n != 2 || len(got) != 2 {
		t.Fatalf("delivered %d, handler saw %d", n, len(got))
	}
	for _, m := range got {
		lat := m.DeliverAt.Sub(m.SubmitAt)
		if lat < 2*time.Second || lat > 8*time.Second {
			t.Errorf("latency %v out of range", lat)
		}
	}
	sub, del := smsc.Stats()
	if sub != 2 || del != 2 {
		t.Errorf("stats = %d,%d", sub, del)
	}
}

func TestSMSCUnknownSubscriber(t *testing.T) {
	smsc := NewSMSC(time.Second, time.Second, 2)
	if err := smsc.Submit(time.Now(), "a", "nobody", "hi"); err == nil {
		t.Error("unknown subscriber should fail")
	}
}

func TestSMSCHandlerCanReply(t *testing.T) {
	smsc := NewSMSC(time.Second, time.Second, 3)
	var userGot []string
	smsc.Register("+USER", func(m Message) { userGot = append(userGot, m.Body) })
	smsc.Register("+SONIC", func(m Message) {
		// Server acks from within the delivery callback (must not deadlock).
		_ = smsc.Submit(m.DeliverAt, "+SONIC", "+USER", FormatAck("a.pk/", 90*time.Second))
	})
	t0 := time.Unix(100, 0)
	if err := smsc.Submit(t0, "+USER", "+SONIC", "GET a.pk/ LOC 1,2"); err != nil {
		t.Fatal(err)
	}
	smsc.Advance(t0.Add(time.Second))
	smsc.Advance(t0.Add(2 * time.Second))
	if len(userGot) != 1 {
		t.Fatalf("user got %d messages", len(userGot))
	}
	url, eta, err := ParseAck(userGot[0])
	if err != nil || url != "a.pk/" || eta != 90*time.Second {
		t.Errorf("ack = %q %v %v", url, eta, err)
	}
}

func TestRequestGrammar(t *testing.T) {
	r := Request{URL: "cnn.com/index.html", Lat: 24.8607, Lon: 67.0011}
	body := FormatRequest(r)
	if SeptetLen(body) > SingleLimit {
		t.Errorf("request %q does not fit one SMS", body)
	}
	got, err := ParseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.URL != r.URL || got.Lat != 24.8607 || got.Lon != 67.0011 {
		t.Errorf("parsed %+v", got)
	}
	for _, bad := range []string{
		"", "GET", "GET url", "GET url LOC", "GET url LOC abc",
		"GET url LOC 1", "POST url LOC 1,2", "GET url XXX 1,2",
	} {
		if _, err := ParseRequest(bad); err == nil {
			t.Errorf("ParseRequest(%q) should fail", bad)
		}
	}
}

func TestAckGrammar(t *testing.T) {
	for _, bad := range []string{"", "QUEUED", "QUEUED u ETA", "QUEUED u ETA x", "NOPE u ETA 5"} {
		if _, _, err := ParseAck(bad); err == nil {
			t.Errorf("ParseAck(%q) should fail", bad)
		}
	}
}

func TestBusyGrammar(t *testing.T) {
	body := FormatBusy("cnn.com/index.html", 30*time.Second)
	if SeptetLen(body) > SingleLimit {
		t.Errorf("busy reply %q does not fit one SMS", body)
	}
	url, retry, err := ParseBusy(body)
	if err != nil || url != "cnn.com/index.html" || retry != 30*time.Second {
		t.Errorf("busy = %q %v %v", url, retry, err)
	}
	for _, bad := range []string{"", "BUSY", "BUSY u RETRY", "BUSY u RETRY x", "BUSY u RETRY -1", "QUEUED u RETRY 5"} {
		if _, _, err := ParseBusy(bad); err == nil {
			t.Errorf("ParseBusy(%q) should fail", bad)
		}
	}
}
