package sms

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSemiOctets(t *testing.T) {
	b, err := encodeSemiOctets("923001234567")
	if err != nil {
		t.Fatal(err)
	}
	if decodeSemiOctets(b, 12) != "923001234567" {
		t.Error("even-length round trip failed")
	}
	b, err = encodeSemiOctets("92300123456")
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1]>>4 != 0xF {
		t.Error("odd length should pad with F")
	}
	if decodeSemiOctets(b, 11) != "92300123456" {
		t.Error("odd-length round trip failed")
	}
	if _, err := encodeSemiOctets("92x"); err == nil {
		t.Error("non-digit should fail")
	}
}

func TestSinglePDURoundTrip(t *testing.T) {
	in := PDU{Dest: "923001234567", Text: "GET khabar.pk/ LOC 24.8607,67.0011"}
	raw, err := EncodePDU(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dest != in.Dest || got.Text != in.Text {
		t.Errorf("round trip: %+v", got)
	}
	if got.Total != 0 {
		t.Error("standalone PDU should have no concat info")
	}
}

func TestConcatPDURoundTrip(t *testing.T) {
	in := PDU{
		Dest: "92300", Text: strings.Repeat("x", 153),
		Ref: 42, Total: 3, Seq: 2,
	}
	raw, err := EncodePDU(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != 42 || got.Total != 3 || got.Seq != 2 {
		t.Errorf("concat fields: %+v", got)
	}
	if got.Text != in.Text {
		t.Errorf("text mismatch: %d vs %d chars", len(got.Text), len(in.Text))
	}
}

func TestEncodePDUValidation(t *testing.T) {
	if _, err := EncodePDU(PDU{Dest: "92300", Text: ""}); err == nil {
		t.Error("empty text should fail")
	}
	if _, err := EncodePDU(PDU{Dest: "", Text: "x"}); err == nil {
		t.Error("empty destination should fail")
	}
	if _, err := EncodePDU(PDU{Dest: "92300", Text: strings.Repeat("a", 161)}); err == nil {
		t.Error("oversized single PDU should fail")
	}
	if _, err := EncodePDU(PDU{Dest: "92300", Text: strings.Repeat("a", 154), Total: 2, Seq: 1}); err == nil {
		t.Error("oversized concat part should fail")
	}
}

func TestDecodePDURejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2}, {0x00, 0, 0, 0, 0, 0}, {0x41, 0, 5, 0x91}} {
		if _, err := DecodePDU(b); err == nil {
			t.Errorf("garbage %v decoded", b)
		}
	}
}

func TestEncodeConcatPDUsAndJoin(t *testing.T) {
	text := strings.Repeat("sonic uplink request payload ", 12) // > 160 septets
	pdus, err := EncodeConcatPDUs("923001112223", text, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pdus) < 2 {
		t.Fatalf("expected multiple parts, got %d", len(pdus))
	}
	// Out-of-order join.
	shuffled := [][]byte{pdus[len(pdus)-1]}
	shuffled = append(shuffled, pdus[:len(pdus)-1]...)
	dest, got, err := JoinConcatPDUs(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if dest != "923001112223" || got != text {
		t.Errorf("join mismatch: dest=%q textlen=%d", dest, len(got))
	}
	// Missing part.
	if _, _, err := JoinConcatPDUs(pdus[:len(pdus)-1]); err == nil {
		t.Error("incomplete set should fail")
	}
	// Single short message passes through.
	one, err := EncodeConcatPDUs("92300", "short", 9)
	if err != nil || len(one) != 1 {
		t.Fatalf("short message: %d pdus, %v", len(one), err)
	}
	d, txt, err := JoinConcatPDUs(one)
	if err != nil || d != "92300" || txt != "short" {
		t.Errorf("single join: %q %q %v", d, txt, err)
	}
}

func TestPDUQuickRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Build GSM-7-safe text from arbitrary bytes.
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 150 {
			raw = raw[:150]
		}
		sept := make([]byte, len(raw))
		for i, b := range raw {
			sept[i] = b & 0x7F
		}
		text := FromSeptets(sept)
		in := PDU{Dest: "92300123", Text: text}
		enc, err := EncodePDU(in)
		if err != nil {
			return false
		}
		got, err := DecodePDU(enc)
		return err == nil && got.Text == text && got.Dest == in.Dest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
