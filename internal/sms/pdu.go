package sms

import (
	"errors"
	"fmt"
)

// PDU-mode encoding of SMS messages (GSM 03.40 TPDU, simplified to the
// fields SONIC's uplink exercises): SMS-SUBMIT with a semi-octet
// destination address, 7-bit default-alphabet user data, and an optional
// User Data Header carrying the 8-bit concatenation IE. This is the
// wire format a real GSM modem would be fed; the SMSC simulator speaks
// strings, and this layer converts between the two.

// TPDU field constants.
const (
	mtiSubmit        = 0x01
	udhiFlag         = 0x40
	tonInternational = 0x91
	concatIEI        = 0x00
	concatIELen      = 3
)

// PDU is one decoded SMS-SUBMIT.
type PDU struct {
	Dest string // destination number, digits only (international form)
	Text string
	// Concatenation info; Total == 0 means a standalone message.
	Ref, Total, Seq byte
}

// encodeSemiOctets packs a digit string into swapped semi-octets,
// padding odd lengths with 0xF.
func encodeSemiOctets(digits string) ([]byte, error) {
	out := make([]byte, 0, (len(digits)+1)/2)
	var cur byte
	for i, d := range digits {
		if d < '0' || d > '9' {
			return nil, fmt.Errorf("sms: non-digit %q in address", d)
		}
		v := byte(d - '0')
		if i%2 == 0 {
			cur = v
		} else {
			out = append(out, cur|v<<4)
		}
	}
	if len(digits)%2 == 1 {
		out = append(out, cur|0xF0)
	}
	return out, nil
}

// decodeSemiOctets reverses encodeSemiOctets for n digits.
func decodeSemiOctets(b []byte, n int) string {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		v := b[i/2]
		if i%2 == 1 {
			v >>= 4
		}
		out = append(out, '0'+v&0x0F)
	}
	return string(out)
}

// EncodePDU serializes one SMS-SUBMIT TPDU. Text longer than one SMS
// must be segmented first (Segment) and encoded per part with the
// concatenation fields set.
func EncodePDU(p PDU) ([]byte, error) {
	septets := ToSeptets(p.Text)
	limit := SingleLimit
	if p.Total > 0 {
		limit = ConcatLimit
	}
	if len(septets) == 0 || len(septets) > limit {
		return nil, fmt.Errorf("sms: %d septets does not fit a %s PDU",
			len(septets), map[bool]string{true: "concatenated", false: "single"}[p.Total > 0])
	}
	digits := p.Dest
	if digits == "" {
		return nil, errors.New("sms: empty destination")
	}
	addr, err := encodeSemiOctets(digits)
	if err != nil {
		return nil, err
	}

	var out []byte
	fo := byte(mtiSubmit)
	if p.Total > 0 {
		fo |= udhiFlag
	}
	out = append(out, fo)
	out = append(out, 0x00) // TP-MR (message reference, set by the modem)
	out = append(out, byte(len(digits)), tonInternational)
	out = append(out, addr...)
	out = append(out, 0x00) // TP-PID
	out = append(out, 0x00) // TP-DCS: 7-bit default alphabet

	if p.Total > 0 {
		// UDH: length(1) + IEI(1) + IELen(1) + ref,total,seq. The UDH
		// occupies 7 septets of the user data budget (6 octets rounded
		// up), so the text septets start at a septet boundary after it.
		udh := []byte{0x05, concatIEI, concatIELen, p.Ref, p.Total, p.Seq}
		udl := 7 + len(septets) // septet count including the UDH shadow
		out = append(out, byte(udl))
		out = append(out, udh...)
		// The 6-octet UDH occupies 48 bits; text septets start at bit 49
		// (7 septets in). Pack with 7 leading zero septets so the text
		// lands with the correct 1-bit fill, then emit from octet 6.
		padded := append(make([]byte, 7), septets...)
		packed := Pack(padded)
		out = append(out, packed[6:]...)
	} else {
		out = append(out, byte(len(septets)))
		out = append(out, Pack(septets)...)
	}
	return out, nil
}

// ErrBadPDU is returned for malformed TPDUs.
var ErrBadPDU = errors.New("sms: malformed PDU")

// DecodePDU parses an SMS-SUBMIT TPDU produced by EncodePDU.
func DecodePDU(b []byte) (PDU, error) {
	var p PDU
	if len(b) < 6 {
		return p, ErrBadPDU
	}
	fo := b[0]
	if fo&0x03 != mtiSubmit {
		return p, fmt.Errorf("%w: not SMS-SUBMIT", ErrBadPDU)
	}
	hasUDH := fo&udhiFlag != 0
	i := 2 // skip TP-MR
	if i >= len(b) {
		return p, ErrBadPDU
	}
	addrDigits := int(b[i])
	i += 2 // length + type-of-address
	addrBytes := (addrDigits + 1) / 2
	if i+addrBytes+3 > len(b) {
		return p, ErrBadPDU
	}
	p.Dest = decodeSemiOctets(b[i:i+addrBytes], addrDigits)
	i += addrBytes
	i += 2 // PID + DCS
	udl := int(b[i])
	i++
	ud := b[i:]

	if hasUDH {
		if len(ud) < 6 || ud[0] != 0x05 || ud[1] != concatIEI || ud[2] != concatIELen {
			return p, fmt.Errorf("%w: bad UDH", ErrBadPDU)
		}
		p.Ref, p.Total, p.Seq = ud[3], ud[4], ud[5]
		nText := udl - 7
		if nText < 0 {
			return p, ErrBadPDU
		}
		// Reconstruct the packed stream with the UDH's 6 octets zeroed so
		// Unpack sees the same alignment Pack produced.
		packed := append(make([]byte, 6), ud[6:]...)
		septets := Unpack(packed, 7+nText)
		if len(septets) < 7+nText {
			return p, ErrBadPDU
		}
		p.Text = FromSeptets(septets[7:])
	} else {
		septets := Unpack(ud, udl)
		if len(septets) < udl {
			return p, ErrBadPDU
		}
		p.Text = FromSeptets(septets)
	}
	return p, nil
}

// EncodeConcatPDUs segments text and encodes one PDU per part with a
// shared reference number.
func EncodeConcatPDUs(dest, text string, ref byte) ([][]byte, error) {
	parts, err := Segment(text)
	if err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		pdu, err := EncodePDU(PDU{Dest: dest, Text: parts[0]})
		if err != nil {
			return nil, err
		}
		return [][]byte{pdu}, nil
	}
	out := make([][]byte, 0, len(parts))
	for i, part := range parts {
		pdu, err := EncodePDU(PDU{
			Dest: dest, Text: part,
			Ref: ref, Total: byte(len(parts)), Seq: byte(i + 1),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pdu)
	}
	return out, nil
}

// JoinConcatPDUs decodes and reassembles a full set of concatenated
// PDUs (any order); standalone single PDUs pass through.
func JoinConcatPDUs(pdus [][]byte) (dest, text string, err error) {
	if len(pdus) == 0 {
		return "", "", ErrBadPDU
	}
	decoded := make([]PDU, len(pdus))
	for i, raw := range pdus {
		p, err := DecodePDU(raw)
		if err != nil {
			return "", "", err
		}
		decoded[i] = p
	}
	if decoded[0].Total == 0 {
		if len(decoded) != 1 {
			return "", "", fmt.Errorf("%w: multiple standalone PDUs", ErrBadPDU)
		}
		return decoded[0].Dest, decoded[0].Text, nil
	}
	total := int(decoded[0].Total)
	if len(decoded) != total {
		return "", "", fmt.Errorf("%w: have %d of %d parts", ErrBadPDU, len(decoded), total)
	}
	parts := make([]string, total)
	for _, p := range decoded {
		if p.Ref != decoded[0].Ref || int(p.Total) != total ||
			p.Seq < 1 || int(p.Seq) > total || parts[p.Seq-1] != "" {
			return "", "", fmt.Errorf("%w: inconsistent concatenation set", ErrBadPDU)
		}
		parts[p.Seq-1] = p.Text
	}
	return decoded[0].Dest, Join(parts), nil
}
