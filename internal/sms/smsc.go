package sms

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Message is one SMS in flight.
type Message struct {
	From, To string
	Body     string
	// SubmitAt and DeliverAt are simulation timestamps.
	SubmitAt  time.Time
	DeliverAt time.Time
}

// Handler consumes delivered messages.
type Handler func(Message)

// SMSC is a simulated Short Message Service Center: store-and-forward
// with per-message latency. SONIC's uplink rides on it. The zero value is
// not usable; construct with NewSMSC.
type SMSC struct {
	mu        sync.Mutex
	rng       *rand.Rand
	minDelay  time.Duration
	maxDelay  time.Duration
	handlers  map[string]Handler
	queue     []Message
	delivered int
	submitted int
}

// NewSMSC builds a center whose deliveries take [minDelay, maxDelay]
// (uniform). The paper's workflow expects "potentially seconds in uplink".
func NewSMSC(minDelay, maxDelay time.Duration, seed int64) *SMSC {
	if maxDelay < minDelay {
		maxDelay = minDelay
	}
	return &SMSC{
		rng:      rand.New(rand.NewSource(seed)),
		minDelay: minDelay,
		maxDelay: maxDelay,
		handlers: make(map[string]Handler),
	}
}

// Register attaches the handler for a phone number.
func (s *SMSC) Register(number string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[number] = h
}

// Submit queues a message at the given simulation time. Long bodies are
// segmented and re-joined on delivery, adding one latency draw per part
// (the longest part dominates).
func (s *SMSC) Submit(now time.Time, from, to, body string) error {
	parts, err := Segment(body)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handlers[to]; !ok {
		return fmt.Errorf("sms: no such subscriber %q", to)
	}
	var worst time.Duration
	for range parts {
		d := s.minDelay + time.Duration(s.rng.Int63n(int64(s.maxDelay-s.minDelay)+1))
		if d > worst {
			worst = d
		}
	}
	s.queue = append(s.queue, Message{
		From: from, To: to, Body: body,
		SubmitAt: now, DeliverAt: now.Add(worst),
	})
	s.submitted++
	return nil
}

// Advance delivers every queued message due at or before now, in
// delivery-time order, and returns how many were delivered.
func (s *SMSC) Advance(now time.Time) int {
	s.mu.Lock()
	var due []Message
	var rest []Message
	for _, m := range s.queue {
		if !m.DeliverAt.After(now) {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	s.queue = rest
	handlers := make([]Handler, len(due))
	sort.Slice(due, func(i, j int) bool { return due[i].DeliverAt.Before(due[j].DeliverAt) })
	for i, m := range due {
		handlers[i] = s.handlers[m.To]
	}
	s.delivered += len(due)
	s.mu.Unlock()
	// Deliver outside the lock: handlers may submit replies.
	for i, m := range due {
		if handlers[i] != nil {
			handlers[i](m)
		}
	}
	return len(due)
}

// Pending returns the number of undelivered messages.
func (s *SMSC) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats returns lifetime (submitted, delivered) counts.
func (s *SMSC) Stats() (submitted, delivered int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted, s.delivered
}

// --- SONIC message grammar -------------------------------------------------
//
// Request:  GET <url> LOC <lat>,<lon>
// Ack:      QUEUED <url> ETA <seconds>
// Busy:     BUSY <url> RETRY <seconds>
// Error:    ERR <reason>

// Request is a parsed SONIC page request.
type Request struct {
	URL      string
	Lat, Lon float64
}

// ErrBadRequest is returned for malformed request bodies.
var ErrBadRequest = errors.New("sms: malformed SONIC request")

// FormatRequest renders a request body.
func FormatRequest(r Request) string {
	return fmt.Sprintf("GET %s LOC %.4f,%.4f", r.URL, r.Lat, r.Lon)
}

// ParseRequest parses a request body.
func ParseRequest(body string) (Request, error) {
	fields := strings.Fields(body)
	if len(fields) != 4 || fields[0] != "GET" || fields[2] != "LOC" {
		return Request{}, ErrBadRequest
	}
	ll := strings.SplitN(fields[3], ",", 2)
	if len(ll) != 2 {
		return Request{}, ErrBadRequest
	}
	lat, err1 := strconv.ParseFloat(ll[0], 64)
	lon, err2 := strconv.ParseFloat(ll[1], 64)
	if err1 != nil || err2 != nil {
		return Request{}, ErrBadRequest
	}
	return Request{URL: fields[1], Lat: lat, Lon: lon}, nil
}

// FormatAck renders the server's acknowledgement (§3.1: "quickly responds
// to the user via SMS to acknowledge the request, and provide an estimate
// on when the page will be received").
func FormatAck(url string, eta time.Duration) string {
	return fmt.Sprintf("QUEUED %s ETA %d", url, int(eta.Seconds()))
}

// ParseAck parses an acknowledgement body.
func ParseAck(body string) (url string, eta time.Duration, err error) {
	fields := strings.Fields(body)
	if len(fields) != 4 || fields[0] != "QUEUED" || fields[2] != "ETA" {
		return "", 0, ErrBadRequest
	}
	secs, err := strconv.Atoi(fields[3])
	if err != nil || secs < 0 {
		return "", 0, ErrBadRequest
	}
	return fields[1], time.Duration(secs) * time.Second, nil
}

// FormatBusy renders the server's backpressure reply: the admission
// queue for the user's region is saturated, try again after the hint.
func FormatBusy(url string, retry time.Duration) string {
	return fmt.Sprintf("BUSY %s RETRY %d", url, int(retry.Seconds()))
}

// ParseBusy parses a backpressure reply body.
func ParseBusy(body string) (url string, retry time.Duration, err error) {
	fields := strings.Fields(body)
	if len(fields) != 4 || fields[0] != "BUSY" || fields[2] != "RETRY" {
		return "", 0, ErrBadRequest
	}
	secs, err := strconv.Atoi(fields[3])
	if err != nil || secs < 0 {
		return "", 0, ErrBadRequest
	}
	return fields[1], time.Duration(secs) * time.Second, nil
}
