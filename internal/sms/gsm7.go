// Package sms implements SONIC's uplink (§3.1): users with an SMS
// subscription request webpages by texting a SONIC number with the URL
// and their location; the server acknowledges with a delivery estimate.
// The package provides the GSM 03.38 7-bit alphabet codec, septet
// packing, concatenated-message segmentation (160 septets per single
// SMS, 153 per concatenated part), the SONIC request/ack message grammar,
// and an in-memory SMSC with configurable delivery latency.
package sms

import (
	"errors"
	"strings"
)

// gsm7Alphabet is the GSM 03.38 default alphabet, indexed by septet
// value. Only the characters SONIC's grammar needs are mapped faithfully;
// everything else round-trips through '?' like a real constrained handset.
var gsm7Alphabet = []rune{
	'@', '£', '$', '¥', 'è', 'é', 'ù', 'ì', 'ò', 'Ç', '\n', 'Ø', 'ø', '\r', 'Å', 'å',
	'Δ', '_', 'Φ', 'Γ', 'Λ', 'Ω', 'Π', 'Ψ', 'Σ', 'Θ', 'Ξ', '\x1b', 'Æ', 'æ', 'ß', 'É',
	' ', '!', '"', '#', '¤', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/',
	'0', '1', '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?',
	'¡', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O',
	'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', 'Ä', 'Ö', 'Ñ', 'Ü', '§',
	'¿', 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o',
	'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'ä', 'ö', 'ñ', 'ü', 'à',
}

var gsm7Index = func() map[rune]byte {
	m := make(map[rune]byte, len(gsm7Alphabet))
	for i, r := range gsm7Alphabet {
		m[r] = byte(i)
	}
	return m
}()

// SMS size limits (septets).
const (
	SingleLimit = 160
	ConcatLimit = 153 // 160 minus the 7-septet UDH shadow
	// MaxConcatParts bounds a concatenated message (1 byte reference).
	MaxConcatParts = 255
)

// ErrUnencodable is returned when text has no GSM-7 representation at
// all (after '?' substitution nothing remains).
var ErrUnencodable = errors.New("sms: text not encodable in GSM-7")

// ToSeptets converts text to GSM-7 septet values, substituting '?' for
// unsupported runes (as constrained SMS stacks do).
func ToSeptets(text string) []byte {
	out := make([]byte, 0, len(text))
	for _, r := range text {
		v, ok := gsm7Index[r]
		if !ok {
			v = gsm7Index['?']
		}
		out = append(out, v)
	}
	return out
}

// FromSeptets converts septet values back to text.
func FromSeptets(septets []byte) string {
	var b strings.Builder
	for _, s := range septets {
		if int(s) < len(gsm7Alphabet) {
			b.WriteRune(gsm7Alphabet[s])
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}

// Pack packs septets into octets (GSM 03.38 packing: 8 septets per 7
// octets, LSB first).
func Pack(septets []byte) []byte {
	out := make([]byte, 0, (len(septets)*7+7)/8)
	var acc uint
	var bits uint
	for _, s := range septets {
		acc |= uint(s&0x7F) << bits
		bits += 7
		for bits >= 8 {
			out = append(out, byte(acc&0xFF))
			acc >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		out = append(out, byte(acc&0xFF))
	}
	return out
}

// Unpack reverses Pack. n is the number of septets to extract (packing is
// ambiguous about trailing zero septets without it).
func Unpack(octets []byte, n int) []byte {
	out := make([]byte, 0, n)
	var acc uint
	var bits uint
	for _, o := range octets {
		acc |= uint(o) << bits
		bits += 8
		for bits >= 7 && len(out) < n {
			out = append(out, byte(acc&0x7F))
			acc >>= 7
			bits -= 7
		}
	}
	return out
}

// Segment splits text into SMS parts: one part if it fits in 160
// septets, otherwise concatenated parts of 153 septets each.
func Segment(text string) ([]string, error) {
	septets := ToSeptets(text)
	if len(septets) == 0 {
		return nil, ErrUnencodable
	}
	if len(septets) <= SingleLimit {
		return []string{FromSeptets(septets)}, nil
	}
	var parts []string
	for off := 0; off < len(septets); off += ConcatLimit {
		end := off + ConcatLimit
		if end > len(septets) {
			end = len(septets)
		}
		parts = append(parts, FromSeptets(septets[off:end]))
	}
	if len(parts) > MaxConcatParts {
		return nil, errors.New("sms: message exceeds 255 concatenated parts")
	}
	return parts, nil
}

// Join reassembles segmented parts.
func Join(parts []string) string {
	return strings.Join(parts, "")
}

// SeptetLen returns the septet length of text (what the carrier bills).
func SeptetLen(text string) int {
	return len(ToSeptets(text))
}
