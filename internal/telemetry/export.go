package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sonic/internal/stats"
)

// Snapshot is a consistent-enough point-in-time copy of every registered
// metric (individual values are read atomically; the set is collected
// under a read lock). It marshals directly to JSON.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// HistogramSnapshot is one histogram's state.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	P50     float64  `json:"p50"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket: the count of samples at or below Le
// (exclusive of lower buckets). Le is "+Inf" for the overflow bucket —
// kept as a string so the snapshot marshals cleanly.
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// SpanSnapshot summarizes one span name.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	SelfSeconds  float64 `json:"self_seconds"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
}

func histSnapshot(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if hs.Count > 0 {
		hs.P50, hs.P99 = h.Quantile(0.5), h.Quantile(0.99)
	}
	for i := range h.counts {
		n := atomic.LoadInt64(&h.counts[i])
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%g", h.bounds[i])
		}
		hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
	}
	return hs
}

// Snapshot captures the current state of every metric. Returns a zero
// snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return snap
	}
	snap.TakenAt = r.now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, c := range r.counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		snap.Histograms[k] = histSnapshot(h)
	}
	for k, s := range r.spans {
		hs := histSnapshot(s.dur)
		snap.Spans[k] = SpanSnapshot{
			Count:        atomic.LoadInt64(&s.count),
			TotalSeconds: s.dur.Sum(),
			SelfSeconds:  math.Float64frombits(atomic.LoadUint64(&s.selfBits)),
			P50Seconds:   hs.P50,
			P99Seconds:   hs.P99,
		}
	}
	return snap
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the snapshot as fixed-width tables (the same
// renderer the bench harness uses for the paper's tables).
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# SONIC telemetry snapshot @ %s\n", s.TakenAt.Format(time.RFC3339))

	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "\n## counters")
		var t stats.Table
		t.AddRow("counter", "value")
		for _, k := range sortedKeys(s.Counters) {
			t.AddRowf(k, s.Counters[k])
		}
		t.Render(w)
	}

	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "\n## gauges")
		var t stats.Table
		t.AddRow("gauge", "value")
		for _, k := range sortedKeys(s.Gauges) {
			t.AddRowf(k, fmt.Sprintf("%.4g", s.Gauges[k]))
		}
		t.Render(w)
	}

	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "\n## histograms")
		var t stats.Table
		t.AddRow("histogram", "count", "sum", "mean", "p50", "p99")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			t.AddRowf(k, h.Count,
				fmt.Sprintf("%.4g", h.Sum), fmt.Sprintf("%.4g", mean),
				fmt.Sprintf("%.4g", h.P50), fmt.Sprintf("%.4g", h.P99))
		}
		t.Render(w)
	}

	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "\n## spans (per-stage wall time)")
		var t stats.Table
		t.AddRow("span", "count", "total_s", "self_s", "p50_ms", "p99_ms")
		for _, k := range sortedKeys(s.Spans) {
			sp := s.Spans[k]
			t.AddRowf(k, sp.Count,
				fmt.Sprintf("%.3f", sp.TotalSeconds),
				fmt.Sprintf("%.3f", sp.SelfSeconds),
				fmt.Sprintf("%.3f", sp.P50Seconds*1000),
				fmt.Sprintf("%.3f", sp.P99Seconds*1000))
		}
		t.Render(w)
	}
}

// TraceView is the /trace/<id> response: one request's stage timeline
// reconstructed from the lifecycle event ring.
type TraceView struct {
	Trace        string  `json:"trace"`
	URL          string  `json:"url,omitempty"`
	Events       []Event `json:"events"`
	TotalSeconds float64 `json:"total_seconds"`
	LastStage    string  `json:"last_stage"`
}

// traceView reconstructs a trace timeline from ring events (oldest
// first). ok is false when the ring retains no events for the ID.
func traceView(ring *EventRing, id string) (TraceView, bool) {
	events := ring.Events(id)
	if len(events) == 0 {
		return TraceView{}, false
	}
	v := TraceView{Trace: id, Events: events}
	for _, e := range events {
		if e.URL != "" {
			v.URL = e.URL
		}
		v.LastStage = e.Stage
	}
	v.TotalSeconds = events[len(events)-1].At.Sub(events[0].At).Seconds()
	if v.TotalSeconds < 0 {
		v.TotalSeconds = 0
	}
	return v, true
}

// Handler returns the live ops endpoint for a registry:
//
//	/metrics             fixed-width text snapshot
//	/metrics?format=prom Prometheus text exposition
//	/metrics.json        JSON snapshot
//	/trace/<id>          one request's lifecycle timeline (event ring)
//	/events.json         the lifecycle event ring (?trace= filters)
//	/debug/pprof/*       the standard Go profiler
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", PromContentType)
			r.Snapshot().WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/trace/")
		ring := r.Lifecycle().Ring()
		if id == "" || ring == nil {
			http.Error(w, "trace: want /trace/<id> (lifecycle tracing must be enabled)", http.StatusNotFound)
			return
		}
		view, ok := traceView(ring, id)
		if !ok {
			http.Error(w, fmt.Sprintf("trace %q: no retained events", id), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
	mux.HandleFunc("/events.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Lifecycle().Ring().WriteJSON(w, req.URL.Query().Get("trace"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "sonic telemetry: /metrics /metrics?format=prom /metrics.json /trace/<id> /events.json /debug/pprof/")
	})
	return mux
}

// Serve starts the ops endpoint on addr (e.g. ":6060") in a background
// goroutine and returns the bound listener address (useful with ":0").
func Serve(addr string, r *Registry) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), nil
}
