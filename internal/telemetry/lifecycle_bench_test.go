package telemetry

import (
	"testing"
	"time"
)

// TestDisabledLifecycleZeroAllocs is the "leave it compiled in" contract
// for lifecycle tracing: with telemetry off (nil handles), beginning,
// stamping, aborting, and delivering cost zero allocations. This is what
// keeps the render-miss hot path overhead under the acceptance budget
// when -telemetry is not set.
func TestDisabledLifecycleZeroAllocs(t *testing.T) {
	var lc *Lifecycle
	at := time.Unix(0, 0)
	if n := testing.AllocsPerRun(100, func() {
		tr := lc.BeginAt("a.pk/", "api", at)
		tr.StampAt(StageAdmitted, at)
		tr.StampAt(StageEnqueued, at)
		tr.StampAt(StageOnAirDone, at)
		tr.Abort(at, "x")
		lc.DeliveredAt("a.pk/", at)
	}); n != 0 {
		t.Fatalf("disabled lifecycle allocates %v per request, want 0", n)
	}
}

// BenchmarkLifecycleDisabled measures the nil-handle fast path — the
// cost every un-instrumented request pays (a few nil checks).
func BenchmarkLifecycleDisabled(b *testing.B) {
	var lc *Lifecycle
	at := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := lc.BeginAt("a.pk/", "api", at)
		tr.StampAt(StageAdmitted, at)
		tr.StampAt(StageEnqueued, at)
		tr.StampAt(StageOnAirStart, at)
		tr.StampAt(StageOnAirDone, at)
		lc.DeliveredAt("a.pk/", at)
	}
}

// BenchmarkLifecycleEnabled measures a full traced request: begin, five
// stamps, delivery confirmation, ring appends, histogram observes.
func BenchmarkLifecycleEnabled(b *testing.B) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{})
	t0 := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		tr := lc.BeginAt("a.pk/", "api", at)
		tr.StampAt(StageAdmitted, at)
		tr.StampAt(StageEnqueued, at.Add(time.Millisecond))
		tr.StampAt(StageOnAirStart, at.Add(time.Second))
		tr.StampAt(StageOnAirDone, at.Add(2*time.Second))
		lc.DeliveredAt("a.pk/", at.Add(3*time.Second))
	}
}
