package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Structured lifecycle events. Every stage stamp a Lifecycle records is
// also appended to a bounded ring of Event values, so a single slow
// request can be reconstructed after the fact (the /trace/<id> endpoint
// reads this ring). The ring is fixed-size: old events are overwritten,
// never reallocated, so a long-running server holds a constant amount of
// event memory no matter how much traffic it serves.

// Event is one lifecycle stage transition of one traced request.
type Event struct {
	// Seq is the global append sequence number (monotonic, never reused;
	// gaps in a trace's view mean unrelated traffic, not loss).
	Seq uint64 `json:"seq"`
	// Trace is the request's trace ID.
	Trace string `json:"trace"`
	// Stage is the lifecycle stage name (see Stage.String).
	Stage string `json:"stage"`
	// URL is the page the request asked for.
	URL string `json:"url,omitempty"`
	// At is the stage timestamp in the clock domain the caller stamps in
	// (wall time on a live server, simulation time under sonic-sim).
	At time.Time `json:"at"`
	// WaitSeconds is the time spent since the previous stamped stage of
	// the same trace (0 for the first stage).
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
	// Detail carries optional context: the requester for "received",
	// an abort reason for "aborted".
	Detail string `json:"detail,omitempty"`
}

// EventRing is a bounded, concurrency-safe ring of lifecycle events.
// A nil *EventRing is a valid "off" handle: appends drop, reads return
// nothing.
type EventRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever appended
}

// DefaultEventRing is the ring capacity when LifecycleConfig.EventRing
// is 0: at ~8 stamps per request it reconstructs the last ~500 requests.
const DefaultEventRing = 4096

// NewEventRing builds a ring holding the last n events (n<=0 uses
// DefaultEventRing).
func NewEventRing(n int) *EventRing {
	if n <= 0 {
		n = DefaultEventRing
	}
	return &EventRing{buf: make([]Event, n)}
}

// Append stamps e.Seq and stores the event, overwriting the oldest entry
// when the ring is full.
func (r *EventRing) Append(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// snapshotLocked copies the live events oldest-first; callers hold r.mu.
func (r *EventRing) snapshotLocked() []Event {
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if r.next > n {
		start = r.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Events returns the retained events oldest-first. A non-empty traceID
// filters to one trace's timeline.
func (r *EventRing) Events(traceID string) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := r.snapshotLocked()
	r.mu.Unlock()
	if traceID == "" {
		return all
	}
	out := all[:0:0]
	for _, e := range all {
		if e.Trace == traceID {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON streams the retained events (optionally filtered to one
// trace) as a JSON array, oldest-first.
func (r *EventRing) WriteJSON(w io.Writer, traceID string) error {
	events := r.Events(traceID)
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
