package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLifecycleStampsAndHistograms(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{
		SLOTargets: SLOTargets{
			RequestToOnAir:     time.Minute,
			RequestToDelivered: time.Minute,
			StageWait:          map[Stage]time.Duration{StageEnqueued: time.Second},
		},
	})
	if reg.Lifecycle() != lc {
		t.Fatal("NewLifecycle did not install itself on the registry")
	}

	t0 := time.Unix(1000, 0)
	tr := lc.BeginAt("a.pk/", "+92300", t0)
	tr.StampAt(StageAdmitted, t0)
	tr.StampAt(StageRenderStart, t0.Add(10*time.Millisecond))
	tr.StampAt(StageRenderDone, t0.Add(200*time.Millisecond))
	tr.StampAt(StageEnqueued, t0.Add(200*time.Millisecond))
	tr.StampAt(StageOnAirStart, t0.Add(30*time.Second))
	tr.StampAt(StageOnAirDone, t0.Add(110*time.Second)) // breaches the 1m on-air SLO
	tr.StampAt(StageDelivered, t0.Add(115*time.Second))

	snap := reg.Snapshot()
	onAir := snap.Histograms["request_to_on_air_seconds"]
	if onAir.Count != 1 || onAir.Sum != 110 {
		t.Errorf("request_to_on_air = %+v, want one 110s observation", onAir)
	}
	deliv := snap.Histograms["request_to_delivered_seconds"]
	if deliv.Count != 1 || deliv.Sum != 115 {
		t.Errorf("request_to_delivered = %+v, want one 115s observation", deliv)
	}
	if w := snap.Histograms["lifecycle_stage_wait_seconds{stage=on_air_start}"]; w.Count != 1 || w.Sum < 29.79 || w.Sum > 29.81 {
		t.Errorf("on_air_start wait = %+v, want ~29.8s", w)
	}
	if got := snap.Counters["lifecycle_slo_breach_total{slo=request_to_on_air}"]; got != 1 {
		t.Errorf("on-air SLO breach = %d, want 1", got)
	}
	if got := snap.Counters["lifecycle_slo_breach_total{slo=request_to_delivered}"]; got != 1 {
		t.Errorf("delivered SLO breach = %d, want 1", got)
	}
	if got := snap.Counters["lifecycle_slo_ok_total{slo=stage_wait:enqueued}"]; got != 1 {
		t.Errorf("enqueued stage-wait SLO ok = %d, want 1", got)
	}
	if open := snap.Gauges["lifecycle_open_traces"]; open != 0 {
		t.Errorf("open traces = %v after delivery, want 0", open)
	}

	// The ring reconstructs the timeline in stage order.
	events := lc.Ring().Events(tr.ID())
	if len(events) != 8 {
		t.Fatalf("ring has %d events for the trace, want 8: %+v", len(events), events)
	}
	if events[0].Detail != "+92300" || events[0].Stage != "received" {
		t.Errorf("first event = %+v", events[0])
	}
}

func TestLifecycleIdempotentAndClamped(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{})
	t0 := time.Unix(0, 0)
	tr := lc.BeginAt("a.pk/", "api", t0.Add(time.Hour))
	// First stamp wins; a re-stamp must not move the timestamp or
	// observe a second wait.
	tr.StampAt(StageEnqueued, t0.Add(time.Hour+time.Second))
	tr.StampAt(StageEnqueued, t0.Add(2*time.Hour))
	// A stamp earlier than the previous stage (mixed clock domains)
	// clamps the wait at zero instead of recording a negative value.
	tr.StampAt(StageOnAirStart, t0)

	snap := reg.Snapshot()
	if w := snap.Histograms["lifecycle_stage_wait_seconds{stage=enqueued}"]; w.Count != 1 || w.Sum != 1 {
		t.Errorf("enqueued wait = %+v, want one 1s observation", w)
	}
	if w := snap.Histograms["lifecycle_stage_wait_seconds{stage=on_air_start}"]; w.Count != 1 || w.Sum != 0 {
		t.Errorf("clamped wait = %+v, want one 0s observation", w)
	}
}

func TestLifecycleDeliveredAtClosesAllOpenTraces(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{})
	t0 := time.Unix(0, 0)
	lc.BeginAt("a.pk/", "u1", t0)
	lc.BeginAt("a.pk/", "u2", t0.Add(time.Second))
	lc.BeginAt("b.pk/", "u3", t0) // different URL stays open
	lc.DeliveredAt("a.pk/", t0.Add(time.Minute))

	snap := reg.Snapshot()
	if got := snap.Counters["lifecycle_delivered_total"]; got != 2 {
		t.Errorf("delivered = %d, want 2", got)
	}
	if open := snap.Gauges["lifecycle_open_traces"]; open != 1 {
		t.Errorf("open = %v, want 1", open)
	}
	// Delivering again is a no-op (the traces are closed).
	lc.DeliveredAt("a.pk/", t0.Add(2*time.Minute))
	if got := reg.Snapshot().Counters["lifecycle_delivered_total"]; got != 2 {
		t.Errorf("re-delivery bumped the counter to %d", got)
	}
}

func TestLifecycleAbort(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{})
	tr := lc.BeginAt("a.pk/", "api", time.Unix(0, 0))
	tr.Abort(time.Unix(1, 0), "no coverage")
	tr.Abort(time.Unix(2, 0), "again") // idempotent

	snap := reg.Snapshot()
	if got := snap.Counters["lifecycle_aborted_total"]; got != 1 {
		t.Errorf("aborted = %d, want 1", got)
	}
	events := lc.Ring().Events(tr.ID())
	if len(events) != 2 || events[1].Detail != "no coverage" {
		t.Fatalf("abort events = %+v", events)
	}
}

func TestLifecycleMaxOpenTracesEviction(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{MaxOpenTraces: 4})
	t0 := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		lc.BeginAt(fmt.Sprintf("p%d.pk/", i), "api", t0)
	}
	if open := reg.Snapshot().Gauges["lifecycle_open_traces"]; open != 4 {
		t.Fatalf("open = %v, want cap 4", open)
	}
	// The evicted head no longer confirms delivery...
	lc.DeliveredAt("p0.pk/", t0.Add(time.Second))
	if got := reg.Snapshot().Counters["lifecycle_delivered_total"]; got != 0 {
		t.Errorf("evicted trace delivered = %d, want 0", got)
	}
	// ...but retained ones do.
	lc.DeliveredAt("p9.pk/", t0.Add(time.Second))
	if got := reg.Snapshot().Counters["lifecycle_delivered_total"]; got != 1 {
		t.Errorf("retained trace delivered = %d, want 1", got)
	}
}

func TestLifecycleNilSafe(t *testing.T) {
	var lc *Lifecycle
	tr := lc.BeginAt("a.pk/", "api", time.Unix(0, 0))
	if tr != nil {
		t.Fatal("nil lifecycle returned a trace")
	}
	tr.StampAt(StageEnqueued, time.Unix(1, 0))
	tr.Stamp(StageOnAirStart)
	tr.Abort(time.Unix(2, 0), "x")
	lc.Delivered("a.pk/")
	lc.DeliveredAt("a.pk/", time.Unix(3, 0))
	if lc.Ring() != nil || tr.ID() != "" || tr.URL() != "" {
		t.Fatal("nil handles not inert")
	}
	if cfg := lc.Config(); cfg.EventRing != 0 || cfg.MaxOpenTraces != 0 || cfg.SLOTargets.RequestToOnAir != 0 {
		t.Fatal("nil config not zero")
	}
	var reg *Registry
	if reg.Lifecycle() != nil {
		t.Fatal("nil registry returned a lifecycle")
	}
	if NewLifecycle(nil, LifecycleConfig{}) != nil {
		t.Fatal("NewLifecycle(nil) should be nil")
	}
}

// TestLifecycleConcurrent hammers trace creation, stamping, and delivery
// confirmation from many goroutines; run under -race it proves the
// tracker's locking discipline.
func TestLifecycleConcurrent(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{EventRing: 256})
	t0 := time.Unix(0, 0)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url := fmt.Sprintf("p%d.pk/", (w+i)%5)
				tr := lc.BeginAt(url, "api", t0)
				tr.StampAt(StageAdmitted, t0.Add(time.Millisecond))
				tr.StampAt(StageEnqueued, t0.Add(2*time.Millisecond))
				tr.StampAt(StageOnAirStart, t0.Add(time.Second))
				tr.StampAt(StageOnAirDone, t0.Add(2*time.Second))
				lc.DeliveredAt(url, t0.Add(3*time.Second))
				lc.Ring().Events("")
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	total := int64(workers * perWorker)
	if got := snap.Counters["lifecycle_requests_total"]; got != total {
		t.Errorf("requests = %d, want %d", got, total)
	}
	if got := snap.Histograms["request_to_on_air_seconds"]; got.Count != total {
		t.Errorf("on-air observations = %d, want %d", got.Count, total)
	}
	// DeliveredAt(url) can close traces opened by other workers, so only
	// the aggregate holds: everything begun was eventually delivered.
	if got := snap.Counters["lifecycle_delivered_total"]; got != total {
		t.Errorf("delivered = %d, want %d", got, total)
	}
}

// TestTraceEndpoint drives the ops handler end to end: a stamped trace
// is served back by /trace/<id> with its stage timeline, and /events.json
// honors the ?trace= filter.
func TestTraceEndpoint(t *testing.T) {
	reg := New()
	lc := NewLifecycle(reg, LifecycleConfig{})
	t0 := time.Unix(500, 0)
	tr := lc.BeginAt("a.pk/", "+92300", t0)
	tr.StampAt(StageAdmitted, t0)
	tr.StampAt(StageEnqueued, t0.Add(time.Second))
	tr.StampAt(StageOnAirStart, t0.Add(time.Minute))
	tr.StampAt(StageOnAirDone, t0.Add(2*time.Minute))

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/trace/" + tr.ID())
	if code != 200 {
		t.Fatalf("GET /trace/%s = %d: %s", tr.ID(), code, body)
	}
	var view TraceView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Trace != tr.ID() || view.URL != "a.pk/" || view.LastStage != "on_air_done" {
		t.Errorf("view = %+v", view)
	}
	if view.TotalSeconds != 120 {
		t.Errorf("TotalSeconds = %v, want 120", view.TotalSeconds)
	}
	if len(view.Events) != 5 {
		t.Errorf("view has %d events, want 5", len(view.Events))
	}

	if code, _ := get("/trace/t-ffffff"); code != 404 {
		t.Errorf("unknown trace = %d, want 404", code)
	}
	if code, _ := get("/trace/"); code != 404 {
		t.Errorf("bare /trace/ = %d, want 404", code)
	}

	code, body = get("/events.json?trace=" + tr.ID())
	if code != 200 {
		t.Fatalf("events.json = %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil || len(events) != 5 {
		t.Errorf("filtered events = %d (%v)", len(events), err)
	}

	// The prom view of the same registry parses and carries the
	// lifecycle histogram.
	code, body = get("/metrics?format=prom")
	if code != 200 || !strings.Contains(body, "request_to_on_air_seconds_count 1") {
		t.Errorf("prom exposition missing lifecycle family:\n%s", body)
	}
}
