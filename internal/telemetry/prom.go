package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Snapshot, so
// any Prometheus-compatible scraper can collect the registry alongside
// the human-oriented text and JSON views. Names are sanitized into the
// prom grammar, label values are escaped, series within a family and
// families themselves are emitted in sorted order, histograms expose
// cumulative le buckets plus _sum/_count, and spans are exported as one
// summary family keyed by a span label.

// PromContentType is the Content-Type of the exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// ParseMetricKey splits a registry key ("name" or "name{k=v,k=v}") back
// into its metric name and label pairs. Consumers like sonic-top use it
// to group snapshot series by family.
func ParseMetricKey(key string) (name string, labels [][2]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:open]
	body := key[open+1 : len(key)-1]
	for _, pair := range strings.Split(body, ",") {
		if eq := strings.IndexByte(pair, '='); eq >= 0 {
			labels = append(labels, [2]string{pair[:eq], pair[eq+1:]})
		}
	}
	return name, labels
}

// promName sanitizes a metric or label name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promValue renders a sample value (prom accepts +Inf/-Inf/NaN).
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders {k="v",...}; extra pairs are appended after the
// parsed ones (used for le/quantile). Empty input renders "".
func promLabels(labels [][2]string, extra ...[2]string) string {
	all := append(append([][2]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(kv[0]))
		b.WriteString(`="`)
		b.WriteString(promEscape(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promSeries is one snapshot key parsed for exposition.
type promSeries struct {
	key    string // original snapshot key, the within-family sort order
	labels [][2]string
}

// familiesOf groups snapshot keys by sanitized family name. The returned
// family names are sorted; each family's series are sorted by their
// original key so output order is deterministic.
func familiesOf(keys []string) (names []string, byFamily map[string][]promSeries) {
	byFamily = make(map[string][]promSeries)
	for _, k := range keys {
		name, labels := ParseMetricKey(k)
		fam := promName(name)
		byFamily[fam] = append(byFamily[fam], promSeries{key: k, labels: labels})
	}
	for fam, series := range byFamily {
		sort.Slice(series, func(i, j int) bool { return series[i].key < series[j].key })
		byFamily[fam] = series
		names = append(names, fam)
	}
	sort.Strings(names)
	return names, byFamily
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format: sorted, typed, escaped, with cumulative histogram buckets and
// spans exported as a sonic_span_seconds summary family.
func (s Snapshot) WriteProm(w io.Writer) {
	counterKeys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		counterKeys = append(counterKeys, k)
	}
	names, fams := familiesOf(counterKeys)
	for _, fam := range names {
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		for _, sr := range fams[fam] {
			fmt.Fprintf(w, "%s%s %d\n", fam, promLabels(sr.labels), s.Counters[sr.key])
		}
	}

	gaugeKeys := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	names, fams = familiesOf(gaugeKeys)
	for _, fam := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		for _, sr := range fams[fam] {
			fmt.Fprintf(w, "%s%s %s\n", fam, promLabels(sr.labels), promValue(s.Gauges[sr.key]))
		}
	}

	histKeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		histKeys = append(histKeys, k)
	}
	names, fams = familiesOf(histKeys)
	for _, fam := range names {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		for _, sr := range fams[fam] {
			h := s.Histograms[sr.key]
			var cum int64
			sawInf := false
			for _, b := range h.Buckets {
				cum += b.Count
				sawInf = sawInf || b.Le == "+Inf"
				fmt.Fprintf(w, "%s_bucket%s %d\n", fam, promLabels(sr.labels, [2]string{"le", b.Le}), cum)
			}
			if !sawInf {
				fmt.Fprintf(w, "%s_bucket%s %d\n", fam, promLabels(sr.labels, [2]string{"le", "+Inf"}), h.Count)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", fam, promLabels(sr.labels), promValue(h.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", fam, promLabels(sr.labels), h.Count)
		}
	}

	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "# TYPE sonic_span_seconds summary")
		for _, k := range sortedKeys(s.Spans) {
			sp := s.Spans[k]
			base := [][2]string{{"span", k}}
			fmt.Fprintf(w, "sonic_span_seconds%s %s\n",
				promLabels(base, [2]string{"quantile", "0.5"}), promValue(sp.P50Seconds))
			fmt.Fprintf(w, "sonic_span_seconds%s %s\n",
				promLabels(base, [2]string{"quantile", "0.99"}), promValue(sp.P99Seconds))
			fmt.Fprintf(w, "sonic_span_seconds_sum%s %s\n", promLabels(base), promValue(sp.TotalSeconds))
			fmt.Fprintf(w, "sonic_span_seconds_count%s %d\n", promLabels(base), sp.Count)
		}
	}
}
