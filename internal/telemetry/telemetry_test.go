package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("frames_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name returns the same handle.
	if r.Counter("frames_total") != c {
		t.Fatal("counter not deduplicated by name")
	}
	// Labels create distinct series.
	a := r.Counter("queue_total", "tx", "a")
	b := r.Counter("queue_total", "tx", "b")
	if a == b {
		t.Fatal("labeled counters not distinct")
	}
	a.Inc()
	snap := r.Snapshot()
	if snap.Counters["queue_total{tx=a}"] != 1 || snap.Counters["queue_total{tx=b}"] != 0 {
		t.Fatalf("label keys wrong: %v", snap.Counters)
	}

	g := r.Gauge("snr_db")
	g.Set(17.5)
	g.Add(0.5)
	if got := g.Value(); got != 18 {
		t.Fatalf("gauge = %v, want 18", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-556.2) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	hs := r.Snapshot().Histograms["lat"]
	want := map[string]int64{"1": 2, "10": 1, "100": 1, "+Inf": 1}
	for _, b := range hs.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket %s = %d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if q := h.Quantile(0.5); q < 0.5 || q > 10 {
		t.Fatalf("p50 = %v out of plausible range", q)
	}
	if q := h.Quantile(0); math.IsNaN(q) {
		t.Fatal("q0 NaN on non-empty histogram")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	r.Gauge("g").Set(3)
	r.Histogram("h", LatencyBuckets).Observe(1)
	sp := r.StartSpan("root")
	child := sp.StartChild("leaf")
	child.End()
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

// TestConcurrentWritersAndSnapshots hammers one counter, one labeled
// gauge, and one histogram from parallel writers while a reader keeps
// snapshotting; run under -race this is the concurrency-safety proof.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := New()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})

	// Snapshot reader, stopped after the writers drain.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total")
			h := r.Histogram("ops_lat", LatencyBuckets)
			g := r.Gauge("last", "writer", string(rune('a'+w)))
			sp := r.StartSpan("worker")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				g.Set(float64(i))
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	snap := r.Snapshot()
	if got := snap.Counters["ops_total"]; got != writers*perWriter {
		t.Fatalf("ops_total = %d, want %d", got, writers*perWriter)
	}
	if got := snap.Histograms["ops_lat"].Count; got != writers*perWriter {
		t.Fatalf("hist count = %d, want %d", got, writers*perWriter)
	}
	if got := snap.Spans["worker"].Count; got != writers {
		t.Fatalf("span count = %d, want %d", got, writers)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := New()
	c := r.Counter("x")
	h := r.Histogram("h", []float64{1})
	c.Add(7)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset did not zero metrics")
	}
	c.Inc()
	if r.Snapshot().Counters["x"] != 1 {
		t.Fatal("handle dead after reset")
	}
}

func TestExportTextAndJSONAndHTTP(t *testing.T) {
	r := New()
	r.Counter("core_pages_encoded_total").Add(3)
	r.Gauge("fm_cnr_db").Set(32.1)
	r.Histogram("server_render_seconds", LatencyBuckets).Observe(0.01)
	sp := r.StartSpan("core.encode_page")
	sp.StartChild("modulate").End()
	sp.End()

	var b strings.Builder
	r.Snapshot().WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"core_pages_encoded_total", "fm_cnr_db",
		"server_render_seconds", "core.encode_page/modulate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}

	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if back.Counters["core_pages_encoded_total"] != 3 {
		t.Fatal("json snapshot lost counter")
	}

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "core_pages_encoded_total",
		"/metrics.json": `"fm_cnr_db"`,
		"/debug/pprof/": "profile",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("GET %s: missing %q", path, want)
		}
	}
}

// fakeClock is a manually advanced clock for deterministic span tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestSpanNestingWithFakeClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewWithClock(clk.now)

	root := r.StartSpan("decode")
	clk.advance(10 * time.Millisecond) // root self work

	demod := root.StartChild("demod")
	clk.advance(70 * time.Millisecond)
	demod.End()

	fecSpan := root.StartChild("fec")
	clk.advance(15 * time.Millisecond)
	viterbi := fecSpan.StartChild("viterbi")
	clk.advance(5 * time.Millisecond)
	viterbi.End()
	fecSpan.End()

	clk.advance(2 * time.Millisecond) // more root self work
	root.End()

	snap := r.Snapshot()
	const eps = 1e-9
	check := func(name string, total, self float64) {
		t.Helper()
		sp, ok := snap.Spans[name]
		if !ok {
			t.Fatalf("span %s missing; have %v", name, snap.Spans)
		}
		if math.Abs(sp.TotalSeconds-total) > eps || math.Abs(sp.SelfSeconds-self) > eps {
			t.Fatalf("span %s: total=%v self=%v, want total=%v self=%v",
				name, sp.TotalSeconds, sp.SelfSeconds, total, self)
		}
	}
	// demod 70ms; fec total 20ms with 5ms in viterbi; root total
	// 10+70+20+2 = 102ms, self 12ms.
	check("decode", 0.102, 0.012)
	check("decode/demod", 0.070, 0.070)
	check("decode/fec", 0.020, 0.015)
	check("decode/fec/viterbi", 0.005, 0.005)
}

// BenchmarkTelemetryDisabled proves the acceptance bound: with telemetry
// off (nil handles, as carried by an un-Instrument()ed component) the
// per-frame record — a counter bump plus a latency observation — costs
// under 5 ns/op and zero allocations.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}

// BenchmarkTelemetryDisabledSpan is the nil cost of a full traced stage
// (root span + child span, started and ended).
func BenchmarkTelemetryDisabledSpan(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("x")
		sp.StartChild("y").End()
		sp.End()
	}
}

// BenchmarkTelemetryEnabled is the reference cost with live metrics, for
// the curious; it is not bounded by the acceptance criteria.
func BenchmarkTelemetryEnabled(b *testing.B) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(1)
	}
}
