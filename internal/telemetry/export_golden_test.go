package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestWriteTextGolden pins the full fixed-width text rendering byte for
// byte under a fake clock, so exporter regressions (ordering, column
// layout, formatting) surface as a readable diff.
func TestWriteTextGolden(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0).UTC()}
	r := NewWithClock(clk.now)
	r.Counter("b_total").Add(2)
	r.Counter("a_total", "tx", "khi-1").Add(7)
	r.Gauge("depth").Set(3.5)
	h := r.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	sp := r.StartSpan("encode")
	clk.advance(250 * time.Millisecond)
	sp.End()

	var b strings.Builder
	r.Snapshot().WriteText(&b)

	// Span quantiles are bucketized (LatencyBuckets), so the 250 ms
	// span reports its bucket's interpolated p50/p99, not 250.000.
	golden := `# SONIC telemetry snapshot @ 2023-11-14T22:13:20Z

## counters
counter            value
------------------------
a_total{tx=khi-1}  7
b_total            2

## gauges
gauge  value
------------
depth  3.5

## histograms
histogram    count  sum  mean  p50  p99
----------------------------------------
lat_seconds  2      2    1     1    1.98

## spans (per-stage wall time)
span    count  total_s  self_s  p50_ms   p99_ms
------------------------------------------------
encode  1      0.250    0.250   307.200  407.552
`
	if got := b.String(); got != golden {
		t.Errorf("WriteText drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
