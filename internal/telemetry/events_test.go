package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestEventRingBoundsAndOrder(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Trace: fmt.Sprintf("t-%d", i), Stage: "received"})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	events := r.Events("")
	if len(events) != 4 {
		t.Fatalf("Events returned %d, want 4", len(events))
	}
	// Oldest-first, holding the final 4 appends with monotonic Seq.
	for i, e := range events {
		if wantSeq := uint64(6 + i); e.Seq != wantSeq {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("t-%d", 6+i); e.Trace != want {
			t.Errorf("event %d trace = %q, want %q", i, e.Trace, want)
		}
	}
}

func TestEventRingTraceFilterAndJSON(t *testing.T) {
	r := NewEventRing(16)
	at := time.Unix(50, 0)
	r.Append(Event{Trace: "t-a", Stage: "received", URL: "x.pk/", At: at})
	r.Append(Event{Trace: "t-b", Stage: "received", URL: "y.pk/", At: at})
	r.Append(Event{Trace: "t-a", Stage: "enqueued", URL: "x.pk/", At: at.Add(time.Second), WaitSeconds: 1})

	if got := r.Events("t-a"); len(got) != 2 || got[0].Stage != "received" || got[1].Stage != "enqueued" {
		t.Fatalf("trace filter returned %+v", got)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, "t-a"); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 || decoded[1].WaitSeconds != 1 || !decoded[0].At.Equal(at) {
		t.Fatalf("decoded %+v", decoded)
	}

	// Empty filter result still emits a valid (empty) JSON array.
	buf.Reset()
	if err := r.WriteJSON(&buf, "t-missing"); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil || len(decoded) != 0 {
		t.Fatalf("empty filter: %v %v", decoded, err)
	}
}

// TestEventRingConcurrent exercises appends, reads, and JSON export from
// many goroutines; under -race it proves the ring's locking. Every read
// must observe internally consistent state (monotonic Seq, bounded
// length).
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("t-%d", w)
			for i := 0; i < perWriter; i++ {
				r.Append(Event{Trace: id, Stage: "received"})
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				events := r.Events("")
				if len(events) > 64 {
					t.Errorf("ring overflow: %d events", len(events))
					return
				}
				for j := 1; j < len(events); j++ {
					if events[j].Seq != events[j-1].Seq+1 {
						t.Errorf("non-monotonic Seq: %d after %d", events[j].Seq, events[j-1].Seq)
						return
					}
				}
				var buf bytes.Buffer
				if err := r.WriteJSON(&buf, ""); err != nil {
					t.Error(err)
					return
				}
				var decoded []Event
				if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
					t.Errorf("invalid JSON under concurrency: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want full ring (64)", got)
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Append(Event{Trace: "t"})
	if r.Len() != 0 || r.Events("") != nil {
		t.Fatal("nil ring not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil ring JSON = %q", buf.String())
	}
}
