package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request lifecycle tracing. Kernel spans (span.go) answer "where does
// the CPU go inside one stage"; the Lifecycle answers the operational
// question "how long does one SMS request live, end to end": every
// request is stamped with a trace ID and monotonic stage timestamps
// (received → admitted → render_start → render_done → enqueued →
// on_air_start → on_air_done → delivered), feeding
//
//   - request_to_on_air_seconds / request_to_delivered_seconds
//     histograms (p50/p99 in every snapshot),
//   - lifecycle_stage_wait_seconds{stage=…} per-stage wait histograms,
//   - an SLO evaluator (LifecycleConfig.SLOTargets) with
//     lifecycle_slo_{ok,breach}_total{slo=…} counters, and
//   - the bounded structured event ring (events.go) that /trace/<id>
//     reconstructs timelines from.
//
// Timestamps live in whatever clock domain the caller stamps in: a live
// server stamps wall time, sonic-sim stamps simulation time, and the two
// never mix inside one trace. Stage waits are clamped at zero so a
// caller that interleaves domains (e.g. a render measured on the wall
// clock inside a simulated timeline) can never record a negative wait.
//
// Everything is nil-safe: a nil *Lifecycle yields nil *Trace handles and
// every stamp collapses to a nil check, so instrumented components keep
// the calls compiled in even when telemetry is off.

// Stage enumerates the lifecycle checkpoints of one request.
type Stage uint8

// Lifecycle stages, in causal order.
const (
	StageReceived    Stage = iota // request arrived (SMS delivered / API call)
	StageAdmitted                 // parsed, validated, admitted for service
	StageRenderStart              // page render began (cache miss or hit check)
	StageRenderDone               // encoded bundle ready
	StageEnqueued                 // appended to a transmitter broadcast queue
	StageOnAirStart               // handed to the transmitter (dequeue)
	StageOnAirDone                // broadcast airtime complete
	StageDelivered                // a receiver decoded and cached the page
	StageAborted                  // request failed (no coverage, render error)
	numStages
)

var stageNames = [numStages]string{
	"received", "admitted", "render_start", "render_done",
	"enqueued", "on_air_start", "on_air_done", "delivered", "aborted",
}

// String returns the stage's snake_case name (used as the stage label).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage_%d", uint8(s))
}

// SLOTargets declares the latency budgets the evaluator checks. Zero
// values disable the corresponding check.
type SLOTargets struct {
	// RequestToOnAir bounds received → on_air_done.
	RequestToOnAir time.Duration
	// RequestToDelivered bounds received → delivered.
	RequestToDelivered time.Duration
	// StageWait bounds the wait between a stage and the previous stamped
	// stage, per target stage.
	StageWait map[Stage]time.Duration
}

// LifecycleConfig tunes a Lifecycle.
type LifecycleConfig struct {
	// EventRing is the structured event ring capacity (0 =
	// DefaultEventRing).
	EventRing int
	// SLOTargets are the latency budgets the evaluator enforces.
	SLOTargets SLOTargets
	// MaxOpenTraces bounds how many undelivered traces the URL index
	// retains before the oldest are evicted (0 = DefaultMaxOpenTraces).
	MaxOpenTraces int
}

// DefaultMaxOpenTraces bounds the open-trace index of a lifecycle whose
// requests are never confirmed delivered (a transmit-only server).
const DefaultMaxOpenTraces = 16384

// Lifecycle tracks in-flight request traces for one registry.
type Lifecycle struct {
	reg  *Registry
	cfg  LifecycleConfig
	ring *EventRing

	nextID atomic.Uint64

	mu    sync.Mutex
	byURL map[string][]*Trace // open (undelivered) traces per URL
	openq []*Trace            // FIFO for MaxOpenTraces eviction
	open  int

	hOnAir     *Histogram // request_to_on_air_seconds
	hDelivered *Histogram // request_to_delivered_seconds
	stageWait  [numStages]*Histogram
	cBegun     *Counter // lifecycle_requests_total
	cOnAir     *Counter // lifecycle_on_air_total
	cDelivered *Counter // lifecycle_delivered_total
	cAborted   *Counter // lifecycle_aborted_total
	gOpen      *Gauge   // lifecycle_open_traces
}

// NewLifecycle builds a lifecycle tracker on reg and installs it as the
// registry's tracker (Registry.Lifecycle returns it; the ops endpoint
// serves its ring under /trace/ and /events.json). Returns nil — a valid
// "tracing off" handle — on a nil registry.
func NewLifecycle(reg *Registry, cfg LifecycleConfig) *Lifecycle {
	if reg == nil {
		return nil
	}
	if cfg.MaxOpenTraces <= 0 {
		cfg.MaxOpenTraces = DefaultMaxOpenTraces
	}
	lc := &Lifecycle{
		reg:        reg,
		cfg:        cfg,
		ring:       NewEventRing(cfg.EventRing),
		byURL:      make(map[string][]*Trace),
		hOnAir:     reg.Histogram("request_to_on_air_seconds", WaitBuckets),
		hDelivered: reg.Histogram("request_to_delivered_seconds", WaitBuckets),
		cBegun:     reg.Counter("lifecycle_requests_total"),
		cOnAir:     reg.Counter("lifecycle_on_air_total"),
		cDelivered: reg.Counter("lifecycle_delivered_total"),
		cAborted:   reg.Counter("lifecycle_aborted_total"),
		gOpen:      reg.Gauge("lifecycle_open_traces"),
	}
	for st := StageAdmitted; st < StageAborted; st++ {
		lc.stageWait[st] = reg.Histogram("lifecycle_stage_wait_seconds", WaitBuckets, "stage", st.String())
	}
	reg.installLifecycle(lc)
	return lc
}

// Ring exposes the structured event ring (nil when tracing is off).
func (lc *Lifecycle) Ring() *EventRing {
	if lc == nil {
		return nil
	}
	return lc.ring
}

// Config returns the lifecycle configuration (zero value when off).
func (lc *Lifecycle) Config() LifecycleConfig {
	if lc == nil {
		return LifecycleConfig{}
	}
	return lc.cfg
}

// Begin opens a trace for a request on url at the registry clock's now.
func (lc *Lifecycle) Begin(url, from string) *Trace {
	if lc == nil {
		return nil
	}
	return lc.BeginAt(url, from, lc.reg.now())
}

// BeginAt opens a trace stamped "received" at an explicit time (callers
// in a simulated clock domain pass simulation timestamps). Returns nil —
// a valid no-op trace — on a nil lifecycle.
func (lc *Lifecycle) BeginAt(url, from string, at time.Time) *Trace {
	if lc == nil {
		return nil
	}
	tr := &Trace{
		lc:  lc,
		id:  fmt.Sprintf("t-%06x", lc.nextID.Add(1)),
		url: url,
	}
	tr.at[StageReceived] = at
	tr.last, tr.lastAt = StageReceived, at

	lc.mu.Lock()
	lc.byURL[url] = append(lc.byURL[url], tr)
	lc.openq = append(lc.openq, tr)
	lc.open++
	for lc.open > lc.cfg.MaxOpenTraces && len(lc.openq) > 0 {
		old := lc.openq[0]
		lc.openq = lc.openq[1:]
		if !old.evicted {
			lc.dropLocked(old)
		}
	}
	// Shed already-closed heads so the FIFO doesn't retain delivered
	// traces until the eviction cap is hit.
	for len(lc.openq) > 0 && lc.openq[0].evicted {
		lc.openq = lc.openq[1:]
	}
	lc.mu.Unlock()

	lc.cBegun.Inc()
	lc.gOpen.Set(float64(lc.openCount()))
	lc.ring.Append(Event{Trace: tr.id, Stage: StageReceived.String(), URL: url, At: at, Detail: from})
	return tr
}

// dropLocked removes tr from the URL index; callers hold lc.mu.
func (lc *Lifecycle) dropLocked(tr *Trace) {
	if tr.evicted {
		return
	}
	tr.evicted = true
	lc.open--
	q := lc.byURL[tr.url]
	for i, t := range q {
		if t == tr {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(lc.byURL, tr.url)
	} else {
		lc.byURL[tr.url] = q
	}
}

func (lc *Lifecycle) openCount() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.open
}

// Delivered closes every open trace on url at the registry clock's now.
func (lc *Lifecycle) Delivered(url string) { lc.DeliveredAt(url, now(lc)) }

func now(lc *Lifecycle) time.Time {
	if lc == nil {
		return time.Time{}
	}
	return lc.reg.now()
}

// DeliveredAt records decode-side receipt confirmation: every open trace
// requesting url is stamped "delivered" at the given time and closed,
// which is what closes the request loop end to end.
func (lc *Lifecycle) DeliveredAt(url string, at time.Time) {
	if lc == nil {
		return
	}
	lc.mu.Lock()
	traces := append([]*Trace(nil), lc.byURL[url]...)
	for _, tr := range traces {
		lc.dropLocked(tr)
	}
	lc.mu.Unlock()
	for _, tr := range traces {
		tr.StampAt(StageDelivered, at)
	}
	if len(traces) > 0 {
		lc.gOpen.Set(float64(lc.openCount()))
	}
}

// evalSLO checks one budget and bumps the ok/breach counters. Telemetry
// label values identify the budget ("request_to_on_air", "stage_wait:…").
func (lc *Lifecycle) evalSLO(name string, observed, target time.Duration) {
	if target <= 0 {
		return
	}
	if observed > target {
		lc.reg.Counter("lifecycle_slo_breach_total", "slo", name).Inc()
	} else {
		lc.reg.Counter("lifecycle_slo_ok_total", "slo", name).Inc()
	}
}

// Trace is one in-flight request. All methods are nil-safe no-ops.
type Trace struct {
	lc  *Lifecycle
	id  string
	url string

	mu      sync.Mutex
	at      [numStages]time.Time
	last    Stage
	lastAt  time.Time
	evicted bool // removed from the URL index (delivered/aborted/evicted)
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// URL returns the traced request's URL ("" on nil).
func (t *Trace) URL() string {
	if t == nil {
		return ""
	}
	return t.url
}

// Stamp records stage at the registry clock's now.
func (t *Trace) Stamp(stage Stage) {
	if t == nil {
		return
	}
	t.StampAt(stage, t.lc.reg.now())
}

// StampAt records stage at an explicit time: it appends a structured
// event, observes the wait since the previous stamped stage (clamped at
// zero), and — on on_air_done and delivered — observes the end-to-end
// histograms and evaluates the SLO budgets. Re-stamping a stage is
// idempotent: the first stamp wins.
func (t *Trace) StampAt(stage Stage, at time.Time) {
	if t == nil || stage >= numStages {
		return
	}
	lc := t.lc

	t.mu.Lock()
	if !t.at[stage].IsZero() {
		t.mu.Unlock()
		return
	}
	t.at[stage] = at
	wait := at.Sub(t.lastAt)
	if wait < 0 {
		wait = 0
	}
	t.last, t.lastAt = stage, at
	received := t.at[StageReceived]
	t.mu.Unlock()

	if stage > StageReceived && stage < StageAborted {
		lc.stageWait[stage].Observe(wait.Seconds())
		if target := lc.cfg.SLOTargets.StageWait[stage]; target > 0 {
			lc.evalSLO("stage_wait:"+stage.String(), wait, target)
		}
	}

	lc.ring.Append(Event{Trace: t.id, Stage: stage.String(), URL: t.url, At: at, WaitSeconds: wait.Seconds()})

	switch stage {
	case StageOnAirDone:
		e2e := at.Sub(received)
		if e2e < 0 {
			e2e = 0
		}
		lc.hOnAir.Observe(e2e.Seconds())
		lc.cOnAir.Inc()
		lc.evalSLO("request_to_on_air", e2e, lc.cfg.SLOTargets.RequestToOnAir)
	case StageDelivered:
		e2e := at.Sub(received)
		if e2e < 0 {
			e2e = 0
		}
		lc.hDelivered.Observe(e2e.Seconds())
		lc.cDelivered.Inc()
		lc.evalSLO("request_to_delivered", e2e, lc.cfg.SLOTargets.RequestToDelivered)
		t.close()
	case StageAborted:
		lc.cAborted.Inc()
		t.close()
	}
}

// Abort ends the trace with a reason (no coverage, render failure). The
// event carries the reason; end-to-end histograms are not observed.
func (t *Trace) Abort(at time.Time, reason string) {
	if t == nil {
		return
	}
	lc := t.lc
	t.mu.Lock()
	if !t.at[StageAborted].IsZero() {
		t.mu.Unlock()
		return
	}
	t.at[StageAborted] = at
	t.mu.Unlock()
	lc.ring.Append(Event{Trace: t.id, Stage: StageAborted.String(), URL: t.url, At: at, Detail: reason})
	lc.cAborted.Inc()
	t.close()
}

// close removes the trace from the lifecycle's open-trace index.
func (t *Trace) close() {
	lc := t.lc
	lc.mu.Lock()
	lc.dropLocked(t)
	lc.mu.Unlock()
	lc.gOpen.Set(float64(lc.openCount()))
}
