// Package telemetry is SONIC's stdlib-only observability layer: a
// concurrency-safe registry of labeled counters, gauges, and fixed-bucket
// histograms, plus lightweight span tracing (span.go) and text/JSON/HTTP
// exporters (export.go).
//
// The design goal is that instrumentation can be compiled into every hot
// path and left there: all metric handles are nil-safe, so a component
// that was never Instrument()ed carries nil handles and every record call
// collapses to a single nil check (see BenchmarkTelemetryDisabled).
// Enabled paths use atomics only — no locks are taken while recording, so
// writers never contend with each other or with snapshot readers.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds every metric family of one process. The zero value is
// not usable; call New. A nil *Registry is a valid "telemetry off"
// handle: every method on it is a no-op returning nil/zero handles.
type Registry struct {
	now func() time.Time

	// lifecycle is the request lifecycle tracker installed by
	// NewLifecycle (lifecycle.go); the ops endpoint serves its event
	// ring under /trace/ and /events.json.
	lifecycle atomic.Pointer[Lifecycle]

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat
}

// installLifecycle publishes lc as the registry's tracker (last wins).
func (r *Registry) installLifecycle(lc *Lifecycle) {
	if r == nil {
		return
	}
	r.lifecycle.Store(lc)
}

// Lifecycle returns the registry's request lifecycle tracker, or nil if
// NewLifecycle was never called (and on a nil registry) — nil is a valid
// "tracing off" handle.
func (r *Registry) Lifecycle() *Lifecycle {
	if r == nil {
		return nil
	}
	return r.lifecycle.Load()
}

// New builds an empty registry using the wall clock (which carries Go's
// monotonic reading, so span durations are immune to clock steps).
func New() *Registry { return NewWithClock(time.Now) }

// NewWithClock builds a registry with an explicit clock — tests inject a
// fake clock to make span durations deterministic.
func NewWithClock(now func() time.Time) *Registry {
	return &Registry{
		now:      now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*spanStat),
	}
}

// key renders "name" or "name{k=v,k=v}" from alternating label pairs.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (registering on first use) the counter for name plus
// alternating label key/value pairs. Returns nil on a nil registry;
// callers keep the handle and record through it unconditionally.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram for
// name+labels with the given ascending bucket upper bounds (an implicit
// +Inf bucket is appended). Buckets are fixed at first registration;
// later calls with the same name ignore the buckets argument.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = newHistogram(buckets)
		r.hists[k] = h
	}
	return h
}

// Reset zeroes every registered metric (registrations and handles stay
// valid). Snapshot-then-Reset gives interval semantics.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		atomic.StoreInt64(&c.v, 0)
	}
	for _, g := range r.gauges {
		atomic.StoreUint64(&g.bits, 0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, s := range r.spans {
		s.reset()
	}
}

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing atomic int64. All methods are
// nil-safe no-ops so disabled telemetry costs one branch.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// --- gauge -----------------------------------------------------------------

// Gauge is an atomic float64 holding the latest value of something.
type Gauge struct{ bits uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		v := math.Float64frombits(old) + d
		if atomic.CompareAndSwapUint64(&g.bits, old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// --- histogram -------------------------------------------------------------

// Histogram counts observations into fixed buckets (upper-bound
// inclusive, implicit +Inf overflow bucket) and tracks count and sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, not including +Inf
	counts  []int64   // len(bounds)+1, atomic
	count   int64     // atomic
	sumBits uint64    // atomic float64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		s := math.Float64frombits(old) + v
		if atomic.CompareAndSwapUint64(&h.sumBits, old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// Quantile approximates the q-th quantile from the bucket counts,
// assuming a uniform distribution within each bucket. Pinned semantics
// (see TestQuantileTable):
//
//   - empty histogram, or NaN q: NaN;
//   - q is clamped into [0, 1];
//   - q = 0: the lower bound of the first occupied bucket;
//   - q = 1: the upper bound of the last occupied bucket;
//   - the overflow (+Inf) bucket has no upper bound, so any quantile
//     landing there reports the bucket's floor (the largest finite
//     bound; 0 for a histogram with no finite buckets);
//   - otherwise: linear interpolation between the occupied bucket's
//     bounds at the fraction of its mass below the target rank.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := atomic.LoadInt64(&h.count)
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(atomic.LoadInt64(&h.counts[i]))
		if n == 0 {
			continue
		}
		// q=0 (target 0) resolves here too: the first occupied bucket at
		// interpolation fraction 0, i.e. its lower bound.
		if cum+n >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // overflow bucket: report its floor
				return lo
			}
			frac := (target - cum) / n
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	// Counts moved between the total load and the scan (concurrent
	// writers); fall back to the largest bound seen.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) reset() {
	for i := range h.counts {
		atomic.StoreInt64(&h.counts[i], 0)
	}
	atomic.StoreInt64(&h.count, 0)
	atomic.StoreUint64(&h.sumBits, 0)
}

// --- bucket helpers ---------------------------------------------------------

// ExpBuckets returns n exponentially spaced upper bounds start,
// start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start + step*float64(i)
	}
	return out
}

// LatencyBuckets spans 50 µs .. ~26 s, the range of SONIC stage
// latencies from a single cell decode to a full-page OFDM modulate.
var LatencyBuckets = ExpBuckets(50e-6, 2, 20)

// CountBuckets suits small non-negative integer observations (RS symbol
// corrections, Viterbi path metrics).
var CountBuckets = ExpBuckets(1, 2, 14)

// SecondsBuckets spans 1 s .. ~9 h for scheduling/wait times.
var SecondsBuckets = ExpBuckets(1, 2, 16)

// WaitBuckets spans 100 µs .. ~3.7 h — the full range of lifecycle stage
// waits, from a warm render-cache hit to a page stuck behind a day of
// carousel backlog.
var WaitBuckets = ExpBuckets(100e-6, 2, 28)
