package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Span tracing. A span measures one stage of the pipeline; child spans
// nest inside a parent, and the parent's *self* time is its total minus
// the time spent in children, so a snapshot shows exactly where inside
// encode→FM→decode the wall clock went.
//
// Spans use the registry clock (monotonic by default). A single span and
// its children belong to one goroutine; distinct goroutines each start
// their own spans, and the shared per-name accumulators are atomic.
//
// All methods are nil-safe: a nil *Registry yields a nil *Span and the
// whole trace collapses to nil checks.

// spanStat is the shared accumulator for one span name.
type spanStat struct {
	count    int64 // atomic
	dur      *Histogram
	selfBits uint64 // atomic float64: cumulative self seconds
}

func (s *spanStat) observe(total, self time.Duration) {
	atomic.AddInt64(&s.count, 1)
	s.dur.Observe(total.Seconds())
	for {
		old := atomic.LoadUint64(&s.selfBits)
		v := math.Float64frombits(old) + self.Seconds()
		if atomic.CompareAndSwapUint64(&s.selfBits, old, math.Float64bits(v)) {
			return
		}
	}
}

func (s *spanStat) reset() {
	atomic.StoreInt64(&s.count, 0)
	atomic.StoreUint64(&s.selfBits, 0)
	s.dur.reset()
}

// spanStatFor returns the accumulator for a span name, creating it on
// first use.
func (r *Registry) spanStatFor(name string) *spanStat {
	r.mu.RLock()
	s := r.spans[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.spans[name]; s == nil {
		s = &spanStat{dur: newHistogram(LatencyBuckets)}
		r.spans[name] = s
	}
	return s
}

// Span is one in-flight stage measurement. Obtain with StartSpan /
// StartChild; finish with End.
type Span struct {
	reg      *Registry
	name     string
	parent   *Span
	start    time.Time
	childDur time.Duration
}

// StartSpan opens a root span. Returns nil (a valid no-op span) on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: r.now()}
}

// StartChild opens a nested span whose duration is charged against the
// parent's self time. The child's name is parent-name + "/" + name.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, name: s.name + "/" + name, parent: s, start: s.reg.now()}
}

// End closes the span, records (total, self) into the registry, and
// returns the total duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := s.reg.now().Sub(s.start)
	if s.parent != nil {
		s.parent.childDur += d
	}
	self := d - s.childDur
	if self < 0 {
		self = 0
	}
	s.reg.spanStatFor(s.name).observe(d, self)
	return d
}
