package telemetry

import (
	"math"
	"testing"
)

// TestQuantileTable pins the Quantile semantics documented on the
// method: empty/NaN handling, clamping, the q=0/q=1 endpoints, the
// overflow-bucket floor, and linear interpolation within a bucket.
func TestQuantileTable(t *testing.T) {
	observe := func(h *Histogram, vs ...float64) *Histogram {
		for _, v := range vs {
			h.Observe(v)
		}
		return h
	}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want float64 // NaN means "want NaN"
	}{
		{"nil histogram", nil, 0.5, math.NaN()},
		{"empty", newHistogram([]float64{1, 2}), 0.5, math.NaN()},
		{"NaN q", observe(newHistogram([]float64{1, 2}), 0.5), math.NaN(), math.NaN()},

		// One observation in the (0,1] bucket: every quantile
		// interpolates inside that single bucket.
		{"single obs q=0", observe(newHistogram([]float64{1, 2}), 0.5), 0, 0},
		{"single obs q=0.5", observe(newHistogram([]float64{1, 2}), 0.5), 0.5, 0.5},
		{"single obs q=1", observe(newHistogram([]float64{1, 2}), 0.5), 1, 1},

		// q outside [0,1] clamps to the endpoints.
		{"q<0 clamps", observe(newHistogram([]float64{1, 2}), 0.5), -3, 0},
		{"q>1 clamps", observe(newHistogram([]float64{1, 2}), 0.5), 7, 1},

		// Two buckets with 1 sample each: the median is the first
		// bucket's upper bound, q=1 the last occupied bucket's bound.
		{"two buckets q=0.5", observe(newHistogram([]float64{1, 2}), 0.5, 1.5), 0.5, 1},
		{"two buckets q=1", observe(newHistogram([]float64{1, 2}), 0.5, 1.5), 1, 2},
		// q=0 is the lower bound of the first OCCUPIED bucket: samples
		// only in (1,2] report 1, not 0.
		{"first occupied lower bound", observe(newHistogram([]float64{1, 2}), 1.5, 1.5), 0, 1},

		// Interpolation: 4 samples in (0,10] at rank fraction 0.25
		// lands a quarter of the way through the bucket.
		{"interpolates", observe(newHistogram([]float64{10}), 1, 2, 3, 4), 0.25, 2.5},

		// Overflow bucket: quantiles landing in +Inf report the floor
		// (the largest finite bound).
		{"overflow floor", observe(newHistogram([]float64{1}), 5, 6), 0.5, 1},
		{"overflow q=1", observe(newHistogram([]float64{1}), 0.5, 5), 1, 1},
		{"no finite buckets", observe(newHistogram(nil), 3), 0.5, 0},
	}
	for _, tc := range cases {
		got := tc.h.Quantile(tc.q)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Quantile(%v) = %v, want NaN", tc.name, tc.q, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestQuantileMonotone: quantiles never decrease in q, across a spread
// of bucket shapes.
func TestQuantileMonotone(t *testing.T) {
	h := newHistogram(ExpBuckets(0.001, 2, 12))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.004)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}
