package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func promSnapshot(t *testing.T) Snapshot {
	t.Helper()
	clk := time.Unix(100, 0)
	reg := NewWithClock(func() time.Time { return clk })
	reg.Counter("requests_total", "tx", "khi-1").Add(3)
	reg.Counter("requests_total", "tx", "lhe-1").Add(5)
	reg.Counter("weird.name-x").Inc()
	reg.Gauge("depth", "q", `needs "quoting"\and\n`).Set(2.5)
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10) // overflow bucket
	sp := reg.StartSpan("encode")
	clk = clk.Add(30 * time.Millisecond)
	sp.End()
	return reg.Snapshot()
}

// TestWritePromExposition validates the exposition line by line: every
// sample parses as <name>{labels} <value>, label values are escaped,
// histogram buckets are cumulative and end with +Inf, and the output is
// deterministic across renders.
func TestWritePromExposition(t *testing.T) {
	snap := promSnapshot(t)
	var b1, b2 strings.Builder
	snap.WriteProm(&b1)
	snap.WriteProm(&b2)
	if b1.String() != b2.String() {
		t.Fatal("exposition is not deterministic")
	}
	out := b1.String()

	types := map[string]string{}
	samples := map[string]float64{}
	var lastBucketFam string
	var lastCum float64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample: name{...} value — value is the last space-separated
		// field, the metric id everything before it.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := id
		if open := strings.IndexByte(id, '{'); open >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = id[:open]
		}
		for _, r := range name {
			ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !ok {
				t.Fatalf("invalid metric name character %q in %q", r, name)
			}
		}
		samples[id] = val

		// Cumulative bucket check.
		if strings.Contains(id, "_bucket{") {
			fam := name
			if fam != lastBucketFam {
				lastBucketFam, lastCum = fam, 0
			}
			if val < lastCum {
				t.Errorf("bucket counts not cumulative at %q: %v < %v", id, val, lastCum)
			}
			lastCum = val
		}
	}

	if types["requests_total"] != "counter" || types["depth"] != "gauge" ||
		types["lat_seconds"] != "histogram" || types["sonic_span_seconds"] != "summary" {
		t.Errorf("TYPE lines wrong: %v", types)
	}
	if types["weird_name_x"] != "counter" {
		t.Errorf("name not sanitized: %v", types)
	}
	if samples[`requests_total{tx="khi-1"}`] != 3 || samples[`requests_total{tx="lhe-1"}`] != 5 {
		t.Errorf("labeled counters wrong: %v", samples)
	}
	if samples[`depth{q="needs \"quoting\"\\and\\n"}`] != 2.5 {
		for id := range samples {
			if strings.HasPrefix(id, "depth") {
				t.Errorf("gauge label not escaped as expected: %q", id)
			}
		}
	}
	// Histogram: cumulative buckets 1, 2, 3 ending at +Inf == count.
	if samples[`lat_seconds_bucket{le="0.1"}`] != 1 ||
		samples[`lat_seconds_bucket{le="1"}`] != 2 ||
		samples[`lat_seconds_bucket{le="+Inf"}`] != 3 ||
		samples["lat_seconds_count"] != 3 {
		t.Errorf("histogram series wrong: %v", samples)
	}
	if samples[`sonic_span_seconds_count{span="encode"}`] != 1 {
		t.Errorf("span summary missing: %v", samples)
	}
}

// TestWritePromInfBucketAlwaysPresent: a histogram whose overflow bucket
// is empty still exposes an +Inf bucket equal to the total count.
func TestWritePromInfBucketAlwaysPresent(t *testing.T) {
	reg := New()
	reg.Histogram("x_seconds", []float64{1}).Observe(0.5)
	var b strings.Builder
	reg.Snapshot().WriteProm(&b)
	want := `x_seconds_bucket{le="+Inf"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("missing %q in:\n%s", want, b.String())
	}
}

func TestParseMetricKey(t *testing.T) {
	cases := []struct {
		key    string
		name   string
		labels [][2]string
	}{
		{"plain", "plain", nil},
		{"a{k=v}", "a", [][2]string{{"k", "v"}}},
		{"a{k=v,x=y}", "a", [][2]string{{"k", "v"}, {"x", "y"}}},
		{"trailing{", "trailing{", nil}, // unbalanced: treated as a bare name
	}
	for _, tc := range cases {
		name, labels := ParseMetricKey(tc.key)
		if name != tc.name || fmt.Sprint(labels) != fmt.Sprint(tc.labels) {
			t.Errorf("ParseMetricKey(%q) = %q %v, want %q %v", tc.key, name, labels, tc.name, tc.labels)
		}
	}
}
