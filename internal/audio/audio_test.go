package audio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(48000, 4800)
	if got := b.Duration(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Duration = %g, want 0.1", got)
	}
	if (&Buffer{}).Duration() != 0 {
		t.Error("zero-rate Duration should be 0")
	}

	c := b.Clone()
	c.Samples[0] = 1
	if b.Samples[0] == 1 {
		t.Error("Clone aliases samples")
	}

	other := NewBuffer(48000, 10)
	if err := b.Append(other); err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) != 4810 {
		t.Errorf("after Append len = %d", len(b.Samples))
	}
	bad := NewBuffer(44100, 10)
	if err := b.Append(bad); err == nil {
		t.Error("Append with rate mismatch should fail")
	}

	b.AppendSilence(0.01)
	if len(b.Samples) != 4810+480 {
		t.Errorf("after AppendSilence len = %d", len(b.Samples))
	}
}

func TestFloatInt16Conversion(t *testing.T) {
	if FloatToInt16(1.0) != 32767 {
		t.Errorf("FloatToInt16(1) = %d", FloatToInt16(1.0))
	}
	if FloatToInt16(-1.5) != -32768 {
		t.Errorf("clamping failed: %d", FloatToInt16(-1.5))
	}
	if FloatToInt16(2.0) != 32767 {
		t.Errorf("clamping failed: %d", FloatToInt16(2.0))
	}
	if FloatToInt16(0) != 0 {
		t.Errorf("FloatToInt16(0) = %d", FloatToInt16(0))
	}
	// Round trip property within quantization error.
	f := func(v float64) bool {
		if math.IsNaN(v) || math.Abs(v) > 1 {
			v = math.Mod(v, 1)
			if math.IsNaN(v) {
				v = 0
			}
		}
		back := Int16ToFloat(FloatToInt16(v))
		return math.Abs(back-v) < 1.0/32000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWAVRoundTrip(t *testing.T) {
	src := Tone(1000, 0.05, 0.5, 48000)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate != 48000 {
		t.Errorf("rate = %d", got.Rate)
	}
	if len(got.Samples) != len(src.Samples) {
		t.Fatalf("len = %d, want %d", len(got.Samples), len(src.Samples))
	}
	for i := range src.Samples {
		if math.Abs(got.Samples[i]-src.Samples[i]) > 1.0/16384 {
			t.Fatalf("sample %d: %g vs %g", i, got.Samples[i], src.Samples[i])
		}
	}
}

func TestReadWAVRejectsGarbage(t *testing.T) {
	if _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all..."))); err == nil {
		t.Error("garbage should be rejected")
	}
	// RIFF header but wrong magic.
	b := append([]byte("RIFF"), make([]byte, 8)...)
	if _, err := ReadWAV(bytes.NewReader(b)); err == nil {
		t.Error("non-WAVE RIFF should be rejected")
	}
}

func TestReadWAVSkipsUnknownChunks(t *testing.T) {
	src := Tone(500, 0.01, 0.5, 8000)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Splice a LIST chunk between fmt and data.
	var spliced bytes.Buffer
	spliced.Write(raw[:36]) // RIFF hdr + fmt chunk
	spliced.WriteString("LIST")
	extra := []byte("INFOsoft")
	var lenb [4]byte
	lenb[0] = byte(len(extra))
	spliced.Write(lenb[:])
	spliced.Write(extra)
	spliced.Write(raw[36:]) // data chunk
	got, err := ReadWAV(&spliced)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(src.Samples) {
		t.Errorf("len = %d, want %d", len(got.Samples), len(src.Samples))
	}
}

func TestToneFrequency(t *testing.T) {
	const rate = 8000
	b := Tone(1000, 0.1, 1.0, rate)
	// Count zero crossings: a 1 kHz tone over 0.1 s has ~200 crossings.
	crossings := 0
	for i := 1; i < len(b.Samples); i++ {
		if (b.Samples[i-1] < 0) != (b.Samples[i] < 0) {
			crossings++
		}
	}
	if crossings < 195 || crossings > 205 {
		t.Errorf("zero crossings = %d, want ~200", crossings)
	}
}

func TestChirpSweeps(t *testing.T) {
	const rate = 48000
	b := Chirp(1000, 5000, 0.1, 1.0, rate)
	if len(b.Samples) != 4800 {
		t.Fatalf("len = %d", len(b.Samples))
	}
	// Instantaneous frequency near the start should be lower than near the
	// end: compare zero-crossing density in the first and last quarters.
	count := func(s []float64) int {
		n := 0
		for i := 1; i < len(s); i++ {
			if (s[i-1] < 0) != (s[i] < 0) {
				n++
			}
		}
		return n
	}
	q := len(b.Samples) / 4
	head := count(b.Samples[:q])
	tail := count(b.Samples[3*q:])
	if tail < head*2 {
		t.Errorf("chirp not sweeping: head=%d tail=%d crossings", head, tail)
	}
	if got := Chirp(1, 2, 0, 1, rate); len(got.Samples) != 0 {
		t.Error("zero-duration chirp should be empty")
	}
}
