// Package audio provides the PCM buffer utilities shared by the SONIC
// modem and FM chain: float64 sample buffers, int16 conversion, and
// RIFF/WAVE file encoding/decoding (16-bit PCM, mono or interleaved
// multi-channel). The SONIC prototype moves webpage frames as audible
// sound; this package is how that sound enters and leaves files for the
// cmd/sonic-modem tool and the examples.
package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Buffer is a mono PCM signal with an associated sample rate.
type Buffer struct {
	Rate    int       // samples per second
	Samples []float64 // nominal range [-1, 1]
}

// NewBuffer allocates an n-sample buffer at the given rate.
func NewBuffer(rate, n int) *Buffer {
	return &Buffer{Rate: rate, Samples: make([]float64, n)}
}

// Duration returns the buffer duration in seconds.
func (b *Buffer) Duration() float64 {
	if b.Rate <= 0 {
		return 0
	}
	return float64(len(b.Samples)) / float64(b.Rate)
}

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	s := make([]float64, len(b.Samples))
	copy(s, b.Samples)
	return &Buffer{Rate: b.Rate, Samples: s}
}

// Append concatenates other's samples (which must share the sample rate).
func (b *Buffer) Append(other *Buffer) error {
	if other.Rate != b.Rate {
		return fmt.Errorf("audio: rate mismatch %d vs %d", other.Rate, b.Rate)
	}
	b.Samples = append(b.Samples, other.Samples...)
	return nil
}

// AppendSilence appends d seconds of silence.
func (b *Buffer) AppendSilence(d float64) {
	n := int(d * float64(b.Rate))
	b.Samples = append(b.Samples, make([]float64, n)...)
}

// FloatToInt16 converts a float sample in [-1,1] to int16 with clamping.
func FloatToInt16(v float64) int16 {
	v *= 32767
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	return int16(math.Round(v))
}

// Int16ToFloat converts an int16 sample to a float in [-1,1).
func Int16ToFloat(v int16) float64 {
	return float64(v) / 32768
}

// errors for WAV parsing
var (
	ErrNotWAV         = errors.New("audio: not a RIFF/WAVE file")
	ErrUnsupportedWAV = errors.New("audio: unsupported WAV encoding (want 16-bit PCM)")
)

// WriteWAV writes the buffer as a 16-bit PCM mono WAV file.
func WriteWAV(w io.Writer, b *Buffer) error {
	dataLen := len(b.Samples) * 2
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataLen))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16) // PCM fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)  // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)  // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(b.Rate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(b.Rate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)               // bits/sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	pcm := make([]byte, dataLen)
	for i, s := range b.Samples {
		binary.LittleEndian.PutUint16(pcm[i*2:], uint16(FloatToInt16(s)))
	}
	_, err := w.Write(pcm)
	return err
}

// ReadWAV parses a 16-bit PCM WAV file. Multi-channel files are downmixed
// to mono by averaging channels.
func ReadWAV(r io.Reader) (*Buffer, error) {
	var riff [12]byte
	if _, err := io.ReadFull(r, riff[:]); err != nil {
		return nil, err
	}
	if string(riff[0:4]) != "RIFF" || string(riff[8:12]) != "WAVE" {
		return nil, ErrNotWAV
	}
	var (
		rate     int
		channels int
		bits     int
		haveFmt  bool
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("audio: missing data chunk: %w", ErrNotWAV)
			}
			return nil, err
		}
		id := string(chunk[0:4])
		size := int(binary.LittleEndian.Uint32(chunk[4:8]))
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, err
			}
			if len(body) < 16 {
				return nil, ErrUnsupportedWAV
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels = int(binary.LittleEndian.Uint16(body[2:4]))
			rate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = int(binary.LittleEndian.Uint16(body[14:16]))
			if format != 1 || bits != 16 || channels < 1 {
				return nil, ErrUnsupportedWAV
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, ErrUnsupportedWAV
			}
			pcm := make([]byte, size)
			if _, err := io.ReadFull(r, pcm); err != nil {
				return nil, err
			}
			frames := size / (2 * channels)
			out := &Buffer{Rate: rate, Samples: make([]float64, frames)}
			for i := 0; i < frames; i++ {
				var acc float64
				for c := 0; c < channels; c++ {
					v := int16(binary.LittleEndian.Uint16(pcm[(i*channels+c)*2:]))
					acc += Int16ToFloat(v)
				}
				out.Samples[i] = acc / float64(channels)
			}
			return out, nil
		default:
			// Skip unknown chunk (word-aligned).
			skip := size + size&1
			if _, err := io.CopyN(io.Discard, r, int64(skip)); err != nil {
				return nil, err
			}
		}
	}
}

// Tone synthesizes a sine tone: frequency hz, duration seconds, amplitude
// amp, at the given sample rate.
func Tone(hz float64, duration float64, amp float64, rate int) *Buffer {
	n := int(duration * float64(rate))
	b := NewBuffer(rate, n)
	for i := range b.Samples {
		b.Samples[i] = amp * math.Sin(2*math.Pi*hz*float64(i)/float64(rate))
	}
	return b
}

// Chirp synthesizes a linear frequency sweep from f0 to f1 Hz over the
// duration, useful as a sync preamble.
func Chirp(f0, f1, duration, amp float64, rate int) *Buffer {
	n := int(duration * float64(rate))
	b := NewBuffer(rate, n)
	if n == 0 {
		return b
	}
	k := (f1 - f0) / duration
	for i := range b.Samples {
		t := float64(i) / float64(rate)
		phase := 2 * math.Pi * (f0*t + 0.5*k*t*t)
		b.Samples[i] = amp * math.Sin(phase)
	}
	return b
}
