package fm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"sonic/internal/dsp"
	"sonic/internal/telemetry"
)

// Equivalence tests pinning the streaming FM chain to the
// pre-optimization implementations, kept below as verbatim reference
// copies (renamed ref*). The oscillator and noise stages are
// deterministic given the rng and must match bit for bit; the filtered
// stages run through FFT convolution and a periodic pilot table, so they
// are pinned within floating-point tolerance, plus an SNR-parity
// property test for the full noisy chain where sample-exact comparison
// is not meaningful (an FM discriminator near a phase wrap amplifies
// ulp-level input differences into 2π jumps).

// --- verbatim pre-optimization reference implementations ---

func refModulate(m *Modulator, composite []float64) []complex128 {
	dev := m.Deviation
	if dev == 0 {
		dev = MaxDeviation
	}
	out := make([]complex128, len(composite))
	var phase float64
	k := 2 * math.Pi * dev / CompositeRate
	for i, x := range composite {
		phase += k * x
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
		out[i] = cmplx.Rect(1, phase)
	}
	return out
}

func refDemodulate(d *Demodulator, envelope []complex128) []float64 {
	dev := d.Deviation
	if dev == 0 {
		dev = MaxDeviation
	}
	out := make([]float64, len(envelope))
	k := CompositeRate / (2 * math.Pi * dev)
	var prev complex128 = 1
	for i, s := range envelope {
		if i > 0 {
			out[i] = cmplx.Phase(s*cmplx.Conj(prev)) * k
		}
		prev = s
	}
	return out
}

func refAddRFNoise(envelope []complex128, cnrDB float64, rng *rand.Rand) []complex128 {
	sigma := math.Sqrt(math.Pow(10, -cnrDB/10) / 2)
	out := make([]complex128, len(envelope))
	for i, s := range envelope {
		out[i] = s + complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
	return out
}

func refBuildComposite(audio []float64, audioRate int, rds []float64) []float64 {
	up := dsp.Resample(audio, float64(audioRate), CompositeRate)
	lp := dsp.NewFIRFilter(dsp.LowpassFIR(MonoBandHigh, CompositeRate, 127))
	up = lp.ProcessBlock(up)
	comp := make([]float64, len(up))
	for i, v := range up {
		comp[i] = monoDeviationFraction * v
		comp[i] += 0.09 * math.Sin(2*math.Pi*PilotHz*float64(i)/CompositeRate)
		if rds != nil && i < len(rds) {
			comp[i] += 0.05 * rds[i]
		}
	}
	return comp
}

func refSplitComposite(composite []float64, audioRate int) (audio []float64, rdsBand []float64) {
	lp := dsp.NewFIRFilter(dsp.LowpassFIR(MonoBandHigh, CompositeRate, 127))
	mono := lp.ProcessBlock(composite)
	for i := range mono {
		mono[i] /= monoDeviationFraction
	}
	audio = dsp.Resample(mono, CompositeRate, float64(audioRate))

	bp := dsp.NewFIRFilter(dsp.BandpassFIR(RDSCarrierHz-3000, RDSCarrierHz+3000, CompositeRate, 255))
	rdsBand = bp.ProcessBlock(composite)
	for i := range rdsBand {
		rdsBand[i] /= 0.05
	}
	return audio, rdsBand
}

func refBroadcast(audio []float64, audioRate int, cnrDB float64, rng *rand.Rand) []float64 {
	comp := refBuildComposite(audio, audioRate, nil)
	mod := refModulate(&Modulator{}, comp)
	if !math.IsInf(cnrDB, 1) {
		mod = refAddRFNoise(mod, cnrDB, rng)
	}
	rx := refDemodulate(&Demodulator{}, mod)
	out, _ := refSplitComposite(rx, audioRate)
	return out
}

// --- helpers ---

func toneAudio(n int, rng *rand.Rand) []float64 {
	audio := make([]float64, n)
	for i := range audio {
		audio[i] = 0.4*math.Sin(2*math.Pi*2000*float64(i)/48000) + 0.1*rng.NormFloat64()
	}
	return audio
}

func maxAbsDiffF(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// snrDB measures got against a clean reference signal.
func snrDB(clean, got []float64) float64 {
	var sig, noise float64
	for i := range clean {
		sig += clean[i] * clean[i]
		d := got[i] - clean[i]
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// --- oscillator stages: bit-identical ---

func TestModulateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dev := range []float64{0, 50000} {
		comp := make([]float64, 30000)
		for i := range comp {
			comp[i] = 1.2 * math.Sin(float64(i)/11)
		}
		for i := range comp {
			comp[i] += 0.05 * rng.NormFloat64()
		}
		m := &Modulator{Deviation: dev}
		want := refModulate(m, comp)
		got := m.Modulate(comp)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dev=%v: sample %d differs: %v vs %v", dev, i, got[i], want[i])
			}
		}
	}
}

func TestDemodulateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	comp := toneAudio(20000, rng)
	env := (&Modulator{}).Modulate(comp)
	AddRFNoise(env, 12, rng) // include click-noise territory
	d := &Demodulator{}
	want := refDemodulate(d, env)
	got := d.Demodulate(env)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	// Worker count must not change a single bit: each block re-reads its
	// predecessor sample.
	for _, w := range []int{2, 3, 8} {
		dst := make([]float64, len(env))
		d.DemodulateInto(dst, env, w)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("workers=%d: sample %d differs", w, i)
			}
		}
	}
}

func TestAddRFNoiseMatchesReference(t *testing.T) {
	env := make([]complex128, 10000)
	for i := range env {
		s, c := math.Sincos(float64(i) / 7)
		env[i] = complex(c, s)
	}
	want := refAddRFNoise(env, 15, rand.New(rand.NewSource(7)))
	got := make([]complex128, len(env))
	copy(got, env)
	ret := AddRFNoise(got, 15, rand.New(rand.NewSource(7)))
	if &ret[0] != &got[0] {
		t.Fatal("AddRFNoise no longer operates in place")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs: rng draw order changed", i)
		}
	}
}

// --- filtered stages: tolerance-pinned ---

func TestBuildCompositeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	audio := toneAudio(24000, rng) // 0.5 s at 48 kHz
	rds := make([]float64, 50000)
	for i := range rds {
		rds[i] = math.Sin(2 * math.Pi * RDSCarrierHz * float64(i) / CompositeRate)
	}
	for _, rdsIn := range [][]float64{nil, rds} {
		want := refBuildComposite(audio, 48000, rdsIn)
		got := BuildComposite(audio, 48000, rdsIn)
		if d := maxAbsDiffF(t, got, want); d > 1e-9 {
			t.Errorf("rds=%v: max diff %g", rdsIn != nil, d)
		}
	}
}

func TestSplitCompositeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	comp := BuildComposite(toneAudio(24000, rng), 48000, nil)
	wantAudio, wantRDS := refSplitComposite(comp, 48000)
	gotAudio, gotRDS := SplitComposite(comp, 48000)
	if d := maxAbsDiffF(t, gotAudio, wantAudio); d > 1e-9 {
		t.Errorf("audio max diff %g", d)
	}
	if d := maxAbsDiffF(t, gotRDS, wantRDS); d > 1e-9 {
		t.Errorf("rds band max diff %g", d)
	}
}

// --- full chain ---

// At a CNR far above the FM threshold no discriminator sample sits near
// a phase wrap, so the chain output tracks the reference within the
// filters' rounding tolerance.
func TestBroadcastMatchesReferenceCleanChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	audio := toneAudio(24000, rng)
	want := refBroadcast(audio, 48000, 40, rand.New(rand.NewSource(5)))
	SetWorkers(1)
	defer SetWorkers(0)
	got := Broadcast(audio, 48000, 40, rand.New(rand.NewSource(5)))
	if d := maxAbsDiffF(t, got, want); d > 1e-6 {
		t.Errorf("max diff %g at 40 dB CNR", d)
	}
	// Noiseless: +Inf CNR skips the noise stage entirely.
	wantClean := refBroadcast(audio, 48000, math.Inf(1), nil)
	gotClean := Broadcast(audio, 48000, math.Inf(1), nil)
	if d := maxAbsDiffF(t, gotClean, wantClean); d > 1e-6 {
		t.Errorf("max diff %g on noiseless chain", d)
	}
}

// Near the FM threshold individual samples diverge (phase wraps), but
// the channel quality must be statistically indistinguishable from the
// reference chain, for every worker count.
func TestBroadcastSNRParity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	audio := toneAudio(24000, rng)
	clean := refBroadcast(audio, 48000, math.Inf(1), nil)
	refSNR := snrDB(clean, refBroadcast(audio, 48000, 15, rand.New(rand.NewSource(9))))
	for _, w := range []int{1, 2, 4} {
		SetWorkers(w)
		got := Broadcast(audio, 48000, 15, rand.New(rand.NewSource(9)))
		gotSNR := snrDB(clean, got)
		if math.Abs(gotSNR-refSNR) > 1.0 {
			t.Errorf("workers=%d: SNR %0.2f dB vs reference %0.2f dB", w, gotSNR, refSNR)
		}
	}
	SetWorkers(0)
}

// --- regression guards ---

func TestBroadcastAllocs(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(16))
	audio := toneAudio(4800, rng)
	Broadcast(audio, 48000, 30, rng) // warm pools
	allocs := testing.AllocsPerRun(10, func() {
		Broadcast(audio, 48000, 30, rng)
	})
	// Steady state: the returned audio slice plus a handful of fixed-size
	// headers — independent of signal length. The old chain allocated a
	// fresh slice per stage (≥10 signal-sized buffers per call). The
	// bound leaves slack for -race runs, where sync.Pool sheds items;
	// the tripwire is per-stage signal-sized buffers (dozens per call).
	if allocs > 16 {
		t.Errorf("Broadcast allocates %v objects per call, want <= 16", allocs)
	}
}

func TestFMLinkTransmitChildSpans(t *testing.T) {
	reg := telemetry.New()
	link := &FMLink{Model: DefaultRSSIModel(), DistanceM: 100, Telemetry: reg}
	rng := rand.New(rand.NewSource(17))
	link.Transmit(toneAudio(4800, rng), 48000)
	snap := reg.Snapshot()
	for _, name := range []string{
		"fm.transmit",
		"fm.transmit/build_composite",
		"fm.transmit/modulate",
		"fm.transmit/add_noise",
		"fm.transmit/demodulate",
		"fm.transmit/split_composite",
	} {
		if _, ok := snap.Spans[name]; !ok {
			t.Errorf("span %q missing from snapshot", name)
		}
	}
}

func TestBroadcastConcurrent(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(18))
	audio := toneAudio(9600, rng)
	want := Broadcast(audio, 48000, math.Inf(1), nil)
	var wg sync.WaitGroup
	errs := make(chan int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				got := Broadcast(audio, 48000, math.Inf(1), nil)
				for i := range got {
					if got[i] != want[i] {
						errs <- i
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if i, bad := <-errs; bad {
		t.Fatalf("concurrent Broadcast diverged at sample %d", i)
	}
}
