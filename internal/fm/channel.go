package fm

import (
	"math"
	"math/rand"

	"sonic/internal/telemetry"
)

// Link is one hop of the SONIC downlink path: it carries program audio
// from input to output, possibly degrading it. Links compose with Chain
// to model full receiver configurations from the paper's Figure 3:
//
//	User-B (internal tuner): FMLink only
//	User-C (audio jack):     FMLink -> CableLink
//	User-A (over the air):   FMLink -> AcousticLink
type Link interface {
	// Transmit carries audio sampled at rate Hz across the hop.
	Transmit(audio []float64, rate int) []float64
}

// CableLink is a lossless hop (audio jack, or the internal FM tuner's
// direct path).
type CableLink struct{}

// Transmit returns a copy of the input.
func (CableLink) Transmit(audio []float64, rate int) []float64 {
	out := make([]float64, len(audio))
	copy(out, audio)
	return out
}

// FMLink is the radio hop: FM modulation, RF noise at a CNR derived from
// the RSSI model and distance, and FM demodulation.
type FMLink struct {
	Model RSSIModel
	// DistanceM sets RSSI via the path-loss model; if RSSIOverride is
	// non-zero it is used directly instead.
	DistanceM    float64
	RSSIOverride float64
	Rng          *rand.Rand
	// Workers bounds the data-parallel stages of the chain; 0 uses the
	// package default (SetWorkers / GOMAXPROCS).
	Workers int
	// Telemetry, when non-nil, records per-transmit metrics: the
	// fm_cnr_db / fm_rssi_dbm gauges, fm_transmits_total, composite
	// clipping events (fm_clipped_samples_total — samples that exceed
	// full deviation and would distort a real exciter), and an
	// fm.transmit span with per-stage children (build_composite,
	// modulate, add_noise, demodulate, split_composite).
	Telemetry *telemetry.Registry
}

// RSSI returns the effective RSSI for this link.
func (l *FMLink) RSSI() float64 {
	if l.RSSIOverride != 0 {
		return l.RSSIOverride
	}
	return l.Model.RSSIAtDistance(l.DistanceM)
}

// Transmit runs the full FM chain.
func (l *FMLink) Transmit(audio []float64, rate int) []float64 {
	rng := l.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	reg := l.Telemetry // nil = every record below is a no-op
	cnr := l.Model.CNRForRSSI(l.RSSI())
	reg.Counter("fm_transmits_total").Inc()
	reg.Gauge("fm_cnr_db").Set(cnr)
	reg.Gauge("fm_rssi_dbm").Set(l.RSSI())

	sp := reg.StartSpan("fm.transmit")
	defer sp.End()

	// The same chain as Broadcast, with clipping accounted inside the
	// composite mix and per-stage child spans under fm.transmit.
	return broadcastChain(audio, rate, cnr, rng, chainOpts{
		workers: resolveWorkers(l.Workers),
		reg:     reg,
		span:    sp,
	})
}

// AcousticLink is the speaker-to-microphone hop.
type AcousticLink struct {
	Model     AcousticModel
	DistanceM float64 // <= 0 means cable
	Rng       *rand.Rand
}

// Transmit carries audio across the air gap.
func (l *AcousticLink) Transmit(audio []float64, rate int) []float64 {
	rng := l.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return l.Model.Transmit(audio, rate, l.DistanceM, rng)
}

// Chain composes hops in order.
type Chain []Link

// Transmit passes audio through every hop.
func (c Chain) Transmit(audio []float64, rate int) []float64 {
	for _, l := range c {
		audio = l.Transmit(audio, rate)
	}
	return audio
}

// AWGNLink adds white noise at a fixed audio-band SNR; it is the simple
// reference channel used by unit tests and ablations.
type AWGNLink struct {
	SNRdB float64
	Rng   *rand.Rand
}

// Transmit adds noise at the configured SNR.
func (l *AWGNLink) Transmit(audio []float64, rate int) []float64 {
	out := make([]float64, len(audio))
	copy(out, audio)
	rng := l.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if !math.IsInf(l.SNRdB, 1) {
		addNoise(out, l.SNRdB, rng)
	}
	return out
}
