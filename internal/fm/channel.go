package fm

import (
	"math"
	"math/rand"
)

// Link is one hop of the SONIC downlink path: it carries program audio
// from input to output, possibly degrading it. Links compose with Chain
// to model full receiver configurations from the paper's Figure 3:
//
//	User-B (internal tuner): FMLink only
//	User-C (audio jack):     FMLink -> CableLink
//	User-A (over the air):   FMLink -> AcousticLink
type Link interface {
	// Transmit carries audio sampled at rate Hz across the hop.
	Transmit(audio []float64, rate int) []float64
}

// CableLink is a lossless hop (audio jack, or the internal FM tuner's
// direct path).
type CableLink struct{}

// Transmit returns a copy of the input.
func (CableLink) Transmit(audio []float64, rate int) []float64 {
	out := make([]float64, len(audio))
	copy(out, audio)
	return out
}

// FMLink is the radio hop: FM modulation, RF noise at a CNR derived from
// the RSSI model and distance, and FM demodulation.
type FMLink struct {
	Model RSSIModel
	// DistanceM sets RSSI via the path-loss model; if RSSIOverride is
	// non-zero it is used directly instead.
	DistanceM    float64
	RSSIOverride float64
	Rng          *rand.Rand
}

// RSSI returns the effective RSSI for this link.
func (l *FMLink) RSSI() float64 {
	if l.RSSIOverride != 0 {
		return l.RSSIOverride
	}
	return l.Model.RSSIAtDistance(l.DistanceM)
}

// Transmit runs the full FM chain.
func (l *FMLink) Transmit(audio []float64, rate int) []float64 {
	rng := l.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	cnr := l.Model.CNRForRSSI(l.RSSI())
	return Broadcast(audio, rate, cnr, rng)
}

// AcousticLink is the speaker-to-microphone hop.
type AcousticLink struct {
	Model     AcousticModel
	DistanceM float64 // <= 0 means cable
	Rng       *rand.Rand
}

// Transmit carries audio across the air gap.
func (l *AcousticLink) Transmit(audio []float64, rate int) []float64 {
	rng := l.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return l.Model.Transmit(audio, rate, l.DistanceM, rng)
}

// Chain composes hops in order.
type Chain []Link

// Transmit passes audio through every hop.
func (c Chain) Transmit(audio []float64, rate int) []float64 {
	for _, l := range c {
		audio = l.Transmit(audio, rate)
	}
	return audio
}

// AWGNLink adds white noise at a fixed audio-band SNR; it is the simple
// reference channel used by unit tests and ablations.
type AWGNLink struct {
	SNRdB float64
	Rng   *rand.Rand
}

// Transmit adds noise at the configured SNR.
func (l *AWGNLink) Transmit(audio []float64, rate int) []float64 {
	out := make([]float64, len(audio))
	copy(out, audio)
	rng := l.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if !math.IsInf(l.SNRdB, 1) {
		addNoise(out, l.SNRdB, rng)
	}
	return out
}
