package fm

import "math"

// RSSIModel maps transmitter-receiver geometry to Received Signal
// Strength Indication and on to the carrier-to-noise ratio the RF chain
// sees. The paper (§4, "Variable RSSI") reports, for the TR508
// transmitter: no frame losses from -65 to -85 dB RSSI, 2-15% fluctuating
// loss from -85 to -90 dB, and nothing received below -90 dB. This model
// is calibrated so those bands reproduce through the real DSP chain.
type RSSIModel struct {
	// TxPowerDBm is the effective radiated power at the reference distance.
	TxPowerDBm float64
	// RefDistanceM and RefRSSI anchor the log-distance path-loss curve:
	// at RefDistanceM meters the receiver sees RefRSSI dB.
	RefDistanceM float64
	RefRSSI      float64
	// PathLossExponent is the log-distance exponent (2 free space,
	// 2.7-3.5 suburban).
	PathLossExponent float64
	// NoiseFloorDB is the receiver noise level RSSI is compared against to
	// produce CNR. Calibrated so the FM threshold (~11 dB CNR) falls at
	// about -90 dB RSSI, matching the paper's total-loss boundary.
	NoiseFloorDB float64
}

// DefaultRSSIModel returns a model tuned for the paper's TR508 scenario
// (1 km class transmitter, suburban propagation).
func DefaultRSSIModel() RSSIModel {
	return RSSIModel{
		TxPowerDBm:       20, // ~100 mW licensed micro transmitter
		RefDistanceM:     10,
		RefRSSI:          -55,
		PathLossExponent: 3.0,
		NoiseFloorDB:     -103,
	}
}

// RSSIAtDistance returns the RSSI (dB) at d meters.
func (m RSSIModel) RSSIAtDistance(d float64) float64 {
	if d < m.RefDistanceM {
		d = m.RefDistanceM
	}
	return m.RefRSSI - 10*m.PathLossExponent*math.Log10(d/m.RefDistanceM)
}

// DistanceForRSSI inverts RSSIAtDistance.
func (m RSSIModel) DistanceForRSSI(rssi float64) float64 {
	return m.RefDistanceM * math.Pow(10, (m.RefRSSI-rssi)/(10*m.PathLossExponent))
}

// CNRForRSSI converts RSSI to the carrier-to-noise ratio fed into
// AddRFNoise.
func (m RSSIModel) CNRForRSSI(rssi float64) float64 {
	return rssi - m.NoiseFloorDB
}
