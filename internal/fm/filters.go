package fm

import (
	"math"
	"sync"

	"sonic/internal/dsp"
)

// FIR design is pure function of (band edges, rate, tap count), yet the
// pre-PR4 chain re-ran the windowed-sinc design — and paid the O(N·taps)
// direct convolution — on every BuildComposite/SplitComposite call. Both
// the designed taps and the FFT convolvers planned from them are
// immutable, so they live in process-wide caches keyed by the design
// parameters. Convolvers are safe for concurrent use (their scratch is
// pooled internally), so one cached instance serves every goroutine.

// filterKey identifies one FIR design. kind is 'l' (lowpass, hi unused)
// or 'b' (bandpass).
type filterKey struct {
	kind   byte
	lo, hi float64
	rate   float64
	taps   int
}

var (
	tapsCache sync.Map // filterKey -> []float64
	convCache sync.Map // filterKey -> *dsp.FFTConvolver
)

// cachedTaps returns the (shared, read-only) designed taps for key.
func cachedTaps(key filterKey) []float64 {
	if t, ok := tapsCache.Load(key); ok {
		return t.([]float64)
	}
	var taps []float64
	if key.kind == 'l' {
		taps = dsp.LowpassFIR(key.lo, key.rate, key.taps)
	} else {
		taps = dsp.BandpassFIR(key.lo, key.hi, key.rate, key.taps)
	}
	t, _ := tapsCache.LoadOrStore(key, taps)
	return t.([]float64)
}

// cachedConvolver returns the shared overlap-save convolver for key.
func cachedConvolver(key filterKey) *dsp.FFTConvolver {
	if c, ok := convCache.Load(key); ok {
		return c.(*dsp.FFTConvolver)
	}
	conv := dsp.NewFFTConvolver(cachedTaps(key))
	c, _ := convCache.LoadOrStore(key, conv)
	return c.(*dsp.FFTConvolver)
}

// lowpassConvolver returns a cached convolver for a lowpass design.
func lowpassConvolver(cutoff, rate float64, taps int) *dsp.FFTConvolver {
	return cachedConvolver(filterKey{kind: 'l', lo: cutoff, rate: rate, taps: taps})
}

// bandpassConvolver returns a cached convolver for a bandpass design.
func bandpassConvolver(lo, hi, rate float64, taps int) *dsp.FFTConvolver {
	return cachedConvolver(filterKey{kind: 'b', lo: lo, hi: hi, rate: rate, taps: taps})
}

// monoConvolver is the 127-tap mono-channel lowpass at CompositeRate used
// by both directions of the composite chain.
func monoConvolver() *dsp.FFTConvolver {
	return lowpassConvolver(MonoBandHigh, CompositeRate, monoFilterTaps)
}

// rdsConvolver is the 255-tap RDS-band bandpass at CompositeRate.
func rdsConvolver() *dsp.FFTConvolver {
	return bandpassConvolver(RDSCarrierHz-3000, RDSCarrierHz+3000, CompositeRate, rdsFilterTaps)
}

const (
	monoFilterTaps = 127
	rdsFilterTaps  = 255
)

// The 19 kHz pilot is exactly periodic in the 192 kHz composite clock:
// gcd(19000, 192000) = 1000, so the waveform repeats every 192 samples.
// A one-period table replaces a math.Sin call per composite sample —
// and unlike a recurrence oscillator it cannot drift over long buffers.
var (
	pilotOnce sync.Once
	pilotTab  []float64
)

// pilotTable returns the scaled one-period pilot waveform,
// 0.09·sin(2π·PilotHz·i/CompositeRate) for i in [0, period).
func pilotTable() []float64 {
	pilotOnce.Do(func() {
		g := gcd(PilotHz, CompositeRate)
		period := CompositeRate / g
		pilotTab = make([]float64, period)
		for i := range pilotTab {
			pilotTab[i] = 0.09 * math.Sin(2*math.Pi*PilotHz*float64(i)/CompositeRate)
		}
	})
	return pilotTab
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Pooled sample buffers shared by the chain stages. Pools hold pointers
// to slices (the usual sync.Pool idiom avoiding header allocations);
// buffers grow monotonically to the largest request seen.

var (
	f64Pool  = sync.Pool{New: func() any { return new([]float64) }}
	c128Pool = sync.Pool{New: func() any { return new([]complex128) }}
)

// getF64 returns a pooled float64 buffer of length n.
func getF64(n int) *[]float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putF64(p *[]float64) { f64Pool.Put(p) }

// getC128 returns a pooled complex128 buffer of length n.
func getC128(n int) *[]complex128 {
	p := c128Pool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n)
	}
	*p = (*p)[:n]
	return p
}

func putC128(p *[]complex128) { c128Pool.Put(p) }
