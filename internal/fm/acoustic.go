package fm

import (
	"math"
	"math/rand"
)

// speakerFilterTaps is the small-speaker rolloff FIR length.
const speakerFilterTaps = 63

// AcousticModel describes the over-the-air hop between an FM radio's
// speaker and a phone's microphone — the distance axis of the paper's
// Figure 4(a). "Cable" (an audio-jack connection or the phone's internal
// tuner) corresponds to infinite SNR; over the air, SNR falls with
// distance and fluctuates with speaker/microphone alignment, which the
// paper observed dominates beyond ~0.5 m.
type AcousticModel struct {
	// RefSNRdB is the audio-band SNR at RefDistanceM with perfect alignment.
	RefSNRdB     float64
	RefDistanceM float64
	// CriticalDistanceM is where the speaker's effective coupling
	// collapses; the paper measured total loss beyond 1.1 m.
	CriticalDistanceM float64
	// RolloffPenaltyDB scales the near-critical collapse term.
	RolloffPenaltyDB float64
	// RolloffExponent controls how sharply the collapse sets in.
	RolloffExponent float64
	// AlignmentSigmaBase/PerMeter control slow SNR jitter from alignment
	// and ambient fluctuation (dB, peak of a slow sinusoidal wander).
	AlignmentSigmaBase     float64
	AlignmentSigmaPerMeter float64
	// DropoutRatePerMeterSec is the rate (events/second per meter of air
	// gap) of brief alignment dropouts; DropoutDepthDB is how far SNR
	// collapses during one. The paper observed that speaker/microphone
	// alignment dominates loss beyond ~0.5 m — these fades are that
	// effect, and they are what produces intermediate frame-loss rates
	// within a single transmission.
	DropoutRatePerMeterSec float64
	DropoutDepthDB         float64
	// SpeakerCutoffHz models the small-speaker high-frequency rolloff.
	SpeakerCutoffHz float64
	// EchoDelayS and EchoGain model a single room reflection.
	EchoDelayS float64
	EchoGain   float64
}

// DefaultAcousticModel returns the model calibrated against Figure 4(a):
// zero loss over cable, low single-digit loss through 0.5 m, 10–20%
// median loss around 1 m, and total loss past ~1.1 m.
func DefaultAcousticModel() AcousticModel { //sonic:ignore equivpin static parameter table, no kernel to pin
	return AcousticModel{
		RefSNRdB:               46,
		RefDistanceM:           0.1,
		CriticalDistanceM:      1.15,
		RolloffPenaltyDB:       25,
		RolloffExponent:        6,
		AlignmentSigmaBase:     1.0,
		AlignmentSigmaPerMeter: 3.0,
		DropoutRatePerMeterSec: 0.9,
		DropoutDepthDB:         30,
		SpeakerCutoffHz:        16000,
		// A short early reflection (desk/wall next to the radio). Kept
		// within the OFDM cyclic prefix so it behaves as a static channel
		// the equalizer can invert, like the real deployments the paper
		// targets (phone resting next to the radio).
		EchoDelayS: 0.002,
		EchoGain:   0.08,
	}
}

// MeanSNRAt returns the mean audio-band SNR at d meters (dB). d <= 0
// means a cable connection and returns +Inf.
func (a AcousticModel) MeanSNRAt(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	if d < a.RefDistanceM {
		d = a.RefDistanceM
	}
	snr := a.RefSNRdB - 20*math.Log10(d/a.RefDistanceM)
	snr -= a.RolloffPenaltyDB * math.Pow(d/a.CriticalDistanceM, a.RolloffExponent)
	return snr
}

// DrawSNR samples the SNR a single frame transmission experiences at
// distance d, including alignment jitter.
func (a AcousticModel) DrawSNR(d float64, rng *rand.Rand) float64 {
	mean := a.MeanSNRAt(d)
	if math.IsInf(mean, 1) {
		return mean
	}
	sigma := a.AlignmentSigmaBase + a.AlignmentSigmaPerMeter*d
	return mean + sigma*rng.NormFloat64()
}

// Transmit carries audio (at rate Hz) across d meters of air: speaker
// rolloff, a room reflection, slow SNR wander from alignment drift, and
// brief alignment dropouts. d <= 0 (cable) returns a copy of the input.
func (a AcousticModel) Transmit(audio []float64, rate int, d float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(audio))
	copy(out, audio)
	if d <= 0 {
		return out
	}
	// Speaker rolloff (cached design + FFT convolution, in place).
	if a.SpeakerCutoffHz > 0 && a.SpeakerCutoffHz < float64(rate)/2 {
		out = lowpassConvolver(a.SpeakerCutoffHz, float64(rate), speakerFilterTaps).Apply(out, out)
	}
	// Single echo.
	if a.EchoGain > 0 {
		delay := int(a.EchoDelayS * float64(rate))
		for i := len(out) - 1; i >= delay; i-- {
			out[i] += a.EchoGain * out[i-delay]
		}
	}
	a.addTimeVaryingNoise(out, rate, d, rng)
	return out
}

// addTimeVaryingNoise injects AWGN whose instantaneous SNR wanders
// slowly around the distance mean and collapses during dropouts.
func (a AcousticModel) addTimeVaryingNoise(out []float64, rate int, d float64, rng *rand.Rand) {
	if len(out) == 0 {
		return
	}
	mean := a.MeanSNRAt(d)
	if math.IsInf(mean, 1) {
		return
	}
	var p float64
	for _, v := range out {
		p += v * v
	}
	p /= float64(len(out))

	// Slow sinusoidal wander with random period and phase.
	periodS := 0.4 + 0.8*rng.Float64()
	phase := 2 * math.Pi * rng.Float64()
	amp := a.AlignmentSigmaBase + a.AlignmentSigmaPerMeter*d

	// Dropout schedule (Poisson arrivals, 80-200 ms each).
	dropUntil := -1
	nextDrop := len(out) + 1
	if lambda := a.DropoutRatePerMeterSec * d; lambda > 0 {
		nextDrop = int(rng.ExpFloat64() / lambda * float64(rate))
	}
	lambda := a.DropoutRatePerMeterSec * d
	for i := range out {
		if i >= nextDrop && lambda > 0 {
			dropUntil = i + int((0.08+0.12*rng.Float64())*float64(rate))
			nextDrop = dropUntil + int(rng.ExpFloat64()/lambda*float64(rate))
		}
		t := float64(i) / float64(rate)
		snr := mean + amp*math.Sin(2*math.Pi*t/periodS+phase)
		if i < dropUntil {
			snr -= a.DropoutDepthDB
		}
		sigma := math.Sqrt(p / math.Pow(10, snr/10))
		out[i] += sigma * rng.NormFloat64()
	}
}

// TransmitAtSNR is Transmit with an explicit SNR (dB) instead of a
// distance draw — used when a caller has already sampled per-frame SNRs.
func (a AcousticModel) TransmitAtSNR(audio []float64, rate int, snrDB float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(audio))
	copy(out, audio)
	if math.IsInf(snrDB, 1) {
		return out
	}
	if a.SpeakerCutoffHz > 0 && a.SpeakerCutoffHz < float64(rate)/2 {
		out = lowpassConvolver(a.SpeakerCutoffHz, float64(rate), speakerFilterTaps).Apply(out, out)
	}
	addNoise(out, snrDB, rng)
	return out
}

// addNoise injects AWGN so the resulting SNR (vs current signal power)
// is snrDB.
func addNoise(x []float64, snrDB float64, rng *rand.Rand) {
	if len(x) == 0 || math.IsInf(snrDB, 1) {
		return
	}
	var p float64
	for _, v := range x {
		p += v * v
	}
	p /= float64(len(x))
	sigma := math.Sqrt(p / math.Pow(10, snrDB/10))
	for i := range x {
		x[i] += sigma * rng.NormFloat64()
	}
}
