package fm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The FM chain's per-sample stages (noise injection, discriminator
// demodulation, composite mixing) are data-parallel across contiguous
// sample blocks; modulation is a serial phase recurrence and stays on one
// goroutine. The Workers knob below mirrors imagecodec's: explicit
// per-link counts win, then the package default, then GOMAXPROCS, and
// workers <= 1 runs inline with zero goroutine overhead so the
// single-core path is as fast as a hand-written serial loop.

// defaultWorkers is the pool size used when a caller passes workers <= 0.
// 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetWorkers sets the package-wide default worker count used by Broadcast
// and FMLink.Transmit (when FMLink.Workers is zero). n <= 0 restores the
// default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers reports the resolved package-wide default worker count.
func Workers() int { return resolveWorkers(0) } //sonic:ignore equivpin concurrency knob, not a kernel

// resolveWorkers maps a per-call worker request to a concrete pool size:
// explicit n > 0 wins, then the package default, then GOMAXPROCS.
func resolveWorkers(n int) int {
	if n <= 0 {
		n = int(defaultWorkers.Load())
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// parallelBlockMin is the smallest per-worker block worth a goroutine;
// below it the fixed spawn/join cost dwarfs the loop body.
const parallelBlockMin = 4096

// parallelFor runs fn over contiguous chunks covering [0, n), using at
// most workers goroutines. workers <= 1 (or a workload too small to
// amortize goroutine startup) runs inline. Chunks are index-addressed, so
// stages that write dst[i] from src[i] are deterministic regardless of
// scheduling.
func parallelFor(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if max := n / parallelBlockMin; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
