package fm

import (
	"math"
	"math/rand"
	"sync/atomic"

	"sonic/internal/dsp"
	"sonic/internal/telemetry"
)

// chainOpts carries the cross-cutting knobs of one chain run. The zero
// value is valid: serial, untraced.
type chainOpts struct {
	workers int
	// reg, when non-nil, receives the composite clipping counter.
	reg *telemetry.Registry
	// span, when non-nil, is the parent ("fm.transmit") for the per-stage
	// child spans (build_composite, modulate, add_noise, demodulate,
	// split_composite). All span calls are nil-safe.
	span *telemetry.Span
}

// broadcastChain is the fused modulator→channel→receiver pipeline behind
// Broadcast and FMLink.Transmit. It differs from calling the exported
// stages in sequence only in allocation behaviour, not math:
//
//   - the composite, envelope and received-composite signals live in two
//     pooled buffers (one real, one complex) reused across calls;
//   - every stage between the resample-in and resample-out operates in
//     place, so a call performs O(1) slice allocations regardless of
//     signal length;
//   - the receiver skips the 57 kHz RDS bandpass entirely: this path
//     returns only the program audio, and the 255-tap bandpass was the
//     single most expensive filter of the old chain, run only to be
//     discarded.
func broadcastChain(audio []float64, audioRate int, cnrDB float64, rng *rand.Rand, o chainOpts) []float64 {
	n := dsp.ResampleLen(len(audio), float64(audioRate), CompositeRate)
	if n == 0 {
		return nil
	}
	compBuf := getF64(n)
	comp := *compBuf

	// build_composite: upsample, band-limit, mix in the pilot.
	sp := o.span.StartChild("build_composite")
	comp = dsp.ResampleInto(comp, audio, float64(audioRate), CompositeRate)
	comp = monoConvolver().Apply(comp, comp)
	pilot := pilotTable()
	var clipped int64
	parallelFor(o.workers, len(comp), func(lo, hi int) {
		j := lo % len(pilot)
		local := int64(0)
		for i := lo; i < hi; i++ {
			v := monoDeviationFraction*comp[i] + pilot[j]
			if j++; j == len(pilot) {
				j = 0
			}
			if v > 1 || v < -1 {
				local++
			}
			comp[i] = v
		}
		if local != 0 {
			atomic.AddInt64(&clipped, local)
		}
	})
	if o.reg != nil {
		o.reg.Counter("fm_clipped_samples_total").Add(clipped)
	}
	sp.End()

	// modulate: serial phase-accumulating oscillator.
	sp = o.span.StartChild("modulate")
	envBuf := getC128(n)
	env := *envBuf
	(&Modulator{}).ModulateInto(env, comp)
	sp.End()

	// add_noise: the RF hop.
	if !math.IsInf(cnrDB, 1) {
		sp = o.span.StartChild("add_noise")
		addRFNoiseWorkers(env, cnrDB, rng, o.workers)
		sp.End()
	}

	// demodulate: quadrature discriminator, reusing the composite buffer.
	sp = o.span.StartChild("demodulate")
	(&Demodulator{}).DemodulateInto(comp, env, o.workers)
	putC128(envBuf)
	sp.End()

	// split_composite: mono lowpass, de-emphasis of the deviation share,
	// downsample. The RDS band is discarded by this path, so its bandpass
	// is never run.
	sp = o.span.StartChild("split_composite")
	comp = monoConvolver().Apply(comp, comp)
	parallelFor(o.workers, len(comp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			comp[i] /= monoDeviationFraction
		}
	})
	out := dsp.ResampleInto(nil, comp, CompositeRate, float64(audioRate))
	putF64(compBuf)
	sp.End()
	return out
}
