package fm

import (
	"math"
	"math/rand"
	"testing"

	"sonic/internal/dsp"
)

func tone(hz float64, n int, rate float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * hz * float64(i) / rate)
	}
	return out
}

func TestFMModDemodRoundTrip(t *testing.T) {
	// A composite-rate tone should survive modulation and discrimination.
	x := tone(5000, 19200, CompositeRate)
	for i := range x {
		x[i] *= 0.5
	}
	mod := (&Modulator{}).Modulate(x)
	for i, s := range mod {
		if math.Abs(real(s)*real(s)+imag(s)*imag(s)-1) > 1e-9 {
			t.Fatalf("envelope magnitude not 1 at %d", i)
		}
	}
	rx := (&Demodulator{}).Demodulate(mod)
	// Skip the first samples (discriminator warmup), compare the rest.
	var errSum, sigSum float64
	for i := 100; i < len(x); i++ {
		d := rx[i] - x[i]
		errSum += d * d
		sigSum += x[i] * x[i]
	}
	if snr := 10 * math.Log10(sigSum/errSum); snr < 60 {
		t.Errorf("clean FM round trip SNR = %.1f dB, want > 60", snr)
	}
}

func TestFMHighCNRIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tone(1000, 9600, 48000)
	rx := Broadcast(x, 48000, 50, rng)
	// Compare steady-state region via correlation-based gain estimate.
	if len(rx) < len(x)-200 {
		t.Fatalf("output too short: %d vs %d", len(rx), len(x))
	}
	g1 := dsp.Goertzel(rx[200:len(rx)-200], 1000, 48000)
	g3 := dsp.Goertzel(rx[200:len(rx)-200], 3300, 48000)
	if g1 < 20*g3 {
		t.Errorf("tone not dominant after broadcast: 1k=%g 3.3k=%g", g1, g3)
	}
}

func TestFMThresholdEffect(t *testing.T) {
	// Below ~10 dB CNR the FM discriminator output collapses; audio SNR
	// should be dramatically worse at 5 dB CNR than at 30 dB CNR.
	audioSNR := func(cnr float64) float64 {
		rng := rand.New(rand.NewSource(2))
		x := tone(1000, 19200, 48000)
		for i := range x {
			x[i] *= 0.5
		}
		rx := Broadcast(x, 48000, cnr, rng)
		n := len(rx)
		sig := dsp.Goertzel(rx[500:n-500], 1000, 48000)
		noise := dsp.Goertzel(rx[500:n-500], 4321, 48000) +
			dsp.Goertzel(rx[500:n-500], 7777, 48000)
		return 20 * math.Log10(sig/(noise/2+1e-12))
	}
	hi := audioSNR(30)
	lo := audioSNR(5)
	if hi-lo < 15 {
		t.Errorf("no threshold effect: 30dB CNR -> %.1f, 5dB CNR -> %.1f", hi, lo)
	}
}

func TestBuildSplitComposite(t *testing.T) {
	x := tone(2000, 9600, 48000)
	comp := BuildComposite(x, 48000, nil)
	if len(comp) != len(x)*CompositeRate/48000 {
		t.Fatalf("composite length %d", len(comp))
	}
	// Pilot present at 19 kHz.
	if p := dsp.Goertzel(comp, PilotHz, CompositeRate); p < 10 {
		t.Errorf("pilot missing: %g", p)
	}
	audio, _ := SplitComposite(comp, 48000)
	g2 := dsp.Goertzel(audio[200:], 2000, 48000)
	gp := dsp.Goertzel(audio[200:], PilotHz-1000, 48000)
	if g2 < 10*gp {
		t.Errorf("mono extraction poor: 2k=%g 18k=%g", g2, gp)
	}
}

func TestCompositeCarriesRDS(t *testing.T) {
	// An RDS band injected at 57 kHz must come back out of SplitComposite.
	rds := tone(RDSCarrierHz, 19200, CompositeRate)
	comp := BuildComposite(make([]float64, 4800), 48000, rds)
	_, band := SplitComposite(comp, 48000)
	on := dsp.Goertzel(band[500:], RDSCarrierHz, CompositeRate)
	off := dsp.Goertzel(band[500:], RDSCarrierHz-8000, CompositeRate)
	if on < 10*off {
		t.Errorf("RDS band not recovered: on=%g off=%g", on, off)
	}
}

func TestRSSIModel(t *testing.T) {
	m := DefaultRSSIModel()
	// Monotone decreasing with distance.
	prev := math.Inf(1)
	for _, d := range []float64{10, 50, 100, 500, 1000} {
		r := m.RSSIAtDistance(d)
		if r >= prev {
			t.Errorf("RSSI not decreasing at %gm: %g >= %g", d, r, prev)
		}
		prev = r
	}
	// The paper's operating range (-65..-90 dB) maps to plausible distances.
	d65 := m.DistanceForRSSI(-65)
	d90 := m.DistanceForRSSI(-90)
	if d65 >= d90 {
		t.Errorf("distance inversion: %g !< %g", d65, d90)
	}
	if d90 > 5000 {
		t.Errorf("-90 dB at %gm: beyond the TR508's km class", d90)
	}
	// Round trip.
	for _, rssi := range []float64{-65, -75, -85} {
		back := m.RSSIAtDistance(m.DistanceForRSSI(rssi))
		if math.Abs(back-rssi) > 1e-6 {
			t.Errorf("RSSI round trip %g -> %g", rssi, back)
		}
	}
	// CNR at the paper's total-loss boundary (-90 dB) should be near the
	// FM threshold (~11 dB).
	cnr := m.CNRForRSSI(-90)
	if cnr < 8 || cnr > 14 {
		t.Errorf("CNR at -90 dB RSSI = %g, want near FM threshold", cnr)
	}
	// Clamping below reference distance.
	if m.RSSIAtDistance(1) != m.RSSIAtDistance(m.RefDistanceM) {
		t.Error("distances under reference should clamp")
	}
}

func TestAcousticModelShape(t *testing.T) {
	a := DefaultAcousticModel()
	if !math.IsInf(a.MeanSNRAt(0), 1) {
		t.Error("cable should be infinite SNR")
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for _, d := range []float64{0.1, 0.2, 0.5, 1.0, 1.1, 1.5} {
		s := a.MeanSNRAt(d)
		if s >= prev {
			t.Errorf("SNR not decreasing at %gm", d)
		}
		prev = s
	}
	// Near field strong, far field collapsed.
	if a.MeanSNRAt(0.1) < 35 {
		t.Errorf("10cm SNR = %g, want strong", a.MeanSNRAt(0.1))
	}
	if a.MeanSNRAt(1.3) > 10 {
		t.Errorf("1.3m SNR = %g, want collapsed", a.MeanSNRAt(1.3))
	}
}

func TestAcousticTransmitCable(t *testing.T) {
	a := DefaultAcousticModel()
	rng := rand.New(rand.NewSource(3))
	in := tone(1000, 4800, 48000)
	out := a.Transmit(in, 48000, 0, rng)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("cable transmit must be lossless")
		}
	}
	out[0] = 99
	if in[0] == 99 {
		t.Error("cable transmit aliases input")
	}
}

func TestAcousticTransmitAddsDistanceNoise(t *testing.T) {
	a := DefaultAcousticModel()
	// Disable the filter and echo so the comparison below measures noise
	// rather than FIR group delay.
	a.SpeakerCutoffHz = 0
	a.EchoGain = 0
	in := tone(9200, 9600, 48000)
	snrOf := func(d float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		out := a.Transmit(in, 48000, d, rng)
		var sig, errp float64
		for i := 200; i < len(in); i++ {
			sig += in[i] * in[i]
			dlt := out[i] - in[i]
			errp += dlt * dlt
		}
		return 10 * math.Log10(sig/errp)
	}
	near := snrOf(0.1, 4)
	far := snrOf(1.0, 4)
	if near-far < 10 {
		t.Errorf("distance should cost SNR: 0.1m=%.1f 1m=%.1f", near, far)
	}
}

func TestChainAndLinks(t *testing.T) {
	in := tone(1000, 4800, 48000)
	chain := Chain{CableLink{}, &AWGNLink{SNRdB: math.Inf(1)}}
	out := chain.Transmit(in, 48000)
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1e-12 {
			t.Fatal("lossless chain altered signal")
		}
	}
	noisy := (&AWGNLink{SNRdB: 10, Rng: rand.New(rand.NewSource(5))}).Transmit(in, 48000)
	var diff float64
	for i := range in {
		diff += math.Abs(noisy[i] - in[i])
	}
	if diff == 0 {
		t.Error("AWGN link added no noise")
	}
}

func TestFMLinkRSSISelection(t *testing.T) {
	l := &FMLink{Model: DefaultRSSIModel(), DistanceM: 100}
	fromDistance := l.RSSI()
	l.RSSIOverride = -70
	if l.RSSI() != -70 {
		t.Errorf("override ignored: %g", l.RSSI())
	}
	if fromDistance == -70 {
		t.Error("distance-derived RSSI suspiciously equal to override")
	}
}

func BenchmarkFMBroadcast100ms(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tone(9200, 4800, 48000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Broadcast(x, 48000, 30, rng)
	}
}
