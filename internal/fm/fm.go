// Package fm simulates the FM radio infrastructure SONIC repurposes: a
// software FM modulator/demodulator operating on the complex baseband
// envelope, the composite FM baseband layout from the paper's Figure 2
// (mono 30 Hz–15 kHz, 19 kHz stereo pilot, 57 kHz RDS subcarrier), a
// log-distance RSSI model for the radio hop, and an acoustic over-the-air
// model for the speaker→microphone hop between a radio and a phone.
//
// The paper's prototype transmits SONIC audio in the Mono channel with a
// 9.2 kHz carrier center; this package carries exactly that audio through
// a faithful software RF chain so that frame-loss behaviour emerges from
// channel physics (noise, FM threshold, band limits) rather than from a
// hard-coded loss table.
//
// The chain is implemented as a block-streaming pipeline: band-limiting
// runs through cached overlap-save FFT convolvers (dsp.FFTConvolver)
// instead of per-sample direct FIR convolution, the oscillators use
// math.Sincos and a one-period pilot table instead of cmplx.Rect /
// math.Sin per sample, and the stages between resampling in and
// resampling out operate in place on pooled buffers, so Broadcast
// performs O(1) slice allocations per call regardless of signal length.
package fm

import (
	"math"
	"math/rand"

	"sonic/internal/dsp"
)

// Standard broadcast-FM constants used throughout the package.
const (
	// CompositeRate is the sample rate of the FM composite baseband and of
	// the complex RF envelope. 192 kHz comfortably contains the 75 kHz
	// deviation plus the 57 kHz RDS subcarrier.
	CompositeRate = 192000

	// MaxDeviation is the broadcast FM peak frequency deviation (Hz).
	MaxDeviation = 75000

	// MonoBandLow and MonoBandHigh bound the mono (L+R) channel (Hz).
	MonoBandLow  = 30
	MonoBandHigh = 15000

	// PilotHz is the stereo pilot tone.
	PilotHz = 19000

	// RDSCarrierHz is the RDS subcarrier (3x pilot).
	RDSCarrierHz = 57000
)

// Modulator converts composite baseband samples (at CompositeRate) into a
// complex FM envelope exp(j*phi) at the same rate.
type Modulator struct {
	// Deviation is the peak frequency deviation in Hz applied to a
	// full-scale (|x|=1) composite signal. Defaults to MaxDeviation.
	Deviation float64
}

// Modulate frequency-modulates the composite signal.
func (m *Modulator) Modulate(composite []float64) []complex128 {
	out := make([]complex128, len(composite))
	m.ModulateInto(out, composite)
	return out
}

// ModulateInto frequency-modulates composite into dst, which must have
// the same length. The phase accumulation is a serial recurrence, so this
// stage always runs on one goroutine.
func (m *Modulator) ModulateInto(dst []complex128, composite []float64) {
	dev := m.Deviation
	if dev == 0 {
		dev = MaxDeviation
	}
	var phase float64
	k := 2 * math.Pi * dev / CompositeRate
	for i, x := range composite {
		phase += k * x
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
		s, c := math.Sincos(phase)
		dst[i] = complex(c, s)
	}
}

// Demodulator recovers the composite baseband from a complex FM envelope
// using a quadrature discriminator.
type Demodulator struct {
	Deviation float64 // must match the modulator; defaults to MaxDeviation
}

// Demodulate returns the recovered composite signal. The first sample has
// no phase predecessor and is emitted as zero.
func (d *Demodulator) Demodulate(envelope []complex128) []float64 {
	out := make([]float64, len(envelope))
	d.DemodulateInto(out, envelope, 1)
	return out
}

// DemodulateInto demodulates envelope into dst (same length), splitting
// the work across up to workers goroutines. Each sample depends only on
// its immediate predecessor, so block boundaries just re-read one
// neighbouring sample and the output is identical for every worker count.
func (d *Demodulator) DemodulateInto(dst []float64, envelope []complex128, workers int) {
	dev := d.Deviation
	if dev == 0 {
		dev = MaxDeviation
	}
	k := CompositeRate / (2 * math.Pi * dev)
	parallelFor(workers, len(envelope), func(lo, hi int) {
		var prev complex128 = 1
		if lo > 0 {
			prev = envelope[lo-1]
		}
		for i := lo; i < hi; i++ {
			s := envelope[i]
			if i > 0 {
				z := s * complex(real(prev), -imag(prev))
				dst[i] = math.Atan2(imag(z), real(z)) * k
			} else {
				dst[i] = 0
			}
			prev = s
		}
	})
}

// AddRFNoise adds complex AWGN, in place, to an FM envelope at the given
// carrier-to-noise ratio (dB), measured against the unit-power carrier,
// and returns the envelope. This is where the FM threshold effect comes
// from: below roughly 10 dB CNR the discriminator output collapses into
// click noise. The rng draw order (real, imag, per sample in order) is
// part of the contract: a caller seeding the rng identically gets an
// identical channel realization.
func AddRFNoise(envelope []complex128, cnrDB float64, rng *rand.Rand) []complex128 {
	sigma := math.Sqrt(math.Pow(10, -cnrDB/10) / 2)
	for i, s := range envelope {
		envelope[i] = s + complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
	return envelope
}

// addRFNoiseWorkers is AddRFNoise with optional data parallelism. With
// workers <= 1 it preserves the exact serial rng draw order. With more
// workers each block draws from its own rng seeded from the parent (one
// Int63 per block, drawn in block order), so the realization differs from
// the serial one but remains deterministic for a given seed and worker
// count, with the same noise statistics.
func addRFNoiseWorkers(envelope []complex128, cnrDB float64, rng *rand.Rand, workers int) {
	if workers <= 1 || len(envelope) < 2*parallelBlockMin {
		AddRFNoise(envelope, cnrDB, rng)
		return
	}
	sigma := math.Sqrt(math.Pow(10, -cnrDB/10) / 2)
	n := len(envelope)
	chunk := (n + workers - 1) / workers
	type blk struct {
		lo, hi int
		seed   int64
	}
	blocks := make([]blk, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		blocks = append(blocks, blk{lo, hi, rng.Int63()})
	}
	parallelFor(len(blocks), len(blocks), func(blo, bhi int) {
		for _, b := range blocks[blo:bhi] {
			r := rand.New(rand.NewSource(b.seed))
			for i := b.lo; i < b.hi; i++ {
				envelope[i] += complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
			}
		}
	})
}

// monoDeviationFraction is the share of peak deviation given to the mono
// channel in the composite mix (the rest is headroom for pilot/RDS),
// mirroring broadcast practice (~90% program, 10% pilot+subcarriers).
const monoDeviationFraction = 0.85

// Broadcast runs program audio (sampled at audioRate) through the full FM
// chain at the given carrier-to-noise ratio and returns the received
// program audio at the same rate. It is the paper's "FM transmitter +
// radio receiver" pair with everything between antenna and speaker.
func Broadcast(audio []float64, audioRate int, cnrDB float64, rng *rand.Rand) []float64 {
	return broadcastChain(audio, audioRate, cnrDB, rng, chainOpts{workers: resolveWorkers(0)})
}

// BuildComposite assembles the FM composite baseband at CompositeRate from
// mono program audio at audioRate, adding the 19 kHz pilot and, when rds
// is non-nil, the RDS subcarrier samples (at CompositeRate, already
// modulated around 57 kHz, unit scale).
func BuildComposite(audio []float64, audioRate int, rds []float64) []float64 {
	comp := dsp.Resample(audio, float64(audioRate), CompositeRate)
	// Band-limit program audio to the mono channel.
	comp = monoConvolver().Apply(comp, comp)
	pilot := pilotTable()
	j := 0
	for i, v := range comp {
		c := monoDeviationFraction*v + pilot[j]
		if j++; j == len(pilot) {
			j = 0
		}
		if rds != nil && i < len(rds) {
			c += 0.05 * rds[i]
		}
		comp[i] = c
	}
	return comp
}

// SplitComposite extracts the mono program audio (resampled to audioRate)
// and the raw 57 kHz RDS band (still at CompositeRate) from a received
// composite signal.
func SplitComposite(composite []float64, audioRate int) (audio []float64, rdsBand []float64) {
	monoBuf := getF64(len(composite))
	mono := monoConvolver().Apply(*monoBuf, composite)
	for i := range mono {
		mono[i] /= monoDeviationFraction
	}
	audio = dsp.ResampleInto(nil, mono, CompositeRate, float64(audioRate))
	putF64(monoBuf)

	rdsBand = rdsConvolver().Apply(nil, composite)
	for i := range rdsBand {
		rdsBand[i] /= 0.05
	}
	return audio, rdsBand
}
