// Package fm simulates the FM radio infrastructure SONIC repurposes: a
// software FM modulator/demodulator operating on the complex baseband
// envelope, the composite FM baseband layout from the paper's Figure 2
// (mono 30 Hz–15 kHz, 19 kHz stereo pilot, 57 kHz RDS subcarrier), a
// log-distance RSSI model for the radio hop, and an acoustic over-the-air
// model for the speaker→microphone hop between a radio and a phone.
//
// The paper's prototype transmits SONIC audio in the Mono channel with a
// 9.2 kHz carrier center; this package carries exactly that audio through
// a faithful software RF chain so that frame-loss behaviour emerges from
// channel physics (noise, FM threshold, band limits) rather than from a
// hard-coded loss table.
package fm

import (
	"math"
	"math/cmplx"
	"math/rand"

	"sonic/internal/dsp"
)

// Standard broadcast-FM constants used throughout the package.
const (
	// CompositeRate is the sample rate of the FM composite baseband and of
	// the complex RF envelope. 192 kHz comfortably contains the 75 kHz
	// deviation plus the 57 kHz RDS subcarrier.
	CompositeRate = 192000

	// MaxDeviation is the broadcast FM peak frequency deviation (Hz).
	MaxDeviation = 75000

	// MonoBandLow and MonoBandHigh bound the mono (L+R) channel (Hz).
	MonoBandLow  = 30
	MonoBandHigh = 15000

	// PilotHz is the stereo pilot tone.
	PilotHz = 19000

	// RDSCarrierHz is the RDS subcarrier (3x pilot).
	RDSCarrierHz = 57000
)

// Modulator converts composite baseband samples (at CompositeRate) into a
// complex FM envelope exp(j*phi) at the same rate.
type Modulator struct {
	// Deviation is the peak frequency deviation in Hz applied to a
	// full-scale (|x|=1) composite signal. Defaults to MaxDeviation.
	Deviation float64
}

// Modulate frequency-modulates the composite signal.
func (m *Modulator) Modulate(composite []float64) []complex128 {
	dev := m.Deviation
	if dev == 0 {
		dev = MaxDeviation
	}
	out := make([]complex128, len(composite))
	var phase float64
	k := 2 * math.Pi * dev / CompositeRate
	for i, x := range composite {
		phase += k * x
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
		out[i] = cmplx.Rect(1, phase)
	}
	return out
}

// Demodulator recovers the composite baseband from a complex FM envelope
// using a quadrature discriminator.
type Demodulator struct {
	Deviation float64 // must match the modulator; defaults to MaxDeviation
}

// Demodulate returns the recovered composite signal. The first sample has
// no phase predecessor and is emitted as zero.
func (d *Demodulator) Demodulate(envelope []complex128) []float64 {
	dev := d.Deviation
	if dev == 0 {
		dev = MaxDeviation
	}
	out := make([]float64, len(envelope))
	k := CompositeRate / (2 * math.Pi * dev)
	var prev complex128 = 1
	for i, s := range envelope {
		if i > 0 {
			out[i] = cmplx.Phase(s*cmplx.Conj(prev)) * k
		}
		prev = s
	}
	return out
}

// AddRFNoise adds complex AWGN to an FM envelope at the given
// carrier-to-noise ratio (dB), measured against the unit-power carrier.
// This is where the FM threshold effect comes from: below roughly 10 dB
// CNR the discriminator output collapses into click noise.
func AddRFNoise(envelope []complex128, cnrDB float64, rng *rand.Rand) []complex128 {
	sigma := math.Sqrt(math.Pow(10, -cnrDB/10) / 2)
	out := make([]complex128, len(envelope))
	for i, s := range envelope {
		out[i] = s + complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
	return out
}

// monoDeviationFraction is the share of peak deviation given to the mono
// channel in the composite mix (the rest is headroom for pilot/RDS),
// mirroring broadcast practice (~90% program, 10% pilot+subcarriers).
const monoDeviationFraction = 0.85

// Broadcast runs program audio (sampled at audioRate) through the full FM
// chain at the given carrier-to-noise ratio and returns the received
// program audio at the same rate. It is the paper's "FM transmitter +
// radio receiver" pair with everything between antenna and speaker.
func Broadcast(audio []float64, audioRate int, cnrDB float64, rng *rand.Rand) []float64 {
	comp := BuildComposite(audio, audioRate, nil)
	mod := (&Modulator{}).Modulate(comp)
	if !math.IsInf(cnrDB, 1) {
		mod = AddRFNoise(mod, cnrDB, rng)
	}
	rx := (&Demodulator{}).Demodulate(mod)
	out, _ := SplitComposite(rx, audioRate)
	return out
}

// BuildComposite assembles the FM composite baseband at CompositeRate from
// mono program audio at audioRate, adding the 19 kHz pilot and, when rds
// is non-nil, the RDS subcarrier samples (at CompositeRate, already
// modulated around 57 kHz, unit scale).
func BuildComposite(audio []float64, audioRate int, rds []float64) []float64 {
	up := dsp.Resample(audio, float64(audioRate), CompositeRate)
	// Band-limit program audio to the mono channel.
	lp := dsp.NewFIRFilter(dsp.LowpassFIR(MonoBandHigh, CompositeRate, 127))
	up = lp.ProcessBlock(up)
	comp := make([]float64, len(up))
	for i, v := range up {
		comp[i] = monoDeviationFraction * v
		// Stereo pilot at 9% deviation.
		comp[i] += 0.09 * math.Sin(2*math.Pi*PilotHz*float64(i)/CompositeRate)
		if rds != nil && i < len(rds) {
			comp[i] += 0.05 * rds[i]
		}
	}
	return comp
}

// SplitComposite extracts the mono program audio (resampled to audioRate)
// and the raw 57 kHz RDS band (still at CompositeRate) from a received
// composite signal.
func SplitComposite(composite []float64, audioRate int) (audio []float64, rdsBand []float64) {
	lp := dsp.NewFIRFilter(dsp.LowpassFIR(MonoBandHigh, CompositeRate, 127))
	mono := lp.ProcessBlock(composite)
	for i := range mono {
		mono[i] /= monoDeviationFraction
	}
	audio = dsp.Resample(mono, CompositeRate, float64(audioRate))

	bp := dsp.NewFIRFilter(dsp.BandpassFIR(RDSCarrierHz-3000, RDSCarrierHz+3000, CompositeRate, 255))
	rdsBand = bp.ProcessBlock(composite)
	for i := range rdsBand {
		rdsBand[i] /= 0.05
	}
	return audio, rdsBand
}
