package fec

import "fmt"

// Interleaver is a byte block interleaver: bytes are written into a
// rows×cols matrix row by row and read out column by column, spreading a
// burst of up to rows consecutive corrupted bytes across rows distinct
// positions. It operates on exact multiples of rows*cols; Pad can be used
// to round a message up.
type Interleaver struct {
	rows, cols int
}

// NewInterleaver returns a rows×cols block interleaver.
func NewInterleaver(rows, cols int) (*Interleaver, error) { //sonic:ignore equivpin index permutation pinned by round-trip property tests
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("fec: invalid interleaver geometry %dx%d", rows, cols)
	}
	return &Interleaver{rows: rows, cols: cols}, nil
}

// BlockSize returns rows*cols, the unit the interleaver operates on.
func (il *Interleaver) BlockSize() int { return il.rows * il.cols }

// Pad appends zero bytes so len(data) is a multiple of BlockSize, and
// returns the padded slice plus the original length.
func (il *Interleaver) Pad(data []byte) (padded []byte, origLen int) {
	bs := il.BlockSize()
	rem := len(data) % bs
	if rem == 0 {
		return data, len(data)
	}
	out := make([]byte, len(data)+bs-rem)
	copy(out, data)
	return out, len(data)
}

// Interleave permutes data (whose length must be a multiple of BlockSize)
// and returns a new slice.
func (il *Interleaver) Interleave(data []byte) ([]byte, error) {
	bs := il.BlockSize()
	if len(data)%bs != 0 {
		return nil, fmt.Errorf("fec: interleave length %d not a multiple of %d", len(data), bs)
	}
	out := make([]byte, len(data))
	for blk := 0; blk+bs <= len(data); blk += bs {
		for r := 0; r < il.rows; r++ {
			for c := 0; c < il.cols; c++ {
				out[blk+c*il.rows+r] = data[blk+r*il.cols+c]
			}
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(data []byte) ([]byte, error) {
	bs := il.BlockSize()
	if len(data)%bs != 0 {
		return nil, fmt.Errorf("fec: deinterleave length %d not a multiple of %d", len(data), bs)
	}
	out := make([]byte, len(data))
	for blk := 0; blk+bs <= len(data); blk += bs {
		for r := 0; r < il.rows; r++ {
			for c := 0; c < il.cols; c++ {
				out[blk+r*il.cols+c] = data[blk+c*il.rows+r]
			}
		}
	}
	return out, nil
}
