package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(0, 5); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewInterleaver(5, -1); err == nil {
		t.Error("negative cols should fail")
	}
	il, err := NewInterleaver(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if il.BlockSize() != 32 {
		t.Errorf("BlockSize = %d", il.BlockSize())
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	il, _ := NewInterleaver(8, 16)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 8*16*3)
	rng.Read(data)
	inter, err := il.Interleave(data)
	if err != nil {
		t.Fatal(err)
	}
	deinter, err := il.Deinterleave(inter)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deinter, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestInterleaveRejectsBadLength(t *testing.T) {
	il, _ := NewInterleaver(4, 4)
	if _, err := il.Interleave(make([]byte, 15)); err == nil {
		t.Error("non-multiple length should fail")
	}
	if _, err := il.Deinterleave(make([]byte, 17)); err == nil {
		t.Error("non-multiple length should fail")
	}
}

func TestInterleavePad(t *testing.T) {
	il, _ := NewInterleaver(4, 4)
	padded, orig := il.Pad([]byte{1, 2, 3})
	if orig != 3 || len(padded) != 16 {
		t.Errorf("Pad: len=%d orig=%d", len(padded), orig)
	}
	exact := make([]byte, 16)
	padded, orig = il.Pad(exact)
	if len(padded) != 16 || orig != 16 {
		t.Errorf("Pad of exact multiple: len=%d orig=%d", len(padded), orig)
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of `rows` consecutive corrupted bytes in the interleaved
	// stream must land in `rows` different rows after deinterleaving,
	// i.e. no two corrupted bytes within cols of each other.
	il, _ := NewInterleaver(8, 32)
	n := il.BlockSize()
	data := make([]byte, n)
	inter, _ := il.Interleave(data)
	// Corrupt an 8-byte burst.
	start := 40
	for i := start; i < start+8; i++ {
		inter[i] = 0xFF
	}
	deinter, _ := il.Deinterleave(inter)
	var positions []int
	for i, v := range deinter {
		if v == 0xFF {
			positions = append(positions, i)
		}
	}
	if len(positions) != 8 {
		t.Fatalf("found %d corrupted bytes, want 8", len(positions))
	}
	for i := 1; i < len(positions); i++ {
		if positions[i]-positions[i-1] < 8 {
			t.Errorf("corrupted bytes too close after deinterleave: %v", positions)
		}
	}
}

func TestInterleaveQuickProperty(t *testing.T) {
	il, _ := NewInterleaver(5, 7)
	f := func(data []byte) bool {
		padded, _ := il.Pad(data)
		inter, err := il.Interleave(padded)
		if err != nil {
			return false
		}
		deinter, err := il.Deinterleave(inter)
		if err != nil {
			return false
		}
		return bytes.Equal(deinter, padded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCRCHelpers(t *testing.T) {
	data := []byte("sonic")
	sum := Checksum32(data)
	if !Verify32(data, sum) {
		t.Error("Verify32 failed on matching sum")
	}
	if Verify32([]byte("sonik"), sum) {
		t.Error("Verify32 passed on corrupted data")
	}
	s16 := Checksum16(data)
	if !Verify16(data, s16) {
		t.Error("Verify16 failed")
	}
	if Verify16([]byte("sonik"), s16) {
		t.Error("Verify16 passed on corrupted data")
	}
	// CRC-16/CCITT-FALSE known answer for "123456789".
	if got := Checksum16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16(123456789) = %#x, want 0x29B1", got)
	}
}
