package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParity(t *testing.T) {
	cases := map[uint32]byte{0: 0, 1: 1, 3: 0, 7: 1, 0xFF: 0, 0x101: 0, 0x100: 1}
	for in, want := range cases {
		if got := parity(in); got != want {
			t.Errorf("parity(%#x) = %d, want %d", in, got, want)
		}
	}
}

func TestConvCodeParams(t *testing.T) {
	v29 := NewV29()
	if v29.ConstraintLength() != 9 || v29.Rate() != 0.5 {
		t.Errorf("v29 params wrong: K=%d rate=%g", v29.ConstraintLength(), v29.Rate())
	}
	v27 := NewV27()
	if v27.ConstraintLength() != 7 {
		t.Errorf("v27 K=%d", v27.ConstraintLength())
	}
}

func TestConvEncodedBitsLength(t *testing.T) {
	c := NewV29()
	bits := make([]byte, 100)
	coded := c.EncodeBits(bits)
	if len(coded) != 2*(100+8) {
		t.Errorf("coded len = %d, want %d", len(coded), 2*108)
	}
	if got := c.EncodedBits(10); got != 2*(80+8) {
		t.Errorf("EncodedBits(10) = %d", got)
	}
}

func TestConvRoundTripClean(t *testing.T) {
	for _, c := range []*ConvCode{NewV27(), NewV29()} {
		rng := rand.New(rand.NewSource(7))
		for _, n := range []int{1, 8, 100, 333} {
			bits := make([]byte, n)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			coded := c.EncodeBits(bits)
			dec, err := c.DecodeBits(coded)
			if err != nil {
				t.Fatalf("K=%d n=%d: %v", c.k, n, err)
			}
			if !bytes.Equal(dec, bits) {
				t.Fatalf("K=%d n=%d: round trip mismatch", c.k, n)
			}
		}
	}
}

func TestConvCorrectsScatteredErrors(t *testing.T) {
	// A rate-1/2 K=9 code has free distance 12: it corrects up to 5 errors
	// in any constraint-length window. Scatter errors widely and expect
	// perfect recovery.
	c := NewV29()
	rng := rand.New(rand.NewSource(8))
	bits := make([]byte, 800)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	coded := c.EncodeBits(bits)
	// Flip one bit every 40 coded bits (2.5% BER, well-separated).
	for i := 20; i < len(coded); i += 40 {
		coded[i] ^= 1
	}
	dec, err := c.DecodeBits(coded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, bits) {
		t.Fatal("scattered errors not corrected")
	}
}

func TestConvRandomBERRecovery(t *testing.T) {
	// At 2% random BER, v29 should essentially always recover the frame.
	c := NewV29()
	rng := rand.New(rand.NewSource(9))
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		bits := make([]byte, 800)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		coded := c.EncodeBits(bits)
		for i := range coded {
			if rng.Float64() < 0.02 {
				coded[i] ^= 1
			}
		}
		dec, err := c.DecodeBits(coded)
		if err == nil && bytes.Equal(dec, bits) {
			ok++
		}
	}
	if ok < trials-2 {
		t.Errorf("only %d/%d frames recovered at 2%% BER", ok, trials)
	}
}

func TestConvV29OutperformsV27(t *testing.T) {
	// At a stressful BER the stronger code should recover at least as many
	// frames — this is the ablation claim behind choosing v29.
	run := func(c *ConvCode, ber float64, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		ok := 0
		for trial := 0; trial < 30; trial++ {
			bits := make([]byte, 400)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			coded := c.EncodeBits(bits)
			for i := range coded {
				if rng.Float64() < ber {
					coded[i] ^= 1
				}
			}
			dec, err := c.DecodeBits(coded)
			if err == nil && bytes.Equal(dec, bits) {
				ok++
			}
		}
		return ok
	}
	ok29 := run(NewV29(), 0.045, 10)
	ok27 := run(NewV27(), 0.045, 10)
	if ok29 < ok27 {
		t.Errorf("v29 recovered %d frames but v27 recovered %d", ok29, ok27)
	}
}

func TestConvDecodeBadLength(t *testing.T) {
	c := NewV29()
	if _, err := c.DecodeBits(make([]byte, 3)); err != ErrBadCodeLength {
		t.Errorf("odd length err = %v", err)
	}
	if _, err := c.DecodeBits(make([]byte, 2)); err != ErrBadCodeLength {
		t.Errorf("too-short err = %v", err)
	}
	if _, err := c.Decode([]byte{0}, 100); err == nil {
		t.Error("codedBits beyond buffer should fail")
	}
}

func TestConvByteAPIRoundTrip(t *testing.T) {
	c := NewV29()
	msg := []byte("SONIC frame payload: 100 bytes of webpage partition data....")
	coded, nbits := c.Encode(msg)
	dec, err := c.Decode(coded, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Fatal("byte API round trip mismatch")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Explicit MSB-first check.
	bits := BytesToBits([]byte{0x80, 0x01})
	if bits[0] != 1 || bits[7] != 0 || bits[15] != 1 {
		t.Errorf("bit order wrong: %v", bits)
	}
}

func TestConvQuickRoundTrip(t *testing.T) {
	c := NewV27() // faster for quick-check volume
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		coded, nbits := c.Encode(data)
		dec, err := c.Decode(coded, nbits)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkV29Encode100B(b *testing.B) {
	c := NewV29()
	msg := make([]byte, 100)
	b.SetBytes(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}

func BenchmarkV29Decode100B(b *testing.B) {
	c := NewV29()
	msg := make([]byte, 100)
	rand.New(rand.NewSource(1)).Read(msg)
	coded, nbits := c.Encode(msg)
	b.SetBytes(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(coded, nbits); err != nil {
			b.Fatal(err)
		}
	}
}
