package fec

import (
	"bytes"
	"testing"
)

// FuzzRSDecode feeds arbitrary byte streams to the Reed-Solomon
// decoders. Decode and DecodeBlock must never panic no matter how the
// input is shaped, and every message must survive an Encode→Decode
// round trip — including with up to MaxErrors corrupted symbols per
// block, which the code is sized to correct.
func FuzzRSDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("sonic fuzz seed"))
	f.Add(bytes.Repeat([]byte{0xA5}, 255))
	f.Add(bytes.Repeat([]byte{0x00}, 223))

	rs := NewRS8()
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary garbage into both decode entry points: error or
		// success, never a panic.
		rs.Decode(data)
		rs.DecodeBlock(data)

		// Round trip: encode the input as a message, corrupt as many
		// symbols as the code corrects (positions derived from the data
		// itself so runs stay reproducible), decode, compare.
		enc := rs.Encode(data)
		if got := len(enc); got != rs.EncodedLen(len(data)) {
			t.Fatalf("EncodedLen(%d) = %d but Encode produced %d bytes", len(data), rs.EncodedLen(len(data)), got)
		}
		if len(enc) > 0 {
			seed := 0
			for _, b := range data {
				seed = seed*31 + int(b)
			}
			if seed < 0 {
				seed = -seed
			}
			n := rs.DataLen() + rs.ParityLen()
			for e := 0; e < rs.MaxErrors(); e++ {
				// One corruption per block, staying inside the first block.
				pos := (seed + e*13) % min(n, len(enc))
				enc[pos] ^= byte(1 + e)
			}
		}
		dec, _, err := rs.Decode(enc)
		if err != nil {
			t.Fatalf("Decode of correctably-corrupted stream failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("RS round trip changed the message: %d bytes in, %d bytes out", len(data), len(dec))
		}
	})
}
