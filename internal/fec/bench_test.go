package fec

import (
	"math/rand"
	"testing"
)

// benchCoded returns a coded stream for one rs8+v29 frame worth of data
// (264 bytes, the on-air inner-code block size) with a few bit errors.
func benchCoded(c *ConvCode, msgBytes int, flips int) []byte {
	rng := rand.New(rand.NewSource(42))
	msg := make([]byte, msgBytes)
	rng.Read(msg)
	coded := c.EncodeBits(BytesToBits(msg))
	for i := 0; i < flips; i++ {
		coded[rng.Intn(len(coded))] ^= 1
	}
	return coded
}

// benchSoft converts a coded bit stream to noisy soft metrics.
func benchSoft(coded []byte, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	soft := make([]float64, len(coded))
	for i, b := range coded {
		v := -1.0
		if b == 1 {
			v = 1
		}
		soft[i] = v + 0.3*rng.NormFloat64()
	}
	return soft
}

func BenchmarkViterbiHardV29(b *testing.B) {
	c := NewV29()
	coded := benchCoded(c, 264, 16)
	b.SetBytes(264)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DecodeBitsMetric(coded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiHardV27(b *testing.B) {
	c := NewV27()
	coded := benchCoded(c, 264, 16)
	b.SetBytes(264)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DecodeBitsMetric(coded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiSoftV29(b *testing.B) {
	c := NewV29()
	soft := benchSoft(benchCoded(c, 264, 0), 7)
	b.SetBytes(264)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeSoft(soft); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRS8Decode measures the table-driven outer decoder over a
// multi-codeword stream carrying a correctable scatter of symbol errors.
func BenchmarkRS8Decode(b *testing.B) {
	r := NewRS8()
	rng := rand.New(rand.NewSource(43))
	msg := make([]byte, 4*r.DataLen())
	rng.Read(msg)
	enc := r.Encode(msg)
	for cw := 0; cw < 4; cw++ {
		base := cw * (r.DataLen() + r.ParityLen())
		for e := 0; e < 4; e++ {
			enc[base+rng.Intn(r.DataLen())] ^= byte(1 + rng.Intn(255))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
