package fec

import "hash/crc32"

// The paper uses crc32 as the per-frame checksum (§3.3). We use the IEEE
// polynomial via the standard library; the helpers here exist so framing
// code does not repeat the table plumbing, and so a 16-bit variant is
// available for compact headers.

var crcTable = crc32.MakeTable(crc32.IEEE)

// Checksum32 returns the IEEE CRC32 of data.
func Checksum32(data []byte) uint32 {
	return crc32.Checksum(data, crcTable)
}

// Verify32 reports whether data matches the given CRC32.
func Verify32(data []byte, sum uint32) bool {
	return Checksum32(data) == sum
}

// Checksum16 returns a CRC-16/CCITT-FALSE checksum (poly 0x1021, init
// 0xFFFF), used for short control records such as RDS-style groups and SMS
// gateway headers where a 4-byte CRC would be disproportionate.
func Checksum16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Verify16 reports whether data matches the given CRC-16.
func Verify16(data []byte, sum uint16) bool {
	return Checksum16(data) == sum
}
