package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// alpha^255 == 1, inverses multiply to 1, distributivity spot checks.
	if gfPow(255) != 1 {
		t.Errorf("alpha^255 = %d, want 1", gfPow(255))
	}
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity failed for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity failed for %d,%d", a, b)
		}
	}
}

func TestGFDivByZero(t *testing.T) {
	if gfDiv(5, 0) != 0 || gfDiv(0, 5) != 0 {
		t.Error("gfDiv with zero operand should return 0")
	}
}

func TestNewRSValidation(t *testing.T) {
	if _, err := NewRS(0); err == nil {
		t.Error("NewRS(0) should fail")
	}
	if _, err := NewRS(255); err == nil {
		t.Error("NewRS(255) should fail")
	}
	if _, err := NewRS(223); err != nil {
		t.Errorf("NewRS(223) failed: %v", err)
	}
}

func TestRS8Geometry(t *testing.T) {
	rs := NewRS8()
	if rs.DataLen() != 223 || rs.ParityLen() != 32 || rs.MaxErrors() != 16 {
		t.Errorf("rs8 geometry wrong: k=%d parity=%d t=%d",
			rs.DataLen(), rs.ParityLen(), rs.MaxErrors())
	}
	if rs.Overhead() < 1.14 || rs.Overhead() > 1.15 {
		t.Errorf("rs8 overhead = %g, want ~255/223", rs.Overhead())
	}
}

func TestRSRoundTripClean(t *testing.T) {
	rs := NewRS8()
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 10, 223, 224, 500, 1000} {
		msg := make([]byte, n)
		rng.Read(msg)
		enc := rs.Encode(msg)
		if len(enc) != rs.EncodedLen(n) {
			t.Fatalf("n=%d EncodedLen=%d but len(enc)=%d", n, rs.EncodedLen(n), len(enc))
		}
		dec, corrected, err := rs.Decode(enc)
		if err != nil {
			t.Fatalf("n=%d decode: %v", n, err)
		}
		if corrected != 0 {
			t.Errorf("n=%d clean decode corrected %d", n, corrected)
		}
		if !bytes.Equal(dec, msg) {
			t.Fatalf("n=%d round trip mismatch", n)
		}
	}
}

func TestRSCorrectsUpToTErrors(t *testing.T) {
	rs := NewRS8()
	rng := rand.New(rand.NewSource(3))
	msg := make([]byte, 223)
	rng.Read(msg)
	enc := rs.Encode(msg)

	for nerr := 1; nerr <= rs.MaxErrors(); nerr++ {
		corrupted := make([]byte, len(enc))
		copy(corrupted, enc)
		positions := rng.Perm(len(enc))[:nerr]
		for _, p := range positions {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		dec, corrected, err := rs.Decode(corrupted)
		if err != nil {
			t.Fatalf("nerr=%d: decode failed: %v", nerr, err)
		}
		if corrected != nerr {
			t.Errorf("nerr=%d: corrected=%d", nerr, corrected)
		}
		if !bytes.Equal(dec, msg) {
			t.Fatalf("nerr=%d: wrong message", nerr)
		}
	}
}

func TestRSShortenedCodeCorrectsErrors(t *testing.T) {
	rs := NewRS8()
	rng := rand.New(rand.NewSource(4))
	msg := make([]byte, 100) // shortened: 100 data + 32 parity
	rng.Read(msg)
	enc := rs.Encode(msg)
	if len(enc) != 132 {
		t.Fatalf("shortened encoded len = %d, want 132", len(enc))
	}
	for trial := 0; trial < 20; trial++ {
		corrupted := make([]byte, len(enc))
		copy(corrupted, enc)
		for _, p := range rng.Perm(len(enc))[:16] {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		dec, _, err := rs.Decode(corrupted)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(dec, msg) {
			t.Fatalf("trial %d: wrong message", trial)
		}
	}
}

func TestRSDetectsUncorrectable(t *testing.T) {
	rs := NewRS8()
	rng := rand.New(rand.NewSource(5))
	msg := make([]byte, 223)
	rng.Read(msg)
	enc := rs.Encode(msg)
	// Way past the correction radius: expect an error (or, rarely, a
	// miscorrection — but never a silent wrong answer claiming 0 errors).
	failures := 0
	for trial := 0; trial < 10; trial++ {
		corrupted := make([]byte, len(enc))
		copy(corrupted, enc)
		for _, p := range rng.Perm(len(enc))[:40] {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		_, _, err := rs.Decode(corrupted)
		if err != nil {
			failures++
		}
	}
	if failures < 8 {
		t.Errorf("only %d/10 heavily corrupted codewords rejected", failures)
	}
}

func TestRSMultiCodewordErrors(t *testing.T) {
	rs := NewRS8()
	rng := rand.New(rand.NewSource(6))
	msg := make([]byte, 600) // 3 codewords (223+223+154)
	rng.Read(msg)
	enc := rs.Encode(msg)
	// Corrupt a few bytes in each codeword region.
	corrupted := make([]byte, len(enc))
	copy(corrupted, enc)
	for _, p := range []int{0, 100, 254, 300, 500, 510, 600, 640} {
		if p < len(corrupted) {
			corrupted[p] ^= 0xFF
		}
	}
	dec, corrected, err := rs.Decode(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if corrected == 0 {
		t.Error("expected corrections")
	}
	if !bytes.Equal(dec, msg) {
		t.Fatal("multi-codeword round trip mismatch")
	}
}

func TestRSEncodeBlockTooLong(t *testing.T) {
	rs := NewRS8()
	if _, err := rs.EncodeBlock(make([]byte, 224)); err == nil {
		t.Error("EncodeBlock beyond k should fail")
	}
}

func TestRSDecodeBadLengths(t *testing.T) {
	rs := NewRS8()
	if _, _, err := rs.DecodeBlock(make([]byte, 10)); err == nil {
		t.Error("block shorter than parity should fail")
	}
	if _, _, err := rs.DecodeBlock(make([]byte, 256)); err == nil {
		t.Error("block longer than 255 should fail")
	}
	if _, _, err := rs.Decode(make([]byte, 32)); err == nil {
		t.Error("trailing fragment of parity-only bytes should fail")
	}
}

func TestRSQuickProperty(t *testing.T) {
	// Property: for any message and any <=16 byte errors within one
	// codeword, decode recovers the message exactly.
	rs := NewRS8()
	f := func(seed int64, msgLen uint8, nerr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(msgLen)%223 + 1
		e := int(nerr) % 17
		msg := make([]byte, n)
		rng.Read(msg)
		enc := rs.Encode(msg)
		if e > 0 {
			for _, p := range rng.Perm(len(enc))[:min(e, len(enc))] {
				enc[p] ^= byte(1 + rng.Intn(255))
			}
		}
		dec, _, err := rs.Decode(enc)
		return err == nil && bytes.Equal(dec, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkRS8Encode(b *testing.B) {
	rs := NewRS8()
	msg := make([]byte, 223)
	rand.New(rand.NewSource(1)).Read(msg)
	b.SetBytes(223)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Encode(msg)
	}
}

func BenchmarkRS8Decode16Errors(b *testing.B) {
	rs := NewRS8()
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, 223)
	rng.Read(msg)
	enc := rs.Encode(msg)
	corrupted := make([]byte, len(enc))
	copy(corrupted, enc)
	for _, p := range rng.Perm(len(enc))[:16] {
		corrupted[p] ^= 0x55
	}
	buf := make([]byte, len(enc))
	b.SetBytes(255)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, corrupted)
		if _, _, err := rs.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
