package fec

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

// Parity pins for the frame checksums. Checksum32 must stay
// byte-identical to the standard library's IEEE CRC32 (receivers in the
// field may reimplement it from the spec), and Checksum16 must stay on
// CRC-16/CCITT-FALSE as published — both are wire formats, so any drift
// strands deployed receivers.

func TestChecksum32MatchesStdlibIEEE(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{0, 1, 9, 64, 1500} {
		data := make([]byte, n)
		rng.Read(data)
		want := crc32.ChecksumIEEE(data)
		got := Checksum32(data)
		if got != want {
			t.Fatalf("len %d: Checksum32 = %#x, crc32.ChecksumIEEE = %#x", n, got, want)
		}
		if !Verify32(data, got) {
			t.Fatalf("len %d: Verify32 rejects its own checksum", n)
		}
		if n > 0 && Verify32(data, got^1) {
			t.Fatalf("len %d: Verify32 accepts a corrupted checksum", n)
		}
	}
}

func TestChecksum16MatchesKnownVectors(t *testing.T) {
	// Standard CRC-16/CCITT-FALSE check vectors (poly 0x1021, init
	// 0xFFFF, no reflection, no final xor).
	vectors := []struct {
		in   string
		want uint16
	}{
		{"", 0xFFFF},
		{"123456789", 0x29B1},
		{"A", 0xB915},
	}
	for _, v := range vectors {
		got := Checksum16([]byte(v.in))
		if got != v.want {
			t.Fatalf("Checksum16(%q) = %#x, want %#x", v.in, got, v.want)
		}
		if !Verify16([]byte(v.in), got) {
			t.Fatalf("Verify16 rejects the checksum of %q", v.in)
		}
		if Verify16([]byte(v.in), got^1) {
			t.Fatalf("Verify16 accepts a corrupted checksum of %q", v.in)
		}
	}
}
