package fec

import (
	"errors"
	"fmt"
	"sync"
)

// RS is a Reed-Solomon codec over GF(2^8) with N=255 total symbols and
// K data symbols per codeword; it corrects up to (255-K)/2 symbol errors.
// Shortened codewords (fewer than K data bytes) are handled transparently
// by zero-padding on encode and stripping on decode.
//
// The paper's "rs8" outer code corresponds to NewRS8().
//
// The hot loops are table-driven: NewRS precomputes, per instance, the
// encoder feedback rows (fb -> fb·gen[1:]) and the per-root Horner
// multiplier tables used for syndrome computation, so the per-byte work
// is one table lookup + xor instead of log/exp arithmetic with zero
// branches. Decoding scratch (syndromes, Berlekamp-Massey state, Chien/
// Forney buffers, the codeword copy) comes from a per-instance pool, so
// steady-state Decode performs a single output allocation. All of the
// GF(2^8) arithmetic is exact, so outputs are byte-identical to the
// straightforward implementation.
type RS struct {
	k      int    // data symbols per codeword
	nroots int    // parity symbols per codeword
	gen    []byte // generator polynomial, highest degree first
	fcr    int    // first consecutive root exponent

	// genTab[fb*nroots+i] = gfMul(fb, gen[i+1]): the parity feedback row
	// for message byte feedback fb.
	genTab []byte
	// syndTab[i*256+v] = gfMul(v, alpha^(fcr+i)): the Horner multiplier
	// table for syndrome/root i.
	syndTab []byte

	pool sync.Pool // *rsWork
}

// rsWork is the pooled per-decode scratch. Arrays are sized for the full
// N=255 code so one workspace serves every (possibly shortened) block.
type rsWork struct {
	block  [rsN]byte // codeword copy used by Decode
	synd   [rsN]byte
	bufA   [rsN]byte // Berlekamp-Massey sigma/prev/scratch rotation
	bufB   [rsN]byte
	bufC   [rsN]byte
	omega  [rsN]byte
	exps   [rsN]int16 // Chien term exponents; -1 marks a zero coefficient
	errPos [rsN]int
}

// Standard rs8 geometry: RS(255,223), 16 parity roots.
const (
	rsN       = 255
	rs8K      = 223
	rs8Parity = rsN - rs8K
	rs8FCR    = 1
)

// ErrTooManyErrors is returned when a codeword is uncorrectable.
var ErrTooManyErrors = errors.New("fec: reed-solomon codeword uncorrectable")

// NewRS returns an RS(255, k) codec. k must be in [1, 254].
func NewRS(k int) (*RS, error) {
	if k < 1 || k > rsN-1 {
		return nil, fmt.Errorf("fec: invalid RS k=%d", k)
	}
	r := &RS{k: k, nroots: rsN - k, fcr: rs8FCR}
	// Generator polynomial: product of (x - alpha^(fcr+i)).
	g := []byte{1}
	for i := 0; i < r.nroots; i++ {
		g = polyMul(g, []byte{1, gfPow(r.fcr + i)})
	}
	r.gen = g

	r.genTab = make([]byte, 256*r.nroots)
	for fb := 1; fb < 256; fb++ {
		row := r.genTab[fb*r.nroots:]
		for i := 0; i < r.nroots; i++ {
			row[i] = gfMul(byte(fb), g[i+1])
		}
	}
	r.syndTab = make([]byte, r.nroots*256)
	for i := 0; i < r.nroots; i++ {
		root := gfPow(r.fcr + i)
		row := r.syndTab[i*256:]
		for v := 1; v < 256; v++ {
			row[v] = gfMul(byte(v), root)
		}
	}
	return r, nil
}

// NewRS8 returns the paper's outer code, RS(255,223).
func NewRS8() *RS {
	r, err := NewRS(rs8K)
	if err != nil {
		panic(err) // unreachable: constant k is valid
	}
	return r
}

func (r *RS) getWork() *rsWork {
	if ws, ok := r.pool.Get().(*rsWork); ok {
		return ws
	}
	return new(rsWork)
}

func (r *RS) putWork(ws *rsWork) { r.pool.Put(ws) }

// DataLen returns the number of data symbols per codeword.
func (r *RS) DataLen() int { return r.k }

// ParityLen returns the number of parity symbols per codeword.
func (r *RS) ParityLen() int { return r.nroots }

// MaxErrors returns the number of symbol errors correctable per codeword.
func (r *RS) MaxErrors() int { return r.nroots / 2 }

// appendParity appends the nroots parity symbols for data to out.
func (r *RS) appendParity(out []byte, data []byte) []byte {
	// Systematic encoding: parity = (msg * x^nroots) mod gen, computed over
	// the virtual full-length (zero-prefixed) message. Leading zeros do not
	// change the remainder, so shortened messages need no explicit padding.
	var parityArr [rsN]byte
	parity := parityArr[:r.nroots]
	for _, d := range data {
		fb := d ^ parity[0]
		copy(parity, parity[1:])
		parity[r.nroots-1] = 0
		if fb != 0 {
			row := r.genTab[int(fb)*r.nroots:]
			for i, g := range row[:r.nroots] {
				parity[i] ^= g
			}
		}
	}
	return append(out, parity...)
}

// EncodeBlock appends the parity symbols for one codeword of data
// (len(data) <= k; shorter input is treated as a shortened code) and
// returns data||parity as a new slice.
func (r *RS) EncodeBlock(data []byte) ([]byte, error) {
	if len(data) > r.k {
		return nil, fmt.Errorf("fec: block of %d exceeds RS k=%d", len(data), r.k)
	}
	out := make([]byte, 0, len(data)+r.nroots)
	out = append(out, data...)
	return r.appendParity(out, data), nil
}

// DecodeBlock corrects a codeword in place (data||parity as produced by
// EncodeBlock, possibly shortened) and returns the corrected data portion
// along with the number of symbol errors fixed. It returns
// ErrTooManyErrors when the codeword cannot be corrected.
func (r *RS) DecodeBlock(block []byte) (data []byte, corrected int, err error) {
	ws := r.getWork()
	data, corrected, err = r.decodeBlock(block, ws)
	r.putWork(ws)
	return data, corrected, err
}

// syndromes fills ws.synd from block and reports whether any syndrome is
// non-zero. Each syndrome is a Horner evaluation at its root; the
// multiply-by-root step is one precomputed table lookup.
func (r *RS) syndromes(block []byte, ws *rsWork) bool {
	synd := ws.synd[:r.nroots]
	for i := range synd {
		synd[i] = 0
	}
	for _, c := range block {
		for i, s := range synd {
			synd[i] = r.syndTab[i<<8|int(s)] ^ c
		}
	}
	var nz byte
	for _, s := range synd {
		nz |= s
	}
	return nz != 0
}

func (r *RS) decodeBlock(block []byte, ws *rsWork) (data []byte, corrected int, err error) {
	if len(block) < r.nroots+1 || len(block) > rsN {
		return nil, 0, fmt.Errorf("fec: RS block length %d out of range", len(block))
	}
	pad := rsN - len(block) // virtual leading zeros of the shortened code

	if !r.syndromes(block, ws) {
		return block[:len(block)-r.nroots], 0, nil
	}
	synd := ws.synd[:r.nroots]

	// Berlekamp-Massey: find the error locator polynomial sigma
	// (lowest degree first here for convenience). sigma/prev/scratch
	// rotate through the three pooled buffers; lengths are tracked
	// explicitly.
	sigma, prev, spare := ws.bufA[:], ws.bufB[:], ws.bufC[:]
	sigma[0], prev[0] = 1, 1
	ls, lp := 1, 1 // poly lengths (number of coefficients)
	var l, m int = 0, 1
	b := byte(1)
	for n := 0; n < r.nroots; n++ {
		var d byte = synd[n]
		for i := 1; i <= l; i++ {
			if i < ls {
				d ^= gfMul(sigma[i], synd[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		coef := gfDiv(d, b)
		// spare = sigma + coef * prev * x^m
		lo := ls
		if lp+m > lo {
			lo = lp + m
		}
		copy(spare[:ls], sigma[:ls])
		for i := ls; i < lo; i++ {
			spare[i] = 0
		}
		for i := 0; i < lp; i++ {
			spare[i+m] ^= gfMul(prev[i], coef)
		}
		if 2*l <= n {
			sigma, prev, spare = spare, sigma, prev
			ls, lp = lo, ls
			l = n + 1 - l
			b = d
			m = 1
		} else {
			sigma, spare = spare, sigma
			ls = lo
			m++
		}
	}
	if l > r.nroots/2 {
		return nil, 0, ErrTooManyErrors
	}

	// Chien search over valid positions of the (possibly shortened) code:
	// error at block[i] iff sigma(alpha^{-(rsN-1-pad-i)}) == 0. The root
	// exponent advances by one per position, so each non-zero term
	// sigma[k]·x^k advances by k in the exponent domain; the search keeps
	// one log-domain accumulator per coefficient and never multiplies.
	exps := ws.exps[:ls]
	e0 := (pad + 1) % 255 // exponent of x at block[0]: -(rsN-1-pad) mod 255
	for k := 0; k < ls; k++ {
		if sigma[k] == 0 {
			exps[k] = -1
			continue
		}
		exps[k] = int16((int(gfLog[sigma[k]]) + k*e0) % 255)
	}
	errPos := ws.errPos[:0] // indexes into block
	for i := 0; i < rsN-pad; i++ {
		var acc byte
		for k := 0; k < ls; k++ {
			e := exps[k]
			if e < 0 {
				continue
			}
			acc ^= gfExp[e]
			e += int16(k)
			if e >= 255 {
				e -= 255
			}
			exps[k] = e
		}
		if acc == 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != l {
		return nil, 0, ErrTooManyErrors
	}

	// Forney algorithm: error evaluator omega = (synd * sigma) mod x^nroots.
	omega := ws.omega[:r.nroots]
	for i := 0; i < r.nroots; i++ {
		var acc byte
		for j := 0; j <= i && j < ls; j++ {
			acc ^= gfMul(sigma[j], synd[i-j])
		}
		omega[i] = acc
	}
	// Formal derivative of sigma (terms with odd powers).
	for _, pos := range errPos {
		xPow := rsN - 1 - pad - pos // exponent: block[pos] is coefficient of x^xPow
		xinv := gfPow(-xPow)
		// omega(xinv)
		var num byte
		xp := byte(1)
		for i := 0; i < len(omega); i++ {
			num ^= gfMul(omega[i], xp)
			xp = gfMul(xp, xinv)
		}
		// sigma'(xinv): sum over odd i of sigma[i]*x^(i-1)
		var den byte
		for i := 1; i < ls; i += 2 {
			p := byte(1)
			for j := 0; j < i-1; j++ {
				p = gfMul(p, xinv)
			}
			den ^= gfMul(sigma[i], p)
		}
		if den == 0 {
			return nil, 0, ErrTooManyErrors
		}
		// Error magnitude, adjusted for fcr: e = x^(1-fcr) * omega(xinv)/sigma'(xinv).
		mag := gfDiv(num, den)
		if r.fcr != 1 {
			mag = gfMul(mag, gfPow((1-r.fcr)*xPow))
		}
		block[pos] ^= mag
	}

	// Verify by recomputing syndromes.
	if r.syndromes(block, ws) {
		return nil, 0, ErrTooManyErrors
	}
	return block[:len(block)-r.nroots], len(errPos), nil
}

// Encode splits msg into codewords of up to DataLen() bytes each, RS
// encodes every codeword, and concatenates the results. The output layout
// is [cw0 data||parity][cw1 data||parity]... with only the last codeword
// possibly shortened.
func (r *RS) Encode(msg []byte) []byte {
	if len(msg) == 0 {
		return nil
	}
	out := make([]byte, 0, r.EncodedLen(len(msg)))
	for len(msg) > 0 {
		n := r.k
		if len(msg) < n {
			n = len(msg)
		}
		out = append(out, msg[:n]...)
		out = r.appendParity(out, msg[:n])
		msg = msg[n:]
	}
	return out
}

// Decode reverses Encode: it consumes full codewords (the last possibly
// shortened), corrects each, and returns the concatenated data plus the
// total number of corrected symbol errors.
func (r *RS) Decode(stream []byte) ([]byte, int, error) {
	full := r.k + r.nroots
	var out []byte
	if len(stream) > 0 {
		out = make([]byte, 0, r.DecodedLen(len(stream)))
	}
	ws := r.getWork()
	defer r.putWork(ws)
	total := 0
	for len(stream) > 0 {
		n := full
		if len(stream) < n {
			n = len(stream)
		}
		if n <= r.nroots {
			return nil, total, fmt.Errorf("fec: trailing RS fragment of %d bytes", n)
		}
		block := ws.block[:n]
		copy(block, stream[:n])
		data, c, err := r.decodeBlock(block, ws)
		if err != nil {
			return nil, total, err
		}
		total += c
		out = append(out, data...)
		stream = stream[n:]
	}
	return out, total, nil
}

// DecodedLen returns the data size recovered from an encoded stream of
// encLen bytes (assuming a stream layout produced by Encode).
func (r *RS) DecodedLen(encLen int) int {
	full := r.k + r.nroots
	n := (encLen / full) * r.k
	if rem := encLen % full; rem > r.nroots {
		n += rem - r.nroots
	}
	return n
}

// EncodedLen returns the encoded size of a message of msgLen bytes.
func (r *RS) EncodedLen(msgLen int) int {
	if msgLen == 0 {
		return 0
	}
	fullCW := msgLen / r.k
	rem := msgLen % r.k
	n := fullCW * (r.k + r.nroots)
	if rem > 0 {
		n += rem + r.nroots
	}
	return n
}

// Overhead returns the code rate overhead factor (encoded/plain) for large
// messages, e.g. 255/223 for rs8.
func (r *RS) Overhead() float64 {
	return float64(r.k+r.nroots) / float64(r.k)
}
