package fec

import (
	"errors"
	"fmt"
)

// RS is a Reed-Solomon codec over GF(2^8) with N=255 total symbols and
// K data symbols per codeword; it corrects up to (255-K)/2 symbol errors.
// Shortened codewords (fewer than K data bytes) are handled transparently
// by zero-padding on encode and stripping on decode.
//
// The paper's "rs8" outer code corresponds to NewRS8().
type RS struct {
	k      int    // data symbols per codeword
	nroots int    // parity symbols per codeword
	gen    []byte // generator polynomial, highest degree first
	fcr    int    // first consecutive root exponent
}

// Standard rs8 geometry: RS(255,223), 16 parity roots.
const (
	rsN       = 255
	rs8K      = 223
	rs8Parity = rsN - rs8K
	rs8FCR    = 1
)

// ErrTooManyErrors is returned when a codeword is uncorrectable.
var ErrTooManyErrors = errors.New("fec: reed-solomon codeword uncorrectable")

// NewRS returns an RS(255, k) codec. k must be in [1, 254].
func NewRS(k int) (*RS, error) {
	if k < 1 || k > rsN-1 {
		return nil, fmt.Errorf("fec: invalid RS k=%d", k)
	}
	r := &RS{k: k, nroots: rsN - k, fcr: rs8FCR}
	// Generator polynomial: product of (x - alpha^(fcr+i)).
	g := []byte{1}
	for i := 0; i < r.nroots; i++ {
		g = polyMul(g, []byte{1, gfPow(r.fcr + i)})
	}
	r.gen = g
	return r, nil
}

// NewRS8 returns the paper's outer code, RS(255,223).
func NewRS8() *RS {
	r, err := NewRS(rs8K)
	if err != nil {
		panic(err) // unreachable: constant k is valid
	}
	return r
}

// DataLen returns the number of data symbols per codeword.
func (r *RS) DataLen() int { return r.k }

// ParityLen returns the number of parity symbols per codeword.
func (r *RS) ParityLen() int { return r.nroots }

// MaxErrors returns the number of symbol errors correctable per codeword.
func (r *RS) MaxErrors() int { return r.nroots / 2 }

// EncodeBlock appends the parity symbols for one codeword of data
// (len(data) <= k; shorter input is treated as a shortened code) and
// returns data||parity as a new slice.
func (r *RS) EncodeBlock(data []byte) ([]byte, error) {
	if len(data) > r.k {
		return nil, fmt.Errorf("fec: block of %d exceeds RS k=%d", len(data), r.k)
	}
	// Systematic encoding: parity = (msg * x^nroots) mod gen, computed over
	// the virtual full-length (zero-prefixed) message. Leading zeros do not
	// change the remainder, so shortened messages need no explicit padding.
	parity := make([]byte, r.nroots)
	for _, d := range data {
		fb := d ^ parity[0]
		copy(parity, parity[1:])
		parity[r.nroots-1] = 0
		if fb != 0 {
			for i := 0; i < r.nroots; i++ {
				// gen[0] is always 1, so feedback taps start at gen[1].
				parity[i] ^= gfMul(fb, r.gen[i+1])
			}
		}
	}
	out := make([]byte, 0, len(data)+r.nroots)
	out = append(out, data...)
	out = append(out, parity...)
	return out, nil
}

// DecodeBlock corrects a codeword in place (data||parity as produced by
// EncodeBlock, possibly shortened) and returns the corrected data portion
// along with the number of symbol errors fixed. It returns
// ErrTooManyErrors when the codeword cannot be corrected.
func (r *RS) DecodeBlock(block []byte) (data []byte, corrected int, err error) {
	if len(block) < r.nroots+1 || len(block) > rsN {
		return nil, 0, fmt.Errorf("fec: RS block length %d out of range", len(block))
	}
	pad := rsN - len(block) // virtual leading zeros of the shortened code

	// Syndromes.
	synd := make([]byte, r.nroots)
	allZero := true
	for i := 0; i < r.nroots; i++ {
		s := polyEval(block, gfPow(r.fcr+i))
		synd[i] = s
		if s != 0 {
			allZero = false
		}
	}
	if allZero {
		return block[:len(block)-r.nroots], 0, nil
	}

	// Berlekamp-Massey: find the error locator polynomial sigma
	// (lowest degree first here for convenience).
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	b := byte(1)
	for n := 0; n < r.nroots; n++ {
		var d byte = synd[n]
		for i := 1; i <= l; i++ {
			if i < len(sigma) {
				d ^= gfMul(sigma[i], synd[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			tmp := make([]byte, len(sigma))
			copy(tmp, sigma)
			coef := gfDiv(d, b)
			sigma = polyAddShift(sigma, prev, coef, m)
			prev = tmp
			l = n + 1 - l
			b = d
			m = 1
		} else {
			coef := gfDiv(d, b)
			sigma = polyAddShift(sigma, prev, coef, m)
			m++
		}
	}
	if l > r.nroots/2 {
		return nil, 0, ErrTooManyErrors
	}

	// Chien search over valid positions of the (possibly shortened) code.
	// Position p (0-based from the start of the full-length codeword)
	// corresponds to root alpha^{-(254-p)}... we use the standard form:
	// error at codeword index i (from the end, i.e. x^i term) iff
	// sigma(alpha^{-i}) == 0.
	var errPos []int // indexes into block
	for i := 0; i < rsN-pad; i++ {
		xinv := gfPow(-(rsN - 1 - pad - i)) // exponent of x for block[i]
		if polyEvalLow(sigma, xinv) == 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != l {
		return nil, 0, ErrTooManyErrors
	}

	// Forney algorithm: error evaluator omega = (synd * sigma) mod x^nroots.
	omega := make([]byte, r.nroots)
	for i := 0; i < r.nroots; i++ {
		var acc byte
		for j := 0; j <= i && j < len(sigma); j++ {
			acc ^= gfMul(sigma[j], synd[i-j])
		}
		omega[i] = acc
	}
	// Formal derivative of sigma (terms with odd powers).
	for _, pos := range errPos {
		xPow := rsN - 1 - pad - pos // exponent: block[pos] is coefficient of x^xPow
		xinv := gfPow(-xPow)
		// omega(xinv)
		var num byte
		xp := byte(1)
		for i := 0; i < len(omega); i++ {
			num ^= gfMul(omega[i], xp)
			xp = gfMul(xp, xinv)
		}
		// sigma'(xinv): sum over odd i of sigma[i]*x^(i-1)
		var den byte
		for i := 1; i < len(sigma); i += 2 {
			p := byte(1)
			for j := 0; j < i-1; j++ {
				p = gfMul(p, xinv)
			}
			den ^= gfMul(sigma[i], p)
		}
		if den == 0 {
			return nil, 0, ErrTooManyErrors
		}
		// Error magnitude, adjusted for fcr: e = x^(1-fcr) * omega(xinv)/sigma'(xinv).
		mag := gfDiv(num, den)
		if r.fcr != 1 {
			mag = gfMul(mag, gfPow((1-r.fcr)*xPow))
		}
		block[pos] ^= mag
	}

	// Verify by recomputing syndromes.
	for i := 0; i < r.nroots; i++ {
		if polyEval(block, gfPow(r.fcr+i)) != 0 {
			return nil, 0, ErrTooManyErrors
		}
	}
	return block[:len(block)-r.nroots], len(errPos), nil
}

// polyAddShift returns a + coef * b * x^shift for low-order-first polys.
func polyAddShift(a, b []byte, coef byte, shift int) []byte {
	n := len(a)
	if len(b)+shift > n {
		n = len(b) + shift
	}
	out := make([]byte, n)
	copy(out, a)
	for i, bv := range b {
		out[i+shift] ^= gfMul(bv, coef)
	}
	return out
}

// polyEvalLow evaluates a low-order-first polynomial at x.
func polyEvalLow(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}

// Encode splits msg into codewords of up to DataLen() bytes each, RS
// encodes every codeword, and concatenates the results. The output layout
// is [cw0 data||parity][cw1 data||parity]... with only the last codeword
// possibly shortened.
func (r *RS) Encode(msg []byte) []byte {
	var out []byte
	for len(msg) > 0 {
		n := r.k
		if len(msg) < n {
			n = len(msg)
		}
		cw, _ := r.EncodeBlock(msg[:n]) // n <= k, cannot fail
		out = append(out, cw...)
		msg = msg[n:]
	}
	return out
}

// Decode reverses Encode: it consumes full codewords (the last possibly
// shortened), corrects each, and returns the concatenated data plus the
// total number of corrected symbol errors.
func (r *RS) Decode(stream []byte) ([]byte, int, error) {
	full := r.k + r.nroots
	var out []byte
	total := 0
	for len(stream) > 0 {
		n := full
		if len(stream) < n {
			n = len(stream)
		}
		if n <= r.nroots {
			return nil, total, fmt.Errorf("fec: trailing RS fragment of %d bytes", n)
		}
		block := make([]byte, n)
		copy(block, stream[:n])
		data, c, err := r.DecodeBlock(block)
		if err != nil {
			return nil, total, err
		}
		total += c
		out = append(out, data...)
		stream = stream[n:]
	}
	return out, total, nil
}

// EncodedLen returns the encoded size of a message of msgLen bytes.
func (r *RS) EncodedLen(msgLen int) int {
	if msgLen == 0 {
		return 0
	}
	fullCW := msgLen / r.k
	rem := msgLen % r.k
	n := fullCW * (r.k + r.nroots)
	if rem > 0 {
		n += rem + r.nroots
	}
	return n
}

// Overhead returns the code rate overhead factor (encoded/plain) for large
// messages, e.g. 255/223 for rs8.
func (r *RS) Overhead() float64 {
	return float64(r.k+r.nroots) / float64(r.k)
}
