// Package fec implements the forward-error-correction stack SONIC layers
// under its modem, matching the schemes named in the paper (§3.3): a CRC32
// frame checksum, an inner convolutional code ("v29": rate 1/2, constraint
// length 9, with "v27" also provided for ablation), and an outer
// Reed-Solomon code over GF(2^8) ("rs8": RS(255,223), shortened codes
// supported). A byte block interleaver is included to spread burst errors
// across RS codewords.
package fec

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the field used by the rs8 family of codecs.

const gfPoly = 0x11d

var (
	gfExp [512]byte // alpha^i, doubled to avoid mod in mul
	gfLog [256]byte // log_alpha(x); gfLog[0] is unused
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be non-zero (division by zero returns 0 to
// keep decode loops total, but callers guard against it).
func gfDiv(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns alpha^n for the generator alpha (n may be any int).
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// gfInv returns the multiplicative inverse of a (a must be non-zero).
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// polyEval evaluates polynomial p (coefficients highest degree first) at x.
func polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = gfMul(y, x) ^ c
	}
	return y
}

// polyMul multiplies two polynomials over GF(2^8).
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] ^= gfMul(av, bv)
		}
	}
	return out
}
