package fec

import (
	"errors"
	"fmt"
	"math"
)

// ConvCode is a rate-1/2 binary convolutional code with constraint length
// K and two generator polynomials, decoded with hard-decision Viterbi.
//
// The SONIC paper names its inner code "v29": the classic rate-1/2, K=9
// code (generators 753/561 octal, as in IS-95 and the libfec v29 codec).
// "v27" (K=7, generators 171/133 octal, the Voyager/NASA standard code)
// is provided as the ablation baseline.
type ConvCode struct {
	k     int    // constraint length
	polyA uint32 // generator A (lowest bit = newest input)
	polyB uint32
}

// NewV29 returns the paper's inner code: rate 1/2, K=9, polys 753/561 (octal).
func NewV29() *ConvCode { return &ConvCode{k: 9, polyA: 0o753, polyB: 0o561} }

// NewV27 returns the classic rate 1/2, K=7, polys 171/133 (octal) code.
func NewV27() *ConvCode { return &ConvCode{k: 7, polyA: 0o171, polyB: 0o133} }

// ConstraintLength returns K.
func (c *ConvCode) ConstraintLength() int { return c.k }

// Rate returns the code rate (always 1/2 for this family).
func (c *ConvCode) Rate() float64 { return 0.5 }

// parity returns the parity (XOR of bits) of x.
func parity(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// EncodeBits encodes a bit slice (values 0/1) and returns 2*(len(bits)+K-1)
// output bits: the encoder is flushed with K-1 zero tail bits so the
// decoder terminates in the zero state.
func (c *ConvCode) EncodeBits(bits []byte) []byte {
	out := make([]byte, 0, 2*(len(bits)+c.k-1))
	var sr uint32 // shift register, newest bit in LSB
	mask := uint32(1<<uint(c.k)) - 1
	emit := func(b byte) {
		sr = ((sr << 1) | uint32(b&1)) & mask
		out = append(out, parity(sr&c.polyA), parity(sr&c.polyB))
	}
	for _, b := range bits {
		emit(b)
	}
	for i := 0; i < c.k-1; i++ { // tail flush
		emit(0)
	}
	return out
}

// ErrBadCodeLength is returned by DecodeBits for streams whose length is
// not consistent with the encoder output format.
var ErrBadCodeLength = errors.New("fec: convolutional stream length invalid")

// DecodeBits runs hard-decision Viterbi over a coded bit stream produced
// by EncodeBits (possibly with bit errors) and returns the decoded message
// bits. The stream length must be even and at least 2*(K-1).
func (c *ConvCode) DecodeBits(coded []byte) ([]byte, error) {
	bits, _, err := c.DecodeBitsMetric(coded)
	return bits, err
}

// DecodeBitsMetric is DecodeBits plus the winning path metric: the
// Hamming distance between the received stream and the re-encoded
// decoded message, i.e. how many channel bits Viterbi had to override.
// 0 means a clean channel; values approaching the code's correction
// limit flag frames decoded right at the cliff.
func (c *ConvCode) DecodeBitsMetric(coded []byte) ([]byte, int, error) {
	if len(coded)%2 != 0 || len(coded) < 2*(c.k-1) {
		return nil, 0, ErrBadCodeLength
	}
	nSteps := len(coded) / 2
	msgLen := nSteps - (c.k - 1)
	if msgLen < 0 {
		return nil, 0, ErrBadCodeLength
	}
	nStates := 1 << uint(c.k-1)
	stateMask := uint32(nStates - 1)

	// Precompute per-(state,input) output pairs.
	// Transition: full register = (state << 1 | input) relative to our
	// encoder where state holds the K-1 most recent bits *after* shifting.
	type trans struct {
		next uint32
		out0 byte // polyA output
		out1 byte // polyB output
	}
	tr := make([][2]trans, nStates)
	for s := 0; s < nStates; s++ {
		for in := 0; in < 2; in++ {
			full := (uint32(s)<<1 | uint32(in)) & ((1 << uint(c.k)) - 1)
			tr[s][in] = trans{
				next: full & stateMask,
				out0: parity(full & c.polyA),
				out1: parity(full & c.polyB),
			}
		}
	}

	const inf = math.MaxInt32 / 2
	metric := make([]int32, nStates)
	next := make([]int32, nStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0 // encoder starts in the zero state

	// Survivor storage: one bit (the input) per state per step, plus the
	// predecessor state implied by the transition structure. We store the
	// predecessor explicitly for simplicity.
	prevState := make([][]uint32, nSteps)
	prevInput := make([][]byte, nSteps)

	for step := 0; step < nSteps; step++ {
		r0, r1 := coded[2*step]&1, coded[2*step+1]&1
		ps := make([]uint32, nStates)
		pi := make([]byte, nStates)
		for i := range next {
			next[i] = inf
		}
		for s := 0; s < nStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				t := tr[s][in]
				var branch int32
				if t.out0 != r0 {
					branch++
				}
				if t.out1 != r1 {
					branch++
				}
				nm := m + branch
				if nm < next[t.next] {
					next[t.next] = nm
					ps[t.next] = uint32(s)
					pi[t.next] = byte(in)
				}
			}
		}
		metric, next = next, metric
		prevState[step] = ps
		prevInput[step] = pi
	}

	// Traceback from the zero state (tail flush guarantees it).
	bits := make([]byte, nSteps)
	state := uint32(0)
	for step := nSteps - 1; step >= 0; step-- {
		bits[step] = prevInput[step][state]
		state = prevState[step][state]
	}
	pathMetric := int(metric[0]) // accumulated Hamming cost of the winner
	return bits[:msgLen], pathMetric, nil
}

// DecodeSoft runs soft-decision Viterbi over per-bit soft metrics
// (positive value = bit 1, magnitude = reliability, as produced by the
// modem's DemapSoft). It returns the decoded message bits. Soft decoding
// buys roughly 2 dB over hard decisions on Gaussian channels, which is
// why data-over-sound modems like Quiet feed their decoders soft values.
func (c *ConvCode) DecodeSoft(soft []float64) ([]byte, error) {
	if len(soft)%2 != 0 || len(soft) < 2*(c.k-1) {
		return nil, ErrBadCodeLength
	}
	nSteps := len(soft) / 2
	msgLen := nSteps - (c.k - 1)
	nStates := 1 << uint(c.k-1)
	stateMask := uint32(nStates - 1)

	type trans struct {
		next       uint32
		out0, out1 float64 // expected soft signs: +1 for bit 1, -1 for bit 0
	}
	tr := make([][2]trans, nStates)
	for s := 0; s < nStates; s++ {
		for in := 0; in < 2; in++ {
			full := (uint32(s)<<1 | uint32(in)) & ((1 << uint(c.k)) - 1)
			e0, e1 := -1.0, -1.0
			if parity(full&c.polyA) == 1 {
				e0 = 1
			}
			if parity(full&c.polyB) == 1 {
				e1 = 1
			}
			tr[s][in] = trans{next: full & stateMask, out0: e0, out1: e1}
		}
	}

	const ninf = -1e18
	metric := make([]float64, nStates)
	next := make([]float64, nStates)
	for i := range metric {
		metric[i] = ninf
	}
	metric[0] = 0

	prevState := make([][]uint32, nSteps)
	prevInput := make([][]byte, nSteps)
	for step := 0; step < nSteps; step++ {
		r0, r1 := soft[2*step], soft[2*step+1]
		ps := make([]uint32, nStates)
		pi := make([]byte, nStates)
		for i := range next {
			next[i] = ninf
		}
		for s := 0; s < nStates; s++ {
			m := metric[s]
			if m <= ninf {
				continue
			}
			for in := 0; in < 2; in++ {
				t := tr[s][in]
				// Correlation metric: reward agreement with confident
				// soft values, maximize.
				nm := m + t.out0*r0 + t.out1*r1
				if nm > next[t.next] {
					next[t.next] = nm
					ps[t.next] = uint32(s)
					pi[t.next] = byte(in)
				}
			}
		}
		metric, next = next, metric
		prevState[step] = ps
		prevInput[step] = pi
	}

	bits := make([]byte, nSteps)
	state := uint32(0)
	for step := nSteps - 1; step >= 0; step-- {
		bits[step] = prevInput[step][state]
		state = prevState[step][state]
	}
	return bits[:msgLen], nil
}

// DecodeSoftBytes is DecodeSoft with byte packing: soft covers codedBits
// metrics and the decoded message must be byte aligned.
func (c *ConvCode) DecodeSoftBytes(soft []float64) ([]byte, error) {
	data, _, err := c.DecodeSoftBytesMetric(soft)
	return data, err
}

// DecodeSoftBytesMetric is DecodeSoftBytes plus a hard-equivalent path
// metric: the number of soft inputs whose sign disagrees with the
// winning path's re-encoded stream. It is directly comparable to the
// hard decoder's Hamming path metric.
func (c *ConvCode) DecodeSoftBytesMetric(soft []float64) ([]byte, int, error) {
	msgBits, err := c.DecodeSoft(soft)
	if err != nil {
		return nil, 0, err
	}
	if len(msgBits)%8 != 0 {
		return nil, 0, fmt.Errorf("fec: decoded %d bits, not byte aligned", len(msgBits))
	}
	disagree := 0
	for i, b := range c.EncodeBits(msgBits) {
		if i >= len(soft) {
			break
		}
		if (b == 1) != (soft[i] > 0) {
			disagree++
		}
	}
	return BitsToBytes(msgBits), disagree, nil
}

// Encode packs bytes to bits (MSB first), encodes, and returns the coded
// bit stream packed back into bytes (padded with zero bits to a byte
// boundary) along with the number of valid coded bits.
func (c *ConvCode) Encode(data []byte) (coded []byte, codedBits int) {
	bits := BytesToBits(data)
	cb := c.EncodeBits(bits)
	return BitsToBytes(cb), len(cb)
}

// Decode reverses Encode given the original coded bit count.
func (c *ConvCode) Decode(coded []byte, codedBits int) ([]byte, error) {
	data, _, err := c.DecodeMetric(coded, codedBits)
	return data, err
}

// DecodeMetric is Decode plus the Viterbi path metric (see
// DecodeBitsMetric) — the telemetry layer histograms it to watch how
// close the inner code runs to its correction limit.
func (c *ConvCode) DecodeMetric(coded []byte, codedBits int) ([]byte, int, error) {
	if codedBits < 0 || codedBits > len(coded)*8 {
		return nil, 0, ErrBadCodeLength
	}
	bits := BytesToBits(coded)[:codedBits]
	msgBits, pathMetric, err := c.DecodeBitsMetric(bits)
	if err != nil {
		return nil, 0, err
	}
	if len(msgBits)%8 != 0 {
		return nil, 0, fmt.Errorf("fec: decoded %d bits, not byte aligned", len(msgBits))
	}
	return BitsToBytes(msgBits), pathMetric, nil
}

// EncodedBits returns the number of coded bits for msgLen message bytes.
func (c *ConvCode) EncodedBits(msgLen int) int {
	return 2 * (msgLen*8 + c.k - 1)
}

// BytesToBits unpacks bytes into bits, MSB first.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, len(data)*8)
	for i, b := range data {
		for j := 0; j < 8; j++ {
			bits[i*8+j] = (b >> uint(7-j)) & 1
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB first) into bytes, zero-padding the final
// partial byte.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}
