package fec

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// ConvCode is a rate-1/2 binary convolutional code with constraint length
// K and two generator polynomials, decoded with hard-decision Viterbi.
//
// The SONIC paper names its inner code "v29": the classic rate-1/2, K=9
// code (generators 753/561 octal, as in IS-95 and the libfec v29 codec).
// "v27" (K=7, generators 171/133 octal, the Voyager/NASA standard code)
// is provided as the ablation baseline.
//
// A ConvCode is immutable after construction and safe for concurrent use:
// the trellis output table is built once (sync.Once) and decoder state
// lives in per-call workspaces drawn from an internal pool, so every
// caller shares the precomputed tables.
type ConvCode struct {
	k     int    // constraint length
	polyA uint32 // generator A (lowest bit = newest input)
	polyB uint32

	// Trellis tables, built lazily once per code. outPair[full] is the
	// coded output pair (polyA parity << 1 | polyB parity) for the full
	// K-bit register value `full`. hardBM[obs][full] is the Hamming
	// distance between that output pair and the observed pair obs — the
	// hard branch metric, pre-resolved so the ACS inner loop does only
	// sequential loads instead of a double indirection through outPair.
	tableOnce sync.Once
	outPair   []uint8
	hardBM    [4][]int32

	wsPool sync.Pool // *Workspace
}

// The two standard codes are package-level singletons so every caller —
// frame codecs, ablation benches, experiments — shares one trellis table
// instead of recomputing it per NewV29/NewV27 call.
var (
	codeV29 = &ConvCode{k: 9, polyA: 0o753, polyB: 0o561}
	codeV27 = &ConvCode{k: 7, polyA: 0o171, polyB: 0o133}
)

// NewV29 returns the paper's inner code: rate 1/2, K=9, polys 753/561
// (octal). The returned instance is shared and safe for concurrent use.
func NewV29() *ConvCode { return codeV29 }

// NewV27 returns the classic rate 1/2, K=7, polys 171/133 (octal) code.
// The returned instance is shared and safe for concurrent use.
func NewV27() *ConvCode { return codeV27 }

// ConstraintLength returns K.
func (c *ConvCode) ConstraintLength() int { return c.k }

// Rate returns the code rate (always 1/2 for this family).
func (c *ConvCode) Rate() float64 { return 0.5 }

// parity returns the parity (XOR of bits) of x.
func parity(x uint32) byte {
	return byte(bits.OnesCount32(x) & 1)
}

// tables returns the output-pair table, building it on first use.
func (c *ConvCode) tables() []uint8 {
	c.tableOnce.Do(func() {
		n := 1 << uint(c.k)
		t := make([]uint8, n)
		for full := 0; full < n; full++ {
			t[full] = parity(uint32(full)&c.polyA)<<1 | parity(uint32(full)&c.polyB)
		}
		c.outPair = t
		for obs := 0; obs < 4; obs++ {
			bm := make([]int32, n)
			for full := 0; full < n; full++ {
				bm[full] = int32(bits.OnesCount8(t[full] ^ uint8(obs)))
			}
			c.hardBM[obs] = bm
		}
	})
	return c.outPair
}

// EncodeBits encodes a bit slice (values 0/1) and returns 2*(len(bits)+K-1)
// output bits: the encoder is flushed with K-1 zero tail bits so the
// decoder terminates in the zero state.
func (c *ConvCode) EncodeBits(bits []byte) []byte {
	out := make([]byte, 0, 2*(len(bits)+c.k-1))
	return c.encodeBitsInto(out, bits)
}

// encodeBitsInto appends the coded stream for bits (plus tail flush) to
// dst and returns it.
func (c *ConvCode) encodeBitsInto(dst []byte, bits []byte) []byte {
	outPair := c.tables()
	var sr uint32 // shift register, newest bit in LSB
	mask := uint32(1<<uint(c.k)) - 1
	for _, b := range bits {
		sr = ((sr << 1) | uint32(b&1)) & mask
		p := outPair[sr]
		dst = append(dst, p>>1, p&1)
	}
	for i := 0; i < c.k-1; i++ { // tail flush
		sr = (sr << 1) & mask
		p := outPair[sr]
		dst = append(dst, p>>1, p&1)
	}
	return dst
}

// ErrBadCodeLength is returned by DecodeBits for streams whose length is
// not consistent with the encoder output format.
var ErrBadCodeLength = errors.New("fec: convolutional stream length invalid")

// DecodeBits runs hard-decision Viterbi over a coded bit stream produced
// by EncodeBits (possibly with bit errors) and returns the decoded message
// bits. The stream length must be even and at least 2*(K-1).
func (c *ConvCode) DecodeBits(coded []byte) ([]byte, error) {
	bits, _, err := c.DecodeBitsMetric(coded)
	return bits, err
}

// DecodeBitsMetric is DecodeBits plus the winning path metric: the
// Hamming distance between the received stream and the re-encoded
// decoded message, i.e. how many channel bits Viterbi had to override.
// 0 means a clean channel; values approaching the code's correction
// limit flag frames decoded right at the cliff.
func (c *ConvCode) DecodeBitsMetric(coded []byte) ([]byte, int, error) {
	ws := c.getWorkspace()
	defer c.putWorkspace(ws)
	bits, metric, err := ws.DecodeBitsMetric(coded)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), bits...), metric, nil
}

// DecodeSoft runs soft-decision Viterbi over per-bit soft metrics
// (positive value = bit 1, magnitude = reliability, as produced by the
// modem's DemapSoft). It returns the decoded message bits. Soft decoding
// buys roughly 2 dB over hard decisions on Gaussian channels, which is
// why data-over-sound modems like Quiet feed their decoders soft values.
func (c *ConvCode) DecodeSoft(soft []float64) ([]byte, error) {
	ws := c.getWorkspace()
	defer c.putWorkspace(ws)
	bits, err := ws.DecodeSoft(soft)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), bits...), nil
}

// DecodeSoftBytes is DecodeSoft with byte packing: soft covers codedBits
// metrics and the decoded message must be byte aligned.
func (c *ConvCode) DecodeSoftBytes(soft []float64) ([]byte, error) {
	data, _, err := c.DecodeSoftBytesMetric(soft)
	return data, err
}

// DecodeSoftBytesMetric is DecodeSoftBytes plus a hard-equivalent path
// metric: the number of soft inputs whose sign disagrees with the
// winning path's re-encoded stream. It is directly comparable to the
// hard decoder's Hamming path metric.
func (c *ConvCode) DecodeSoftBytesMetric(soft []float64) ([]byte, int, error) {
	ws := c.getWorkspace()
	defer c.putWorkspace(ws)
	data, disagree, err := ws.DecodeSoftBytesMetric(soft)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), data...), disagree, nil
}

// Encode packs bytes to bits (MSB first), encodes, and returns the coded
// bit stream packed back into bytes (padded with zero bits to a byte
// boundary) along with the number of valid coded bits.
func (c *ConvCode) Encode(data []byte) (coded []byte, codedBits int) {
	bits := BytesToBits(data)
	cb := c.EncodeBits(bits)
	return BitsToBytes(cb), len(cb)
}

// Decode reverses Encode given the original coded bit count.
func (c *ConvCode) Decode(coded []byte, codedBits int) ([]byte, error) {
	data, _, err := c.DecodeMetric(coded, codedBits)
	return data, err
}

// DecodeMetric is Decode plus the Viterbi path metric (see
// DecodeBitsMetric) — the telemetry layer histograms it to watch how
// close the inner code runs to its correction limit.
func (c *ConvCode) DecodeMetric(coded []byte, codedBits int) ([]byte, int, error) {
	ws := c.getWorkspace()
	defer c.putWorkspace(ws)
	data, metric, err := ws.DecodeMetric(coded, codedBits)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), data...), metric, nil
}

// EncodedBits returns the number of coded bits for msgLen message bytes.
func (c *ConvCode) EncodedBits(msgLen int) int {
	return 2 * (msgLen*8 + c.k - 1)
}

// getWorkspace draws a decoder workspace from the code's pool.
func (c *ConvCode) getWorkspace() *Workspace {
	if ws, ok := c.wsPool.Get().(*Workspace); ok {
		return ws
	}
	return c.NewWorkspace()
}

func (c *ConvCode) putWorkspace(ws *Workspace) { c.wsPool.Put(ws) }

// Workspace holds all mutable decoder state for one ConvCode: flat path-
// metric arrays, the bit-packed survivor memory, and scratch buffers.
// Steady-state decodes through a Workspace are allocation-free (survivor
// memory grows once to the largest stream seen, then is reused).
//
// The byte slices returned by a Workspace's Decode* methods alias its
// internal buffers and are valid only until the next call; copy them to
// retain. A Workspace is not safe for concurrent use — use one per
// goroutine, or the ConvCode methods, which draw from an internal pool.
type Workspace struct {
	c *ConvCode

	metric, next   []int32   // hard-decision path metrics, one per state
	smetric, snext []float64 // soft-decision path metrics

	// surv is the survivor memory: one bit per (step, state) naming the
	// winning predecessor's dropped MSB, packed into stride words/step.
	surv   []uint64
	stride int

	bits  []byte    // decoded message bits
	data  []byte    // packed decoded bytes
	soft  []float64 // soft scratch (DecodeSoftBytesMetric re-encode check)
	coded []byte    // unpacked coded bits (DecodeMetric)
}

// NewWorkspace returns a decoder workspace bound to the code. Callers
// that decode many streams on one goroutine (the frame codec's hot loop)
// keep one Workspace and get allocation-free steady-state decodes.
func (c *ConvCode) NewWorkspace() *Workspace {
	nStates := 1 << uint(c.k-1)
	ws := &Workspace{
		c:       c,
		metric:  make([]int32, nStates),
		next:    make([]int32, nStates),
		smetric: make([]float64, nStates),
		snext:   make([]float64, nStates),
		stride:  (nStates + 63) / 64,
	}
	return ws
}

// growSurv ensures survivor memory for nSteps steps.
func (w *Workspace) growSurv(nSteps int) []uint64 {
	need := nSteps * w.stride
	if cap(w.surv) < need {
		w.surv = make([]uint64, need)
	}
	w.surv = w.surv[:need]
	return w.surv
}

// growBits ensures the decoded-bit buffer holds n bits.
func (w *Workspace) growBits(n int) []byte {
	if cap(w.bits) < n {
		w.bits = make([]byte, n)
	}
	w.bits = w.bits[:n]
	return w.bits
}

const hardInf = math.MaxInt32 / 4

// DecodeBitsMetric is ConvCode.DecodeBitsMetric on this workspace. The
// returned slice aliases the workspace (valid until the next call).
func (w *Workspace) DecodeBitsMetric(coded []byte) ([]byte, int, error) {
	c := w.c
	if len(coded)%2 != 0 || len(coded) < 2*(c.k-1) {
		return nil, 0, ErrBadCodeLength
	}
	nSteps := len(coded) / 2
	msgLen := nSteps - (c.k - 1)
	if msgLen < 0 {
		return nil, 0, ErrBadCodeLength
	}
	nStates := 1 << uint(c.k-1)
	c.tables() // ensure hardBM is built
	surv := w.growSurv(nSteps)
	stride := w.stride

	metric, next := w.metric, w.next
	for i := range metric {
		metric[i] = hardInf
	}
	metric[0] = 0 // encoder starts in the zero state

	// Butterfly form: next states (2t, 2t+1) share the predecessor pair
	// p0 = t and p1 = t|topHalf, the input consumed on a transition is
	// the next state's LSB, and the transition outputs are outPair[ns]
	// (from p0) and outPair[ns+nStates] (from p1) — so no per-state
	// predecessor array is needed: one packed bit per state (which
	// predecessor won) is the whole survivor. Ties keep p0, matching the
	// ascending-state scan of the straightforward formulation.
	half := nStates >> 1
	for step := 0; step < nSteps; step++ {
		obs := (coded[2*step]&1)<<1 | coded[2*step+1]&1
		// Pre-resolved branch metrics for this observation: bmLo[ns] is
		// the cost of reaching ns from p0 = ns>>1, bmHi[ns] from
		// p1 = p0|topHalf. Both are read sequentially.
		bmT := c.hardBM[obs]
		bmLo := bmT[:nStates:nStates]
		bmHi := bmT[nStates:]
		mLo := metric[:half:half]
		mHi := metric[half:nStates]
		nxt := next[:nStates:nStates]
		base := step * stride
		var word uint64
		wi := 0
		for t := range mLo {
			ma := mLo[t]
			mb := mHi[t]
			ns := 2 * t
			m0 := ma + bmLo[ns]
			m1 := mb + bmHi[ns]
			v, b := m0, uint64(0)
			if m1 < m0 {
				v, b = m1, 1
			}
			nxt[ns] = v
			word |= b << (uint(ns) & 63)
			m0 = ma + bmLo[ns+1]
			m1 = mb + bmHi[ns+1]
			v, b = m0, 0
			if m1 < m0 {
				v, b = m1, 1
			}
			nxt[ns+1] = v
			word |= b << (uint(ns+1) & 63)
			if ns&63 == 62 {
				surv[base+wi] = word
				word, wi = 0, wi+1
			}
		}
		if nStates&63 != 0 {
			surv[base+wi] = word
		}
		metric, next = next, metric
	}
	w.metric, w.next = metric, next

	// Traceback from the zero state (tail flush guarantees it). The input
	// at each step is the LSB of the state it led to.
	msg := w.growBits(nSteps)
	state := uint32(0)
	for step := nSteps - 1; step >= 0; step-- {
		msg[step] = byte(state & 1)
		b := surv[step*stride+int(state>>6)] >> (state & 63) & 1
		state = state>>1 | uint32(b)<<uint(c.k-2)
	}
	return msg[:msgLen], int(metric[0]), nil
}

// DecodeBits is ConvCode.DecodeBits on this workspace (result aliases
// the workspace).
func (w *Workspace) DecodeBits(coded []byte) ([]byte, error) {
	bits, _, err := w.DecodeBitsMetric(coded)
	return bits, err
}

// DecodeSoft is ConvCode.DecodeSoft on this workspace (result aliases
// the workspace).
func (w *Workspace) DecodeSoft(soft []float64) ([]byte, error) {
	c := w.c
	if len(soft)%2 != 0 || len(soft) < 2*(c.k-1) {
		return nil, ErrBadCodeLength
	}
	nSteps := len(soft) / 2
	msgLen := nSteps - (c.k - 1)
	nStates := 1 << uint(c.k-1)
	outPair := c.tables()
	surv := w.growSurv(nSteps)
	stride := w.stride

	const ninf = -1e18
	metric, next := w.smetric, w.snext
	for i := range metric {
		metric[i] = ninf
	}
	metric[0] = 0

	// Same butterfly structure as the hard path (see DecodeBitsMetric),
	// maximizing a correlation metric; ties keep p0.
	half := nStates >> 1
	opLo := outPair[:nStates:nStates]
	opHi := outPair[nStates:]
	for step := 0; step < nSteps; step++ {
		r0, r1 := soft[2*step], soft[2*step+1]
		// Correlation branch metric per output pair: reward agreement
		// with confident soft values (expected sign +1 for bit 1).
		var bm [4]float64
		bm[0] = -r0 - r1
		bm[1] = -r0 + r1
		bm[2] = r0 - r1
		bm[3] = r0 + r1
		mLo := metric[:half:half]
		mHi := metric[half:nStates]
		nxt := next[:nStates:nStates]
		base := step * stride
		var word uint64
		wi := 0
		for t := range mLo {
			ma := mLo[t]
			mb := mHi[t]
			ns := 2 * t
			// Branchless select: float compares otherwise compile to
			// data-dependent branches that mispredict on noisy input.
			m0 := ma + bm[opLo[ns]&3]
			m1 := mb + bm[opHi[ns]&3]
			var b uint64
			if m1 > m0 {
				b = 1
			}
			nxt[ns] = max(m0, m1)
			word |= b << (uint(ns) & 63)
			m0 = ma + bm[opLo[ns+1]&3]
			m1 = mb + bm[opHi[ns+1]&3]
			b = 0
			if m1 > m0 {
				b = 1
			}
			nxt[ns+1] = max(m0, m1)
			word |= b << (uint(ns+1) & 63)
			if ns&63 == 62 {
				surv[base+wi] = word
				word, wi = 0, wi+1
			}
		}
		if nStates&63 != 0 {
			surv[base+wi] = word
		}
		metric, next = next, metric
	}
	w.smetric, w.snext = metric, next

	msg := w.growBits(nSteps)
	state := uint32(0)
	for step := nSteps - 1; step >= 0; step-- {
		msg[step] = byte(state & 1)
		b := surv[step*stride+int(state>>6)] >> (state & 63) & 1
		state = state>>1 | uint32(b)<<uint(c.k-2)
	}
	return msg[:msgLen], nil
}

// DecodeSoftBytesMetric is ConvCode.DecodeSoftBytesMetric on this
// workspace (result aliases the workspace).
func (w *Workspace) DecodeSoftBytesMetric(soft []float64) ([]byte, int, error) {
	msgBits, err := w.DecodeSoft(soft)
	if err != nil {
		return nil, 0, err
	}
	if len(msgBits)%8 != 0 {
		return nil, 0, fmt.Errorf("fec: decoded %d bits, not byte aligned", len(msgBits))
	}
	// Count soft inputs whose sign disagrees with the re-encoded winner.
	// Re-encode into scratch: msgBits aliases w.bits, so reuse w.coded.
	if cap(w.coded) < 2*(len(msgBits)+w.c.k-1) {
		w.coded = make([]byte, 0, 2*(len(msgBits)+w.c.k-1))
	}
	re := w.c.encodeBitsInto(w.coded[:0], msgBits)
	w.coded = re[:0]
	disagree := 0
	for i, b := range re {
		if i >= len(soft) {
			break
		}
		if (b == 1) != (soft[i] > 0) {
			disagree++
		}
	}
	if cap(w.data) < len(msgBits)/8 {
		w.data = make([]byte, len(msgBits)/8)
	}
	w.data = w.data[:len(msgBits)/8]
	packBitsInto(w.data, msgBits)
	return w.data, disagree, nil
}

// DecodeMetric is ConvCode.DecodeMetric on this workspace (result
// aliases the workspace).
func (w *Workspace) DecodeMetric(coded []byte, codedBits int) ([]byte, int, error) {
	if codedBits < 0 || codedBits > len(coded)*8 {
		return nil, 0, ErrBadCodeLength
	}
	if cap(w.coded) < codedBits {
		w.coded = make([]byte, codedBits)
	}
	w.coded = w.coded[:codedBits]
	unpackBitsInto(w.coded, coded)
	msgBits, pathMetric, err := w.DecodeBitsMetric(w.coded)
	if err != nil {
		return nil, 0, err
	}
	if len(msgBits)%8 != 0 {
		return nil, 0, fmt.Errorf("fec: decoded %d bits, not byte aligned", len(msgBits))
	}
	if cap(w.data) < len(msgBits)/8 {
		w.data = make([]byte, len(msgBits)/8)
	}
	w.data = w.data[:len(msgBits)/8]
	packBitsInto(w.data, msgBits)
	return w.data, pathMetric, nil
}

// BytesToBits unpacks bytes into bits, MSB first.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, len(data)*8)
	unpackBitsInto(bits, data)
	return bits
}

// unpackBitsInto fills bits (MSB first) from data; len(bits) may stop
// short of len(data)*8.
func unpackBitsInto(bits []byte, data []byte) {
	for i := range bits {
		bits[i] = (data[i/8] >> uint(7-i%8)) & 1
	}
}

// BitsToBytes packs bits (MSB first) into bytes, zero-padding the final
// partial byte.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	packBitsInto(out, bits)
	return out
}

// packBitsInto packs bits (MSB first) into out, which must hold
// (len(bits)+7)/8 bytes and be zeroed.
func packBitsInto(out []byte, bits []byte) {
	for i := range out {
		out[i] = 0
	}
	for i, b := range bits {
		if b&1 != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
}
