package fec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// This file pins the optimized table-driven Viterbi (flat state arrays,
// bit-packed survivors, pooled workspaces) to the straightforward
// pre-optimization formulation: same decoded bits, same path metric, on
// randomized noisy streams. refDecodeBitsMetric / refDecodeSoft below
// are verbatim copies of the original implementations.

func refDecodeBitsMetric(c *ConvCode, coded []byte) ([]byte, int, error) {
	if len(coded)%2 != 0 || len(coded) < 2*(c.k-1) {
		return nil, 0, ErrBadCodeLength
	}
	nSteps := len(coded) / 2
	msgLen := nSteps - (c.k - 1)
	if msgLen < 0 {
		return nil, 0, ErrBadCodeLength
	}
	nStates := 1 << uint(c.k-1)
	stateMask := uint32(nStates - 1)

	type trans struct {
		next uint32
		out0 byte
		out1 byte
	}
	tr := make([][2]trans, nStates)
	for s := 0; s < nStates; s++ {
		for in := 0; in < 2; in++ {
			full := (uint32(s)<<1 | uint32(in)) & ((1 << uint(c.k)) - 1)
			tr[s][in] = trans{
				next: full & stateMask,
				out0: parity(full & c.polyA),
				out1: parity(full & c.polyB),
			}
		}
	}

	const inf = math.MaxInt32 / 2
	metric := make([]int32, nStates)
	next := make([]int32, nStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	prevState := make([][]uint32, nSteps)
	prevInput := make([][]byte, nSteps)

	for step := 0; step < nSteps; step++ {
		r0, r1 := coded[2*step]&1, coded[2*step+1]&1
		ps := make([]uint32, nStates)
		pi := make([]byte, nStates)
		for i := range next {
			next[i] = inf
		}
		for s := 0; s < nStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				t := tr[s][in]
				var branch int32
				if t.out0 != r0 {
					branch++
				}
				if t.out1 != r1 {
					branch++
				}
				nm := m + branch
				if nm < next[t.next] {
					next[t.next] = nm
					ps[t.next] = uint32(s)
					pi[t.next] = byte(in)
				}
			}
		}
		metric, next = next, metric
		prevState[step] = ps
		prevInput[step] = pi
	}

	bits := make([]byte, nSteps)
	state := uint32(0)
	for step := nSteps - 1; step >= 0; step-- {
		bits[step] = prevInput[step][state]
		state = prevState[step][state]
	}
	return bits[:msgLen], int(metric[0]), nil
}

func refDecodeSoft(c *ConvCode, soft []float64) ([]byte, error) {
	if len(soft)%2 != 0 || len(soft) < 2*(c.k-1) {
		return nil, ErrBadCodeLength
	}
	nSteps := len(soft) / 2
	msgLen := nSteps - (c.k - 1)
	nStates := 1 << uint(c.k-1)
	stateMask := uint32(nStates - 1)

	type trans struct {
		next       uint32
		out0, out1 float64
	}
	tr := make([][2]trans, nStates)
	for s := 0; s < nStates; s++ {
		for in := 0; in < 2; in++ {
			full := (uint32(s)<<1 | uint32(in)) & ((1 << uint(c.k)) - 1)
			e0, e1 := -1.0, -1.0
			if parity(full&c.polyA) == 1 {
				e0 = 1
			}
			if parity(full&c.polyB) == 1 {
				e1 = 1
			}
			tr[s][in] = trans{next: full & stateMask, out0: e0, out1: e1}
		}
	}

	const ninf = -1e18
	metric := make([]float64, nStates)
	next := make([]float64, nStates)
	for i := range metric {
		metric[i] = ninf
	}
	metric[0] = 0

	prevState := make([][]uint32, nSteps)
	prevInput := make([][]byte, nSteps)
	for step := 0; step < nSteps; step++ {
		r0, r1 := soft[2*step], soft[2*step+1]
		ps := make([]uint32, nStates)
		pi := make([]byte, nStates)
		for i := range next {
			next[i] = ninf
		}
		for s := 0; s < nStates; s++ {
			m := metric[s]
			if m <= ninf {
				continue
			}
			for in := 0; in < 2; in++ {
				t := tr[s][in]
				nm := m + t.out0*r0 + t.out1*r1
				if nm > next[t.next] {
					next[t.next] = nm
					ps[t.next] = uint32(s)
					pi[t.next] = byte(in)
				}
			}
		}
		metric, next = next, metric
		prevState[step] = ps
		prevInput[step] = pi
	}

	bits := make([]byte, nSteps)
	state := uint32(0)
	for step := nSteps - 1; step >= 0; step-- {
		bits[step] = prevInput[step][state]
		state = prevState[step][state]
	}
	return bits[:msgLen], nil
}

func TestViterbiHardMatchesReference(t *testing.T) {
	for _, c := range []*ConvCode{NewV27(), NewV29()} {
		rng := rand.New(rand.NewSource(int64(c.k)))
		for trial := 0; trial < 50; trial++ {
			msgBits := make([]byte, 8*(1+rng.Intn(64)))
			for i := range msgBits {
				msgBits[i] = byte(rng.Intn(2))
			}
			coded := c.EncodeBits(msgBits)
			// Flip up to 6% of bits — some trials decode wrong messages,
			// which is fine: optimized and reference must still agree.
			flips := rng.Intn(len(coded) / 16)
			for i := 0; i < flips; i++ {
				coded[rng.Intn(len(coded))] ^= 1
			}
			want, wantMetric, err := refDecodeBitsMetric(c, coded)
			if err != nil {
				t.Fatal(err)
			}
			got, gotMetric, err := c.DecodeBitsMetric(coded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("K=%d trial %d: decoded bits diverge from reference", c.k, trial)
			}
			if gotMetric != wantMetric {
				t.Fatalf("K=%d trial %d: path metric %d, reference %d", c.k, trial, gotMetric, wantMetric)
			}
		}
	}
}

func TestViterbiSoftMatchesReference(t *testing.T) {
	for _, c := range []*ConvCode{NewV27(), NewV29()} {
		rng := rand.New(rand.NewSource(100 + int64(c.k)))
		for trial := 0; trial < 50; trial++ {
			msgBits := make([]byte, 8*(1+rng.Intn(64)))
			for i := range msgBits {
				msgBits[i] = byte(rng.Intn(2))
			}
			coded := c.EncodeBits(msgBits)
			soft := make([]float64, len(coded))
			for i, b := range coded {
				v := -1.0
				if b == 1 {
					v = 1
				}
				soft[i] = v + 0.6*rng.NormFloat64()
			}
			want, err := refDecodeSoft(c, soft)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.DecodeSoft(soft)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("K=%d trial %d: soft-decoded bits diverge from reference", c.k, trial)
			}
		}
	}
}

func TestViterbiWorkspaceZeroAlloc(t *testing.T) {
	c := NewV29()
	rng := rand.New(rand.NewSource(9))
	msg := make([]byte, 264)
	rng.Read(msg)
	coded, codedBits := c.Encode(msg)
	soft := make([]float64, codedBits)
	for i := range soft {
		if (coded[i/8]>>(7-i%8))&1 == 1 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}

	ws := c.NewWorkspace()
	// Warm up so the survivor memory has grown to steady state.
	if _, _, err := ws.DecodeMetric(coded, codedBits); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ws.DecodeSoftBytesMetric(soft); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(20, func() {
		if _, _, err := ws.DecodeMetric(coded, codedBits); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Workspace.DecodeMetric: %v allocs/run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, _, err := ws.DecodeSoftBytesMetric(soft); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Workspace.DecodeSoftBytesMetric: %v allocs/run, want 0", n)
	}
}

func TestSharedCodeConcurrentDecode(t *testing.T) {
	// NewV29 returns a shared instance; its pooled decode paths must be
	// safe under concurrent use (run with -race).
	c := NewV29()
	msg := make([]byte, 264)
	for i := range msg {
		msg[i] = byte(i)
	}
	coded, codedBits := c.Encode(msg)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				got, err := c.Decode(coded, codedBits)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got[:len(msg)], msg) {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errors.New("decode mismatch")
