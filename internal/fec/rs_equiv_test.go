package fec

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// Equivalence tests pinning the table-driven RS codec to the
// pre-optimization implementation, kept below as a verbatim reference
// copy (renamed ref*). GF(2^8) arithmetic is exact, so every output —
// encoded stream, corrected data, corrected-symbol count, and error
// classification — must match byte for byte on every input, correctable
// or not.

// --- verbatim pre-optimization reference implementation ---

func refEncodeBlock(r *RS, data []byte) ([]byte, error) {
	if len(data) > r.k {
		return nil, errTestOverlong
	}
	parity := make([]byte, r.nroots)
	for _, d := range data {
		fb := d ^ parity[0]
		copy(parity, parity[1:])
		parity[r.nroots-1] = 0
		if fb != 0 {
			for i := 0; i < r.nroots; i++ {
				parity[i] ^= gfMul(fb, r.gen[i+1])
			}
		}
	}
	out := make([]byte, 0, len(data)+r.nroots)
	out = append(out, data...)
	out = append(out, parity...)
	return out, nil
}

var errTestOverlong = bytes.ErrTooLarge

func refDecodeBlock(r *RS, block []byte) (data []byte, corrected int, err error) {
	if len(block) < r.nroots+1 || len(block) > rsN {
		return nil, 0, errTestOverlong
	}
	pad := rsN - len(block)

	synd := make([]byte, r.nroots)
	allZero := true
	for i := 0; i < r.nroots; i++ {
		s := polyEval(block, gfPow(r.fcr+i))
		synd[i] = s
		if s != 0 {
			allZero = false
		}
	}
	if allZero {
		return block[:len(block)-r.nroots], 0, nil
	}

	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	b := byte(1)
	for n := 0; n < r.nroots; n++ {
		var d byte = synd[n]
		for i := 1; i <= l; i++ {
			if i < len(sigma) {
				d ^= gfMul(sigma[i], synd[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			tmp := make([]byte, len(sigma))
			copy(tmp, sigma)
			coef := gfDiv(d, b)
			sigma = refPolyAddShift(sigma, prev, coef, m)
			prev = tmp
			l = n + 1 - l
			b = d
			m = 1
		} else {
			coef := gfDiv(d, b)
			sigma = refPolyAddShift(sigma, prev, coef, m)
			m++
		}
	}
	if l > r.nroots/2 {
		return nil, 0, ErrTooManyErrors
	}

	var errPos []int
	for i := 0; i < rsN-pad; i++ {
		xinv := gfPow(-(rsN - 1 - pad - i))
		if refPolyEvalLow(sigma, xinv) == 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != l {
		return nil, 0, ErrTooManyErrors
	}

	omega := make([]byte, r.nroots)
	for i := 0; i < r.nroots; i++ {
		var acc byte
		for j := 0; j <= i && j < len(sigma); j++ {
			acc ^= gfMul(sigma[j], synd[i-j])
		}
		omega[i] = acc
	}
	for _, pos := range errPos {
		xPow := rsN - 1 - pad - pos
		xinv := gfPow(-xPow)
		var num byte
		xp := byte(1)
		for i := 0; i < len(omega); i++ {
			num ^= gfMul(omega[i], xp)
			xp = gfMul(xp, xinv)
		}
		var den byte
		for i := 1; i < len(sigma); i += 2 {
			p := byte(1)
			for j := 0; j < i-1; j++ {
				p = gfMul(p, xinv)
			}
			den ^= gfMul(sigma[i], p)
		}
		if den == 0 {
			return nil, 0, ErrTooManyErrors
		}
		mag := gfDiv(num, den)
		if r.fcr != 1 {
			mag = gfMul(mag, gfPow((1-r.fcr)*xPow))
		}
		block[pos] ^= mag
	}

	for i := 0; i < r.nroots; i++ {
		if polyEval(block, gfPow(r.fcr+i)) != 0 {
			return nil, 0, ErrTooManyErrors
		}
	}
	return block[:len(block)-r.nroots], len(errPos), nil
}

func refPolyAddShift(a, b []byte, coef byte, shift int) []byte {
	n := len(a)
	if len(b)+shift > n {
		n = len(b) + shift
	}
	out := make([]byte, n)
	copy(out, a)
	for i, bv := range b {
		out[i+shift] ^= gfMul(bv, coef)
	}
	return out
}

func refPolyEvalLow(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}

// --- equivalence trials ---

// corruptTrial builds one codeword, injects nerr random symbol errors,
// and checks the optimized decoder against the reference byte for byte.
func corruptTrial(t *testing.T, r *RS, rng *rand.Rand, dataLen, nerr int) {
	t.Helper()
	data := make([]byte, dataLen)
	rng.Read(data)
	cw, err := r.EncodeBlock(data)
	if err != nil {
		t.Fatalf("EncodeBlock: %v", err)
	}
	refCW, err := refEncodeBlock(r, data)
	if err != nil || !bytes.Equal(cw, refCW) {
		t.Fatalf("dataLen=%d: encoded codeword differs from reference", dataLen)
	}
	for _, pos := range rng.Perm(len(cw))[:nerr] {
		cw[pos] ^= byte(1 + rng.Intn(255))
	}
	refIn := append([]byte(nil), cw...)
	gotIn := append([]byte(nil), cw...)
	wantData, wantC, wantErr := refDecodeBlock(r, refIn)
	gotData, gotC, gotErr := r.DecodeBlock(gotIn)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("dataLen=%d nerr=%d: error mismatch: ref %v vs %v", dataLen, nerr, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if wantC != gotC || !bytes.Equal(wantData, gotData) {
		t.Fatalf("dataLen=%d nerr=%d: corrected output differs (count %d vs %d)", dataLen, nerr, gotC, wantC)
	}
	// Recovery is only guaranteed within the code's correction radius;
	// beyond it a rare miscorrection may "succeed" with wrong data, and
	// only ref/opt agreement is pinned.
	if nerr <= r.MaxErrors() && !bytes.Equal(gotData, data) {
		t.Fatalf("dataLen=%d nerr=%d: decode did not recover the message", dataLen, nerr)
	}
}

func TestRSDecodeBlockMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := NewRS8()
	for trial := 0; trial < 60; trial++ {
		dataLen := 1 + rng.Intn(r.k) // exercises shortened codes heavily
		nerr := rng.Intn(r.MaxErrors() + 1)
		corruptTrial(t, r, rng, dataLen, nerr)
	}
	// Beyond-capacity corruption: both decoders must agree on failure
	// (or, rarely, on a miscorrection — equivalence is what is pinned).
	for trial := 0; trial < 20; trial++ {
		dataLen := 32 + rng.Intn(r.k-32)
		nerr := r.MaxErrors() + 1 + rng.Intn(8)
		corruptTrial(t, r, rng, dataLen, nerr)
	}
	// Other geometries exercise non-default root counts.
	for _, k := range []int{1, 64, 239, 254} {
		rk, err := NewRS(k)
		if err != nil {
			t.Fatalf("NewRS(%d): %v", k, err)
		}
		for trial := 0; trial < 10; trial++ {
			dataLen := 1 + rng.Intn(k)
			nerr := rng.Intn(rk.MaxErrors() + 1)
			corruptTrial(t, rk, rng, dataLen, nerr)
		}
	}
}

func TestRSDecodeStreamMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	r := NewRS8()
	for trial := 0; trial < 10; trial++ {
		msg := make([]byte, 1+rng.Intn(3000))
		rng.Read(msg)
		enc := r.Encode(msg)
		// Sprinkle correctable errors across the stream.
		for i := 0; i < len(enc)/60; i++ {
			enc[rng.Intn(len(enc))] ^= byte(1 + rng.Intn(255))
		}
		got, gotC, gotErr := r.Decode(enc)
		// Reference streaming decode over the same corrupted stream.
		var want []byte
		wantC := 0
		var wantErr error
		rest := enc
		for len(rest) > 0 && wantErr == nil {
			n := r.k + r.nroots
			if len(rest) < n {
				n = len(rest)
			}
			block := append([]byte(nil), rest[:n]...)
			data, c, err := refDecodeBlock(r, block)
			if err != nil {
				wantErr = err
				break
			}
			wantC += c
			want = append(want, data...)
			rest = rest[n:]
		}
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if wantErr == nil && (gotC != wantC || !bytes.Equal(got, want)) {
			t.Fatalf("trial %d: stream decode differs", trial)
		}
	}
}

func TestRSDecodedLen(t *testing.T) {
	r := NewRS8()
	for _, msgLen := range []int{1, 10, 222, 223, 224, 446, 1000} {
		if got := r.DecodedLen(r.EncodedLen(msgLen)); got != msgLen {
			t.Errorf("DecodedLen(EncodedLen(%d)) = %d", msgLen, got)
		}
	}
}

func TestRSDecodeAllocs(t *testing.T) {
	r := NewRS8()
	msg := make([]byte, 1500)
	rand.New(rand.NewSource(23)).Read(msg)
	enc := r.Encode(msg)
	enc[100] ^= 0x5a // force the full correction path
	enc[700] ^= 0x17
	if _, _, err := r.Decode(enc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := r.Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	// One output slice; the codeword copy and all decoder scratch are
	// pooled.
	if allocs > 2 {
		t.Errorf("Decode allocates %v objects per call, want <= 2", allocs)
	}
}

func TestRSDecodeConcurrent(t *testing.T) {
	r := NewRS8()
	rng := rand.New(rand.NewSource(24))
	msg := make([]byte, 2000)
	rng.Read(msg)
	enc := r.Encode(msg)
	for i := 0; i < 20; i++ {
		enc[rng.Intn(len(enc))] ^= byte(1 + rng.Intn(255))
	}
	want, wantC, err := r.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				got, c, err := r.Decode(enc)
				if err != nil || c != wantC || !bytes.Equal(got, want) {
					fail <- "concurrent Decode diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	if msg, bad := <-fail; bad {
		t.Fatal(msg)
	}
}
