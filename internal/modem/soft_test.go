package modem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDemapSoftSignsMatchHard(t *testing.T) {
	// For every constellation and random noisy symbols, the sign of each
	// soft metric must agree with the hard decision.
	rng := rand.New(rand.NewSource(1))
	for _, c := range allConstellations() {
		for trial := 0; trial < 500; trial++ {
			sym := complex(rng.NormFloat64(), rng.NormFloat64())
			hard := c.Demap(sym, nil)
			soft := c.DemapSoft(sym, nil)
			if len(soft) != len(hard) {
				t.Fatalf("%s: %d soft vs %d hard", c.Name(), len(soft), len(hard))
			}
			for i := range hard {
				sbit := byte(0)
				if soft[i] > 0 {
					sbit = 1
				}
				if soft[i] == 0 {
					continue // boundary: either decision acceptable
				}
				if sbit != hard[i] {
					t.Fatalf("%s sym %v bit %d: soft %g vs hard %d",
						c.Name(), sym, i, soft[i], hard[i])
				}
			}
		}
	}
}

func TestDemapSoftReliabilityOrdering(t *testing.T) {
	// A symbol near a decision boundary must have a smaller-magnitude
	// soft metric than one deep inside a decision region.
	c := QAM64
	deep := c.Map([]byte{1, 1, 1, 1, 1, 1}) // a corner point
	softDeep := c.DemapSoft(deep*2, nil)    // push further out
	softEdge := c.DemapSoft(complex(0.01, 0.01), nil)
	if abs(softEdge[0]) >= abs(softDeep[0]) {
		t.Errorf("edge |%g| should be less reliable than deep |%g|",
			softEdge[0], softDeep[0])
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDemodulateSoftMatchesHardOnCleanAudio(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, 300)
	rng.Read(payload)
	audio := m.Modulate(payload)
	hard, err := m.Demodulate(audio)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := m.DemodulateSoft(audio)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hard.Payload, soft.Payload) {
		t.Fatal("soft hard-decision payload differs from hard path")
	}
	if len(soft.Soft) != len(payload)*8 {
		t.Fatalf("soft has %d metrics, want %d", len(soft.Soft), len(payload)*8)
	}
	if !bytes.Equal(soft.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestDemodulateSoftNoSignal(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	if _, err := m.DemodulateSoft(make([]float64, 48000)); err != ErrNoPreamble {
		t.Errorf("err = %v", err)
	}
}
