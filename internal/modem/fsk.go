package modem

import (
	"errors"
	"math"

	"sonic/internal/dsp"
	"sonic/internal/fec"
)

// FSK is a binary frequency-shift-keying modem in the GGwave class of
// data-over-sound tools (§2 of the paper: FSK-based, up to ~128 bps over
// short distances). It exists as the related-work baseline that the
// paper's OFDM profile is compared against.
type FSK struct {
	SampleRate int
	MarkHz     float64 // frequency for bit 1
	SpaceHz    float64 // frequency for bit 0
	BitRate    float64 // bits per second
	Amplitude  float64
}

// NewFSK128 returns a GGwave-like profile: 128 bps binary FSK in the
// audible band.
func NewFSK128() *FSK { //sonic:ignore equivpin alternative waveform, never optimized; functional tests cover it
	return &FSK{
		SampleRate: 48000,
		MarkHz:     3000,
		SpaceHz:    2000,
		BitRate:    128,
		Amplitude:  0.7,
	}
}

// fskPreamble is a fixed sync byte pattern: 0xAA (alternating) twice for
// clock acquisition followed by 0x7E as the start-of-frame mark.
var fskPreamble = []byte{0xAA, 0xAA, 0x7E}

// samplesPerBit returns the (integer) samples per bit.
func (f *FSK) samplesPerBit() int {
	return int(float64(f.SampleRate) / f.BitRate)
}

// Modulate encodes payload as [preamble][len:2][payload][crc16:2] with
// each bit a mark/space tone burst, returning audio samples.
func (f *FSK) Modulate(payload []byte) []float64 {
	frame := make([]byte, 0, len(fskPreamble)+4+len(payload))
	frame = append(frame, fskPreamble...)
	frame = append(frame, byte(len(payload)>>8), byte(len(payload)))
	frame = append(frame, payload...)
	crc := fec.Checksum16(payload)
	frame = append(frame, byte(crc>>8), byte(crc))

	bits := fec.BytesToBits(frame)
	spb := f.samplesPerBit()
	out := make([]float64, 0, len(bits)*spb+2*spb)
	out = append(out, make([]float64, spb)...) // leading silence
	var phase float64
	for _, b := range bits {
		hz := f.SpaceHz
		if b&1 == 1 {
			hz = f.MarkHz
		}
		inc := 2 * math.Pi * hz / float64(f.SampleRate)
		for i := 0; i < spb; i++ {
			out = append(out, f.Amplitude*math.Sin(phase))
			phase += inc
			if phase > 2*math.Pi {
				phase -= 2 * math.Pi
			}
		}
	}
	out = append(out, make([]float64, spb)...) // trailing silence
	return out
}

// Errors returned by FSK Demodulate.
var (
	ErrFSKNoSync = errors.New("modem: fsk sync not found")
	ErrFSKCRC    = errors.New("modem: fsk payload CRC mismatch")
)

// Demodulate recovers a payload from audio produced by Modulate, possibly
// with noise and an unknown sample offset.
func (f *FSK) Demodulate(samples []float64) ([]byte, error) {
	spb := f.samplesPerBit()
	if len(samples) < spb*len(fskPreamble)*8 {
		return nil, ErrFSKNoSync
	}
	// Decide bits at a candidate offset using Goertzel energy comparison.
	bitAt := func(off int) byte {
		w := samples[off : off+spb]
		if dsp.Goertzel(w, f.MarkHz, float64(f.SampleRate)) >
			dsp.Goertzel(w, f.SpaceHz, float64(f.SampleRate)) {
			return 1
		}
		return 0
	}
	preBits := fec.BytesToBits(fskPreamble)
	// Coarse+fine search for the preamble alignment.
	bestOff := -1
	step := spb / 8
	if step < 1 {
		step = 1
	}
	for off := 0; off+len(preBits)*spb+spb <= len(samples); off += step {
		match := 0
		for i, pb := range preBits {
			if bitAt(off+i*spb) == pb {
				match++
			}
		}
		if match == len(preBits) {
			bestOff = off
			break
		}
	}
	if bestOff < 0 {
		return nil, ErrFSKNoSync
	}
	pos := bestOff + len(preBits)*spb
	readByte := func() (byte, bool) {
		if pos+8*spb > len(samples) {
			return 0, false
		}
		var b byte
		for i := 0; i < 8; i++ {
			b = b<<1 | bitAt(pos)
			pos += spb
		}
		return b, true
	}
	hi, ok1 := readByte()
	lo, ok2 := readByte()
	if !ok1 || !ok2 {
		return nil, ErrFSKNoSync
	}
	n := int(hi)<<8 | int(lo)
	if n > 1<<16 {
		return nil, ErrFSKNoSync
	}
	payload := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		b, ok := readByte()
		if !ok {
			return nil, ErrFSKNoSync
		}
		payload = append(payload, b)
	}
	c1, ok1 := readByte()
	c2, ok2 := readByte()
	if !ok1 || !ok2 {
		return nil, ErrFSKNoSync
	}
	if !fec.Verify16(payload, uint16(c1)<<8|uint16(c2)) {
		return nil, ErrFSKCRC
	}
	return payload, nil
}

// RawBitRate returns the modem bit rate (before framing overhead).
func (f *FSK) RawBitRate() float64 { return f.BitRate }

// BurstDuration returns the on-air seconds needed for n payload bytes.
func (f *FSK) BurstDuration(n int) float64 {
	bits := (len(fskPreamble) + 4 + n) * 8
	return float64(bits)/f.BitRate + 2*float64(f.samplesPerBit())/float64(f.SampleRate)
}
