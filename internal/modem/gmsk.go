package modem

import (
	"errors"
	"math"

	"sonic/internal/dsp"
	"sonic/internal/fec"
)

// GMSK is a Gaussian minimum-shift-keying modem — the other modulation
// the Quiet library offers (§2 cites "different modulations such as
// 1024-QAM and gmsk"). MSK is binary FSK with modulation index 0.5 and
// continuous phase; the Gaussian pre-filter (BT = bandwidth·bit-time)
// narrows the spectrum at the cost of controlled inter-symbol
// interference. SONIC uses OFDM; GMSK is provided as the
// constant-envelope alternative for very nonlinear audio paths.
type GMSK struct {
	SampleRate int
	BitRate    float64
	CenterHz   float64
	BT         float64 // Gaussian filter bandwidth-time product (0.3 typical)
	Amplitude  float64
}

// NewGMSK returns a 2400 bps profile centered in the FM mono band.
// BT=0.5 (GSM uses 0.3 with an MLSE receiver; a simple sample-at-center
// receiver needs the milder ISI of 0.5).
func NewGMSK() *GMSK { //sonic:ignore equivpin alternative waveform, never optimized; functional tests cover it
	return &GMSK{
		SampleRate: 48000,
		BitRate:    2400,
		CenterHz:   9200,
		BT:         0.5,
		Amplitude:  0.7,
	}
}

// gmskPreamble: clock run-in plus start flag. The run-in uses two-bit
// alternation (0xCC) rather than 0xAA: single-bit alternation is the
// highest-frequency pattern and the BT=0.3 Gaussian nearly cancels it,
// while two-bit runs survive the ISI with full amplitude.
var gmskPreamble = []byte{0xCC, 0xCC, 0xCC, 0x7E}

func (g *GMSK) samplesPerBit() int {
	return int(float64(g.SampleRate) / g.BitRate)
}

// gaussianTaps builds the Gaussian pulse-shaping filter spanning three
// bit periods.
func (g *GMSK) gaussianTaps() []float64 {
	spb := g.samplesPerBit()
	span := 3 * spb
	taps := make([]float64, span)
	// Standard GMSK Gaussian: sigma = sqrt(ln2)/(2*pi*BT) in bit times.
	sigma := math.Sqrt(math.Ln2) / (2 * math.Pi * g.BT)
	var sum float64
	for i := range taps {
		t := (float64(i) - float64(span-1)/2) / float64(spb) // bit times
		taps[i] = math.Exp(-t * t / (2 * sigma * sigma))
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// Modulate encodes [preamble][len:2][payload][crc16:2] with continuous
// phase: the NRZ bit stream is Gaussian-filtered and integrated into
// phase with modulation index 0.5.
func (g *GMSK) Modulate(payload []byte) []float64 {
	frame := make([]byte, 0, len(gmskPreamble)+4+len(payload))
	frame = append(frame, gmskPreamble...)
	frame = append(frame, byte(len(payload)>>8), byte(len(payload)))
	frame = append(frame, payload...)
	crc := fec.Checksum16(payload)
	frame = append(frame, byte(crc>>8), byte(crc))

	bits := fec.BytesToBits(frame)
	spb := g.samplesPerBit()
	// NRZ at sample rate, with three pad bits on each side so the
	// Gaussian shaping and the receiver's filter group delay never push
	// edge bits past the burst boundary.
	nrz := make([]float64, (len(bits)+6)*spb)
	for i, b := range bits {
		v := -1.0
		if b&1 == 1 {
			v = 1
		}
		for j := 0; j < spb; j++ {
			nrz[(i+3)*spb+j] = v
		}
	}
	shaped := dsp.NewFIRFilter(g.gaussianTaps()).ProcessBlock(nrz)

	// Phase integration: deviation = bitrate/4 (modulation index 0.5).
	out := make([]float64, len(shaped))
	var phase float64
	k := 2 * math.Pi * (g.BitRate / 4) / float64(g.SampleRate)
	wc := 2 * math.Pi * g.CenterHz / float64(g.SampleRate)
	for i, v := range shaped {
		phase += k * v
		out[i] = g.Amplitude * math.Sin(wc*float64(i)+phase)
	}
	return out
}

// Errors from GMSK demodulation.
var (
	ErrGMSKNoSync = errors.New("modem: gmsk sync not found")
	ErrGMSKCRC    = errors.New("modem: gmsk payload CRC mismatch")
)

// Demodulate recovers a payload: quadrature down-conversion, FM
// discrimination of the complex baseband, bit-center sampling after
// preamble correlation.
func (g *GMSK) Demodulate(samples []float64) ([]byte, error) {
	spb := g.samplesPerBit()
	if len(samples) < spb*len(gmskPreamble)*8 {
		return nil, ErrGMSKNoSync
	}
	// Quadrature mix to baseband and low-pass.
	wc := 2 * math.Pi * g.CenterHz / float64(g.SampleRate)
	ii := make([]float64, len(samples))
	qq := make([]float64, len(samples))
	for i, s := range samples {
		ii[i] = s * math.Cos(wc*float64(i))
		qq[i] = -s * math.Sin(wc*float64(i))
	}
	lp := dsp.LowpassFIR(g.BitRate*1.2, float64(g.SampleRate), 63)
	ii = dsp.NewFIRFilter(lp).ProcessBlock(ii)
	qq = dsp.NewFIRFilter(lp).ProcessBlock(qq)
	// Discriminator: instantaneous frequency.
	freq := make([]float64, len(samples))
	for i := 1; i < len(samples); i++ {
		re := ii[i]*ii[i-1] + qq[i]*qq[i-1]
		im := qq[i]*ii[i-1] - ii[i]*qq[i-1]
		freq[i] = math.Atan2(im, re)
	}
	// Decide each bit from the middle half of its period, where the
	// Gaussian ISI from neighbours is smallest.
	bitAt := func(off, idx int) byte {
		start := off + idx*spb + spb/4
		end := off + idx*spb + 3*spb/4
		if end > len(freq) {
			end = len(freq)
		}
		var acc float64
		for j := start; j < end && j >= 0; j++ {
			acc += freq[j]
		}
		if acc > 0 {
			return 1
		}
		return 0
	}
	preBits := fec.BytesToBits(gmskPreamble)
	score := func(off int) int {
		match := 0
		for i, pb := range preBits {
			if bitAt(off, i) == pb {
				match++
			}
		}
		return match
	}
	sawCRCFail := false
	step := spb / 4
	if step < 1 {
		step = 1
	}
	for off := 0; off+len(preBits)*spb+spb <= len(freq); off += step {
		if score(off) < len(preBits)-3 {
			continue
		}
		// Refine to the best-scoring alignment within half a bit.
		best, bestOff := -1, off
		for o := off - spb/2; o <= off+spb/2; o++ {
			if o < 0 || o+len(preBits)*spb+spb > len(freq) {
				continue
			}
			if s := score(o); s > best {
				best, bestOff = s, o
			}
		}
		if best < len(preBits)-1 { // tolerate one blurred run-in bit
			continue
		}
		// Try to read the frame from the refined alignment. On failure,
		// resume the scan past this preamble (never move the scan
		// backward — the refinement may sit earlier than off).
		pos := bestOff + len(preBits)*spb
		resume := bestOff + len(preBits)*spb
		if resume < off {
			resume = off
		}
		off = resume
		readByte := func() (byte, bool) {
			if pos+8*spb > len(freq) {
				return 0, false
			}
			var b byte
			for i := 0; i < 8; i++ {
				b = b<<1 | bitAt(pos, 0)
				pos += spb
			}
			return b, true
		}
		hi, ok1 := readByte()
		lo, ok2 := readByte()
		if !ok1 || !ok2 {
			continue
		}
		n := int(hi)<<8 | int(lo)
		if n > 1<<16 {
			continue
		}
		payload := make([]byte, 0, n)
		ok := true
		for i := 0; i < n; i++ {
			b, o := readByte()
			if !o {
				ok = false
				break
			}
			payload = append(payload, b)
		}
		if !ok {
			continue
		}
		c1, ok1 := readByte()
		c2, ok2 := readByte()
		if !ok1 || !ok2 {
			continue
		}
		if fec.Verify16(payload, uint16(c1)<<8|uint16(c2)) {
			return payload, nil
		}
		sawCRCFail = true // try later alignments before giving up
	}
	if sawCRCFail {
		return nil, ErrGMSKCRC
	}
	return nil, ErrGMSKNoSync
}

// RawBitRate returns the line rate.
func (g *GMSK) RawBitRate() float64 { return g.BitRate }

// BurstDuration returns the on-air seconds for n payload bytes.
func (g *GMSK) BurstDuration(n int) float64 {
	bits := (len(gmskPreamble) + 4 + n) * 8
	return float64(bits+2)/g.BitRate + 0.0
}
