package modem

import (
	"bytes"
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"

	"sonic/internal/dsp"
	"sonic/internal/fec"
)

// This file pins the optimized modem (pooled FFT scratch, preallocated
// burst buffer, FFT overlap-save preamble search) to verbatim copies of
// the pre-optimization implementations. Modulation must be bit-identical
// (the planned FFT is exact); preamble sync must pick the same sample.

func refSynthesize(m *OFDM, values []complex128) []float64 {
	n := m.p.FFTSize
	spec := make([]complex128, n)
	for i, bin := range m.bins {
		spec[bin] = values[i]
		spec[n-bin] = cmplx.Conj(values[i])
	}
	if err := dsp.IFFT(spec); err != nil {
		panic("modem: FFT size not power of two despite validation")
	}
	g := m.symbolGain()
	out := make([]float64, m.p.CyclicPrefix+n)
	for i := 0; i < n; i++ {
		out[m.p.CyclicPrefix+i] = g * real(spec[i])
	}
	copy(out, out[n:])
	return out
}

func refModSymbols(m *OFDM, bits []byte, c *Constellation) []float64 {
	bps := m.p.DataCarriers * c.Bits()
	var out []float64
	for off := 0; off < len(bits); off += bps {
		end := off + bps
		var chunk []byte
		if end <= len(bits) {
			chunk = bits[off:end]
		} else {
			chunk = make([]byte, bps)
			copy(chunk, bits[off:])
		}
		values := make([]complex128, len(m.bins))
		bi := 0
		for i := range m.bins {
			if m.isPilot[i] {
				values[i] = m.pilotVal[i]
				continue
			}
			values[i] = c.Map(chunk[bi : bi+c.Bits()])
			bi += c.Bits()
		}
		out = append(out, refSynthesize(m, values)...)
	}
	return out
}

func refModulate(m *OFDM, payload []byte) []float64 {
	var out []float64
	out = append(out, m.preamble...)
	out = append(out, make([]float64, guardSamples)...)
	out = append(out, refSynthesize(m, m.refSym)...)
	hdrBits := fec.BytesToBits(headerPayload(len(payload), m.p.Constellation.Bits()))
	var repBits []byte
	for r := 0; r < headerRep; r++ {
		repBits = append(repBits, hdrBits...)
	}
	out = append(out, refModSymbols(m, repBits, m.header)...)
	out = append(out, refModSymbols(m, fec.BytesToBits(payload), m.p.Constellation)...)
	dsp.Normalize(out, m.p.Amplitude)
	out = append(out, make([]float64, guardSamples)...)
	return out
}

func refFindPreamble(m *OFDM, samples []float64) int {
	const (
		window    = 1 << 16
		threshold = 0.25
	)
	n := len(samples) - len(m.preamble) + 1
	if n <= 0 {
		return -1
	}
	for off := 0; off < n; off += window {
		end := off + window + len(m.preamble) - 1
		if end > len(samples) {
			end = len(samples)
		}
		cc := dsp.NormalizedCrossCorrelate(samples[off:end], m.preamble)
		if cc == nil {
			continue
		}
		idx := dsp.ArgMax(cc)
		if idx >= 0 && cc[idx] >= threshold {
			return off + idx
		}
	}
	return -1
}

func TestModulateMatchesReference(t *testing.T) {
	for _, prof := range []Profile{Sonic92(), Audible7k()} {
		m, err := NewOFDM(prof)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		for _, n := range []int{1, 3, 184, 2048} {
			payload := make([]byte, n)
			rng.Read(payload)
			want := refModulate(m, payload)
			got := m.Modulate(payload)
			if len(got) != len(want) {
				t.Fatalf("%s n=%d: %d samples, want %d", prof.Name, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: sample %d differs: %v != %v", prof.Name, n, i, got[i], want[i])
				}
			}
			if len(got) != m.BurstSamples(n) {
				t.Fatalf("%s n=%d: BurstSamples says %d, Modulate produced %d", prof.Name, n, m.BurstSamples(n), len(got))
			}
		}
	}
}

func TestFindPreambleMatchesReference(t *testing.T) {
	m, err := NewOFDM(Sonic92())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	payload := make([]byte, 512)
	rng.Read(payload)
	burst := m.Modulate(payload)

	sc := m.getScratch()
	defer m.putScratch(sc)

	for _, lead := range []int{0, 1000, 70000} { // 70000 crosses a search window
		samples := make([]float64, lead+len(burst))
		for i := 0; i < lead; i++ {
			samples[i] = 0.01 * rng.NormFloat64()
		}
		copy(samples[lead:], burst)
		// Mild channel noise on top.
		for i := range samples {
			samples[i] += 0.005 * rng.NormFloat64()
		}
		want := refFindPreamble(m, samples)
		got := m.findPreamble(samples, sc)
		if got != want {
			t.Fatalf("lead=%d: findPreamble=%d, reference=%d", lead, got, want)
		}
		if want < 0 {
			t.Fatalf("lead=%d: reference did not find the preamble (test setup broken)", lead)
		}
	}

	// Pure noise: both must reject.
	noise := make([]float64, 100000)
	for i := range noise {
		noise[i] = 0.3 * rng.NormFloat64()
	}
	if got, want := m.findPreamble(noise, sc), refFindPreamble(m, noise); got != want || got != -1 {
		t.Fatalf("noise: findPreamble=%d, reference=%d, want -1", got, want)
	}
}

func TestOFDMConcurrentUse(t *testing.T) {
	// One OFDM shared by goroutines (run with -race): immutable tables +
	// pooled scratch must make Modulate/Demodulate independent.
	m, err := NewOFDM(Sonic92())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			payload := make([]byte, 256+rng.Intn(512))
			rng.Read(payload)
			burst := m.Modulate(payload)
			for i := 0; i < 3; i++ {
				res, err := m.Demodulate(burst)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(res.Payload, payload) {
					done <- errPayloadMismatch
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDemodulateAllocsFlat asserts the zero-alloc steady state of the
// per-symbol paths: total allocations per Demodulate call must not scale
// with the number of payload symbols (only with the returned payload).
func TestDemodulateAllocsFlat(t *testing.T) {
	m, err := NewOFDM(Sonic92())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	small := make([]byte, 512)  // ~8 payload symbols
	large := make([]byte, 8192) // ~119 payload symbols
	rng.Read(small)
	rng.Read(large)
	bSmall := m.Modulate(small)
	bLarge := m.Modulate(large)
	measure := func(burst []float64) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := m.Demodulate(burst); err != nil {
				t.Fatal(err)
			}
		})
	}
	measure(bSmall) // warm the scratch pool
	aSmall := measure(bSmall)
	aLarge := measure(bLarge)
	if aLarge > aSmall+3 {
		t.Errorf("Demodulate allocations scale with symbols: %v (small) vs %v (large)", aSmall, aLarge)
	}
	if aLarge > 25 {
		t.Errorf("Demodulate does %v allocs/run, want <= 25", aLarge)
	}
}

var errPayloadMismatch = errors.New("modem: demodulated payload mismatch")
