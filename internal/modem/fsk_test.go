package modem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFSKCleanRoundTrip(t *testing.T) {
	f := NewFSK128()
	for _, payload := range [][]byte{
		[]byte("hi"),
		[]byte("SONIC baseline modem test payload"),
		{0x00, 0xFF, 0xAA, 0x55},
		{},
	} {
		audio := f.Modulate(payload)
		got, err := f.Demodulate(audio)
		if err != nil {
			t.Fatalf("payload %q: %v", payload, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %q: got %q", payload, got)
		}
	}
}

func TestFSKWithOffsetAndNoise(t *testing.T) {
	f := NewFSK128()
	payload := []byte("noisy")
	audio := f.Modulate(payload)
	rng := rand.New(rand.NewSource(1))
	pre := make([]float64, 5000)
	for i := range pre {
		pre[i] = 0.01 * rng.NormFloat64()
	}
	stream := append(pre, addAWGN(audio, 20, 2)...)
	got, err := f.Demodulate(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestFSKRejectsSilence(t *testing.T) {
	f := NewFSK128()
	if _, err := f.Demodulate(make([]float64, 48000)); err == nil {
		t.Error("silence should not demodulate")
	}
	if _, err := f.Demodulate(nil); err == nil {
		t.Error("empty input should not demodulate")
	}
}

func TestFSKDetectsCorruption(t *testing.T) {
	f := NewFSK128()
	payload := []byte("integrity-protected payload bytes")
	audio := f.Modulate(payload)
	// Zero out a chunk of payload audio (mid-burst dropout).
	mid := len(audio) / 2
	for i := mid; i < mid+f.samplesPerBit()*16; i++ {
		audio[i] = 0
	}
	_, err := f.Demodulate(audio)
	if err == nil {
		t.Error("corrupted burst should fail CRC or sync")
	}
}

func TestFSKMuchSlowerThanOFDM(t *testing.T) {
	// The related-work comparison (§2): the GGwave-class FSK baseline is
	// orders of magnitude slower than the paper's OFDM profile.
	f := NewFSK128()
	m, _ := NewOFDM(Sonic92())
	n := 500
	fskTime := f.BurstDuration(n)
	ofdmTime := m.BurstDuration(n)
	if fskTime < 10*ofdmTime {
		t.Errorf("FSK %gs vs OFDM %gs: expected >=10x gap", fskTime, ofdmTime)
	}
	if f.RawBitRate() != 128 {
		t.Errorf("FSK rate = %g", f.RawBitRate())
	}
}

func BenchmarkFSKModulate100B(b *testing.B) {
	f := NewFSK128()
	payload := make([]byte, 100)
	b.SetBytes(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Modulate(payload)
	}
}
