package modem

// Cable64k returns a profile for the audio-jack path: Quiet's README
// claims "up to 64kbps in cases where two devices are connected over an
// audio jack cable" (§2). Without FM's mono-band limit the profile can
// occupy most of the audio bandwidth and run 1024-QAM, which only a
// noiseless cable supports.
func Cable64k() Profile { //sonic:ignore equivpin channel profile constructor, not a kernel
	return Profile{
		Name:          "cable-64k",
		SampleRate:    48000,
		FFTSize:       1024,
		CyclicPrefix:  64,
		CenterHz:      10000,
		DataCarriers:  160,
		PilotCarriers: 16,
		Constellation: QAM1024,
		Amplitude:     0.7,
	}
}
