package modem

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"

	"sonic/internal/dsp"
	"sonic/internal/fec"
)

// Profile describes an OFDM transmission profile. The zero value is not
// usable; start from Sonic92() or Audible7k() and adjust.
type Profile struct {
	Name          string
	SampleRate    int     // audio sample rate (Hz)
	FFTSize       int     // power of two
	CyclicPrefix  int     // samples
	CenterHz      float64 // carrier center frequency
	DataCarriers  int     // subcarriers carrying payload bits
	PilotCarriers int     // subcarriers carrying known pilots
	Constellation *Constellation
	Amplitude     float64 // output peak target (0..1)
}

// Sonic92 returns the paper's transmission profile: 92 data subcarriers
// around a 9.2 kHz center inside the FM mono band, tuned so that with the
// paper's FEC stack (v29 inner + rs8 outer) net goodput lands near
// 10 kbps (§3.3).
func Sonic92() Profile {
	return Profile{
		Name:          "sonic-92sc-10k",
		SampleRate:    48000,
		FFTSize:       1024,
		CyclicPrefix:  128,
		CenterHz:      9200,
		DataCarriers:  92,
		PilotCarriers: 12,
		Constellation: QAM64,
		Amplitude:     0.7,
	}
}

// Audible7k returns a profile modeled on Quiet's "audible-7k-channel"
// (QPSK, lower rate, more robust), the profile SONIC's was derived from.
func Audible7k() Profile {
	return Profile{
		Name:          "audible-7k-channel",
		SampleRate:    48000,
		FFTSize:       1024,
		CyclicPrefix:  128,
		CenterHz:      7000,
		DataCarriers:  64,
		PilotCarriers: 8,
		Constellation: QPSK,
		Amplitude:     0.7,
	}
}

// SymbolDuration returns the duration of one OFDM symbol in seconds.
func (p Profile) SymbolDuration() float64 {
	return float64(p.FFTSize+p.CyclicPrefix) / float64(p.SampleRate)
}

// RawBitRate returns the pre-FEC payload bit rate in bits/second.
func (p Profile) RawBitRate() float64 {
	return float64(p.DataCarriers*p.Constellation.Bits()) / p.SymbolDuration()
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if !dsp.IsPowerOfTwo(p.FFTSize) {
		return errors.New("modem: FFTSize must be a power of two")
	}
	if p.SampleRate <= 0 || p.CyclicPrefix < 0 || p.CyclicPrefix >= p.FFTSize {
		return errors.New("modem: invalid sample rate or cyclic prefix")
	}
	if p.DataCarriers < 1 || p.PilotCarriers < 1 {
		return errors.New("modem: need at least one data and one pilot carrier")
	}
	if p.Constellation == nil {
		return errors.New("modem: profile missing constellation")
	}
	total := p.DataCarriers + p.PilotCarriers
	binHz := float64(p.SampleRate) / float64(p.FFTSize)
	lo := p.CenterHz - float64(total)/2*binHz
	hi := p.CenterHz + float64(total)/2*binHz
	if lo < binHz || hi > float64(p.SampleRate)/2-binHz {
		return fmt.Errorf("modem: band [%.0f,%.0f] Hz does not fit below Nyquist", lo, hi)
	}
	return nil
}

// OFDM is a modulator/demodulator for one profile. All per-burst mutable
// state lives in pooled scratch buffers, so one OFDM may be shared by
// concurrent goroutines (the configuration tables below are immutable
// after NewOFDM).
type OFDM struct {
	p        Profile
	bins     []int        // occupied FFT bins, ascending
	isPilot  []bool       // parallel to bins
	pilotVal []complex128 // pilot symbol per occupied bin (non-pilot entries unused)
	refSym   []complex128 // known reference values for every occupied bin
	preamble []float64    // time-domain sync preamble
	header   *Constellation

	preambleEnergy float64            // sqrt(sum preamble^2), for sync normalization
	corr           *dsp.FFTCorrelator // overlap-save preamble correlator
	scratch        sync.Pool          // *ofdmScratch
}

// ofdmScratch holds the per-call working buffers of one modulate or
// demodulate pass: the FFT workspace, one symbol's occupied-bin values,
// the preamble-search correlation window, and the padded tail bit chunk.
// Pooling them makes steady-state synthesize/analyze allocation-free.
type ofdmScratch struct {
	spec []complex128 // FFTSize FFT workspace
	vals []complex128 // len(bins) occupied-bin values
	cc   []float64    // preamble correlation outputs (one search window)
	bits []byte       // padded final symbol chunk
}

func (m *OFDM) getScratch() *ofdmScratch {
	if sc, ok := m.scratch.Get().(*ofdmScratch); ok {
		return sc
	}
	return &ofdmScratch{
		spec: make([]complex128, m.p.FFTSize),
		vals: make([]complex128, len(m.bins)),
	}
}

func (m *OFDM) putScratch(sc *ofdmScratch) { m.scratch.Put(sc) }

// Burst layout constants.
const (
	preambleSamples = 2048   // chirp length used for synchronization
	guardSamples    = 256    // silence between preamble and first symbol
	headerMagic     = 0x534E // "SN"
	headerRep       = 3      // header repetition factor (odd, for majority vote)
	headerBytes     = 9      // magic(2) len(4) bits(1) crc16(2)
)

// NewOFDM builds a modem for the profile.
func NewOFDM(p Profile) (*OFDM, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &OFDM{p: p, header: QPSK}
	total := p.DataCarriers + p.PilotCarriers
	binHz := float64(p.SampleRate) / float64(p.FFTSize)
	centerBin := int(math.Round(p.CenterHz / binHz))
	first := centerBin - total/2
	m.bins = make([]int, total)
	m.isPilot = make([]bool, total)
	m.pilotVal = make([]complex128, total)
	m.refSym = make([]complex128, total)
	// Pilots are spread evenly across the band.
	pilotEvery := total / p.PilotCarriers
	rng := rand.New(rand.NewSource(0x50494C4F)) // fixed: both ends derive the same sequence
	nPilots := 0
	for i := 0; i < total; i++ {
		m.bins[i] = first + i
		if nPilots < p.PilotCarriers && i%pilotEvery == pilotEvery/2 {
			m.isPilot[i] = true
			nPilots++
		}
		// Known pseudo-random QPSK values for reference symbol and pilots.
		re := 1.0
		if rng.Intn(2) == 1 {
			re = -1
		}
		im := 1.0
		if rng.Intn(2) == 1 {
			im = -1
		}
		v := complex(re, im) * complex(math.Sqrt2/2, 0)
		m.refSym[i] = v
		m.pilotVal[i] = v
	}
	// Preamble: band-limited chirp sweeping the occupied band.
	lo := (float64(first) - 2) * binHz
	hi := (float64(first+total) + 2) * binHz
	m.preamble = make([]float64, preambleSamples)
	k := (hi - lo) / (float64(preambleSamples) / float64(p.SampleRate))
	for i := range m.preamble {
		t := float64(i) / float64(p.SampleRate)
		phase := 2 * math.Pi * (lo*t + 0.5*k*t*t)
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(preambleSamples-1)))
		m.preamble[i] = w * math.Sin(phase)
	}
	// Bring the preamble to the same RMS as the data symbols so noise
	// degrades sync and payload together.
	if r := dsp.RMS(m.preamble); r > 0 {
		dsp.Scale(m.preamble, sectionRMS/r)
	}
	var pe float64
	for _, v := range m.preamble {
		pe += v * v
	}
	m.preambleEnergy = math.Sqrt(pe)
	m.corr = dsp.NewFFTCorrelator(m.preamble)
	return m, nil
}

// Profile returns the modem's profile.
func (m *OFDM) Profile() Profile { return m.p }

// bitsPerSymbol returns payload bits carried by one OFDM symbol.
func (m *OFDM) bitsPerSymbol() int {
	return m.p.DataCarriers * m.p.Constellation.Bits()
}

// sectionRMS is the target per-section RMS level shared by the preamble
// and the OFDM symbols, so burst-wide noise affects both proportionally.
const sectionRMS = 0.2

// symbolGain returns the time-domain gain that brings a synthesized OFDM
// symbol (unit-energy constellation values on each occupied bin, after a
// normalized IFFT) to sectionRMS.
func (m *OFDM) symbolGain() float64 {
	// Raw per-sample power after IFFT = 2*bins/N^2 (Hermitian pair per bin).
	n := float64(m.p.FFTSize)
	raw := math.Sqrt(2*float64(len(m.bins))) / n
	return sectionRMS / raw
}

// synthesizeAppend converts one frequency-domain symbol (values for
// occupied bins, in bin order) into time-domain samples with cyclic
// prefix, appended to out. spec is the caller's FFT workspace; when out
// has capacity for the new section (Modulate preallocates via
// BurstSamples) the call is allocation-free.
func (m *OFDM) synthesizeAppend(out []float64, values, spec []complex128) []float64 {
	n := m.p.FFTSize
	for i := range spec {
		spec[i] = 0
	}
	for i, bin := range m.bins {
		spec[bin] = values[i]
		// Hermitian mirror for a real time-domain signal.
		spec[n-bin] = cmplx.Conj(values[i])
	}
	if err := dsp.IFFT(spec); err != nil {
		panic("modem: FFT size not power of two despite validation")
	}
	g := m.symbolGain()
	cp := m.p.CyclicPrefix
	base := len(out)
	if need := base + cp + n; need <= cap(out) {
		out = out[:need] // every sample below is overwritten
	} else {
		out = append(out, make([]float64, cp+n)...)
	}
	sect := out[base:]
	for i := 0; i < n; i++ {
		sect[cp+i] = g * real(spec[i])
	}
	copy(sect, sect[n:]) // cyclic prefix = tail of the symbol
	return out
}

// analyzeInto extracts the occupied-bin values from one received symbol
// into dst (len(bins) entries), using spec as the FFT workspace. The
// samples must start at the beginning of the cyclic prefix. The FFT
// window is pulled back by a quarter of the cyclic prefix so small timing
// errors from preamble correlation stay inside the CP; the resulting
// per-bin phase slope is absorbed by the channel estimate, which shares
// the same offset.
func (m *OFDM) analyzeInto(dst []complex128, samples []float64, spec []complex128) []complex128 {
	n := m.p.FFTSize
	backoff := m.p.CyclicPrefix / 4
	for i := 0; i < n; i++ {
		spec[i] = complex(samples[m.p.CyclicPrefix-backoff+i], 0)
	}
	if err := dsp.FFT(spec); err != nil {
		panic("modem: FFT size not power of two despite validation")
	}
	for i, bin := range m.bins {
		dst[i] = spec[bin]
	}
	return dst[:len(m.bins)]
}

// headerPayload encodes the burst header fields.
func headerPayload(payloadLen int, constBits int) []byte {
	h := make([]byte, headerBytes)
	h[0] = byte(headerMagic >> 8)
	h[1] = byte(headerMagic & 0xFF)
	h[2] = byte(payloadLen >> 24)
	h[3] = byte(payloadLen >> 16)
	h[4] = byte(payloadLen >> 8)
	h[5] = byte(payloadLen)
	h[6] = byte(constBits)
	crc := fec.Checksum16(h[:7])
	h[7] = byte(crc >> 8)
	h[8] = byte(crc)
	return h
}

// parseHeader validates and decodes header bytes.
func parseHeader(h []byte) (payloadLen, constBits int, err error) {
	if len(h) < headerBytes {
		return 0, 0, errors.New("modem: short header")
	}
	if int(h[0])<<8|int(h[1]) != headerMagic {
		return 0, 0, errors.New("modem: bad header magic")
	}
	crc := uint16(h[7])<<8 | uint16(h[8])
	if !fec.Verify16(h[:7], crc) {
		return 0, 0, errors.New("modem: header CRC mismatch")
	}
	payloadLen = int(h[2])<<24 | int(h[3])<<16 | int(h[4])<<8 | int(h[5])
	return payloadLen, int(h[6]), nil
}

// Modulate converts payload bytes into an audio burst:
// [preamble][guard][reference symbol][header symbol][payload symbols].
// The burst buffer is allocated once up front (BurstSamples sizes it
// exactly), and symbol synthesis runs through pooled scratch, so the
// call does a small constant number of allocations regardless of
// payload size.
func (m *OFDM) Modulate(payload []byte) []float64 {
	sc := m.getScratch()
	defer m.putScratch(sc)

	out := make([]float64, 0, m.BurstSamples(len(payload)))
	out = append(out, m.preamble...)
	out = out[:len(out)+guardSamples] // zeros: backing array is fresh

	// Reference symbol: known values on every occupied bin.
	out = m.synthesizeAppend(out, m.refSym, sc.spec)

	// Header symbol: repetition-coded QPSK on data carriers.
	hdrBits := fec.BytesToBits(headerPayload(len(payload), m.p.Constellation.Bits()))
	var repBits []byte
	for r := 0; r < headerRep; r++ {
		repBits = append(repBits, hdrBits...)
	}
	out = m.modSymbolsAppend(out, repBits, m.header, sc)

	// Payload symbols.
	out = m.modSymbolsAppend(out, fec.BytesToBits(payload), m.p.Constellation, sc)

	dsp.Normalize(out, m.p.Amplitude)
	// Trailing guard so filters and channel tails flush cleanly.
	out = out[:len(out)+guardSamples]
	return out
}

// modSymbolsAppend maps a bit stream onto as many OFDM symbols as
// needed, using the given constellation on data carriers and pilots on
// pilot carriers, appending the synthesized samples to out.
func (m *OFDM) modSymbolsAppend(out []float64, bits []byte, c *Constellation, sc *ofdmScratch) []float64 {
	bps := m.p.DataCarriers * c.Bits()
	for off := 0; off < len(bits); off += bps {
		end := off + bps
		var chunk []byte
		if end <= len(bits) {
			chunk = bits[off:end]
		} else {
			// Final partial symbol: zero-pad into scratch.
			if cap(sc.bits) < bps {
				sc.bits = make([]byte, bps)
			}
			chunk = sc.bits[:bps]
			n := copy(chunk, bits[off:])
			for i := n; i < bps; i++ {
				chunk[i] = 0
			}
		}
		values := sc.vals
		bi := 0
		for i := range m.bins {
			if m.isPilot[i] {
				values[i] = m.pilotVal[i]
				continue
			}
			values[i] = c.Map(chunk[bi : bi+c.Bits()])
			bi += c.Bits()
		}
		out = m.synthesizeAppend(out, values, sc.spec)
	}
	return out
}

// DemodResult carries demodulation diagnostics alongside the payload.
type DemodResult struct {
	Payload  []byte
	SNRdB    float64 // average pilot SNR estimate
	Symbols  int     // payload OFDM symbols consumed
	StartIdx int     // sample index where the burst was found
}

// Errors returned by Demodulate.
var (
	ErrNoPreamble = errors.New("modem: no preamble found")
	ErrBadHeader  = errors.New("modem: header unrecoverable")
)

// burstHeader is the decoded prologue of a received burst.
type burstHeader struct {
	start      int
	pos        int // sample index of the first payload symbol
	symLen     int
	payloadLen int
	c          *Constellation
	h          []complex128
}

// decodePrologue synchronizes, estimates the channel, and reads the
// repetition-coded header. sc provides the FFT and symbol workspaces.
func (m *OFDM) decodePrologue(samples []float64, sc *ofdmScratch) (*burstHeader, error) {
	start := m.findPreamble(samples, sc)
	if start < 0 {
		return nil, ErrNoPreamble
	}
	symLen := m.p.FFTSize + m.p.CyclicPrefix
	pos := start + preambleSamples + guardSamples
	if pos+symLen > len(samples) {
		return nil, ErrBadHeader
	}

	// Channel estimate from the reference symbol.
	ref := m.analyzeInto(sc.vals, samples[pos:pos+symLen], sc.spec)
	h := make([]complex128, len(m.bins))
	for i := range ref {
		denom := m.refSym[i]
		if cmplx.Abs(denom) < 1e-9 {
			h[i] = 1
			continue
		}
		h[i] = ref[i] / denom
	}
	pos += symLen

	// Header symbols (repetition-coded, possibly spanning several symbols).
	hdrBitsTotal := headerBytes * 8 * headerRep
	hdrBps := m.p.DataCarriers * m.header.Bits()
	hdrSyms := (hdrBitsTotal + hdrBps - 1) / hdrBps
	var hdrBits []byte
	for s := 0; s < hdrSyms; s++ {
		if pos+symLen > len(samples) {
			return nil, ErrBadHeader
		}
		hdrVals, _ := m.eqSymbol(samples[pos:pos+symLen], h, sc)
		hdrBits = m.demapInto(hdrBits, hdrVals, m.header)
		pos += symLen
	}
	hdrPlain, ok := majorityVoteHeader(hdrBits)
	if !ok {
		return nil, ErrBadHeader
	}
	payloadLen, constBits, err := parseHeader(hdrPlain)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	c, err := ConstellationByBits(constBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if payloadLen < 0 || payloadLen > 1<<26 {
		return nil, ErrBadHeader
	}
	return &burstHeader{
		start: start, pos: pos, symLen: symLen,
		payloadLen: payloadLen, c: c, h: h,
	}, nil
}

// Demodulate locates a burst in samples and decodes its payload. It
// returns ErrNoPreamble when no sync is found and ErrBadHeader when sync
// succeeded but the header cannot be trusted.
func (m *OFDM) Demodulate(samples []float64) (*DemodResult, error) {
	sc := m.getScratch()
	defer m.putScratch(sc)
	bh, err := m.decodePrologue(samples, sc)
	if err != nil {
		return nil, err
	}
	bps := m.p.DataCarriers * bh.c.Bits()
	totalBits := bh.payloadLen * 8
	nSym := (totalBits + bps - 1) / bps
	bits := make([]byte, 0, nSym*bps)
	pos := bh.pos
	var snrSum float64
	for s := 0; s < nSym; s++ {
		if pos+bh.symLen > len(samples) {
			return nil, fmt.Errorf("modem: burst truncated at symbol %d/%d", s, nSym)
		}
		vals, snr := m.eqSymbol(samples[pos:pos+bh.symLen], bh.h, sc)
		snrSum += snr
		bits = m.demapInto(bits, vals, bh.c)
		pos += bh.symLen
	}
	payload := fec.BitsToBytes(bits)
	if len(payload) > bh.payloadLen {
		payload = payload[:bh.payloadLen]
	}
	res := &DemodResult{
		Payload:  payload,
		Symbols:  nSym,
		StartIdx: bh.start,
	}
	if nSym > 0 {
		res.SNRdB = snrSum / float64(nSym)
	}
	return res, nil
}

// SoftDemodResult carries the soft-decision payload: one signed metric
// per payload bit (positive = 1) for a soft-decision FEC decoder, plus
// the hard payload for callers that want both.
type SoftDemodResult struct {
	Soft     []float64
	Payload  []byte
	SNRdB    float64
	Symbols  int
	StartIdx int
}

// DemodulateSoft is Demodulate with per-bit soft outputs (the header is
// still decoded by hard majority vote — it is repetition-protected).
func (m *OFDM) DemodulateSoft(samples []float64) (*SoftDemodResult, error) {
	sc := m.getScratch()
	defer m.putScratch(sc)
	bh, err := m.decodePrologue(samples, sc)
	if err != nil {
		return nil, err
	}
	bps := m.p.DataCarriers * bh.c.Bits()
	totalBits := bh.payloadLen * 8
	nSym := (totalBits + bps - 1) / bps
	soft := make([]float64, 0, nSym*bps)
	pos := bh.pos
	var snrSum float64
	for s := 0; s < nSym; s++ {
		if pos+bh.symLen > len(samples) {
			return nil, fmt.Errorf("modem: burst truncated at symbol %d/%d", s, nSym)
		}
		vals, snr := m.eqSymbol(samples[pos:pos+bh.symLen], bh.h, sc)
		snrSum += snr
		for i := range vals {
			if m.isPilot[i] {
				continue
			}
			soft = bh.c.DemapSoft(vals[i], soft)
		}
		pos += bh.symLen
	}
	if len(soft) > totalBits {
		soft = soft[:totalBits]
	}
	bits := make([]byte, len(soft))
	for i, s := range soft {
		if s > 0 {
			bits[i] = 1
		}
	}
	res := &SoftDemodResult{
		Soft:     soft,
		Payload:  fec.BitsToBytes(bits),
		Symbols:  nSym,
		StartIdx: bh.start,
	}
	if nSym > 0 {
		res.SNRdB = snrSum / float64(nSym)
	}
	return res, nil
}

// findPreamble locates the chirp preamble by normalized cross-correlation
// and returns the start sample, or -1. The search runs in windows with
// early stop: once a window contains a confident peak (chirp correlation
// sidelobes are low, so a >=0.25 normalized peak is genuine sync), later
// audio — usually megabytes of payload symbols — is never scanned.
//
// The correlation numerators come from the precomputed overlap-save FFT
// correlator (O(N log N) instead of O(N * preamble)); the normalization
// keeps the reference implementation's running window energy, threshold,
// and first-maximum semantics, so the same peak is selected.
func (m *OFDM) findPreamble(samples []float64, sc *ofdmScratch) int {
	const (
		window    = 1 << 16
		threshold = 0.25
	)
	lp := len(m.preamble)
	n := len(samples) - lp + 1
	if n <= 0 {
		return -1
	}
	for off := 0; off < n; off += window {
		end := off + window + lp - 1
		if end > len(samples) {
			end = len(samples)
		}
		hay := samples[off:end]
		sc.cc = m.corr.Correlate(sc.cc[:0], hay)
		cc := sc.cc
		if cc == nil {
			continue
		}
		// Normalize by needle and running window energy, tracking the
		// first maximum — exactly NormalizedCrossCorrelate + ArgMax.
		var we float64
		for j := 0; j < lp; j++ {
			we += hay[j] * hay[j]
		}
		best := math.Inf(-1)
		bestIdx := -1
		for i := range cc {
			v := 0.0
			if denom := m.preambleEnergy * math.Sqrt(we); denom > 1e-12 {
				v = cc[i] / denom
			}
			if v > best {
				best, bestIdx = v, i
			}
			if i+1 < len(cc) {
				old := hay[i]
				next := hay[i+lp]
				we += next*next - old*old
				if we < 0 {
					we = 0
				}
			}
		}
		if bestIdx >= 0 && best >= threshold {
			return off + bestIdx
		}
	}
	return -1
}

// eqSymbol analyzes one symbol, equalizes with the channel estimate, and
// applies common-phase correction from pilots. It returns the equalized
// occupied-bin values (aliasing sc.vals — valid until the next symbol)
// and a pilot-based SNR estimate in dB.
func (m *OFDM) eqSymbol(samples []float64, h []complex128, sc *ofdmScratch) ([]complex128, float64) {
	vals := m.analyzeInto(sc.vals, samples, sc.spec)
	for i := range vals {
		if cmplx.Abs(h[i]) > 1e-9 {
			vals[i] /= h[i]
		}
	}
	// Common phase error from pilots.
	var rot complex128
	for i := range vals {
		if m.isPilot[i] {
			rot += vals[i] * cmplx.Conj(m.pilotVal[i])
		}
	}
	if cmplx.Abs(rot) > 1e-9 {
		rot /= complex(cmplx.Abs(rot), 0)
		inv := cmplx.Conj(rot)
		for i := range vals {
			vals[i] *= inv
		}
	}
	// Pilot SNR estimate.
	var sig, noise float64
	for i := range vals {
		if m.isPilot[i] {
			sig += cmplx.Abs(m.pilotVal[i]) * cmplx.Abs(m.pilotVal[i])
			d := vals[i] - m.pilotVal[i]
			noise += real(d)*real(d) + imag(d)*imag(d)
		}
	}
	snr := 40.0
	if noise > 1e-12 {
		snr = 10 * math.Log10(sig/noise)
	}
	return vals, snr
}

func (m *OFDM) demapInto(dst []byte, vals []complex128, c *Constellation) []byte {
	for i := range vals {
		if m.isPilot[i] {
			continue
		}
		dst = c.Demap(vals[i], dst)
	}
	return dst
}

// majorityVoteHeader collapses the repetition-coded header bits back to
// one header byte slice. With headerRep copies it votes bitwise; ok is
// false if too few bits were received.
func majorityVoteHeader(bits []byte) ([]byte, bool) {
	need := headerBytes * 8
	if len(bits) < need*headerRep {
		return nil, false
	}
	out := make([]byte, need)
	for i := 0; i < need; i++ {
		votes := 0
		for r := 0; r < headerRep; r++ {
			votes += int(bits[r*need+i] & 1)
		}
		if votes*2 >= headerRep+1 {
			out[i] = 1
		}
	}
	return fec.BitsToBytes(out), true
}

// BurstSamples returns the number of audio samples Modulate will produce
// for a payload of n bytes (useful for scheduling air time).
func (m *OFDM) BurstSamples(n int) int {
	symLen := m.p.FFTSize + m.p.CyclicPrefix
	hdrBits := headerBytes * 8 * headerRep
	hdrSyms := (hdrBits + m.p.DataCarriers*m.header.Bits() - 1) / (m.p.DataCarriers * m.header.Bits())
	bps := m.bitsPerSymbol()
	paySyms := (n*8 + bps - 1) / bps
	return preambleSamples + 2*guardSamples + (1+hdrSyms+paySyms)*symLen
}

// BurstDuration returns the on-air duration for n payload bytes, seconds.
func (m *OFDM) BurstDuration(n int) float64 {
	return float64(m.BurstSamples(n)) / float64(m.p.SampleRate)
}
