package modem

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func addAWGN(samples []float64, snrDB float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var sig float64
	for _, v := range samples {
		sig += v * v
	}
	sig /= float64(len(samples))
	noisePow := sig / math.Pow(10, snrDB/10)
	sigma := math.Sqrt(noisePow)
	out := make([]float64, len(samples))
	for i, v := range samples {
		out[i] = v + sigma*rng.NormFloat64()
	}
	return out
}

func TestProfileValidation(t *testing.T) {
	p := Sonic92()
	if err := p.Validate(); err != nil {
		t.Fatalf("Sonic92 invalid: %v", err)
	}
	p2 := p
	p2.FFTSize = 1000
	if err := p2.Validate(); err == nil {
		t.Error("non-power-of-two FFT should fail")
	}
	p3 := p
	p3.CenterHz = 23000
	if err := p3.Validate(); err == nil {
		t.Error("band above Nyquist should fail")
	}
	p4 := p
	p4.Constellation = nil
	if err := p4.Validate(); err == nil {
		t.Error("missing constellation should fail")
	}
	p5 := p
	p5.CyclicPrefix = p5.FFTSize
	if err := p5.Validate(); err == nil {
		t.Error("CP >= FFT should fail")
	}
	p6 := p
	p6.PilotCarriers = 0
	if err := p6.Validate(); err == nil {
		t.Error("zero pilots should fail")
	}
}

func TestSonic92ProfileRates(t *testing.T) {
	p := Sonic92()
	if p.DataCarriers != 92 {
		t.Errorf("DataCarriers = %d, want 92 (paper §3.3)", p.DataCarriers)
	}
	// Raw rate must be high enough that after r=1/2 conv + RS(255/223)
	// the net goodput is about 10 kbps.
	raw := p.RawBitRate()
	net := raw * 0.5 * 223.0 / 255.0
	if net < 8500 || net > 12000 {
		t.Errorf("net rate %.0f bps, want ~10kbps (raw %.0f)", net, raw)
	}
	if d := p.SymbolDuration(); math.Abs(d-0.024) > 1e-9 {
		t.Errorf("symbol duration = %g", d)
	}
}

func TestOFDMCleanRoundTrip(t *testing.T) {
	for _, prof := range []Profile{Sonic92(), Audible7k()} {
		m, err := NewOFDM(prof)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for _, n := range []int{1, 10, 100, 1000} {
			payload := make([]byte, n)
			rng.Read(payload)
			audio := m.Modulate(payload)
			res, err := m.Demodulate(audio)
			if err != nil {
				t.Fatalf("%s n=%d: %v", prof.Name, n, err)
			}
			if !bytes.Equal(res.Payload, payload) {
				t.Fatalf("%s n=%d: payload mismatch", prof.Name, n)
			}
		}
	}
}

func TestOFDMEmptyPayload(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	audio := m.Modulate(nil)
	res, err := m.Demodulate(audio)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payload) != 0 {
		t.Errorf("payload = %v, want empty", res.Payload)
	}
}

func TestOFDMWithLeadingNoiseAndOffset(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	payload := []byte("offset burst: the receiver must find the preamble")
	audio := m.Modulate(payload)
	rng := rand.New(rand.NewSource(2))
	pre := make([]float64, 9000)
	post := make([]float64, 3000)
	for i := range pre {
		pre[i] = 0.005 * rng.NormFloat64()
	}
	stream := append(append(pre, audio...), post...)
	res, err := m.Demodulate(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload mismatch after offset")
	}
	if res.StartIdx < 8900 || res.StartIdx > 9100 {
		t.Errorf("StartIdx = %d, want ~9000", res.StartIdx)
	}
}

func TestOFDMHighSNRNoise(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	rng := rand.New(rand.NewSource(3))
	payload := make([]byte, 300)
	rng.Read(payload)
	audio := m.Modulate(payload)
	noisy := addAWGN(audio, 35, 4)
	res, err := m.Demodulate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("64-QAM should survive 35 dB SNR")
	}
	if res.SNRdB < 15 {
		t.Errorf("reported SNR %g dB implausibly low", res.SNRdB)
	}
}

func TestOFDMQPSKSurvivesModerateNoise(t *testing.T) {
	p := Sonic92()
	p.Constellation = QPSK
	m, _ := NewOFDM(p)
	rng := rand.New(rand.NewSource(5))
	payload := make([]byte, 200)
	rng.Read(payload)
	noisy := addAWGN(m.Modulate(payload), 18, 6)
	res, err := m.Demodulate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("QPSK should survive 18 dB SNR")
	}
}

func TestOFDMDegradesGracefully(t *testing.T) {
	// Bit errors should appear as SNR drops, not panics or hangs; at very
	// low SNR demodulation may fail entirely (that's a frame loss).
	m, _ := NewOFDM(Sonic92())
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 200)
	rng.Read(payload)
	audio := m.Modulate(payload)
	errsAt := func(snr float64) int {
		res, err := m.Demodulate(addAWGN(audio, snr, 8))
		if err != nil {
			return len(payload) * 8 // total loss
		}
		errs := 0
		for i := range payload {
			if i < len(res.Payload) {
				for b := 0; b < 8; b++ {
					if (payload[i]^res.Payload[i])>>uint(b)&1 == 1 {
						errs++
					}
				}
			} else {
				errs += 8
			}
		}
		return errs
	}
	clean := errsAt(40)
	noisy := errsAt(12)
	if clean != 0 {
		t.Errorf("40 dB SNR produced %d bit errors", clean)
	}
	if noisy <= clean {
		t.Errorf("12 dB SNR produced %d errors, expected degradation", noisy)
	}
}

func TestOFDMNoPreambleInSilence(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	if _, err := m.Demodulate(make([]float64, 48000)); err != ErrNoPreamble {
		t.Errorf("silence: err = %v, want ErrNoPreamble", err)
	}
	rng := rand.New(rand.NewSource(9))
	noise := make([]float64, 48000)
	for i := range noise {
		noise[i] = 0.3 * rng.NormFloat64()
	}
	if _, err := m.Demodulate(noise); err == nil {
		t.Error("pure noise should not demodulate")
	}
}

func TestOFDMTruncatedBurst(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	payload := make([]byte, 500)
	audio := m.Modulate(payload)
	if _, err := m.Demodulate(audio[:len(audio)/2]); err == nil {
		t.Error("truncated burst should fail")
	}
}

func TestOFDMBurstSamplesMatchesModulate(t *testing.T) {
	m, _ := NewOFDM(Sonic92())
	for _, n := range []int{0, 1, 99, 100, 1000} {
		want := m.BurstSamples(n)
		got := len(m.Modulate(make([]byte, n)))
		if got != want {
			t.Errorf("n=%d: BurstSamples=%d but Modulate produced %d", n, want, got)
		}
	}
	if m.BurstDuration(100) <= 0 {
		t.Error("BurstDuration should be positive")
	}
}

func TestHeaderCodec(t *testing.T) {
	h := headerPayload(123456, 6)
	n, bits, err := parseHeader(h)
	if err != nil || n != 123456 || bits != 6 {
		t.Fatalf("parseHeader = %d,%d,%v", n, bits, err)
	}
	h[3] ^= 0xFF
	if _, _, err := parseHeader(h); err == nil {
		t.Error("corrupted header should fail CRC")
	}
	if _, _, err := parseHeader([]byte{1, 2}); err == nil {
		t.Error("short header should fail")
	}
	bad := headerPayload(1, 2)
	bad[0] = 0
	if _, _, err := parseHeader(bad); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestOFDMAllConstellationsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range allConstellations() {
		p := Sonic92()
		p.Constellation = c
		m, err := NewOFDM(p)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 150)
		rng.Read(payload)
		res, err := m.Demodulate(m.Modulate(payload))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Fatalf("%s: clean round trip failed", c.Name())
		}
	}
}

func BenchmarkOFDMModulate1KB(b *testing.B) {
	m, _ := NewOFDM(Sonic92())
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Modulate(payload)
	}
}

func BenchmarkOFDMDemodulate1KB(b *testing.B) {
	m, _ := NewOFDM(Sonic92())
	payload := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(payload)
	audio := m.Modulate(payload)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Demodulate(audio); err != nil {
			b.Fatal(err)
		}
	}
}
