package modem

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sonic/internal/dsp"
)

func TestGMSKCleanRoundTrip(t *testing.T) {
	g := NewGMSK()
	for _, payload := range [][]byte{
		[]byte("gmsk"),
		[]byte("a longer constant-envelope payload for the gmsk path"),
		{0x00, 0xFF, 0x55},
	} {
		audio := g.Modulate(payload)
		got, err := g.Demodulate(audio)
		if err != nil {
			t.Fatalf("payload %q: %v", payload, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %q: got %q", payload, got)
		}
	}
}

func TestGMSKConstantEnvelope(t *testing.T) {
	// The point of GMSK: near-constant envelope (no amplitude
	// modulation), so nonlinear speakers do not distort it.
	g := NewGMSK()
	audio := g.Modulate([]byte("envelope check"))
	// Envelope via Hilbert-ish proxy: RMS over short windows should be
	// stable in the middle of the burst.
	spb := g.samplesPerBit()
	var rmss []float64
	for off := 10 * spb; off+spb < len(audio)-10*spb; off += spb {
		rmss = append(rmss, dsp.RMS(audio[off:off+spb]))
	}
	if len(rmss) < 10 {
		t.Skip("burst too short")
	}
	minV, maxV := rmss[0], rmss[0]
	for _, v := range rmss {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV/minV > 1.25 {
		t.Errorf("envelope ripple %.2fx, want near-constant", maxV/minV)
	}
}

func TestGMSKWithNoiseAndOffset(t *testing.T) {
	g := NewGMSK()
	payload := []byte("noisy gmsk")
	audio := g.Modulate(payload)
	rng := rand.New(rand.NewSource(1))
	pre := make([]float64, 3000)
	for i := range pre {
		pre[i] = 0.01 * rng.NormFloat64()
	}
	stream := append(pre, addAWGN(audio, 18, 2)...)
	got, err := g.Demodulate(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestGMSKRejectsSilence(t *testing.T) {
	g := NewGMSK()
	if _, err := g.Demodulate(make([]float64, 96000)); err == nil {
		t.Error("silence should not decode")
	}
	if _, err := g.Demodulate(nil); err == nil {
		t.Error("empty input should not decode")
	}
}

func TestGMSKBandwidthBetweenFSKAndOFDM(t *testing.T) {
	// Rate positioning: faster than the GGwave-class FSK, slower than
	// the OFDM profile.
	g := NewGMSK()
	f := NewFSK128()
	m, _ := NewOFDM(Sonic92())
	n := 200
	if g.BurstDuration(n) >= f.BurstDuration(n) {
		t.Error("GMSK should beat FSK-128")
	}
	if g.BurstDuration(n) <= m.BurstDuration(n) {
		t.Error("OFDM should beat GMSK")
	}
}

func TestGMSKSpectrumCentered(t *testing.T) {
	// Energy should concentrate near CenterHz, inside the mono band.
	g := NewGMSK()
	audio := g.Modulate(bytes.Repeat([]byte{0xA7}, 32))
	n := 8192
	if len(audio) < n {
		t.Skip("short burst")
	}
	spec := make([]complex128, n)
	for i := 0; i < n; i++ {
		spec[i] = complex(audio[len(audio)/2-n/2+i], 0)
	}
	if err := dsp.FFT(spec); err != nil {
		t.Fatal(err)
	}
	binHz := 48000.0 / float64(n)
	var inBand, total float64
	for k := 1; k < n/2; k++ {
		p := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
		total += p
		hz := float64(k) * binHz
		if hz > g.CenterHz-2*g.BitRate && hz < g.CenterHz+2*g.BitRate {
			inBand += p
		}
	}
	if inBand/total < 0.9 {
		t.Errorf("only %.0f%% of energy within +-2R of center", inBand/total*100)
	}
}
