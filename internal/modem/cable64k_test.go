package modem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCable64kRate(t *testing.T) {
	p := Cable64k()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Quiet's claim: up to 64 kbps over an audio jack cable.
	if raw := p.RawBitRate(); raw < 64000 {
		t.Errorf("raw rate %.0f bps, want >= 64 kbps", raw)
	}
}

func TestCable64kCleanCableRoundTrip(t *testing.T) {
	m, err := NewOFDM(Cable64k())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 2000)
	rng.Read(payload)
	res, err := m.Demodulate(m.Modulate(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("1024-QAM cable round trip failed")
	}
}

func TestCable64kFragileOverAir(t *testing.T) {
	// The reason the broadcast profile is 64-QAM: 1024-QAM cannot take
	// air-channel noise that the Sonic92 profile shrugs off.
	m64k, _ := NewOFDM(Cable64k())
	mAir, _ := NewOFDM(Sonic92())
	payload := make([]byte, 500)
	rand.New(rand.NewSource(2)).Read(payload)
	byteErrs := func(m *OFDM, snr float64) int {
		noisy := addAWGN(m.Modulate(payload), snr, 3)
		res, err := m.Demodulate(noisy)
		if err != nil {
			return len(payload)
		}
		errs := 0
		for i := range payload {
			if i >= len(res.Payload) || res.Payload[i] != payload[i] {
				errs++
			}
		}
		return errs
	}
	const snr = 26
	if e := byteErrs(mAir, snr); e != 0 {
		t.Errorf("Sonic92 at %v dB: %d byte errors, want 0", snr, e)
	}
	if e := byteErrs(m64k, snr); e == 0 {
		t.Errorf("Cable64k at %v dB should degrade (it is a cable-only profile)", snr)
	}
}
