// Package modem implements SONIC's physical layer: an OFDM modem modeled
// on the Quiet library's "audible-7k-channel" profile, extended to the
// paper's 92-subcarrier configuration centered at 9.2 kHz (§3.3), plus a
// slow FSK modem representing the GGwave class of data-over-sound tools
// used as a related-work baseline (§2).
package modem

import (
	"fmt"
	"math"
)

// Constellation maps groups of bits to complex symbols and back. All
// constellations are square Gray-coded QAM (BPSK and QPSK are the 1- and
// 2-bit special cases), normalized to unit average energy.
type Constellation struct {
	name    string
	bits    int       // bits per symbol
	side    int       // points per I/Q axis (side*side == 2^bits), 0 for BPSK
	scale   float64   // amplitude normalization
	levels  []float64 // PAM levels per axis, Gray-indexed
	grayInv []int     // Gray code -> level index
}

// Constellations named by total points.
var (
	BPSK    = newConstellation("BPSK", 1)
	QPSK    = newConstellation("QPSK", 2)
	QAM16   = newConstellation("16-QAM", 4)
	QAM64   = newConstellation("64-QAM", 6)
	QAM256  = newConstellation("256-QAM", 8)
	QAM1024 = newConstellation("1024-QAM", 10)
)

// ConstellationByBits returns the constellation with the given bits per
// symbol (1, 2, 4, 6, 8 or 10).
func ConstellationByBits(bits int) (*Constellation, error) {
	switch bits {
	case 1:
		return BPSK, nil
	case 2:
		return QPSK, nil
	case 4:
		return QAM16, nil
	case 6:
		return QAM64, nil
	case 8:
		return QAM256, nil
	case 10:
		return QAM1024, nil
	}
	return nil, fmt.Errorf("modem: no constellation with %d bits/symbol", bits)
}

func newConstellation(name string, bits int) *Constellation {
	c := &Constellation{name: name, bits: bits}
	if bits == 1 {
		c.scale = 1
		return c
	}
	half := bits / 2
	side := 1 << uint(half)
	c.side = side
	// PAM levels: odd integers -side+1 ... side-1, Gray-mapped so adjacent
	// levels differ in one bit.
	c.levels = make([]float64, side)
	c.grayInv = make([]int, side)
	var energy float64
	for i := 0; i < side; i++ {
		gray := i ^ (i >> 1)
		lvl := float64(2*i - side + 1)
		c.levels[gray] = lvl
		c.grayInv[gray] = i
		energy += lvl * lvl
	}
	// Average symbol energy = 2 * mean level^2 (I and Q independent).
	c.scale = 1 / math.Sqrt(2*energy/float64(side))
	return c
}

// Name returns a human-readable constellation name.
func (c *Constellation) Name() string { return c.name }

// Bits returns the number of bits per symbol.
func (c *Constellation) Bits() int { return c.bits }

// Map converts bits (len == Bits(), values 0/1) to a unit-average-energy
// complex symbol.
func (c *Constellation) Map(bits []byte) complex128 {
	if c.bits == 1 {
		if bits[0]&1 == 1 {
			return complex(-1, 0)
		}
		return complex(1, 0)
	}
	half := c.bits / 2
	var gi, gq int
	for k := 0; k < half; k++ {
		gi = gi<<1 | int(bits[k]&1)
		gq = gq<<1 | int(bits[half+k]&1)
	}
	return complex(c.levels[gi]*c.scale, c.levels[gq]*c.scale)
}

// Demap hard-decides the nearest constellation point for sym and appends
// its Bits() bits to dst, returning the extended slice.
func (c *Constellation) Demap(sym complex128, dst []byte) []byte {
	if c.bits == 1 {
		if real(sym) < 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	half := c.bits / 2
	gi := c.sliceAxis(real(sym))
	gq := c.sliceAxis(imag(sym))
	for k := half - 1; k >= 0; k-- {
		dst = append(dst, byte(gi>>uint(k))&1)
	}
	for k := half - 1; k >= 0; k-- {
		dst = append(dst, byte(gq>>uint(k))&1)
	}
	return dst
}

// sliceAxis maps an amplitude back to the Gray code of the nearest PAM
// level on one axis.
func (c *Constellation) sliceAxis(v float64) int {
	// Levels are odd integers scaled by c.scale; invert the scaling and
	// round to the nearest odd integer, clamped to the alphabet.
	lvl := v / c.scale
	idx := int(math.Round((lvl + float64(c.side) - 1) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx >= c.side {
		idx = c.side - 1
	}
	// idx is the natural level index; its Gray code is the bit pattern.
	return idx ^ (idx >> 1)
}

// MinDistance returns the minimum distance between constellation points
// (a proxy for noise tolerance).
func (c *Constellation) MinDistance() float64 {
	if c.bits == 1 {
		return 2
	}
	return 2 * c.scale
}

// DemapSoft appends one signed soft metric per bit to dst: the sign is
// the hard decision (positive means bit 1) and the magnitude grows with
// reliability. It uses the classic recursive approximation for
// Gray-coded square QAM, which the soft-decision Viterbi decoder
// consumes. The sign of each soft value always agrees with Demap.
func (c *Constellation) DemapSoft(sym complex128, dst []float64) []float64 {
	if c.bits == 1 {
		// BPSK maps bit 1 to -1: positive soft value must mean bit 1.
		return append(dst, -real(sym))
	}
	half := c.bits / 2
	dst = c.softAxis(real(sym), half, dst)
	return c.softAxis(imag(sym), half, dst)
}

// softAxis emits m soft metrics for one PAM axis.
func (c *Constellation) softAxis(v float64, m int, dst []float64) []float64 {
	u := v / c.scale // unit level spacing of 2, levels at odd integers
	dst = append(dst, u)
	t := math.Abs(u)
	level := float64(c.side) / 2
	for k := 1; k < m; k++ {
		s := level - t
		dst = append(dst, s)
		t = math.Abs(s)
		level /= 2
	}
	return dst
}
