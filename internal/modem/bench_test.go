package modem

import (
	"math/rand"
	"testing"
)

func benchBurst(b *testing.B, payloadBytes int) (*OFDM, []byte, []float64) {
	b.Helper()
	m, err := NewOFDM(Sonic92())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	payload := make([]byte, payloadBytes)
	rng.Read(payload)
	return m, payload, m.Modulate(payload)
}

func BenchmarkOFDMModulate(b *testing.B) {
	m, payload, _ := benchBurst(b, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Modulate(payload)
	}
}

func BenchmarkOFDMDemodulate(b *testing.B) {
	m, _, audio := benchBurst(b, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Demodulate(audio); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOFDMDemodulateSoft(b *testing.B) {
	m, _, audio := benchBurst(b, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DemodulateSoft(audio); err != nil {
			b.Fatal(err)
		}
	}
}
