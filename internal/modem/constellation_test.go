package modem

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func allConstellations() []*Constellation {
	return []*Constellation{BPSK, QPSK, QAM16, QAM64, QAM256, QAM1024}
}

func TestConstellationByBits(t *testing.T) {
	for _, c := range allConstellations() {
		got, err := ConstellationByBits(c.Bits())
		if err != nil || got != c {
			t.Errorf("ConstellationByBits(%d) = %v, %v", c.Bits(), got, err)
		}
	}
	if _, err := ConstellationByBits(3); err == nil {
		t.Error("bits=3 should fail")
	}
	if _, err := ConstellationByBits(12); err == nil {
		t.Error("bits=12 should fail")
	}
}

func TestConstellationUnitEnergy(t *testing.T) {
	for _, c := range allConstellations() {
		n := 1 << uint(c.Bits())
		var energy float64
		for v := 0; v < n; v++ {
			bits := make([]byte, c.Bits())
			for k := 0; k < c.Bits(); k++ {
				bits[k] = byte(v>>uint(c.Bits()-1-k)) & 1
			}
			s := c.Map(bits)
			energy += real(s)*real(s) + imag(s)*imag(s)
		}
		avg := energy / float64(n)
		if math.Abs(avg-1) > 1e-9 {
			t.Errorf("%s average energy = %g, want 1", c.Name(), avg)
		}
	}
}

func TestConstellationMapDemapRoundTrip(t *testing.T) {
	for _, c := range allConstellations() {
		n := 1 << uint(c.Bits())
		for v := 0; v < n; v++ {
			bits := make([]byte, c.Bits())
			for k := 0; k < c.Bits(); k++ {
				bits[k] = byte(v>>uint(c.Bits()-1-k)) & 1
			}
			sym := c.Map(bits)
			got := c.Demap(sym, nil)
			for k := range bits {
				if got[k] != bits[k] {
					t.Fatalf("%s value %d: demap mismatch %v vs %v", c.Name(), v, got, bits)
				}
			}
		}
	}
}

func TestConstellationDemapWithNoise(t *testing.T) {
	// Noise below half the minimum distance must never flip a decision.
	rng := rand.New(rand.NewSource(1))
	for _, c := range allConstellations() {
		margin := c.MinDistance() / 2 * 0.45
		for trial := 0; trial < 200; trial++ {
			bits := make([]byte, c.Bits())
			for k := range bits {
				bits[k] = byte(rng.Intn(2))
			}
			sym := c.Map(bits)
			angle := rng.Float64() * 2 * math.Pi
			noisy := sym + cmplx.Rect(margin, angle)
			got := c.Demap(noisy, nil)
			for k := range bits {
				if got[k] != bits[k] {
					t.Fatalf("%s: in-margin noise flipped bits", c.Name())
				}
			}
		}
	}
}

func TestConstellationGrayAdjacency(t *testing.T) {
	// Adjacent levels on one axis should differ in exactly one bit of the
	// per-axis Gray label (the property that makes symbol errors cheap).
	for _, c := range []*Constellation{QAM16, QAM64, QAM256, QAM1024} {
		side := c.side
		// Build natural-order level -> gray map.
		byLevel := make(map[float64]int)
		for gray := 0; gray < side; gray++ {
			byLevel[c.levels[gray]] = gray
		}
		for i := 0; i < side-1; i++ {
			l0 := float64(2*i - side + 1)
			l1 := float64(2*(i+1) - side + 1)
			g0, g1 := byLevel[l0], byLevel[l1]
			diff := g0 ^ g1
			if diff == 0 || diff&(diff-1) != 0 {
				t.Errorf("%s: levels %g,%g gray codes %b,%b differ in != 1 bit",
					c.Name(), l0, l1, g0, g1)
			}
		}
	}
}

func TestConstellationDemapClamps(t *testing.T) {
	// Wildly out-of-range symbols must still demap without panicking.
	for _, c := range allConstellations() {
		for _, sym := range []complex128{100, -100, 100i, -100i, complex(50, -50)} {
			got := c.Demap(sym, nil)
			if len(got) != c.Bits() {
				t.Errorf("%s: demap of %v produced %d bits", c.Name(), sym, len(got))
			}
		}
	}
}

func TestConstellationQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, sel uint8) bool {
		cs := allConstellations()
		c := cs[int(sel)%len(cs)]
		bits := make([]byte, c.Bits())
		for i := range bits {
			if i < len(raw) {
				bits[i] = raw[i] & 1
			}
		}
		got := c.Demap(c.Map(bits), nil)
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinDistanceOrdering(t *testing.T) {
	// Higher-order constellations have smaller minimum distance.
	cs := allConstellations()
	for i := 1; i < len(cs); i++ {
		if cs[i].MinDistance() >= cs[i-1].MinDistance() {
			t.Errorf("%s min distance %g not < %s's %g",
				cs[i].Name(), cs[i].MinDistance(), cs[i-1].Name(), cs[i-1].MinDistance())
		}
	}
}
