package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// FFTPlan caches everything about a fixed-size radix-2 transform that
// does not depend on the input: the bit-reversal permutation and the
// per-stage twiddle factors for both directions. Planned transforms are
// bit-identical to the direct implementation (the twiddles are generated
// with the same iterative recurrence the direct butterflies use) but do
// no trig and no allocation per call. A plan is immutable after
// construction and safe for concurrent use.
type FFTPlan struct {
	n   int
	rev []int32      // bit-reversal permutation
	fwd []complex128 // forward twiddles, stages concatenated (n-1 total)
	inv []complex128 // inverse twiddles
}

// planCache maps transform size to its shared plan. The modem touches a
// handful of sizes (FFTSize, the preamble correlator block), so the
// cache stays tiny.
var planCache sync.Map // int -> *FFTPlan

// PlanFFT returns the shared plan for a power-of-two transform size,
// building it on first use.
func PlanFFT(n int) (*FFTPlan, error) {
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan), nil
	}
	p, _ := planCache.LoadOrStore(n, newFFTPlan(n))
	return p.(*FFTPlan), nil
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n, rev: make([]int32, n)}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.rev[i] = int32(j)
	}
	p.fwd = planTwiddles(n, false)
	p.inv = planTwiddles(n, true)
	return p
}

// planTwiddles generates the per-stage twiddle sequences with exactly
// the recurrence the direct transform uses (w starts at 1 and is
// repeatedly multiplied by the stage root), so planned and direct
// transforms produce bit-identical output.
func planTwiddles(n int, inverse bool) []complex128 {
	tw := make([]complex128, 0, n-1)
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		w := complex(1, 0)
		for j := 0; j < length/2; j++ {
			tw = append(tw, w)
			w *= wl
		}
	}
	return tw
}

// Size returns the transform size the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place unnormalized FFT of x. len(x) must equal
// Size().
func (p *FFTPlan) Forward(x []complex128) { p.transform(x, p.fwd) }

// Inverse computes the in-place inverse FFT of x including the 1/N
// normalization. len(x) must equal Size().
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, p.inv)
	n := complex(float64(p.n), 0)
	for i := range x {
		x[i] /= n
	}
}

func (p *FFTPlan) transform(x []complex128, tw []complex128) {
	n := p.n
	x = x[:n:n]
	for i, ji := range p.rev {
		if j := int(ji); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	off := 0
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		w := tw[off : off+half : off+half]
		for i := 0; i < n; i += length {
			a := x[i : i+half : i+half]
			b := x[i+half : i+length : i+length]
			for j := range a {
				u := a[j]
				v := b[j] * w[j]
				a[j] = u + v
				b[j] = u - v
			}
		}
		off += half
	}
}
