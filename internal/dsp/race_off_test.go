//go:build !race

package dsp

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
