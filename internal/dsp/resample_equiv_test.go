package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// refResampleInto is a verbatim copy of the pre-cache linear resampler.
// The fm equivalence suite cannot pin the cached path (its reference
// also calls dsp.Resample), so the resampler is pinned here at the bit
// level against its own frozen implementation.
func refResampleInto(dst, x []float64, srcRate, dstRate float64) []float64 {
	n := ResampleLen(len(x), srcRate, dstRate)
	if n == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if srcRate == dstRate {
		copy(dst, x)
		return dst
	}
	ratio := srcRate / dstRate
	for i := range dst {
		pos := float64(i) * ratio
		i0 := int(pos)
		if i0 >= len(x)-1 {
			dst[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(i0)
		dst[i] = x[i0]*(1-frac) + x[i0+1]*frac
	}
	return dst
}

func assertBitEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: sample %d: %v (%#x) != %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestResampleMatchesReference pins the table-cached resampler bit-for-
// bit against the frozen direct implementation across the rate pairs
// SONIC uses plus awkward irrational-ratio pairs, short signals that
// live entirely in the clamp region, and repeated calls that exercise
// table growth (small → large → small).
func TestResampleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rates := []struct{ src, dst float64 }{
		{48000, 192000}, // audio → FM composite (the hot path)
		{192000, 48000}, // composite → audio
		{44100, 48000},  // non-integer ratio
		{48000, 44100},
		{8000, 6000},
		{1234.5, 987.6}, // irrational-ish ratio
		{48000, 48000},  // equal-rate copy path
	}
	lengths := []int{1, 2, 3, 7, 100, 1023, 4096, 48000}
	for _, r := range rates {
		for _, n := range lengths {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			got := ResampleInto(nil, x, r.src, r.dst)
			want := refResampleInto(nil, x, r.src, r.dst)
			assertBitEqual(t, got, want, "resample")
		}
	}
}

// TestResampleTableGrowth replays a big-then-small-then-bigger length
// sequence on one rate pair so the doubling growth path and the
// cached-prefix reuse are both pinned.
func TestResampleTableGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{10, 50000, 100, 120000, 7} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := ResampleInto(nil, x, 48000, 192000)
		want := refResampleInto(nil, x, 48000, 192000)
		assertBitEqual(t, got, want, "growth")
	}
}

// TestResampleBeyondTableCap forces an output longer than the table cap
// so the direct-compute tail path is exercised and pinned too.
func TestResampleBeyondTableCap(t *testing.T) {
	if testing.Short() {
		t.Skip("large allocation")
	}
	n := maxResampleCoefs/4 + 1000 // ×4 upsample overflows the cap
	rng := rand.New(rand.NewSource(37))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := ResampleInto(nil, x, 48000, 192000)
	want := refResampleInto(nil, x, 48000, 192000)
	if len(got) <= maxResampleCoefs {
		t.Fatalf("test under-sized: output %d does not exceed table cap %d", len(got), maxResampleCoefs)
	}
	assertBitEqual(t, got, want, "beyond-cap")
}

// countResampleKeys walks the cache and checks the map agrees with the
// length counter.
func countResampleKeys(t *testing.T) int {
	t.Helper()
	n := 0
	resampleCache.Range(func(_, _ any) bool { n++; return true })
	if got := int(resampleCacheLen.Load()); got != n {
		t.Fatalf("cache length counter %d disagrees with map size %d", got, n)
	}
	return n
}

// TestResampleCacheEviction sweeps far more rate pairs than the key cap
// and checks three invariants: the cache never exceeds maxResampleKeys,
// novel pairs seen after the flood still get cached (eviction, not
// bypass), and a pair that was evicted and revisited still resamples
// bit-identically to the frozen reference.
func TestResampleCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	for i := 0; i < 3*maxResampleKeys; i++ {
		src := 1000 + 10*float64(i)
		ResampleInto(nil, x, src, 48000)
		if n := countResampleKeys(t); n > maxResampleKeys {
			t.Fatalf("cache grew to %d keys after %d distinct pairs (cap %d)", n, i+1, maxResampleKeys)
		}
	}

	// A fresh pair after the flood must land in the cache with a table.
	fresh := resampleKey{srcRate: 777.5, dstRate: 48000}
	ResampleInto(nil, x, fresh.srcRate, fresh.dstRate)
	v, ok := resampleCache.Load(fresh)
	if !ok {
		t.Fatalf("novel rate pair was not cached after the cap was hit: eviction regressed to bypass")
	}
	if v.(*resampleEntry).tab.Load() == nil {
		t.Fatalf("cached entry for novel rate pair has no coefficient table")
	}
	if n := countResampleKeys(t); n > maxResampleKeys {
		t.Fatalf("cache holds %d keys after post-flood insert (cap %d)", n, maxResampleKeys)
	}

	// The first flood pair is long gone; revisiting it must rebuild an
	// identical table.
	got := ResampleInto(nil, x, 1000, 48000)
	want := refResampleInto(nil, x, 1000, 48000)
	assertBitEqual(t, got, want, "evicted-revisit")
}

func BenchmarkResample48kTo192k(b *testing.B) {
	x := make([]float64, 48000)
	rng := rand.New(rand.NewSource(41))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, ResampleLen(len(x), 48000, 192000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ResampleInto(dst, x, 48000, 192000)
	}
	_ = dst
}

func BenchmarkResampleReference48kTo192k(b *testing.B) {
	x := make([]float64, 48000)
	rng := rand.New(rand.NewSource(41))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, ResampleLen(len(x), 48000, 192000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = refResampleInto(dst, x, 48000, 192000)
	}
	_ = dst
}
