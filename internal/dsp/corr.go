package dsp

import (
	"math/cmplx"
	"sync"
)

// FFTCorrelator computes sliding dot products of a fixed needle against
// arbitrary haystacks by overlap-save FFT convolution: the needle's
// conjugated spectrum is precomputed once, and each Correlate call runs
// O(N log N) instead of CrossCorrelate's O(N * len(needle)). For the
// modem's 2048-sample preamble that is roughly a 10x reduction in work
// on every sync search.
//
// The numeric results differ from CrossCorrelate only by floating-point
// rounding (an FFT sums in a different order); callers that threshold or
// argmax well-separated peaks — preamble sync — see identical decisions.
//
// An FFTCorrelator is safe for concurrent use: the precomputed spectrum
// is immutable and per-call block buffers come from an internal pool.
type FFTCorrelator struct {
	lp   int // needle length
	n    int // FFT block size
	plan *FFTPlan
	spec []complex128 // conj(FFT(zero-padded needle))
	pool sync.Pool    // *[]complex128, length n
}

// NewFFTCorrelator builds a correlator for the given needle. Returns nil
// for an empty needle. The block size is the smallest power of two at
// least 4x the needle, trading a little memory for fewer, better
// amortized blocks.
func NewFFTCorrelator(needle []float64) *FFTCorrelator {
	lp := len(needle)
	if lp == 0 {
		return nil
	}
	n := NextPowerOfTwo(4 * lp)
	plan, err := PlanFFT(n)
	if err != nil {
		return nil // unreachable: NextPowerOfTwo yields a power of two
	}
	spec := make([]complex128, n)
	for i, v := range needle {
		spec[i] = complex(v, 0)
	}
	plan.Forward(spec)
	for i := range spec {
		spec[i] = cmplx.Conj(spec[i])
	}
	return &FFTCorrelator{lp: lp, n: n, plan: plan, spec: spec}
}

// NeedleLen returns the needle length the correlator was built for.
func (c *FFTCorrelator) NeedleLen() int { return c.lp }

// Correlate computes dst[i] = dot(needle, hay[i:i+len(needle)]) for
// every valid window position — the same values as
// CrossCorrelate(hay, needle), up to rounding. dst is reused if its
// capacity suffices; the possibly reallocated slice is returned. Returns
// nil if hay is shorter than the needle.
func (c *FFTCorrelator) Correlate(dst, hay []float64) []float64 {
	nOut := len(hay) - c.lp + 1
	if nOut <= 0 {
		return nil
	}
	if cap(dst) < nOut {
		dst = make([]float64, nOut)
	}
	dst = dst[:nOut]

	bufp, ok := c.pool.Get().(*[]complex128)
	if !ok {
		b := make([]complex128, c.n)
		bufp = &b
	}
	buf := *bufp
	// Each block of n samples yields n-lp+1 valid correlation outputs
	// (lags where the circular correlation does not wrap).
	valid := c.n - c.lp + 1
	for s := 0; s < nOut; s += valid {
		m := len(hay) - s
		if m > c.n {
			m = c.n
		}
		for i := 0; i < m; i++ {
			buf[i] = complex(hay[s+i], 0)
		}
		for i := m; i < c.n; i++ {
			buf[i] = 0
		}
		c.plan.Forward(buf)
		for i := range buf {
			buf[i] *= c.spec[i]
		}
		c.plan.Inverse(buf)
		e := valid
		if s+e > nOut {
			e = nOut - s
		}
		for j := 0; j < e; j++ {
			dst[s+j] = real(buf[j])
		}
	}
	c.pool.Put(bufp)
	return dst
}
