//go:build race

package dsp

// raceEnabled skips the strict allocation-count assertions under the
// race detector: race-mode sync.Pool randomly drops Puts (by design, to
// widen race coverage), so pooled paths allocate nondeterministically
// and AllocsPerRun bounds become noise. The non-race test leg keeps the
// tripwires strict.
const raceEnabled = true
