package dsp

import "sync"

// FFTConvolver applies a fixed FIR filter to arbitrary-length real
// signals by overlap-save FFT convolution. It computes exactly the same
// causal, zero-initial-state convolution as
// NewFIRFilter(taps).ProcessBlock(x) — y[i] = Σ_j taps[j]·x[i-j] with
// x[<0] = 0 — but in O(N log N) instead of O(N·taps): at the FM
// composite chain's 127- and 255-tap filters that is roughly a 5-10x
// reduction in work per sample. The outputs differ from the direct form
// only by floating-point rounding (an FFT sums in a different order).
//
// A convolver is safe for concurrent use: the precomputed tap spectrum
// is immutable and per-call workspaces come from an internal pool.
type FFTConvolver struct {
	nt   int // number of taps
	n    int // FFT block size
	plan *FFTPlan
	spec []complex128 // FFT of zero-padded taps
	pool sync.Pool    // *convWorkspace
}

// convWorkspace is the per-call scratch: the FFT block plus the nt-1
// input samples that overlap into the next block (kept separately so
// in-place filtering never reads samples dst already overwrote).
type convWorkspace struct {
	buf  []complex128
	hist []float64
}

// NewFFTConvolver builds a convolver for the given taps. Returns nil for
// an empty tap set. The block size is the smallest power of two at least
// 4x the tap count (minimum 256), trading a little memory for fewer,
// better amortized blocks.
func NewFFTConvolver(taps []float64) *FFTConvolver {
	nt := len(taps)
	if nt == 0 {
		return nil
	}
	n := NextPowerOfTwo(4 * nt)
	if n < 256 {
		n = 256
	}
	plan, err := PlanFFT(n)
	if err != nil {
		return nil // unreachable: NextPowerOfTwo yields a power of two
	}
	spec := make([]complex128, n)
	for i, v := range taps {
		spec[i] = complex(v, 0)
	}
	plan.Forward(spec)
	return &FFTConvolver{nt: nt, n: n, plan: plan, spec: spec}
}

// TapCount returns the number of filter taps the convolver was built for.
func (c *FFTConvolver) TapCount() int { return c.nt }

// Apply filters x into dst and returns dst (reallocated when its
// capacity is too small). dst may alias x exactly (dst == x filters in
// place); partial overlaps are not supported. len(result) == len(x).
//
// Convolution is linear, so two consecutive real blocks ride through one
// complex transform (block A in the real parts, block B in the imaginary
// parts): FFT, multiply by the tap spectrum, IFFT, and the real/imag
// parts of the result are the two blocks' filtered outputs. This halves
// the number of transforms per sample versus one-block-per-FFT.
func (c *FFTConvolver) Apply(dst, x []float64) []float64 {
	nx := len(x)
	if nx == 0 {
		return dst[:0]
	}
	if cap(dst) < nx {
		dst = make([]float64, nx)
	}
	dst = dst[:nx]

	ws, ok := c.pool.Get().(*convWorkspace)
	if !ok {
		ws = &convWorkspace{
			buf:  make([]complex128, c.n),
			hist: make([]float64, 2*(c.nt-1)),
		}
	}
	buf := ws.buf
	histLen := c.nt - 1
	histA := ws.hist[:histLen] // input tail preceding block A
	histB := ws.hist[histLen:] // input tail preceding block B
	nhA := 0                   // valid history (zero-state initially)

	// Each FFT block yields n-nt+1 valid (non-wrapped) outputs, and each
	// transform carries two such blocks. The pair for output ranges
	// [sA, sA+mA) and [sB, sB+mB) (sB = sA+valid) loads each block's
	// nt-1 history samples followed by its fresh input, zero-padded.
	valid := c.n - histLen
	for s := 0; s < nx; s += 2 * valid {
		mA := nx - s
		if mA > valid {
			mA = valid
		}
		sB := s + valid
		mB := nx - sB
		if mB > valid {
			mB = valid
		}
		if mB < 0 {
			mB = 0
		}
		// Block B's history is the tail of block A's fresh input; capture
		// both histories before any output lands (x may alias dst).
		nhB := 0
		if mB > 0 {
			nhB = histLen
			copy(histB, x[sB-histLen:sB])
		}
		for i := 0; i < histLen-nhA; i++ {
			buf[i] = complex(0, imagAt(histB, histLen-nhB, i))
		}
		for i := 0; i < nhA; i++ {
			buf[histLen-nhA+i] = complex(histA[i], imagAt(histB, histLen-nhB, histLen-nhA+i))
		}
		for i := 0; i < mA; i++ {
			var im float64
			if i < mB {
				im = x[sB+i]
			}
			buf[histLen+i] = complex(x[s+i], im)
		}
		for i := histLen + mA; i < c.n; i++ {
			buf[i] = 0
		}
		// Save the history for the next pair's block A.
		if sB+mB < nx {
			nhA = histLen
			copy(histA, x[sB+mB-histLen:sB+mB])
		}

		c.plan.Forward(buf)
		for i := range buf {
			buf[i] *= c.spec[i]
		}
		c.plan.Inverse(buf)
		for i := 0; i < mA; i++ {
			dst[s+i] = real(buf[histLen+i])
		}
		for i := 0; i < mB; i++ {
			dst[sB+i] = imag(buf[histLen+i])
		}
	}
	c.pool.Put(ws)
	return dst
}

// imagAt returns hist[i] treating indexes below start as zero — block
// B's history window when block B is absent or at the zero-state edge.
func imagAt(hist []float64, start, i int) float64 {
	if i < start || i >= len(hist) {
		return 0
	}
	return hist[i]
}
