// Package dsp provides the digital-signal-processing primitives that the
// SONIC modem and FM substrates are built on: an in-place radix-2 FFT,
// windowed-sinc FIR filter design and application, window functions,
// cross-correlation, a polyphase-free linear resampler, and the Goertzel
// single-bin DFT used by the FSK demodulator.
//
// Everything operates on []float64 (real signals) or []complex128
// (baseband/frequency-domain signals). The package has no dependencies
// outside the standard library and allocates only where documented.
package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrNotPowerOfTwo is returned by FFT/IFFT when the input length is not a
// power of two.
var ErrNotPowerOfTwo = errors.New("dsp: length is not a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place decimation-in-time radix-2 fast Fourier
// transform of x. len(x) must be a power of two. The transform is
// unnormalized: IFFT(FFT(x)) == x. Twiddle factors and the bit-reversal
// permutation come from a cached per-size FFTPlan, so repeated
// transforms of the same size (the modem's steady state) do no trig and
// no allocation; the output is bit-identical to the direct form.
func FFT(x []complex128) error {
	p, err := PlanFFT(len(x))
	if err != nil {
		return err
	}
	p.Forward(x)
	return nil
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization. len(x) must be a power of two.
func IFFT(x []complex128) error {
	p, err := PlanFFT(len(x))
	if err != nil {
		return err
	}
	p.Inverse(x)
	return nil
}

// fftDirect is the plan-free transform. It is retained as the reference
// implementation that FFTPlan is pinned against in tests.
func fftDirect(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// NextPowerOfTwo returns the smallest power of two >= n (n must be > 0).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Hann returns an n-point Hann window.
func Hann(n int) []float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Blackman returns an n-point Blackman window.
func Blackman(n int) []float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		t := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
	}
	return w
}

// Sinc computes the normalized sinc function sin(pi x)/(pi x).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// LowpassFIR designs a linear-phase low-pass FIR filter with the given
// cutoff frequency (Hz), sample rate (Hz) and number of taps (odd
// recommended), using the windowed-sinc method with a Hamming window.
// The taps are normalized to unity DC gain.
func LowpassFIR(cutoffHz, sampleRate float64, taps int) []float64 {
	if taps < 1 {
		taps = 1
	}
	h := make([]float64, taps)
	w := Hamming(taps)
	fc := cutoffHz / sampleRate // normalized cutoff (cycles/sample)
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		h[i] = 2 * fc * Sinc(2*fc*(float64(i)-mid)) * w[i]
		sum += h[i]
	}
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return h
}

// HighpassFIR designs a high-pass FIR filter by spectral inversion of the
// corresponding low-pass design. taps must be odd for the inversion to
// preserve linear phase; even values are bumped to the next odd count.
func HighpassFIR(cutoffHz, sampleRate float64, taps int) []float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	if taps%2 == 0 {
		taps++
	}
	h := LowpassFIR(cutoffHz, sampleRate, taps)
	for i := range h {
		h[i] = -h[i]
	}
	h[(taps-1)/2] += 1
	return h
}

// BandpassFIR designs a band-pass FIR filter passing [lowHz, highHz].
func BandpassFIR(lowHz, highHz, sampleRate float64, taps int) []float64 {
	if taps%2 == 0 {
		taps++
	}
	lp := LowpassFIR(highHz, sampleRate, taps)
	lpLow := LowpassFIR(lowHz, sampleRate, taps)
	h := make([]float64, taps)
	for i := range h {
		h[i] = lp[i] - lpLow[i]
	}
	return h
}

// FIRFilter is a streaming finite-impulse-response filter. The zero value
// is not usable; construct with NewFIRFilter.
type FIRFilter struct {
	taps  []float64
	delay []float64
	pos   int
}

// NewFIRFilter returns a streaming FIR filter with the given taps.
func NewFIRFilter(taps []float64) *FIRFilter {
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIRFilter{taps: t, delay: make([]float64, len(taps))}
}

// Process filters one sample and returns the filtered output.
func (f *FIRFilter) Process(x float64) float64 {
	f.delay[f.pos] = x
	var acc float64
	idx := f.pos
	for _, t := range f.taps {
		acc += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return acc
}

// ProcessBlock filters a block of samples, returning a new slice.
func (f *FIRFilter) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// Reset clears the filter's delay line.
func (f *FIRFilter) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1).
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// CrossCorrelate computes the sliding dot product of needle against
// haystack. Index i of the result is the correlation of needle with
// haystack[i : i+len(needle)]. Result length is
// len(haystack)-len(needle)+1; returns nil if needle is longer than
// haystack or either is empty.
func CrossCorrelate(haystack, needle []float64) []float64 {
	n := len(haystack) - len(needle) + 1
	if n <= 0 || len(needle) == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j, nv := range needle {
			acc += nv * haystack[i+j]
		}
		out[i] = acc
	}
	return out
}

// NormalizedCrossCorrelate is CrossCorrelate divided by the product of the
// window and needle energies, yielding values in [-1, 1]. Windows with
// near-zero energy produce 0.
func NormalizedCrossCorrelate(haystack, needle []float64) []float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	n := len(haystack) - len(needle) + 1
	if n <= 0 || len(needle) == 0 {
		return nil
	}
	var ne float64
	for _, v := range needle {
		ne += v * v
	}
	ne = math.Sqrt(ne)
	out := make([]float64, n)
	// Running window energy.
	var we float64
	for j := 0; j < len(needle); j++ {
		we += haystack[j] * haystack[j]
	}
	for i := 0; i < n; i++ {
		var acc float64
		for j, nv := range needle {
			acc += nv * haystack[i+j]
		}
		denom := ne * math.Sqrt(we)
		if denom > 1e-12 {
			out[i] = acc / denom
		}
		if i+1 < n {
			old := haystack[i]
			next := haystack[i+len(needle)]
			we += next*next - old*old
			if we < 0 {
				we = 0
			}
		}
	}
	return out
}

// ArgMax returns the index of the maximum value of x, or -1 for empty x.
func ArgMax(x []float64) int { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	if len(x) == 0 {
		return -1
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, idx = v, i+1
		}
	}
	return idx
}

// Resample converts x from srcRate to dstRate using linear interpolation.
// It is adequate for the band-limited audio signals SONIC moves between
// the 48 kHz modem rate and FM composite rates.
func Resample(x []float64, srcRate, dstRate float64) []float64 {
	return ResampleInto(nil, x, srcRate, dstRate)
}

// ResampleLen returns the output length Resample produces for an input
// of n samples, or 0 for invalid arguments.
func ResampleLen(n int, srcRate, dstRate float64) int {
	if n == 0 || srcRate <= 0 || dstRate <= 0 {
		return 0
	}
	if srcRate == dstRate {
		return n
	}
	out := int(float64(n) / (srcRate / dstRate))
	if out < 1 {
		out = 1
	}
	return out
}

// ResampleInto is Resample writing into dst (reallocated when its
// capacity is too small); the possibly reallocated slice is returned.
// dst must not alias x.
//
// The interpolation coefficients (source index and fractional weight per
// output sample) depend only on (srcRate, dstRate, i), so they are
// precomputed once per rate pair and cached: the FM chain resamples
// 48 kHz audio to the 192 kHz composite (and back) on every broadcast,
// and recomputing the division-derived positions per sample dominated
// build_composite. The cached path is bit-identical to the direct one —
// the table stores the exact frac values the original expression
// produces, and the apply loop evaluates the same lerp expression.
func ResampleInto(dst, x []float64, srcRate, dstRate float64) []float64 {
	n := ResampleLen(len(x), srcRate, dstRate)
	if n == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if srcRate == dstRate {
		copy(dst, x)
		return dst
	}
	ratio := srcRate / dstRate

	m := 0 // prefix of dst served from the cached table
	if tab := resampleCoefs(srcRate, dstRate, ratio, n); tab != nil {
		m = len(tab.idx)
		if m > n {
			m = n
		}
		// Source indices are nondecreasing, so the clamp region (reads past
		// the end of x collapse onto its last sample) is a suffix; find its
		// start instead of testing every sample.
		clamp := sort.Search(m, func(i int) bool { return tab.idx[i] >= len(x)-1 })
		idx, frac := tab.idx[:clamp], tab.frac[:clamp]
		for i, i0 := range idx {
			f := frac[i]
			dst[i] = x[i0]*(1-f) + x[i0+1]*f
		}
		last := x[len(x)-1]
		for i := clamp; i < m; i++ {
			dst[i] = last
		}
	}
	// Tail past the cached table (or the whole signal when the rate pair
	// is not cacheable): the original per-sample computation.
	for i := m; i < n; i++ {
		pos := float64(i) * ratio
		i0 := int(pos)
		if i0 >= len(x)-1 {
			dst[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(i0)
		dst[i] = x[i0]*(1-frac) + x[i0+1]*frac
	}
	return dst
}

// maxResampleCoefs bounds one rate pair's coefficient table (16 B per
// output sample — 1M entries is 16 MiB, over five seconds of composite),
// and maxResampleKeys bounds how many rate pairs may hold tables at once;
// SONIC only ever uses audio→composite and composite→audio, so the cap
// exists for callers that sweep arbitrary rates (experiments, tests).
const (
	maxResampleCoefs = 1 << 20
	maxResampleKeys  = 16
)

// resampleTab holds the per-output-sample interpolation coefficients for
// one rate pair: dst[i] = x[idx[i]]*(1-frac[i]) + x[idx[i]+1]*frac[i].
// Tables are immutable once published; growth swaps in a new table.
type resampleTab struct {
	idx  []int
	frac []float64
}

type resampleKey struct{ srcRate, dstRate float64 }

type resampleEntry struct {
	mu   sync.Mutex
	tab  atomic.Pointer[resampleTab]
	used atomic.Bool // referenced since the last eviction sweep
}

var (
	resampleCache    sync.Map // resampleKey -> *resampleEntry
	resampleCacheLen atomic.Int64
	resampleEvictMu  sync.Mutex
)

// evictResampleEntry drops one rate pair to make room, second-chance
// style: one sweep over the map clears used flags on entries referenced
// since the last sweep and evicts the first entry found cold (or an
// arbitrary one when everything is hot). Eviction only forgets the map
// key — published tables are immutable, so a goroutine still holding one
// keeps a valid table.
func evictResampleEntry() {
	resampleEvictMu.Lock()
	defer resampleEvictMu.Unlock()
	if resampleCacheLen.Load() < maxResampleKeys {
		return // another caller evicted while we waited
	}
	var victim any
	resampleCache.Range(func(key, value any) bool {
		if !value.(*resampleEntry).used.Swap(false) {
			victim = key
			return false
		}
		if victim == nil {
			victim = key
		}
		return true
	})
	if victim != nil {
		resampleCache.Delete(victim)
		resampleCacheLen.Add(-1)
	}
}

// resampleCoefs returns a coefficient table for the rate pair covering
// at least min(n, maxResampleCoefs) output samples. A novel pair past
// the key cap evicts a cold entry rather than bypassing the cache, so a
// sweep of arbitrary rates cannot permanently disable caching for the
// pairs that follow.
func resampleCoefs(srcRate, dstRate, ratio float64, n int) *resampleTab {
	k := resampleKey{srcRate, dstRate}
	v, ok := resampleCache.Load(k)
	if !ok {
		if resampleCacheLen.Load() >= maxResampleKeys {
			evictResampleEntry()
		}
		var loaded bool
		v, loaded = resampleCache.LoadOrStore(k, &resampleEntry{})
		if !loaded {
			resampleCacheLen.Add(1)
		}
	}
	e := v.(*resampleEntry)
	e.used.Store(true)
	want := n
	if want > maxResampleCoefs {
		want = maxResampleCoefs
	}
	if tab := e.tab.Load(); tab != nil && len(tab.idx) >= want {
		return tab
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	tab := e.tab.Load()
	if tab != nil && len(tab.idx) >= want {
		return tab
	}
	// Grow in doubling steps so alternating signal lengths don't rebuild
	// the table every call.
	size := 1024
	if tab != nil {
		size = len(tab.idx)
	}
	for size < want {
		size *= 2
	}
	if size > maxResampleCoefs {
		size = maxResampleCoefs
	}
	next := &resampleTab{idx: make([]int, size), frac: make([]float64, size)}
	start := 0
	if tab != nil {
		start = copy(next.idx, tab.idx)
		copy(next.frac, tab.frac)
	}
	for i := start; i < size; i++ {
		// Exactly the direct path's expressions: the stored frac is the
		// value `pos - float64(i0)` produces, bit for bit.
		pos := float64(i) * ratio
		i0 := int(pos)
		next.idx[i] = i0
		next.frac[i] = pos - float64(i0)
	}
	e.tab.Store(next)
	return next
}

// Goertzel computes the magnitude of the DFT bin closest to targetHz for
// the block x sampled at sampleRate. It is the standard single-bin
// detector used by the FSK demodulator.
func Goertzel(x []float64, targetHz, sampleRate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := math.Round(float64(n) * targetHz / sampleRate)
	w := 2 * math.Pi * k / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	if len(x) == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(x)))
}

// Peak returns the maximum absolute sample value of x.
func Peak(x []float64) float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	var p float64
	for _, v := range x {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}

// Scale multiplies every sample of x in place by g and returns x.
func Scale(x []float64, g float64) []float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	for i := range x {
		x[i] *= g
	}
	return x
}

// Normalize scales x in place so its peak magnitude equals target
// (commonly 1.0 or a headroom value like 0.8). Silent input is returned
// unchanged.
func Normalize(x []float64, target float64) []float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	p := Peak(x)
	if p <= 0 {
		return x
	}
	return Scale(x, target/p)
}

// MixInto adds src into dst starting at offset, clamping to dst's length.
// It returns the number of samples mixed.
func MixInto(dst, src []float64, offset int) int { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	if offset < 0 || offset >= len(dst) {
		return 0
	}
	n := len(src)
	if offset+n > len(dst) {
		n = len(dst) - offset
	}
	for i := 0; i < n; i++ {
		dst[offset+i] += src[i]
	}
	return n
}

// LinearToDB converts a linear amplitude ratio to decibels. Zero or
// negative input maps to -inf dB represented as -300.
func LinearToDB(a float64) float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	if a <= 0 {
		return -300
	}
	return 20 * math.Log10(a)
}

// DBToLinear converts decibels to a linear amplitude ratio.
func DBToLinear(db float64) float64 { //sonic:ignore equivpin scalar reference; no optimized variant to pin
	return math.Pow(10, db/20)
}
