package dsp

import (
	"math"
	"strings"
	"testing"
)

func TestSpectrogramToneLocalization(t *testing.T) {
	const sr = 48000.0
	n := 48000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 9200 * float64(i) / sr)
	}
	spec, err := Spectrogram(x, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) < 10 {
		t.Fatalf("only %d frames", len(spec))
	}
	inBand := BandEnergy(spec, 1024, sr, 9000, 9400)
	total := BandEnergy(spec, 1024, sr, 0, sr/2)
	if inBand/total < 0.95 {
		t.Errorf("tone energy share = %.3f, want ~1", inBand/total)
	}
}

func TestSpectrogramValidation(t *testing.T) {
	if _, err := Spectrogram(make([]float64, 4096), 1000, 512); err == nil {
		t.Error("non-power-of-two fft should fail")
	}
	if _, err := Spectrogram(make([]float64, 100), 1024, 512); err == nil {
		t.Error("short signal should fail")
	}
	if _, err := Spectrogram(make([]float64, 4096), 1024, 0); err == nil {
		t.Error("zero hop should fail")
	}
}

func TestSpectrogramASCII(t *testing.T) {
	const sr = 48000.0
	n := 24000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 12000 * float64(i) / sr)
	}
	spec, err := Spectrogram(x, 512, 256)
	if err != nil {
		t.Fatal(err)
	}
	art := SpectrogramASCII(spec, 8, 40)
	if len(art) != 8 || len(art[0]) != 40 {
		t.Fatalf("dims %dx%d", len(art), len(art[0]))
	}
	// The 12 kHz tone is at half of Nyquist: the middle rows should be
	// darker (denser glyphs) than the top and bottom rows.
	dense := func(s string) int {
		n := 0
		for _, c := range s {
			if c != ' ' && c != '.' {
				n++
			}
		}
		return n
	}
	mid := dense(art[3]) + dense(art[4])
	edge := dense(art[0]) + dense(art[7])
	if mid <= edge {
		t.Errorf("tone row not visible: mid=%d edge=%d\n%s", mid, edge, strings.Join(art, "\n"))
	}
	if SpectrogramASCII(nil, 8, 40) != nil {
		t.Error("empty spec should render nil")
	}
}
