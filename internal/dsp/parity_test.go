package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// Parity pins for the scalar reference kernels that the optimized paths
// are measured against: the FFT overlap-add convolver versus the direct
// O(n·m) Convolve, and the Goertzel single-bin detector versus the full
// FFT. These keep the reference implementations honest — if either side
// drifts, the comparison breaks.

func TestFFTConvolverMatchesConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, nt := range []int{1, 7, 33, 64} {
		for _, nx := range []int{1, 50, 500} {
			taps := make([]float64, nt)
			for i := range taps {
				taps[i] = rng.NormFloat64()
			}
			x := make([]float64, nx)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			// Zero-state FIR filtering is the first len(x) samples of the
			// full linear convolution.
			want := Convolve(taps, x)[:nx]
			got := NewFFTConvolver(taps).Apply(nil, x)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("nt=%d nx=%d: sample %d = %g, Convolve reference %g", nt, nx, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const n = 256
	const sampleRate = float64(n) // 1 Hz per bin
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*10*float64(i)/sampleRate) + 0.1*rng.NormFloat64()
	}
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		t.Fatal(err)
	}
	for _, bin := range []float64{3, 10, 100} {
		want := cmplxAbs(buf[int(bin)])
		got := Goertzel(x, bin, sampleRate)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("bin %g: Goertzel = %g, FFT magnitude = %g", bin, got, want)
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
