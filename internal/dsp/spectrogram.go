package dsp

import (
	"errors"
	"math"
)

// Spectrogram computes a magnitude spectrogram of x: Hann-windowed FFT
// frames of fftSize samples every hop samples. Row [t][k] is the linear
// magnitude of bin k (0..fftSize/2) in frame t. It is the debugging lens
// for the modem's occupied band (the paper's Figure 2 view of the FM
// baseband) and drives the SpectrogramASCII rendering in sonic-modem.
func Spectrogram(x []float64, fftSize, hop int) ([][]float64, error) { //sonic:ignore equivpin diagnostic path, not in the broadcast chain
	if !IsPowerOfTwo(fftSize) {
		return nil, ErrNotPowerOfTwo
	}
	if hop < 1 || len(x) < fftSize {
		return nil, errors.New("dsp: signal shorter than one frame")
	}
	win := Hann(fftSize)
	nFrames := (len(x)-fftSize)/hop + 1
	out := make([][]float64, nFrames)
	buf := make([]complex128, fftSize)
	for t := 0; t < nFrames; t++ {
		off := t * hop
		for i := 0; i < fftSize; i++ {
			buf[i] = complex(x[off+i]*win[i], 0)
		}
		if err := FFT(buf); err != nil {
			return nil, err
		}
		row := make([]float64, fftSize/2+1)
		for k := range row {
			row[k] = math.Hypot(real(buf[k]), imag(buf[k]))
		}
		out[t] = row
	}
	return out, nil
}

// BandEnergy sums spectrogram energy between loHz and hiHz across all
// frames, given the sample rate the signal was captured at.
func BandEnergy(spec [][]float64, fftSize int, sampleRate float64, loHz, hiHz float64) float64 { //sonic:ignore equivpin diagnostic path, not in the broadcast chain
	if len(spec) == 0 {
		return 0
	}
	binHz := sampleRate / float64(fftSize)
	var acc float64
	for _, row := range spec {
		for k, v := range row {
			hz := float64(k) * binHz
			if hz >= loHz && hz <= hiHz {
				acc += v * v
			}
		}
	}
	return acc
}

// SpectrogramASCII renders the spectrogram as rows x cols characters
// (time on x, frequency on y, low frequencies at the bottom), using a
// density ramp. Useful for eyeballing a burst in a terminal.
func SpectrogramASCII(spec [][]float64, rows, cols int) []string { //sonic:ignore equivpin diagnostic path, not in the broadcast chain
	if len(spec) == 0 || rows < 1 || cols < 1 {
		return nil
	}
	ramp := []byte(" .:-=+*#%@")
	nBins := len(spec[0])
	// Find the max for normalization.
	var peak float64
	for _, row := range spec {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	if peak <= 0 {
		peak = 1
	}
	out := make([]string, rows)
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		// Row 0 is the highest frequency band.
		b0 := (rows - 1 - r) * nBins / rows
		b1 := (rows - r) * nBins / rows
		for c := 0; c < cols; c++ {
			t0 := c * len(spec) / cols
			t1 := (c + 1) * len(spec) / cols
			if t1 <= t0 {
				t1 = t0 + 1
			}
			var acc float64
			n := 0
			for t := t0; t < t1 && t < len(spec); t++ {
				for b := b0; b < b1 && b < nBins; b++ {
					acc += spec[t][b]
					n++
				}
			}
			if n > 0 {
				acc /= float64(n)
			}
			// Log compression.
			db := LinearToDB(acc / peak)
			idx := int((db + 60) / 60 * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			line[c] = ramp[idx]
		}
		out[r] = string(line)
	}
	return out
}
