package dsp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// maxAbsDiff returns the largest per-sample difference between a and b.
func maxAbsDiff(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTConvolverMatchesFIRFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, taps := range [][]float64{
		LowpassFIR(15000, 192000, 127),
		BandpassFIR(54000, 60000, 192000, 255),
		LowpassFIR(16000, 48000, 63),
		{0.5},      // single tap
		{1, -1, 2}, // tiny
	} {
		conv := NewFFTConvolver(taps)
		if conv == nil {
			t.Fatal("nil convolver for non-empty taps")
		}
		if conv.TapCount() != len(taps) {
			t.Fatalf("TapCount = %d, want %d", conv.TapCount(), len(taps))
		}
		// Lengths around the FFT block boundaries plus assorted odd sizes.
		valid := conv.n - len(taps) + 1
		for _, n := range []int{1, len(taps) - 1, len(taps), valid - 1, valid, valid + 1, 3*valid + 17, 10000} {
			if n < 1 {
				continue
			}
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := NewFIRFilter(taps).ProcessBlock(x)
			got := conv.Apply(nil, x)
			if d := maxAbsDiff(t, got, want); d > 1e-9 {
				t.Errorf("taps=%d n=%d: max diff %g vs direct FIR", len(taps), n, d)
			}
		}
	}
}

func TestFFTConvolverInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	taps := LowpassFIR(15000, 192000, 127)
	conv := NewFFTConvolver(taps)
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := conv.Apply(nil, x)
	got := conv.Apply(x, x) // in place
	if d := maxAbsDiff(t, got, want); d != 0 {
		t.Errorf("in-place result differs from out-of-place by %g", d)
	}
	if &got[0] != &x[0] {
		t.Error("in-place Apply reallocated")
	}
}

func TestFFTConvolverReusesDst(t *testing.T) {
	taps := LowpassFIR(15000, 192000, 127)
	conv := NewFFTConvolver(taps)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = float64(i % 17)
	}
	dst := make([]float64, 8000)
	got := conv.Apply(dst, x)
	if &got[0] != &dst[0] {
		t.Error("Apply reallocated although dst capacity sufficed")
	}
	if len(got) != len(x) {
		t.Errorf("len = %d, want %d", len(got), len(x))
	}
}

func TestFFTConvolverEdgeCases(t *testing.T) {
	if NewFFTConvolver(nil) != nil {
		t.Error("empty taps should yield nil convolver")
	}
	conv := NewFFTConvolver([]float64{1, 2})
	if out := conv.Apply(nil, nil); len(out) != 0 {
		t.Errorf("empty input: len %d", len(out))
	}
}

func TestFFTConvolverConcurrent(t *testing.T) {
	taps := LowpassFIR(15000, 192000, 127)
	conv := NewFFTConvolver(taps)
	x := make([]float64, 30000)
	for i := range x {
		x[i] = math.Sin(float64(i) / 9)
	}
	want := conv.Apply(nil, x)
	var wg sync.WaitGroup
	errs := make(chan int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				got := conv.Apply(nil, x)
				for i := range got {
					if got[i] != want[i] {
						errs <- i
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if i, bad := <-errs; bad {
		t.Fatalf("concurrent Apply diverged at sample %d", i)
	}
}

func TestResampleIntoMatchesResample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 4800)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, rates := range [][2]float64{{48000, 192000}, {192000, 48000}, {48000, 48000}, {44100, 48000}} {
		want := Resample(x, rates[0], rates[1])
		if n := ResampleLen(len(x), rates[0], rates[1]); n != len(want) {
			t.Errorf("ResampleLen(%v) = %d, want %d", rates, n, len(want))
		}
		dst := make([]float64, 0, len(want))
		got := ResampleInto(dst, x, rates[0], rates[1])
		if d := maxAbsDiff(t, got, want); d != 0 {
			t.Errorf("rates %v: ResampleInto differs by %g", rates, d)
		}
	}
	if out := ResampleInto(nil, nil, 1, 1); out != nil {
		t.Error("empty input should return nil")
	}
}

func BenchmarkFFTConvolver127Taps192k(b *testing.B) {
	taps := LowpassFIR(15000, 192000, 127)
	conv := NewFFTConvolver(taps)
	x := make([]float64, 192000)
	for i := range x {
		x[i] = math.Sin(float64(i) / 7)
	}
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Apply(dst, x)
	}
}

func BenchmarkFIRFilter127Taps192k(b *testing.B) {
	taps := LowpassFIR(15000, 192000, 127)
	x := make([]float64, 192000)
	for i := range x {
		x[i] = math.Sin(float64(i) / 7)
	}
	f := NewFIRFilter(taps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reset()
		f.ProcessBlock(x)
	}
}
