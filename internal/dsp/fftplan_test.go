package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// The plan-based FFT must be BIT-identical to the direct transform — the
// modem's equalization, channel estimates, and therefore every decoded
// payload byte depend on it. Identical here means ==, not within
// epsilon.

func TestFFTPlanBitIdenticalToDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 64, 1024, 8192} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := append([]complex128(nil), x...)
		if err := fftDirect(want, false); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: planned FFT diverges from direct at bin %d: %v != %v", n, i, got[i], want[i])
			}
		}

		// Inverse direction, including normalization.
		wantInv := append([]complex128(nil), x...)
		if err := fftDirect(wantInv, true); err != nil {
			t.Fatal(err)
		}
		for i := range wantInv {
			wantInv[i] /= complex(float64(n), 0)
		}
		gotInv := append([]complex128(nil), x...)
		if err := IFFT(gotInv); err != nil {
			t.Fatal(err)
		}
		for i := range gotInv {
			if gotInv[i] != wantInv[i] {
				t.Fatalf("n=%d: planned IFFT diverges from direct at bin %d", n, i)
			}
		}
	}
}

func TestFFTPlanRejectsBadSize(t *testing.T) {
	if _, err := PlanFFT(12); err == nil {
		t.Fatal("PlanFFT(12) succeeded, want error")
	}
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("FFT of length 3 succeeded, want error")
	}
}

func TestFFTPlanZeroAlloc(t *testing.T) {
	p, err := PlanFFT(1024)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	if n := testing.AllocsPerRun(10, func() {
		p.Forward(x)
		p.Inverse(x)
	}); n != 0 {
		t.Errorf("planned FFT round trip: %v allocs/run, want 0", n)
	}
}

func TestFFTCorrelatorMatchesCrossCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	needle := make([]float64, 337) // non-power-of-two needle
	for i := range needle {
		needle[i] = rng.NormFloat64()
	}
	c := NewFFTCorrelator(needle)
	for _, hayLen := range []int{337, 500, 4096, 10000} {
		hay := make([]float64, hayLen)
		for i := range hay {
			hay[i] = rng.NormFloat64()
		}
		want := CrossCorrelate(hay, needle)
		got := c.Correlate(nil, hay)
		if len(got) != len(want) {
			t.Fatalf("hayLen=%d: %d outputs, want %d", hayLen, len(got), len(want))
		}
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("hayLen=%d: output %d differs by %g", hayLen, i, d)
			}
		}
	}
	if c.Correlate(nil, make([]float64, 100)) != nil {
		t.Fatal("Correlate with short haystack should return nil")
	}
	if NewFFTCorrelator(nil) != nil {
		t.Fatal("NewFFTCorrelator(nil) should return nil")
	}
}

func TestFFTCorrelatorReusesDst(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (pool Puts randomly dropped)")
	}
	needle := []float64{1, 2, 3}
	c := NewFFTCorrelator(needle)
	hay := make([]float64, 4096)
	for i := range hay {
		hay[i] = float64(i % 13)
	}
	dst := c.Correlate(nil, hay)
	// Warmed up: same-capacity reuse must not allocate.
	if n := testing.AllocsPerRun(10, func() {
		dst = c.Correlate(dst[:0], hay)
	}); n != 0 {
		t.Errorf("warmed Correlate: %v allocs/run, want 0", n)
	}
}
