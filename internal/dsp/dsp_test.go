package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024, 65536} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, 3, 5, 6, 7, 1000} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true, want false", n)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Fatalf("FFT(len 3) err = %v, want ErrNotPowerOfTwo", err)
	}
	if err := IFFT(make([]complex128, 12)); err != ErrNotPowerOfTwo {
		t.Fatalf("IFFT(len 12) err = %v, want ErrNotPowerOfTwo", err)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k concentrates all energy in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*k*float64(i)/n)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k {
			if !almostEqual(mag, n, 1e-9) {
				t.Errorf("bin %d mag = %g, want %d", i, mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d mag = %g, want 0", i, mag)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 16, 128, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d round trip mismatch at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|^2 == (1/N) sum |X|^2.
	rng := rand.New(rand.NewSource(2))
	const n = 256
	x := make([]complex128, n)
	var te float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		te += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var fe float64
	for _, v := range x {
		fe += real(v)*real(v) + imag(v)*imag(v)
	}
	if !almostEqual(te, fe/n, 1e-6*te) {
		t.Errorf("Parseval violated: time %g vs freq %g", te, fe/n)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// Property: FFT(a*x + y) == a*FFT(x) + FFT(y), checked with testing/quick
	// over random seeds.
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			scale = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		x := make([]complex128, n)
		y := make([]complex128, n)
		comb := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			comb[i] = complex(scale, 0)*x[i] + y[i]
		}
		FFT(x)
		FFT(y)
		FFT(comb)
		for i := range comb {
			want := complex(scale, 0)*x[i] + y[i]
			if cmplx.Abs(comb[i]-want) > 1e-6*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWindows(t *testing.T) {
	for name, fn := range map[string]func(int) []float64{
		"hann": Hann, "hamming": Hamming, "blackman": Blackman,
	} {
		w := fn(64)
		if len(w) != 64 {
			t.Fatalf("%s: len = %d", name, len(w))
		}
		// Symmetric and bounded in [~0, 1].
		for i := range w {
			if w[i] < -1e-12 || w[i] > 1+1e-12 {
				t.Errorf("%s[%d] = %g out of range", name, i, w[i])
			}
			if !almostEqual(w[i], w[len(w)-1-i], 1e-12) {
				t.Errorf("%s not symmetric at %d", name, i)
			}
		}
		if one := fn(1); len(one) != 1 || one[0] != 1 {
			t.Errorf("%s(1) = %v, want [1]", name, one)
		}
	}
	// Hann endpoints are 0, midpoint ~1.
	w := Hann(65)
	if !almostEqual(w[0], 0, 1e-12) || !almostEqual(w[32], 1, 1e-12) {
		t.Errorf("Hann shape wrong: ends %g mid %g", w[0], w[32])
	}
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Errorf("Sinc(0) = %g", Sinc(0))
	}
	for _, k := range []float64{1, 2, 3, -4} {
		if !almostEqual(Sinc(k), 0, 1e-12) {
			t.Errorf("Sinc(%g) = %g, want 0", k, Sinc(k))
		}
	}
}

func TestLowpassFIRResponse(t *testing.T) {
	const sr = 48000.0
	taps := LowpassFIR(4000, sr, 101)
	// DC gain should be 1 (sum of taps).
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("DC gain = %g, want 1", sum)
	}
	// Passband tone (1 kHz) passes, stopband tone (12 kHz) is attenuated.
	gain := func(hz float64) float64 {
		n := 4800
		f := NewFIRFilter(taps)
		var peak float64
		for i := 0; i < n; i++ {
			y := f.Process(math.Sin(2 * math.Pi * hz * float64(i) / sr))
			if i > len(taps) && math.Abs(y) > peak {
				peak = math.Abs(y)
			}
		}
		return peak
	}
	if g := gain(1000); g < 0.95 {
		t.Errorf("passband gain @1kHz = %g, want ~1", g)
	}
	if g := gain(12000); g > 0.05 {
		t.Errorf("stopband gain @12kHz = %g, want ~0", g)
	}
}

func TestHighpassFIRResponse(t *testing.T) {
	const sr = 48000.0
	taps := HighpassFIR(8000, sr, 101)
	run := func(hz float64) float64 {
		f := NewFIRFilter(taps)
		var peak float64
		for i := 0; i < 4800; i++ {
			y := f.Process(math.Sin(2 * math.Pi * hz * float64(i) / sr))
			if i > len(taps) && math.Abs(y) > peak {
				peak = math.Abs(y)
			}
		}
		return peak
	}
	if g := run(1000); g > 0.05 {
		t.Errorf("stopband gain @1kHz = %g, want ~0", g)
	}
	if g := run(16000); g < 0.8 {
		t.Errorf("passband gain @16kHz = %g, want ~1", g)
	}
}

func TestBandpassFIRResponse(t *testing.T) {
	const sr = 48000.0
	taps := BandpassFIR(7000, 11000, sr, 121)
	run := func(hz float64) float64 {
		f := NewFIRFilter(taps)
		var peak float64
		for i := 0; i < 4800; i++ {
			y := f.Process(math.Sin(2 * math.Pi * hz * float64(i) / sr))
			if i > len(taps) && math.Abs(y) > peak {
				peak = math.Abs(y)
			}
		}
		return peak
	}
	if g := run(9200); g < 0.9 {
		t.Errorf("in-band gain @9.2kHz = %g, want ~1", g)
	}
	if g := run(2000); g > 0.05 {
		t.Errorf("below-band gain @2kHz = %g", g)
	}
	if g := run(15000); g > 0.1 {
		t.Errorf("above-band gain @15kHz = %g", g)
	}
}

func TestFIRFilterReset(t *testing.T) {
	f := NewFIRFilter([]float64{1, 1, 1})
	f.Process(1)
	f.Process(1)
	f.Reset()
	if y := f.Process(0); y != 0 {
		t.Errorf("after Reset, Process(0) = %g, want 0", y)
	}
}

func TestFIRFilterImpulseResponse(t *testing.T) {
	taps := []float64{0.25, 0.5, 0.25}
	f := NewFIRFilter(taps)
	in := []float64{1, 0, 0, 0}
	out := f.ProcessBlock(in)
	want := []float64{0.25, 0.5, 0.25, 0}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Errorf("impulse response[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestConvolve(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{1, 1})
	want := []float64{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("Convolve(nil, x) should be nil")
	}
}

func TestCrossCorrelateFindsOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	needle := make([]float64, 64)
	for i := range needle {
		needle[i] = rng.NormFloat64()
	}
	haystack := make([]float64, 512)
	for i := range haystack {
		haystack[i] = 0.1 * rng.NormFloat64()
	}
	const offset = 200
	for i, v := range needle {
		haystack[offset+i] += v
	}
	cc := NormalizedCrossCorrelate(haystack, needle)
	if got := ArgMax(cc); got != offset {
		t.Errorf("peak at %d, want %d", got, offset)
	}
	if cc[offset] < 0.8 {
		t.Errorf("peak correlation %g, want > 0.8", cc[offset])
	}
}

func TestCrossCorrelateEdgeCases(t *testing.T) {
	if CrossCorrelate([]float64{1}, []float64{1, 2}) != nil {
		t.Error("needle longer than haystack should give nil")
	}
	if NormalizedCrossCorrelate(nil, nil) != nil {
		t.Error("empty inputs should give nil")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
}

func TestResampleIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := Resample(x, 48000, 48000)
	if len(y) != len(x) {
		t.Fatalf("len = %d", len(y))
	}
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("identity resample changed sample %d", i)
		}
	}
	// Returned slice must be a copy.
	y[0] = 99
	if x[0] == 99 {
		t.Error("Resample returned aliased slice")
	}
}

func TestResamplePreservesTone(t *testing.T) {
	// A 1 kHz tone resampled 48k -> 32k should still be a 1 kHz tone.
	const src, dst = 48000.0, 32000.0
	n := 4800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1000 * float64(i) / src)
	}
	y := Resample(x, src, dst)
	wantLen := int(float64(n) * dst / src)
	if math.Abs(float64(len(y)-wantLen)) > 2 {
		t.Fatalf("resampled length %d, want ~%d", len(y), wantLen)
	}
	// Goertzel at 1 kHz on resampled signal should dominate 3 kHz.
	g1 := Goertzel(y, 1000, dst)
	g3 := Goertzel(y, 3000, dst)
	if g1 < 10*g3 {
		t.Errorf("tone not preserved: 1kHz=%g 3kHz=%g", g1, g3)
	}
}

func TestResampleDegenerate(t *testing.T) {
	if Resample(nil, 1, 1) != nil {
		t.Error("nil input should give nil")
	}
	if Resample([]float64{1}, 0, 1) != nil {
		t.Error("zero src rate should give nil")
	}
}

func TestGoertzelDetectsTone(t *testing.T) {
	const sr = 8000.0
	n := 800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 440 * float64(i) / sr)
	}
	on := Goertzel(x, 440, sr)
	off := Goertzel(x, 880, sr)
	if on < 50*off {
		t.Errorf("Goertzel on=%g off=%g, want strong separation", on, off)
	}
	if Goertzel(nil, 440, sr) != 0 {
		t.Error("Goertzel(nil) should be 0")
	}
}

func TestRMSAndPeak(t *testing.T) {
	x := []float64{3, -4}
	if got := RMS(x); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %g", got)
	}
	if got := Peak(x); got != 4 {
		t.Errorf("Peak = %g", got)
	}
	if RMS(nil) != 0 || Peak(nil) != 0 {
		t.Error("empty RMS/Peak should be 0")
	}
}

func TestScaleNormalizeMix(t *testing.T) {
	x := []float64{0.5, -0.25}
	Normalize(x, 1.0)
	if !almostEqual(Peak(x), 1, 1e-12) {
		t.Errorf("Normalize peak = %g", Peak(x))
	}
	silent := []float64{0, 0}
	Normalize(silent, 1.0)
	if silent[0] != 0 {
		t.Error("Normalize changed silence")
	}

	dst := make([]float64, 5)
	n := MixInto(dst, []float64{1, 1, 1}, 3)
	if n != 2 {
		t.Errorf("MixInto clamped count = %d, want 2", n)
	}
	if dst[3] != 1 || dst[4] != 1 || dst[2] != 0 {
		t.Errorf("MixInto wrote wrong region: %v", dst)
	}
	if MixInto(dst, []float64{1}, -1) != 0 || MixInto(dst, []float64{1}, 5) != 0 {
		t.Error("out-of-range offset should mix nothing")
	}
}

func TestDBConversions(t *testing.T) {
	if got := LinearToDB(10); !almostEqual(got, 20, 1e-12) {
		t.Errorf("LinearToDB(10) = %g", got)
	}
	if got := DBToLinear(-20); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("DBToLinear(-20) = %g", got)
	}
	if LinearToDB(0) != -300 {
		t.Error("LinearToDB(0) should clamp")
	}
	// Round-trip property.
	f := func(db float64) bool {
		if math.IsNaN(db) || math.Abs(db) > 100 {
			db = math.Mod(db, 100)
			if math.IsNaN(db) {
				db = 0
			}
		}
		return almostEqual(LinearToDB(DBToLinear(db)), db, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFIRFilter101Taps(b *testing.B) {
	f := NewFIRFilter(LowpassFIR(4000, 48000, 101))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(1.0)
	}
}
