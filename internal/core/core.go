// Package core assembles SONIC's end-to-end transmission pipeline — the
// paper's primary contribution (§3). On the send side: a rendered
// webpage image is encoded (SIC, the WebP stand-in), bundled with its
// click map, chunked into 100-byte frames, protected with the rs8 outer
// and v29 inner FEC, and modulated into audio with the 92-subcarrier
// OFDM profile for FM broadcast. The receive side inverts each stage and
// repairs losses with nearest-neighbor interpolation where the
// cell-transport mode is used.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"sonic/internal/fec"
	"sonic/internal/fm"
	"sonic/internal/frame"
	"sonic/internal/imagecodec"
	"sonic/internal/interp"
	"sonic/internal/modem"
	"sonic/internal/telemetry"
)

// Config selects the pieces of the transmission stack.
type Config struct {
	Modem modem.Profile
	// UseRS/InnerCode select the FEC stack (both on = the paper's stack).
	UseRS     bool
	InnerCode *fec.ConvCode // nil = no inner code
	// CellTransport selects the loss-resilient column-cell transport
	// instead of chunking the compressed bitstream.
	CellTransport bool
	// CellTolerance is the per-channel near-run tolerance in cell mode.
	CellTolerance int
	// Quality is the image quality for the SIC bitstream transport.
	Quality int
	// SoftDecision feeds the inner Viterbi decoder per-bit soft metrics
	// from the demodulator instead of hard decisions (~2 dB gain, the
	// way Quiet's decoder operates).
	SoftDecision bool
	// Workers bounds the worker pool used by the data-parallel image
	// codec stages (cell packing, SIC block transforms). 0 means
	// GOMAXPROCS; 1 forces the serial paths. Output is identical for
	// every value — the knob trades cores for wall clock only.
	Workers int
}

// Digest returns a stable fingerprint of every config field that can
// change the bytes the transmit pipeline emits: the modem profile, the
// FEC stack, the transport mode, and the image quality. Workers is
// deliberately excluded — the parallel stages are pinned byte-identical
// at every worker count — and so is SoftDecision, which only affects the
// receive side. The artifact cache (internal/artifact) keys entries on
// this digest so two pipelines share artifacts exactly when they would
// emit identical bytes.
func (c Config) Digest() uint64 {
	h := fnv.New64a()
	m := c.Modem
	constBits := 0
	if m.Constellation != nil {
		constBits = m.Constellation.Bits()
	}
	fmt.Fprintf(h, "modem:%s,%d,%d,%d,%g,%d,%d,%d,%g",
		m.Name, m.SampleRate, m.FFTSize, m.CyclicPrefix, m.CenterHz,
		m.DataCarriers, m.PilotCarriers, constBits, m.Amplitude)
	fmt.Fprintf(h, "|rs:%t", c.UseRS)
	if c.InnerCode != nil {
		fmt.Fprintf(h, "|conv:%d,%g", c.InnerCode.ConstraintLength(), c.InnerCode.Rate())
	}
	fmt.Fprintf(h, "|cells:%t,%d|q:%d", c.CellTransport, c.CellTolerance, c.Quality)
	return h.Sum64()
}

// DefaultConfig is the paper's configuration: Sonic92 OFDM profile,
// rs8+v29 FEC, SIC at quality 10 (§3.2, §3.3).
func DefaultConfig() Config {
	return Config{
		Modem:     modem.Sonic92(),
		UseRS:     true,
		InnerCode: fec.NewV29(),
		Quality:   10,
	}
}

// Pipeline is a configured SONIC encoder/decoder pair.
type Pipeline struct {
	cfg   Config
	modem *modem.OFDM
	codec *frame.Codec

	// Telemetry (nil handles = off; see internal/telemetry).
	tel             *telemetry.Registry
	snrGauge        *telemetry.Gauge   // core_modem_snr_db
	pagesEncoded    *telemetry.Counter // core_pages_encoded_total
	pagesDecoded    *telemetry.Counter // core_pages_decoded_total
	pagesIncomplete *telemetry.Counter // core_pages_incomplete_total
	framesTx        *telemetry.Counter // core_frames_tx_total
	framesRx        *telemetry.Counter // core_frames_rx_total
	framesLost      *telemetry.Counter // core_frames_lost_total
}

// Instrument registers the pipeline's metric families (and its frame
// codec's) on reg and starts recording per-stage spans: encode and
// decode paths get a span tree whose self-times show where inside
// chunk→FEC→modulate / demodulate→FEC→reassemble the wall clock goes.
func (p *Pipeline) Instrument(reg *telemetry.Registry) {
	p.tel = reg
	p.snrGauge = reg.Gauge("core_modem_snr_db")
	p.pagesEncoded = reg.Counter("core_pages_encoded_total")
	p.pagesDecoded = reg.Counter("core_pages_decoded_total")
	p.pagesIncomplete = reg.Counter("core_pages_incomplete_total")
	p.framesTx = reg.Counter("core_frames_tx_total")
	p.framesRx = reg.Counter("core_frames_rx_total")
	p.framesLost = reg.Counter("core_frames_lost_total")
	p.codec.Instrument(reg)
}

// NewPipeline validates the config and builds the pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	m, err := modem.NewOFDM(cfg.Modem)
	if err != nil {
		return nil, err
	}
	var rs *fec.RS
	if cfg.UseRS {
		rs = fec.NewRS8()
	}
	if cfg.Quality < imagecodec.MinQuality || cfg.Quality > imagecodec.MaxQuality {
		return nil, fmt.Errorf("core: quality %d out of range", cfg.Quality)
	}
	return &Pipeline{
		cfg:   cfg,
		modem: m,
		codec: frame.NewCodecWith(rs, cfg.InnerCode),
	}, nil
}

// Codec exposes the frame codec (for experiments).
func (p *Pipeline) Codec() *frame.Codec { return p.codec }

// Modem exposes the modem (for experiments).
func (p *Pipeline) Modem() *modem.OFDM { return p.modem }

// NetGoodputBps returns the post-FEC, post-framing payload rate the
// profile sustains — the paper's headline "10 kbps" figure for the
// default configuration.
func (p *Pipeline) NetGoodputBps() float64 {
	raw := p.cfg.Modem.RawBitRate() // modem payload bits per second
	payloadPerFrame := float64(frame.PayloadSize)
	onAirPerFrame := float64(p.codec.CodedFrameSize())
	return raw * payloadPerFrame / onAirPerFrame
}

// TransportRateBps returns the FEC-coded transport rate — the paper's
// headline "10 kbps" number: the modem rate times the code rates of the
// inner (1/2) and outer (223/255) FEC, before the 100-byte framing
// overhead that NetGoodputBps additionally charges.
func (p *Pipeline) TransportRateBps() float64 {
	r := p.cfg.Modem.RawBitRate()
	if p.cfg.InnerCode != nil {
		r *= p.cfg.InnerCode.Rate()
	}
	if p.cfg.UseRS {
		r *= 223.0 / 255.0
	}
	return r
}

// AirtimeSeconds returns the on-air time to broadcast n payload bytes
// (framing and FEC included, modem preamble amortized per burst).
func (p *Pipeline) AirtimeSeconds(n int) float64 {
	frames := (n + frame.PayloadSize - 1) / frame.PayloadSize
	coded := frames * p.codec.CodedFrameSize()
	return p.modem.BurstDuration(coded)
}

// --- page bundles ----------------------------------------------------------

// Bundle is the broadcast unit for one page: the encoded image and the
// serialized click map.
type Bundle struct {
	Image    []byte
	ClickMap []byte
}

// MarshalBundle frames the two parts with a length header.
func MarshalBundle(b Bundle) []byte {
	out := make([]byte, 8, 8+len(b.Image)+len(b.ClickMap))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(b.Image)))
	binary.BigEndian.PutUint32(out[4:8], uint32(len(b.ClickMap)))
	out = append(out, b.Image...)
	out = append(out, b.ClickMap...)
	return out
}

// ErrBadBundle is returned for malformed bundle blobs.
var ErrBadBundle = errors.New("core: malformed page bundle")

// UnmarshalBundle parses a blob produced by MarshalBundle.
func UnmarshalBundle(blob []byte) (Bundle, error) {
	if len(blob) < 8 {
		return Bundle{}, ErrBadBundle
	}
	il := int(binary.BigEndian.Uint32(blob[0:4]))
	cl := int(binary.BigEndian.Uint32(blob[4:8]))
	if il < 0 || cl < 0 || 8+il+cl > len(blob) {
		return Bundle{}, ErrBadBundle
	}
	return Bundle{
		Image:    append([]byte(nil), blob[8:8+il]...),
		ClickMap: append([]byte(nil), blob[8+il:8+il+cl]...),
	}, nil
}

// --- transmit / receive ------------------------------------------------------

// ConfigDigest returns the pipeline config's transmit fingerprint (see
// Config.Digest) — the artifact-cache key component that ties cached
// streams and audio to the exact bytes this pipeline would emit.
func (p *Pipeline) ConfigDigest() uint64 { return p.cfg.Digest() }

// EncodePageAudio turns a page bundle into the broadcast audio burst.
func (p *Pipeline) EncodePageAudio(pageID uint16, b Bundle) ([]float64, error) {
	sp := p.tel.StartSpan("core.encode_page")
	defer sp.End()
	stream, err := p.encodeStream(sp, pageID, MarshalBundle(b))
	if err != nil {
		return nil, err
	}
	return p.modulateStream(sp, stream), nil
}

// EncodePageStream runs the transmit chain up to (not including) the
// modem: the marshaled bundle is chunked into frames and FEC-framed into
// the coded byte stream the modem would broadcast. It is the middle
// stage of the artifact chain — callers that fan one page out to many
// transmitters cache this stream once and modulate (or hand it to
// hardware) per carrier.
func (p *Pipeline) EncodePageStream(pageID uint16, b Bundle) ([]byte, error) {
	sp := p.tel.StartSpan("core.encode_page_stream")
	defer sp.End()
	return p.encodeStream(sp, pageID, MarshalBundle(b))
}

// BlobStream is EncodePageStream over an already-marshaled bundle blob —
// the allocation the artifact chain's blob stage has already paid.
func (p *Pipeline) BlobStream(pageID uint16, blob []byte) ([]byte, error) {
	sp := p.tel.StartSpan("core.encode_page_stream")
	defer sp.End()
	return p.encodeStream(sp, pageID, blob)
}

// ModulateStream turns a FEC-framed stream (EncodePageStream) into the
// broadcast audio burst — the final artifact stage. The result is
// byte-identical to EncodePageAudio of the same bundle.
func (p *Pipeline) ModulateStream(stream []byte) []float64 {
	sp := p.tel.StartSpan("core.modulate_stream")
	defer sp.End()
	return p.modulateStream(sp, stream)
}

// encodeStream chunks a marshaled blob and FEC-frames it, with chunk and
// fec_encode child spans under parent (nil-safe).
func (p *Pipeline) encodeStream(parent *telemetry.Span, pageID uint16, blob []byte) ([]byte, error) {
	chunkSp := parent.StartChild("chunk")
	frames := frame.Chunk(pageID, blob)
	chunkSp.End()

	fecSp := parent.StartChild("fec_encode")
	stream, err := p.codec.EncodeStream(frames)
	fecSp.End()
	if err != nil {
		return nil, err
	}
	p.framesTx.Add(int64(len(frames)))
	return stream, nil
}

// modulateStream is the modem stage with its span scoped under parent.
func (p *Pipeline) modulateStream(parent *telemetry.Span, stream []byte) []float64 {
	modSp := parent.StartChild("modulate")
	audio := p.modem.Modulate(stream)
	modSp.End()
	p.pagesEncoded.Inc()
	return audio
}

// ReceiveResult summarizes one received page transmission.
type ReceiveResult struct {
	PageID        uint16
	Bundle        Bundle
	FramesTotal   int
	FramesLost    int
	Complete      bool
	ModemSNRdB    float64
	FrameLossRate float64
}

// DecodePageAudio demodulates a burst and reassembles the page bundle.
// A partially received page returns Complete=false with loss accounting
// (and no Bundle) — in bitstream transport any loss is fatal to the
// image, which is exactly the trade-off the cell transport removes.
func (p *Pipeline) DecodePageAudio(audio []float64) (*ReceiveResult, error) {
	sp := p.tel.StartSpan("core.decode_page")
	defer sp.End()

	frames, lost, snr, err := p.receiveFrames(sp, audio)
	if err != nil {
		return nil, err
	}
	res := &ReceiveResult{ModemSNRdB: snr, FramesLost: lost}
	if len(frames) == 0 {
		res.FramesTotal = lost
		res.FrameLossRate = 1
		p.pagesIncomplete.Inc()
		return res, nil
	}
	asmSp := sp.StartChild("reassemble")
	res.PageID = frames[0].PageID
	r := frame.NewReassembler(res.PageID)
	for _, f := range frames {
		r.Add(f)
	}
	res.FramesTotal = r.Total()
	if r.Total() > 0 {
		res.FramesLost = r.Total() - r.Received()
		res.FrameLossRate = r.LossRate()
	}
	blob, ok := r.Bytes()
	asmSp.End()
	if ok {
		b, err := UnmarshalBundle(blob)
		if err != nil {
			p.pagesIncomplete.Inc()
			return res, err
		}
		res.Bundle = b
		res.Complete = true
		p.pagesDecoded.Inc()
	} else {
		p.pagesIncomplete.Inc()
	}
	return res, nil
}

// receiveFrames demodulates a burst and decodes its frames through the
// configured hard or soft path. parent (nil-safe) scopes the per-stage
// spans under the caller's trace.
func (p *Pipeline) receiveFrames(parent *telemetry.Span, audio []float64) (frames []*frame.Frame, lost int, snr float64, err error) {
	demSp := parent.StartChild("demodulate")
	fecSp := func() *telemetry.Span { return parent.StartChild("fec_decode") }
	if p.cfg.SoftDecision && p.cfg.InnerCode != nil {
		dem, err := p.modem.DemodulateSoft(audio)
		demSp.End()
		if err != nil {
			return nil, 0, 0, err
		}
		sp := fecSp()
		frames, lost = p.codec.DecodeStreamSoft(dem.Soft)
		sp.End()
		p.recordReceive(frames, lost, dem.SNRdB)
		return frames, lost, dem.SNRdB, nil
	}
	dem, err := p.modem.Demodulate(audio)
	demSp.End()
	if err != nil {
		return nil, 0, 0, err
	}
	sp := fecSp()
	frames, lost = p.codec.DecodeStream(dem.Payload)
	sp.End()
	p.recordReceive(frames, lost, dem.SNRdB)
	return frames, lost, dem.SNRdB, nil
}

// recordReceive updates the receive-side counters and the modem SNR
// gauge.
func (p *Pipeline) recordReceive(frames []*frame.Frame, lost int, snrDB float64) {
	p.framesRx.Add(int64(len(frames)))
	p.framesLost.Add(int64(lost))
	p.snrGauge.Set(snrDB)
}

// --- cell transport ----------------------------------------------------------

// EncodeImageCells converts a raster into per-frame cells (§3.3's 1-px
// partition scheme): each frame payload carries exactly one
// independently decodable cell.
func (p *Pipeline) EncodeImageCells(pageID uint16, img *imagecodec.Raster) ([]*frame.Frame, error) {
	sp := p.tel.StartSpan("core.encode_cells")
	defer sp.End()
	cells, err := imagecodec.EncodeColumnsTolWorkers(img, frame.PayloadSize, p.cfg.CellTolerance, p.cfg.Workers)
	if err != nil {
		return nil, err
	}
	// All payloads marshal into one exactly-sized buffer (frame.Marshal
	// copies the payload, so the sharing never escapes the frame layer).
	buf := make([]byte, 0, imagecodec.CellsSize(cells))
	frames := make([]*frame.Frame, len(cells))
	for i := range cells {
		start := len(buf)
		buf = cells[i].AppendMarshal(buf)
		frames[i] = &frame.Frame{
			PageID:  pageID,
			Seq:     uint32(i),
			Total:   uint32(len(cells)),
			Payload: buf[start:len(buf):len(buf)],
		}
	}
	return frames, nil
}

// DecodeImageCells rebuilds a raster (w×h) from whatever cell frames
// arrived, interpolating missing pixels per §3.3. It returns the healed
// image, the missing-pixel mask (before interpolation), and the pixel
// loss rate.
func DecodeImageCells(frames []*frame.Frame, w, h int) (*imagecodec.Raster, []bool, float64) {
	return decodeImageCells(nil, frames, w, h)
}

// decodeImageCells is DecodeImageCells with per-stage spans scoped under
// parent (nil-safe).
func decodeImageCells(parent *telemetry.Span, frames []*frame.Frame, w, h int) (*imagecodec.Raster, []bool, float64) {
	cellSp := parent.StartChild("cell_decode")
	var cells []imagecodec.Cell
	for _, f := range frames {
		c, err := imagecodec.UnmarshalCell(f.Payload)
		if err != nil {
			continue
		}
		cells = append(cells, c)
	}
	img, missing := imagecodec.DecodeColumns(cells, w, h)
	cellSp.End()
	lost := 0
	for _, m := range missing {
		if m {
			lost++
		}
	}
	rate := 0.0
	if len(missing) > 0 {
		rate = float64(lost) / float64(len(missing))
	}
	interpSp := parent.StartChild("interpolate")
	interp.Interpolate(img, missing)
	interpSp.End()
	return img, missing, rate
}

// EncodeCellsAudio modulates a raster's cell frames (§3.3's resilient
// transport) into one audio burst.
func (p *Pipeline) EncodeCellsAudio(pageID uint16, img *imagecodec.Raster) ([]float64, error) {
	frames, err := p.EncodeImageCells(pageID, img)
	if err != nil {
		return nil, err
	}
	sp := p.tel.StartSpan("core.encode_cells_audio")
	defer sp.End()
	fecSp := sp.StartChild("fec_encode")
	stream, err := p.codec.EncodeStream(frames)
	fecSp.End()
	if err != nil {
		return nil, err
	}
	modSp := sp.StartChild("modulate")
	audio := p.modem.Modulate(stream)
	modSp.End()
	p.framesTx.Add(int64(len(frames)))
	return audio, nil
}

// DecodeCellsAudio demodulates a cell-transport burst and reconstructs
// the w×h image, interpolating whatever frames were lost. It returns the
// healed image, the pixel loss rate, and the frame loss rate.
func (p *Pipeline) DecodeCellsAudio(audio []float64, w, h int) (*imagecodec.Raster, float64, float64, error) {
	sp := p.tel.StartSpan("core.decode_cells")
	defer sp.End()
	frames, lost, _, err := p.receiveFrames(sp, audio)
	if err != nil {
		return nil, 1, 1, err
	}
	img, _, pixelLoss := decodeImageCells(sp, frames, w, h)
	frameLoss := 0.0
	if total := len(frames) + lost; total > 0 {
		frameLoss = float64(lost) / float64(total)
	}
	return img, pixelLoss, frameLoss, nil
}

// CellAirtimeSeconds returns the on-air time to broadcast img through
// the cell transport — typically an order of magnitude above
// AirtimeSeconds of the compressed bitstream (the trade-off DESIGN.md
// §5a quantifies).
func (p *Pipeline) CellAirtimeSeconds(img *imagecodec.Raster) (float64, error) {
	cells, err := imagecodec.EncodeColumnsTolWorkers(img, frame.PayloadSize, p.cfg.CellTolerance, p.cfg.Workers)
	if err != nil {
		return 0, err
	}
	coded := len(cells) * p.codec.CodedFrameSize()
	return p.modem.BurstDuration(coded), nil
}

// --- channel probes ----------------------------------------------------------

// FrameLossProbe measures the frame loss rate of this pipeline across a
// Link: it broadcasts nFrames dummy frames and counts survivors. This is
// the instrument behind Figure 4(a) and the RSSI sweep.
func (p *Pipeline) FrameLossProbe(link fm.Link, nFrames int) (lossRate float64, err error) {
	frames := make([]*frame.Frame, nFrames)
	for i := range frames {
		payload := make([]byte, frame.PayloadSize)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		frames[i] = &frame.Frame{
			PageID:  0xBEEF,
			Seq:     uint32(i),
			Total:   uint32(nFrames),
			Payload: payload,
		}
	}
	stream, err := p.codec.EncodeStream(frames)
	if err != nil {
		return 0, err
	}
	audio := p.modem.Modulate(stream)
	rx := link.Transmit(audio, p.cfg.Modem.SampleRate)
	sp := p.tel.StartSpan("core.frame_loss_probe")
	got, _, _, err := p.receiveFrames(sp, rx)
	sp.End()
	if err != nil {
		return 1, nil // no sync at all: total loss, not an error
	}
	r := frame.NewReassembler(0xBEEF)
	for _, f := range got {
		r.Add(f)
	}
	return 1 - float64(r.Received())/float64(nFrames), nil
}
