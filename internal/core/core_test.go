package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sonic/internal/fec"
	"sonic/internal/fm"
	"sonic/internal/frame"
	"sonic/internal/imagecodec"
	"sonic/internal/modem"
)

func newDefault(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quality = 99
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("bad quality should fail")
	}
	cfg = DefaultConfig()
	cfg.Modem.FFTSize = 999
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("bad modem profile should fail")
	}
}

func TestNetGoodputNearTenKbps(t *testing.T) {
	// The paper's headline claim (§3.3/§4): "a rate of 10kbps is
	// sustainable" with the 92-subcarrier profile and rs8+v29.
	p := newDefault(t)
	g := p.NetGoodputBps()
	if g < 6500 || g > 11000 {
		t.Errorf("net goodput = %.0f bps, want in the ~10 kbps regime", g)
	}
	// Airtime for 100 KB at ~7-9 kbps net should be minutes, not hours.
	at := p.AirtimeSeconds(100 * 1024)
	if at < 60 || at > 600 {
		t.Errorf("airtime for 100KB = %.0fs", at)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := Bundle{Image: []byte{1, 2, 3}, ClickMap: []byte(`{"page":"a.pk/"}`)}
	got, err := UnmarshalBundle(MarshalBundle(b))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Image, b.Image) || !bytes.Equal(got.ClickMap, b.ClickMap) {
		t.Error("bundle mismatch")
	}
	if _, err := UnmarshalBundle([]byte{1}); err != ErrBadBundle {
		t.Errorf("short bundle err = %v", err)
	}
	bad := MarshalBundle(b)
	bad[0] = 0xFF // huge image length
	if _, err := UnmarshalBundle(bad); err != ErrBadBundle {
		t.Errorf("inconsistent bundle err = %v", err)
	}
}

func TestEndToEndCleanAudio(t *testing.T) {
	p := newDefault(t)
	rng := rand.New(rand.NewSource(1))
	img := make([]byte, 3000)
	rng.Read(img)
	b := Bundle{Image: img, ClickMap: []byte("clicks")}
	audio, err := p.EncodePageAudio(7, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.DecodePageAudio(audio)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.PageID != 7 || res.FramesLost != 0 {
		t.Fatalf("result: %+v", res)
	}
	if !bytes.Equal(res.Bundle.Image, img) {
		t.Fatal("image corrupted")
	}
}

func TestEndToEndOverFMCable(t *testing.T) {
	// The full paper path at high RSSI, cable receiver: FM chain at
	// -70 dB RSSI must deliver with zero frame loss (§4: "no frame loss
	// recorded over cable... RSSI of -65 to -85 dB").
	p := newDefault(t)
	rng := rand.New(rand.NewSource(2))
	img := make([]byte, 2000)
	rng.Read(img)
	audio, err := p.EncodePageAudio(3, Bundle{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	link := fm.Chain{
		&fm.FMLink{Model: fm.DefaultRSSIModel(), RSSIOverride: -70, Rng: rng},
		fm.CableLink{},
	}
	rx := link.Transmit(audio, 48000)
	res, err := p.DecodePageAudio(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.FramesLost != 0 {
		t.Fatalf("cable at -70 dB lost %d frames", res.FramesLost)
	}
	if !bytes.Equal(res.Bundle.Image, img) {
		t.Fatal("image corrupted over FM")
	}
}

func TestFrameLossProbeBands(t *testing.T) {
	// RSSI bands from §4: clean at -75, total loss below -90.
	p := newDefault(t)
	rng := rand.New(rand.NewSource(3))
	clean, err := p.FrameLossProbe(&fm.FMLink{
		Model: fm.DefaultRSSIModel(), RSSIOverride: -75, Rng: rng}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if clean != 0 {
		t.Errorf("loss at -75 dB = %.2f, want 0", clean)
	}
	dead, err := p.FrameLossProbe(&fm.FMLink{
		Model: fm.DefaultRSSIModel(), RSSIOverride: -95, Rng: rng}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if dead < 0.9 {
		t.Errorf("loss at -95 dB = %.2f, want ~1", dead)
	}
}

func TestCellTransportEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellTransport = true
	cfg.CellTolerance = 8
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Small page-like image.
	img := imagecodec.NewRaster(48, 160)
	img.FillRect(0, 0, 48, 20, imagecodec.RGB{R: 20, G: 40, B: 160})
	img.FillRect(10, 60, 28, 40, imagecodec.RGB{R: 200, G: 30, B: 30})
	frames, err := p.EncodeImageCells(5, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 48 {
		t.Fatalf("only %d cell frames", len(frames))
	}
	// Drop 10% of frames, reconstruct, verify bounded damage.
	rng := rand.New(rand.NewSource(4))
	var kept []*frame.Frame
	for _, f := range frames {
		if rng.Float64() >= 0.10 {
			kept = append(kept, f)
		}
	}
	healed, missing, rate := DecodeImageCells(kept, img.W, img.H)
	if rate <= 0 || rate > 0.5 {
		t.Errorf("pixel loss rate = %.3f", rate)
	}
	_ = missing
	// Healed image should be close to the original (tolerance + interp).
	var diff float64
	for i := range img.Pix {
		d := float64(img.Pix[i]) - float64(healed.Pix[i])
		diff += d * d
	}
	mse := diff / float64(len(img.Pix))
	if mse > 900 {
		t.Errorf("healed MSE = %.1f, interpolation too weak", mse)
	}
	// Full delivery must be near-perfect (tolerance-bounded).
	full, _, rate0 := DecodeImageCells(frames, img.W, img.H)
	if rate0 != 0 {
		t.Errorf("full delivery rate = %g", rate0)
	}
	for i := range img.Pix {
		d := math.Abs(float64(img.Pix[i]) - float64(full.Pix[i]))
		if d > float64(cfg.CellTolerance) {
			t.Fatalf("pixel %d off by %g > tolerance", i, d)
		}
	}
}

func TestAblationInnerCodeMatters(t *testing.T) {
	// At an SNR where v29 saves frames, no-inner-code must lose more.
	mk := func(inner *fec.ConvCode) *Pipeline {
		cfg := DefaultConfig()
		cfg.InnerCode = inner
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	withV29 := mk(fec.NewV29())
	without := mk(nil)
	loss29, err := withV29.FrameLossProbe(&fm.AWGNLink{SNRdB: 17, Rng: rand.New(rand.NewSource(5))}, 15)
	if err != nil {
		t.Fatal(err)
	}
	loss0, err := without.FrameLossProbe(&fm.AWGNLink{SNRdB: 17, Rng: rand.New(rand.NewSource(5))}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if loss29 > loss0 {
		t.Errorf("v29 loss %.2f worse than no-FEC %.2f", loss29, loss0)
	}
	if loss0 == 0 {
		t.Log("channel too clean to separate; acceptable but uninformative")
	}
}

func TestDecodePageAudioNoSignal(t *testing.T) {
	p := newDefault(t)
	if _, err := p.DecodePageAudio(make([]float64, 48000)); err != modem.ErrNoPreamble {
		t.Errorf("silence err = %v", err)
	}
}

func BenchmarkPipelineEncodePage10KB(b *testing.B) {
	p, _ := NewPipeline(DefaultConfig())
	img := make([]byte, 10*1024)
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EncodePageAudio(1, Bundle{Image: img}); err != nil {
			b.Fatal(err)
		}
	}
}
