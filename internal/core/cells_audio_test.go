package core

import (
	"math"
	"math/rand"
	"testing"

	"sonic/internal/fm"
	"sonic/internal/imagecodec"
)

func cellsPipeline(t *testing.T) *Pipeline {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CellTransport = true
	cfg.CellTolerance = 8
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cellsTestImage() *imagecodec.Raster {
	img := imagecodec.NewRaster(40, 120)
	img.FillRect(0, 0, 40, 16, imagecodec.RGB{R: 20, G: 40, B: 160})
	img.FillRect(8, 50, 24, 30, imagecodec.RGB{R: 180, G: 30, B: 30})
	return img
}

func TestCellsAudioCleanRoundTrip(t *testing.T) {
	p := cellsPipeline(t)
	img := cellsTestImage()
	audio, err := p.EncodeCellsAudio(9, img)
	if err != nil {
		t.Fatal(err)
	}
	got, pixelLoss, frameLoss, err := p.DecodeCellsAudio(audio, img.W, img.H)
	if err != nil {
		t.Fatal(err)
	}
	if pixelLoss != 0 || frameLoss != 0 {
		t.Errorf("clean channel: pixelLoss=%g frameLoss=%g", pixelLoss, frameLoss)
	}
	for i := range img.Pix {
		d := math.Abs(float64(img.Pix[i]) - float64(got.Pix[i]))
		if d > 8 {
			t.Fatalf("pixel %d off by %g > tolerance", i, d)
		}
	}
}

func TestCellsAudioSurvivesLossyChannel(t *testing.T) {
	// The whole point of the cell transport: at a loss level where the
	// bitstream transport would void the page, the cell path still
	// yields a usable image with bounded pixel damage.
	p := cellsPipeline(t)
	img := cellsTestImage()
	audio, err := p.EncodeCellsAudio(9, img)
	if err != nil {
		t.Fatal(err)
	}
	// Scan the cliff region until a draw produces partial frame loss.
	var (
		got                  *imagecodec.Raster
		pixelLoss, frameLoss float64
	)
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		for _, snr := range []float64{11, 10.5, 10} {
			link := &fm.AWGNLink{SNRdB: snr, Rng: rand.New(rand.NewSource(seed))}
			rx := link.Transmit(audio, 48000)
			g, pl, fl, err := p.DecodeCellsAudio(rx, img.W, img.H)
			if err != nil {
				continue
			}
			if fl > 0 && fl < 1 {
				got, pixelLoss, frameLoss, found = g, pl, fl, true
				break
			}
		}
	}
	if !found {
		t.Skip("no partial-loss draw in the scan window")
	}
	if pixelLoss >= 1 {
		t.Fatalf("no pixels survived (frameLoss %.2f)", frameLoss)
	}
	// After interpolation the image should still resemble the original.
	var diff float64
	for i := range img.Pix {
		d := float64(img.Pix[i]) - float64(got.Pix[i])
		diff += d * d
	}
	if mse := diff / float64(len(img.Pix)); mse > 2500 {
		t.Errorf("healed MSE %.0f too high at frame loss %.2f", mse, frameLoss)
	}
}

func TestCellAirtimeExceedsBitstream(t *testing.T) {
	p := cellsPipeline(t)
	// A page-like image: mostly flat with a photo block.
	img := imagecodec.NewRaster(200, 400)
	img.FillRect(0, 0, 200, 40, imagecodec.RGB{R: 10, G: 60, B: 120})
	cellSec, err := p.CellAirtimeSeconds(img)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := imagecodec.EncodeSIC(img, 10)
	if err != nil {
		t.Fatal(err)
	}
	bitSec := p.AirtimeSeconds(len(enc))
	if cellSec <= bitSec {
		t.Errorf("cell airtime %.1fs should exceed bitstream %.1fs", cellSec, bitSec)
	}
	t.Logf("airtime: cells %.1fs vs bitstream %.1fs (%.0fx)", cellSec, bitSec, cellSec/bitSec)
}
