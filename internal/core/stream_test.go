package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestStagedHelpersMatchEncodePageAudio pins the artifact-cache entry
// points — EncodePageStream / BlobStream / ModulateStream — byte- and
// sample-identical to the one-shot EncodePageAudio path they decompose.
func TestStagedHelpersMatchEncodePageAudio(t *testing.T) {
	p := newDefault(t)
	rng := rand.New(rand.NewSource(42))
	img := make([]byte, 2500)
	rng.Read(img)
	b := Bundle{Image: img, ClickMap: []byte(`{"page":"staged.pk/"}`)}
	const pageID = 11

	wantAudio, err := p.EncodePageAudio(pageID, b)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := p.EncodePageStream(pageID, b)
	if err != nil {
		t.Fatal(err)
	}
	fromBlob, err := p.BlobStream(pageID, MarshalBundle(b))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, fromBlob) {
		t.Fatal("BlobStream differs from EncodePageStream on the same bundle")
	}

	audio := p.ModulateStream(stream)
	if len(audio) != len(wantAudio) {
		t.Fatalf("staged audio length %d != one-shot %d", len(audio), len(wantAudio))
	}
	for i := range audio {
		if audio[i] != wantAudio[i] {
			t.Fatalf("staged audio diverges from EncodePageAudio at sample %d", i)
		}
	}

	// The staged stream must still decode end to end.
	res, err := p.DecodePageAudio(audio)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.PageID != pageID || !bytes.Equal(res.Bundle.Image, img) {
		t.Fatalf("staged audio failed decode: %+v", res)
	}
}

// TestConfigDigestStableAcrossPipelines pins that two pipelines built
// from the same Config share one digest (they may share artifacts) and
// that ConfigDigest matches Config.Digest.
func TestConfigDigestStableAcrossPipelines(t *testing.T) {
	cfg := DefaultConfig()
	p1, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ConfigDigest() != p2.ConfigDigest() {
		t.Fatal("identical configs produced different digests")
	}
	if p1.ConfigDigest() != cfg.Digest() {
		t.Fatal("ConfigDigest disagrees with Config.Digest")
	}
}
