package core

import (
	"bytes"
	"math/rand"
	"testing"

	"sonic/internal/fm"
)

func softPipeline(t *testing.T, soft bool) *Pipeline {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SoftDecision = soft
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSoftDecisionCleanRoundTrip(t *testing.T) {
	p := softPipeline(t, true)
	rng := rand.New(rand.NewSource(1))
	img := make([]byte, 1500)
	rng.Read(img)
	audio, err := p.EncodePageAudio(2, Bundle{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.DecodePageAudio(audio)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || !bytes.Equal(res.Bundle.Image, img) {
		t.Fatal("soft path clean round trip failed")
	}
}

func TestSoftBeatsHardNearTheCliff(t *testing.T) {
	// Soft-decision Viterbi is worth ~2 dB: at an SNR where hard
	// decoding loses a good share of frames, soft decoding must lose
	// clearly fewer (aggregated over several seeds).
	hard := softPipeline(t, false)
	soft := softPipeline(t, true)
	const snr = 9.0 // just below the hard-decision cliff (~9.5 dB)
	var hardLoss, softLoss float64
	for seed := int64(0); seed < 4; seed++ {
		hl, err := hard.FrameLossProbe(&fm.AWGNLink{SNRdB: snr,
			Rng: rand.New(rand.NewSource(seed))}, 12)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := soft.FrameLossProbe(&fm.AWGNLink{SNRdB: snr,
			Rng: rand.New(rand.NewSource(seed))}, 12)
		if err != nil {
			t.Fatal(err)
		}
		hardLoss += hl
		softLoss += sl
	}
	if hardLoss == 0 {
		t.Skip("channel too clean to discriminate at this SNR")
	}
	if softLoss >= hardLoss {
		t.Errorf("soft loss %.2f not better than hard %.2f", softLoss/4, hardLoss/4)
	}
	t.Logf("frame loss at %.0f dB: hard %.2f soft %.2f", snr, hardLoss/4, softLoss/4)
}

func TestSoftFallsBackWithoutInnerCode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SoftDecision = true
	cfg.InnerCode = nil // soft only helps the inner code; must still work
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audio, err := p.EncodePageAudio(1, Bundle{Image: []byte("fallback")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.DecodePageAudio(audio)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("fallback round trip failed")
	}
}
