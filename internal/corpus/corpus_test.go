package corpus

import (
	"strings"
	"testing"
)

func TestCorpusGeometry(t *testing.T) {
	if len(Sites) != NumSites {
		t.Fatalf("len(Sites) = %d, want %d", len(Sites), NumSites)
	}
	pages := Pages()
	if len(pages) != NumPages || NumPages != 100 {
		t.Fatalf("corpus has %d pages, want 100", len(pages))
	}
	landing, internal := 0, 0
	seen := map[string]bool{}
	for _, p := range pages {
		if seen[p.URL] {
			t.Errorf("duplicate URL %s", p.URL)
		}
		seen[p.URL] = true
		if !strings.HasSuffix(p.Site, ".pk") {
			t.Errorf("site %q not .pk", p.Site)
		}
		if p.Internal {
			internal++
		} else {
			landing++
		}
	}
	if landing != 25 || internal != 75 {
		t.Errorf("landing=%d internal=%d, want 25/75", landing, internal)
	}
}

func TestPagesStableOrder(t *testing.T) {
	a, b := Pages(), Pages()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Pages() must be deterministic")
		}
	}
}

func TestGenerateRespectsChangeSchedule(t *testing.T) {
	ref := Pages()[0] // most popular landing page
	// Find an hour where the page did NOT change; generation must match
	// the previous hour exactly.
	found := false
	for h := 1; h < 48; h++ {
		if !ChangedAt(ref, h) {
			a := Generate(ref, h-1)
			b := Generate(ref, h)
			if a.Title != b.Title {
				t.Fatalf("hour %d: unchanged page rendered differently", h)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("page churned every hour in the window")
	}
}

func TestChangedSinceComposition(t *testing.T) {
	ref := Pages()[3]
	for h := 1; h < 30; h++ {
		ab := ChangedSince(ref, 0, h)
		split := ChangedSince(ref, 0, h/2) || ChangedSince(ref, h/2, h)
		if ab != split {
			t.Fatalf("ChangedSince not compositional at h=%d", h)
		}
	}
	if ChangedSince(ref, 5, 5) {
		t.Error("empty interval should report no change")
	}
}

func TestChurnRates(t *testing.T) {
	pages := Pages()
	// Popular landing pages churn much more than internal pages.
	popular := pages[0]
	internalPage := pages[1]
	if !internalPage.Internal {
		t.Fatal("expected internal page at index 1")
	}
	cPop, cInt := 0, 0
	for h := 1; h <= StudyHours; h++ {
		if ChangedAt(popular, h) {
			cPop++
		}
		if ChangedAt(internalPage, h) {
			cInt++
		}
	}
	if cPop <= cInt {
		t.Errorf("popular landing churn %d <= internal churn %d", cPop, cInt)
	}
	if cPop < StudyHours/2 {
		t.Errorf("top news page changed only %d/%d hours", cPop, StudyHours)
	}
}

func TestPopularityWeights(t *testing.T) {
	pages := Pages()
	if PopularityWeight(pages[0]) <= PopularityWeight(pages[4]) {
		t.Error("rank 0 landing must outweigh rank 1 landing")
	}
	if PopularityWeight(pages[0]) <= PopularityWeight(pages[1]) {
		t.Error("landing must outweigh internal of same site")
	}
	for _, p := range pages {
		if PopularityWeight(p) <= 0 {
			t.Errorf("non-positive weight for %s", p.URL)
		}
	}
}

func TestGenerateInternalShorterThanLanding(t *testing.T) {
	pages := Pages()
	landing := Generate(pages[0], 0)
	internal := Generate(pages[1], 0)
	if len(internal.Blocks) >= len(landing.Blocks) {
		// Not guaranteed per-sample; compare across several sites.
		shorter := 0
		for i := 0; i < 20; i += 4 {
			l := Generate(pages[i], 0)
			in := Generate(pages[i+1], 0)
			if len(in.Blocks) < len(l.Blocks) {
				shorter++
			}
		}
		if shorter < 3 {
			t.Errorf("internal pages shorter in only %d/5 sites", shorter)
		}
	}
	_ = landing
	_ = internal
}
