// Package corpus reproduces the paper's content workload (§4): the 25
// most popular Pakistani websites (Tranco list filtered on .pk), each
// contributing its landing page plus three internal pages — 100 pages
// total — re-rendered hourly over three days. The sites here are
// synthetic stand-ins with the same structure; the generator in
// internal/webrender makes each (url, hour) pair deterministic.
package corpus

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"sonic/internal/webrender"
)

// The paper's corpus geometry.
const (
	NumSites             = 25
	InternalPagesPerSite = 3
	NumPages             = NumSites * (1 + InternalPagesPerSite) // 100
	StudyHours           = 72                                    // three days, hourly
)

// Sites is the synthetic Tranco-style .pk top list (rank order).
var Sites = []string{
	"khabar.pk", "dunya-news.pk", "cricfeed.pk", "bazaar.pk", "rozgar.pk",
	"taleem.pk", "urdupoint-news.pk", "mausam.pk", "railbook.pk", "sehatlink.pk",
	"filmistan.pk", "techdera.pk", "zameenhub.pk", "sasta.pk", "khel.pk",
	"adab.pk", "safarnama.pk", "mandi.pk", "ustad.pk", "shehr.pk",
	"qanoon.pk", "karobar.pk", "fankar.pk", "kitabghar.pk", "awaaz.pk",
}

// PageRef identifies one corpus page.
type PageRef struct {
	URL      string
	Site     string
	Rank     int  // site popularity rank, 0 = most popular
	Internal bool // false for the landing page
}

// Pages returns the full 100-page corpus in a stable order: for each
// site (by rank), the landing page then its three internal pages.
func Pages() []PageRef {
	refs := make([]PageRef, 0, NumPages)
	for rank, site := range Sites {
		refs = append(refs, PageRef{URL: site + "/", Site: site, Rank: rank})
		// Internal pages are "three random internal pages" in the paper;
		// here they are derived deterministically from the site name.
		rng := rand.New(rand.NewSource(siteSeed(site)))
		for j := 0; j < InternalPagesPerSite; j++ {
			refs = append(refs, PageRef{
				URL:      fmt.Sprintf("%s/story/%04d", site, rng.Intn(10000)),
				Site:     site,
				Rank:     rank,
				Internal: true,
			})
		}
	}
	return refs
}

func siteSeed(site string) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return int64(h.Sum64())
}

// Generate renders the page model for a corpus page at the given hour.
// Pages only re-render when ChangedAt fires, so two consecutive hours
// with no change produce byte-identical pages (and cache hits).
func Generate(ref PageRef, hour int) *webrender.Page {
	opts := webrender.DefaultGenOptions()
	if ref.Internal {
		// Internal pages (stories) are shorter than landing pages on
		// average, but long-form stories exist — the height spread is
		// what makes the PH:10k crop (Fig. 4b) bite for most pages.
		opts.MinBlocks = 20
		opts.MaxBlocks = 66
	}
	return webrender.Generate(ref.URL, EffectiveHour(ref, hour), opts)
}

// EffectiveHour returns the most recent hour <= hour at which the page's
// content last changed (0 if it never has).
func EffectiveHour(ref PageRef, hour int) int {
	for h := hour; h > 0; h-- {
		if ChangedAt(ref, h) {
			return h
		}
	}
	return 0
}

// ChangedAt reports whether a page's rendered content changed at the
// given hour boundary. The decision is a deterministic per-(page, hour)
// coin flip, so observations compose consistently. Churn follows a
// diurnal pattern — newsrooms publish during the day — which is what
// gives Figure 4(c) its daily sawtooth.
func ChangedAt(ref PageRef, hour int) bool {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s@%d", ref.URL, hour)
	v := float64(h.Sum64()%1_000_000_000) / 1_000_000_000
	return v < churnRate(ref)*DiurnalFactor(hour)
}

// DiurnalFactor modulates churn over the day: quiet nights (0.3x),
// busy daytime (1.2x).
func DiurnalFactor(hour int) float64 {
	hod := hour % 24
	if hod >= 7 && hod < 22 {
		return 1.2
	}
	return 0.3
}

// ChangedSince reports whether a page's content differs between two hours.
// Landing pages of news-like sites churn nearly every hour; long-tail
// sites and internal pages are stickier. This drives the Figure 4(c)
// backlog: every changed page must be re-broadcast.
func ChangedSince(ref PageRef, fromHour, toHour int) bool {
	for h := fromHour + 1; h <= toHour; h++ {
		if ChangedAt(ref, h) {
			return true
		}
	}
	return false
}

// churnRate returns the per-hour probability that a page's rendered
// content changes.
func churnRate(ref PageRef) float64 {
	base := 0.95 - 0.01*float64(ref.Rank) // popular sites churn more
	if ref.Internal {
		base *= 0.35 // stories mostly stay put once published
	}
	if base < 0.05 {
		base = 0.05
	}
	return base
}

// PopularityWeight returns the relative request popularity of a page,
// Zipf-like over site rank with landing pages dominating. The server's
// preemptive push uses this ordering (§3.1: "maintains a list of the most
// popular websites in a region that are preemptively pushed").
func PopularityWeight(ref PageRef) float64 {
	w := 1.0 / float64(ref.Rank+1)
	if ref.Internal {
		w *= 0.3
	}
	return w
}
