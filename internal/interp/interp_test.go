package interp

import (
	"math"
	"math/rand"
	"testing"

	"sonic/internal/imagecodec"
)

func TestInterpolateLeftPriority(t *testing.T) {
	r := imagecodec.NewBlackRaster(4, 1)
	r.Set(0, 0, imagecodec.RGB{R: 10, G: 10, B: 10})
	r.Set(2, 0, imagecodec.RGB{R: 200, G: 200, B: 200})
	r.Set(3, 0, imagecodec.RGB{R: 250, G: 250, B: 250})
	missing := []bool{false, true, false, false}
	Interpolate(r, missing)
	// Pixel 1 must copy its LEFT neighbor (10), not the right one (200).
	if r.At(1, 0) != (imagecodec.RGB{R: 10, G: 10, B: 10}) {
		t.Errorf("left priority violated: got %+v", r.At(1, 0))
	}
}

func TestInterpolateStripHealsFromLeft(t *testing.T) {
	// A whole lost column strip copies the column to its left.
	r := imagecodec.NewRaster(5, 5)
	for y := 0; y < 5; y++ {
		r.Set(1, y, imagecodec.RGB{R: 42, G: 42, B: 42})
	}
	missing := make([]bool, 25)
	for y := 0; y < 5; y++ {
		missing[y*5+2] = true
		missing[y*5+3] = true
		r.Set(2, y, imagecodec.RGB{})
		r.Set(3, y, imagecodec.RGB{})
	}
	Interpolate(r, missing)
	for y := 0; y < 5; y++ {
		if r.At(2, y) != (imagecodec.RGB{R: 42, G: 42, B: 42}) {
			t.Fatalf("col 2 row %d = %+v", y, r.At(2, y))
		}
		if r.At(3, y) != (imagecodec.RGB{R: 42, G: 42, B: 42}) {
			t.Fatalf("col 3 (cascade) row %d = %+v", y, r.At(3, y))
		}
	}
}

func TestInterpolateLeftEdgeUsesOtherNeighbors(t *testing.T) {
	r := imagecodec.NewRaster(3, 3)
	r.Fill(imagecodec.RGB{R: 9, G: 9, B: 9})
	missing := make([]bool, 9)
	missing[3] = true // (0,1): no left neighbor
	r.Set(0, 1, imagecodec.RGB{})
	Interpolate(r, missing)
	if r.At(0, 1) != (imagecodec.RGB{R: 9, G: 9, B: 9}) {
		t.Errorf("edge pixel not healed: %+v", r.At(0, 1))
	}
}

func TestInterpolateBadMaskIsNoop(t *testing.T) {
	r := imagecodec.NewRaster(2, 2)
	before := r.Clone()
	Interpolate(r, make([]bool, 3)) // wrong length
	if !r.Equal(before) {
		t.Error("wrong-length mask should be ignored")
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a := imagecodec.NewRaster(4, 4)
	b := a.Clone()
	if MSE(a, b) != 0 || !math.IsInf(PSNR(a, b), 1) {
		t.Error("identical images should be 0 MSE / +Inf PSNR")
	}
	b.Set(0, 0, imagecodec.RGB{})
	if MSE(a, b) <= 0 {
		t.Error("differing images should have positive MSE")
	}
	c := imagecodec.NewRaster(3, 3)
	if !math.IsInf(MSE(a, c), 1) {
		t.Error("size mismatch should be +Inf")
	}
}

func TestSyntheticLossRate(t *testing.T) {
	src := imagecodec.NewRaster(100, 100)
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0.05, 0.10, 0.20, 0.50} {
		_, missing := SyntheticLoss(src, rate, 20, rng)
		lost := 0
		for _, m := range missing {
			if m {
				lost++
			}
		}
		got := float64(lost) / float64(len(missing))
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %.2f: achieved %.3f", rate, got)
		}
	}
	// Zero rate leaves the image intact.
	out, missing := SyntheticLoss(src, 0, 20, rng)
	if !out.Equal(src) {
		t.Error("zero loss should be identity")
	}
	for _, m := range missing {
		if m {
			t.Fatal("zero loss should have empty mask")
		}
	}
}

func TestSyntheticLossVerticalRuns(t *testing.T) {
	src := imagecodec.NewRaster(50, 200)
	rng := rand.New(rand.NewSource(2))
	_, missing := SyntheticLoss(src, 0.05, 40, rng)
	// Count vertical adjacency: most missing pixels should have a missing
	// vertical neighbor (runs), not be isolated.
	adjacent, total := 0, 0
	for y := 0; y < 200; y++ {
		for x := 0; x < 50; x++ {
			if !missing[y*50+x] {
				continue
			}
			total++
			if (y > 0 && missing[(y-1)*50+x]) || (y < 199 && missing[(y+1)*50+x]) {
				adjacent++
			}
		}
	}
	if total == 0 || float64(adjacent)/float64(total) < 0.9 {
		t.Errorf("losses not run-shaped: %d/%d adjacent", adjacent, total)
	}
}

func TestInterpolationReducesDamage(t *testing.T) {
	// The paper's core claim (Fig. 1, Fig. 5): interpolation makes lossy
	// pages substantially closer to the original.
	src := imagecodec.NewRaster(120, 120)
	// Textured content so interpolation has something to recover.
	for y := 0; y < 120; y++ {
		for x := 0; x < 120; x++ {
			if (x/10+y/10)%2 == 0 {
				src.Set(x, y, imagecodec.RGB{R: 220, G: 220, B: 220})
			} else {
				src.Set(x, y, imagecodec.RGB{R: 40, G: 80, B: 160})
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	damaged, missing := SyntheticLoss(src, 0.10, 30, rng)
	rawRep := Damage(src, damaged, missing, nil)
	healed := damaged.Clone()
	Interpolate(healed, missing)
	healedRep := Damage(src, healed, missing, nil)
	if healedRep.OverallDamage >= rawRep.OverallDamage/2 {
		t.Errorf("interpolation too weak: raw %.4f healed %.4f",
			rawRep.OverallDamage, healedRep.OverallDamage)
	}
	if rawRep.PixelLossRate < 0.08 || rawRep.PixelLossRate > 0.12 {
		t.Errorf("PixelLossRate = %g", rawRep.PixelLossRate)
	}
}

func TestDamageTextVsOverall(t *testing.T) {
	src := imagecodec.NewRaster(10, 10)
	recon := src.Clone()
	// Damage only rows 0-4; call those the "text" rows.
	for y := 0; y < 5; y++ {
		for x := 0; x < 10; x++ {
			recon.Set(x, y, imagecodec.RGB{})
		}
	}
	rep := Damage(src, recon, nil, func(y int) bool { return y < 5 })
	if rep.TextDamage <= rep.OverallDamage {
		t.Errorf("text damage %.3f should exceed overall %.3f",
			rep.TextDamage, rep.OverallDamage)
	}
	mismatch := Damage(src, imagecodec.NewRaster(3, 3), nil, nil)
	if mismatch.OverallDamage != 1 {
		t.Error("size mismatch should report full damage")
	}
}

func BenchmarkInterpolate10pct(b *testing.B) {
	src := imagecodec.NewRaster(imagecodec.PageWidth, 1000)
	rng := rand.New(rand.NewSource(1))
	damaged, missing := SyntheticLoss(src, 0.10, 30, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := damaged.Clone()
		Interpolate(work, missing)
	}
}
