// Package interp implements SONIC's loss-recovery stage (§3.3): missing
// pixels left by lost frames are replaced via nearest-neighbor value
// interpolation, prioritizing the left neighbor "given that the webpage
// consists mostly of text read from left to right". It also provides the
// image-quality metrics (MSE/PSNR and text/content damage scores) that
// drive the simulated user study for Figure 5.
package interp

import (
	"math"
	"math/rand"

	"sonic/internal/imagecodec"
)

// Interpolate fills missing pixels of r in place. missing is row-major,
// len == W*H, true meaning the pixel was lost. Priority order per the
// paper: left neighbor first; then above, right, below; isolated pixels
// fall back to black. Filled pixels can seed fills to their right, so a
// lost vertical strip heals from its left edge outward.
func Interpolate(r *imagecodec.Raster, missing []bool) {
	if len(missing) != r.W*r.H {
		return
	}
	filled := make([]bool, len(missing))
	// Left-to-right pass: left priority (already-filled pixels count).
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			i := y*r.W + x
			if !missing[i] {
				continue
			}
			if x > 0 && (!missing[i-1] || filled[i-1]) {
				r.Set(x, y, r.At(x-1, y))
				filled[i] = true
			}
		}
	}
	// Remaining holes: above, then right, then below.
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			i := y*r.W + x
			if !missing[i] || filled[i] {
				continue
			}
			switch {
			case y > 0 && (!missing[i-r.W] || filled[i-r.W]):
				r.Set(x, y, r.At(x, y-1))
			case x < r.W-1 && !missing[i+1]:
				r.Set(x, y, r.At(x+1, y))
			case y < r.H-1 && !missing[i+r.W]:
				r.Set(x, y, r.At(x, y+1))
			}
			filled[i] = true
		}
	}
}

// MSE returns the mean squared pixel error between two same-size rasters.
func MSE(a, b *imagecodec.Raster) float64 {
	if a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return math.Inf(1)
	}
	var acc float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		acc += d * d
	}
	return acc / float64(len(a.Pix))
}

// PSNR returns the peak signal-to-noise ratio in dB (+Inf for identical
// images).
func PSNR(a, b *imagecodec.Raster) float64 {
	m := MSE(a, b)
	if m == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/m)
}

// DamageReport quantifies visual damage after loss (and optional
// interpolation), split the way Figure 5's two questions split user
// perception: text rows versus the whole page.
type DamageReport struct {
	// PixelLossRate is the fraction of pixels originally missing.
	PixelLossRate float64
	// OverallDamage is mean |luma error| / 255 over all pixels.
	OverallDamage float64
	// TextDamage is mean |luma error| / 255 over text rows only.
	TextDamage float64
}

// Damage compares the reconstructed raster against the original.
// textRow(y) classifies rows (webrender.Rendered.TextRow); pass nil to
// treat no rows as text.
func Damage(orig, recon *imagecodec.Raster, missing []bool, textRow func(int) bool) DamageReport {
	var rep DamageReport
	if orig.W != recon.W || orig.H != recon.H {
		rep.OverallDamage = 1
		rep.TextDamage = 1
		return rep
	}
	var lost, all, textN float64
	var sumAll, sumText float64
	for y := 0; y < orig.H; y++ {
		isText := textRow != nil && textRow(y)
		for x := 0; x < orig.W; x++ {
			i := y*orig.W + x
			d := math.Abs(orig.Luma(x, y)-recon.Luma(x, y)) / 255
			sumAll += d
			all++
			if isText {
				sumText += d
				textN++
			}
			if missing != nil && i < len(missing) && missing[i] {
				lost++
			}
		}
	}
	if all > 0 {
		rep.OverallDamage = sumAll / all
		rep.PixelLossRate = lost / all
	}
	if textN > 0 {
		rep.TextDamage = sumText / textN
	}
	return rep
}

// InterpolateTopPriority is the ablation variant of Interpolate that
// prioritizes the pixel above instead of the left neighbor — what the
// paper argues against for left-to-right text (§3.3).
func InterpolateTopPriority(r *imagecodec.Raster, missing []bool) {
	if len(missing) != r.W*r.H {
		return
	}
	filled := make([]bool, len(missing))
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			i := y*r.W + x
			if !missing[i] {
				continue
			}
			if y > 0 && (!missing[i-r.W] || filled[i-r.W]) {
				r.Set(x, y, r.At(x, y-1))
				filled[i] = true
			}
		}
	}
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			i := y*r.W + x
			if !missing[i] || filled[i] {
				continue
			}
			switch {
			case x > 0 && (!missing[i-1] || filled[i-1]):
				r.Set(x, y, r.At(x-1, y))
			case x < r.W-1 && !missing[i+1]:
				r.Set(x, y, r.At(x+1, y))
			case y < r.H-1 && !missing[i+r.W]:
				r.Set(x, y, r.At(x, y+1))
			}
			filled[i] = true
		}
	}
}

// SyntheticLossRows is the row-major ablation counterpart of
// SyntheticLoss: losses arrive as horizontal runs (what a row-chunked
// partitioning would produce) instead of the paper's vertical strips.
func SyntheticLossRows(src *imagecodec.Raster, lossRate float64, runLen int, rng *rand.Rand) (*imagecodec.Raster, []bool) {
	out := src.Clone()
	missing := make([]bool, src.W*src.H)
	if lossRate <= 0 || runLen < 1 {
		return out, missing
	}
	totalPx := src.W * src.H
	targetLost := int(lossRate * float64(totalPx))
	lost := 0
	for lost < targetLost {
		x0 := rng.Intn(src.W)
		y := rng.Intn(src.H)
		for dx := 0; dx < runLen && x0+dx < src.W; dx++ {
			i := y*src.W + x0 + dx
			if missing[i] {
				continue
			}
			missing[i] = true
			out.Set(x0+dx, y, imagecodec.RGB{})
			lost++
		}
	}
	return out, missing
}

// SyntheticLoss knocks out pixels to emulate lost frames the way the
// paper's user study did (§4): losses arrive as vertical runs (the shape
// a lost 100-byte frame leaves in a 1-px partition), at the requested
// rate. It returns the damaged raster (missing pixels black) and the
// missing mask.
func SyntheticLoss(src *imagecodec.Raster, lossRate float64, runLen int, rng *rand.Rand) (*imagecodec.Raster, []bool) {
	out := src.Clone()
	missing := make([]bool, src.W*src.H)
	if lossRate <= 0 || runLen < 1 {
		return out, missing
	}
	totalPx := src.W * src.H
	targetLost := int(lossRate * float64(totalPx))
	lost := 0
	for lost < targetLost {
		x := rng.Intn(src.W)
		y0 := rng.Intn(src.H)
		for dy := 0; dy < runLen && y0+dy < src.H; dy++ {
			i := (y0+dy)*src.W + x
			if missing[i] {
				continue
			}
			missing[i] = true
			out.Set(x, y0+dy, imagecodec.RGB{})
			lost++
		}
	}
	return out, missing
}
