package routing

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomFleet builds n towers scattered over a Pakistan-sized region
// with mixed radii, including exact-duplicate sites to exercise ties.
func randomFleet(n int, rng *rand.Rand) []Tower {
	towers := make([]Tower, 0, n)
	for i := 0; i < n; i++ {
		t := Tower{
			ID:       fmt.Sprintf("tx-%04d", i),
			Lat:      23 + rng.Float64()*14, // 23..37°N
			Lon:      61 + rng.Float64()*16, // 61..77°E
			RadiusKm: 10 + rng.Float64()*90,
		}
		towers = append(towers, t)
		// Every 16th tower gets a co-sited twin with a higher ID: same
		// center, same radius — an exact distance tie on every query.
		if i%16 == 0 {
			twin := t
			twin.ID = fmt.Sprintf("tx-%04d-b", i)
			towers = append(towers, twin)
		}
	}
	return towers
}

// TestIndexMatchesLinearReference pins the grid index to the reference
// scan: same winner, same distance, same coverage verdict, for random
// fleets and query points (including points far outside coverage).
func TestIndexMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 7, 64, 400} {
		towers := randomFleet(n, rng)
		idx := Build(towers)
		for q := 0; q < 2000; q++ {
			lat := 20 + rng.Float64()*20
			lon := 58 + rng.Float64()*22
			gt, gd, gok := idx.Lookup(lat, lon)
			lt, ld, lok := LinearLookup(towers, lat, lon)
			if gok != lok || gt.ID != lt.ID || gd != ld {
				t.Fatalf("n=%d q=(%.4f,%.4f): index (%q, %.6f, %v) != linear (%q, %.6f, %v)",
					n, lat, lon, gt.ID, gd, gok, lt.ID, ld, lok)
			}
		}
	}
}

// TestLookupTieBreak is the deterministic-winner table: closest tower
// first, then smaller ID on exact distance ties — independent of
// registration order.
func TestLookupTieBreak(t *testing.T) {
	near := Tower{ID: "z-near", Lat: 24.90, Lon: 67.00, RadiusKm: 40}
	far := Tower{ID: "a-far", Lat: 24.50, Lon: 67.00, RadiusKm: 60}
	twinA := Tower{ID: "twin-a", Lat: 24.90, Lon: 67.00, RadiusKm: 40}
	cases := []struct {
		name   string
		towers []Tower
		lat    float64
		lon    float64
		want   string
		wantOK bool
	}{
		{"closest wins over id", []Tower{far, near}, 24.88, 67.00, "z-near", true},
		{"closest wins, reversed order", []Tower{near, far}, 24.88, 67.00, "z-near", true},
		{"exact tie breaks on id", []Tower{near, twinA}, 24.88, 67.00, "twin-a", true},
		{"exact tie, reversed order", []Tower{twinA, near}, 24.88, 67.00, "twin-a", true},
		{"only one covers", []Tower{near, far}, 24.45, 67.00, "a-far", true},
		{"nobody covers", []Tower{near, far}, 30.00, 70.00, "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, _, ok := Build(tc.towers).Lookup(tc.lat, tc.lon)
			if ok != tc.wantOK || (ok && got.ID != tc.want) {
				t.Errorf("Lookup = (%q, %v), want (%q, %v)", got.ID, ok, tc.want, tc.wantOK)
			}
			lgot, _, lok := LinearLookup(tc.towers, tc.lat, tc.lon)
			if lok != ok || (ok && lgot.ID != got.ID) {
				t.Errorf("linear reference disagrees: (%q, %v) vs (%q, %v)", lgot.ID, lok, got.ID, ok)
			}
		})
	}
}

// TestLookupPermutationInvariant proves registration order cannot change
// the winner: every permutation of an overlapping fleet routes the same.
func TestLookupPermutationInvariant(t *testing.T) {
	towers := []Tower{
		{ID: "c", Lat: 24.86, Lon: 67.00, RadiusKm: 50},
		{ID: "a", Lat: 24.95, Lon: 67.05, RadiusKm: 50},
		{ID: "b", Lat: 24.80, Lon: 66.95, RadiusKm: 50},
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	queries := [][2]float64{{24.86, 67.00}, {24.90, 67.02}, {24.82, 66.97}, {25.0, 67.1}}
	for _, q := range queries {
		want, _, wantOK := Build(towers).Lookup(q[0], q[1])
		for _, p := range perms {
			shuffled := []Tower{towers[p[0]], towers[p[1]], towers[p[2]]}
			got, _, ok := Build(shuffled).Lookup(q[0], q[1])
			if ok != wantOK || (ok && got.ID != want.ID) {
				t.Errorf("query %v perm %v: got (%q, %v), want (%q, %v)",
					q, p, got.ID, ok, want.ID, wantOK)
			}
		}
	}
}

// TestLookupLonWrapNormalization: towers registered with out-of-range
// longitudes still resolve (the index normalizes to [-180, 180)).
func TestLookupLonWrapNormalization(t *testing.T) {
	towers := []Tower{{ID: "x", Lat: 10, Lon: 67.0 + 360, RadiusKm: 40}}
	if _, _, ok := Build(towers).Lookup(10, 67.0); !ok {
		t.Error("normalized-longitude tower not found")
	}
	if _, _, ok := Build(towers).Lookup(10, 67.0-360); !ok {
		t.Error("normalized-longitude query not found")
	}
}

// benchFleet is the 1k-tower fleet the acceptance microbenchmark runs
// against, with query points drawn from covered areas.
func benchFleet() ([]Tower, [][2]float64) {
	rng := rand.New(rand.NewSource(1))
	towers := randomFleet(1000, rng)
	queries := make([][2]float64, 1024)
	for i := range queries {
		t := towers[rng.Intn(len(towers))]
		queries[i] = [2]float64{t.Lat + (rng.Float64()-0.5)*0.3, t.Lon + (rng.Float64()-0.5)*0.3}
	}
	return towers, queries
}

func BenchmarkIndexLookup1k(b *testing.B) {
	towers, queries := benchFleet()
	idx := Build(towers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i&1023]
		idx.Lookup(q[0], q[1])
	}
}

func BenchmarkLinearLookup1k(b *testing.B) {
	towers, queries := benchFleet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i&1023]
		LinearLookup(towers, q[0], q[1])
	}
}
