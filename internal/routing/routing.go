// Package routing maps a requesting user's location onto the FM
// transmitter that will carry their page. The SONIC server (§3.1)
// "informs the respective transmitters"; with a national fleet that
// lookup sits on the admission hot path for every SMS request, so a
// linear scan over the transmitter list — fine for the paper's handful
// of stations — collapses at 10³ towers × 10⁵–10⁶ requesters.
//
// Index is a uniform lat/lon grid: each tower lives in the cell holding
// its center, and the cell edge is at least the largest coverage radius
// in both axes, so every tower that can cover a query point sits in the
// point's 3×3 cell neighborhood. Lookup therefore inspects O(1) cells
// and the handful of towers in them, independent of fleet size.
//
// Winner selection is deterministic: among covering towers the closest
// wins, and an exact distance tie breaks on the smaller ID. The result
// never depends on registration order — a property the server's old
// first-covering-tower scan did not have.
//
// The index is immutable after Build; the server swaps whole snapshots
// (copy-on-write) when the fleet changes, which keeps Lookup lock-free.
//
// Longitudes are normalized to [-180, 180). Cells do not wrap across
// the antimeridian and the grid degenerates near the poles (|lat| ≳
// 87°); SONIC fleets are regional, and the conservative cell sizing
// keeps correctness everywhere the cosine clamp holds.
package routing

import "math"

// Tower is one indexed transmitter site.
type Tower struct {
	ID       string
	Lat, Lon float64
	RadiusKm float64
}

// Covers reports whether the tower's broadcast radius reaches the point.
func (t Tower) Covers(lat, lon float64) bool {
	return DistanceKm(t.Lat, t.Lon, lat, lon) <= t.RadiusKm
}

// kmPerDegLat is the great-circle length of one degree of latitude (and
// of longitude at the equator).
const kmPerDegLat = 111.194926645

// DistanceKm returns the haversine great-circle distance between two
// points.
func DistanceKm(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371.0
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(lat2 - lat1)
	dLon := toRad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(lat1))*math.Cos(toRad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Index is an immutable spatial index over a tower fleet.
type Index struct {
	towers  []Tower
	cellLat float64 // degrees of latitude per cell
	cellLon float64 // degrees of longitude per cell
	cells   map[cellKey][]int32
}

type cellKey struct{ i, j int32 }

// Build constructs the index. The tower slice is copied; the input is
// not retained.
func Build(towers []Tower) *Index {
	idx := &Index{
		towers: append([]Tower(nil), towers...),
		cells:  make(map[cellKey][]int32, len(towers)),
	}
	maxR := 1.0 // floor so zero-radius fleets still get finite cells
	cosMin := 1.0
	for i := range idx.towers {
		t := &idx.towers[i]
		t.Lon = normLon(t.Lon)
		if t.RadiusKm > maxR {
			maxR = t.RadiusKm
		}
	}
	for _, t := range idx.towers {
		// The latitude band a tower's coverage can touch: its own
		// latitude extended by the radius. The longitude cell must span
		// the radius at the narrowest (highest-|lat|) point of any
		// coverage disc, so take the minimum cosine over the fleet.
		reach := math.Abs(t.Lat) + t.RadiusKm/kmPerDegLat
		if c := math.Cos(reach * math.Pi / 180); c < cosMin {
			cosMin = c
		}
	}
	if cosMin < 0.05 {
		cosMin = 0.05 // clamp: keeps cells finite up to ~87° latitude
	}
	idx.cellLat = maxR / kmPerDegLat
	// The latitude bound is exact (haversine distance dominates the
	// meridian component); the longitude bound leans on a small-angle
	// approximation, so inflate it 1% to keep the 3×3 neighborhood
	// guarantee airtight for continental-scale radii.
	idx.cellLon = maxR * 1.01 / (kmPerDegLat * cosMin)
	for i, t := range idx.towers {
		k := idx.cellOf(t.Lat, t.Lon)
		idx.cells[k] = append(idx.cells[k], int32(i))
	}
	return idx
}

// normLon wraps a longitude into [-180, 180).
func normLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

func (x *Index) cellOf(lat, lon float64) cellKey {
	return cellKey{
		i: int32(math.Floor(lat / x.cellLat)),
		j: int32(math.Floor(lon / x.cellLon)),
	}
}

// Len returns the number of indexed towers.
func (x *Index) Len() int { return len(x.towers) }

// Towers returns a copy of the indexed fleet.
func (x *Index) Towers() []Tower {
	return append([]Tower(nil), x.towers...)
}

// Lookup returns the covering tower for a location: the closest one,
// ties broken by smaller ID. ok is false when no tower covers the
// point. The result is identical to LinearLookup over the same fleet.
func (x *Index) Lookup(lat, lon float64) (best Tower, distKm float64, ok bool) {
	if len(x.towers) == 0 {
		return Tower{}, 0, false
	}
	lon = normLon(lon)
	c := x.cellOf(lat, lon)
	for di := int32(-1); di <= 1; di++ {
		for dj := int32(-1); dj <= 1; dj++ {
			for _, ti := range x.cells[cellKey{c.i + di, c.j + dj}] {
				t := x.towers[ti]
				d := DistanceKm(t.Lat, t.Lon, lat, lon)
				if d > t.RadiusKm {
					continue
				}
				if !ok || d < distKm || (d == distKm && t.ID < best.ID) {
					best, distKm, ok = t, d, true
				}
			}
		}
	}
	return best, distKm, ok
}

// LinearLookup is the reference O(n) scan with the same deterministic
// winner rule (closest, then smallest ID). It exists as the equivalence
// baseline for Index.Lookup and as the before-side of the routing
// microbenchmark; production code routes through an Index.
func LinearLookup(towers []Tower, lat, lon float64) (best Tower, distKm float64, ok bool) {
	lon = normLon(lon)
	for _, t := range towers {
		d := DistanceKm(t.Lat, normLon(t.Lon), lat, lon)
		if d > t.RadiusKm {
			continue
		}
		if !ok || d < distKm || (d == distKm && t.ID < best.ID) {
			best, distKm, ok = t, d, true
		}
	}
	return best, distKm, ok
}
