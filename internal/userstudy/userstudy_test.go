package userstudy

import (
	"testing"

	"sonic/internal/interp"
	"sonic/internal/stats"
)

// buildSmall renders a reduced study (pages and viewport shrunk for test
// speed; the harness runs the full 50-page geometry).
func buildSmall(t *testing.T) []Screenshot {
	t.Helper()
	shots := BuildScreenshots(6, 1500, 42)
	if len(shots) != 6*len(LossRates)*2 {
		t.Fatalf("built %d screenshots", len(shots))
	}
	return shots
}

func TestScreenshotDamageStructure(t *testing.T) {
	shots := buildSmall(t)
	for _, s := range shots {
		if s.Damage.PixelLossRate < s.Cond.LossRate-0.03 ||
			s.Damage.PixelLossRate > s.Cond.LossRate+0.03 {
			t.Errorf("cond %.2f: pixel loss %.3f", s.Cond.LossRate, s.Damage.PixelLossRate)
		}
		if s.Cond.Interp && s.Damage.OverallDamage > 0.2 {
			t.Errorf("interp damage %.3f suspiciously high", s.Damage.OverallDamage)
		}
	}
}

func TestInterpolationReducesMeasuredDamage(t *testing.T) {
	shots := buildSmall(t)
	byKey := map[string]float64{}
	for _, s := range shots {
		key := ConditionLabel(s.Cond)
		byKey[key] += s.Damage.OverallDamage
	}
	for _, lr := range LossRates {
		raw := byKey[ConditionLabel(Condition{lr, false})]
		healed := byKey[ConditionLabel(Condition{lr, true})]
		if healed >= raw {
			t.Errorf("loss %.0f%%: interp damage %.3f !< raw %.3f", lr*100, healed, raw)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	shots := buildSmall(t)
	res := Run(shots, DefaultParticipants, 7)
	med := func(c Condition, content bool) float64 {
		if content {
			return stats.Median(res.MediansContent[c])
		}
		return stats.Median(res.MediansText[c])
	}

	// 1. Interpolation buys at least ~1 point at every loss rate (paper:
	// "improving the rating by at least one point regardless of the loss
	// rate").
	for _, lr := range LossRates {
		gain := med(Condition{lr, true}, true) - med(Condition{lr, false}, true)
		if gain < 0.8 {
			t.Errorf("loss %.0f%%: content gain %.2f < 1", lr*100, gain)
		}
		tgain := med(Condition{lr, true}, false) - med(Condition{lr, false}, false)
		if tgain < 0.8 {
			t.Errorf("loss %.0f%%: text gain %.2f < 1", lr*100, tgain)
		}
	}

	// 2. Content at 20% loss with interpolation ~= 7 ("somewhat clear").
	c20 := med(Condition{0.20, true}, true)
	if c20 < 6 || c20 > 8.5 {
		t.Errorf("content@20%%+interp median = %.2f, want ~7", c20)
	}

	// 3. Ratings fall with loss rate.
	for _, useInterp := range []bool{false, true} {
		prev := 11.0
		for _, lr := range LossRates {
			m := med(Condition{lr, useInterp}, true)
			if m >= prev {
				t.Errorf("interp=%v: rating not decreasing at %.0f%%", useInterp, lr*100)
			}
			prev = m
		}
	}

	// 4. Text readability is more loss-sensitive than content
	// understanding at high loss.
	for _, lr := range []float64{0.20, 0.50} {
		c := med(Condition{lr, false}, true)
		x := med(Condition{lr, false}, false)
		if x > c+0.3 {
			t.Errorf("loss %.0f%%: text %.2f should not exceed content %.2f", lr*100, x, c)
		}
	}
}

func TestRunCoverage(t *testing.T) {
	shots := buildSmall(t)
	res := Run(shots, DefaultParticipants, 8)
	if res.TotalRatings != DefaultParticipants*RatingsPerUser {
		t.Errorf("total ratings = %d", res.TotalRatings)
	}
	// Every condition present with one median per page.
	for _, lr := range LossRates {
		for _, ip := range []bool{false, true} {
			c := Condition{lr, ip}
			if len(res.MediansContent[c]) != 6 {
				t.Errorf("condition %v has %d page medians", c, len(res.MediansContent[c]))
			}
		}
	}
	if !MinRatingsSatisfied(len(shots), DefaultParticipants) {
		t.Error("study sizing violates the >=7 ratings/screenshot property")
	}
	// The paper's full geometry also satisfies it: 151*20/400 = 7.55.
	if !MinRatingsSatisfied(400, 151) {
		t.Error("paper geometry should satisfy min ratings")
	}
	if MinRatingsSatisfied(4000, 151) {
		t.Error("oversized study should fail the check")
	}
}

func TestRatingModelBounds(t *testing.T) {
	if RateContent(damageOf(0, 0)) != 10 {
		t.Error("zero damage should rate 10")
	}
	if r := RateContent(damageOf(1, 1)); r < 0 || r > 3 {
		t.Errorf("total damage rates %.2f", r)
	}
	if RateText(damageOf(0.1, 0.5)) >= RateText(damageOf(0.1, 0.1)) {
		t.Error("text rating must fall with text damage")
	}
}

func damageOf(overall, text float64) interp.DamageReport {
	return interp.DamageReport{OverallDamage: overall, TextDamage: text}
}
