// Package userstudy simulates the paper's readability study (§4, Fig. 5):
// 151 participants each rate 20 of 400 screenshots (top 50 pages × loss
// rates {5,10,20,50}% × {with, without} pixel interpolation) on two 0-10
// Likert questions — (a) content understanding and (b) text readability.
// Human raters are replaced by a perception model mapping measured image
// damage to ratings, with per-participant noise; the paper-visible
// outputs (median rating per page, boxplots per condition) are computed
// the same way.
package userstudy

import (
	"fmt"
	"math"
	"math/rand"

	"sonic/internal/corpus"
	"sonic/internal/interp"
	"sonic/internal/stats"
	"sonic/internal/webrender"
)

// The paper's study geometry.
const (
	DefaultPages        = 50
	DefaultParticipants = 151
	RatingsPerUser      = 20
	MinRatingsPerShot   = 7
)

// LossRates studied in the paper.
var LossRates = []float64{0.05, 0.10, 0.20, 0.50}

// Condition identifies one experimental cell.
type Condition struct {
	LossRate float64
	Interp   bool
}

// Screenshot is one of the study's stimuli with measured damage.
type Screenshot struct {
	PageIdx int
	Cond    Condition
	Damage  interp.DamageReport
}

// Perception model. Two effects are calibrated against Figure 5's
// medians:
//
//  1. Residual pixel damage lowers ratings roughly exponentially in the
//     square root of the damage (humans are sub-linear in error energy).
//  2. Interpolated pages read better than their damage suggests but not
//     as well as pristine ones — viewers still notice the smeared
//     strips. The "excess" term charges for loss that interpolation
//     visually hid: raw pages (damage ~= 0.7 x loss rate) pay nothing,
//     healed pages pay proportionally to the hidden loss.
//
// The resulting medians land where the paper puts them: interpolation is
// worth >= 1 point at every loss rate, content@20%+interp ~= 7, and text
// readability trails content understanding.
const (
	contentBeta      = 1.5
	textBeta         = 1.7
	contentPenalty   = 3.2
	textPenalty      = 3.4
	rawDamagePerLoss = 0.7 // measured: raw luma damage per unit loss rate
)

// hiddenLoss estimates how much pixel loss the reconstruction visually
// concealed (zero for un-interpolated pages).
func hiddenLoss(lossRate, damage float64) float64 {
	h := lossRate - damage/rawDamagePerLoss
	if h < 0 {
		return 0
	}
	return h
}

// RateContent maps damage to the question-a (content understanding)
// model rating.
func RateContent(d interp.DamageReport) float64 {
	base := 10 * math.Exp(-contentBeta*math.Sqrt(d.OverallDamage))
	pen := contentPenalty * math.Sqrt(hiddenLoss(d.PixelLossRate, d.OverallDamage))
	return clampRating(base - pen)
}

// RateText maps damage to the question-b (text readability) model rating.
func RateText(d interp.DamageReport) float64 {
	base := 10 * math.Exp(-textBeta*math.Sqrt(d.TextDamage))
	pen := textPenalty * math.Sqrt(hiddenLoss(d.PixelLossRate, d.TextDamage))
	return clampRating(base - pen)
}

func clampRating(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 10 {
		return 10
	}
	return v
}

// BuildScreenshots renders nPages corpus pages (cropped study viewports
// of viewH pixels for tractability), applies each condition's synthetic
// loss (vertical runs, the shape lost frames leave), interpolates where
// the condition says so, and measures damage.
func BuildScreenshots(nPages, viewH int, seed int64) []Screenshot {
	refs := corpus.Pages()
	if nPages > len(refs) {
		nPages = len(refs)
	}
	rng := rand.New(rand.NewSource(seed))
	var shots []Screenshot
	for i := 0; i < nPages; i++ {
		rendered := webrender.Render(corpus.Generate(refs[i], 0))
		img := rendered.Image.Crop(viewH)
		for _, lr := range LossRates {
			for _, useInterp := range []bool{false, true} {
				damaged, missing := interp.SyntheticLoss(img, lr, 40, rng)
				if useInterp {
					interp.Interpolate(damaged, missing)
				}
				rep := interp.Damage(img, damaged, missing, rendered.TextRow)
				shots = append(shots, Screenshot{
					PageIdx: i,
					Cond:    Condition{LossRate: lr, Interp: useInterp},
					Damage:  rep,
				})
			}
		}
	}
	return shots
}

// StudyResult aggregates the simulated panel.
type StudyResult struct {
	// MediansContent[cond] and MediansText[cond] hold the per-page median
	// ratings (one value per page) for each condition.
	MediansContent map[Condition][]float64
	MediansText    map[Condition][]float64
	TotalRatings   int
}

// Run simulates the panel: participants are assigned random screenshots
// (each ends up with >= MinRatingsPerShot ratings as in the paper), rate
// through the perception model plus personal noise, and medians are
// taken per screenshot.
func Run(shots []Screenshot, participants int, seed int64) *StudyResult {
	rng := rand.New(rand.NewSource(seed))
	perShotContent := make([][]float64, len(shots))
	perShotText := make([][]float64, len(shots))

	total := 0
	// Round-robin assignment guarantees coverage; random order per user.
	shotIdx := rng.Perm(len(shots))
	cursor := 0
	for u := 0; u < participants; u++ {
		// Personal bias and noisiness.
		bias := rng.NormFloat64() * 0.5
		noise := 0.6 + 0.4*rng.Float64()
		for k := 0; k < RatingsPerUser; k++ {
			si := shotIdx[cursor%len(shotIdx)]
			cursor++
			s := shots[si]
			rc := clampRating(RateContent(s.Damage) + bias + noise*rng.NormFloat64())
			rt := clampRating(RateText(s.Damage) + bias + noise*rng.NormFloat64())
			perShotContent[si] = append(perShotContent[si], rc)
			perShotText[si] = append(perShotText[si], rt)
			total++
		}
	}

	res := &StudyResult{
		MediansContent: make(map[Condition][]float64),
		MediansText:    make(map[Condition][]float64),
		TotalRatings:   total,
	}
	for i, s := range shots {
		if len(perShotContent[i]) == 0 {
			continue
		}
		res.MediansContent[s.Cond] = append(res.MediansContent[s.Cond],
			stats.Median(perShotContent[i]))
		res.MediansText[s.Cond] = append(res.MediansText[s.Cond],
			stats.Median(perShotText[i]))
	}
	return res
}

// MinRatingsSatisfied checks the paper's "averaging at least 7 ratings
// per screenshot" property for the given study size.
func MinRatingsSatisfied(nShots, participants int) bool {
	return participants*RatingsPerUser/nShots >= MinRatingsPerShot
}

// ConditionLabel formats a condition the way the harness prints Figure 5.
func ConditionLabel(c Condition) string {
	mode := "raw"
	if c.Interp {
		mode = "interp"
	}
	return fmt.Sprintf("%.0f%%/%s", c.LossRate*100, mode)
}
