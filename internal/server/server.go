// Package server implements the SONIC server (§3.1): it accepts webpage
// requests over the SMS uplink, renders and encodes simplified webpages
// (caching them), picks the FM transmitter that covers the requesting
// user's location, schedules broadcasts, and preemptively pushes the most
// popular pages of the region. Transmitters are remote machines: the
// server feeds them page bundles over a TCP control link (see
// transport.go), mirroring the paper's "central SONIC server ... informs
// the respective transmitters".
//
// The request path is built for fleet scale: transmitter routing goes
// through an immutable spatial index (internal/routing) swapped
// copy-on-write, per-transmitter queues are striped across lock shards
// (shard.go), and an optional batched admission stage (admit.go,
// internal/admission) coalesces identical requests before they render.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sonic/internal/admission"
	"sonic/internal/artifact"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/imagecodec"
	"sonic/internal/routing"
	"sonic/internal/singleflight"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
	"sonic/internal/webrender"
)

// Transmitter describes one FM station the server can feed.
type Transmitter struct {
	ID      string
	FreqMHz float64
	// ExtraFreqsMHz lists additional frequencies the station broadcasts
	// on simultaneously — the paper's multi-frequency mode ("Multiple
	// frequencies can be used to increase the rate", §1/§4: 20 and
	// 40 kbps). Each frequency drains the same queue in parallel, so
	// aggregate throughput scales with FrequencyCount.
	ExtraFreqsMHz []float64
	Lat, Lon      float64
	RadiusKm      float64
}

// FrequencyCount returns how many parallel broadcast channels the
// station runs (at least 1).
func (t Transmitter) FrequencyCount() int {
	return 1 + len(t.ExtraFreqsMHz)
}

// Covers reports whether the transmitter reaches the coordinates.
func (t Transmitter) Covers(lat, lon float64) bool {
	return haversineKm(t.Lat, t.Lon, lat, lon) <= t.RadiusKm
}

// haversineKm returns the great-circle distance between two points.
func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	return routing.DistanceKm(lat1, lon1, lat2, lon2)
}

// queuedPage is one pending broadcast. Count and Traces carry every
// coalesced request riding on the single broadcast: N users asking for
// the page get N lifecycle traces stamped off one queue entry.
type queuedPage struct {
	URL      string
	PageID   uint16
	Bundle   core.Bundle
	Bytes    int
	EffHour  int
	Enqueued time.Time
	Count    int
	Traces   []*telemetry.Trace
}

// Config tunes the server.
type Config struct {
	Number  string // the SONIC SMS number users text
	Quality int    // SIC quality for rendered pages (paper: 10)
	// PageTTL is the expiry the server stamps on broadcast pages (§3.1).
	PageTTL time.Duration
	// Epoch anchors simulation time to corpus hour 0.
	Epoch time.Time
	// Workers bounds the worker pool the SIC encoder uses when rendering
	// pages. 0 means GOMAXPROCS; 1 forces the serial path. The encoded
	// bitstream is identical for every value.
	Workers int
	// RenderWorkers bounds how many cache-miss renders run at once across
	// RenderPage/EnqueuePage/PushPopular callers. 0 means GOMAXPROCS.
	RenderWorkers int
	// RenderCachePages caps the render LRU (entries). 0 means
	// DefaultRenderCachePages; negative means unbounded.
	RenderCachePages int
	// Shards is the number of lock stripes the per-transmitter queues
	// spread across; queue work on one stripe never contends with
	// another. 0 means DefaultShards.
	Shards int
	// ArtifactCacheBytes caps the fleet-wide content-addressed artifact
	// cache (blob -> FEC stream -> modulated audio; see
	// internal/artifact). 0 means artifact.DefaultMaxBytes; negative
	// means unbounded.
	ArtifactCacheBytes int64
	// Admission configures the batched SMS admission stage (see
	// internal/admission). Admission.Enabled switches HandleSMS from
	// synchronous render+enqueue onto the batching path; the default
	// (off) keeps the original per-request behavior.
	Admission admission.Config
}

// DefaultRenderCachePages is the render-cache capacity when
// Config.RenderCachePages is 0. It comfortably holds the whole corpus
// (corpus.NumSites sites × a handful of pages each) while bounding what
// ad-hoc URL traffic can pin in memory.
const DefaultRenderCachePages = 256

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Number:  "+92300SONIC",
		Quality: 10,
		PageTTL: 24 * time.Hour,
		Epoch:   time.Unix(0, 0),
	}
}

// topology is the immutable fleet snapshot: the routing index plus the
// transmitter records it resolves into. Readers Load it lock-free;
// AddTransmitter builds a fresh snapshot and swaps the pointer.
type topology struct {
	idx  *routing.Index
	byID map[string]Transmitter
	list []Transmitter
}

// Server is the central SONIC server.
type Server struct {
	cfg      Config
	pipeline *core.Pipeline

	// refs indexes the corpus by URL once at construction so RenderPage
	// resolves a PageRef in O(1) instead of scanning corpus.Pages().
	refs map[string]corpus.PageRef

	// cache and flight live outside every queue lock: render misses must
	// not block SMS intake or queue ops, and flight coalesces concurrent
	// misses on one URL into a single render.
	cache     *renderCache
	flight    singleflight.Group
	renderSem chan struct{} // bounds concurrent miss renders
	inflight  atomic.Int64  // renders currently executing (gauge feed)

	// chain is the fleet-wide content-addressed artifact cache: the
	// downstream stages (marshaled blob, FEC stream, modulated audio)
	// any tower drain resolves through, each computed once fleet-wide.
	chain *artifact.Chain

	// topo is the copy-on-write fleet snapshot; topoMu serializes
	// writers only. transmitterFor never takes a lock.
	topo   atomic.Pointer[topology]
	topoMu sync.Mutex

	// shards stripe the per-transmitter queue state (see shard.go).
	shards []*shard

	idMu       sync.Mutex
	nextPageID uint16
	pageIDs    map[string]uint16

	// admit is the batching admission stage, nil unless
	// Config.Admission.Enabled.
	admit *admission.Queue

	// bundleBytes/bundleCount feed the running-mean marshaled page size
	// the async admission ack uses to estimate airtime without rendering.
	bundleBytes atomic.Int64
	bundleCount atomic.Int64

	// lastNowNs is the most recent caller-supplied timestamp (HandleSMS /
	// EnqueuePage / PushPopular), advanced monotonically with a CAS so an
	// out-of-order caller cannot drag it backwards. Dequeue has no time
	// parameter, so the lifecycle on-air stamps and queue-age gauges read
	// this to stay in the caller's clock domain (wall time live,
	// simulation time in tests and sims).
	lastNowNs atomic.Int64

	// Telemetry (nil handles = off; see internal/telemetry).
	tel          *telemetry.Registry
	lc           *telemetry.Lifecycle
	mRequests    *telemetry.Counter // server_sms_requests_total
	mReplies     *telemetry.Counter // server_sms_replies_total
	mBadRequests *telemetry.Counter // server_sms_bad_requests_total
	mNoCoverage  *telemetry.Counter // server_no_coverage_total
	mCacheHits   *telemetry.Counter // server_render_cache_hits_total
	mCacheMisses *telemetry.Counter // server_render_cache_misses_total
	mCoalesced   *telemetry.Counter // server_render_coalesced_total
	mEnqueued    *telemetry.Counter // server_pages_enqueued_total
	mDequeued    *telemetry.Counter // server_pages_dequeued_total
	mAttached    *telemetry.Counter // server_enqueue_coalesced_total
	gCacheSize   *telemetry.Gauge   // server_render_cache_size
	gInflight    *telemetry.Gauge   // server_render_inflight
}

// Instrument registers the server's metric families on reg and starts
// recording: SMS intake and reply counters, render-cache hit/miss
// counters, a server.render_page span (the render-latency histogram),
// a server.handle_sms span (the SMS round-trip histogram), and per-
// transmitter queue depth and age gauges (server_queue_depth_pages,
// server_queue_depth_bytes, server_queue_age_seconds, all {tx=...}).
// With admission enabled the admission stage's families register too.
// If a request lifecycle tracker is installed on reg (see
// telemetry.NewLifecycle), the server also stamps every SMS request
// through received → admitted → render → enqueued → on-air. Call it
// once at setup, before the server starts handling traffic.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.tel = reg
	s.lc = reg.Lifecycle()
	s.mRequests = reg.Counter("server_sms_requests_total")
	s.mReplies = reg.Counter("server_sms_replies_total")
	s.mBadRequests = reg.Counter("server_sms_bad_requests_total")
	s.mNoCoverage = reg.Counter("server_no_coverage_total")
	s.mCacheHits = reg.Counter("server_render_cache_hits_total")
	s.mCacheMisses = reg.Counter("server_render_cache_misses_total")
	s.mCoalesced = reg.Counter("server_render_coalesced_total")
	s.mEnqueued = reg.Counter("server_pages_enqueued_total")
	s.mDequeued = reg.Counter("server_pages_dequeued_total")
	s.mAttached = reg.Counter("server_enqueue_coalesced_total")
	s.gCacheSize = reg.Gauge("server_render_cache_size")
	s.gInflight = reg.Gauge("server_render_inflight")
	s.gCacheSize.Set(float64(s.cache.len()))
	s.admit.Instrument(reg)
	s.chain.Instrument(reg)
}

// recordQueueDepth refreshes a transmitter's queue depth and age
// gauges; callers hold sh.mu. Queue age is how long the head page has
// waited, measured against the last caller-supplied timestamp. The
// byte and page counts are O(1) reads off the towerQueue accounting.
func (s *Server) recordQueueDepth(sh *shard, txID string) {
	if s.tel == nil {
		return
	}
	pages, bytes := 0, 0
	age := 0.0
	if tq := sh.queues[txID]; tq != nil {
		pages = len(tq.pages)
		bytes = tq.bytes
		if len(tq.pages) > 0 {
			if d := s.lastNow().Sub(tq.pages[0].Enqueued); d > 0 {
				age = d.Seconds()
			}
		}
	}
	s.tel.Gauge("server_queue_depth_pages", "tx", txID).Set(float64(pages))
	s.tel.Gauge("server_queue_depth_bytes", "tx", txID).Set(float64(bytes))
	s.tel.Gauge("server_queue_age_seconds", "tx", txID).Set(age)
}

// noteNow advances the server's view of the caller clock (monotonic
// CAS; safe from any goroutine, no lock required).
func (s *Server) noteNow(now time.Time) {
	ns := now.UnixNano()
	for {
		cur := s.lastNowNs.Load()
		if ns <= cur || s.lastNowNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// lastNow returns the most recent caller-supplied timestamp.
func (s *Server) lastNow() time.Time {
	return time.Unix(0, s.lastNowNs.Load())
}

// New builds a server with the given transmission pipeline.
func New(cfg Config, pipeline *core.Pipeline) *Server {
	refs := make(map[string]corpus.PageRef)
	for _, ref := range corpus.Pages() {
		refs[ref.URL] = ref
	}
	capacity := cfg.RenderCachePages
	if capacity == 0 {
		capacity = DefaultRenderCachePages
	}
	workers := cfg.RenderWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nShards := cfg.Shards
	if nShards <= 0 {
		nShards = DefaultShards
	}
	// The raster stage reads webrender's package-wide knob (RenderCropped
	// has no per-call worker parameter); thread the config through so the
	// photo lerp rows honor the same Workers setting as the encoder. The
	// output is byte-identical at any count.
	webrender.SetWorkers(cfg.Workers)
	s := &Server{
		cfg:       cfg,
		pipeline:  pipeline,
		refs:      refs,
		cache:     newRenderCache(capacity),
		renderSem: make(chan struct{}, workers),
		chain:     artifact.NewChain(pipeline, cfg.ArtifactCacheBytes),
		shards:    make([]*shard, nShards),
		pageIDs:   make(map[string]uint16),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			queues: make(map[string]*towerQueue),
			demand: make(map[string]map[string]float64),
		}
	}
	s.topo.Store(&topology{idx: routing.Build(nil), byID: map[string]Transmitter{}})
	if cfg.Admission.Enabled {
		s.admit = admission.New(cfg.Admission, s.admitBatch)
	}
	return s
}

// AddTransmitter registers a station: the fleet snapshot (including its
// spatial index) is rebuilt and swapped copy-on-write, so in-flight
// lookups keep reading a consistent topology.
func (s *Server) AddTransmitter(t Transmitter) {
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	old := s.topo.Load()
	list := append(append([]Transmitter(nil), old.list...), t)
	byID := make(map[string]Transmitter, len(list))
	towers := make([]routing.Tower, 0, len(list))
	for _, tx := range list {
		byID[tx.ID] = tx
		towers = append(towers, routing.Tower{ID: tx.ID, Lat: tx.Lat, Lon: tx.Lon, RadiusKm: tx.RadiusKm})
	}
	s.topo.Store(&topology{idx: routing.Build(towers), byID: byID, list: list})
}

// Transmitters returns the registered stations.
func (s *Server) Transmitters() []Transmitter {
	return append([]Transmitter(nil), s.topo.Load().list...)
}

// transmitterFor picks the station covering the location via the
// spatial index: the closest covering tower, exact ties broken on the
// smaller ID — deterministic regardless of registration order. The
// lookup is lock-free and O(1) in fleet size.
func (s *Server) transmitterFor(lat, lon float64) (Transmitter, bool) {
	topo := s.topo.Load()
	t, _, ok := topo.idx.Lookup(lat, lon)
	if !ok {
		return Transmitter{}, false
	}
	return topo.byID[t.ID], true
}

// frequencyCount returns a registered station's parallel channel count
// (1 for unknown stations).
func (s *Server) frequencyCount(txID string) int {
	if tx, ok := s.topo.Load().byID[txID]; ok {
		return tx.FrequencyCount()
	}
	return 1
}

// hourAt converts simulation time to a corpus hour.
func (s *Server) hourAt(now time.Time) int {
	return int(now.Sub(s.cfg.Epoch) / time.Hour)
}

// pageIDFor assigns a stable 16-bit id per URL.
func (s *Server) pageIDFor(url string) uint16 {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	if id, ok := s.pageIDs[url]; ok {
		return id
	}
	s.nextPageID++
	s.pageIDs[url] = s.nextPageID
	return s.nextPageID
}

// RenderPage produces (or returns cached) the encoded bundle for a URL at
// the current simulation time. It mirrors §3.1: "either from its cache,
// e.g., if recently requested by another user, or by directly accessing
// it".
//
// Concurrency: the cache lookup is O(1) and lock-light; a miss is
// coalesced per (url, effective hour) so N concurrent requests for one
// cold URL render exactly once, and the render itself runs on a bounded
// worker pool without holding any queue lock.
func (s *Server) RenderPage(url string, now time.Time) (core.Bundle, error) {
	hour := s.hourAt(now)
	ref := s.refFor(url)
	eff := corpus.EffectiveHour(ref, hour)

	if b, ok := s.cache.get(url, eff); ok {
		s.noteCacheHit()
		return b, nil
	}

	// The key carries the effective hour so a stale entry never satisfies
	// a request from a later content epoch.
	key := fmt.Sprintf("%s@%d", url, eff)
	v, err, leader := s.flight.Do(key, func() (any, error) {
		// Re-check under the flight: an earlier leader may have filled the
		// cache between our miss and this call starting.
		if b, ok := s.cache.get(url, eff); ok {
			s.noteCacheHit()
			return b, nil
		}
		s.mCacheMisses.Inc()
		return s.renderMiss(url, ref, hour, eff)
	})
	if err != nil {
		return core.Bundle{}, err
	}
	if !leader {
		// Followers piggybacked on the leader's render: for cache
		// accounting that is a hit (§3.1 "recently requested by another
		// user"), tracked separately so the coalescing rate is visible.
		s.mCoalesced.Inc()
		s.noteCacheHit()
	}
	return v.(core.Bundle), nil
}

// renderMiss does the expensive miss work: generate → raster → SIC
// encode → clickmap, each as a child span of server.render_page. It runs
// on the bounded render pool with no queue lock held.
func (s *Server) renderMiss(url string, ref corpus.PageRef, hour, eff int) (core.Bundle, error) {
	s.renderSem <- struct{}{}
	defer func() { <-s.renderSem }()
	s.gInflight.Set(float64(s.inflight.Add(1)))
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()

	sp := s.tel.StartSpan("server.render_page")
	defer sp.End()

	genSp := sp.StartChild("generate")
	page := corpus.Generate(ref, hour)
	genSp.End()

	rasterSp := sp.StartChild("raster")
	rendered := webrender.RenderCropped(page, imagecodec.MaxPageHeight)
	rasterSp.End()

	encSp := sp.StartChild("encode_sic")
	enc, err := imagecodec.EncodeSICWorkers(rendered.Image, s.cfg.Quality, s.cfg.Workers)
	encSp.End()
	if err != nil {
		rendered.Release()
		return core.Bundle{}, fmt.Errorf("server: encode %s: %w", url, err)
	}

	cmSp := sp.StartChild("clickmap")
	cm, err := rendered.Clicks.MarshalJSON()
	cmSp.End()
	w, h := rendered.Image.W, rendered.Image.H
	rendered.Release()
	if err != nil {
		return core.Bundle{}, err
	}

	b := core.Bundle{Image: enc, ClickMap: cm}
	s.cache.put(url, renderedPage{bundle: b, effectiveHour: eff, width: w, height: h})
	s.gCacheSize.Set(float64(s.cache.len()))
	return b, nil
}

// noteCacheHit bumps the render-cache hit counter.
func (s *Server) noteCacheHit() {
	s.mCacheHits.Inc()
}

// refFor maps any URL onto a corpus PageRef via the construction-time
// index (known corpus pages keep their rank; unknown URLs become ad-hoc
// unranked pages).
func (s *Server) refFor(url string) corpus.PageRef {
	if ref, ok := s.refs[url]; ok {
		return ref
	}
	return corpus.PageRef{URL: url, Site: url, Rank: corpus.NumSites, Internal: true}
}

// FlushRenderCache drops every cached render. Benchmarks use it to
// measure the cold path; operators could use it to force a re-render.
func (s *Server) FlushRenderCache() {
	s.cache.flush()
	s.gCacheSize.Set(0)
}

// RenderCacheLen reports how many rendered pages are cached.
func (s *Server) RenderCacheLen() int { return s.cache.len() }

// Errors from request handling.
var (
	ErrNoCoverage = errors.New("server: no transmitter covers the location")
)

// EnqueuePage renders a URL and appends it to the covering transmitter's
// broadcast queue. It returns the estimated time until the page has been
// fully broadcast (the ETA included in the SMS ack). With lifecycle
// tracing on, the call opens its own trace (an API request, admitted on
// arrival); SMS requests flow through HandleSMS, which traces from the
// actual SMS delivery instead.
func (s *Server) EnqueuePage(url string, lat, lon float64, now time.Time) (time.Duration, error) {
	tr := s.lc.BeginAt(url, "api", now)
	tr.StampAt(telemetry.StageAdmitted, now)
	return s.enqueueTraced(url, lat, lon, now, tr)
}

// enqueueTraced is EnqueuePage with the caller's lifecycle trace: stamps
// render_start/render_done around the (possibly cached) render and
// enqueued on the queue append, aborting the trace on failure. The
// render is measured on the wall clock and projected into the caller's
// clock domain, so a simulated timeline still shows the real render
// cost. Unlike the admission path, this synchronous path always appends
// its own queue entry — one call, one broadcast.
func (s *Server) enqueueTraced(url string, lat, lon float64, now time.Time, tr *telemetry.Trace) (time.Duration, error) {
	tx, ok := s.transmitterFor(lat, lon)
	if !ok {
		s.mNoCoverage.Inc()
		tr.Abort(now, "no coverage")
		return 0, ErrNoCoverage
	}
	tr.StampAt(telemetry.StageRenderStart, now)
	renderT0 := time.Now()
	b, err := s.RenderPage(url, now)
	if err != nil {
		tr.Abort(now, "render: "+err.Error())
		return 0, err
	}
	rendered := now.Add(time.Since(renderT0))
	tr.StampAt(telemetry.StageRenderDone, rendered)
	blobLen := len(core.MarshalBundle(b))
	s.noteBundleBytes(blobLen)
	eff := corpus.EffectiveHour(s.refFor(url), s.hourAt(now))
	page := &queuedPage{
		URL:      url,
		PageID:   s.pageIDFor(url),
		Bundle:   b,
		Bytes:    blobLen,
		EffHour:  eff,
		Enqueued: now,
		Count:    1,
	}
	if tr != nil {
		page.Traces = []*telemetry.Trace{tr}
	}

	sh := s.shardFor(tx.ID)
	sh.mu.Lock()
	s.noteNow(now)
	tq := sh.queue(tx.ID)
	// Queue delay = airtime of everything ahead plus this page, divided
	// across the station's parallel frequencies.
	pending := tq.bytes
	tq.push(page)
	sh.bumpDemand(tx.ID, url, 1)
	s.mEnqueued.Inc()
	s.recordQueueDepth(sh, tx.ID)
	sh.mu.Unlock()
	eta := s.pipeline.AirtimeSeconds(pending+blobLen) / float64(tx.FrequencyCount())
	tr.StampAt(telemetry.StageEnqueued, rendered)
	return time.Duration(eta * float64(time.Second)), nil
}

// DequeuePage pops the next page to broadcast on a transmitter at the
// server's last observed caller timestamp. See DequeuePageAt.
func (s *Server) DequeuePage(transmitterID string) (url string, pageID uint16, b core.Bundle, ok bool) {
	return s.DequeuePageAt(transmitterID, s.lastNow())
}

// DequeuePageAt pops the next page to broadcast on a transmitter. With
// lifecycle tracing on, dequeue is the handoff to the transmitter, so
// every trace coalesced onto the page is stamped on_air_start at the
// given timestamp and on_air_done at the projected end of its airtime
// (the same channel model the SMS-ack ETA uses). Clock-driven
// simulations pass their own timeline; DequeuePage uses the last caller
// timestamp the server observed.
func (s *Server) DequeuePageAt(transmitterID string, at time.Time) (url string, pageID uint16, b core.Bundle, ok bool) {
	head := s.dequeueHead(transmitterID, at)
	if head == nil {
		return "", 0, core.Bundle{}, false
	}
	return head.URL, head.PageID, head.Bundle, true
}

// dequeueHead pops a transmitter's head page and stamps any lifecycle
// traces riding on it — the shared core of DequeuePageAt and the fleet
// audio drain (DequeueAudioAt), which also needs the page's effective
// hour for artifact addressing.
func (s *Server) dequeueHead(transmitterID string, at time.Time) *queuedPage {
	sh := s.shardFor(transmitterID)
	sh.mu.Lock()
	var head *queuedPage
	if tq := sh.queues[transmitterID]; tq != nil {
		head, _ = tq.pop()
	}
	if head == nil {
		sh.mu.Unlock()
		return nil
	}
	s.mDequeued.Inc()
	s.recordQueueDepth(sh, transmitterID)
	sh.mu.Unlock()
	if len(head.Traces) > 0 {
		if at.Before(head.Enqueued) {
			at = head.Enqueued
		}
		airSec := s.pipeline.AirtimeSeconds(head.Bytes) / float64(s.frequencyCount(transmitterID))
		done := at.Add(time.Duration(airSec * float64(time.Second)))
		for _, tr := range head.Traces {
			tr.StampAt(telemetry.StageOnAirStart, at)
			tr.StampAt(telemetry.StageOnAirDone, done)
		}
	}
	return head
}

// QueueDepth returns (pages, bytes) pending for a transmitter in O(1).
func (s *Server) QueueDepth(transmitterID string) (int, int) {
	sh := s.shardFor(transmitterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tq := sh.queues[transmitterID]
	if tq == nil {
		return 0, 0
	}
	return len(tq.pages), tq.bytes
}

// PushPopular preemptively enqueues the top-n pages on every
// transmitter (§3.1: "popular news sites can be pushed early in the
// morning"). Ranking is demand-weighted per tower: measured admission
// counts (TowerDemand) dominate, static corpus popularity is the
// cold-start fallback and tiebreaker, so the push tracks what each
// region actually requests. Pages already queued on a transmitter are
// skipped. Towers run concurrently on a bounded pool — each tower's
// enqueue order stays its ranked order, so per-tower queue contents are
// identical to the old serial walk — and renders plus bundle
// marshalling dedup fleet-wide through the artifact chain with no shard
// lock held: a page popular on 64 towers renders and marshals once.
func (s *Server) PushPopular(n int, now time.Time) error {
	towers := s.Transmitters()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(towers) {
		workers = len(towers)
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, tx := range towers {
		wg.Add(1)
		go func(tx Transmitter) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := s.pushPopularTower(tx, n, now); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(tx)
	}
	wg.Wait()
	return firstErr
}

// pushPopularTower is one tower's share of PushPopular: rank, skip
// already-queued pages, render+marshal via the fleet artifact chain,
// enqueue in ranked order.
func (s *Server) pushPopularTower(tx Transmitter, n int, now time.Time) error {
	ranked := rankByDemand(corpus.Pages(), s.TowerDemand(tx.ID))
	m := n
	if m > len(ranked) {
		m = len(ranked)
	}
	sh := s.shardFor(tx.ID)
	queued := map[string]bool{}
	sh.mu.Lock()
	s.noteNow(now)
	if tq := sh.queues[tx.ID]; tq != nil {
		for _, q := range tq.pages {
			queued[q.URL] = true
		}
	}
	sh.mu.Unlock()
	for _, ref := range ranked[:m] {
		if queued[ref.URL] {
			continue
		}
		b, err := s.RenderPage(ref.URL, now)
		if err != nil {
			return err
		}
		eff := corpus.EffectiveHour(ref, s.hourAt(now))
		blob, err := s.chain.Blob(s.chain.Key(ref.URL, eff, s.pageIDFor(ref.URL)), func() (core.Bundle, error) {
			return b, nil
		})
		if err != nil {
			return err
		}
		s.noteBundleBytes(len(blob))
		page := &queuedPage{
			URL:      ref.URL,
			PageID:   s.pageIDFor(ref.URL),
			Bundle:   b,
			Bytes:    len(blob),
			EffHour:  eff,
			Enqueued: now,
		}
		sh.mu.Lock()
		sh.queue(tx.ID).push(page)
		s.mEnqueued.Inc()
		s.recordQueueDepth(sh, tx.ID)
		sh.mu.Unlock()
	}
	return nil
}

// HandleSMS is the uplink entry point: parse the request, admit or
// enqueue the page, and reply with an ack (or error) through the SMSC.
// With lifecycle tracing on, the request's trace opens at the SMS
// delivery timestamp ("received") and is stamped "admitted" once it is
// accepted. With admission enabled the reply is immediate (the render
// happens when the batch flushes) and a saturated shard answers BUSY
// with a retry-after hint instead of blocking the handler.
func (s *Server) HandleSMS(smsc *sms.SMSC) sms.Handler {
	return func(m sms.Message) {
		sp := s.tel.StartSpan("server.handle_sms")
		defer sp.End()
		s.mRequests.Inc()
		s.noteNow(m.DeliverAt)
		req, err := sms.ParseRequest(m.Body)
		if err != nil {
			s.mBadRequests.Inc()
			s.mReplies.Inc()
			_ = smsc.Submit(m.DeliverAt, s.cfg.Number, m.From, "ERR bad request")
			return
		}
		tr := s.lc.BeginAt(req.URL, m.From, m.DeliverAt)
		var eta time.Duration
		if s.admit != nil {
			eta, err = s.admitTraced(req.URL, req.Lat, req.Lon, m.DeliverAt, tr)
		} else {
			tr.StampAt(telemetry.StageAdmitted, m.DeliverAt)
			eta, err = s.enqueueTraced(req.URL, req.Lat, req.Lon, m.DeliverAt, tr)
		}
		if err != nil {
			s.mReplies.Inc()
			var sat *admission.SaturatedError
			if errors.As(err, &sat) {
				_ = smsc.Submit(m.DeliverAt, s.cfg.Number, m.From, sms.FormatBusy(req.URL, sat.RetryAfter))
			} else {
				_ = smsc.Submit(m.DeliverAt, s.cfg.Number, m.From, "ERR no coverage")
			}
			return
		}
		s.mReplies.Inc()
		_ = smsc.Submit(m.DeliverAt, s.cfg.Number, m.From, sms.FormatAck(req.URL, eta))
	}
}

// PageTTL exposes the configured expiry for broadcast metadata.
func (s *Server) PageTTL() time.Duration { return s.cfg.PageTTL }
