package server

import (
	"time"

	"sonic/internal/admission"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/telemetry"
)

// The batched admission path. HandleSMS (and Admit, its API twin) hands
// requests to the admission stage instead of rendering inline; the
// stage coalesces identical (URL, tower, effective-hour) requests and
// flushes batches into admitBatch, which renders once and queues once
// for the whole herd. The caller's ack carries an estimated ETA built
// from O(1) queue byte accounting plus the running mean bundle size —
// no render on the reply path.

// defaultBundleEstimate seeds the ETA estimate before any page has been
// marshaled (roughly a mid-sized SIC bundle).
const defaultBundleEstimate = 12000

// noteBundleBytes feeds the running mean of marshaled bundle sizes.
func (s *Server) noteBundleBytes(n int) {
	s.bundleBytes.Add(int64(n))
	s.bundleCount.Add(1)
}

// meanBundleBytes returns the running mean marshaled bundle size.
func (s *Server) meanBundleBytes() int {
	c := s.bundleCount.Load()
	if c == 0 {
		return defaultBundleEstimate
	}
	return int(s.bundleBytes.Load() / c)
}

// estimateETA approximates time-to-broadcast for a page admitted on tx:
// airtime of the bytes already queued plus one mean-sized bundle,
// divided across the station's parallel frequencies.
func (s *Server) estimateETA(tx Transmitter) time.Duration {
	sh := s.shardFor(tx.ID)
	sh.mu.Lock()
	pending := 0
	if tq := sh.queues[tx.ID]; tq != nil {
		pending = tq.bytes
	}
	sh.mu.Unlock()
	sec := s.pipeline.AirtimeSeconds(pending+s.meanBundleBytes()) / float64(tx.FrequencyCount())
	return time.Duration(sec * float64(time.Second))
}

// Admit routes a request through the batched admission stage: O(1),
// never renders, returns an estimated ETA. A saturated shard returns a
// *admission.SaturatedError (errors.Is admission.ErrSaturated) with a
// retry-after hint. Without admission enabled it falls back to the
// synchronous EnqueuePage path.
func (s *Server) Admit(url string, lat, lon float64, now time.Time) (time.Duration, error) {
	tr := s.lc.BeginAt(url, "api", now)
	if s.admit == nil {
		tr.StampAt(telemetry.StageAdmitted, now)
		return s.enqueueTraced(url, lat, lon, now, tr)
	}
	return s.admitTraced(url, lat, lon, now, tr)
}

// admitTraced is Admit with the caller's lifecycle trace: routes the
// tower, submits to the admission stage, and stamps admitted on accept
// or aborts the trace on reject.
func (s *Server) admitTraced(url string, lat, lon float64, now time.Time, tr *telemetry.Trace) (time.Duration, error) {
	tx, ok := s.transmitterFor(lat, lon)
	if !ok {
		s.mNoCoverage.Inc()
		tr.Abort(now, "no coverage")
		return 0, ErrNoCoverage
	}
	s.noteNow(now)
	eff := corpus.EffectiveHour(s.refFor(url), s.hourAt(now))
	if _, err := s.admit.Submit(admission.Request{
		URL: url, Tower: tx.ID, EffHour: eff, Now: now, Trace: tr,
	}); err != nil {
		tr.Abort(now, "admission saturated")
		return 0, err
	}
	tr.StampAt(telemetry.StageAdmitted, now)
	return s.estimateETA(tx), nil
}

// admitBatch is the admission sink: one render + one queue entry for
// every coalesced batch. It runs on an admission flush worker (or a
// Flush caller) with no shard lock held during the render. If the
// page is already waiting on the tower at the same content epoch, the
// batch attaches to the queued entry — the second stage of
// whole-request coalescing — instead of scheduling a duplicate
// broadcast.
func (s *Server) admitBatch(b admission.Batch) {
	tx, ok := s.topo.Load().byID[b.Tower]
	if !ok {
		for _, tr := range b.Traces {
			tr.Abort(b.Now, "transmitter removed")
		}
		return
	}
	for _, tr := range b.Traces {
		tr.StampAt(telemetry.StageRenderStart, b.Now)
	}
	renderT0 := time.Now()
	bundle, err := s.RenderPage(b.URL, b.Now)
	if err != nil {
		for _, tr := range b.Traces {
			tr.Abort(b.Now, "render: "+err.Error())
		}
		return
	}
	// Wall-clock render cost projected into the batch's (possibly
	// simulated) clock domain, same as the synchronous path.
	rendered := b.Now.Add(time.Since(renderT0))
	for _, tr := range b.Traces {
		tr.StampAt(telemetry.StageRenderDone, rendered)
	}
	blobLen := len(core.MarshalBundle(bundle))
	s.noteBundleBytes(blobLen)
	pageID := s.pageIDFor(b.URL)

	sh := s.shardFor(tx.ID)
	sh.mu.Lock()
	s.noteNow(b.Now)
	tq := sh.queue(tx.ID)
	if qp := tq.pending[b.URL]; qp != nil && qp.EffHour == b.EffHour {
		qp.Count += b.Count
		qp.Traces = append(qp.Traces, b.Traces...)
		s.mAttached.Inc()
	} else {
		tq.push(&queuedPage{
			URL:      b.URL,
			PageID:   pageID,
			Bundle:   bundle,
			Bytes:    blobLen,
			EffHour:  b.EffHour,
			Enqueued: b.Now,
			Count:    b.Count,
			Traces:   b.Traces,
		})
		s.mEnqueued.Inc()
	}
	sh.bumpDemand(tx.ID, b.URL, float64(b.Count))
	s.recordQueueDepth(sh, tx.ID)
	sh.mu.Unlock()
	for _, tr := range b.Traces {
		tr.StampAt(telemetry.StageEnqueued, rendered)
	}
}

// FlushAdmission synchronously drains the admission stage on the
// caller's goroutine — the deterministic hook clock-driven simulations
// use instead of the wall-clock flusher. No-op with admission off.
func (s *Server) FlushAdmission() {
	s.admit.Flush()
}

// FlushAdmissionConcurrent drains the admission stage with the shards
// spread over up to workers goroutines, so the batch sink (render +
// enqueue, already safe under the background flush workers' shard
// concurrency) can use multiple cores. The multi-core variant of
// FlushAdmission for clock-driven simulations.
func (s *Server) FlushAdmissionConcurrent(workers int) {
	s.admit.FlushConcurrent(workers)
}

// AdmissionPending reports how many accepted requests await a batch
// flush (0 with admission off).
func (s *Server) AdmissionPending() int {
	if s.admit == nil {
		return 0
	}
	return s.admit.Pending()
}

// Close releases the admission flush workers, draining anything still
// pending. Idempotent, and a no-op with admission off.
func (s *Server) Close() {
	s.admit.Close()
}
