package server

import (
	"sync"
	"testing"
	"time"

	"sonic/internal/corpus"
	"sonic/internal/telemetry"
)

// TestConcurrentServerUse hammers the server's public surface — render,
// queue churn, queue-depth reads, and registry snapshots — from many
// goroutines at once. Run under -race it proves the instrumented paths
// (including lifecycle stamping) stay data-race free.
func TestConcurrentServerUse(t *testing.T) {
	s := testServer(t)
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	s.Instrument(reg)
	now := time.Unix(0, 0)
	urls := []string{
		corpus.Pages()[0].URL,
		corpus.Pages()[1].URL,
		corpus.Pages()[2].URL,
	}
	// Prime the render cache so the concurrent phase exercises the
	// cache-hit path instead of re-rendering per goroutine.
	for _, u := range urls {
		if _, err := s.RenderPage(u, now); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				u := urls[(w+i)%len(urls)]
				if _, err := s.RenderPage(u, now); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.EnqueuePage(u, 24.87, 67.01, now); err != nil {
					t.Error(err)
					return
				}
				s.DequeuePage("khi-1")
				s.QueueDepth("khi-1")
				reg.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	wantRenders := int64(workers*20 + len(urls))
	got := snap.Counters["server_render_cache_hits_total"] +
		snap.Counters["server_render_cache_misses_total"]
	// EnqueuePage renders too (through the cache), so the total is at
	// least the direct RenderPage calls.
	if got < wantRenders {
		t.Errorf("render counter total = %d, want >= %d", got, wantRenders)
	}
	if snap.Counters["server_pages_enqueued_total"] != int64(workers*20) {
		t.Errorf("enqueued = %d, want %d", snap.Counters["server_pages_enqueued_total"], workers*20)
	}
	if requests, hits := snap.Counters["server_sms_requests_total"], snap.Counters["server_render_cache_hits_total"]; requests != 0 || hits < int64(len(urls)) {
		t.Errorf("counters = (%d, %d) inconsistent with workload", requests, hits)
	}
	// Every enqueue began a lifecycle trace and every dequeue stamped it
	// on-air; under -race this also proves trace stamping is thread-safe.
	if snap.Counters["lifecycle_requests_total"] != int64(workers*20) {
		t.Errorf("lifecycle requests = %d, want %d", snap.Counters["lifecycle_requests_total"], workers*20)
	}
}
