package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sonic/internal/admission"
	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

// admissionServer builds a server on the batched admission path with a
// synchronous-flush-only configuration (no wall-clock flusher) so tests
// control exactly when batches move.
func admissionServer(t *testing.T, acfg admission.Config) *Server {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	acfg.Enabled = true
	cfg.Admission = acfg
	s := New(cfg, p)
	s.AddTransmitter(Transmitter{
		ID: "khi-1", FreqMHz: 93.7, Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})
	s.AddTransmitter(Transmitter{
		ID: "lhe-1", FreqMHz: 95.1, Lat: 31.55, Lon: 74.34, RadiusKm: 40,
	})
	t.Cleanup(s.Close)
	return s
}

// TestAdmissionHerdRendersOnce is the coalescing acceptance test: a
// goroutine herd requesting one URL on one tower collapses to exactly
// one render and one queued broadcast, while every request keeps its
// own lifecycle trace through on-air. Run under -race this also proves
// the admission + shard locking is clean.
func TestAdmissionHerdRendersOnce(t *testing.T) {
	s := admissionServer(t, admission.Config{MaxBatch: 1 << 20})
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	s.Instrument(reg)

	const herd = 32
	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Admit(url, 24.87, 67.01, now); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s.FlushAdmission()

	snap := reg.Snapshot()
	if got := snap.Counters["server_render_cache_misses_total"]; got != 1 {
		t.Errorf("cache misses = %d, want 1 (herd must render once)", got)
	}
	if got := snap.Counters["server_pages_enqueued_total"]; got != 1 {
		t.Errorf("pages enqueued = %d, want 1", got)
	}
	if got := snap.Counters["admission_submitted_total"]; got != herd {
		t.Errorf("submitted = %d, want %d", got, herd)
	}
	if got := snap.Counters["admission_coalesced_total"]; got != herd-1 {
		t.Errorf("coalesced = %d, want %d", got, herd-1)
	}
	if pages, _ := s.QueueDepth("khi-1"); pages != 1 {
		t.Errorf("queue depth = %d, want 1", pages)
	}

	// One dequeue puts the whole herd on air: every trace is stamped.
	if _, _, _, ok := s.DequeuePageAt("khi-1", now.Add(time.Minute)); !ok {
		t.Fatal("dequeue failed")
	}
	snap = reg.Snapshot()
	if got := snap.Counters["lifecycle_on_air_total"]; got != herd {
		t.Errorf("on-air traces = %d, want %d", got, herd)
	}
	if got := snap.Histograms["request_to_on_air_seconds"].Count; got != herd {
		t.Errorf("request_to_on_air observations = %d, want %d", got, herd)
	}
}

// TestAdmissionAttachToPending covers the second coalescing stage: a
// batch whose page is already waiting on the tower attaches to the
// queued entry instead of scheduling a duplicate broadcast.
func TestAdmissionAttachToPending(t *testing.T) {
	s := admissionServer(t, admission.Config{MaxBatch: 1 << 20})
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	s.Instrument(reg)

	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL
	if _, err := s.Admit(url, 24.87, 67.01, now); err != nil {
		t.Fatal(err)
	}
	s.FlushAdmission()
	if _, err := s.Admit(url, 24.87, 67.01, now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	s.FlushAdmission()

	snap := reg.Snapshot()
	if got := snap.Counters["server_pages_enqueued_total"]; got != 1 {
		t.Errorf("pages enqueued = %d, want 1", got)
	}
	if got := snap.Counters["server_enqueue_coalesced_total"]; got != 1 {
		t.Errorf("queue attaches = %d, want 1", got)
	}
	if pages, _ := s.QueueDepth("khi-1"); pages != 1 {
		t.Errorf("queue depth = %d, want 1", pages)
	}
	// Both requests ride the single broadcast.
	s.DequeuePageAt("khi-1", now.Add(time.Minute))
	if got := reg.Snapshot().Counters["lifecycle_on_air_total"]; got != 2 {
		t.Errorf("on-air traces = %d, want 2", got)
	}
	// Demand recorded both requests for the carousel feedback loop.
	if got := s.TowerDemand("khi-1")[url]; got != 2 {
		t.Errorf("demand = %.0f, want 2", got)
	}
}

// TestAdmissionBackpressure saturates one admission shard with a
// goroutine herd and proves the SMSC handler path never blocks: excess
// requests get an immediate BUSY reply with the retry-after hint and
// their traces are stamped aborted. Run under -race.
func TestAdmissionBackpressure(t *testing.T) {
	const maxPending = 8
	s := admissionServer(t, admission.Config{
		Shards:     1,
		MaxBatch:   1 << 20,
		MaxPending: maxPending,
		RetryAfter: 30 * time.Second,
	})
	reg := telemetry.New()
	telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	s.Instrument(reg)

	smsc := sms.NewSMSC(time.Second, time.Second, 1)
	smsc.Register(s.cfg.Number, s.HandleSMS(smsc))
	var mu sync.Mutex
	var replies []string
	smsc.Register("+user", func(m sms.Message) {
		mu.Lock()
		replies = append(replies, m.Body)
		mu.Unlock()
	})

	// A herd of distinct URLs (no coalescing escape hatch) races into a
	// single saturated shard. Every Submit must return promptly — the
	// test deadlocks/times out if the handler ever blocks.
	const herd = 32
	t0 := time.Unix(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := corpus.Pages()[i%len(corpus.Pages())].URL
			_, err := s.Admit(url, 24.87, 67.01, t0)
			if err != nil && !errors.Is(err, admission.ErrSaturated) {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()

	snap := reg.Snapshot()
	rejected := snap.Counters["admission_rejected_total"]
	if rejected != herd-maxPending {
		t.Errorf("rejected = %d, want %d", rejected, herd-maxPending)
	}
	if got := snap.Counters["lifecycle_aborted_total"]; got != rejected {
		t.Errorf("aborted traces = %d, want %d", got, rejected)
	}

	// The SMS round trip on the saturated shard: BUSY with the hint.
	body := sms.FormatRequest(sms.Request{URL: "busy.example/", Lat: 24.87, Lon: 67.0})
	if err := smsc.Submit(t0, "+user", s.cfg.Number, body); err != nil {
		t.Fatal(err)
	}
	smsc.Advance(t0.Add(2 * time.Second)) // deliver request (server replies)
	smsc.Advance(t0.Add(4 * time.Second)) // deliver reply
	mu.Lock()
	defer mu.Unlock()
	if len(replies) != 1 {
		t.Fatalf("replies = %v", replies)
	}
	url, retry, err := sms.ParseBusy(replies[0])
	if err != nil || url != "busy.example/" || retry != 30*time.Second {
		t.Errorf("busy reply %q parsed to %q %v %v", replies[0], url, retry, err)
	}

	// Draining the shard reopens admission.
	s.FlushAdmission()
	if _, err := s.Admit("after.example/", 24.87, 67.01, t0.Add(time.Minute)); err != nil {
		t.Errorf("post-flush admit rejected: %v", err)
	}
}

// TestPushPopularTracksDemand: measured admission demand reorders the
// preemptive push per tower, while towers without measurements keep the
// static corpus ranking.
func TestPushPopularTracksDemand(t *testing.T) {
	s := admissionServer(t, admission.Config{MaxBatch: 1 << 20})
	now := time.Unix(0, 0)
	pages := corpus.Pages()
	coldURL := pages[len(pages)-1].URL // least popular corpus page

	// Karachi users hammer the cold page; Lahore stays quiet.
	for i := 0; i < 5; i++ {
		if _, err := s.Admit(coldURL, 24.87, 67.01, now); err != nil {
			t.Fatal(err)
		}
	}
	s.FlushAdmission()
	if got := s.TowerDemand("khi-1")[coldURL]; got != 5 {
		t.Fatalf("demand = %.0f, want 5", got)
	}
	// Clear the queue so the push is not deduplicated against it.
	for {
		if _, _, _, ok := s.DequeuePageAt("khi-1", now); !ok {
			break
		}
	}

	if err := s.PushPopular(1, now); err != nil {
		t.Fatal(err)
	}
	url, _, _, ok := s.DequeuePageAt("khi-1", now)
	if !ok || url != coldURL {
		t.Errorf("khi-1 push = (%q, %v), want demand-ranked %q", url, ok, coldURL)
	}
	url, _, _, ok = s.DequeuePageAt("lhe-1", now)
	if !ok || url != pages[0].URL {
		t.Errorf("lhe-1 push = (%q, %v), want corpus-ranked %q", url, ok, pages[0].URL)
	}
}
