package server

import (
	"net"
	"testing"
	"time"

	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/sms"
	"sonic/internal/telemetry"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig(), p)
	s.AddTransmitter(Transmitter{
		ID: "khi-1", FreqMHz: 93.7, Lat: 24.86, Lon: 67.00, RadiusKm: 40,
	})
	s.AddTransmitter(Transmitter{
		ID: "lhe-1", FreqMHz: 95.1, Lat: 31.55, Lon: 74.34, RadiusKm: 40,
	})
	return s
}

func TestTransmitterCoverage(t *testing.T) {
	tx := Transmitter{Lat: 24.86, Lon: 67.00, RadiusKm: 40}
	if !tx.Covers(24.90, 67.05) {
		t.Error("nearby point not covered")
	}
	if tx.Covers(31.55, 74.34) { // Lahore is ~1000 km away
		t.Error("distant point covered")
	}
}

func TestHaversineSanity(t *testing.T) {
	// Karachi to Lahore is just over 1000 km.
	d := haversineKm(24.86, 67.00, 31.55, 74.34)
	if d < 900 || d > 1200 {
		t.Errorf("karachi-lahore = %.0f km", d)
	}
	if haversineKm(10, 10, 10, 10) != 0 {
		t.Error("zero distance wrong")
	}
}

func TestRenderPageCaches(t *testing.T) {
	s := testServer(t)
	reg := telemetry.New()
	s.Instrument(reg)
	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL
	b1, err := s.RenderPage(url, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Image) == 0 || len(b1.ClickMap) == 0 {
		t.Fatal("empty bundle")
	}
	// Second render within the same content epoch must hit the cache.
	_, err = s.RenderPage(url, now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Snapshot().Counters["server_render_cache_hits_total"]; hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

func TestEnqueueAndDequeue(t *testing.T) {
	s := testServer(t)
	now := time.Unix(0, 0)
	url := corpus.Pages()[1].URL
	eta, err := s.EnqueuePage(url, 24.87, 67.01, now)
	if err != nil {
		t.Fatal(err)
	}
	if eta <= 0 || eta > time.Hour {
		t.Errorf("eta = %v", eta)
	}
	if pages, bytes := s.QueueDepth("khi-1"); pages != 1 || bytes == 0 {
		t.Errorf("queue = %d pages, %d bytes", pages, bytes)
	}
	// Second page's ETA includes the first page's airtime.
	eta2, err := s.EnqueuePage(corpus.Pages()[2].URL, 24.87, 67.01, now)
	if err != nil {
		t.Fatal(err)
	}
	if eta2 <= eta {
		t.Errorf("eta2 %v should exceed eta1 %v", eta2, eta)
	}
	gotURL, pageID, b, ok := s.DequeuePage("khi-1")
	if !ok || gotURL != url || pageID == 0 || len(b.Image) == 0 {
		t.Fatalf("dequeue: %q %d ok=%v", gotURL, pageID, ok)
	}
	// Lahore queue untouched.
	if pages, _ := s.QueueDepth("lhe-1"); pages != 0 {
		t.Error("wrong transmitter received the page")
	}
}

func TestEnqueueNoCoverage(t *testing.T) {
	s := testServer(t)
	if _, err := s.EnqueuePage("x.pk/", 0, 0, time.Unix(0, 0)); err != ErrNoCoverage {
		t.Errorf("err = %v", err)
	}
}

func TestPushPopular(t *testing.T) {
	s := testServer(t)
	now := time.Unix(0, 0)
	if err := s.PushPopular(3, now); err != nil {
		t.Fatal(err)
	}
	for _, tx := range []string{"khi-1", "lhe-1"} {
		if pages, _ := s.QueueDepth(tx); pages != 3 {
			t.Errorf("%s queue = %d, want 3", tx, pages)
		}
	}
	// Re-push must not duplicate.
	if err := s.PushPopular(3, now); err != nil {
		t.Fatal(err)
	}
	if pages, _ := s.QueueDepth("khi-1"); pages != 3 {
		t.Errorf("duplicate push: %d pages", pages)
	}
}

func TestHandleSMSFlow(t *testing.T) {
	s := testServer(t)
	smsc := sms.NewSMSC(time.Second, 2*time.Second, 1)
	smsc.Register(s.cfg.Number, s.HandleSMS(smsc))
	var acks []string
	smsc.Register("+user", func(m sms.Message) { acks = append(acks, m.Body) })

	t0 := time.Unix(0, 0)
	body := sms.FormatRequest(sms.Request{URL: corpus.Pages()[0].URL, Lat: 24.87, Lon: 67.0})
	if err := smsc.Submit(t0, "+user", s.cfg.Number, body); err != nil {
		t.Fatal(err)
	}
	smsc.Advance(t0.Add(3 * time.Second))  // deliver request (server acks)
	smsc.Advance(t0.Add(10 * time.Second)) // deliver ack
	if len(acks) != 1 {
		t.Fatalf("acks = %v", acks)
	}
	url, eta, err := sms.ParseAck(acks[0])
	if err != nil || url != corpus.Pages()[0].URL || eta <= 0 {
		t.Errorf("ack %q parsed to %q %v %v", acks[0], url, eta, err)
	}
	if pages, _ := s.QueueDepth("khi-1"); pages != 1 {
		t.Error("request did not reach the queue")
	}

	// Malformed request gets an error reply.
	acks = nil
	_ = smsc.Submit(t0.Add(20*time.Second), "+user", s.cfg.Number, "gibberish")
	smsc.Advance(t0.Add(30 * time.Second))
	smsc.Advance(t0.Add(40 * time.Second))
	if len(acks) != 1 || acks[0] != "ERR bad request" {
		t.Errorf("error reply = %v", acks)
	}
}

func TestTransportOverTCP(t *testing.T) {
	s := testServer(t)
	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL
	if _, err := s.EnqueuePage(url, 24.87, 67.01, now); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(l)
	}()

	c, err := DialTransmitter(l.Addr().String(), "khi-1")
	if err != nil {
		t.Fatal(err)
	}
	gotURL, pageID, bundle, ok, err := c.Poll()
	if err != nil || !ok {
		t.Fatalf("poll: ok=%v err=%v", ok, err)
	}
	if gotURL != url || pageID == 0 || len(bundle.Image) == 0 {
		t.Errorf("polled %q id=%d imglen=%d", gotURL, pageID, len(bundle.Image))
	}
	// Queue now empty.
	_, _, _, ok, err = c.Poll()
	if err != nil || ok {
		t.Errorf("second poll: ok=%v err=%v", ok, err)
	}
	c.Close()
	l.Close()
	<-done
}

func TestTransportRejectsGarbage(t *testing.T) {
	srv, cli := net.Pipe()
	go func() {
		// Garbage hello (wrong type byte).
		_ = writeMsg(cli, msgPoll, nil)
		cli.Close()
	}()
	s := testServer(t)
	s.handleConn(srv) // must return without panicking
}
