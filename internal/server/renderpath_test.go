package server

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"sonic/internal/core"
	"sonic/internal/corpus"
	"sonic/internal/telemetry"
)

func testPipeline() (*core.Pipeline, error) {
	return core.NewPipeline(core.DefaultConfig())
}

// TestRenderThunderingHerd fires 32 goroutines at one cold URL and
// asserts the miss was coalesced into exactly one render: one
// server_render_cache_misses_total, every other caller counted as a hit
// (direct or coalesced), and every caller handed the same bundle. Run
// under -race this also proves the singleflight + LRU path is data-race
// free.
func TestRenderThunderingHerd(t *testing.T) {
	s := testServer(t)
	reg := telemetry.New()
	s.Instrument(reg)
	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL

	const n = 32
	var (
		start   sync.WaitGroup
		done    sync.WaitGroup
		bundles [n][]byte
	)
	start.Add(1)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait() // line everyone up on the cold cache
			b, err := s.RenderPage(url, now)
			if err != nil {
				t.Error(err)
				return
			}
			bundles[i] = b.Image
		}(i)
	}
	start.Done()
	done.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["server_render_cache_misses_total"]; got != 1 {
		t.Errorf("misses = %d, want exactly 1 (herd not coalesced)", got)
	}
	if got := snap.Counters["server_render_cache_hits_total"]; got != n-1 {
		t.Errorf("hits = %d, want %d", got, n-1)
	}
	if co := snap.Counters["server_render_coalesced_total"]; co > n-1 {
		t.Errorf("coalesced = %d, want <= %d", co, n-1)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bundles[i], bundles[0]) {
			t.Fatalf("caller %d got a different bundle than caller 0", i)
		}
	}
	if got := snap.Gauges["server_render_inflight"]; got != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", got)
	}
	if got := snap.Gauges["server_render_cache_size"]; got != 1 {
		t.Errorf("cache size gauge = %v, want 1", got)
	}
}

// TestConcurrentColdServe is the ISSUE acceptance scenario: 32
// goroutines race over a set of cold corpus URLs; each URL must be
// rendered exactly once.
func TestConcurrentColdServe(t *testing.T) {
	s := testServer(t)
	reg := telemetry.New()
	s.Instrument(reg)
	now := time.Unix(0, 0)

	urls := make([]string, 6)
	for i := range urls {
		urls[i] = corpus.Pages()[i].URL
	}

	const workers = 32
	var start, done sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			start.Wait()
			for i := range urls {
				if _, err := s.RenderPage(urls[(w+i)%len(urls)], now); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	start.Done()
	done.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["server_render_cache_misses_total"]; got != int64(len(urls)) {
		t.Errorf("misses = %d, want %d (one render per cold URL)", got, len(urls))
	}
	wantHits := int64(workers*len(urls) - len(urls))
	if got := snap.Counters["server_render_cache_hits_total"]; got != wantHits {
		t.Errorf("hits = %d, want %d", got, wantHits)
	}
	if got := s.RenderCacheLen(); got != len(urls) {
		t.Errorf("cache holds %d entries, want %d", got, len(urls))
	}
}

// TestRenderCacheLRUBound proves the replacement for the unbounded map
// actually bounds memory: with capacity 2, a third URL evicts the least
// recently used entry, and re-requesting the evicted URL is a fresh miss
// while the retained one still hits.
func TestRenderCacheLRUBound(t *testing.T) {
	p, err := testPipeline()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RenderCachePages = 2
	s := New(cfg, p)
	reg := telemetry.New()
	s.Instrument(reg)
	now := time.Unix(0, 0)

	u0, u1, u2 := corpus.Pages()[0].URL, corpus.Pages()[1].URL, corpus.Pages()[2].URL
	for _, u := range []string{u0, u1, u2} { // u2 evicts u0
		if _, err := s.RenderPage(u, now); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.RenderCacheLen(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
	if _, err := s.RenderPage(u2, now); err != nil { // still cached
		t.Fatal(err)
	}
	if _, err := s.RenderPage(u0, now); err != nil { // evicted: re-render
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["server_render_cache_misses_total"]; got != 4 {
		t.Errorf("misses = %d, want 4 (3 cold + 1 evicted)", got)
	}
	if got := snap.Counters["server_render_cache_hits_total"]; got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
}

// TestRenderCacheEffectiveHourInvalidation proves the LRU honors the
// §3.1 hourly content epochs: once a page's effective hour advances, the
// cached render is stale and the server re-renders.
func TestRenderCacheEffectiveHourInvalidation(t *testing.T) {
	s := testServer(t)
	reg := telemetry.New()
	s.Instrument(reg)
	ref := corpus.Pages()[0]

	// Find the first hour at which the page's content actually changes.
	changed := 0
	for h := 1; h < 24*14; h++ {
		if corpus.EffectiveHour(ref, h) != 0 {
			changed = h
			break
		}
	}
	if changed == 0 {
		t.Skip("page never changes in two weeks of simulated time")
	}

	epoch := time.Unix(0, 0)
	if _, err := s.RenderPage(ref.URL, epoch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RenderPage(ref.URL, epoch.Add(30*time.Minute)); err != nil {
		t.Fatal(err) // same epoch: hit
	}
	if _, err := s.RenderPage(ref.URL, epoch.Add(time.Duration(changed)*time.Hour)); err != nil {
		t.Fatal(err) // content changed: stale entry dropped, re-render
	}
	snap := reg.Snapshot()
	if got := snap.Counters["server_render_cache_misses_total"]; got != 2 {
		t.Errorf("misses = %d, want 2 (cold + invalidated)", got)
	}
	if got := snap.Counters["server_render_cache_hits_total"]; got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := s.RenderCacheLen(); got != 1 {
		t.Errorf("cache len = %d, want 1 (stale entry replaced, not kept)", got)
	}
}

// --- renderCache unit tests (no rendering involved) ------------------------

func TestRenderCacheUnit(t *testing.T) {
	c := newRenderCache(2)
	mk := func(eff int) renderedPage { return renderedPage{effectiveHour: eff} }

	if _, ok := c.get("a", 0); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", mk(0))
	c.put("b", mk(0))
	if _, ok := c.get("a", 0); !ok {
		t.Fatal("a missing")
	}
	c.put("c", mk(0)) // a was just used, so b is LRU and gets evicted
	if _, ok := c.get("b", 0); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a", 0); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if _, ok := c.get("a", 5); ok {
		t.Fatal("stale effective hour served")
	}
	if _, ok := c.get("a", 0); ok {
		t.Fatal("stale entry must be dropped, not kept")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	c.put("a", mk(5))
	c.put("a", mk(6)) // refresh in place, no duplicate node
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("a", 5); ok {
		t.Fatal("refresh did not replace the epoch")
	}
	c.put("a", mk(6))
	if _, ok := c.get("a", 6); !ok {
		t.Fatal("refreshed entry missing")
	}
	c.flush()
	if c.len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestRenderCacheUnboundedWhenNegative(t *testing.T) {
	c := newRenderCache(-1)
	for i := 0; i < 500; i++ {
		c.put(corpus.Pages()[i%len(corpus.Pages())].URL+string(rune('a'+i/100)), renderedPage{})
	}
	if c.len() < 400 {
		t.Fatalf("negative capacity should not evict, len = %d", c.len())
	}
}

// --- refForURL index --------------------------------------------------------

// refForURLLinear is a verbatim copy of the pre-index lookup the server
// used to run on every RenderPage call: a linear scan over the whole
// corpus. Kept as the benchmark baseline for the O(1) map index.
func refForURLLinear(url string) corpus.PageRef {
	for _, ref := range corpus.Pages() {
		if ref.URL == url {
			return ref
		}
	}
	return corpus.PageRef{URL: url, Site: url, Rank: corpus.NumSites, Internal: true}
}

// TestRefForMatchesLinearScan pins the indexed lookup to the old linear
// scan for every corpus URL plus an unknown one.
func TestRefForMatchesLinearScan(t *testing.T) {
	s := testServer(t)
	for _, ref := range corpus.Pages() {
		if got := s.refFor(ref.URL); got != refForURLLinear(ref.URL) {
			t.Fatalf("refFor(%q) = %+v, want %+v", ref.URL, got, refForURLLinear(ref.URL))
		}
	}
	adhoc := "http://example.invalid/x"
	if got := s.refFor(adhoc); got != refForURLLinear(adhoc) {
		t.Fatalf("ad-hoc refFor = %+v, want %+v", got, refForURLLinear(adhoc))
	}
}

// BenchmarkRefForURL shows why the index matters: the old path was
// O(corpus) per request (worst case: the last-ranked URL), the new one a
// single map probe.
func BenchmarkRefForURL(b *testing.B) {
	pages := corpus.Pages()
	last := pages[len(pages)-1].URL
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refForURLLinear(last)
		}
	})
	p, err := testPipeline()
	if err != nil {
		b.Fatal(err)
	}
	s := New(DefaultConfig(), p)
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.refFor(last)
		}
	})
}
