package server

import (
	"container/list"
	"sync"

	"sonic/internal/core"
)

// renderedPage is one render-cache entry: the encoded bundle plus the
// content epoch (effective hour) it was rendered at and the cropped
// raster geometry.
type renderedPage struct {
	bundle        core.Bundle
	effectiveHour int
	width, height int
}

// renderCache is a bounded LRU of rendered pages keyed by URL. Entries
// are validated against the requested effective hour on every lookup —
// a stale entry (the page's content changed since it was rendered) is
// evicted immediately, which is the §3.1 hourly re-render policy
// expressed as cache invalidation. It replaces the unbounded
// map[string]renderedPage the server grew before: ad-hoc URL traffic
// can no longer grow server memory without limit.
type renderCache struct {
	mu    sync.Mutex
	cap   int        // max entries; <= 0 means unbounded
	order *list.List // front = most recently used; values are *lruEntry
	byURL map[string]*list.Element
}

type lruEntry struct {
	url  string
	page renderedPage
}

func newRenderCache(capacity int) *renderCache {
	return &renderCache{
		cap:   capacity,
		order: list.New(),
		byURL: make(map[string]*list.Element),
	}
}

// get returns the cached bundle for url if present and rendered at the
// wanted effective hour. A present-but-stale entry is dropped.
func (c *renderCache) get(url string, effectiveHour int) (core.Bundle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byURL[url]
	if !ok {
		return core.Bundle{}, false
	}
	ent := el.Value.(*lruEntry)
	if ent.page.effectiveHour != effectiveHour {
		c.order.Remove(el)
		delete(c.byURL, url)
		return core.Bundle{}, false
	}
	c.order.MoveToFront(el)
	return ent.page.bundle, true
}

// put stores (or refreshes) an entry and evicts the least recently used
// entries beyond capacity.
func (c *renderCache) put(url string, page renderedPage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byURL[url]; ok {
		el.Value.(*lruEntry).page = page
		c.order.MoveToFront(el)
		return
	}
	c.byURL[url] = c.order.PushFront(&lruEntry{url: url, page: page})
	for c.cap > 0 && c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byURL, last.Value.(*lruEntry).url)
	}
}

// len reports the number of cached entries.
func (c *renderCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flush drops every entry.
func (c *renderCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.byURL)
}
