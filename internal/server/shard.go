package server

import (
	"sort"
	"sync"

	"sonic/internal/corpus"
)

// The server's queue state is striped across shards: each transmitter
// hashes onto one shard, and every queue operation (enqueue, dequeue,
// depth read, demand bump) locks only that shard. Admission on shard A
// therefore never contends with shard B — the lock-striping half of the
// fleet-scale request path. Shard mutexes guard metadata only; renders,
// encodes, and bundle marshalling happen before the lock is taken
// (enforced by the lockscope analyzer).

// DefaultShards is the queue-stripe count when Config.Shards is 0.
const DefaultShards = 8

// shard is one lock stripe of the queue state.
type shard struct {
	mu     sync.Mutex
	queues map[string]*towerQueue
	// demand accumulates measured request counts per (transmitter, URL)
	// — the popularity feedback the carousel and PushPopular consume.
	demand map[string]map[string]float64
}

// towerQueue is one transmitter's FIFO with O(1) byte accounting and a
// pending-URL index for whole-request coalescing (a batch for a URL
// already waiting on this tower attaches to the queued page instead of
// enqueueing a duplicate).
type towerQueue struct {
	pages   []*queuedPage
	bytes   int
	pending map[string]*queuedPage // url -> most recent still-queued page
}

// queue returns (creating if needed) the tower's queue; callers hold
// sh.mu.
func (sh *shard) queue(txID string) *towerQueue {
	tq := sh.queues[txID]
	if tq == nil {
		tq = &towerQueue{pending: make(map[string]*queuedPage)}
		sh.queues[txID] = tq
	}
	return tq
}

// push appends a page; callers hold sh.mu.
func (tq *towerQueue) push(p *queuedPage) {
	tq.pages = append(tq.pages, p)
	tq.bytes += p.Bytes
	tq.pending[p.URL] = p
}

// pop removes and returns the head page; callers hold sh.mu.
func (tq *towerQueue) pop() (*queuedPage, bool) {
	if len(tq.pages) == 0 {
		return nil, false
	}
	head := tq.pages[0]
	tq.pages[0] = nil // release the reference for GC
	tq.pages = tq.pages[1:]
	tq.bytes -= head.Bytes
	if tq.pending[head.URL] == head {
		delete(tq.pending, head.URL)
	}
	return head, true
}

// bumpDemand records count requests for url on a transmitter; callers
// hold sh.mu.
func (sh *shard) bumpDemand(txID, url string, count float64) {
	d := sh.demand[txID]
	if d == nil {
		d = make(map[string]float64)
		sh.demand[txID] = d
	}
	d[url] += count
}

// fnv32a is FNV-1a over a string without the hash.Hash32 indirection:
// shardFor sits on the per-request hot path, and the interface value
// plus the []byte conversion would cost two heap allocations per call.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// shardFor maps a transmitter ID onto its lock stripe.
func (s *Server) shardFor(txID string) *shard {
	return s.shards[fnv32a(txID)%uint32(len(s.shards))]
}

// TowerDemand returns a copy of the measured request counts per URL for
// one transmitter — admission (and the direct enqueue path) feed it,
// PushPopular and broadcast.MeasuredCarousel consume it.
func (s *Server) TowerDemand(txID string) map[string]float64 {
	sh := s.shardFor(txID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	src := sh.demand[txID]
	out := make(map[string]float64, len(src))
	for url, n := range src {
		out[url] = n
	}
	return out
}

// rankByDemand orders corpus pages for one tower: measured demand
// first, static corpus popularity as the tiebreaker and cold-start
// fallback. Any page with at least one measured request outranks every
// unmeasured page (corpus weights are < 1); with no measurements the
// order degenerates to the corpus popularity ranking. The sort is
// stable over corpus order, so the result is deterministic.
func rankByDemand(refs []corpus.PageRef, demand map[string]float64) []corpus.PageRef {
	ranked := append([]corpus.PageRef(nil), refs...)
	score := func(ref corpus.PageRef) float64 {
		return demand[ref.URL] + corpus.PopularityWeight(ref)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return score(ranked[i]) > score(ranked[j])
	})
	return ranked
}
