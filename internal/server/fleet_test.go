package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sonic/internal/core"
	"sonic/internal/corpus"
)

// fleetTestServer builds a server with n transmitters on a line through
// Karachi, each covering its own disjoint patch.
func fleetTestServer(t *testing.T, n int) *Server {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	// Unbounded artifact cache: dedup assertions need every page's audio
	// resident (real corpus audio runs to tens of MB per page, so the
	// default cap would churn under a multi-page drain).
	cfg.ArtifactCacheBytes = -1
	s := New(cfg, p)
	for i := 0; i < n; i++ {
		s.AddTransmitter(Transmitter{
			ID:  fmt.Sprintf("tx-%02d", i),
			Lat: 24.86 + float64(i), Lon: 67.00, RadiusKm: 40,
		})
	}
	return s
}

// TestPageAudioMatchesPipeline pins the fleet audio path byte-identical
// to the direct per-tower encode it replaces.
func TestPageAudioMatchesPipeline(t *testing.T) {
	s := testServer(t)
	url := corpus.Pages()[0].URL
	now := s.cfg.Epoch

	audio, err := s.PageAudio(url, now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RenderPage(url, now)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.pipeline.EncodePageAudio(s.pageIDFor(url), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(audio) != len(want) {
		t.Fatalf("fleet audio %d samples, pipeline %d", len(audio), len(want))
	}
	for i := range audio {
		if audio[i] != want[i] {
			t.Fatalf("fleet audio diverges from EncodePageAudio at sample %d", i)
		}
	}
	// Second call is a cache hit on the full chain.
	st := s.ArtifactStats()
	if _, err := s.PageAudio(url, now); err != nil {
		t.Fatal(err)
	}
	if got := s.ArtifactStats(); got.Audio.Hits != st.Audio.Hits+1 || got.Audio.Misses != st.Audio.Misses {
		t.Fatalf("repeat PageAudio was not a chain hit: %+v -> %+v", st, got)
	}
}

// TestDequeueAudioMatchesQueuedBundle pins DequeueAudioAt against the
// bundle actually queued (not a re-render): the audio must equal
// encoding the popped page's bundle at its queued page ID.
func TestDequeueAudioMatchesQueuedBundle(t *testing.T) {
	s := testServer(t)
	url := corpus.Pages()[1].URL
	now := s.cfg.Epoch
	if _, err := s.EnqueuePage(url, 24.86, 67.00, now); err != nil {
		t.Fatal(err)
	}
	b, err := s.RenderPage(url, now)
	if err != nil {
		t.Fatal(err)
	}
	gotURL, audio, ok, err := s.DequeueAudioAt("khi-1", now)
	if err != nil || !ok || gotURL != url {
		t.Fatalf("DequeueAudioAt = %q, ok=%v, err=%v", gotURL, ok, err)
	}
	want, err := s.pipeline.EncodePageAudio(s.pageIDFor(url), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(audio) != len(want) {
		t.Fatalf("audio %d samples, want %d", len(audio), len(want))
	}
	for i := range audio {
		if audio[i] != want[i] {
			t.Fatalf("dequeued audio diverges at sample %d", i)
		}
	}
	if _, _, ok, _ := s.DequeueAudioAt("khi-1", now); ok {
		t.Fatal("queue should be empty")
	}
}

// TestDrainAudioDedupsAcrossTowers pushes the same popular rotation to
// every tower and drains the fleet in parallel: each page's artifact
// chain must compute once fleet-wide, and every tower must still air
// its full queue.
func TestDrainAudioDedupsAcrossTowers(t *testing.T) {
	const towers = 6
	const topN = 4
	s := fleetTestServer(t, towers)
	now := s.cfg.Epoch
	if err := s.PushPopular(topN, now); err != nil {
		t.Fatal(err)
	}
	drain, err := s.DrainAudio(4, now)
	if err != nil {
		t.Fatal(err)
	}
	if drain.Pages != towers*topN {
		t.Fatalf("drained %d pages, want %d", drain.Pages, towers*topN)
	}
	if drain.AudioSamples == 0 {
		t.Fatal("no audio produced")
	}
	st := s.ArtifactStats()
	if st.Audio.Misses != topN {
		t.Fatalf("audio modulated %d times for %d pages x %d towers, want %d",
			st.Audio.Misses, topN, towers, topN)
	}
	if d := st.Dedup(); d < float64(towers)/2 {
		t.Fatalf("fleet dedup factor %.1f, want >= %.1f", d, float64(towers)/2)
	}
}

// TestPushPopularParallelMatchesSerial pins that the concurrent
// PushPopular produces the same per-tower queues as a serial walk:
// same pages, same order, same byte accounting.
func TestPushPopularParallelMatchesSerial(t *testing.T) {
	const towers = 4
	const topN = 5
	now := time.Unix(0, 0)

	type queued struct {
		url   string
		bytes int
	}
	snapshot := func(s *Server) map[string][]queued {
		out := make(map[string][]queued)
		for _, tx := range s.Transmitters() {
			for {
				head := s.dequeueHead(tx.ID, now)
				if head == nil {
					break
				}
				out[tx.ID] = append(out[tx.ID], queued{url: head.URL, bytes: head.Bytes})
			}
		}
		return out
	}

	parallel := snapshot(func() *Server {
		s := fleetTestServer(t, towers)
		if err := s.PushPopular(topN, now); err != nil {
			t.Fatal(err)
		}
		return s
	}())
	serial := snapshot(func() *Server {
		s := fleetTestServer(t, towers)
		for _, tx := range s.Transmitters() {
			if err := s.pushPopularTower(tx, topN, now); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}())

	if len(parallel) != towers || len(serial) != towers {
		t.Fatalf("tower counts: parallel %d, serial %d, want %d", len(parallel), len(serial), towers)
	}
	for tx, want := range serial {
		got := parallel[tx]
		if len(got) != len(want) {
			t.Fatalf("%s: %d pages parallel vs %d serial", tx, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s slot %d: parallel %+v != serial %+v", tx, i, got[i], want[i])
			}
		}
	}
}

// TestDrainAudioConcurrentWithEnqueue runs the fleet drain while SMS
// enqueues keep landing — the -race guard for the new parallel path.
func TestDrainAudioConcurrentWithEnqueue(t *testing.T) {
	const towers = 4
	s := fleetTestServer(t, towers)
	now := s.cfg.Epoch
	if err := s.PushPopular(3, now); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			url := corpus.Pages()[i%8].URL
			if _, err := s.EnqueuePage(url, 24.86+float64(i%towers), 67.00, now); err != nil {
				t.Errorf("enqueue: %v", err)
				return
			}
		}
	}()
	total := 0
	for i := 0; i < 10; i++ {
		drain, err := s.DrainAudio(4, now)
		if err != nil {
			t.Fatal(err)
		}
		total += drain.Pages
	}
	wg.Wait()
	drain, err := s.DrainAudio(4, now)
	if err != nil {
		t.Fatal(err)
	}
	total += drain.Pages
	if want := towers*3 + 20; total != want {
		t.Fatalf("drained %d pages total, want %d", total, want)
	}
}
