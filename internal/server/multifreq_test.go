package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"sonic/internal/core"
	"sonic/internal/corpus"
)

func TestFrequencyCount(t *testing.T) {
	single := Transmitter{FreqMHz: 93.7}
	if single.FrequencyCount() != 1 {
		t.Errorf("single = %d", single.FrequencyCount())
	}
	multi := Transmitter{FreqMHz: 93.7, ExtraFreqsMHz: []float64{95.1, 99.3, 101.5}}
	if multi.FrequencyCount() != 4 {
		t.Errorf("multi = %d", multi.FrequencyCount())
	}
}

func TestMultiFrequencyHalvesETA(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(extra []float64) *Server {
		s := New(DefaultConfig(), p)
		s.AddTransmitter(Transmitter{
			ID: "tx", FreqMHz: 93.7, ExtraFreqsMHz: extra,
			Lat: 24.86, Lon: 67.0, RadiusKm: 40,
		})
		return s
	}
	now := time.Unix(0, 0)
	url := corpus.Pages()[0].URL
	eta1, err := mk(nil).EnqueuePage(url, 24.87, 67.0, now)
	if err != nil {
		t.Fatal(err)
	}
	eta2, err := mk([]float64{95.1}).EnqueuePage(url, 24.87, 67.0, now)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(eta1) / float64(eta2)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("two frequencies should halve the ETA: %v vs %v", eta1, eta2)
	}
}

func TestParallelFrequencyPollersDrainDistinctPages(t *testing.T) {
	// Two frequencies of the same station poll the same queue over the
	// control link concurrently: every queued page goes out exactly once.
	s := testServer(t)
	now := time.Unix(0, 0)
	if err := s.PushPopular(6, now); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(l)
	}()

	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for f := 0; f < 2; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialTransmitter(l.Addr().String(), "khi-1")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for {
				url, _, _, ok, err := c.Poll()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				seen[url]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	l.Close()
	<-done
	if len(seen) != 6 {
		t.Fatalf("drained %d distinct pages, want 6", len(seen))
	}
	for url, n := range seen {
		if n != 1 {
			t.Errorf("%s broadcast %d times", url, n)
		}
	}
}
