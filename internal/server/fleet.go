package server

import (
	"runtime"
	"sync"
	"time"

	"sonic/internal/artifact"
	"sonic/internal/core"
	"sonic/internal/corpus"
)

// Fleet audio path: every transmitter drain resolves its downstream
// artifacts — marshaled blob, FEC-framed stream, modulated audio —
// through the server's content-addressed artifact chain instead of
// re-encoding per tower. The chain is keyed by (URL, effective hour,
// page ID, pipeline digest), so 64 towers airing the same page at the
// same content epoch modulate it exactly once fleet-wide, and the
// output is byte-identical to calling the pipeline directly (pinned by
// TestPageAudioMatchesPipeline).

// ArtifactStats exposes the fleet cache accounting (hits, misses,
// coalesced waiters per stage, byte/entry footprint, evictions).
func (s *Server) ArtifactStats() artifact.Stats { return s.chain.Stats() }

// FlushArtifacts drops every cached downstream artifact. Benchmarks use
// it to re-measure the cold path; the render LRU is separate
// (FlushRenderCache).
func (s *Server) FlushArtifacts() { s.chain.Flush() }

// PageAudio renders a URL at the given simulation time and returns its
// modulated baseband audio via the fleet artifact chain. The returned
// slice is shared across towers — callers must not mutate it.
func (s *Server) PageAudio(url string, now time.Time) ([]float64, error) {
	ref := s.refFor(url)
	eff := corpus.EffectiveHour(ref, s.hourAt(now))
	k := s.chain.Key(url, eff, s.pageIDFor(url))
	return s.chain.Audio(k, func() (core.Bundle, error) {
		return s.RenderPage(url, now)
	})
}

// DequeueAudioAt pops the next page queued on a transmitter and
// resolves its modulated audio through the artifact chain — the
// fleet-scale replacement for DequeuePageAt + per-tower EncodePageAudio.
// Lifecycle traces on the page are stamped on-air exactly as
// DequeuePageAt stamps them. ok is false on an empty queue; the audio
// slice is shared fleet-wide.
func (s *Server) DequeueAudioAt(transmitterID string, at time.Time) (url string, audio []float64, ok bool, err error) {
	head := s.dequeueHead(transmitterID, at)
	if head == nil {
		return "", nil, false, nil
	}
	k := s.chain.Key(head.URL, head.EffHour, head.PageID)
	audio, err = s.chain.Audio(k, func() (core.Bundle, error) {
		return head.Bundle, nil
	})
	if err != nil {
		return head.URL, nil, true, err
	}
	return head.URL, audio, true, nil
}

// FleetDrain summarizes one DrainAudio sweep.
type FleetDrain struct {
	Pages        int   // transmissions produced across the fleet
	AudioSamples int64 // total baseband samples handed to towers
}

// DrainAudio drains every transmitter queue to exhaustion through the
// artifact chain on a bounded worker pool — the fleet engine's server-
// side entry point, replacing the serial per-tower drain loop. Each
// tower's queue is drained in FIFO order on one goroutine (per-tower
// order is preserved); towers proceed concurrently, and the chain's
// per-stage singleflight pipelines the work so one tower can modulate
// while another is still marshaling. workers <= 0 means GOMAXPROCS.
func (s *Server) DrainAudio(workers int, at time.Time) (FleetDrain, error) {
	towers := s.Transmitters()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(towers) && len(towers) > 0 {
		workers = len(towers)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var drain FleetDrain
	var firstErr error
	for _, tx := range towers {
		wg.Add(1)
		go func(txID string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pages, samples := 0, int64(0)
			for {
				_, audio, ok, err := s.DequeueAudioAt(txID, at)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !ok {
					break
				}
				pages++
				samples += int64(len(audio))
			}
			mu.Lock()
			drain.Pages += pages
			drain.AudioSamples += samples
			mu.Unlock()
		}(tx.ID)
	}
	wg.Wait()
	return drain, firstErr
}
