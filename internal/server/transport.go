package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"sonic/internal/core"
)

// The control link between the central SONIC server and its FM
// transmitters (§3.1: transmitters "can receive simplified webpages to be
// encoded via sound, and then transmit them"). Transmitters are clients:
// they dial in, identify themselves, and poll for pages to broadcast.
//
// Wire format: every message is  type(1) length(4 BE) payload.
const (
	msgHello byte = 0x01 // payload: transmitter id (utf-8)
	msgPoll  byte = 0x02 // payload: empty
	msgPage  byte = 0x03 // payload: pageID(2) urlLen(2) url bundleBlob
	msgEmpty byte = 0x04 // payload: empty
)

// maxMsgSize bounds control-link messages (a page bundle plus slack).
const maxMsgSize = 64 << 20

func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxMsgSize {
		return 0, nil, fmt.Errorf("server: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Serve accepts transmitter connections on l until the listener is
// closed. Each connection is handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn speaks the poll protocol with one transmitter.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	typ, payload, err := readMsg(br)
	if err != nil || typ != msgHello {
		return
	}
	txID := string(payload)

	for {
		typ, _, err := readMsg(br)
		if err != nil {
			return
		}
		if typ != msgPoll {
			return
		}
		url, pageID, bundle, ok := s.DequeuePage(txID)
		if !ok {
			if writeMsg(bw, msgEmpty, nil) != nil || bw.Flush() != nil {
				return
			}
			continue
		}
		blob := core.MarshalBundle(bundle)
		body := make([]byte, 4+len(url)+len(blob))
		binary.BigEndian.PutUint16(body[0:2], pageID)
		binary.BigEndian.PutUint16(body[2:4], uint16(len(url)))
		copy(body[4:], url)
		copy(body[4+len(url):], blob)
		if writeMsg(bw, msgPage, body) != nil || bw.Flush() != nil {
			return
		}
	}
}

// TransmitterClient is the transmitter-side endpoint of the control link.
type TransmitterClient struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// DialTransmitter connects to the server and identifies as id.
func DialTransmitter(addr, id string) (*TransmitterClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTransmitterClient(conn, id)
}

// NewTransmitterClient wraps an existing connection (useful with
// net.Pipe in tests).
func NewTransmitterClient(conn net.Conn, id string) (*TransmitterClient, error) {
	c := &TransmitterClient{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := writeMsg(c.bw, msgHello, []byte(id)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Poll asks the server for the next page. ok is false when the queue is
// empty.
func (c *TransmitterClient) Poll() (url string, pageID uint16, b core.Bundle, ok bool, err error) {
	if err := writeMsg(c.bw, msgPoll, nil); err != nil {
		return "", 0, core.Bundle{}, false, err
	}
	if err := c.bw.Flush(); err != nil {
		return "", 0, core.Bundle{}, false, err
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		return "", 0, core.Bundle{}, false, err
	}
	switch typ {
	case msgEmpty:
		return "", 0, core.Bundle{}, false, nil
	case msgPage:
		if len(payload) < 4 {
			return "", 0, core.Bundle{}, false, errors.New("server: short PAGE message")
		}
		pageID = binary.BigEndian.Uint16(payload[0:2])
		urlLen := int(binary.BigEndian.Uint16(payload[2:4]))
		if 4+urlLen > len(payload) {
			return "", 0, core.Bundle{}, false, errors.New("server: bad PAGE url length")
		}
		url = string(payload[4 : 4+urlLen])
		bundle, err := core.UnmarshalBundle(payload[4+urlLen:])
		if err != nil {
			return "", 0, core.Bundle{}, false, err
		}
		return url, pageID, bundle, true, nil
	default:
		return "", 0, core.Bundle{}, false, fmt.Errorf("server: unexpected message %#x", typ)
	}
}

// Close shuts the link down.
func (c *TransmitterClient) Close() error { return c.conn.Close() }
