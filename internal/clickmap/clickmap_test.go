package clickmap

import (
	"encoding/json"
	"testing"
)

func TestRegionContains(t *testing.T) {
	r := Region{X: 10, Y: 20, W: 30, H: 5, URL: "a.pk/x"}
	if !r.Contains(10, 20) || !r.Contains(39, 24) {
		t.Error("corners should be inside")
	}
	if r.Contains(40, 20) || r.Contains(10, 25) || r.Contains(9, 20) {
		t.Error("outside points reported inside")
	}
}

func TestMapHitTopmost(t *testing.T) {
	m := &Map{PageURL: "a.pk/"}
	m.Add(0, 0, 100, 100, "a.pk/under")
	m.Add(10, 10, 20, 20, "a.pk/over")
	if url, ok := m.Hit(15, 15); !ok || url != "a.pk/over" {
		t.Errorf("Hit = %q, %v; want topmost region", url, ok)
	}
	if url, ok := m.Hit(50, 50); !ok || url != "a.pk/under" {
		t.Errorf("Hit = %q, %v", url, ok)
	}
	if _, ok := m.Hit(999, 999); ok {
		t.Error("miss reported as hit")
	}
}

func TestMapScale(t *testing.T) {
	m := &Map{PageURL: "a.pk/"}
	m.Add(100, 200, 300, 40, "a.pk/l")
	// The paper's scaling factor: a 720-wide phone -> 720/1080.
	s := m.Scale(720.0 / 1080.0)
	r := s.Regions[0]
	if r.X != 66 || r.Y != 133 || r.W != 200 || r.H != 26 {
		t.Errorf("scaled region = %+v", r)
	}
	if s.PageURL != "a.pk/" {
		t.Error("page URL lost")
	}
	// Original untouched.
	if m.Regions[0].X != 100 {
		t.Error("Scale mutated original")
	}
}

func TestMapJSONRoundTrip(t *testing.T) {
	m := &Map{PageURL: "khabar.pk/"}
	m.Add(1, 2, 3, 4, "khabar.pk/a")
	m.Add(0, 0, 9, 9, "khabar.pk/b")
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got Map
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.PageURL != m.PageURL || len(got.Regions) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Regions[0] != m.Regions[0] || got.Regions[1] != m.Regions[1] {
		t.Error("regions differ after round trip")
	}
	if err := got.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Error("bad JSON should fail")
	}
}
