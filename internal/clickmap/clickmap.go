// Package clickmap implements the interactivity layer SONIC borrows from
// DRIVESHAFT (§3.2): rendered pages are static images, so interaction is
// restored by shipping a map of clickable <x,y> regions alongside each
// image. SONIC limits interactivity to hyperlinks; clicking a region asks
// the client to load (from cache) or request (via SMS) the target URL.
package clickmap

import (
	"encoding/json"
	"fmt"
)

// Region is one clickable rectangle on the rendered page, in image
// coordinates (1080-wide reference frame before client scaling).
type Region struct {
	X, Y, W, H int
	URL        string
}

// rectJSON is the explicit wire form (Region's inline form would drop
// zero coordinates).
type rectJSON struct {
	X   int    `json:"x"`
	Y   int    `json:"y"`
	W   int    `json:"w"`
	H   int    `json:"h"`
	URL string `json:"url"`
}

// Contains reports whether the point lies inside the region.
func (r Region) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Map is the click map for one rendered page.
type Map struct {
	PageURL string
	Regions []Region
}

// Add appends a region.
func (m *Map) Add(x, y, w, h int, url string) {
	m.Regions = append(m.Regions, Region{X: x, Y: y, W: w, H: h, URL: url})
}

// Hit returns the URL of the topmost region containing (x, y).
func (m *Map) Hit(x, y int) (string, bool) {
	// Later regions are drawn on top; search in reverse.
	for i := len(m.Regions) - 1; i >= 0; i-- {
		if m.Regions[i].Contains(x, y) {
			return m.Regions[i].URL, true
		}
	}
	return "", false
}

// Scale returns a copy with all coordinates multiplied by factor — the
// client-side scaling factor (§3.2: phone screen width / 1080), applied
// to the click map exactly as to the image.
func (m *Map) Scale(factor float64) *Map {
	out := &Map{PageURL: m.PageURL, Regions: make([]Region, len(m.Regions))}
	for i, r := range m.Regions {
		out.Regions[i] = Region{
			X:   int(float64(r.X) * factor),
			Y:   int(float64(r.Y) * factor),
			W:   int(float64(r.W) * factor),
			H:   int(float64(r.H) * factor),
			URL: r.URL,
		}
	}
	return out
}

// MarshalJSON encodes the map as a compact JSON document that rides along
// with the page image.
func (m *Map) MarshalJSON() ([]byte, error) {
	regions := make([]rectJSON, len(m.Regions))
	for i, r := range m.Regions {
		regions[i] = rectJSON{r.X, r.Y, r.W, r.H, r.URL}
	}
	return json.Marshal(struct {
		Page    string     `json:"page"`
		Regions []rectJSON `json:"regions"`
	}{m.PageURL, regions})
}

// UnmarshalJSON decodes a map produced by MarshalJSON.
func (m *Map) UnmarshalJSON(data []byte) error {
	var doc struct {
		Page    string     `json:"page"`
		Regions []rectJSON `json:"regions"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("clickmap: %w", err)
	}
	m.PageURL = doc.Page
	m.Regions = m.Regions[:0]
	for _, r := range doc.Regions {
		m.Regions = append(m.Regions, Region{r.X, r.Y, r.W, r.H, r.URL})
	}
	return nil
}
