package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCoalesces(t *testing.T) {
	var g Group
	var calls, leaders atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, leader := g.Do("k", func() (any, error) {
				calls.Add(1)
				close(started)
				<-gate // hold every other caller in the same flight
				return "value", nil
			})
			if err != nil {
				t.Errorf("err = %v", err)
			}
			if leader {
				leaders.Add(1)
			}
			results[i] = v
		}(i)
	}
	<-started
	// Give followers a moment to pile onto the in-flight call.
	for g.Inflight() != 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Errorf("%d leaders, want 1", got)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	if g.Inflight() != 0 {
		t.Errorf("inflight = %d after drain", g.Inflight())
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group
	v1, err1, l1 := g.Do("a", func() (any, error) { return 1, nil })
	v2, err2, l2 := g.Do("b", func() (any, error) { return 2, nil })
	if v1 != 1 || v2 != 2 || err1 != nil || err2 != nil || !l1 || !l2 {
		t.Fatalf("got (%v,%v,%v) and (%v,%v,%v)", v1, err1, l1, v2, err2, l2)
	}
}

func TestDoForgetsKeyAfterReturn(t *testing.T) {
	var g Group
	n := 0
	for i := 0; i < 3; i++ {
		_, _, leader := g.Do("k", func() (any, error) { n++; return nil, nil })
		if !leader {
			t.Fatalf("sequential call %d not leader", i)
		}
	}
	if n != 3 {
		t.Errorf("fn ran %d times, want 3 (no caching, only coalescing)", n)
	}
}

func TestDoPropagatesError(t *testing.T) {
	var g Group
	want := errors.New("render failed")
	_, err, leader := g.Do("k", func() (any, error) { return nil, want })
	if err != want || !leader {
		t.Fatalf("err=%v leader=%v", err, leader)
	}
}

// TestFailedFlightDoesNotPoison: a flight that returns an error must
// not taint later callers — the key is forgotten when fn returns, so
// the next Do leads a fresh invocation and can succeed.
func TestFailedFlightDoesNotPoison(t *testing.T) {
	var g Group
	boom := errors.New("transient failure")
	attempts := 0
	fn := func() (any, error) {
		attempts++
		if attempts == 1 {
			return nil, boom
		}
		return "recovered", nil
	}
	if _, err, leader := g.Do("k", fn); err != boom || !leader {
		t.Fatalf("first flight: err=%v leader=%v", err, leader)
	}
	v, err, leader := g.Do("k", fn)
	if err != nil || v != "recovered" || !leader {
		t.Fatalf("second flight poisoned: v=%v err=%v leader=%v", v, err, leader)
	}
}

// TestForgetStartsFreshGeneration: Forget detaches a doomed in-flight
// call. Callers already waiting get its (stale) result, but new callers
// lead a fresh invocation immediately — and the old leader's cleanup
// must not evict the new generation's entry.
func TestForgetStartsFreshGeneration(t *testing.T) {
	var g Group
	gate := make(chan struct{})
	started := make(chan struct{})
	oldDone := make(chan struct{})
	go func() {
		defer close(oldDone)
		v, err, _ := g.Do("k", func() (any, error) {
			close(started)
			<-gate
			return "stale", nil
		})
		if v != "stale" || err != nil {
			t.Errorf("old flight got (%v, %v)", v, err)
		}
	}()
	<-started
	g.Forget("k")

	// New caller after Forget leads its own flight while the old one is
	// still executing.
	v, err, leader := g.Do("k", func() (any, error) { return "fresh", nil })
	if v != "fresh" || err != nil || !leader {
		t.Fatalf("post-forget call: v=%v err=%v leader=%v", v, err, leader)
	}

	// Start a second-generation flight and let the forgotten leader
	// unwind while it is live: its guarded delete must leave the live
	// entry alone, so a follower still coalesces onto it.
	gate2 := make(chan struct{})
	started2 := make(chan struct{})
	gen2 := make(chan struct{})
	go func() {
		defer close(gen2)
		g.Do("k", func() (any, error) {
			close(started2)
			<-gate2
			return "gen2", nil
		})
	}()
	<-started2
	close(gate) // old leader finishes and runs its cleanup
	<-oldDone
	if g.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1 (old cleanup evicted the new generation)", g.Inflight())
	}
	followerV := make(chan any, 1)
	go func() {
		v, _, _ := g.Do("k", func() (any, error) { return "should not run", nil })
		followerV <- v
	}()
	for g.Inflight() != 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate2)
	<-gen2
	if v := <-followerV; v != "gen2" {
		t.Fatalf("follower got %v, want gen2", v)
	}
}

func TestDoLeaderPanic(t *testing.T) {
	var g Group
	gate := make(chan struct{})
	followerErr := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		g.Do("k", func() (any, error) {
			close(gate)
			time.Sleep(5 * time.Millisecond)
			panic("boom")
		})
	}()
	<-gate
	_, err, leader := g.Do("k", func() (any, error) { return "fresh", nil })
	// Either we joined the panicking flight (ErrLeaderPanicked) or it
	// already unwound and we led a fresh call; both leave the group usable.
	if leader {
		if err != nil {
			t.Fatalf("fresh call err = %v", err)
		}
	} else if !errors.Is(err, ErrLeaderPanicked) {
		t.Fatalf("follower err = %v, want ErrLeaderPanicked", err)
	}
	select {
	case e := <-followerErr:
		t.Fatalf("unexpected follower result %v", e)
	default:
	}
	if _, err, _ := g.Do("k", func() (any, error) { return nil, nil }); err != nil {
		t.Fatalf("group unusable after panic: %v", err)
	}
}
