// Package singleflight coalesces duplicate concurrent calls: when N
// goroutines ask for the same key at once, one runs the function and the
// other N-1 block and share its result. The SONIC server uses it to stop
// the render thundering herd — N concurrent cache misses for one URL
// must render once, not N times (§3.1: the page comes "from its cache,
// e.g., if recently requested by another user").
//
// It is a minimal stdlib-only take on golang.org/x/sync/singleflight,
// with one deliberate difference: Do reports whether the caller was the
// leader (the goroutine that executed fn), which lets callers attribute
// cache-miss work to exactly one request.
package singleflight

import (
	"errors"
	"sync"
)

// ErrLeaderPanicked is the error shared callers receive when the
// executing call panicked.
var ErrLeaderPanicked = errors.New("singleflight: leader panicked")

// call is one in-flight (or completed) invocation.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Group coalesces calls by key. The zero value is ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do runs fn once per key at a time: concurrent callers with the same
// key wait for the leader's fn and receive its result. leader reports
// whether this caller executed fn. Once the leader's fn returns, the key
// is forgotten — a later Do starts a fresh invocation.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, false
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The leader never blocks on followers. If fn panics, followers get
	// ErrLeaderPanicked instead of being stranded (or silently handed a
	// zero value), and the panic propagates on the leader's goroutine.
	// The delete is guarded on call identity: Forget may already have
	// dropped this generation and a fresh call may own the key now.
	defer func() {
		if r := recover(); r != nil {
			c.err = ErrLeaderPanicked
			g.forgetCall(key, c)
			c.wg.Done()
			panic(r)
		}
		g.forgetCall(key, c)
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, c.err, true
}

// forgetCall removes key only if it still maps to c.
func (g *Group) forgetCall(key string, c *call) {
	g.mu.Lock()
	if g.m[key] == c {
		delete(g.m, key)
	}
	g.mu.Unlock()
}

// Forget detaches the in-flight call for key, if any: callers already
// waiting on it still receive its result, but the next Do for the key
// starts a fresh invocation instead of joining the old one. Use it when
// an in-flight result is known to be doomed (e.g. a render against
// state that just changed) so one bad flight cannot poison every caller
// that arrives before it finishes.
func (g *Group) Forget(key string) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

// Inflight reports how many keys currently have an executing call —
// exported for the server's inflight-renders gauge.
func (g *Group) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
