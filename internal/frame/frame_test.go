package frame

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sonic/internal/fec"
)

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{PageID: 7, Seq: 12345, Total: 99999, Payload: []byte("hello sonic")}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != FrameSize {
		t.Fatalf("marshaled %d bytes, want %d", len(b), FrameSize)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.PageID != 7 || got.Seq != 12345 || got.Total != 99999 ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFrameValidation(t *testing.T) {
	f := &Frame{Payload: make([]byte, PayloadSize+1)}
	if _, err := f.Marshal(); err != ErrPayloadTooBig {
		t.Errorf("oversized payload err = %v", err)
	}
	if _, err := Unmarshal(make([]byte, 99)); err != ErrBadLength {
		t.Errorf("short frame err = %v", err)
	}
	good, _ := (&Frame{Payload: []byte("x")}).Marshal()
	good[5] ^= 0xFF
	if _, err := Unmarshal(good); err != ErrBadCRC {
		t.Errorf("corrupted frame err = %v", err)
	}
}

func TestCodecGeometry(t *testing.T) {
	c := NewCodec()
	// 100 -> RS(132) -> conv 2*(132*8+8) bits = 266 bytes.
	if c.CodedFrameSize() != 266 {
		t.Errorf("coded frame = %d bytes, want 266", c.CodedFrameSize())
	}
	if o := c.Overhead(); o < 3.0 || o > 3.3 {
		t.Errorf("overhead = %g", o)
	}
	// Net goodput with the Sonic92 profile: raw 23 kbps * 100/266 * 85/100.
	plain := NewCodecWith(nil, nil)
	if plain.CodedFrameSize() != FrameSize {
		t.Errorf("no-FEC coded size = %d", plain.CodedFrameSize())
	}
}

func TestCodecCleanRoundTrip(t *testing.T) {
	c := NewCodec()
	f := &Frame{PageID: 1, Seq: 2, Total: 3, Payload: []byte("payload")}
	coded, err := c.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeFrame(coded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || !bytes.Equal(got.Payload, f.Payload) {
		t.Error("round trip mismatch")
	}
}

func TestCodecCorrectsBitErrors(t *testing.T) {
	c := NewCodec()
	f := &Frame{PageID: 1, Seq: 0, Total: 1, Payload: bytes.Repeat([]byte{0xAB}, PayloadSize)}
	coded, _ := c.EncodeFrame(f)
	rng := rand.New(rand.NewSource(1))
	// 1% random bit errors: v29 alone should fix nearly all, RS the rest.
	corrupted := make([]byte, len(coded))
	copy(corrupted, coded)
	flips := 0
	for i := range corrupted {
		for b := 0; b < 8; b++ {
			if rng.Float64() < 0.01 {
				corrupted[i] ^= 1 << uint(b)
				flips++
			}
		}
	}
	if flips == 0 {
		t.Skip("no flips")
	}
	got, err := c.DecodeFrame(corrupted)
	if err != nil {
		t.Fatalf("decode after %d bit flips: %v", flips, err)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Error("payload corrupted")
	}
}

func TestCodecDetectsHeavyCorruption(t *testing.T) {
	c := NewCodec()
	f := &Frame{PageID: 1, Seq: 0, Total: 1, Payload: []byte("x")}
	coded, _ := c.EncodeFrame(f)
	rng := rand.New(rand.NewSource(2))
	lostOrWrong := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		corrupted := make([]byte, len(coded))
		copy(corrupted, coded)
		for i := range corrupted {
			if rng.Float64() < 0.5 {
				corrupted[i] = byte(rng.Intn(256))
			}
		}
		got, err := c.DecodeFrame(corrupted)
		if err != nil || !bytes.Equal(got.Payload, f.Payload) {
			lostOrWrong++
		}
	}
	if lostOrWrong != trials {
		t.Errorf("%d/%d heavily corrupted frames decoded 'successfully'", trials-lostOrWrong, trials)
	}
}

func TestChunkAndReassemble(t *testing.T) {
	blob := make([]byte, 1000)
	rand.New(rand.NewSource(3)).Read(blob)
	frames := Chunk(42, blob)
	wantFrames := (1000 + PayloadSize - 1) / PayloadSize
	if len(frames) != wantFrames {
		t.Fatalf("chunked into %d frames, want %d", len(frames), wantFrames)
	}
	r := NewReassembler(42)
	for _, f := range frames {
		if !r.Add(f) {
			t.Fatalf("frame %d rejected", f.Seq)
		}
	}
	if !r.Complete() || r.LossRate() != 0 {
		t.Fatal("should be complete")
	}
	got, ok := r.Bytes()
	if !ok || !bytes.Equal(got, blob) {
		t.Fatal("reassembly mismatch")
	}
}

func TestChunkEmptyBlob(t *testing.T) {
	frames := Chunk(1, nil)
	if len(frames) != 1 || len(frames[0].Payload) != 0 {
		t.Errorf("empty blob should produce one empty frame, got %d", len(frames))
	}
}

func TestReassemblerRejects(t *testing.T) {
	r := NewReassembler(5)
	f0 := &Frame{PageID: 5, Seq: 0, Total: 2, Payload: []byte("a")}
	if !r.Add(f0) {
		t.Fatal("valid frame rejected")
	}
	if r.Add(f0) {
		t.Error("duplicate accepted")
	}
	if r.Add(&Frame{PageID: 6, Seq: 1, Total: 2}) {
		t.Error("wrong page accepted")
	}
	if r.Add(&Frame{PageID: 5, Seq: 9, Total: 2}) {
		t.Error("out-of-range seq accepted")
	}
	if r.Add(&Frame{PageID: 5, Seq: 1, Total: 7}) {
		t.Error("inconsistent total accepted")
	}
	if r.Complete() {
		t.Error("incomplete reported complete")
	}
	if got := r.MissingSeqs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("MissingSeqs = %v", got)
	}
	if _, ok := r.Bytes(); ok {
		t.Error("Bytes should fail while incomplete")
	}
	if r.LossRate() != 0.5 {
		t.Errorf("LossRate = %g", r.LossRate())
	}
}

func TestStreamRoundTripWithLostFrames(t *testing.T) {
	c := NewCodec()
	blob := make([]byte, 850)
	rand.New(rand.NewSource(4)).Read(blob)
	frames := Chunk(9, blob)
	stream, err := c.EncodeStream(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Obliterate the third coded frame.
	off := 2 * c.CodedFrameSize()
	for i := off; i < off+c.CodedFrameSize(); i++ {
		stream[i] = 0
	}
	got, lost := c.DecodeStream(stream)
	if lost != 1 {
		t.Errorf("lost = %d, want 1", lost)
	}
	if len(got) != len(frames)-1 {
		t.Errorf("recovered %d frames, want %d", len(got), len(frames)-1)
	}
	r := NewReassembler(9)
	for _, f := range got {
		r.Add(f)
	}
	miss := r.MissingSeqs()
	if len(miss) != 1 || miss[0] != 2 {
		t.Errorf("missing = %v, want [2]", miss)
	}
}

func TestCodecAblationVariants(t *testing.T) {
	// All four FEC combinations must round-trip cleanly.
	for _, c := range []*Codec{
		NewCodecWith(nil, nil),
		NewCodecWith(fec.NewRS8(), nil),
		NewCodecWith(nil, fec.NewV29()),
		NewCodecWith(fec.NewRS8(), fec.NewV27()),
	} {
		f := &Frame{PageID: 3, Seq: 1, Total: 2, Payload: []byte("ablation")}
		coded, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeFrame(coded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Error("ablation variant round trip failed")
		}
	}
}

func TestChunkReassembleQuick(t *testing.T) {
	f := func(blob []byte, pageID uint16) bool {
		frames := Chunk(pageID, blob)
		r := NewReassembler(pageID)
		// Shuffle-ish delivery order.
		for i := len(frames) - 1; i >= 0; i-- {
			r.Add(frames[i])
		}
		got, ok := r.Bytes()
		if !ok {
			return false
		}
		if len(blob) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCodecEncodeFrame(b *testing.B) {
	c := NewCodec()
	f := &Frame{PageID: 1, Seq: 1, Total: 10, Payload: make([]byte, PayloadSize)}
	b.SetBytes(PayloadSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeFrame(b *testing.B) {
	c := NewCodec()
	f := &Frame{PageID: 1, Seq: 1, Total: 10, Payload: make([]byte, PayloadSize)}
	coded, _ := c.EncodeFrame(f)
	b.SetBytes(PayloadSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeFrame(coded); err != nil {
			b.Fatal(err)
		}
	}
}
