package frame

import (
	"math/rand"
	"testing"
)

// The frame codec sits directly on the demodulator output; random and
// adversarial bytes must never panic and false accepts must be
// vanishingly rare (CRC32 + RS syndrome checks).

func TestDecodeFrameFuzzNoFalseAccept(t *testing.T) {
	c := NewCodec()
	rng := rand.New(rand.NewSource(1))
	accepted := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		blob := make([]byte, c.CodedFrameSize())
		rng.Read(blob)
		if f, err := c.DecodeFrame(blob); err == nil && f != nil {
			accepted++
		}
	}
	if accepted > 0 {
		t.Errorf("%d/%d random blobs decoded as valid frames", accepted, trials)
	}
}

func TestUnmarshalFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	accepted := 0
	for trial := 0; trial < 2000; trial++ {
		blob := make([]byte, FrameSize)
		rng.Read(blob)
		if _, err := Unmarshal(blob); err == nil {
			accepted++
		}
	}
	// CRC32 false-accept probability is 2^-32; zero expected here.
	if accepted > 0 {
		t.Errorf("%d random frames passed CRC", accepted)
	}
}

func TestDecodeStreamGarbageBetweenFrames(t *testing.T) {
	// A receiver that syncs mid-stream sees arbitrary byte alignment;
	// DecodeStream must count garbage as losses and keep going.
	c := NewCodec()
	good := &Frame{PageID: 1, Seq: 0, Total: 2, Payload: []byte("a")}
	coded, err := c.EncodeFrame(good)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, c.CodedFrameSize())
	rand.New(rand.NewSource(3)).Read(garbage)
	stream := append(append([]byte{}, coded...), garbage...)
	frames, lost := c.DecodeStream(stream)
	if len(frames) != 1 || lost != 1 {
		t.Errorf("frames=%d lost=%d, want 1/1", len(frames), lost)
	}
}

func TestReassemblerHostileTotals(t *testing.T) {
	r := NewReassembler(1)
	// A frame claiming a huge total must not cause huge allocations on
	// MissingSeqs (it allocates total entries — ensure Add bounds it by
	// rejecting inconsistent totals after the first frame).
	r.Add(&Frame{PageID: 1, Seq: 0, Total: 3, Payload: []byte("x")})
	if r.Add(&Frame{PageID: 1, Seq: 1, Total: 1 << 30}) {
		t.Error("inconsistent huge total accepted")
	}
	if r.Total() != 3 {
		t.Errorf("total drifted to %d", r.Total())
	}
}
