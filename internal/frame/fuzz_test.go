package frame

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the two frame ingestion
// paths a receiver exposes to the airwaves: raw Unmarshal and the full
// FEC-coded DecodeFrame. Neither may panic on any input, anything
// Unmarshal accepts must survive a Marshal round-trip, and a payload
// pushed through the whole encode/decode chain must come back intact.
func FuzzFrameDecode(f *testing.F) {
	valid, err := (&Frame{PageID: 7, Seq: 3, Total: 9, Payload: []byte("sonic fuzz seed")}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, FrameSize))
	f.Add(bytes.Repeat([]byte{0x00}, FrameSize-1))
	f.Add([]byte("short"))

	codec := NewCodec()
	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw wire form: must never panic; accepted frames round-trip.
		if fr, err := Unmarshal(data); err == nil {
			m, err := fr.Marshal()
			if err != nil {
				t.Fatalf("Unmarshal accepted a frame Marshal rejects: %v", err)
			}
			fr2, err := Unmarshal(m)
			if err != nil {
				t.Fatalf("re-Unmarshal of re-Marshal failed: %v", err)
			}
			if fr2.PageID != fr.PageID || fr2.Seq != fr.Seq || fr2.Total != fr.Total || !bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatalf("round-trip changed the frame: %+v vs %+v", fr, fr2)
			}
		}

		// FEC-coded form: arbitrary garbage (right-sized or not) must
		// come back as an error or a valid frame, never a panic.
		if fr, err := codec.DecodeFrame(data); err == nil && fr == nil {
			t.Fatal("DecodeFrame returned nil frame with nil error")
		}

		// Full chain: the fuzz input as payload must survive
		// encode→decode bit-exactly.
		payload := data
		if len(payload) > PayloadSize {
			payload = payload[:PayloadSize]
		}
		orig := &Frame{PageID: 1, Seq: 2, Total: 3, Payload: payload}
		coded, err := codec.EncodeFrame(orig)
		if err != nil {
			t.Fatalf("EncodeFrame(%d-byte payload): %v", len(payload), err)
		}
		got, err := codec.DecodeFrame(coded)
		if err != nil {
			t.Fatalf("DecodeFrame of clean coded frame: %v", err)
		}
		if !bytes.Equal(got.Payload, payload) {
			t.Fatalf("payload changed through codec: %q vs %q", payload, got.Payload)
		}
	})
}
