// Package frame implements SONIC's link-layer framing (§3.3): content is
// divided into fixed 100-byte frames, each carrying a page id, a sequence
// number used to reassemble the image at the receiver, a payload, and a
// CRC32 checksum. Each frame is then protected by the outer Reed-Solomon
// code (rs8) and the inner convolutional code (v29) before hitting the
// modem, so the on-air unit is a fixed-size coded frame and a receiver
// can resynchronize on every frame boundary.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sonic/internal/fec"
	"sonic/internal/telemetry"
)

// Wire geometry. A frame is exactly FrameSize bytes before FEC:
//
//	pageID(2) seq(4) total(4) payloadLen(1) payload(85) crc32(4) = 100
const (
	FrameSize   = 100
	PayloadSize = 85
	headerSize  = 11 // pageID + seq + total + payloadLen
)

// Frame is one SONIC link-layer frame.
type Frame struct {
	PageID  uint16
	Seq     uint32
	Total   uint32 // frames in this page's transmission
	Payload []byte // <= PayloadSize bytes
}

// Errors surfaced by the codec.
var (
	ErrPayloadTooBig = errors.New("frame: payload exceeds 85 bytes")
	ErrBadCRC        = errors.New("frame: CRC32 mismatch")
	ErrBadLength     = errors.New("frame: wrong frame length")
)

// Marshal serializes the frame into its fixed 100-byte wire form.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > PayloadSize {
		return nil, ErrPayloadTooBig
	}
	out := make([]byte, FrameSize)
	binary.BigEndian.PutUint16(out[0:2], f.PageID)
	binary.BigEndian.PutUint32(out[2:6], f.Seq)
	binary.BigEndian.PutUint32(out[6:10], f.Total)
	out[10] = byte(len(f.Payload))
	copy(out[headerSize:], f.Payload)
	crc := fec.Checksum32(out[:FrameSize-4])
	binary.BigEndian.PutUint32(out[FrameSize-4:], crc)
	return out, nil
}

// Unmarshal parses and validates a 100-byte frame.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) != FrameSize {
		return nil, ErrBadLength
	}
	crc := binary.BigEndian.Uint32(b[FrameSize-4:])
	if !fec.Verify32(b[:FrameSize-4], crc) {
		return nil, ErrBadCRC
	}
	plen := int(b[10])
	if plen > PayloadSize {
		return nil, fmt.Errorf("frame: invalid payload length %d", plen)
	}
	f := &Frame{
		PageID:  binary.BigEndian.Uint16(b[0:2]),
		Seq:     binary.BigEndian.Uint32(b[2:6]),
		Total:   binary.BigEndian.Uint32(b[6:10]),
		Payload: append([]byte(nil), b[headerSize:headerSize+plen]...),
	}
	return f, nil
}

// Codec applies the paper's FEC stack to frames: outer rs8 then inner
// v29, producing fixed-size coded frames the modem broadcasts.
type Codec struct {
	rs   *fec.RS
	conv *fec.ConvCode
	// codedLen is the on-air bytes per frame.
	codedLen  int
	codedBits int
	rsLen     int

	m codecMetrics
}

// codecMetrics holds the codec's telemetry handles. All fields are nil
// until Instrument is called; every record through them is then a no-op
// (see internal/telemetry), so the hot decode loop pays one nil check
// per event when telemetry is off.
type codecMetrics struct {
	encoded     *telemetry.Counter   // fec_frames_encoded_total
	decoded     *telemetry.Counter   // fec_frames_decoded_total
	crcFailed   *telemetry.Counter   // fec_frames_crc_failed_total
	fecFailed   *telemetry.Counter   // fec_frames_fec_failed_total
	rsCorrected *telemetry.Counter   // fec_rs_corrected_symbols_total
	viterbi     *telemetry.Histogram // fec_viterbi_path_metric
	viterbiSoft *telemetry.Histogram // fec_viterbi_soft_path_metric
}

// Instrument registers the codec's metric families on reg and starts
// recording. A nil registry leaves the codec un-instrumented.
func (c *Codec) Instrument(reg *telemetry.Registry) {
	c.m = codecMetrics{
		encoded:     reg.Counter("fec_frames_encoded_total"),
		decoded:     reg.Counter("fec_frames_decoded_total"),
		crcFailed:   reg.Counter("fec_frames_crc_failed_total"),
		fecFailed:   reg.Counter("fec_frames_fec_failed_total"),
		rsCorrected: reg.Counter("fec_rs_corrected_symbols_total"),
		viterbi:     reg.Histogram("fec_viterbi_path_metric", telemetry.CountBuckets),
		viterbiSoft: reg.Histogram("fec_viterbi_soft_path_metric", telemetry.CountBuckets),
	}
}

// NewCodec builds the default paper stack (rs8 + v29).
func NewCodec() *Codec {
	return NewCodecWith(fec.NewRS8(), fec.NewV29())
}

// NewCodecWith builds a codec with explicit component codes, enabling the
// ablation benches (v27 vs v29, RS on/off). Either code may be nil to
// disable that stage.
func NewCodecWith(rs *fec.RS, conv *fec.ConvCode) *Codec {
	c := &Codec{rs: rs, conv: conv}
	c.rsLen = FrameSize
	if rs != nil {
		c.rsLen = rs.EncodedLen(FrameSize)
	}
	if conv != nil {
		c.codedBits = conv.EncodedBits(c.rsLen)
		c.codedLen = (c.codedBits + 7) / 8
	} else {
		c.codedBits = c.rsLen * 8
		c.codedLen = c.rsLen
	}
	return c
}

// CodedFrameSize returns the on-air bytes per frame after FEC.
func (c *Codec) CodedFrameSize() int { return c.codedLen }

// Overhead returns on-air bytes divided by payload bytes.
func (c *Codec) Overhead() float64 {
	return float64(c.codedLen) / float64(PayloadSize)
}

// EncodeFrame converts a frame to its on-air coded form.
func (c *Codec) EncodeFrame(f *Frame) ([]byte, error) {
	plain, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	buf := plain
	if c.rs != nil {
		buf = c.rs.Encode(buf)
	}
	if c.conv != nil {
		coded, bits := c.conv.Encode(buf)
		if bits != c.codedBits {
			return nil, fmt.Errorf("frame: coded %d bits, expected %d", bits, c.codedBits)
		}
		buf = coded
	}
	if len(buf) != c.codedLen {
		return nil, fmt.Errorf("frame: coded frame %d bytes, expected %d", len(buf), c.codedLen)
	}
	c.m.encoded.Inc()
	return buf, nil
}

// DecodeFrame reverses EncodeFrame, correcting channel errors where the
// FEC stack allows. A non-nil error means the frame is lost.
func (c *Codec) DecodeFrame(coded []byte) (*Frame, error) {
	if len(coded) != c.codedLen {
		return nil, ErrBadLength
	}
	buf := coded
	if c.conv != nil {
		dec, pathMetric, err := c.conv.DecodeMetric(coded, c.codedBits)
		if err != nil {
			c.m.fecFailed.Inc()
			return nil, err
		}
		c.m.viterbi.Observe(float64(pathMetric))
		buf = dec[:c.rsLen]
	}
	if c.rs != nil {
		dec, corrected, err := c.rs.Decode(buf)
		if err != nil {
			c.m.fecFailed.Inc()
			return nil, err
		}
		c.m.rsCorrected.Add(int64(corrected))
		buf = dec
	}
	return c.finishDecode(buf)
}

// finishDecode unmarshals the FEC-cleaned frame bytes and records the
// CRC/decode outcome.
func (c *Codec) finishDecode(buf []byte) (*Frame, error) {
	f, err := Unmarshal(buf[:FrameSize])
	if err != nil {
		c.m.crcFailed.Inc()
		return nil, err
	}
	c.m.decoded.Inc()
	return f, nil
}

// DecodeFrameSoft is DecodeFrame on per-bit soft metrics (positive =
// bit 1), len(soft) == CodedFrameSize()*8. The inner code decodes with
// soft-decision Viterbi; the outer RS stage and CRC remain hard. Without
// an inner code it falls back to hard slicing.
func (c *Codec) DecodeFrameSoft(soft []float64) (*Frame, error) {
	if len(soft) != c.codedLen*8 {
		return nil, ErrBadLength
	}
	var buf []byte
	if c.conv != nil {
		dec, pathMetric, err := c.conv.DecodeSoftBytesMetric(soft[:c.codedBits])
		if err != nil {
			c.m.fecFailed.Inc()
			return nil, err
		}
		c.m.viterbiSoft.Observe(float64(pathMetric))
		buf = dec[:c.rsLen]
	} else {
		bits := make([]byte, len(soft))
		for i, s := range soft {
			if s > 0 {
				bits[i] = 1
			}
		}
		buf = fec.BitsToBytes(bits)[:c.rsLen]
	}
	if c.rs != nil {
		dec, corrected, err := c.rs.Decode(buf)
		if err != nil {
			c.m.fecFailed.Inc()
			return nil, err
		}
		c.m.rsCorrected.Add(int64(corrected))
		buf = dec
	}
	return c.finishDecode(buf)
}

// DecodeStreamSoft splits a soft-metric stream (8 metrics per coded
// byte) into frames, decoding each with the soft path.
func (c *Codec) DecodeStreamSoft(soft []float64) (frames []*Frame, lost int) {
	chunk := c.codedLen * 8
	for off := 0; off+chunk <= len(soft); off += chunk {
		f, err := c.DecodeFrameSoft(soft[off : off+chunk])
		if err != nil {
			lost++
			continue
		}
		frames = append(frames, f)
	}
	return frames, lost
}

// EncodeStream packs many frames into one contiguous coded byte stream
// (the payload of a single modem burst).
func (c *Codec) EncodeStream(frames []*Frame) ([]byte, error) {
	out := make([]byte, 0, len(frames)*c.codedLen)
	for _, f := range frames {
		cf, err := c.EncodeFrame(f)
		if err != nil {
			return nil, err
		}
		out = append(out, cf...)
	}
	return out, nil
}

// DecodeStream splits a coded stream back into frames. Frames that fail
// FEC or CRC are counted as lost and omitted. Trailing partial data is
// ignored (a truncated burst loses its tail frames).
func (c *Codec) DecodeStream(stream []byte) (frames []*Frame, lost int) {
	for off := 0; off+c.codedLen <= len(stream); off += c.codedLen {
		f, err := c.DecodeFrame(stream[off : off+c.codedLen])
		if err != nil {
			lost++
			continue
		}
		frames = append(frames, f)
	}
	return frames, lost
}

// Chunk splits a blob into frames for the given page id.
func Chunk(pageID uint16, blob []byte) []*Frame {
	total := (len(blob) + PayloadSize - 1) / PayloadSize
	if total == 0 {
		total = 1
	}
	frames := make([]*Frame, 0, total)
	for i := 0; i < total; i++ {
		lo := i * PayloadSize
		hi := lo + PayloadSize
		if hi > len(blob) {
			hi = len(blob)
		}
		frames = append(frames, &Frame{
			PageID:  pageID,
			Seq:     uint32(i),
			Total:   uint32(total),
			Payload: append([]byte(nil), blob[lo:hi]...),
		})
	}
	return frames
}

// Reassembler collects frames for one page and reports completeness.
type Reassembler struct {
	PageID   uint16
	total    uint32
	payloads map[uint32][]byte
}

// NewReassembler creates a reassembler for a page.
func NewReassembler(pageID uint16) *Reassembler {
	return &Reassembler{PageID: pageID, payloads: make(map[uint32][]byte)}
}

// Add ingests a frame; duplicates and frames for other pages are ignored.
// It reports whether the frame was accepted.
func (r *Reassembler) Add(f *Frame) bool {
	if f.PageID != r.PageID {
		return false
	}
	if r.total == 0 {
		r.total = f.Total
	}
	if f.Total != r.total || f.Seq >= r.total {
		return false
	}
	if _, dup := r.payloads[f.Seq]; dup {
		return false
	}
	r.payloads[f.Seq] = f.Payload
	return true
}

// Total returns the expected frame count (0 until the first frame).
func (r *Reassembler) Total() int { return int(r.total) }

// Received returns how many distinct frames arrived.
func (r *Reassembler) Received() int { return len(r.payloads) }

// Complete reports whether every frame arrived.
func (r *Reassembler) Complete() bool {
	return r.total > 0 && len(r.payloads) == int(r.total)
}

// LossRate returns the fraction of frames still missing (0 when total is
// unknown).
func (r *Reassembler) LossRate() float64 {
	if r.total == 0 {
		return 0
	}
	return 1 - float64(len(r.payloads))/float64(r.total)
}

// MissingSeqs lists the sequence numbers not yet received.
func (r *Reassembler) MissingSeqs() []uint32 {
	var miss []uint32
	for s := uint32(0); s < r.total; s++ {
		if _, ok := r.payloads[s]; !ok {
			miss = append(miss, s)
		}
	}
	return miss
}

// Bytes concatenates the received payloads in sequence order. ok is false
// if any frame is missing — callers that can tolerate holes (the cell
// transport) should use Payloads instead.
func (r *Reassembler) Bytes() (blob []byte, ok bool) {
	if !r.Complete() {
		return nil, false
	}
	for s := uint32(0); s < r.total; s++ {
		blob = append(blob, r.payloads[s]...)
	}
	return blob, true
}

// Payloads returns the received (seq, payload) pairs in order.
func (r *Reassembler) Payloads() map[uint32][]byte {
	out := make(map[uint32][]byte, len(r.payloads))
	for k, v := range r.payloads {
		out[k] = v
	}
	return out
}
