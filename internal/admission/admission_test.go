package admission

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sonic/internal/telemetry"
)

// collector is a test sink that records batches.
type collector struct {
	mu      sync.Mutex
	batches []Batch
}

func (c *collector) sink(b Batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches = append(c.batches, b)
}

func (c *collector) snapshot() []Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Batch(nil), c.batches...)
}

func req(url, tower string, eff int) Request {
	return Request{URL: url, Tower: tower, EffHour: eff, Now: time.Unix(int64(eff)*3600, 0)}
}

func TestCoalescingAndFlushOrder(t *testing.T) {
	var c collector
	q := New(Config{Shards: 1, MaxBatch: 100}, c.sink)
	defer q.Close()

	for i := 0; i < 5; i++ {
		if _, err := q.Submit(req("a.pk/", "tx-1", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Submit(req("b.pk/", "tx-1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(req("a.pk/", "tx-1", 1)); err != nil { // new hour = new key
		t.Fatal(err)
	}
	if got := q.Pending(); got != 7 {
		t.Errorf("pending = %d, want 7", got)
	}
	q.Flush()
	batches := c.snapshot()
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3 (%v)", len(batches), batches)
	}
	// First-arrival order, counts coalesced.
	if batches[0].URL != "a.pk/" || batches[0].Count != 5 || batches[0].EffHour != 0 {
		t.Errorf("batch 0 = %+v", batches[0])
	}
	if batches[1].URL != "b.pk/" || batches[1].Count != 1 {
		t.Errorf("batch 1 = %+v", batches[1])
	}
	if batches[2].URL != "a.pk/" || batches[2].EffHour != 1 {
		t.Errorf("batch 2 = %+v", batches[2])
	}
	// Batch Now is the latest coalesced timestamp.
	if !batches[0].Now.Equal(time.Unix(0, 0)) {
		t.Errorf("batch 0 now = %v", batches[0].Now)
	}
	if got := q.Pending(); got != 0 {
		t.Errorf("pending after flush = %d, want 0", got)
	}
}

func TestCoalescedReturnValue(t *testing.T) {
	var c collector
	q := New(Config{Shards: 1}, c.sink)
	defer q.Close()
	co, err := q.Submit(req("a.pk/", "tx-1", 0))
	if err != nil || co {
		t.Fatalf("first submit: coalesced=%v err=%v", co, err)
	}
	co, err = q.Submit(req("a.pk/", "tx-1", 0))
	if err != nil || !co {
		t.Fatalf("second submit: coalesced=%v err=%v", co, err)
	}
}

func TestMaxBatchKicksFlush(t *testing.T) {
	var c collector
	q := New(Config{Shards: 1, MaxBatch: 4}, c.sink)
	defer q.Close()
	for i := 0; i < 4; i++ {
		if _, err := q.Submit(req(fmt.Sprintf("p%d.pk/", i), "tx-1", 0)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for len(c.snapshot()) < 4 {
		select {
		case <-deadline:
			t.Fatalf("size-triggered flush never happened: %d batches", len(c.snapshot()))
		case <-time.After(time.Millisecond):
		}
	}
}

func TestFlushEveryBackgroundFlush(t *testing.T) {
	var c collector
	q := New(Config{Shards: 1, MaxBatch: 1000, FlushEvery: 5 * time.Millisecond}, c.sink)
	defer q.Close()
	if _, err := q.Submit(req("a.pk/", "tx-1", 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for len(c.snapshot()) == 0 {
		select {
		case <-deadline:
			t.Fatal("time-triggered flush never happened")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestBackpressureRejectsWithRetryAfter(t *testing.T) {
	var c collector
	q := New(Config{Shards: 1, MaxBatch: 1000, MaxPending: 3, RetryAfter: 7 * time.Second}, c.sink)
	defer q.Close()
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(req(fmt.Sprintf("p%d.pk/", i), "tx-1", 0)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := q.Submit(req("p99.pk/", "tx-1", 0))
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) || sat.RetryAfter != 7*time.Second {
		t.Fatalf("retry-after hint missing: %v", err)
	}
	// A duplicate of a pending key still coalesces even at the bound:
	// it adds no new unit of flush work.
	if co, err := q.Submit(req("p0.pk/", "tx-1", 0)); err != nil || !co {
		t.Fatalf("duplicate at bound: coalesced=%v err=%v", co, err)
	}
	// Draining reopens admission.
	q.Flush()
	if _, err := q.Submit(req("p99.pk/", "tx-1", 0)); err != nil {
		t.Fatalf("post-flush submit rejected: %v", err)
	}
}

// TestConcurrentHerdConservation hammers one queue from a goroutine
// herd while flushes run concurrently: under -race this proves the
// striped state is clean, and the batch counts must conserve every
// accepted request exactly once.
func TestConcurrentHerdConservation(t *testing.T) {
	var got atomic.Int64
	q := New(Config{Shards: 4, MaxBatch: 8, MaxPending: 1 << 20}, func(b Batch) {
		got.Add(int64(b.Count))
	})
	const workers = 16
	const perWorker = 500
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := req(fmt.Sprintf("p%d.pk/", i%7), fmt.Sprintf("tx-%d", i%5), i%3)
				if _, err := q.Submit(r); err == nil {
					accepted.Add(1)
				}
			}
		}(w)
	}
	// Concurrent explicit flushes race the size-kick workers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				q.Flush()
			}
		}
	}()
	wg.Wait()
	close(done)
	q.Close()
	if got.Load() != accepted.Load() {
		t.Errorf("flushed %d requests, accepted %d", got.Load(), accepted.Load())
	}
	if accepted.Load() != workers*perWorker {
		t.Errorf("accepted = %d, want %d (MaxPending should not bind here)", accepted.Load(), workers*perWorker)
	}
}

func TestTracesRideTheBatch(t *testing.T) {
	reg := telemetry.New()
	lc := telemetry.NewLifecycle(reg, telemetry.LifecycleConfig{})
	var c collector
	q := New(Config{Shards: 1}, c.sink)
	defer q.Close()
	for i := 0; i < 3; i++ {
		r := req("a.pk/", "tx-1", 0)
		r.Trace = lc.BeginAt("a.pk/", "test", r.Now)
		if _, err := q.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	q.Flush()
	batches := c.snapshot()
	if len(batches) != 1 || len(batches[0].Traces) != 3 || batches[0].Count != 3 {
		t.Fatalf("batches = %+v", batches)
	}
}

func TestInstrumentCounters(t *testing.T) {
	reg := telemetry.New()
	var c collector
	q := New(Config{Shards: 2, MaxBatch: 1000, MaxPending: 2}, c.sink)
	q.Instrument(reg)
	defer q.Close()

	// tx-a and tx-b stripe onto (possibly) different shards; fill one
	// shard to its bound to observe a reject.
	if _, err := q.Submit(req("a.pk/", "tx-a", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(req("a.pk/", "tx-a", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(req("b.pk/", "tx-a", 0)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want saturation, got %v", err)
	}
	q.Flush()
	snap := reg.Snapshot()
	if snap.Counters["admission_submitted_total"] != 2 {
		t.Errorf("submitted = %d", snap.Counters["admission_submitted_total"])
	}
	if snap.Counters["admission_coalesced_total"] != 1 {
		t.Errorf("coalesced = %d", snap.Counters["admission_coalesced_total"])
	}
	if snap.Counters["admission_rejected_total"] != 1 {
		t.Errorf("rejected = %d", snap.Counters["admission_rejected_total"])
	}
	if snap.Counters["admission_batches_total"] != 1 {
		t.Errorf("batches = %d", snap.Counters["admission_batches_total"])
	}
	if snap.Counters["admission_flushed_requests_total"] != 2 {
		t.Errorf("flushed = %d", snap.Counters["admission_flushed_requests_total"])
	}
	var perShard int64
	for name, v := range snap.Counters {
		if len(name) > len("admission_shard_submitted_total") && name[:len("admission_shard_submitted_total")] == "admission_shard_submitted_total" {
			perShard += v
		}
	}
	if perShard != 2 {
		t.Errorf("per-shard submitted sum = %d, want 2", perShard)
	}
}

func TestCloseDrainsPending(t *testing.T) {
	var c collector
	q := New(Config{Shards: 2, MaxBatch: 1000}, c.sink)
	for i := 0; i < 10; i++ {
		if _, err := q.Submit(req(fmt.Sprintf("p%d.pk/", i), fmt.Sprintf("tx-%d", i%3), 0)); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	total := 0
	for _, b := range c.snapshot() {
		total += b.Count
	}
	if total != 10 {
		t.Errorf("drained %d requests, want 10", total)
	}
}

// TestSubmitCoalescedAllocFree pins the hot path: a duplicate
// (URL, tower, hour) submit with tracing off — the overwhelmingly
// common case under Zipf demand — must not allocate. The first arrival
// pays for its entry and FIFO slot; every coalesced follower is a map
// hit plus counter bumps.
func TestSubmitCoalescedAllocFree(t *testing.T) {
	q := New(Config{Shards: 1, MaxBatch: 1 << 30, MaxPending: 1 << 30}, func(Batch) {})
	defer q.Close()
	seed := req("page.pk/", "tx-0", 1)
	if _, err := q.Submit(seed); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := q.Submit(seed); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("coalesced Submit allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkSubmitCoalesced measures the duplicate-key admission path.
func BenchmarkSubmitCoalesced(b *testing.B) {
	q := New(Config{MaxBatch: 1 << 30, MaxPending: 1 << 30}, func(Batch) {})
	defer q.Close()
	seed := req("page.pk/", "tx-0", 1)
	if _, err := q.Submit(seed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Submit(seed); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCloseIdempotentAndLeakFree pins the shutdown contract: Close may
// be called any number of times (an explicit shutdown path racing a
// defer must not double-close the stop channel), and a full
// open→submit→close cycle leaves no flush workers behind — the
// goroutine count settles back to where it started.
func TestCloseIdempotentAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 5; cycle++ {
		var c collector
		q := New(Config{Shards: 4, MaxBatch: 1000, FlushEvery: time.Millisecond}, c.sink)
		for i := 0; i < 8; i++ {
			if _, err := q.Submit(req(fmt.Sprintf("p%d.pk/", i), fmt.Sprintf("tx-%d", i%3), 0)); err != nil {
				t.Fatal(err)
			}
		}
		q.Close()
		q.Close() // second close must be a no-op, not a panic
		defer q.Close()
		total := 0
		for _, b := range c.snapshot() {
			total += b.Count
		}
		if total != 8 {
			t.Fatalf("cycle %d drained %d requests, want 8", cycle, total)
		}
	}
	// The workers exit inside Close (wg.Wait), so the count should be
	// back immediately; poll briefly anyway to absorb unrelated runtime
	// goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across close cycles: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFlushConcurrentMatchesFlush pins the parallel drain: every
// pending request reaches the sink exactly once, per-shard batches keep
// first-arrival order, and the queue is empty afterwards.
func TestFlushConcurrentMatchesFlush(t *testing.T) {
	var c collector
	q := New(Config{Shards: 8, MaxBatch: 1 << 30, MaxPending: 1 << 30}, c.sink)
	defer q.Close()

	// 40 distinct keys over 10 towers, each submitted 1+i%3 times.
	want := map[string]int{}
	var firstArrival []string
	for i := 0; i < 40; i++ {
		r := req(fmt.Sprintf("p%02d.pk/", i), fmt.Sprintf("tx-%d", i%10), 0)
		for n := 0; n <= i%3; n++ {
			if _, err := q.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		want[r.URL] = 1 + i%3
		firstArrival = append(firstArrival, r.URL)
	}
	q.FlushConcurrent(4)
	if got := q.Pending(); got != 0 {
		t.Fatalf("pending after FlushConcurrent = %d, want 0", got)
	}
	got := map[string]int{}
	perTower := map[string][]string{}
	for _, b := range c.snapshot() {
		got[b.URL] += b.Count
		perTower[b.Tower] = append(perTower[b.Tower], b.URL)
	}
	if len(got) != len(want) {
		t.Fatalf("flushed %d distinct keys, want %d", len(got), len(want))
	}
	for url, n := range want {
		if got[url] != n {
			t.Errorf("%s: flushed count %d, want %d", url, got[url], n)
		}
	}
	// Shards stripe by tower, so each tower's batches must appear in
	// first-arrival order even though shards flushed concurrently.
	wantTower := map[string][]string{}
	for i, url := range firstArrival {
		tw := fmt.Sprintf("tx-%d", i%10)
		wantTower[tw] = append(wantTower[tw], url)
	}
	for tw, urls := range wantTower {
		if fmt.Sprint(perTower[tw]) != fmt.Sprint(urls) {
			t.Errorf("%s batch order %v, want first-arrival %v", tw, perTower[tw], urls)
		}
	}
}
