// Package admission is the bounded batching stage in front of the
// server's enqueue path. internal/singleflight coalesces concurrent
// render misses; admission extends that idea from the render to the
// whole request: every SMS asking for the same (URL, tower, effective
// hour) within a batch window collapses into ONE render + ONE queue
// append, with every coalesced request's lifecycle trace riding along.
// Under Zipf demand — the national-scale workload the SONIC follow-up
// paper targets — that turns 10⁵ requests/hour for a hot page into a
// handful of renders.
//
// Mechanics:
//
//   - Lock-striped shards (keyed by tower, so admission for shard A
//     never contends with shard B) each hold a coalescing map keyed by
//     (URL, tower, effective hour) plus a FIFO of first arrivals.
//   - Submit is O(1) and never blocks: a duplicate key increments the
//     entry; a new key appends; a shard at MaxPending rejects with a
//     *SaturatedError carrying a retry-after hint instead of queueing
//     unboundedly or stalling the SMSC handler.
//   - Flushes are triggered three ways: a shard reaching MaxBatch
//     distinct keys kicks its worker; the wall-clock flusher fires
//     every FlushEvery (when enabled); and Flush() drains synchronously
//     for clock-driven simulations. Batches reach the sink in first-
//     arrival order.
//
// Telemetry (Instrument): admission_submitted_total,
// admission_coalesced_total, admission_rejected_total,
// admission_batches_total, admission_flushed_requests_total, a
// per-shard admission_shard_submitted_total{shard=…} family (the shard-
// balance feed), the admission_batch_size histogram, and the
// admission_pending_requests gauge.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sonic/internal/telemetry"
)

// Config tunes a Queue. The zero value of every field gets a sensible
// default (see the constants below).
type Config struct {
	// Enabled switches the server's SMS intake onto the admission path.
	// The package itself ignores it; it lives here so server.Config can
	// embed one knob.
	Enabled bool
	// Shards is the number of lock stripes (rounded up to 1).
	Shards int
	// MaxBatch flushes a shard once it holds this many distinct
	// (URL, tower, hour) keys.
	MaxBatch int
	// MaxPending bounds the total requests (including coalesced
	// duplicates) a shard may hold; beyond it Submit rejects.
	MaxPending int
	// FlushEvery is the wall-clock upper bound on how long an admitted
	// request waits before its batch flushes. 0 disables the background
	// flusher: batches then move on MaxBatch kicks and explicit Flush()
	// calls only (the mode clock-driven simulations use).
	FlushEvery time.Duration
	// RetryAfter is the hint a rejected caller gets.
	RetryAfter time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultShards     = 8
	DefaultMaxBatch   = 64
	DefaultMaxPending = 4096
	DefaultRetryAfter = 5 * time.Second
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxPending <= 0 {
		c.MaxPending = DefaultMaxPending
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Request is one admission candidate.
type Request struct {
	URL     string
	Tower   string // covering transmitter ID (already routed)
	EffHour int    // content epoch the render must target
	Now     time.Time
	Trace   *telemetry.Trace // nil when lifecycle tracing is off
}

// Batch is one coalesced unit of work handed to the sink: Count
// requests collapsed onto a single render + enqueue.
type Batch struct {
	URL     string
	Tower   string
	EffHour int
	// Now is the latest caller timestamp among the coalesced requests —
	// the batch's position on the (possibly simulated) request clock.
	Now    time.Time
	Count  int
	Traces []*telemetry.Trace
}

// Sink consumes flushed batches. It runs on a flush worker (or the
// Flush caller's goroutine) with no shard lock held, so it may render.
type Sink func(Batch)

// ErrSaturated matches (via errors.Is) every rejection from a full
// shard.
var ErrSaturated = errors.New("admission: shard saturated")

// SaturatedError is the concrete rejection: backpressure with a hint.
type SaturatedError struct {
	Shard      int
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("admission: shard %d saturated, retry after %s", e.Shard, e.RetryAfter)
}

// Is reports true for ErrSaturated so callers can errors.Is-match
// without the concrete type.
func (e *SaturatedError) Is(target error) bool { return target == ErrSaturated }

type key struct {
	url   string
	tower string
	eff   int
}

type entry struct {
	count  int
	now    time.Time
	traces []*telemetry.Trace
}

type qshard struct {
	mu      sync.Mutex
	pending map[key]*entry
	order   []key // first-arrival flush order
	count   int   // total requests incl. coalesced duplicates
	kick    chan struct{}
}

// Queue is the admission stage. Build with New; Close releases the
// flush workers.
type Queue struct {
	cfg       Config
	sink      Sink
	shards    []*qshard
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// Telemetry (nil handles = off).
	mSubmitted *telemetry.Counter
	mCoalesced *telemetry.Counter
	mRejected  *telemetry.Counter
	mBatches   *telemetry.Counter
	mFlushed   *telemetry.Counter
	hBatch     *telemetry.Histogram
	gPending   *telemetry.Gauge
	perShard   []*telemetry.Counter
}

// New builds the queue and starts one flush worker per shard. The sink
// receives every flushed batch; it must be safe for concurrent calls
// (shards flush independently).
func New(cfg Config, sink Sink) *Queue {
	cfg = cfg.withDefaults()
	q := &Queue{
		cfg:    cfg,
		sink:   sink,
		shards: make([]*qshard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	for i := range q.shards {
		q.shards[i] = &qshard{
			pending: make(map[key]*entry),
			kick:    make(chan struct{}, 1),
		}
	}
	for i := range q.shards {
		q.wg.Add(1)
		go q.worker(q.shards[i])
	}
	return q
}

// Instrument registers the admission metric families on reg. Call once
// at setup.
func (q *Queue) Instrument(reg *telemetry.Registry) {
	if q == nil {
		return
	}
	q.mSubmitted = reg.Counter("admission_submitted_total")
	q.mCoalesced = reg.Counter("admission_coalesced_total")
	q.mRejected = reg.Counter("admission_rejected_total")
	q.mBatches = reg.Counter("admission_batches_total")
	q.mFlushed = reg.Counter("admission_flushed_requests_total")
	q.hBatch = reg.Histogram("admission_batch_size", telemetry.ExpBuckets(1, 2, 14))
	q.gPending = reg.Gauge("admission_pending_requests")
	q.perShard = make([]*telemetry.Counter, len(q.shards))
	for i := range q.shards {
		q.perShard[i] = reg.Counter("admission_shard_submitted_total", "shard", fmt.Sprintf("%d", i))
	}
}

// fnv32a is FNV-1a over a string without the hash.Hash32 interface and
// []byte conversion — Submit is the per-request hot path and must stay
// allocation-free on the coalescing branch (guarded by
// TestSubmitCoalescedAllocFree).
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// shardFor stripes by tower: all keys of one transmitter land on one
// shard, so admission for different fleet regions never contends.
func (q *Queue) shardFor(tower string) int {
	return int(fnv32a(tower) % uint32(len(q.shards)))
}

// Submit admits one request: O(1), never blocks, never renders.
// Coalesced reports whether an identical request was already pending
// (the caller piggybacks on its batch). A full shard returns a
// *SaturatedError (errors.Is ErrSaturated) with a retry-after hint.
func (q *Queue) Submit(req Request) (coalesced bool, err error) {
	si := q.shardFor(req.Tower)
	sh := q.shards[si]
	k := key{url: req.URL, tower: req.Tower, eff: req.EffHour}

	sh.mu.Lock()
	if e, ok := sh.pending[k]; ok {
		e.count++
		if req.Now.After(e.now) {
			e.now = req.Now
		}
		if req.Trace != nil {
			e.traces = append(e.traces, req.Trace)
		}
		sh.count++
		pending := sh.count
		sh.mu.Unlock()
		q.mSubmitted.Inc()
		q.mCoalesced.Inc()
		if q.perShard != nil {
			q.perShard[si].Inc()
		}
		q.notePending(pending)
		return true, nil
	}
	if sh.count >= q.cfg.MaxPending {
		sh.mu.Unlock()
		q.mRejected.Inc()
		return false, &SaturatedError{Shard: si, RetryAfter: q.cfg.RetryAfter}
	}
	e := &entry{count: 1, now: req.Now}
	if req.Trace != nil {
		e.traces = append(e.traces, req.Trace)
	}
	sh.pending[k] = e
	sh.order = append(sh.order, k)
	sh.count++
	full := len(sh.pending) >= q.cfg.MaxBatch
	sh.mu.Unlock()

	q.mSubmitted.Inc()
	if q.perShard != nil {
		q.perShard[si].Inc()
	}
	q.notePending(0)
	if full {
		select {
		case sh.kick <- struct{}{}:
		default:
		}
	}
	return false, nil
}

// notePending refreshes the pending gauge (cheap enough to do per
// submit only when instrumented).
func (q *Queue) notePending(int) {
	if q.gPending == nil {
		return
	}
	q.gPending.Set(float64(q.Pending()))
}

// Pending returns the total requests currently held across shards
// (including coalesced duplicates).
func (q *Queue) Pending() int {
	n := 0
	for _, sh := range q.shards {
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return n
}

// worker is one shard's flush loop: MaxBatch kicks plus the optional
// wall-clock flusher.
func (q *Queue) worker(sh *qshard) {
	defer q.wg.Done()
	var tick <-chan time.Time
	if q.cfg.FlushEvery > 0 {
		t := time.NewTicker(q.cfg.FlushEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-q.stop:
			q.flushShard(sh)
			return
		case <-sh.kick:
			q.flushShard(sh)
		case <-tick:
			q.flushShard(sh)
		}
	}
}

// flushShard swaps out the shard's pending set and feeds the sink in
// first-arrival order, with no shard lock held during sink calls.
func (q *Queue) flushShard(sh *qshard) {
	sh.mu.Lock()
	if len(sh.order) == 0 {
		sh.mu.Unlock()
		return
	}
	pending, order := sh.pending, sh.order
	sh.pending = make(map[key]*entry)
	sh.order = nil
	sh.count = 0
	sh.mu.Unlock()

	for _, k := range order {
		e := pending[k]
		q.mBatches.Inc()
		q.mFlushed.Add(int64(e.count))
		q.hBatch.Observe(float64(e.count))
		q.sink(Batch{
			URL: k.url, Tower: k.tower, EffHour: k.eff,
			Now: e.now, Count: e.count, Traces: e.traces,
		})
	}
	q.notePending(0)
}

// Flush synchronously drains every shard on the caller's goroutine —
// the deterministic path for clock-driven simulations and tests.
func (q *Queue) Flush() {
	if q == nil {
		return
	}
	for _, sh := range q.shards {
		q.flushShard(sh)
	}
}

// FlushConcurrent drains every shard like Flush but spreads the shards
// over a bounded worker pool, so the sink (which may render) runs on
// up to workers cores. The sink's concurrency contract is the same as
// the background flush workers': one call per batch, shards flushing
// independently. workers <= 1 degrades to the serial Flush; batch
// order within a shard is first-arrival either way.
func (q *Queue) FlushConcurrent(workers int) {
	if q == nil {
		return
	}
	if workers > len(q.shards) {
		workers = len(q.shards)
	}
	if workers <= 1 {
		q.Flush()
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, sh := range q.shards {
		sem <- struct{}{}
		wg.Add(1)
		go func(sh *qshard) {
			defer func() { <-sem; wg.Done() }()
			q.flushShard(sh)
		}(sh)
	}
	wg.Wait()
}

// Close stops the flush workers, draining anything still pending.
// Idempotent: extra calls (a defer racing an explicit shutdown path)
// are no-ops rather than a double-close panic.
func (q *Queue) Close() {
	if q == nil {
		return
	}
	q.closeOnce.Do(func() {
		close(q.stop)
		q.wg.Wait()
		// A Submit racing Close can land after the workers' final flush;
		// sweep once more so nothing is stranded.
		q.Flush()
	})
}
