package imagecodec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Cross-version compatibility suite. testdata/sic_v1 and testdata/sic_v2
// hold golden bitstreams (one per equivalence raster × quality) with the
// raw RGB pixels each must decode to. The v1 streams were produced by
// the frozen v1 reference encoder before the v2 bump; the decoder must
// keep accepting them bit-identically forever — receivers in the field
// cache pages across server upgrades. The v2 streams pin the current
// format against the frozen v2 reference. Regenerate (only after a
// deliberate format change, alongside its version bump) with:
//
//	SIC_GOLDEN_REGEN=1 go test ./internal/imagecodec -run TestSICGolden

var goldenQualities = []int{0, 10, 50, 95}

// goldenStream returns the checked-in paths for one (version, raster,
// quality) cell.
func goldenStream(version, name string, q int) (sicPath, pixPath string) {
	dir := filepath.Join("testdata", "sic_"+version)
	return filepath.Join(dir, fmt.Sprintf("%s_q%d.sic", name, q)),
		filepath.Join(dir, fmt.Sprintf("%s_q%d.pix", name, q))
}

// regenGolden rewrites one version's golden set from the frozen
// reference codec pair, never from the live one.
func regenGolden(t *testing.T, version string,
	enc func(*Raster, int) ([]byte, error), dec func([]byte) (*Raster, error)) {
	t.Helper()
	dir := filepath.Join("testdata", "sic_"+version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, src := range equivRasters() {
		for _, q := range goldenQualities {
			blob, err := enc(src, q)
			if err != nil {
				t.Fatalf("%s %s q=%d: encode: %v", version, name, q, err)
			}
			pix, err := dec(blob)
			if err != nil {
				t.Fatalf("%s %s q=%d: decode: %v", version, name, q, err)
			}
			sicPath, pixPath := goldenStream(version, name, q)
			if err := os.WriteFile(sicPath, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(pixPath, pix.Pix, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Logf("regenerated testdata/sic_%s", version)
}

// regenFuzzCorpus writes the FuzzSICDecode seed corpus in Go's corpus
// file format: intact streams of both generations plus the mutations
// most likely to probe the version gate and framing, so a CI fuzz smoke
// starts from real bitstreams rather than rediscovering the header.
func regenFuzzCorpus(t *testing.T) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzSICDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{}
	for _, version := range []string{"v1", "v2"} {
		sicPath, _ := goldenStream(version, "odd", 10)
		blob, err := os.ReadFile(sicPath)
		if err != nil {
			t.Fatal(err)
		}
		entries[version+"_odd_q10"] = blob
		entries[version+"_truncated"] = blob[:len(blob)/3]
		mut := bytes.Clone(blob)
		mut[3] = '9'
		entries[version+"_badversion"] = mut
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("regenerated %s (%d entries)", dir, len(entries))
}

// TestSICGoldenStreams decodes every checked-in stream of both bitstream
// generations through the live decoder (serial and parallel) and demands
// the exact golden pixels.
func TestSICGoldenStreams(t *testing.T) {
	if os.Getenv("SIC_GOLDEN_REGEN") != "" {
		regenGolden(t, "v1",
			func(r *Raster, q int) ([]byte, error) { return refEncodeSIC(r, q) },
			refDecodeSIC)
		regenGolden(t, "v2",
			func(r *Raster, q int) ([]byte, error) { return refEncodeSICv2(r, q) },
			refDecodeSICv2)
		regenFuzzCorpus(t)
	}
	for _, version := range []string{"v1", "v2"} {
		for name := range equivRasters() {
			for _, q := range goldenQualities {
				sicPath, pixPath := goldenStream(version, name, q)
				blob, err := os.ReadFile(sicPath)
				if err != nil {
					t.Fatalf("golden stream missing (run SIC_GOLDEN_REGEN=1 after a format change): %v", err)
				}
				wantPix, err := os.ReadFile(pixPath)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := blob[3], version[1]; got != want {
					t.Fatalf("%s: version byte %q, want %q", sicPath, got, want)
				}
				for _, wk := range []int{1, 4} {
					r, err := DecodeSICWorkers(blob, wk)
					if err != nil {
						t.Fatalf("%s (workers=%d): decode: %v", sicPath, wk, err)
					}
					if len(r.Pix) != 3*r.W*r.H {
						t.Fatalf("%s: inconsistent raster %dx%d with %d pixel bytes", sicPath, r.W, r.H, len(r.Pix))
					}
					if !bytes.Equal(r.Pix, wantPix) {
						t.Fatalf("%s (workers=%d): decoded pixels differ from golden", sicPath, wk)
					}
				}
			}
		}
	}
}

// TestSICVersionByteValidation pins the decoder's version gate: only the
// '1' and '2' generation bytes are accepted, and everything else fails
// up front with the unsupported-version error rather than being parsed
// as some other generation's body.
func TestSICVersionByteValidation(t *testing.T) {
	src := equivRasters()["noise"]
	enc, err := EncodeSIC(src, 50)
	if err != nil {
		t.Fatal(err)
	}
	if enc[3] != '2' {
		t.Fatalf("current encoder emitted version byte %q, want '2'", enc[3])
	}
	for _, bad := range []byte{'0', '3', 'A', 0x00, 0xFF} {
		mut := bytes.Clone(enc)
		mut[3] = bad
		if _, err := DecodeSIC(mut); err == nil {
			t.Fatalf("version byte %#x: decode accepted an unknown generation", bad)
		} else if !strings.Contains(err.Error(), "version") {
			t.Fatalf("version byte %#x: error %q does not name the version gate", bad, err)
		}
	}
	// A v1 body mislabeled as v2 (and vice versa) must fail or decode —
	// never panic — even though the framing is nonsense for the claimed
	// generation; crossGen exists to exercise that path deterministically.
	v1Blob, _ := refEncodeSIC(src, 50)
	for _, crossGen := range [][]byte{v1Blob, enc} {
		mut := bytes.Clone(crossGen)
		if mut[3] == '1' {
			mut[3] = '2'
		} else {
			mut[3] = '1'
		}
		if _, err := DecodeSIC(mut); err == nil {
			t.Logf("cross-generation body decoded by accident (legal but surprising)")
		}
	}
}

// FuzzSICDecode throws arbitrary bytes at the version-dispatching SIC
// decoder. The seed corpus spans both bitstream generations (every
// golden stream) plus degenerate headers. The decoder must never panic,
// must return consistent raster geometry on success, and the parallel
// decoder must agree with the serial one on both the verdict and the
// pixels — the fuzzer doubles as a differential harness for the two
// implementations.
func FuzzSICDecode(f *testing.F) {
	for _, version := range []string{"v1", "v2"} {
		for name := range equivRasters() {
			sicPath, _ := goldenStream(version, name, 10)
			if blob, err := os.ReadFile(sicPath); err == nil {
				f.Add(blob)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("SIC1"))
	f.Add([]byte("SIC2\x00\x00\x00\x01\x00\x00\x00\x01\x0a"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		serial, serr := DecodeSIC(data)
		if serr == nil {
			if serial == nil {
				t.Fatal("nil raster with nil error")
			}
			if len(serial.Pix) != 3*serial.W*serial.H || serial.W <= 0 || serial.H <= 0 {
				t.Fatalf("inconsistent raster %dx%d with %d pixel bytes", serial.W, serial.H, len(serial.Pix))
			}
		}
		parallel, perr := DecodeSICWorkers(data, 3)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("serial/parallel decoders disagree on validity: %v vs %v", serr, perr)
		}
		if serr == nil && !bytes.Equal(serial.Pix, parallel.Pix) {
			t.Fatal("serial and parallel decoders produced different pixels")
		}
	})
}
