package imagecodec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCellMarshalRoundTrip(t *testing.T) {
	c := Cell{Col: 513, Y0: 9000, N: 77, Data: []byte{1, 2, 3}}
	got, err := UnmarshalCell(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Col != c.Col || got.Y0 != c.Y0 || got.N != c.N || string(got.Data) != string(c.Data) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := UnmarshalCell([]byte{1, 2}); err == nil {
		t.Error("short cell should fail")
	}
}

func TestEncodeColumnsValidation(t *testing.T) {
	if _, err := EncodeColumns(nil, 100); err == nil {
		t.Error("nil raster should fail")
	}
	if _, err := EncodeColumns(NewRaster(4, 4), 8); err == nil {
		t.Error("tiny cell budget should fail")
	}
	if _, err := EncodeColumns(&Raster{W: 70000, H: 1, Pix: make([]byte, 3*70000)}, 100); err == nil {
		t.Error("oversized raster should fail")
	}
}

func TestColumnsLosslessRoundTrip(t *testing.T) {
	src := testPage(64, 120, 10)
	cells, err := EncodeColumns(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if CellHeaderSize+len(c.Data) > 100 {
			t.Fatalf("cell exceeds budget: %d bytes", CellHeaderSize+len(c.Data))
		}
	}
	dec, missing := DecodeColumns(cells, src.W, src.H)
	for _, m := range missing {
		if m {
			t.Fatal("complete cell set left missing pixels")
		}
	}
	if !dec.Equal(src) {
		t.Fatal("column codec must be lossless")
	}
}

func TestColumnsCompressFlatPages(t *testing.T) {
	// Flat/white pages (most of a webpage) must compress well below raw.
	src := NewRaster(100, 1000)
	src.FillRect(0, 0, 100, 100, RGB{0, 0, 180})
	cells, err := EncodeColumns(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	raw := 3 * 100 * 1000
	if CellsSize(cells)*10 > raw {
		t.Errorf("flat page cells = %d bytes, want <10%% of %d", CellsSize(cells), raw)
	}
}

func TestLostCellsDamageIsBounded(t *testing.T) {
	src := testPage(64, 200, 11)
	cells, _ := EncodeColumns(src, 100)
	// Drop 10% of cells.
	rng := rand.New(rand.NewSource(12))
	var kept []Cell
	dropped := 0
	for _, c := range cells {
		if rng.Float64() < 0.10 {
			dropped++
			continue
		}
		kept = append(kept, c)
	}
	if dropped == 0 {
		t.Skip("rng dropped nothing")
	}
	dec, missing := DecodeColumns(kept, src.W, src.H)
	// Missing pixels exist, but only in the dropped cells' columns.
	missCols := map[int]bool{}
	nMissing := 0
	for i, m := range missing {
		if m {
			nMissing++
			missCols[i%src.W] = true
		}
	}
	if nMissing == 0 {
		t.Fatal("dropped cells should leave missing pixels")
	}
	// Every received pixel must be exact.
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			if !missing[y*src.W+x] && dec.At(x, y) != src.At(x, y) {
				t.Fatalf("received pixel (%d,%d) corrupted", x, y)
			}
		}
	}
	droppedCols := map[int]bool{}
	for _, c := range cells {
		found := false
		for _, k := range kept {
			if k.Col == c.Col && k.Y0 == c.Y0 {
				found = true
				break
			}
		}
		if !found {
			droppedCols[int(c.Col)] = true
		}
	}
	for col := range missCols {
		if !droppedCols[col] {
			t.Errorf("column %d has missing pixels but no dropped cell", col)
		}
	}
}

func TestDecodeColumnsIgnoresCorruptCells(t *testing.T) {
	src := testPage(16, 32, 13)
	cells, _ := EncodeColumns(src, 100)
	// Corrupt one cell's token stream and add an out-of-range cell.
	if len(cells[0].Data) > 0 {
		cells[0].Data[0] = 0x7F // unknown token
	}
	cells = append(cells, Cell{Col: 9999, Y0: 0, N: 5, Data: []byte{0, 5, 1, 1, 1}})
	dec, missing := DecodeColumns(cells, src.W, src.H)
	_ = dec
	// Corrupt cell's pixels remain missing; everything else decodes.
	if !missing[0] { // column 0 row 0 was in the corrupted cell
		t.Error("corrupt cell should leave its pixels missing")
	}
}

func TestCellQuickProperty(t *testing.T) {
	// Property: encode/decode of random small rasters is lossless with no
	// missing pixels, for any cell budget >= 16.
	f := func(seed int64, budget uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(12), 1+rng.Intn(30)
		r := NewBlackRaster(w, h)
		for i := range r.Pix {
			// Mix of flat and noisy regions.
			if rng.Float64() < 0.5 {
				r.Pix[i] = byte(rng.Intn(256))
			}
		}
		b := 16 + int(budget)
		cells, err := EncodeColumns(r, b)
		if err != nil {
			return false
		}
		for _, c := range cells {
			if CellHeaderSize+len(c.Data) > b {
				return false
			}
		}
		dec, missing := DecodeColumns(cells, w, h)
		for _, m := range missing {
			if m {
				return false
			}
		}
		return dec.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeColumnsPageWidth(b *testing.B) {
	src := testPage(PageWidth, 500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeColumns(src, 100); err != nil {
			b.Fatal(err)
		}
	}
}
