package imagecodec

import (
	"bytes"
	"testing"
)

func TestRasterBasics(t *testing.T) {
	r := NewRaster(10, 5)
	if r.At(0, 0) != (RGB{255, 255, 255}) {
		t.Error("new raster should be white")
	}
	r.Set(3, 2, RGB{1, 2, 3})
	if r.At(3, 2) != (RGB{1, 2, 3}) {
		t.Error("Set/At mismatch")
	}
	// Out of bounds is safe.
	r.Set(-1, 0, RGB{9, 9, 9})
	r.Set(10, 0, RGB{9, 9, 9})
	if r.At(-1, 0) != (RGB{}) || r.At(0, 99) != (RGB{}) {
		t.Error("out-of-bounds At should be black")
	}
	if !r.In(9, 4) || r.In(10, 4) || r.In(0, -1) {
		t.Error("In() wrong")
	}
}

func TestRasterFillAndRect(t *testing.T) {
	r := NewRaster(8, 8)
	r.Fill(RGB{10, 20, 30})
	if r.At(7, 7) != (RGB{10, 20, 30}) {
		t.Error("Fill failed")
	}
	r.FillRect(2, 2, 3, 3, RGB{200, 0, 0})
	if r.At(2, 2) != (RGB{200, 0, 0}) || r.At(4, 4) != (RGB{200, 0, 0}) {
		t.Error("FillRect interior wrong")
	}
	if r.At(5, 5) != (RGB{10, 20, 30}) {
		t.Error("FillRect overflowed")
	}
	// Clipped rect must not panic.
	r.FillRect(-5, -5, 100, 100, RGB{1, 1, 1})
	if r.At(0, 0) != (RGB{1, 1, 1}) {
		t.Error("clipped FillRect missed in-bounds region")
	}
}

func TestRasterCloneEqualCrop(t *testing.T) {
	r := NewRaster(4, 6)
	r.Set(1, 5, RGB{5, 5, 5})
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not equal")
	}
	c.Set(0, 0, RGB{1, 1, 1})
	if r.Equal(c) {
		t.Error("Equal missed difference")
	}
	cropped := r.Crop(3)
	if cropped.W != 4 || cropped.H != 3 {
		t.Errorf("crop dims %dx%d", cropped.W, cropped.H)
	}
	if !r.Crop(100).Equal(r) {
		t.Error("crop beyond height should be identity")
	}
	if r.Crop(-1).H != 0 {
		t.Error("negative crop should be empty")
	}
}

func TestResizeNearest(t *testing.T) {
	r := NewRaster(4, 4)
	r.FillRect(0, 0, 2, 2, RGB{100, 0, 0})
	half := r.ResizeNearest(0.5)
	if half.W != 2 || half.H != 2 {
		t.Fatalf("dims %dx%d", half.W, half.H)
	}
	if half.At(0, 0) != (RGB{100, 0, 0}) {
		t.Error("top-left quadrant color lost")
	}
	if half.At(1, 1) != (RGB{255, 255, 255}) {
		t.Error("bottom-right quadrant color lost")
	}
	dbl := r.ResizeNearest(2.0)
	if dbl.W != 8 || dbl.H != 8 {
		t.Fatalf("dims %dx%d", dbl.W, dbl.H)
	}
	if dbl.At(3, 3) != (RGB{100, 0, 0}) || dbl.At(4, 4) != (RGB{255, 255, 255}) {
		t.Error("upscale wrong")
	}
	if r.ResizeNearest(0).W != 0 {
		t.Error("zero factor should be empty")
	}
	// The paper's scaling factor: phone width / 1080.
	page := NewRaster(PageWidth, 100)
	phone := page.ResizeNearest(720.0 / PageWidth)
	if phone.W != 720 {
		t.Errorf("scaled width = %d, want 720", phone.W)
	}
}

func TestPNGRoundTrip(t *testing.T) {
	r := NewRaster(20, 10)
	r.FillRect(5, 2, 10, 6, RGB{12, 200, 99})
	var buf bytes.Buffer
	if err := r.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Error("PNG round trip mismatch")
	}
	if _, err := ReadPNG(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage PNG should fail")
	}
}

func TestLuma(t *testing.T) {
	r := NewRaster(1, 1)
	r.Set(0, 0, RGB{255, 255, 255})
	if l := r.Luma(0, 0); l < 254 || l > 256 {
		t.Errorf("white luma = %g", l)
	}
	r.Set(0, 0, RGB{})
	if l := r.Luma(0, 0); l != 0 {
		t.Errorf("black luma = %g", l)
	}
}
